// Ablations around the migration mechanism (DESIGN.md):
//  (a) migration cost vs state size: total time, service interruption and
//      worst delay spike as the per-M-slice subscription count grows —
//      isolating the fixed (replica/library init, control rounds) and
//      variable (serialize/transfer/deserialize) components behind
//      Table I's sub-linear growth;
//  (b) output batching (flush interval) vs steady-state delay: the
//      pipelining design choice that trades per-message overhead against
//      the notification delay floor.
#include <cstdio>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "workload/schedule.hpp"

namespace {

using namespace esh;

harness::TestbedConfig base_config(std::size_t subs) {
  auto config = bench::paper_config(8, subs);
  config.ap_slices = 4;
  config.workload.m_slices = 8;
  config.ep_slices = 4;
  config.placement = [](const std::vector<HostId>& workers) {
    pubsub::HostAssignment assignment;
    assignment["AP"] = {workers[0], workers[1]};
    assignment["M"] = {workers[2], workers[3], workers[4], workers[5]};
    assignment["EP"] = {workers[6], workers[7]};
    return assignment;
  };
  return config;
}

void state_size_sweep() {
  bench::print_header(
      "Ablation (a): M-slice migration cost vs state size, 100 pub/s");
  bench::print_row({"subs/slice", "state MB", "total ms", "interrupt ms",
                    "delay max ms"},
                   14);
  for (std::size_t per_slice : {3125u, 6250u, 12'500u, 25'000u, 50'000u}) {
    const std::size_t total_subs = per_slice * 8;
    auto config = base_config(total_subs);
    harness::Testbed bed{config};
    bed.store_subscriptions(total_subs);
    // 40 pub/s keeps even the 50 K-per-slice point below saturation, so
    // the sweep isolates migration cost from queueing collapse.
    auto driver = bed.drive(
        std::make_shared<workload::ConstantRate>(40.0, seconds(10'000)));
    bed.run_for(seconds(10));
    bed.delays().enable_series(seconds(5));

    const SliceId slice = bed.hub().slices_of("M")[0];
    const HostId dst = bed.worker_hosts()[0];  // an AP host
    std::optional<engine::MigrationReport> report;
    bed.engine().migrate(slice, dst, [&](const engine::MigrationReport& r) {
      report = r;
    });
    bed.run_until([&] { return report.has_value(); }, seconds(120));
    bed.run_for(seconds(15));  // observe the recovery
    driver->stop();

    double max_delay = 0.0;
    for (const auto& bin : bed.delays().series()->bins()) {
      max_delay = std::max(max_delay, bin.stats.max());
    }
    bench::print_row(
        {std::to_string(per_slice),
         bench::fmt(static_cast<double>(report->state_bytes) / 1e6, 1),
         bench::fmt(to_millis(report->total_duration()), 0),
         bench::fmt(to_millis(report->interruption()), 0),
         bench::fmt(max_delay, 0)},
        14);
  }
  std::printf(
      "\nExpected: a fixed ~1.2 s floor (replica + library init + control\n"
      "rounds) plus a component linear in state (serialize + transfer +\n"
      "deserialize) -- the sub-linear growth of Table I.\n");
}

void flush_interval_sweep() {
  bench::print_header(
      "Ablation (b): output batching interval vs steady-state delay");
  bench::print_row({"flush ms", "min", "p50", "p90", "max"}, 10);
  for (int flush_ms : {25, 50, 100, 200}) {
    auto config = base_config(100'000);
    config.engine.flush_interval = millis(flush_ms);
    harness::Testbed bed{config};
    bed.store_subscriptions(100'000);
    auto driver = bed.drive(
        std::make_shared<workload::ConstantRate>(100.0, seconds(60)));
    bed.run_for(seconds(15));
    bed.delays().reset_counts();
    bed.run_for(seconds(40));
    driver->stop();
    const auto& d = bed.delays().delays_ms();
    const auto p = d.percentiles({0, 50, 90, 100});
    bench::print_row({std::to_string(flush_ms), bench::fmt(p[0], 0),
                      bench::fmt(p[1], 0), bench::fmt(p[2], 0),
                      bench::fmt(p[3], 0)},
                     10);
  }
  std::printf(
      "\nExpected: the delay floor scales with the per-hop batching\n"
      "interval (4 batched hops source->AP->M->EP->sink).\n");
}

}  // namespace

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  state_size_sweep();
  flush_interval_sweep();
  return 0;
}
