// Shared runner for the full elastic-scaling experiments (Figures 8 and
// 9): drives a rate schedule against a manager-governed deployment and
// prints, per 30-second period, the publication rate, active host count,
// host CPU envelope (min/avg/max) and notification delays — the four plots
// of the paper's Figures 8 and 9.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "workload/schedule.hpp"

namespace esh::bench {

struct ElasticOutcome {
  std::size_t peak_hosts = 0;
  std::size_t final_hosts = 0;
  std::size_t migrations = 0;
  double delay_avg_ms = 0.0;
  double delay_p99_ms = 0.0;
};

inline ElasticOutcome run_elastic_experiment(
    const std::string& title, harness::TestbedConfig config,
    std::shared_ptr<const workload::RateSchedule> schedule,
    SimDuration tail = seconds(180)) {
  config.with_manager = true;
  harness::Testbed bed{config};
  bed.store_subscriptions(config.workload.total_subscriptions);
  bed.delays().enable_series(seconds(30));
  bed.delays().reset_counts();

  const SimDuration total = schedule->duration() + tail;
  auto driver = bed.drive(std::move(schedule));

  print_header(title);
  print_row({"t(s)", "pub/s", "hosts", "cpu-min", "cpu-avg", "cpu-max",
             "delay-avg", "delay-max"},
            10);

  ElasticOutcome outcome;
  outcome.peak_hosts = 1;
  std::uint64_t last_sent = bed.hub().publications_sent();
  const SimTime start = bed.simulator().now();
  std::size_t delay_bins_printed = 0;
  while (bed.simulator().now() - start < total) {
    bed.run_for(seconds(30));
    const std::uint64_t sent = bed.hub().publications_sent();
    const double rate = static_cast<double>(sent - last_sent) / 30.0;
    last_sent = sent;

    const auto* manager = bed.manager();
    outcome.peak_hosts =
        std::max(outcome.peak_hosts, manager->managed_host_count());
    // CPU envelope over the probe rounds of this period.
    double cmin = 1.0, cavg = 0.0, cmax = 0.0;
    std::size_t rounds = 0;
    const SimTime period_start = bed.simulator().now() - seconds(30);
    for (auto it = manager->load_history().rbegin();
         it != manager->load_history().rend() && it->time >= period_start;
         ++it) {
      cmin = std::min(cmin, it->min_cpu);
      cmax = std::max(cmax, it->max_cpu);
      cavg += it->avg_cpu;
      ++rounds;
    }
    if (rounds > 0) {
      cavg /= static_cast<double>(rounds);
    } else {
      cmin = 0.0;
    }

    // Delay stats of the latest completed series bin.
    const auto* series = bed.delays().series();
    double davg = 0.0, dmax = 0.0;
    if (series != nullptr && series->bins().size() > delay_bins_printed) {
      const auto& bin = series->bins()[delay_bins_printed];
      davg = bin.stats.mean();
      dmax = bin.stats.max();
      ++delay_bins_printed;
    }

    print_row({fmt(to_seconds(bed.simulator().now() - start), 0),
               fmt(rate, 0), std::to_string(manager->managed_host_count()),
               fmt(cmin * 100, 0), fmt(cavg * 100, 0), fmt(cmax * 100, 0),
               fmt(davg, 0), fmt(dmax, 0)},
              10);
  }
  driver->stop();

  outcome.final_hosts = bed.manager()->managed_host_count();
  outcome.migrations = bed.manager()->migrations().size();
  if (bed.delays().delays_ms().count() > 0) {
    outcome.delay_avg_ms = bed.delays().delays_ms().percentile(50);
    outcome.delay_p99_ms = bed.delays().delays_ms().percentile(99);
  }
  std::printf(
      "\nSummary: peak hosts %zu, final hosts %zu, migrations %zu,\n"
      "median delay %.0f ms, p99 delay %.0f ms, publications %llu,\n"
      "notifications %llu\n",
      outcome.peak_hosts, outcome.final_hosts, outcome.migrations,
      outcome.delay_avg_ms, outcome.delay_p99_ms,
      static_cast<unsigned long long>(bed.delays().publications_completed()),
      static_cast<unsigned long long>(bed.delays().notifications()));
  return outcome;
}

}  // namespace esh::bench
