// Figure 7: impact of migrations on notification delays. Same layout as
// Table I with 100 K stored subscriptions and a constant 100 pub/s flow;
// two AP slices, then two M slices, then one EP slice migrate at fixed
// times. The paper observes a steady-state delay around 500 ms rising to
// less than two seconds around the M migrations.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "workload/schedule.hpp"

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  using namespace esh;
  auto config = bench::paper_config(8, 100'000);
  config.ap_slices = 4;
  config.workload.m_slices = 8;
  config.ep_slices = 4;
  config.placement = [](const std::vector<HostId>& workers) {
    pubsub::HostAssignment assignment;
    assignment["AP"] = {workers[0], workers[1]};
    assignment["M"] = {workers[2], workers[3], workers[4], workers[5]};
    assignment["EP"] = {workers[6], workers[7]};
    return assignment;
  };
  harness::Testbed bed{config};
  bed.store_subscriptions(100'000);
  bed.delays().enable_series(seconds(5));

  auto driver = bed.drive(
      std::make_shared<workload::ConstantRate>(100.0, seconds(280)));

  struct PlannedMigration {
    SimTime at;
    const char* op;
    std::size_t index;
  };
  const std::vector<PlannedMigration> plan{
      {seconds(60), "AP", 0},  {seconds(85), "AP", 1},
      {seconds(115), "M", 0},  {seconds(155), "M", 1},
      {seconds(200), "EP", 0},
  };
  const auto workers = bed.worker_hosts();
  std::vector<std::pair<SimTime, std::string>> markers;
  for (const auto& planned : plan) {
    bed.simulator().schedule_at(planned.at, [&bed, &markers, planned,
                                             workers] {
      const SliceId slice = bed.hub().slices_of(planned.op)[planned.index];
      const HostId src = bed.engine().slice_host(slice);
      // Deterministic "other host": next worker in the ring.
      HostId dst = src;
      for (std::size_t i = 0; i < workers.size(); ++i) {
        if (workers[i] == src) {
          dst = workers[(i + 1) % workers.size()];
          break;
        }
      }
      bed.engine().migrate(slice, dst, [&markers, planned](
                                            const engine::MigrationReport& r) {
        markers.emplace_back(
            r.completed,
            std::string(planned.op) + ":" + std::to_string(planned.index) +
                " done, total " +
                format_double(to_millis(r.total_duration()), 0) + " ms");
      });
      markers.emplace_back(planned.at, std::string("migrate ") + planned.op +
                                           ":" +
                                           std::to_string(planned.index));
    });
  }

  bed.run_for(seconds(290));
  driver->stop();

  bench::print_header("Figure 7: notification delay around migrations (ms)");
  bench::print_row({"t (s)", "avg", "std", "min", "max"}, 10);
  const auto* series = bed.delays().series();
  std::size_t marker = 0;
  for (const auto& bin : series->bins()) {
    while (marker < markers.size() && markers[marker].first < bin.start) {
      std::printf("    >>> %s\n", markers[marker].second.c_str());
      ++marker;
    }
    bench::print_row({bench::fmt(to_seconds(bin.start), 0),
                      bench::fmt(bin.stats.mean(), 0),
                      bench::fmt(bin.stats.stddev(), 0),
                      bench::fmt(bin.stats.min(), 0),
                      bench::fmt(bin.stats.max(), 0)},
                     10);
  }
  while (marker < markers.size()) {
    std::printf("    >>> %s\n", markers[marker].second.c_str());
    ++marker;
  }
  std::printf(
      "\nPaper: steady state ~500 ms; spikes below 2 s around the M-slice\n"
      "migrations; AP/EP migrations barely visible.\n");
  return 0;
}
