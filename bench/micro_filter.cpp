// Micro-benchmarks of the filtering substrate (google-benchmark):
//  - real ASPE encryption and matching, sweeping the attribute count d to
//    exhibit the O(d^2) per-operation cost the paper's workload analysis
//    relies on (§VI-B);
//  - plain-text matchers (brute force vs counting index) sweeping the
//    number of stored subscriptions;
//  - the oracle matcher used by the cluster-scale experiments.
//  - a batched-vs-scalar wall-clock sweep (--batch_sweep): pubs/sec per
//    scheme per batch size, emitted as JSON, with the batched outcomes
//    verified identical (subscribers and simulated work_units) to scalar.
//  - a threads x batch wall-clock sweep (--thread_sweep): pubs/sec of the
//    pooled match_batch backend per scheme, thread count and batch size,
//    emitted as JSON, with every pooled outcome verified identical to the
//    scalar single-thread pass.
//  - a pipeline sweep (--pipeline_sweep): wall-clock of a full StreamHub
//    run (AP route planning, M matching and EP merge assembly all offloaded
//    to the worker pool) per thread count and dispatch batch cap, emitted
//    as JSON, with every configuration's simulated outcome verified
//    identical to the serial single-thread single-event-dispatch run.
//  - an index sweep (--index_sweep): per-publication match work-units and
//    wall-clock of IntervalIndexMatcher vs BruteForceMatcher while the
//    store scales 100 K -> 1 M subscriptions at a 1 % matching rate,
//    emitted as JSON (BENCH_index.json), with subscriber-set agreement
//    verified at every size -- before and after a churn phase.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "filter/aspe.hpp"
#include "filter/interval_index.hpp"
#include "filter/matcher.hpp"
#include "harness/testbed.hpp"
#include "workload/generator.hpp"
#include "workload/oracle.hpp"
#include "workload/schedule.hpp"

namespace {

using namespace esh;

void BM_AspeEncryptPublication(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(d, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{d, 0.01, 3}};
  auto pub = gen.next_publication();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encrypt(pub));
  }
  state.SetComplexityN(static_cast<std::int64_t>(d));
}
BENCHMARK(BM_AspeEncryptPublication)->RangeMultiplier(2)->Range(2, 16)
    ->Complexity(benchmark::oNSquared);

void BM_AspeEncryptSubscription(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(d, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{d, 0.01, 3}};
  const auto sub = gen.subscription(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encrypt(sub));
  }
}
BENCHMARK(BM_AspeEncryptSubscription)->RangeMultiplier(2)->Range(2, 16);

// One encrypted publication against one stored subscription: the paper's
// per-operation cost, quadratic in d (2d scalar products of length d+3).
void BM_AspeMatchOnePair(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(d, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{d, 0.5, 3}};
  const auto esub = enc.encrypt(gen.subscription(0));
  const auto epub = enc.encrypt(gen.next_publication());
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::encrypted_match(esub, epub));
  }
  state.SetComplexityN(static_cast<std::int64_t>(d));
}
BENCHMARK(BM_AspeMatchOnePair)->RangeMultiplier(2)->Range(2, 32)
    ->Complexity(benchmark::oNSquared);

void BM_AspeMatcherStore(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(4, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{4, 0.01, 3}};
  filter::AspeMatcher matcher;
  for (std::uint64_t i = 0; i < n; ++i) {
    matcher.add(filter::AnySubscription{enc.encrypt(gen.subscription(i))});
  }
  const auto epub = enc.encrypt(gen.next_publication());
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(filter::AnyPublication{epub}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AspeMatcherStore)->RangeMultiplier(4)->Range(64, 16384);

template <typename MatcherT>
void plain_matcher_bench(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  workload::PlainWorkload gen{{4, 0.01, 3}};
  MatcherT matcher;
  for (std::uint64_t i = 0; i < n; ++i) {
    matcher.add(filter::AnySubscription{gen.subscription(i)});
  }
  const auto pub = gen.next_publication();
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(filter::AnyPublication{pub}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_PlainBruteForce(benchmark::State& state) {
  plain_matcher_bench<filter::BruteForceMatcher>(state);
}
BENCHMARK(BM_PlainBruteForce)->RangeMultiplier(4)->Range(256, 65536);

void BM_PlainCountingIndex(benchmark::State& state) {
  plain_matcher_bench<filter::CountingIndexMatcher>(state);
}
BENCHMARK(BM_PlainCountingIndex)->RangeMultiplier(4)->Range(256, 65536);

void BM_OracleMatcher(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  workload::OracleParams params;
  params.total_subscriptions = n;
  params.m_slices = 16;
  workload::OracleWorkload wl{params};
  auto matcher = wl.make_matcher({}, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (wl.oracle()->slice_of(i) == 0) {
      matcher->add(filter::AnySubscription{wl.subscription(i)});
    }
  }
  std::uint64_t pub = 0;
  for (auto _ : state) {
    filter::EncryptedPublication p;
    p.id = PublicationId{++pub};
    benchmark::DoNotOptimize(matcher->match(filter::AnyPublication{p}));
  }
}
BENCHMARK(BM_OracleMatcher)->RangeMultiplier(4)->Range(4096, 262144);

void BM_AspeStateSerialization(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(4, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{4, 0.01, 3}};
  filter::AspeMatcher matcher;
  for (std::uint64_t i = 0; i < n; ++i) {
    matcher.add(filter::AnySubscription{enc.encrypt(gen.subscription(i))});
  }
  for (auto _ : state) {
    BinaryWriter w;
    matcher.serialize_state(w);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(matcher.state_bytes()));
}
BENCHMARK(BM_AspeStateSerialization)->RangeMultiplier(4)->Range(256, 4096);

// ---- batched-vs-scalar wall-clock sweep --------------------------------------
//
// Real elapsed time of match() loops vs match_batch() chunks over one
// fixed publication set, per scheme and batch size. The simulated cost
// accounting is batching-invariant by design, so this sweep is the place
// where the batch kernels' wall-clock win (SoA tiles, grouped column
// scans, blocked ASPE rows) is actually visible -- and it doubles as an
// end-to-end identity check: any outcome divergence fails the run.

double time_best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// Returns false (after reporting on stderr) on any scalar/batched outcome
// divergence.
bool sweep_scheme(const char* name, filter::Matcher& matcher,
                  const std::vector<filter::AnyPublication>& pubs,
                  const std::vector<std::size_t>& batch_sizes, bool last) {
  auto scalar_pass = [&] {
    std::vector<filter::MatchOutcome> out;
    out.reserve(pubs.size());
    for (const filter::AnyPublication& pub : pubs) {
      out.push_back(matcher.match(pub));
    }
    return out;
  };
  auto batched_pass = [&](std::size_t batch) {
    std::vector<filter::MatchOutcome> out;
    out.reserve(pubs.size());
    for (std::size_t i = 0; i < pubs.size(); i += batch) {
      const std::size_t n = std::min(batch, pubs.size() - i);
      auto chunk = matcher.match_batch(
          std::span<const filter::AnyPublication>{pubs.data() + i, n});
      for (auto& outcome : chunk) out.push_back(std::move(outcome));
    }
    return out;
  };

  const std::vector<filter::MatchOutcome> ref = scalar_pass();  // warm + truth
  std::uint64_t total_matches = 0;
  for (const auto& outcome : ref) total_matches += outcome.subscribers.size();

  const double scalar_s = time_best_seconds(3, [&] { scalar_pass(); });
  const double scalar_rate = static_cast<double>(pubs.size()) / scalar_s;

  std::printf("    {\"scheme\": \"%s\", \"subscriptions\": %zu, "
              "\"publications\": %zu,\n",
              name, matcher.subscription_count(), pubs.size());
  std::printf("     \"matches_total\": %llu, \"scalar_pubs_per_sec\": %.1f,\n",
              static_cast<unsigned long long>(total_matches), scalar_rate);
  std::printf("     \"batched\": [");
  bool ok = true;
  for (std::size_t bi = 0; bi < batch_sizes.size(); ++bi) {
    const std::size_t batch = batch_sizes[bi];
    const auto got = batched_pass(batch);  // warm + verify
    for (std::size_t p = 0; p < pubs.size(); ++p) {
      if (got[p].subscribers != ref[p].subscribers) {
        std::fprintf(stderr,
                     "%s: batch %zu diverged from scalar on publication %zu "
                     "(subscriber set)\n",
                     name, batch, p);
        ok = false;
      }
      if (got[p].work_units != ref[p].work_units) {
        std::fprintf(stderr,
                     "%s: batch %zu diverged from scalar on publication %zu "
                     "(work_units %f vs %f)\n",
                     name, batch, p, got[p].work_units, ref[p].work_units);
        ok = false;
      }
    }
    const double batch_s = time_best_seconds(3, [&] { batched_pass(batch); });
    const double rate = static_cast<double>(pubs.size()) / batch_s;
    std::printf("%s\n      {\"batch\": %zu, \"pubs_per_sec\": %.1f, "
                "\"speedup_vs_scalar\": %.3f}",
                bi == 0 ? "" : ",", batch, rate, rate / scalar_rate);
  }
  std::printf("],\n     \"results_identical\": %s, "
              "\"work_units_identical\": %s}%s\n",
              ok ? "true" : "false", ok ? "true" : "false", last ? "" : ",");
  return ok;
}

int run_batch_sweep() {
  const std::vector<std::size_t> batch_sizes = {1, 4, 16, 64, 256};
  constexpr std::size_t kDims = 4;
  constexpr std::size_t kPlainSubs = 200000;
  constexpr std::size_t kAspeSubs = 8000;
  constexpr std::size_t kPlainPubs = 512;
  constexpr std::size_t kAspePubs = 512;

  workload::PlainWorkload plain_gen{{kDims, 0.01, 7}};
  filter::BruteForceMatcher brute;
  filter::CountingIndexMatcher counting;
  for (std::size_t i = 0; i < kPlainSubs; ++i) {
    const auto sub = plain_gen.subscription(i);
    brute.add(filter::AnySubscription{sub});
    counting.add(filter::AnySubscription{sub});
  }
  std::vector<filter::AnyPublication> plain_pubs;
  for (std::size_t i = 0; i < kPlainPubs; ++i) {
    plain_pubs.emplace_back(plain_gen.next_publication());
  }

  workload::EncryptedWorkload enc_gen{{kDims, 0.01, 7}};
  filter::AspeMatcher aspe;
  for (std::size_t i = 0; i < kAspeSubs; ++i) {
    aspe.add(filter::AnySubscription{enc_gen.subscription(i)});
  }
  std::vector<filter::AnyPublication> enc_pubs;
  for (std::size_t i = 0; i < kAspePubs; ++i) {
    enc_pubs.emplace_back(enc_gen.next_publication());
  }

  std::printf("{\n  \"benchmark\": \"micro_filter_batch_sweep\",\n"
              "  \"dimensions\": %zu,\n  \"schemes\": [\n",
              kDims);
  bool ok = true;
  ok &= sweep_scheme("plain-brute", brute, plain_pubs, batch_sizes, false);
  ok &= sweep_scheme("plain-counting", counting, plain_pubs, batch_sizes,
                     false);
  ok &= sweep_scheme("aspe", aspe, enc_pubs, batch_sizes, true);
  std::printf("  ]\n}\n");
  return ok ? 0 : 2;
}

// ---- threads x batch wall-clock sweep ----------------------------------------
//
// Real elapsed time of match_batch() with the worker pool installed, per
// scheme, thread count and batch size. Before any timing, every pooled
// configuration's outcomes (subscriber vectors AND simulated work_units)
// are checked identical to the scalar single-thread pass -- the pool is
// bit-deterministic by construction, and this sweep enforces it end to
// end. Speedups are relative to the 1-thread run of the same batch size.

// Returns false (after reporting on stderr) on any divergence.
bool thread_sweep_scheme(const char* name, filter::Matcher& matcher,
                         const std::vector<filter::AnyPublication>& pubs,
                         const std::vector<std::size_t>& thread_counts,
                         const std::vector<std::size_t>& batch_sizes,
                         bool last) {
  auto batched_pass = [&](std::size_t batch) {
    std::vector<filter::MatchOutcome> out;
    out.reserve(pubs.size());
    for (std::size_t i = 0; i < pubs.size(); i += batch) {
      const std::size_t n = std::min(batch, pubs.size() - i);
      auto chunk = matcher.match_batch(
          std::span<const filter::AnyPublication>{pubs.data() + i, n});
      for (auto& outcome : chunk) out.push_back(std::move(outcome));
    }
    return out;
  };

  matcher.set_thread_pool(nullptr);
  const std::vector<filter::MatchOutcome> ref =
      batched_pass(batch_sizes.back());  // warm + truth (scalar backend)

  std::printf("    {\"scheme\": \"%s\", \"subscriptions\": %zu, "
              "\"publications\": %zu,\n     \"sweep\": [",
              name, matcher.subscription_count(), pubs.size());
  bool ok = true;
  bool first = true;
  std::vector<double> base_rate(batch_sizes.size(), 0.0);
  for (const std::size_t threads : thread_counts) {
    ThreadPool pool{threads};
    matcher.set_thread_pool(threads > 1 ? &pool : nullptr);
    for (std::size_t bi = 0; bi < batch_sizes.size(); ++bi) {
      const std::size_t batch = batch_sizes[bi];
      const auto got = batched_pass(batch);  // warm + verify
      for (std::size_t p = 0; p < pubs.size(); ++p) {
        if (got[p].subscribers != ref[p].subscribers ||
            got[p].work_units != ref[p].work_units) {
          std::fprintf(stderr,
                       "%s: %zu threads, batch %zu diverged from scalar on "
                       "publication %zu\n",
                       name, threads, batch, p);
          ok = false;
        }
      }
      const double s = time_best_seconds(3, [&] { batched_pass(batch); });
      const double rate = static_cast<double>(pubs.size()) / s;
      if (threads == thread_counts.front()) base_rate[bi] = rate;
      std::printf("%s\n      {\"threads\": %zu, \"batch\": %zu, "
                  "\"pubs_per_sec\": %.1f, \"speedup_vs_1t\": %.3f}",
                  first ? "" : ",", threads, batch, rate,
                  rate / base_rate[bi]);
      first = false;
    }
  }
  matcher.set_thread_pool(nullptr);
  std::printf("],\n     \"results_identical\": %s}%s\n",
              ok ? "true" : "false", last ? "" : ",");
  return ok;
}

int run_thread_sweep() {
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<std::size_t> batch_sizes = {64, 256};
  constexpr std::size_t kDims = 4;
  constexpr std::size_t kPlainSubs = 100000;
  constexpr std::size_t kAspeSubs = 8000;
  constexpr std::size_t kPubs = 256;

  workload::PlainWorkload plain_gen{{kDims, 0.01, 7}};
  filter::BruteForceMatcher brute;
  filter::CountingIndexMatcher counting;
  for (std::size_t i = 0; i < kPlainSubs; ++i) {
    const auto sub = plain_gen.subscription(i);
    brute.add(filter::AnySubscription{sub});
    counting.add(filter::AnySubscription{sub});
  }
  std::vector<filter::AnyPublication> plain_pubs;
  for (std::size_t i = 0; i < kPubs; ++i) {
    plain_pubs.emplace_back(plain_gen.next_publication());
  }

  workload::EncryptedWorkload enc_gen{{kDims, 0.01, 7}};
  filter::AspeMatcher aspe;
  for (std::size_t i = 0; i < kAspeSubs; ++i) {
    aspe.add(filter::AnySubscription{enc_gen.subscription(i)});
  }
  std::vector<filter::AnyPublication> enc_pubs;
  for (std::size_t i = 0; i < kPubs; ++i) {
    enc_pubs.emplace_back(enc_gen.next_publication());
  }

  std::printf("{\n  \"benchmark\": \"micro_filter_thread_sweep\",\n"
              "  \"dimensions\": %zu,\n  \"host_cores\": %u,\n"
              "  \"schemes\": [\n",
              kDims, std::thread::hardware_concurrency());
  bool ok = true;
  ok &= thread_sweep_scheme("plain-brute", brute, plain_pubs, thread_counts,
                            batch_sizes, false);
  ok &= thread_sweep_scheme("plain-counting", counting, plain_pubs,
                            thread_counts, batch_sizes, false);
  ok &= thread_sweep_scheme("aspe", aspe, enc_pubs, thread_counts,
                            batch_sizes, true);
  std::printf("  ]\n}\n");
  return ok ? 0 : 2;
}

// ---- index sweep: sublinear matching at 100 K -> 1 M subscriptions -----------
//
// The million-subscriber question: how does per-publication match cost
// scale with the store when predicates are selective? The workload is a
// social-feed shape -- each subscription has one narrow "topic" interval
// (attribute 0, width 0.02) and three broad contextual intervals sized so
// the overall matching rate stays at the paper's 1 % -- and a uniform
// publication stream. BruteForceMatcher pays O(subs) per publication by
// construction; IntervalIndexMatcher's covering rule registers the narrow
// interval, so candidates scale with its selectivity, not the store. The
// sweep reports simulated work-units per publication (the figure-relevant
// number: batching- and thread-invariant) and wall-clock as a sanity
// check, verifies subscriber-set agreement at every size, then churns ~2 %
// of the store (removals + fresh inserts forcing slot reuse and a tree
// rebuild) and re-verifies against a direct evaluation.

constexpr std::size_t kIndexDims = 4;
constexpr double kIndexNarrowWidth = 0.02;
constexpr double kIndexMatchingRate = 0.01;

filter::Subscription index_sweep_subscription(std::uint64_t index) {
  Rng rng{0x5eedULL ^ (index * 0x9e3779b97f4a7c15ULL + 5)};
  // Width product = matching rate: one narrow topic interval plus three
  // equal broad ones covering the residual.
  const double broad = std::cbrt(kIndexMatchingRate / kIndexNarrowWidth);
  filter::Subscription s;
  s.id = SubscriptionId{index + 1};
  s.subscriber = SubscriberId{index + 1};
  s.predicates.resize(kIndexDims);
  for (std::size_t a = 0; a < kIndexDims; ++a) {
    const double w = a == 0 ? kIndexNarrowWidth : broad;
    const double low = rng.uniform(0.0, 1.0 - w);
    s.predicates[a] = filter::Range{low, low + w};
  }
  return s;
}

std::vector<filter::AnyPublication> index_sweep_publications(std::size_t count) {
  std::vector<filter::AnyPublication> pubs;
  pubs.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    Rng rng{0xb0b0ULL ^ (p * 0xbf58476d1ce4e5b9ULL + 3)};
    filter::Publication pub;
    pub.id = PublicationId{p + 1};
    pub.attributes.resize(kIndexDims);
    for (double& v : pub.attributes) v = rng.next_double();
    pubs.emplace_back(std::move(pub));
  }
  return pubs;
}

std::vector<SubscriberId> sorted_subscribers(std::vector<SubscriberId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

// One store size: returns false (after reporting on stderr) on any
// divergence between the index backend, the brute reference, and the
// direct post-churn evaluation.
bool index_sweep_size(std::size_t n, bool last) {
  constexpr std::size_t kPubs = 32;
  filter::BruteForceMatcher brute;
  filter::IntervalIndexMatcher interval;
  std::vector<filter::Subscription> all_subs;
  all_subs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    all_subs.push_back(index_sweep_subscription(i));
    brute.add(filter::AnySubscription{all_subs.back()});
    interval.add(filter::AnySubscription{all_subs.back()});
  }
  const std::vector<filter::AnyPublication> pubs =
      index_sweep_publications(kPubs);
  const std::span<const filter::AnyPublication> span{pubs.data(), pubs.size()};

  // Warm passes double as the agreement check (and trigger the one-off
  // index build before timing).
  const auto ref = brute.match_batch(span);
  const auto got = interval.match_batch(span);
  bool ok = true;
  double brute_units = 0.0;
  double index_units = 0.0;
  std::uint64_t total_matches = 0;
  for (std::size_t p = 0; p < pubs.size(); ++p) {
    if (sorted_subscribers(got[p].subscribers) !=
        sorted_subscribers(ref[p].subscribers)) {
      std::fprintf(stderr,
                   "index_sweep: %zu subs, publication %zu subscriber sets "
                   "diverge (index %zu vs brute %zu)\n",
                   n, p, got[p].subscribers.size(), ref[p].subscribers.size());
      ok = false;
    }
    brute_units += ref[p].work_units;
    index_units += got[p].work_units;
    total_matches += ref[p].subscribers.size();
  }
  brute_units /= static_cast<double>(pubs.size());
  index_units /= static_cast<double>(pubs.size());

  const double brute_s =
      time_best_seconds(3, [&] { (void)brute.match_batch(span); });
  const double index_s =
      time_best_seconds(3, [&] { (void)interval.match_batch(span); });
  const double brute_rate = static_cast<double>(pubs.size()) / brute_s;
  const double index_rate = static_cast<double>(pubs.size()) / index_s;

  // Churn phase: remove ~2 % of the store, insert the same number of fresh
  // subscriptions (slot reuse + rebuild), verify against direct evaluation.
  std::vector<char> dead(all_subs.size(), 0);
  std::size_t removed = 0;
  for (std::size_t i = 7; i < n; i += 50) {
    if (!interval.remove(all_subs[i].id)) {
      std::fprintf(stderr, "index_sweep: remove of stored id failed\n");
      ok = false;
    }
    dead[i] = 1;
    ++removed;
  }
  for (std::uint64_t j = 0; j < removed; ++j) {
    all_subs.push_back(index_sweep_subscription(n + j));
    dead.push_back(0);
    interval.add(filter::AnySubscription{all_subs.back()});
  }
  constexpr std::size_t kChurnPubs = 4;
  for (std::size_t p = 0; p < kChurnPubs; ++p) {
    const auto& plain = std::get<filter::Publication>(pubs[p]);
    std::vector<SubscriberId> expected;
    for (std::size_t i = 0; i < all_subs.size(); ++i) {
      if (!dead[i] && all_subs[i].matches(plain)) {
        expected.push_back(all_subs[i].subscriber);
      }
    }
    const auto outcome = interval.match(pubs[p]);
    if (sorted_subscribers(outcome.subscribers) !=
        sorted_subscribers(std::move(expected))) {
      std::fprintf(stderr,
                   "index_sweep: %zu subs, post-churn publication %zu "
                   "diverges from direct evaluation\n",
                   n, p);
      ok = false;
    }
  }

  std::printf("    {\"subscriptions\": %zu, \"publications\": %zu,\n"
              "     \"matches_per_pub\": %.1f,\n"
              "     \"brute_work_units_per_pub\": %.1f, "
              "\"index_work_units_per_pub\": %.1f,\n"
              "     \"work_reduction_factor\": %.1f,\n"
              "     \"brute_pubs_per_sec\": %.1f, "
              "\"index_pubs_per_sec\": %.1f, \"wall_clock_speedup\": %.2f,\n"
              "     \"churned\": %zu, \"results_identical\": %s}%s\n",
              n, pubs.size(),
              static_cast<double>(total_matches) /
                  static_cast<double>(pubs.size()),
              brute_units, index_units, brute_units / index_units, brute_rate,
              index_rate, index_rate / brute_rate, removed,
              ok ? "true" : "false", last ? "" : ",");
  return ok;
}

int run_index_sweep() {
  const std::vector<std::size_t> sizes = {100'000, 250'000, 500'000,
                                          1'000'000};
  std::printf("{\n  \"benchmark\": \"micro_filter_index_sweep\",\n"
              "  \"dimensions\": %zu,\n  \"matching_rate\": %.3f,\n"
              "  \"narrow_width\": %.3f,\n  \"sizes\": [\n",
              kIndexDims, kIndexMatchingRate, kIndexNarrowWidth);
  bool ok = true;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ok &= index_sweep_size(sizes[i], i + 1 == sizes.size());
  }
  std::printf("  ]\n}\n");
  return ok ? 0 : 2;
}

// ---- pipeline sweep: threads x dispatch batch over a full StreamHub run -----
//
// Unlike the matcher-only sweeps above, this drives the whole simulated
// pipeline: AP route planning, M matching and EP merge assembly all fan
// out over the engine's worker pool, while every commit stays on the
// simulator thread. The determinism contract says the simulated outcome
// is a function of the workload alone -- so before any timing, each
// (threads, dispatch_batch_max) cell's outcome is checked identical to
// the serial reference cell; only then is its wall-clock reported.

// The figure-relevant observables of one run. Byte-exact equality across
// sweep cells is the precondition for timing them.
struct PipelineOutcome {
  std::uint64_t notifications = 0;
  std::uint64_t completed = 0;
  std::vector<double> percentiles;
  SimTime last_completion{};
  std::vector<std::pair<std::uint64_t, double>> work_us;
  // The wire counters are part of the determinism contract too: a thread
  // count that changes what the network saw has leaked into the schedule.
  net::NetworkStats net;

  bool operator==(const PipelineOutcome&) const = default;
};

PipelineOutcome run_pipeline_once(std::size_t threads,
                                  std::size_t dispatch_batch_max) {
  harness::TestbedConfig config;
  config.worker_hosts = 3;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 3000;
  config.workload.matching_rate = 0.02;
  config.workload.m_slices = 3;
  config.source_slices = 2;
  config.ap_slices = 3;
  config.ep_slices = 3;
  config.sink_slices = 2;
  config.engine.flush_interval = millis(10);
  config.engine.control_tick = millis(5);
  config.engine.probe_interval = millis(100);
  config.engine.worker_threads = threads;
  config.engine.dispatch_batch_max = dispatch_batch_max;
  config.seed = 97;
  harness::Testbed bed{config};
  bed.store_subscriptions(3000);
  auto driver = bed.drive(
      std::make_shared<workload::ConstantRate>(400.0, seconds(2)));
  bed.run_for(seconds(2) + millis(10));
  driver->stop();
  bed.run_for(seconds(2));

  PipelineOutcome outcome;
  const auto& collector = bed.delays();
  outcome.notifications = collector.notifications();
  outcome.completed = collector.publications_completed();
  outcome.percentiles =
      collector.delays_ms().percentiles({0, 25, 50, 75, 90, 99, 100});
  outcome.last_completion = collector.last_completion();
  std::vector<HostId> hosts = bed.pool().active_hosts();
  std::sort(hosts.begin(), hosts.end());
  for (const HostId host : hosts) {
    outcome.work_us.emplace_back(host.value(),
                                 bed.pool().host(host).busy_core_us());
  }
  outcome.net = bed.network().stats();
  return outcome;
}

int run_pipeline_sweep() {
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<std::size_t> batch_caps = {1, 16, 64};

  const PipelineOutcome ref =
      run_pipeline_once(thread_counts.front(), batch_caps.front());

  std::printf("{\n  \"benchmark\": \"micro_filter_pipeline_sweep\",\n"
              "  \"host_cores\": %u,\n"
              "  \"publications_completed\": %llu,\n",
              std::thread::hardware_concurrency(),
              static_cast<unsigned long long>(ref.completed));
  // Reference-run wire counters: identical for every sweep cell (they are
  // part of the outcome fingerprint checked below).
  std::printf("  \"network\": {\"sent\": %llu, \"delivered\": %llu, "
              "\"dropped\": %llu, \"lost\": %llu, \"duplicated\": %llu, "
              "\"reordered\": %llu, \"corrupted\": %llu, "
              "\"retransmitted\": %llu, \"partitioned\": %llu},\n"
              "  \"sweep\": [",
              static_cast<unsigned long long>(ref.net.messages_sent),
              static_cast<unsigned long long>(ref.net.messages_delivered),
              static_cast<unsigned long long>(ref.net.messages_dropped),
              static_cast<unsigned long long>(ref.net.messages_lost),
              static_cast<unsigned long long>(ref.net.messages_duplicated),
              static_cast<unsigned long long>(ref.net.messages_reordered),
              static_cast<unsigned long long>(ref.net.messages_corrupted),
              static_cast<unsigned long long>(ref.net.messages_retransmitted),
              static_cast<unsigned long long>(ref.net.messages_partitioned));
  bool ok = ref.completed > 0;
  bool first = true;
  double base_rate = 0.0;
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t batch : batch_caps) {
      if (run_pipeline_once(threads, batch) != ref) {
        std::fprintf(stderr,
                     "pipeline_sweep: %zu threads, batch %zu diverged from "
                     "the serial reference outcome\n",
                     threads, batch);
        ok = false;
      }
      const double s = time_best_seconds(
          3, [&] { run_pipeline_once(threads, batch); });
      const double rate = static_cast<double>(ref.completed) / s;
      if (base_rate == 0.0) base_rate = rate;
      std::printf("%s\n    {\"threads\": %zu, \"dispatch_batch_max\": %zu, "
                  "\"wall_s\": %.3f, \"pubs_per_sec\": %.1f, "
                  "\"speedup_vs_serial\": %.3f}",
                  first ? "" : ",", threads, batch, s, rate,
                  rate / base_rate);
      first = false;
    }
  }
  std::printf("],\n  \"results_identical\": %s\n}\n", ok ? "true" : "false");
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--batch_sweep") return run_batch_sweep();
    if (std::string_view{argv[i]} == "--thread_sweep") {
      return run_thread_sweep();
    }
    if (std::string_view{argv[i]} == "--pipeline_sweep") {
      return run_pipeline_sweep();
    }
    if (std::string_view{argv[i]} == "--index_sweep") return run_index_sweep();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
