// Micro-benchmarks of the filtering substrate (google-benchmark):
//  - real ASPE encryption and matching, sweeping the attribute count d to
//    exhibit the O(d^2) per-operation cost the paper's workload analysis
//    relies on (§VI-B);
//  - plain-text matchers (brute force vs counting index) sweeping the
//    number of stored subscriptions;
//  - the oracle matcher used by the cluster-scale experiments.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "filter/aspe.hpp"
#include "filter/matcher.hpp"
#include "workload/generator.hpp"
#include "workload/oracle.hpp"

namespace {

using namespace esh;

void BM_AspeEncryptPublication(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(d, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{d, 0.01, 3}};
  auto pub = gen.next_publication();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encrypt(pub));
  }
  state.SetComplexityN(static_cast<std::int64_t>(d));
}
BENCHMARK(BM_AspeEncryptPublication)->RangeMultiplier(2)->Range(2, 16)
    ->Complexity(benchmark::oNSquared);

void BM_AspeEncryptSubscription(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(d, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{d, 0.01, 3}};
  const auto sub = gen.subscription(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encrypt(sub));
  }
}
BENCHMARK(BM_AspeEncryptSubscription)->RangeMultiplier(2)->Range(2, 16);

// One encrypted publication against one stored subscription: the paper's
// per-operation cost, quadratic in d (2d scalar products of length d+3).
void BM_AspeMatchOnePair(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(d, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{d, 0.5, 3}};
  const auto esub = enc.encrypt(gen.subscription(0));
  const auto epub = enc.encrypt(gen.next_publication());
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::encrypted_match(esub, epub));
  }
  state.SetComplexityN(static_cast<std::int64_t>(d));
}
BENCHMARK(BM_AspeMatchOnePair)->RangeMultiplier(2)->Range(2, 32)
    ->Complexity(benchmark::oNSquared);

void BM_AspeMatcherStore(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(4, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{4, 0.01, 3}};
  filter::AspeMatcher matcher;
  for (std::uint64_t i = 0; i < n; ++i) {
    matcher.add(filter::AnySubscription{enc.encrypt(gen.subscription(i))});
  }
  const auto epub = enc.encrypt(gen.next_publication());
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(filter::AnyPublication{epub}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AspeMatcherStore)->RangeMultiplier(4)->Range(64, 16384);

template <typename MatcherT>
void plain_matcher_bench(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  workload::PlainWorkload gen{{4, 0.01, 3}};
  MatcherT matcher;
  for (std::uint64_t i = 0; i < n; ++i) {
    matcher.add(filter::AnySubscription{gen.subscription(i)});
  }
  const auto pub = gen.next_publication();
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(filter::AnyPublication{pub}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_PlainBruteForce(benchmark::State& state) {
  plain_matcher_bench<filter::BruteForceMatcher>(state);
}
BENCHMARK(BM_PlainBruteForce)->RangeMultiplier(4)->Range(256, 65536);

void BM_PlainCountingIndex(benchmark::State& state) {
  plain_matcher_bench<filter::CountingIndexMatcher>(state);
}
BENCHMARK(BM_PlainCountingIndex)->RangeMultiplier(4)->Range(256, 65536);

void BM_OracleMatcher(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  workload::OracleParams params;
  params.total_subscriptions = n;
  params.m_slices = 16;
  workload::OracleWorkload wl{params};
  auto matcher = wl.make_matcher({}, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (wl.oracle()->slice_of(i) == 0) {
      matcher->add(filter::AnySubscription{wl.subscription(i)});
    }
  }
  std::uint64_t pub = 0;
  for (auto _ : state) {
    filter::EncryptedPublication p;
    p.id = PublicationId{++pub};
    benchmark::DoNotOptimize(matcher->match(filter::AnyPublication{p}));
  }
}
BENCHMARK(BM_OracleMatcher)->RangeMultiplier(4)->Range(4096, 262144);

void BM_AspeStateSerialization(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng{1};
  const filter::AspeKey key = filter::AspeKey::generate(4, rng);
  filter::AspeEncryptor enc{key, Rng{2}};
  workload::PlainWorkload gen{{4, 0.01, 3}};
  filter::AspeMatcher matcher;
  for (std::uint64_t i = 0; i < n; ++i) {
    matcher.add(filter::AnySubscription{enc.encrypt(gen.subscription(i))});
  }
  for (auto _ : state) {
    BinaryWriter w;
    matcher.serialize_state(w);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(matcher.state_bytes()));
}
BENCHMARK(BM_AspeStateSerialization)->RangeMultiplier(4)->Range(256, 4096);

}  // namespace

BENCHMARK_MAIN();
