// Key-level elasticity experiment: a skewed subscription population makes
// one M slice a hotspot that whole-slice migration cannot dilute — the
// slice alone exceeds what migrating it to any (empty) host could absorb.
// Three governance modes run the identical workload:
//
//   static     enforcement off: the hot slice saturates its host and the
//              backlog grows for the whole window.
//   migrate    enforcer with whole-slice migration only: the local rule
//              fires, but every plan keeps the hotspot intact — moving the
//              hot slice, or its neighbours, leaves one host saturated.
//   split      enforcer with key-level rules enabled: the hotspot-split
//              rule halves the slice's key coverage onto the least-loaded
//              host; after the automatic split the deployment sustains the
//              offered rate. When the load stops, the cold-merge rule folds
//              the pair back.
//
// Reported per mode: sustained tail throughput (completions/s over the
// last third of the publication window), delivery delay p50/p99, the
// split/merge/migration counts and the exactly-once audit after a full
// drain. With --json the same data is emitted as a JSON document.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/chaos.hpp"
#include "workload/schedule.hpp"

namespace {

constexpr double kRate = 780.0;          // pub/s, above one host's capacity
constexpr std::size_t kWindowSec = 60;   // publication window
constexpr std::size_t kTailSec = 20;     // sustained-throughput window

struct Mode {
  std::string name;
  bool enforce = false;
  bool splits = false;
};

struct RunResult {
  Mode mode;
  double tail_rate = 0.0;   // completions/s over the last kTailSec
  double window_rate = 0.0; // completions/s over the whole window
  double delay_p50_ms = 0.0;
  double delay_p99_ms = 0.0;
  std::size_t splits = 0;
  std::size_t merges = 0;
  std::size_t migrations = 0;
  bool drained = false;
  esh::harness::DeliveryAudit audit;
};

esh::harness::TestbedConfig split_config() {
  esh::harness::TestbedConfig config;
  // Five workers: AP+EP on the first two, the four M slices paired on the
  // next two, one spare. The skewed bucket gives M slice 0 more than half
  // of the 20 K subscriptions, so its host saturates below the offered
  // rate while the spare host idles.
  config.worker_hosts = 5;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 20'000;
  config.workload.matching_rate = 0.01;
  config.workload.m_slices = 4;
  config.workload.hot_fraction = 0.55;
  config.source_slices = 2;
  config.ap_slices = 4;
  config.ep_slices = 4;
  config.sink_slices = 2;
  config.engine.probe_interval = esh::millis(500);
  config.engine.worker_threads = esh::bench::threads_flag();
  config.iaas.max_hosts = 8;
  config.with_manager = true;
  config.manager.policy.target = 0.5;
  config.manager.policy.global_high = 0.95;
  config.manager.policy.global_low = 0.0;
  config.manager.policy.local_high = 0.9;
  config.manager.policy.local_low = 0.0;
  config.manager.policy.placement_cap = 0.6;
  config.manager.policy.grace = esh::seconds(5);
  config.manager.policy.scale_out_grace = esh::seconds(3);
  config.manager.policy.split_share = 0.6;
  config.manager.policy.merge_share = 0.10;
  config.placement = [](const std::vector<esh::HostId>& workers) {
    esh::pubsub::HostAssignment assignment;
    assignment["AP"] = {workers[0], workers[1]};
    assignment["EP"] = {workers[0], workers[1]};
    assignment["M"] = {workers[2], workers[3]};
    return assignment;  // workers[4] stays empty: migration headroom
  };
  config.seed = 77;
  return config;
}

RunResult run_one(const Mode& mode) {
  using namespace esh;
  RunResult result;
  result.mode = mode;

  auto config = split_config();
  config.manager.policy.enable_splits = mode.splits;
  harness::Testbed bed{config};
  bed.manager()->set_enforcement(mode.enforce);
  bed.delays().enable_audit();
  bed.store_subscriptions(config.workload.total_subscriptions);

  const SimTime publish_start = bed.simulator().now();
  auto driver = bed.drive(
      std::make_shared<workload::ConstantRate>(kRate, seconds(kWindowSec)));

  // Completions at the tail boundary: everything after this point was
  // delivered at the post-enforcement steady state.
  const std::uint64_t before = bed.delays().publications_completed();
  std::uint64_t at_tail_start = 0;
  bed.simulator().schedule(seconds(kWindowSec - kTailSec), [&] {
    at_tail_start = bed.delays().publications_completed();
  });
  bed.run_for(seconds(kWindowSec) + millis(10));
  const std::uint64_t at_window_end = bed.delays().publications_completed();
  driver->stop();

  result.window_rate = static_cast<double>(at_window_end - before) /
                       static_cast<double>(kWindowSec);
  result.tail_rate = static_cast<double>(at_window_end - at_tail_start) /
                     static_cast<double>(kTailSec);

  // Full drain: the saturated modes take tens of simulated seconds to work
  // off their backlog; exactly-once must hold for every mode regardless.
  result.drained = bed.run_until(
      [&] {
        return bed.delays().publications_completed() >=
               bed.hub().publications_sent();
      },
      seconds(300));
  bed.run_for(seconds(1));

  if (bed.delays().delays_ms().count() > 0) {
    result.delay_p50_ms = bed.delays().delays_ms().percentile(50);
    result.delay_p99_ms = bed.delays().delays_ms().percentile(99);
  }
  result.splits = bed.engine().splits_completed();
  result.merges = bed.engine().merges_completed();
  result.migrations = bed.manager()->migrations().size();
  result.audit = harness::verify_exactly_once(bed);
  (void)publish_start;
  return result;
}

void print_tables(const std::vector<RunResult>& results) {
  using namespace esh;
  bench::print_header(
      "Key-level split: skewed workload (55 % of 20 K subscriptions in one "
      "M slice) at 780 pub/s");
  bench::print_row({"mode", "tail pub/s", "window", "p50 (ms)", "p99 (ms)",
                    "splits", "merges", "migr", "exact-1x"},
                   11);
  for (const RunResult& r : results) {
    bench::print_row(
        {r.mode.name, bench::fmt(r.tail_rate, 0),
         bench::fmt(r.window_rate, 0), bench::fmt(r.delay_p50_ms, 0),
         bench::fmt(r.delay_p99_ms, 0), std::to_string(r.splits),
         std::to_string(r.merges), std::to_string(r.migrations),
         r.audit.exactly_once() ? "yes" : "NO"},
        11);
    std::printf(
        "    published %llu  delivered %llu  missing %llu  duplicated %llu"
        "  mismatched %llu  drained %s\n",
        static_cast<unsigned long long>(r.audit.published),
        static_cast<unsigned long long>(r.audit.delivered),
        static_cast<unsigned long long>(r.audit.missing),
        static_cast<unsigned long long>(r.audit.duplicated),
        static_cast<unsigned long long>(r.audit.mismatched),
        r.drained ? "yes" : "no");
  }
  std::printf(
      "\n  The hotspot slice exceeds one host's capacity: only the split\n"
      "  mode sustains the offered rate through the tail window.\n");
}

void print_json(const std::vector<RunResult>& results) {
  std::printf("{\n  \"benchmark\": \"fig_split\",\n"
              "  \"rate_pub_per_sec\": %.0f,\n  \"window_s\": %zu,\n"
              "  \"tail_s\": %zu,\n  \"modes\": [",
              kRate, kWindowSec, kTailSec);
  bool first = true;
  for (const RunResult& r : results) {
    std::printf(
        "%s\n    {\"mode\": \"%s\", \"tail_rate\": %.1f, "
        "\"window_rate\": %.1f, \"delay_p50_ms\": %.1f, "
        "\"delay_p99_ms\": %.1f,\n     \"splits\": %zu, \"merges\": %zu, "
        "\"migrations\": %zu, \"drained\": %s,\n"
        "     \"audit\": {\"published\": %llu, \"delivered\": %llu, "
        "\"missing\": %llu, \"duplicated\": %llu, \"mismatched\": %llu, "
        "\"exactly_once\": %s}}",
        first ? "" : ",", r.mode.name.c_str(), r.tail_rate, r.window_rate,
        r.delay_p50_ms, r.delay_p99_ms, r.splits, r.merges, r.migrations,
        r.drained ? "true" : "false",
        static_cast<unsigned long long>(r.audit.published),
        static_cast<unsigned long long>(r.audit.delivered),
        static_cast<unsigned long long>(r.audit.missing),
        static_cast<unsigned long long>(r.audit.duplicated),
        static_cast<unsigned long long>(r.audit.mismatched),
        r.audit.exactly_once() ? "true" : "false");
    first = false;
  }
  std::printf("]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const std::vector<Mode> modes{
      {"static", false, false},
      {"migrate", true, false},
      {"split", true, true},
  };
  std::vector<RunResult> results;
  for (const Mode& mode : modes) {
    if (!json) std::printf("running: %s ...\n", mode.name.c_str());
    results.push_back(run_one(mode));
  }
  if (json) {
    print_json(results);
  } else {
    print_tables(results);
  }
  // The split mode must out-sustain both baselines and stay exactly-once.
  const RunResult& split = results.back();
  bool ok = split.drained && split.splits >= 1;
  for (const RunResult& r : results) {
    ok = ok && r.audit.exactly_once();
    if (r.mode.name != "split") ok = ok && split.tail_rate > r.tail_rate;
  }
  return ok ? 0 : 2;
}
