// Recovery experiment: cost of healing a crashed worker as a function of
// the checkpoint interval. A worker dies under constant publication load;
// the manager detects the failure, quarantines the host, re-places the
// lost slices and replays the logged suffixes. Reported per interval: the
// RecoveryReport MTTR breakdown (detect / quarantine / place / replay),
// the delivery gap (longest stretch without a single new publication
// completing, sampled every 50 ms), and the oracle's exactly-once verdict.
// Longer checkpoint intervals retain longer logs, so the replay phase and
// the delivery gap grow with the interval.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "harness/chaos.hpp"
#include "workload/schedule.hpp"

namespace {

struct RunResult {
  double interval_s = 0.0;
  esh::SimTime crash_at{};
  esh::elastic::RecoveryReport report;
  double gap_ms = 0.0;
  bool healed = false;
  bool drained = false;
  esh::harness::DeliveryAudit audit;
};

esh::harness::TestbedConfig recovery_config(esh::SimDuration checkpoint) {
  esh::harness::TestbedConfig config;
  config.worker_hosts = 4;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 5000;
  config.workload.matching_rate = 0.02;
  config.workload.m_slices = 4;
  config.source_slices = 2;
  config.ap_slices = 4;
  config.ep_slices = 4;
  config.sink_slices = 2;
  config.engine.flush_interval = esh::millis(10);
  config.engine.control_tick = esh::millis(5);
  config.engine.probe_interval = esh::millis(100);
  config.engine.checkpoints.enabled = true;
  config.engine.checkpoints.interval = checkpoint;
  // This main builds its config from scratch (no paper_config), so --threads
  // has to be applied explicitly for the AP/M/EP offload pool.
  config.engine.worker_threads = esh::bench::threads_flag();
  config.iaas.max_hosts = 8;
  config.iaas.boot_delay = esh::millis(500);
  config.with_manager = true;
  config.manager.recovery.enabled = true;
  config.manager.recovery.detector =
      esh::elastic::FailureDetectorConfig{esh::millis(100), 2, 4};
  config.manager.recovery.attempt_timeout = esh::seconds(5);
  config.seed = 11;
  return config;
}

RunResult run_one(esh::SimDuration checkpoint) {
  using namespace esh;
  RunResult result;
  result.interval_s = to_millis(checkpoint) / 1000.0;

  harness::Testbed bed{recovery_config(checkpoint)};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();
  bed.store_subscriptions(5000);

  const SimDuration window = seconds(30);
  const SimTime publish_start = bed.simulator().now();
  const SimTime crash_at = publish_start + seconds(15);
  result.crash_at = crash_at;
  const SimTime publish_end = publish_start + window;
  auto driver = bed.drive(std::make_shared<workload::ConstantRate>(
      300.0, window));

  harness::FaultSchedule schedule;
  schedule.crashes.push_back({crash_at, 1, 0.0, SimDuration{}});
  harness::ChaosRunner chaos{bed, schedule};
  chaos.arm();

  // Completion progress, sampled every 50 ms over the publication window:
  // the delivery gap is the longest stretch without any new completion.
  std::vector<SimTime> progress{publish_start};
  std::uint64_t completed = bed.delays().publications_completed();
  std::function<void()> sample = [&] {
    const auto now_completed = bed.delays().publications_completed();
    if (now_completed != completed) {
      completed = now_completed;
      progress.push_back(bed.simulator().now());
    }
    if (bed.simulator().now() < publish_end) {
      bed.simulator().schedule(millis(50), sample);
    }
  };
  bed.simulator().schedule(millis(50), sample);

  result.healed = bed.run_until(
      [&] {
        return !bed.manager()->recoveries().empty() &&
               !bed.manager()->recovery_in_progress();
      },
      seconds(60));
  result.drained = bed.run_until(
      [&] {
        return bed.simulator().now() > publish_end &&
               bed.delays().publications_completed() >=
                   bed.hub().publications_sent();
      },
      seconds(120));
  driver->stop();

  if (!bed.manager()->recoveries().empty()) {
    result.report = bed.manager()->recoveries().front();
  }
  SimDuration gap{};
  for (std::size_t i = 1; i < progress.size(); ++i) {
    gap = std::max(gap, progress[i] - progress[i - 1]);
  }
  result.gap_ms = to_millis(gap);
  result.audit = harness::verify_exactly_once(bed);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  using namespace esh;
  const std::vector<SimDuration> intervals{seconds(2), seconds(10)};
  std::vector<RunResult> results;
  for (SimDuration interval : intervals) {
    std::printf("running: checkpoint interval %.0f s ...\n",
                to_millis(interval) / 1000.0);
    results.push_back(run_one(interval));
  }

  bench::print_header(
      "Recovery: MTTR breakdown vs checkpoint interval (worker crash "
      "under 300 pub/s)");
  bench::print_row({"ckpt (s)", "detect", "quaran", "place", "replay",
                    "MTTR (ms)", "gap (ms)", "slices", "exact-1x"},
                   11);
  for (const RunResult& r : results) {
    const auto& rep = r.report;
    if (!r.healed || !rep.complete) {
      std::printf("  checkpoint %.0f s: recovery did not complete\n",
                  r.interval_s);
      continue;
    }
    bench::print_row(
        {bench::fmt(r.interval_s, 0),
         bench::fmt(to_millis(rep.detected - r.crash_at), 0),
         bench::fmt(to_millis(rep.quarantined - rep.detected), 0),
         bench::fmt(to_millis(rep.placed - rep.quarantined), 0),
         bench::fmt(to_millis(rep.recovered - rep.placed), 0),
         bench::fmt(to_millis(rep.mttr()), 0), bench::fmt(r.gap_ms, 0),
         std::to_string(rep.slices_recovered),
         r.audit.exactly_once() ? "yes" : "NO"},
        11);
    std::printf(
        "    published %llu  delivered %llu  missing %llu  duplicated %llu"
        "  mismatched %llu  drained %s\n",
        static_cast<unsigned long long>(r.audit.published),
        static_cast<unsigned long long>(r.audit.delivered),
        static_cast<unsigned long long>(r.audit.missing),
        static_cast<unsigned long long>(r.audit.duplicated),
        static_cast<unsigned long long>(r.audit.mismatched),
        r.drained ? "yes" : "no");
  }
  return 0;
}
