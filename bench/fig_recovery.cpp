// Recovery experiment: cost of healing a faulty worker under constant
// publication load, across three fault shapes.
//
//   crash      the worker dies outright; the manager detects the silence,
//              quarantines the host, re-places the lost slices and replays
//              the logged suffixes. Run at two checkpoint intervals:
//              longer intervals retain longer logs, so the replay phase
//              and the delivery gap grow with the interval.
//   partition  the worker is cut off bidirectionally for longer than the
//              failure detector's conviction window. From the cluster's
//              point of view this is a crash (the host is declared dead
//              and quarantined; healing cannot resurrect it), so the same
//              MTTR breakdown applies — but the wire sees partition drops
//              instead of a dead endpoint.
//   gray       the worker's NIC slows down x4 without losing a message.
//              The latency-aware detector marks it suspect and the manager
//              drains it proactively (graceful degradation); reported as
//              the drain's detect / dwell / drain breakdown instead of a
//              recovery MTTR.
//
// Reported per scenario: the phase breakdown, the delivery gap (longest
// stretch without a single new publication completing, sampled every
// 50 ms), the oracle's exactly-once verdict and the NetworkStats counters
// (so the snapshot captures network health alongside latency). With
// --json the same data is emitted as a JSON document instead of tables.
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/chaos.hpp"
#include "workload/schedule.hpp"

namespace {

struct Scenario {
  enum class Kind { kCrash, kPartition, kGray };
  std::string name;
  Kind kind = Kind::kCrash;
  esh::SimDuration checkpoint{};
};

struct RunResult {
  Scenario scenario;
  esh::SimTime fault_at{};
  esh::elastic::RecoveryReport report;  // crash / partition
  esh::elastic::DrainReport drain;      // gray
  double gap_ms = 0.0;
  bool healed = false;
  bool drained = false;
  esh::harness::DeliveryAudit audit;
  esh::net::NetworkStats net;
};

esh::harness::TestbedConfig recovery_config(const Scenario& scenario) {
  esh::harness::TestbedConfig config;
  config.worker_hosts = 4;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 5000;
  config.workload.matching_rate = 0.02;
  config.workload.m_slices = 4;
  config.source_slices = 2;
  config.ap_slices = 4;
  config.ep_slices = 4;
  config.sink_slices = 2;
  config.engine.flush_interval = esh::millis(10);
  config.engine.control_tick = esh::millis(5);
  config.engine.probe_interval = esh::millis(100);
  config.engine.checkpoints.enabled = true;
  config.engine.checkpoints.interval = scenario.checkpoint;
  // Orchestration rides the reliable control channel, so the MTTR numbers
  // hold under the injected faults by construction (retransmit counts land
  // in the network stats).
  config.engine.reliable_control = true;
  // This main builds its config from scratch (no paper_config), so --threads
  // has to be applied explicitly for the AP/M/EP offload pool.
  config.engine.worker_threads = esh::bench::threads_flag();
  config.iaas.max_hosts = 8;
  config.iaas.boot_delay = esh::millis(500);
  config.with_manager = true;
  config.manager.recovery.enabled = true;
  config.manager.recovery.detector =
      esh::elastic::FailureDetectorConfig{esh::millis(100), 2, 4};
  config.manager.recovery.attempt_timeout = esh::seconds(5);
  if (scenario.kind == Scenario::Kind::kGray) {
    // The gray host never goes silent; only the latency score can convict
    // it, and sustained suspicion triggers the proactive drain. The dwell
    // is a full second so warm-up latency spikes (5000 subscriptions are
    // stored before the drive starts) clear before any drain is armed.
    config.manager.recovery.detector.latency_suspect_factor = 2.0;
    config.manager.recovery.drain_suspects = true;
    config.manager.recovery.drain_after = esh::seconds(1);
  }
  config.seed = 11;
  return config;
}

RunResult run_one(const Scenario& scenario) {
  using namespace esh;
  RunResult result;
  result.scenario = scenario;

  harness::Testbed bed{recovery_config(scenario)};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();
  bed.store_subscriptions(5000);

  const SimDuration window = seconds(30);
  const SimTime publish_start = bed.simulator().now();
  const SimTime fault_at = publish_start + seconds(15);
  result.fault_at = fault_at;
  const SimTime publish_end = publish_start + window;
  auto driver = bed.drive(std::make_shared<workload::ConstantRate>(
      300.0, window));

  harness::FaultSchedule schedule;
  switch (scenario.kind) {
    case Scenario::Kind::kCrash:
      schedule.crashes.push_back({fault_at, 1, 0.0, SimDuration{}});
      break;
    case Scenario::Kind::kPartition:
      // 2 s of isolation outlasts the conviction window (400 ms of
      // silence), so the host is declared dead mid-partition.
      schedule.partitions.push_back({fault_at, seconds(2), {1}});
      break;
    case Scenario::Kind::kGray:
      // Degraded until the end of the run: the drain must finish while the
      // slowdown is still active.
      schedule.gray_degrades.push_back({fault_at, SimDuration{}, 1, 4.0});
      break;
  }
  harness::ChaosRunner chaos{bed, schedule};
  chaos.arm();

  // Completion progress, sampled every 50 ms over the publication window:
  // the delivery gap is the longest stretch without any new completion.
  std::vector<SimTime> progress{publish_start};
  std::uint64_t completed = bed.delays().publications_completed();
  std::function<void()> sample = [&] {
    const auto now_completed = bed.delays().publications_completed();
    if (now_completed != completed) {
      completed = now_completed;
      progress.push_back(bed.simulator().now());
    }
    if (bed.simulator().now() < publish_end) {
      bed.simulator().schedule(millis(50), sample);
    }
  };
  bed.simulator().schedule(millis(50), sample);

  // The drain that answers the gray scenario: the degraded worker itself,
  // convicted after the fault fired (a warm-up suspicion of some other
  // host must not satisfy the wait).
  const HostId gray_host = bed.worker_hosts()[1];
  const auto gray_drain = [&]() -> const elastic::DrainReport* {
    for (const elastic::DrainReport& d : bed.manager()->drains()) {
      if (d.host == gray_host && d.suspected >= fault_at) return &d;
    }
    return nullptr;
  };
  if (scenario.kind == Scenario::Kind::kGray) {
    result.healed = bed.run_until(
        [&] {
          const elastic::DrainReport* d = gray_drain();
          return d != nullptr && (d->complete || d->aborted);
        },
        seconds(60));
  } else {
    result.healed = bed.run_until(
        [&] {
          return !bed.manager()->recoveries().empty() &&
                 !bed.manager()->recovery_in_progress();
        },
        seconds(60));
  }
  result.drained = bed.run_until(
      [&] {
        return bed.simulator().now() > publish_end &&
               bed.delays().publications_completed() >=
                   bed.hub().publications_sent();
      },
      seconds(120));
  driver->stop();

  if (!bed.manager()->recoveries().empty()) {
    result.report = bed.manager()->recoveries().front();
  }
  if (const elastic::DrainReport* d = gray_drain()) {
    result.drain = *d;
  }
  SimDuration gap{};
  for (std::size_t i = 1; i < progress.size(); ++i) {
    gap = std::max(gap, progress[i] - progress[i - 1]);
  }
  result.gap_ms = to_millis(gap);
  result.audit = harness::verify_exactly_once(bed);
  result.net = bed.network().stats();
  return result;
}

// Phase breakdown, unified over the two report shapes: for crash/partition
// the RecoveryReport's detect / quarantine / place / replay, for gray the
// DrainReport's detect / dwell(=drain_after) / 0 / drain.
struct Phases {
  double detect_ms = 0, second_ms = 0, third_ms = 0, fourth_ms = 0;
  double total_ms = 0;
  std::size_t slices = 0;
  bool complete = false;
};

Phases phases_of(const RunResult& r) {
  using namespace esh;
  Phases p;
  if (r.scenario.kind == Scenario::Kind::kGray) {
    p.complete = r.healed && r.drain.complete;
    if (!p.complete) return p;
    p.detect_ms = to_millis(r.drain.suspected - r.fault_at);
    p.second_ms = to_millis(r.drain.started - r.drain.suspected);
    p.third_ms = 0.0;
    p.fourth_ms = to_millis(r.drain.completed - r.drain.started);
    p.total_ms = to_millis(r.drain.completed - r.fault_at);
    p.slices = r.drain.slices_moved;
    return p;
  }
  p.complete = r.healed && r.report.complete;
  if (!p.complete) return p;
  p.detect_ms = to_millis(r.report.detected - r.fault_at);
  p.second_ms = to_millis(r.report.quarantined - r.report.detected);
  p.third_ms = to_millis(r.report.placed - r.report.quarantined);
  p.fourth_ms = to_millis(r.report.recovered - r.report.placed);
  p.total_ms = to_millis(r.report.mttr());
  p.slices = r.report.slices_recovered;
  return p;
}

void print_tables(const std::vector<RunResult>& results) {
  using namespace esh;
  bench::print_header(
      "Recovery: phase breakdown per fault scenario (worker fault under "
      "300 pub/s)");
  bench::print_row({"scenario", "ckpt (s)", "detect", "phase2", "phase3",
                    "phase4", "total (ms)", "gap (ms)", "slices", "exact-1x"},
                   11);
  for (const RunResult& r : results) {
    const Phases p = phases_of(r);
    if (!p.complete) {
      std::printf("  %s: recovery did not complete\n",
                  r.scenario.name.c_str());
      continue;
    }
    bench::print_row(
        {r.scenario.name,
         bench::fmt(to_millis(r.scenario.checkpoint) / 1000.0, 0),
         bench::fmt(p.detect_ms, 0), bench::fmt(p.second_ms, 0),
         bench::fmt(p.third_ms, 0), bench::fmt(p.fourth_ms, 0),
         bench::fmt(p.total_ms, 0), bench::fmt(r.gap_ms, 0),
         std::to_string(p.slices), r.audit.exactly_once() ? "yes" : "NO"},
        11);
    std::printf(
        "    published %llu  delivered %llu  missing %llu  duplicated %llu"
        "  mismatched %llu  drained %s\n",
        static_cast<unsigned long long>(r.audit.published),
        static_cast<unsigned long long>(r.audit.delivered),
        static_cast<unsigned long long>(r.audit.missing),
        static_cast<unsigned long long>(r.audit.duplicated),
        static_cast<unsigned long long>(r.audit.mismatched),
        r.drained ? "yes" : "no");
    std::printf(
        "    net: sent %llu delivered %llu dropped %llu lost %llu"
        " duplicated %llu reordered %llu retransmitted %llu partitioned"
        " %llu\n",
        static_cast<unsigned long long>(r.net.messages_sent),
        static_cast<unsigned long long>(r.net.messages_delivered),
        static_cast<unsigned long long>(r.net.messages_dropped),
        static_cast<unsigned long long>(r.net.messages_lost),
        static_cast<unsigned long long>(r.net.messages_duplicated),
        static_cast<unsigned long long>(r.net.messages_reordered),
        static_cast<unsigned long long>(r.net.messages_retransmitted),
        static_cast<unsigned long long>(r.net.messages_partitioned));
  }
  std::printf(
      "\n  crash/partition phases: detect quarantine place replay;"
      " gray phases: detect dwell - drain\n");
}

void print_json(const std::vector<RunResult>& results) {
  using namespace esh;
  std::printf("{\n  \"benchmark\": \"fig_recovery\",\n"
              "  \"rate_pub_per_sec\": 300.0,\n  \"scenarios\": [");
  bool first = true;
  for (const RunResult& r : results) {
    const Phases p = phases_of(r);
    std::printf("%s\n    {\"scenario\": \"%s\", \"checkpoint_s\": %.0f, "
                "\"healed\": %s, \"drained\": %s, \"complete\": %s",
                first ? "" : ",", r.scenario.name.c_str(),
                to_millis(r.scenario.checkpoint) / 1000.0,
                r.healed ? "true" : "false", r.drained ? "true" : "false",
                p.complete ? "true" : "false");
    first = false;
    if (p.complete) {
      const bool gray = r.scenario.kind == Scenario::Kind::kGray;
      std::printf(",\n     \"phases_ms\": {\"detect\": %.1f, \"%s\": %.1f, "
                  "\"%s\": %.1f, \"%s\": %.1f},\n"
                  "     \"total_ms\": %.1f, \"gap_ms\": %.1f, "
                  "\"slices\": %zu",
                  p.detect_ms, gray ? "dwell" : "quarantine", p.second_ms,
                  gray ? "idle" : "place", p.third_ms,
                  gray ? "drain" : "replay", p.fourth_ms, p.total_ms,
                  r.gap_ms, p.slices);
    }
    std::printf(",\n     \"audit\": {\"published\": %llu, \"delivered\": "
                "%llu, \"missing\": %llu, \"duplicated\": %llu, "
                "\"mismatched\": %llu, \"exactly_once\": %s}",
                static_cast<unsigned long long>(r.audit.published),
                static_cast<unsigned long long>(r.audit.delivered),
                static_cast<unsigned long long>(r.audit.missing),
                static_cast<unsigned long long>(r.audit.duplicated),
                static_cast<unsigned long long>(r.audit.mismatched),
                r.audit.exactly_once() ? "true" : "false");
    std::printf(",\n     \"network\": {\"sent\": %llu, \"delivered\": %llu, "
                "\"dropped\": %llu, \"lost\": %llu, \"duplicated\": %llu, "
                "\"reordered\": %llu, \"corrupted\": %llu, "
                "\"retransmitted\": %llu, \"partitioned\": %llu}}",
                static_cast<unsigned long long>(r.net.messages_sent),
                static_cast<unsigned long long>(r.net.messages_delivered),
                static_cast<unsigned long long>(r.net.messages_dropped),
                static_cast<unsigned long long>(r.net.messages_lost),
                static_cast<unsigned long long>(r.net.messages_duplicated),
                static_cast<unsigned long long>(r.net.messages_reordered),
                static_cast<unsigned long long>(r.net.messages_corrupted),
                static_cast<unsigned long long>(r.net.messages_retransmitted),
                static_cast<unsigned long long>(r.net.messages_partitioned));
  }
  std::printf("]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  using namespace esh;
  const std::vector<Scenario> scenarios{
      {"crash-ckpt-2s", Scenario::Kind::kCrash, seconds(2)},
      {"crash-ckpt-10s", Scenario::Kind::kCrash, seconds(10)},
      {"partition", Scenario::Kind::kPartition, seconds(2)},
      {"gray-drain", Scenario::Kind::kGray, seconds(2)},
  };
  std::vector<RunResult> results;
  for (const Scenario& scenario : scenarios) {
    if (!json) std::printf("running: %s ...\n", scenario.name.c_str());
    results.push_back(run_one(scenario));
  }
  if (json) {
    print_json(results);
  } else {
    print_tables(results);
  }
  bool ok = true;
  for (const RunResult& r : results) {
    ok = ok && r.healed && r.drained && r.audit.exactly_once();
  }
  return ok ? 0 : 2;
}
