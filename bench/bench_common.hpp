// Shared helpers for the experiment-reproduction binaries: paper-scale
// testbed configurations and table printing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/testbed.hpp"

namespace esh::bench {

// Worker threads for the pipeline hot paths (--threads): AP route planning,
// M matching and EP merge assembly all fan over the same pool. Affects
// wall-clock only: every experiment's simulated results are identical for
// any value.
inline std::size_t& threads_flag() {
  static std::size_t threads = 1;
  return threads;
}

// Parses the common benchmark flags (--threads=N / --threads N). Unknown
// arguments are left for the caller.
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_flag() = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads_flag() = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }
}

// The paper's worker layout (§VI-C): twice as many hosts for the M
// operator as for each of AP and EP; with 2 hosts, AP and EP share one.
inline pubsub::HostAssignment paper_layout(const std::vector<HostId>& workers) {
  pubsub::HostAssignment assignment;
  const std::size_t n = workers.size();
  if (n == 1) {
    assignment["AP"] = workers;
    assignment["M"] = workers;
    assignment["EP"] = workers;
    return assignment;
  }
  const std::size_t m_hosts = std::max<std::size_t>(1, n / 2);
  const std::size_t rest = n - m_hosts;
  const std::size_t ap_hosts = (rest + 1) / 2;
  std::vector<HostId> m(workers.end() - static_cast<std::ptrdiff_t>(m_hosts),
                        workers.end());
  std::vector<HostId> ap(workers.begin(), workers.begin() + ap_hosts);
  std::vector<HostId> ep(workers.begin() + ap_hosts,
                         workers.begin() + rest);
  if (ep.empty()) ep = ap;  // with 2 hosts, AP and EP share one (paper §VI-C)
  assignment["AP"] = std::move(ap);
  assignment["EP"] = std::move(ep);
  assignment["M"] = std::move(m);
  return assignment;
}

// Paper-scale testbed (§VI-A/B): d = 4 ASPE, 100 K subscriptions at 1 %
// matching rate, 8/16/8 AP/M/EP slices, 4 source + 4 sink slices on
// dedicated hosts, 8-core Xeon-class workers.
inline harness::TestbedConfig paper_config(std::size_t worker_hosts,
                                           std::size_t subscriptions =
                                               100'000) {
  harness::TestbedConfig config;
  config.worker_hosts = worker_hosts;
  config.io_hosts = 4;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = subscriptions;
  config.workload.matching_rate = 0.01;
  config.workload.m_slices = 16;
  config.ap_slices = 8;
  config.ep_slices = 8;
  config.source_slices = 4;
  config.sink_slices = 4;
  config.engine.probe_interval = seconds(5);
  config.engine.worker_threads = threads_flag();
  config.placement = paper_layout;
  config.seed = 2014;
  return config;
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 1) {
  return format_double(v, precision);
}

}  // namespace esh::bench
