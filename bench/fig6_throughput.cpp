// Figure 6 (top): maximal throughput of static configurations of 2 to 12
// engine hosts with 100 K stored subscriptions (d = 4 ASPE). The paper
// reports perfectly linear scaling up to 422 publications/s at 12 hosts
// (42.2 M encrypted filtering operations and 422 K notifications per
// second).
//
// Method: drive each configuration well past saturation and measure the
// completed-publication rate at the sink; the bottleneck (M operator)
// capacity is the sustained completion rate.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/schedule.hpp"

namespace {

double measure_max_throughput(std::size_t hosts) {
  using namespace esh;
  auto config = bench::paper_config(hosts);
  harness::Testbed bed{config};
  bed.store_subscriptions(config.workload.total_subscriptions);

  // Expected ceiling from the cost model: the M host carrying the most
  // slices bounds the throughput (16 slices spread over hosts/2 M hosts).
  const std::size_t m_hosts = hosts / 2;
  const std::size_t worst_slices = (16 + m_hosts - 1) / m_hosts;
  const double per_pub_core_us =
      static_cast<double>(worst_slices) *
      (static_cast<double>(config.workload.total_subscriptions) / 16.0) *
      config.engine.cost.aspe_match_units(4);
  const double estimate = 8.0 * 1e6 / per_pub_core_us;

  // Saturate: offer 1.5x the estimate, measure completions in steady state.
  const double offered = estimate * 1.5;
  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(offered, seconds(40)));
  bed.run_for(seconds(15));  // warm-up, queues filling
  bed.delays().reset_counts();
  bed.run_for(seconds(20));
  const double completed =
      static_cast<double>(bed.delays().publications_completed()) / 20.0;
  driver->stop();
  return completed;
}

}  // namespace

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  using namespace esh;
  bench::print_header(
      "Figure 6 (top): max throughput vs engine hosts, 100 K subscriptions");
  bench::print_row({"hosts", "pubs/s", "Mops/s", "notif/s", "pubs/s/host"});
  double first_rate = 0.0;
  std::size_t first_hosts = 0;
  for (std::size_t hosts : {2, 4, 6, 8, 10, 12}) {
    const double rate = measure_max_throughput(hosts);
    if (first_hosts == 0) {
      first_hosts = hosts;
      first_rate = rate;
    }
    bench::print_row({std::to_string(hosts), bench::fmt(rate, 1),
                      bench::fmt(rate * 100'000 / 1e6, 1),
                      bench::fmt(rate * 1000, 0),
                      bench::fmt(rate / static_cast<double>(hosts), 1)});
  }
  std::printf(
      "\nPaper: linear scaling, 422 pub/s at 12 hosts (42.2 M encrypted\n"
      "matching operations/s, 422 K notifications/s).\n");
  (void)first_rate;
  (void)first_hosts;
  return 0;
}
