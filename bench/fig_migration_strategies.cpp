// Migration-strategy tradeoff sweep: the identical workload runs once per
// registered protocol (buffered-replay, stop-and-restart, incremental
// pre-copy) and one M slice migrates under constant publication load — the
// paper's Fig. 7 setting, where the matcher's stored-subscription state is
// the big transfer and the M migration is the visible delay spike. The
// matcher state is static once storage finishes, so this is pre-copy's
// best case: the baseline ships while the source serves, the first dirty
// round comes back empty, and the final stop-and-copy carries nothing —
// the stopped window collapses to the control round-trip. (The
// dirty-delta machinery itself is exercised against a mutating EP slice by
// the crash-torture suite in tests/test_chaos.cpp.)
//
// Reported per strategy: the protocol byte accounting (final transfer,
// pre-copy rounds, mirror duplicates), the source-stopped window
// ("downtime": frozen -> activated), the end-to-end protocol duration, the
// per-second delivery-delay series around the migration (the paper's Fig. 7
// view) with its steady-state baseline and spike, and the exactly-once
// audit after a full drain. With --json the same data is emitted as a JSON
// document (BENCH_migration_strategies.json via scripts/bench_snapshot.sh).
//
// The tradeoff the strategy lab exists for, asserted by the exit code:
// stop-and-restart ships the fewest bytes (one checkpoint, no mirror, no
// rounds), incremental pre-copy stops the source for the shortest window
// (only the last dirty delta ships inside the freeze).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "engine/migration_strategy.hpp"
#include "harness/chaos.hpp"
#include "workload/schedule.hpp"

namespace {

constexpr double kRate = 300.0;         // pub/s across the window
constexpr std::size_t kWindowSec = 30;  // publication window
constexpr std::size_t kMigrateAtSec = 10;
constexpr std::size_t kSpikeWindowSec = 5;  // bins scanned for the spike

struct SeriesPoint {
  double t_s = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t count = 0;
};

struct RunResult {
  const esh::engine::MigrationStrategy* strategy = nullptr;
  esh::engine::MigrationReport report;
  double downtime_ms = 0.0;
  double duration_ms = 0.0;
  double steady_ms = 0.0;  // mean bin delay before the migration
  double spike_ms = 0.0;   // max bin delay in the bins after it
  double delay_p50_ms = 0.0;
  double delay_p99_ms = 0.0;
  std::vector<SeriesPoint> series;
  bool drained = false;
  esh::harness::DeliveryAudit audit;
};

esh::harness::TestbedConfig strategies_config() {
  esh::harness::TestbedConfig config;
  config.worker_hosts = 5;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 20'000;
  config.workload.matching_rate = 0.01;
  config.workload.m_slices = 4;
  config.source_slices = 2;
  config.ap_slices = 4;
  config.ep_slices = 2;
  config.sink_slices = 2;
  config.engine.flush_interval = esh::millis(10);
  config.engine.control_tick = esh::millis(5);
  config.engine.checkpoints.enabled = true;
  config.engine.checkpoints.interval = esh::millis(500);
  config.engine.worker_threads = esh::bench::threads_flag();
  config.iaas.max_hosts = 7;
  // AP and EP share the first two workers, the M pair-per-host fills the
  // next two, and the last worker stays empty: the migration headroom every
  // strategy moves the same M slice into.
  config.placement = [](const std::vector<esh::HostId>& workers) {
    esh::pubsub::HostAssignment assignment;
    assignment["AP"] = {workers[0], workers[1]};
    assignment["EP"] = {workers[0], workers[1]};
    assignment["M"] = {workers[2], workers[3]};
    return assignment;
  };
  config.seed = 2014;
  return config;
}

RunResult run_one(const esh::engine::MigrationStrategy& strategy) {
  using namespace esh;
  RunResult result;
  result.strategy = &strategy;

  harness::Testbed bed{strategies_config()};
  bed.delays().enable_audit();
  bed.delays().enable_series(seconds(1));
  bed.store_subscriptions(strategies_config().workload.total_subscriptions);

  const SimTime start = bed.simulator().now();
  auto driver = bed.drive(
      std::make_shared<workload::ConstantRate>(kRate, seconds(kWindowSec)));

  const SliceId slice = bed.hub().slices_of("M")[0];
  const HostId src = bed.engine().slice_host(slice);
  HostId dst = src;
  for (const HostId host : bed.worker_hosts()) {
    if (bed.engine().slices_on(host).empty()) dst = host;
  }
  if (dst == src) {  // no empty worker: the other EP host
    for (const HostId host : bed.worker_hosts()) {
      if (host != src && !bed.engine().slices_on(host).empty()) dst = host;
    }
  }
  std::vector<engine::MigrationReport> reports;
  bed.simulator().schedule(seconds(kMigrateAtSec), [&] {
    bed.engine().migrate(slice, dst, strategy.kind(),
                         [&](const engine::MigrationReport& r) {
                           reports.push_back(r);
                         });
  });

  bed.run_for(seconds(kWindowSec) + millis(10));
  driver->stop();
  result.drained = bed.run_until(
      [&] {
        return bed.delays().publications_completed() >=
               bed.hub().publications_sent();
      },
      seconds(120));
  bed.run_for(seconds(1));

  if (!reports.empty()) {
    result.report = reports.front();
    result.downtime_ms =
        to_millis(result.report.activated - result.report.frozen);
    result.duration_ms = to_millis(result.report.total_duration());
  }
  if (bed.delays().delays_ms().count() > 0) {
    result.delay_p50_ms = bed.delays().delays_ms().percentile(50);
    result.delay_p99_ms = bed.delays().delays_ms().percentile(99);
  }

  // The per-second delay curve: steady state is the mean of the bins fully
  // before the migration, the spike is the worst bin in the window after it.
  const SimTime migrate_at = start + seconds(kMigrateAtSec);
  double steady_sum = 0.0;
  std::size_t steady_bins = 0;
  for (const auto& bin : bed.delays().series()->bins()) {
    SeriesPoint point;
    point.t_s = to_seconds(bin.start - start);
    point.mean_ms = bin.stats.count() > 0 ? bin.stats.mean() : 0.0;
    point.max_ms = bin.stats.count() > 0 ? bin.stats.max() : 0.0;
    point.count = bin.stats.count();
    result.series.push_back(point);
    if (bin.stats.count() == 0) continue;
    if (bin.start + seconds(1) <= migrate_at) {
      steady_sum += bin.stats.mean();
      ++steady_bins;
    } else if (bin.start < migrate_at + seconds(kSpikeWindowSec)) {
      result.spike_ms = std::max(result.spike_ms, bin.stats.max());
    }
  }
  if (steady_bins > 0) result.steady_ms = steady_sum / steady_bins;

  result.audit = harness::verify_exactly_once(bed);
  return result;
}

void print_tables(const std::vector<RunResult>& results) {
  using namespace esh;
  bench::print_header(
      "Migration strategies: one M slice migrates at t=10 s under 300 "
      "pub/s (20 K subscriptions)");
  bench::print_row({"strategy", "bytes", "transfer", "precopy", "duplicate",
                    "down (ms)", "total", "steady", "spike", "exact-1x"},
                   12);
  for (const RunResult& r : results) {
    bench::print_row(
        {std::string(r.strategy->name()),
         std::to_string(r.report.bytes_shipped()),
         std::to_string(r.report.transfer_bytes),
         std::to_string(r.report.precopy_bytes),
         std::to_string(r.report.duplicate_bytes),
         bench::fmt(r.downtime_ms, 2), bench::fmt(r.duration_ms, 1),
         bench::fmt(r.steady_ms, 1), bench::fmt(r.spike_ms, 1),
         r.audit.exactly_once() ? "yes" : "NO"},
        12);
  }
  std::printf(
      "\n  stop-and-restart ships one checkpoint and nothing else (fewest\n"
      "  bytes) but the slice is stopped for the whole transfer;\n"
      "  incremental pre-copy ships the image while the source serves and\n"
      "  stops only for the residual delta (shortest stop); buffered\n"
      "  replay also freezes across the full transfer, paying mirror\n"
      "  duplicates on top of the checkpoint.\n");
}

void print_json(const std::vector<RunResult>& results) {
  std::printf("{\n  \"benchmark\": \"fig_migration_strategies\",\n"
              "  \"rate_pub_per_sec\": %.0f,\n  \"window_s\": %zu,\n"
              "  \"migrate_at_s\": %zu,\n  \"strategies\": [",
              kRate, kWindowSec, kMigrateAtSec);
  bool first = true;
  for (const RunResult& r : results) {
    std::printf(
        "%s\n    {\"strategy\": \"%s\", \"outcome\": \"%s\",\n"
        "     \"bytes_shipped\": %zu, \"transfer_bytes\": %zu, "
        "\"precopy_bytes\": %zu, \"duplicate_bytes\": %zu, "
        "\"state_bytes\": %zu,\n"
        "     \"downtime_ms\": %.3f, \"duration_ms\": %.3f, "
        "\"delay_steady_ms\": %.2f, \"delay_spike_ms\": %.2f, "
        "\"delay_p50_ms\": %.2f, \"delay_p99_ms\": %.2f, \"drained\": %s,\n"
        "     \"audit\": {\"published\": %llu, \"delivered\": %llu, "
        "\"missing\": %llu, \"duplicated\": %llu, \"mismatched\": %llu, "
        "\"exactly_once\": %s},\n     \"series\": [",
        first ? "" : ",", std::string(r.strategy->name()).c_str(),
        r.report.outcome == esh::engine::MigrationOutcome::kCompleted
            ? "completed"
            : "not-completed",
        r.report.bytes_shipped(), r.report.transfer_bytes,
        r.report.precopy_bytes, r.report.duplicate_bytes,
        r.report.state_bytes, r.downtime_ms, r.duration_ms, r.steady_ms,
        r.spike_ms, r.delay_p50_ms, r.delay_p99_ms,
        r.drained ? "true" : "false",
        static_cast<unsigned long long>(r.audit.published),
        static_cast<unsigned long long>(r.audit.delivered),
        static_cast<unsigned long long>(r.audit.missing),
        static_cast<unsigned long long>(r.audit.duplicated),
        static_cast<unsigned long long>(r.audit.mismatched),
        r.audit.exactly_once() ? "true" : "false");
    bool first_point = true;
    for (const SeriesPoint& p : r.series) {
      std::printf("%s{\"t_s\": %.0f, \"mean_ms\": %.2f, \"max_ms\": %.2f, "
                  "\"count\": %llu}",
                  first_point ? "" : ", ", p.t_s, p.mean_ms, p.max_ms,
                  static_cast<unsigned long long>(p.count));
      first_point = false;
    }
    std::printf("]}");
    first = false;
  }
  std::printf("]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  std::vector<RunResult> results;
  for (const esh::engine::MigrationStrategy* strategy :
       esh::engine::migration_strategies()) {
    if (!json) std::printf("running: %s ...\n",
                           std::string(strategy->name()).c_str());
    results.push_back(run_one(*strategy));
  }
  if (json) {
    print_json(results);
  } else {
    print_tables(results);
  }
  // The tradeoff ordering is the point of the sweep; a run that loses it
  // (or loses a notification) fails the snapshot.
  const RunResult* br = nullptr;
  const RunResult* sr = nullptr;
  const RunResult* pc = nullptr;
  for (const RunResult& r : results) {
    switch (r.strategy->kind()) {
      case esh::engine::MigrationStrategyKind::kBufferedReplay: br = &r; break;
      case esh::engine::MigrationStrategyKind::kStopAndRestart: sr = &r; break;
      case esh::engine::MigrationStrategyKind::kIncrementalPrecopy:
        pc = &r;
        break;
    }
  }
  bool ok = br != nullptr && sr != nullptr && pc != nullptr;
  for (const RunResult& r : results) {
    ok = ok && r.drained && r.audit.exactly_once() &&
         r.report.outcome == esh::engine::MigrationOutcome::kCompleted;
  }
  if (ok) {
    ok = sr->report.bytes_shipped() < br->report.bytes_shipped() &&
         sr->report.bytes_shipped() < pc->report.bytes_shipped() &&
         pc->downtime_ms < br->downtime_ms && pc->downtime_ms < sr->downtime_ms;
  }
  return ok ? 0 : 2;
}
