// Figure 6 (bottom): notification delay distribution per static
// configuration, at an incoming rate of half the configuration's maximal
// throughput (the elasticity policy's target load). The paper reports
// stacked percentiles; e.g. at 12 hosts the minimum is 55 ms and 75 % of
// publications complete within 247 ms.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/schedule.hpp"

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  using namespace esh;
  bench::print_header(
      "Figure 6 (bottom): delay percentiles at 50% of max throughput (ms)");
  bench::print_row(
      {"hosts", "min", "p25", "p50", "p75", "p90", "p99", "max"}, 9);
  for (std::size_t hosts : {2, 4, 6, 8, 10, 12}) {
    auto config = bench::paper_config(hosts);
    harness::Testbed bed{config};
    bed.store_subscriptions(config.workload.total_subscriptions);

    const std::size_t m_hosts = hosts / 2;
    const std::size_t worst_slices = (16 + m_hosts - 1) / m_hosts;
    const double per_pub_core_us =
        static_cast<double>(worst_slices) *
        (static_cast<double>(config.workload.total_subscriptions) / 16.0) *
        config.engine.cost.aspe_match_units(4);
    const double max_rate = 8.0 * 1e6 / per_pub_core_us;
    const double rate = max_rate / 2.0;

    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(rate, seconds(75)));
    bed.run_for(seconds(15));  // reach steady state
    bed.delays().reset_counts();
    bed.run_for(seconds(60));
    driver->stop();
    bed.run_for(seconds(5));

    const auto& delays = bed.delays().delays_ms();
    if (delays.count() == 0) {
      bench::print_row({std::to_string(hosts), "-"}, 9);
      continue;
    }
    const auto p = delays.percentiles({0, 25, 50, 75, 90, 99, 100});
    bench::print_row({std::to_string(hosts), bench::fmt(p[0], 0),
                      bench::fmt(p[1], 0), bench::fmt(p[2], 0),
                      bench::fmt(p[3], 0), bench::fmt(p[4], 0),
                      bench::fmt(p[5], 0), bench::fmt(p[6], 0)},
                     9);
  }
  std::printf(
      "\nPaper (12 hosts): min 55 ms, p75 247 ms; distribution stable\n"
      "across configurations at the 50%% operating point.\n");
  return 0;
}
