// Figure 1: typical volume of ticks at the Frankfurt Stock Exchange over
// one trading day (2011-11-18 in the paper; shape-equivalent synthetic
// curve here — the real trace is proprietary, see DESIGN.md).
//
// Prints the tick rate in 5-minute bins over the day, plus a coarse ASCII
// sparkline so the open-surge / afternoon-spike / close-decline features
// are visible at a glance.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "workload/schedule.hpp"

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  using namespace esh;
  bench::print_header("Figure 1: Frankfurt Stock Exchange tick volume");
  std::printf("%8s %12s  %s\n", "hour", "ticks/s", "");
  const double peak = workload::FrankfurtTrace::base_peak();
  for (int minutes = 0; minutes < 24 * 60; minutes += 15) {
    const double hour = minutes / 60.0;
    const double rate = workload::FrankfurtTrace::base_curve(hour);
    const int bar = static_cast<int>(rate / peak * 60.0);
    std::printf("%8s %12s  %s\n",
                (std::to_string(minutes / 60) + ":" +
                 (minutes % 60 < 10 ? "0" : "") + std::to_string(minutes % 60))
                    .c_str(),
                bench::fmt(rate, 0).c_str(), std::string(bar, '#').c_str());
  }
  std::printf(
      "\nFeatures reproduced: pre-market trickle from 8:00, surge at the\n"
      "9:00 open (peak %.0f ticks/s), afternoon spike ~15:30, decline\n"
      "after the 17:30 close.\n",
      peak);
  return 0;
}
