// Figure 9 (final experiment, §VI-E): elastic scaling replaying the
// Frankfurt Stock Exchange tick trace, time-compressed and rescaled to a
// peak of 190 publications/s (19 M filtering operations and 19 K
// notifications per second at peak). The paper observes the host count
// following the daily activity between 1 and 8 hosts, the load envelope
// respected, and average notification delays below one second throughout.
#include <memory>

#include "bench_common.hpp"
#include "elastic_experiment.hpp"
#include "workload/schedule.hpp"

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  using namespace esh;
  auto config = bench::paper_config(1);
  config.placement = nullptr;  // all slices start on one host
  config.iaas.max_hosts = 30;
  config.with_manager = true;

  workload::FrankfurtTrace::Config trace;
  trace.start_hour = 7.0;
  trace.end_hour = 20.5;
  trace.speedup = 20.0;
  trace.peak_rate = 190.0;
  trace.noise = 0.10;
  auto schedule = std::make_shared<workload::FrankfurtTrace>(trace);

  bench::run_elastic_experiment(
      "Figure 9: elastic scaling on the Frankfurt tick trace (compressed)",
      config, std::move(schedule), seconds(120));
  std::printf(
      "\nPaper: hosts range 1..8 following the trading day (open surge,\n"
      "afternoon spike, evening decline); loads inside the envelope;\n"
      "average delay below 1 s for the entire run.\n");
  return 0;
}
