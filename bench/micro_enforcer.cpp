// Micro-benchmarks and quality comparison of the elasticity enforcer's two
// resolution steps (paper §V): pseudo-polynomial subset-sum slice selection
// and First Fit Decreasing placement. Also quantifies the design choices:
// FFD against naive sequential placement (host count), and min-state
// selection against a CPU-only greedy pick (bytes transferred) — the
// ablation DESIGN.md calls out.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "elastic/enforcer.hpp"

namespace {

using namespace esh;
using namespace esh::elastic;

std::vector<SliceView> random_slices(std::size_t count, Rng& rng) {
  std::vector<SliceView> slices;
  slices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    slices.push_back(SliceView{SliceId{i + 1}, HostId{1},
                               rng.uniform(0.01, 0.2),
                               100 + rng.next_below(20'000'000), false, {}});
  }
  return slices;
}

void BM_SubsetSumSelection(benchmark::State& state) {
  Rng rng{9};
  auto slices = random_slices(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_slices_min_state(slices, 0.4));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SubsetSumSelection)->RangeMultiplier(2)->Range(8, 128)
    ->Complexity();

void BM_FirstFitPlacement(benchmark::State& state) {
  Rng rng{10};
  auto moving = random_slices(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<HostView> bins;
  for (std::size_t h = 0; h < 30; ++h) {
    bins.push_back(HostView{HostId{h + 1}, rng.uniform(0.0, 0.45)});
  }
  for (auto _ : state) {
    std::size_t used = 0;
    benchmark::DoNotOptimize(
        first_fit_place(moving, bins, 0.5, 8, &used));
  }
}
BENCHMARK(BM_FirstFitPlacement)->RangeMultiplier(2)->Range(8, 256);

void BM_EnforcerEvaluate(benchmark::State& state) {
  Rng rng{11};
  const std::size_t hosts = static_cast<std::size_t>(state.range(0));
  SystemView view;
  view.time = seconds(120);
  for (std::size_t h = 0; h < hosts; ++h) {
    view.hosts.push_back(HostView{HostId{h + 1}, rng.uniform(0.6, 0.95)});
    for (int s = 0; s < 4; ++s) {
      view.slices.push_back(SliceView{
          SliceId{h * 4 + static_cast<std::size_t>(s) + 1}, HostId{h + 1},
          rng.uniform(0.1, 0.25), 1000 + rng.next_below(10'000'000), false,
          {}});
    }
  }
  for (auto _ : state) {
    Enforcer enforcer{PolicyConfig{}};
    benchmark::DoNotOptimize(enforcer.evaluate(view));
  }
}
BENCHMARK(BM_EnforcerEvaluate)->RangeMultiplier(2)->Range(2, 32);

// ---- quality comparisons (printed once) ---------------------------------------

void report_quality() {
  Rng rng{21};
  // (a) Selection: min-state subset sum vs greedy largest-CPU-first.
  double dp_bytes = 0.0, greedy_bytes = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    auto slices = random_slices(12, rng);
    const double required = 0.35;
    const auto chosen = select_slices_min_state(slices, required);
    for (auto i : chosen) dp_bytes += static_cast<double>(slices[i].state_bytes);

    auto by_cpu = slices;
    std::sort(by_cpu.begin(), by_cpu.end(),
              [](const SliceView& a, const SliceView& b) {
                return a.cpu > b.cpu;
              });
    double sum = 0.0;
    for (const auto& s : by_cpu) {
      if (sum >= required) break;
      sum += s.cpu;
      greedy_bytes += static_cast<double>(s.state_bytes);
    }
  }
  std::printf(
      "\n[selection ablation] state transferred per scale-out decision:\n"
      "  subset-sum min-state: %.1f MB   greedy max-cpu: %.1f MB "
      "(%.1fx more)\n",
      dp_bytes / 200 / 1e6, greedy_bytes / 200 / 1e6,
      greedy_bytes / dp_bytes);

  // (b) Placement: First Fit Decreasing vs arrival-order First Fit.
  std::size_t ffd_bins = 0, naive_bins = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto moving = random_slices(24, rng);
    std::vector<HostView> bins;  // empty cluster: pure packing quality
    std::size_t used = 0;
    (void)first_fit_place(moving, bins, 0.5, 64, &used);
    ffd_bins += used;

    // Arrival order (no sort): simulate by assigning sequentially.
    std::vector<double> loads;
    for (const auto& s : moving) {
      bool placed = false;
      for (double& load : loads) {
        if (load + s.cpu <= 0.5) {
          load += s.cpu;
          placed = true;
          break;
        }
      }
      if (!placed) loads.push_back(s.cpu);
    }
    naive_bins += loads.size();
  }
  std::printf(
      "[placement ablation] hosts needed to absorb 24 migrating slices:\n"
      "  First Fit Decreasing: %.2f   arrival-order First Fit: %.2f\n",
      static_cast<double>(ffd_bins) / 200,
      static_cast<double>(naive_bins) / 200);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_quality();
  return 0;
}
