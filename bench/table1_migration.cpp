// Table I: operator slice migration times under a constant flow of 100
// publications/s, with 12.5 K or 50 K subscriptions stored per M slice
// (100 K / 500 K total over 8 M slices). 25 migrations per row, each
// moving a random slice of the operator to a random other host.
//
// Paper: AP 232 +- 31 ms, M(12.5 K) 1497 +- 354 ms, M(50 K) 2533 +- 1557 ms,
// EP 275 +- 52 ms. AP is stateless, EP state is transient and small, M
// migration time grows (sub-linearly, via the fixed library-init part)
// with the stored-subscription state.
#include <cstdio>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "workload/schedule.hpp"

namespace {

using namespace esh;

harness::TestbedConfig table1_config(std::size_t subscriptions) {
  auto config = bench::paper_config(8, subscriptions);
  // Table I layout: 4/8/4 slices on 2/4/2 hosts.
  config.ap_slices = 4;
  config.workload.m_slices = 8;
  config.ep_slices = 4;
  config.placement = [](const std::vector<HostId>& workers) {
    pubsub::HostAssignment assignment;
    assignment["AP"] = {workers[0], workers[1]};
    assignment["M"] = {workers[2], workers[3], workers[4], workers[5]};
    assignment["EP"] = {workers[6], workers[7]};
    return assignment;
  };
  return config;
}

struct RowStats {
  RunningStats total_ms;
  RunningStats interruption_ms;
  RunningStats state_mb;
};

RowStats run_migrations(harness::Testbed& bed, const std::string& op,
                        int count, Rng& rng) {
  RowStats stats;
  const auto slices = bed.hub().slices_of(op);
  const auto workers = bed.worker_hosts();
  for (int i = 0; i < count; ++i) {
    const SliceId slice =
        slices[rng.next_below(slices.size())];
    const HostId src = bed.engine().slice_host(slice);
    HostId dst = src;
    while (dst == src) {
      dst = workers[rng.next_below(workers.size())];
    }
    std::optional<engine::MigrationReport> report;
    bed.engine().migrate(slice, dst, [&](const engine::MigrationReport& r) {
      report = r;
    });
    const bool ok = bed.run_until([&] { return report.has_value(); },
                                  seconds(120));
    if (!ok) {
      std::fprintf(stderr, "migration of %s timed out\n", op.c_str());
      continue;
    }
    stats.total_ms.add(to_millis(report->total_duration()));
    stats.interruption_ms.add(to_millis(report->interruption()));
    stats.state_mb.add(static_cast<double>(report->state_bytes) / 1e6);
    // Settling gap between migrations.
    bed.run_for(seconds(2));
  }
  return stats;
}

void print_stats(const std::string& label, const RowStats& stats) {
  bench::print_row({label, bench::fmt(stats.total_ms.mean(), 0),
                    bench::fmt(stats.total_ms.stddev(), 0),
                    bench::fmt(stats.interruption_ms.mean(), 0),
                    bench::fmt(stats.state_mb.mean(), 1)},
                   14);
}

}  // namespace

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  using namespace esh;
  constexpr int kMigrations = 25;
  bench::print_header("Table I: slice migration times, 100 pub/s");
  bench::print_row({"operator", "avg (ms)", "std (ms)", "interrupt", "MB"},
                   14);
  Rng rng{77};

  {
    auto config = table1_config(100'000);
    harness::Testbed bed{config};
    bed.store_subscriptions(100'000);
    auto driver = bed.drive(std::make_shared<workload::ConstantRate>(
        100.0, seconds(100'000)));
    bed.run_for(seconds(10));
    print_stats("AP", run_migrations(bed, "AP", kMigrations, rng));
    print_stats("EP", run_migrations(bed, "EP", kMigrations, rng));
    print_stats("M (12.5K)", run_migrations(bed, "M", kMigrations, rng));
    driver->stop();
  }
  {
    auto config = table1_config(500'000);
    harness::Testbed bed{config};
    bed.store_subscriptions(500'000);
    // The paper drives 100 pub/s in both rows. Under the calibrated cost
    // model this 8-host layout saturates at ~63 pub/s with 500 K stored
    // subscriptions (each publication costs 5x the 100 K case), so we keep
    // the same relative load (~60 % of capacity) instead of overdriving
    // the deployment into unbounded queueing.
    auto driver = bed.drive(std::make_shared<workload::ConstantRate>(
        40.0, seconds(100'000)));
    bed.run_for(seconds(10));
    print_stats("M (50K)", run_migrations(bed, "M", kMigrations, rng));
    driver->stop();
  }

  std::printf(
      "\nPaper: AP 232+-31, M(12.5K) 1497+-354, M(50K) 2533+-1557,\n"
      "EP 275+-52 (ms). Expected shape: AP ~ EP << M, with M growing\n"
      "sub-linearly in state size (fixed replica/library setup cost).\n");
  return 0;
}
