// Policy ablation: the paper's elasticity enforcer (global/local rules,
// subset-sum selection minimizing state transfer, First Fit Decreasing
// placement) against an EC2-AutoScaling-style threshold baseline (paper
// §II-A) on the same load ramp. Quantifies what the enforcer buys:
// fewer/cheaper migrations and a tighter utilization envelope at
// comparable fleet sizes.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "elastic/threshold_policy.hpp"
#include "workload/schedule.hpp"

namespace {

using namespace esh;

struct PolicyOutcome {
  std::size_t peak_hosts = 0;
  std::size_t migrations = 0;
  double state_moved_mb = 0.0;
  double cpu_band_fraction = 0.0;  // probe rounds with avg in [0.3, 0.7]
  double delay_p50 = 0.0;
  double delay_p99 = 0.0;
};

PolicyOutcome run(bool threshold_baseline) {
  auto config = bench::paper_config(1, 50'000);
  config.placement = nullptr;
  config.iaas.max_hosts = 30;
  config.with_manager = true;
  harness::Testbed bed{config};
  if (threshold_baseline) {
    elastic::ThresholdEnforcer baseline{elastic::ThresholdPolicyConfig{}};
    bed.manager()->set_policy(
        [baseline](const elastic::SystemView& view) mutable {
          return baseline.evaluate(view);
        });
  }
  bed.store_subscriptions(config.workload.total_subscriptions);
  bed.delays().reset_counts();

  auto schedule = std::make_shared<workload::TrapezoidRate>(
      250.0, seconds(250), seconds(150), seconds(250));
  auto driver = bed.drive(schedule);
  PolicyOutcome outcome;
  outcome.peak_hosts = 1;
  const SimTime start = bed.simulator().now();
  while (bed.simulator().now() - start < seconds(800)) {
    bed.run_for(seconds(10));
    outcome.peak_hosts =
        std::max(outcome.peak_hosts, bed.manager()->managed_host_count());
  }
  driver->stop();

  outcome.migrations = bed.manager()->migrations().size();
  for (const auto& report : bed.manager()->migrations()) {
    outcome.state_moved_mb += static_cast<double>(report.state_bytes) / 1e6;
  }
  std::size_t in_band = 0;
  const auto& history = bed.manager()->load_history();
  for (const auto& sample : history) {
    if (sample.avg_cpu >= 0.30 && sample.avg_cpu <= 0.70) ++in_band;
  }
  outcome.cpu_band_fraction =
      history.empty() ? 0.0
                      : static_cast<double>(in_band) /
                            static_cast<double>(history.size());
  if (bed.delays().delays_ms().count() > 0) {
    outcome.delay_p50 = bed.delays().delays_ms().percentile(50);
    outcome.delay_p99 = bed.delays().delays_ms().percentile(99);
  }
  return outcome;
}

void print(const char* label, const PolicyOutcome& o) {
  bench::print_row({label, std::to_string(o.peak_hosts),
                    std::to_string(o.migrations),
                    bench::fmt(o.state_moved_mb, 0),
                    bench::fmt(o.cpu_band_fraction * 100, 0),
                    bench::fmt(o.delay_p50, 0), bench::fmt(o.delay_p99, 0)},
                   12);
}

}  // namespace

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  using namespace esh;
  bench::print_header(
      "Policy ablation: e-STREAMHUB enforcer vs threshold auto-scaler");
  bench::print_row({"policy", "peak hosts", "migrations", "state MB",
                    "in-band %", "p50 ms", "p99 ms"},
                   12);
  print("enforcer", run(false));
  print("threshold", run(true));
  std::printf(
      "\nExpected: the enforcer sizes the fleet toward the utilization\n"
      "target, so it tracks the ramp and keeps delays at steady-state\n"
      "levels; the fixed-step threshold scaler falls behind the load and\n"
      "lets queues (and delays) grow by orders of magnitude.\n");
  return 0;
}
