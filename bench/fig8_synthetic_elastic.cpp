// Figure 8: elastic scaling under a synthetic workload. The system starts
// on a single host running all 32 slices with 100 K stored encrypted
// subscriptions; the publication rate ramps to 350/s, holds, and ramps
// back to zero. The paper observes the host count growing to ~15 and back,
// host CPU staying within a 40-70 % envelope around the 50 % target, and
// delays remaining stable except around the first 1 -> 2 host migration.
#include <memory>

#include "bench_common.hpp"
#include "elastic_experiment.hpp"
#include "workload/schedule.hpp"

int main(int argc, char** argv) {
  esh::bench::parse_args(argc, argv);
  using namespace esh;
  auto config = bench::paper_config(1);
  config.placement = nullptr;  // all 32 slices start on the single host
  config.iaas.max_hosts = 30;
  config.with_manager = true;

  auto schedule = std::make_shared<workload::TrapezoidRate>(
      350.0, seconds(500), seconds(250), seconds(500));
  bench::run_elastic_experiment(
      "Figure 8: elastic scaling, synthetic ramp to 350 pub/s", config,
      std::move(schedule));
  std::printf(
      "\nPaper: hosts 1 -> ~15 -> 1; load within the 40-70%% envelope\n"
      "around the 50%% target; delays stable, worst spike at the initial\n"
      "1 -> 2 host migration.\n");
  return 0;
}
