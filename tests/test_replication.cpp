// Passive replication: periodic checkpoints + upstream-log replay recover
// slices lost to host failures with exactly-once semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/host.hpp"
#include "engine/engine.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace esh::engine {
namespace {

struct NumPayload final : Payload {
  explicit NumPayload(std::uint64_t v) : value(v) {}
  std::uint64_t value;
  [[nodiscard]] std::size_t bytes() const override { return 64; }
};

struct Record {
  std::size_t slice_index;
  std::uint64_t value;
};

class CollectHandler final : public Handler {
 public:
  CollectHandler(std::shared_ptr<std::vector<Record>> out, std::size_t index)
      : out_(std::move(out)), index_(index) {}
  void on_event(Context&, const PayloadPtr& p) override {
    out_->push_back(Record{index_, dynamic_cast<const NumPayload&>(*p).value});
  }
  double cost_units(const PayloadPtr&) const override { return 5.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::shared_ptr<std::vector<Record>> out_;
  std::size_t index_;
};

class SumForwardHandler final : public Handler {
 public:
  explicit SumForwardHandler(std::string next) : next_(std::move(next)) {}
  void on_event(Context& ctx, const PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    sum_ += num.value;
    if (!next_.empty()) ctx.emit(next_, Routing::hash(num.value), p);
  }
  double cost_units(const PayloadPtr&) const override { return 20.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kWrite;
  }
  void serialize_state(BinaryWriter& w) const override { w.write_u64(sum_); }
  void restore_state(BinaryReader& r) override { sum_ = r.read_u64(); }
  std::size_t state_bytes() const override { return 8; }
  double replica_init_units() const override { return 1000.0; }

  std::uint64_t sum_ = 0;

 private:
  std::string next_;
};

class GenHandler final : public Handler {
 public:
  explicit GenHandler(std::string next) : next_(std::move(next)) {}
  void on_event(Context& ctx, const PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    ctx.emit(next_, Routing::hash(num.value), p);
  }
  double cost_units(const PayloadPtr&) const override { return 2.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::string next_;
};

class ReplicationTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  std::unique_ptr<Engine> engine;
  std::shared_ptr<std::vector<Record>> collected =
      std::make_shared<std::vector<Record>>();

  void make_engine(bool checkpoints, SimDuration interval = seconds(2)) {
    EngineConfig config;
    config.flush_interval = millis(10);
    config.control_tick = millis(5);
    config.checkpoints.enabled = checkpoints;
    config.checkpoints.interval = interval;
    engine = std::make_unique<Engine>(sim, net, HostId{999}, config, 7);
    for (std::size_t i = 0; i < 4; ++i) {
      hosts.push_back(std::make_unique<cluster::Host>(
          sim, HostId{i + 1}, cluster::HostSpec{}));
      engine->add_host(*hosts.back());
    }
  }

  // gen on host1, work:0 on host2, work:1 on host3, collect on host4:
  // failing host2 leaves every upstream log and the sink intact.
  void deploy() {
    Topology t;
    t.operators.push_back(OperatorSpec{"gen", 1, [](std::size_t) {
      return std::make_unique<GenHandler>("work");
    }});
    t.operators.push_back(OperatorSpec{"work", 2, [](std::size_t) {
      return std::make_unique<SumForwardHandler>("collect");
    }});
    t.operators.push_back(OperatorSpec{"collect", 2, [this](std::size_t i) {
      return std::make_unique<CollectHandler>(collected, i);
    }});
    t.edges = {{"gen", "work"}, {"work", "collect"}};
    engine->deploy(t, {
        {"gen", {hosts[0]->id()}},
        {"work", {hosts[1]->id(), hosts[2]->id()}},
        {"collect", {hosts[3]->id(), hosts[3]->id()}},
    });
  }

  void inject_values(std::uint64_t count, SimDuration gap) {
    SimTime at = sim.now();
    for (std::uint64_t v = 1; v <= count; ++v) {
      at += gap;
      sim.schedule_at(at, [this, v] {
        engine->inject("gen", 0, std::make_shared<NumPayload>(v));
      });
    }
  }

  const SumForwardHandler& work_handler(std::size_t index) {
    auto* rt = engine->slice_runtime(engine->slice_id("work", index));
    return dynamic_cast<const SumForwardHandler&>(rt->handler());
  }
};

TEST_F(ReplicationTest, CheckpointsReachTheStore) {
  make_engine(true, seconds(1));
  deploy();
  inject_values(50, millis(20));
  sim.run_until(sim.now() + seconds(3));
  EXPECT_TRUE(engine->has_checkpoint(engine->slice_id("work", 0)));
  EXPECT_TRUE(engine->has_checkpoint(engine->slice_id("gen", 0)));
}

TEST_F(ReplicationTest, UpstreamLogsTruncateAfterCheckpoints) {
  make_engine(true, seconds(1));
  deploy();
  inject_values(500, millis(10));  // 5 s of traffic
  sim.run_until(sim.now() + seconds(8));
  // gen logged events for both work slices; after several checkpoint
  // rounds the retained suffix is far smaller than the total emitted.
  auto* gen = engine->slice_runtime(engine->slice_id("gen", 0));
  EXPECT_LT(gen->logged_events(), 300u);
}

TEST_F(ReplicationTest, HostFailureRecoversExactlyOnce) {
  make_engine(true, seconds(1));
  deploy();
  constexpr std::uint64_t kValues = 400;
  inject_values(kValues, millis(10));  // 4 s of traffic
  sim.run_until(sim.now() + millis(1500));  // at least one checkpoint

  // Host 2 dies, taking work:0 with it.
  const SliceId lost = engine->slice_id("work", 0);
  ASSERT_TRUE(engine->has_checkpoint(lost));
  const auto lost_slices = engine->fail_host(hosts[1]->id());
  ASSERT_EQ(lost_slices, std::vector<SliceId>{lost});

  // Recover onto host 1 (gen's host).
  bool recovered = false;
  engine->recover_slice(lost, hosts[0]->id(), [&] { recovered = true; });
  sim.run_until(sim.now() + seconds(20));
  ASSERT_TRUE(recovered);
  EXPECT_EQ(engine->slice_host(lost), hosts[0]->id());

  // Every value delivered exactly once despite the crash.
  ASSERT_EQ(collected->size(), kValues);
  std::map<std::uint64_t, int> seen;
  for (const Record& r : *collected) ++seen[r.value];
  for (std::uint64_t v = 1; v <= kValues; ++v) {
    ASSERT_EQ(seen[v], 1) << "value " << v;
  }
  // Recovered state is exact: per-slice sums cover the whole series.
  std::uint64_t total = work_handler(0).sum_ + work_handler(1).sum_;
  EXPECT_EQ(total, kValues * (kValues + 1) / 2);
}

TEST_F(ReplicationTest, SourceSliceRecoveryReplaysExternalChannel) {
  make_engine(true, seconds(1));
  deploy();
  constexpr std::uint64_t kValues = 300;
  inject_values(kValues, millis(10));
  sim.run_until(sim.now() + millis(1500));

  const SliceId gen = engine->slice_id("gen", 0);
  ASSERT_TRUE(engine->has_checkpoint(gen));
  engine->fail_host(hosts[0]->id());
  bool recovered = false;
  engine->recover_slice(gen, hosts[1]->id(), [&] { recovered = true; });
  sim.run_until(sim.now() + seconds(20));
  ASSERT_TRUE(recovered);

  ASSERT_EQ(collected->size(), kValues);
  std::map<std::uint64_t, int> seen;
  for (const Record& r : *collected) ++seen[r.value];
  for (std::uint64_t v = 1; v <= kValues; ++v) {
    ASSERT_EQ(seen[v], 1) << "value " << v;
  }
}

TEST_F(ReplicationTest, FailHostWithoutCheckpointsThrows) {
  make_engine(false);
  deploy();
  EXPECT_THROW(engine->fail_host(hosts[1]->id()), std::logic_error);
}

TEST_F(ReplicationTest, RecoverWithoutCheckpointBootstraps) {
  // A slice that dies before its first checkpoint recovers from scratch:
  // nothing ever truncated the upstream logs, so the full replay rebuilds
  // the state and no event is lost or duplicated.
  make_engine(true, seconds(60));  // interval too long: no checkpoint yet
  deploy();
  constexpr std::uint64_t kValues = 100;
  inject_values(kValues, millis(10));
  sim.run_until(sim.now() + millis(500));
  const SliceId lost = engine->slice_id("work", 0);
  ASSERT_FALSE(engine->has_checkpoint(lost));
  engine->fail_host(hosts[1]->id());
  EXPECT_TRUE(engine->slice_lost(lost));
  bool recovered = false;
  engine->recover_slice(lost, hosts[0]->id(), [&] { recovered = true; });
  sim.run_until(sim.now() + seconds(20));
  ASSERT_TRUE(recovered);
  EXPECT_FALSE(engine->slice_lost(lost));
  EXPECT_EQ(engine->slice_host(lost), hosts[0]->id());

  ASSERT_EQ(collected->size(), kValues);
  std::map<std::uint64_t, int> seen;
  for (const Record& r : *collected) ++seen[r.value];
  for (std::uint64_t v = 1; v <= kValues; ++v) {
    ASSERT_EQ(seen[v], 1) << "value " << v;
  }
  std::uint64_t total = work_handler(0).sum_ + work_handler(1).sum_;
  EXPECT_EQ(total, kValues * (kValues + 1) / 2);
}

TEST_F(ReplicationTest, CheckpointingIsExactlyOnceUnderSteadyFlow) {
  // Checkpoints alone (no failure) must not disturb the stream.
  make_engine(true, millis(500));
  deploy();
  constexpr std::uint64_t kValues = 300;
  inject_values(kValues, millis(10));
  sim.run_until(sim.now() + seconds(8));
  ASSERT_EQ(collected->size(), kValues);
  std::map<std::uint64_t, int> seen;
  for (const Record& r : *collected) ++seen[r.value];
  for (std::uint64_t v = 1; v <= kValues; ++v) EXPECT_EQ(seen[v], 1);
}

}  // namespace
}  // namespace esh::engine
