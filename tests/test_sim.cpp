#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace esh::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kSimTimeZero);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(millis(30), [&] { order.push_back(3); });
  sim.schedule(millis(10), [&] { order.push_back(1); });
  sim.schedule(millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), millis(30));
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(millis(10), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesDuringCallbacks) {
  Simulator sim;
  SimTime seen{};
  sim.schedule(millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, millis(5));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule(millis(1), [&] {
    sim.schedule(millis(1), [&] {
      ++fired;
      sim.schedule(millis(1), [&] { ++fired; });
    });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), millis(3));
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(millis(10), [&] { ++fired; });
  sim.schedule(millis(50), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(millis(20)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), millis(20));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayAndPastScheduleThrow) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(millis(-1), [] {}), std::invalid_argument);
  sim.schedule(millis(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(millis(1), [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule(millis(5), [&] { ++fired; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, HandleReportsFired) {
  Simulator sim;
  auto handle = sim.schedule(millis(1), [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op after firing
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(millis(1), [&] { ++fired; });
  sim.schedule(millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer{sim, millis(10), [&] { ++ticks; }};
  sim.run_until(millis(35));
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, InitialDelayDiffersFromPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer{sim, millis(3), millis(10),
                      [&] { fires.push_back(sim.now()); }};
  sim.run_until(millis(30));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], millis(3));
  EXPECT_EQ(fires[1], millis(13));
  EXPECT_EQ(fires[2], millis(23));
}

TEST(PeriodicTimer, StopWithinCallback) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer{sim, millis(5), [&] {
                        if (++ticks == 2) timer.stop();
                      }};
  sim.run_until(millis(100));
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTimer timer{sim, millis(5), [&] { ++ticks; }};
    sim.run_until(millis(12));
  }
  sim.run_until(millis(100));
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimer, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW((PeriodicTimer{sim, millis(0), [] {}}), std::invalid_argument);
}

}  // namespace
}  // namespace esh::sim
