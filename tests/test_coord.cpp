#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coord/coord.hpp"
#include "sim/simulator.hpp"

namespace esh::coord {
namespace {

class CoordTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  CoordConfig config;
  std::unique_ptr<CoordService> zk;
  SessionId session;

  void SetUp() override {
    zk = std::make_unique<CoordService>(sim, config);
    session = zk->create_session();
  }

  // Runs the simulator and returns the status of a create.
  Status create(const std::string& path, const std::string& data,
                CreateMode mode = CreateMode::kPersistent,
                std::string* created = nullptr) {
    std::optional<Status> result;
    zk->create(session, path, data, mode,
               [&](Status st, const std::string& p) {
                 result = st;
                 if (created != nullptr) *created = p;
               });
    sim.run_until(sim.now() + seconds(2));
    return result.value();
  }

  Status set(const std::string& path, const std::string& data,
             std::int64_t version = -1) {
    std::optional<Status> result;
    zk->set(session, path, data, version,
            [&](Status st, Stat) { result = st; });
    sim.run_until(sim.now() + seconds(2));
    return result.value();
  }

  Status remove(const std::string& path, std::int64_t version = -1) {
    std::optional<Status> result;
    zk->remove(session, path, version, [&](Status st) { result = st; });
    sim.run_until(sim.now() + seconds(2));
    return result.value();
  }
};

TEST_F(CoordTest, CreateAndRead) {
  EXPECT_EQ(create("/a", "hello"), Status::kOk);
  EXPECT_TRUE(zk->node_exists("/a"));
  EXPECT_EQ(zk->read("/a").value(), "hello");
}

TEST_F(CoordTest, CreateRequiresParent) {
  EXPECT_EQ(create("/a/b", "x"), Status::kNoParent);
  EXPECT_EQ(create("/a", ""), Status::kOk);
  EXPECT_EQ(create("/a/b", "x"), Status::kOk);
}

TEST_F(CoordTest, DuplicateCreateFails) {
  EXPECT_EQ(create("/a", "1"), Status::kOk);
  EXPECT_EQ(create("/a", "2"), Status::kNodeExists);
  EXPECT_EQ(zk->read("/a").value(), "1");
}

TEST_F(CoordTest, InvalidPathsRejected) {
  EXPECT_EQ(create("", "x"), Status::kBadArguments);
  EXPECT_EQ(create("a", "x"), Status::kBadArguments);
  EXPECT_EQ(create("/a/", "x"), Status::kBadArguments);
  EXPECT_EQ(create("//a", "x"), Status::kBadArguments);
  EXPECT_EQ(create("/", "x"), Status::kBadArguments);
}

TEST_F(CoordTest, SetBumpsVersionAndChecksCas) {
  EXPECT_EQ(create("/a", "v0"), Status::kOk);
  EXPECT_EQ(set("/a", "v1", 0), Status::kOk);
  EXPECT_EQ(set("/a", "bad", 0), Status::kBadVersion);
  EXPECT_EQ(set("/a", "v2", 1), Status::kOk);
  EXPECT_EQ(zk->read("/a").value(), "v2");
  EXPECT_EQ(set("/missing", "x"), Status::kNoNode);
}

TEST_F(CoordTest, GetReturnsDataAndStat) {
  create("/a", "data");
  set("/a", "data2");
  std::optional<Stat> stat;
  std::string data;
  zk->get(session, "/a", [&](Status st, const std::string& d, Stat s) {
    EXPECT_EQ(st, Status::kOk);
    data = d;
    stat = s;
  });
  sim.run_until(sim.now() + seconds(2));
  EXPECT_EQ(data, "data2");
  EXPECT_EQ(stat->version, 1);
  EXPECT_GT(stat->mzxid, stat->czxid);
}

TEST_F(CoordTest, RemoveChecksVersionAndChildren) {
  create("/a", "x");
  create("/a/b", "y");
  EXPECT_EQ(remove("/a"), Status::kNotEmpty);
  EXPECT_EQ(remove("/a/b", 5), Status::kBadVersion);
  EXPECT_EQ(remove("/a/b", 0), Status::kOk);
  EXPECT_EQ(remove("/a"), Status::kOk);
  EXPECT_EQ(remove("/a"), Status::kNoNode);
}

TEST_F(CoordTest, SequentialNodesGetIncreasingSuffixes) {
  create("/locks", "");
  std::string p1, p2;
  EXPECT_EQ(create("/locks/lock-", "", CreateMode::kPersistentSequential, &p1),
            Status::kOk);
  EXPECT_EQ(create("/locks/lock-", "", CreateMode::kPersistentSequential, &p2),
            Status::kOk);
  EXPECT_EQ(p1, "/locks/lock-0000000000");
  EXPECT_EQ(p2, "/locks/lock-0000000001");
}

TEST_F(CoordTest, GetChildrenSorted) {
  create("/a", "");
  create("/a/z", "");
  create("/a/m", "");
  create("/a/b", "");
  std::vector<std::string> names;
  zk->get_children(session, "/a",
                   [&](Status st, const std::vector<std::string>& n) {
                     EXPECT_EQ(st, Status::kOk);
                     names = n;
                   });
  sim.run_until(sim.now() + seconds(2));
  EXPECT_EQ(names, (std::vector<std::string>{"b", "m", "z"}));
}

TEST_F(CoordTest, DataWatchFiresOnceOnChange) {
  create("/a", "x");
  int fired = 0;
  zk->get(session, "/a", [](Status, const std::string&, Stat) {},
          [&](const WatchEvent& ev) {
            ++fired;
            EXPECT_EQ(ev.type, WatchEventType::kDataChanged);
            EXPECT_EQ(ev.path, "/a");
          });
  sim.run_until(sim.now() + seconds(2));
  set("/a", "y");
  set("/a", "z");  // watch is one-shot
  EXPECT_EQ(fired, 1);
}

TEST_F(CoordTest, DataWatchFiresOnDelete) {
  create("/a", "x");
  std::optional<WatchEventType> type;
  zk->get(session, "/a", [](Status, const std::string&, Stat) {},
          [&](const WatchEvent& ev) { type = ev.type; });
  sim.run_until(sim.now() + seconds(2));
  remove("/a");
  EXPECT_EQ(type.value(), WatchEventType::kDeleted);
}

TEST_F(CoordTest, ExistsWatchFiresOnCreate) {
  create("/a", "");
  std::optional<WatchEvent> event;
  zk->exists(session, "/a/child",
             [&](Status st, std::optional<Stat> stat) {
               EXPECT_EQ(st, Status::kNoNode);
               EXPECT_FALSE(stat.has_value());
             },
             [&](const WatchEvent& ev) { event = ev; });
  sim.run_until(sim.now() + seconds(2));
  create("/a/child", "x");
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->type, WatchEventType::kCreated);
  EXPECT_EQ(event->path, "/a/child");
}

TEST_F(CoordTest, ChildWatchFiresOnMembershipChange) {
  create("/a", "");
  int fired = 0;
  zk->get_children(session, "/a",
                   [](Status, const std::vector<std::string>&) {},
                   [&](const WatchEvent& ev) {
                     ++fired;
                     EXPECT_EQ(ev.type, WatchEventType::kChildren);
                   });
  sim.run_until(sim.now() + seconds(2));
  create("/a/b", "");
  EXPECT_EQ(fired, 1);
}

TEST_F(CoordTest, EphemeralsVanishOnSessionClose) {
  EXPECT_EQ(create("/e", "x", CreateMode::kEphemeral), Status::kOk);
  zk->close_session(session);
  sim.run_until(sim.now() + seconds(2));
  EXPECT_FALSE(zk->node_exists("/e"));
}

TEST_F(CoordTest, SessionExpiryRemovesEphemerals) {
  EXPECT_EQ(create("/e", "x", CreateMode::kEphemeral), Status::kOk);
  // No pings: the session expires after the timeout.
  sim.run_until(sim.now() + config.session_timeout + seconds(6));
  EXPECT_FALSE(zk->session_alive(session));
  EXPECT_FALSE(zk->node_exists("/e"));
}

TEST_F(CoordTest, PingKeepsSessionAlive) {
  for (int i = 0; i < 10; ++i) {
    sim.run_until(sim.now() + config.session_timeout / 2);
    zk->ping(session);
  }
  EXPECT_TRUE(zk->session_alive(session));
}

TEST_F(CoordTest, ExpiredSessionRejectsOperations) {
  zk->close_session(session);
  EXPECT_EQ(create("/x", ""), Status::kSessionExpired);
  EXPECT_EQ(set("/x", ""), Status::kSessionExpired);
}

TEST_F(CoordTest, MutationsCostCommitLatency) {
  const SimTime start = sim.now();
  create("/a", "x");
  EXPECT_GE(sim.now() - start, config.write_latency);
}

TEST_F(CoordTest, MutationsSerializeThroughQuorumPipeline) {
  std::vector<int> order;
  zk->create(session, "/a", "", CreateMode::kPersistent,
             [&](Status, const std::string&) { order.push_back(1); });
  zk->create(session, "/b", "", CreateMode::kPersistent,
             [&](Status, const std::string&) { order.push_back(2); });
  sim.run_until(sim.now() + seconds(2));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Two pipelined commits take at least twice the write latency.
  EXPECT_GE(sim.now(), config.write_latency + config.write_latency);
}

TEST_F(CoordTest, LeaderFailoverStallsMutations) {
  zk->inject_leader_failover();
  const SimTime start = sim.now();
  EXPECT_EQ(create("/a", "x"), Status::kOk);
  EXPECT_GE(sim.now() - start, config.failover_duration);
}

TEST_F(CoordTest, ZxidMonotone) {
  create("/a", "");
  const auto z1 = zk->last_zxid();
  set("/a", "x");
  const auto z2 = zk->last_zxid();
  EXPECT_GT(z2, z1);
}

TEST_F(CoordTest, ClientEnsurePathCreatesAncestors) {
  CoordClient client{*zk};
  std::optional<Status> result;
  client.ensure_path("/x/y/z", "leaf", [&](Status st) { result = st; });
  sim.run_until(sim.now() + seconds(2));
  EXPECT_EQ(result.value(), Status::kOk);
  EXPECT_TRUE(zk->node_exists("/x/y/z"));
  EXPECT_EQ(zk->read("/x/y/z").value(), "leaf");
  // Idempotent.
  result.reset();
  client.ensure_path("/x/y/z", "leaf", [&](Status st) { result = st; });
  sim.run_until(sim.now() + seconds(2));
  EXPECT_EQ(result.value(), Status::kNodeExists);
}

TEST_F(CoordTest, ClientSessionStaysAliveViaAutoPing) {
  CoordClient client{*zk};
  sim.run_until(sim.now() + config.session_timeout * 5);
  EXPECT_TRUE(zk->session_alive(client.session()));
}

TEST_F(CoordTest, ManagerStateSurvivesRestart) {
  // The manager persists placement under /config; a restarted manager (new
  // session) reads it back.
  create("/config", "");
  create("/config/slices", "");
  create("/config/slices/1", "host-3");
  zk->close_session(session);
  sim.run_until(sim.now() + seconds(2));
  const SessionId session2 = zk->create_session();
  std::string data;
  zk->get(session2, "/config/slices/1",
          [&](Status st, const std::string& d, Stat) {
            EXPECT_EQ(st, Status::kOk);
            data = d;
          });
  sim.run_until(sim.now() + seconds(2));
  EXPECT_EQ(data, "host-3");
}

}  // namespace
}  // namespace esh::coord
