// Strategy-parameterized differential suite: every registered migration
// protocol (buffered-replay, stop-and-restart, incremental-precopy) must
// yield the same post-migration content — delivery audit, serialized
// operator state, per-slice work counts — for the same workload, with and
// without a crash in the schedule, and each strategy's run must be
// byte-identical at 1/2/4/8 worker threads (the pool affects wall-clock
// only). Plus unit pins for the pre-copy page diff/patch primitives and the
// strategy registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "cluster/host.hpp"
#include "common/serde.hpp"
#include "engine/engine.hpp"
#include "engine/host_runtime.hpp"
#include "engine/migration_strategy.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace esh::engine {
namespace {

struct NumPayload final : Payload {
  explicit NumPayload(std::uint64_t v) : value(v) {}
  std::uint64_t value;
  [[nodiscard]] std::size_t bytes() const override { return 64; }
};

struct Record {
  std::size_t slice_index;
  std::uint64_t value;
  SimTime at;

  bool operator==(const Record&) const = default;
};

class CollectHandler final : public Handler {
 public:
  CollectHandler(std::shared_ptr<std::vector<Record>> out, std::size_t index)
      : out_(std::move(out)), index_(index) {}
  void on_event(Context& ctx, const PayloadPtr& p) override {
    out_->push_back(Record{index_, dynamic_cast<const NumPayload&>(*p).value,
                           ctx.now()});
  }
  double cost_units(const PayloadPtr&) const override { return 5.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::shared_ptr<std::vector<Record>> out_;
  std::size_t index_;
};

// Stateful worker with a multi-page serialized image (8 * kSlots bytes), so
// the pre-copy page diff has real dirty-set structure to chew on and the
// full-checkpoint strategies ship a non-trivial transfer.
class TallyForwardHandler final : public Handler {
 public:
  static constexpr std::size_t kSlots = 512;

  explicit TallyForwardHandler(std::string next) : next_(std::move(next)) {
    slots_.assign(kSlots, 0);
  }
  void on_event(Context& ctx, const PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    slots_[num.value % kSlots] += num.value;
    if (!next_.empty()) ctx.emit(next_, Routing::hash(num.value), p);
  }
  double cost_units(const PayloadPtr&) const override { return 20.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kWrite;
  }
  void serialize_state(BinaryWriter& w) const override {
    for (std::uint64_t v : slots_) w.write_u64(v);
  }
  void restore_state(BinaryReader& r) override {
    for (std::uint64_t& v : slots_) v = r.read_u64();
  }
  std::size_t state_bytes() const override { return kSlots * 8; }
  double replica_init_units() const override { return 1000.0; }

 private:
  std::string next_;
  std::vector<std::uint64_t> slots_;
};

class GenHandler final : public Handler {
 public:
  explicit GenHandler(std::string next) : next_(std::move(next)) {}
  void on_event(Context& ctx, const PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    ctx.emit(next_, Routing::hash(num.value), p);
  }
  double cost_units(const PayloadPtr&) const override { return 2.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::string next_;
};

// Everything content-bearing a run produces. `audit` keeps raw delivery
// order and timestamps (byte-identity across thread counts); cross-strategy
// comparisons sort it and drop the times, since protocol timing legitimately
// differs between strategies.
struct Fingerprint {
  std::vector<Record> audit;
  std::vector<std::vector<std::byte>> work_state;  // per work slice
  std::vector<std::uint64_t> collect_processed;    // per collect slice
  MigrationReport report;

  [[nodiscard]] std::vector<std::pair<std::size_t, std::uint64_t>>
  sorted_audit() const {
    std::vector<std::pair<std::size_t, std::uint64_t>> v;
    v.reserve(audit.size());
    for (const Record& r : audit) v.emplace_back(r.slice_index, r.value);
    std::sort(v.begin(), v.end());
    return v;
  }
};

struct Rig {
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  std::unique_ptr<Engine> engine;
  std::shared_ptr<std::vector<Record>> collected =
      std::make_shared<std::vector<Record>>();

  explicit Rig(std::size_t threads = 1) {
    EngineConfig config;
    config.flush_interval = millis(10);
    config.control_tick = millis(5);
    config.checkpoints.enabled = true;
    config.checkpoints.interval = seconds(1);
    config.worker_threads = threads;
    engine = std::make_unique<Engine>(sim, net, HostId{999}, config, 7);
    for (std::size_t i = 0; i < 5; ++i) {
      hosts.push_back(std::make_unique<cluster::Host>(sim, HostId{i + 1},
                                                      cluster::HostSpec{}));
      engine->add_host(*hosts.back());
    }
    Topology t;
    t.operators.push_back(OperatorSpec{"gen", 1, [](std::size_t) {
      return std::make_unique<GenHandler>("work");
    }});
    t.operators.push_back(OperatorSpec{"work", 2, [](std::size_t) {
      return std::make_unique<TallyForwardHandler>("collect");
    }});
    t.operators.push_back(OperatorSpec{"collect", 2, [this](std::size_t i) {
      return std::make_unique<CollectHandler>(collected, i);
    }});
    t.edges = {{"gen", "work"}, {"work", "collect"}};
    engine->deploy(t, {
        {"gen", {hosts[0]->id()}},
        {"work", {hosts[1]->id(), hosts[2]->id()}},
        {"collect", {hosts[3]->id(), hosts[3]->id()}},
    });
  }

  void inject_values(std::uint64_t count, SimDuration gap) {
    SimTime at = sim.now();
    for (std::uint64_t v = 1; v <= count; ++v) {
      at += gap;
      sim.schedule_at(at, [this, v] {
        engine->inject("gen", 0, std::make_shared<NumPayload>(v));
      });
    }
  }

  void expect_exactly_once(std::uint64_t count) {
    ASSERT_EQ(collected->size(), count);
    std::map<std::uint64_t, int> seen;
    for (const Record& r : *collected) ++seen[r.value];
    for (std::uint64_t v = 1; v <= count; ++v) {
      ASSERT_EQ(seen[v], 1) << "value " << v;
    }
  }

  [[nodiscard]] std::vector<std::byte> serialized_state(SliceId slice) {
    SliceRuntime* rt = engine->slice_runtime(slice);
    if (rt == nullptr) return {};
    BinaryWriter w;
    rt->handler().serialize_state(w);
    return std::move(w).take();
  }
};

// High enough a rate (one event every 2 ms, ~4 ms per work slice) that
// events demonstrably flow through every protocol window: the mirror phase
// sees duplicates, the pre-copy rounds see dirty pages, the final delta is
// non-empty.
constexpr std::uint64_t kValues = 1500;

// One full differential scenario: warm up under traffic, migrate work:0 to
// the empty host with `kind`, optionally crash the destination mid-protocol,
// recover if the slice was lost, drain, and fingerprint the world.
Fingerprint run_scenario(MigrationStrategyKind kind, std::size_t threads,
                         std::optional<SimDuration> crash_dst_after = {}) {
  Rig rig(threads);
  rig.inject_values(kValues, millis(2));  // 3 s of traffic
  rig.sim.run_until(rig.sim.now() + millis(1500));  // checkpoints exist

  const SliceId slice = rig.engine->slice_id("work", 0);
  const HostId dst = rig.hosts[4]->id();
  std::vector<MigrationReport> reports;
  rig.engine->migrate(slice, dst, kind,
                      [&](const MigrationReport& r) { reports.push_back(r); });
  if (crash_dst_after) {
    rig.sim.schedule(*crash_dst_after, [&] { rig.engine->fail_host(dst); });
  }
  rig.sim.run_until(rig.sim.now() + seconds(5));
  EXPECT_EQ(reports.size(), 1u);
  if (rig.engine->slice_lost(slice)) {
    bool recovered = false;
    rig.engine->recover_slice(slice, rig.hosts[0]->id(),
                              [&] { recovered = true; });
    rig.sim.run_until(rig.sim.now() + seconds(10));
    EXPECT_TRUE(recovered);
  }
  rig.sim.run_until(rig.sim.now() + seconds(10));  // drain
  rig.expect_exactly_once(kValues);

  Fingerprint fp;
  fp.audit = *rig.collected;
  for (std::size_t i = 0; i < 2; ++i) {
    fp.work_state.push_back(
        rig.serialized_state(rig.engine->slice_id("work", i)));
  }
  for (std::size_t i = 0; i < 2; ++i) {
    SliceRuntime* rt =
        rig.engine->slice_runtime(rig.engine->slice_id("collect", i));
    fp.collect_processed.push_back(rt ? rt->events_processed() : 0);
  }
  if (!reports.empty()) fp.report = reports.front();
  return fp;
}

// ---- Strategy registry ------------------------------------------------------

TEST(MigrationStrategyRegistry, ExposesAllThreeProtocolsInKindOrder) {
  const auto& all = migration_strategies();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name(), "buffered-replay");
  EXPECT_EQ(all[1]->name(), "stop-and-restart");
  EXPECT_EQ(all[2]->name(), "incremental-precopy");
  for (const MigrationStrategy* s : all) {
    EXPECT_EQ(&strategy_for(s->kind()), s);
    EXPECT_EQ(find_strategy(s->name()), s);
    EXPECT_EQ(to_string(s->kind()), s->name());
  }
  EXPECT_EQ(find_strategy("no-such-protocol"), nullptr);

  EngineConfig config;
  config.precopy_rounds = 4;
  EXPECT_FALSE(all[0]->redirect_channels());
  EXPECT_TRUE(all[1]->redirect_channels());
  EXPECT_FALSE(all[2]->redirect_channels());
  EXPECT_EQ(all[0]->precopy_rounds(config), 0u);
  EXPECT_EQ(all[1]->precopy_rounds(config), 0u);
  EXPECT_EQ(all[2]->precopy_rounds(config), 4u);
  EXPECT_FALSE(all[0]->delta_transfer());
  EXPECT_FALSE(all[1]->delta_transfer());
  EXPECT_TRUE(all[2]->delta_transfer());
}

// ---- Pre-copy page primitives ----------------------------------------------

TEST(PrecopyPages, IdenticalImagesProduceAnEmptyDiff) {
  const std::vector<std::byte> image(200, std::byte{0x5a});
  EXPECT_TRUE(diff_pages(image, image, 64).empty());
}

TEST(PrecopyPages, DiffThenApplyReconstructsAnyImagePair) {
  auto make = [](std::size_t n, unsigned seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      seed = seed * 1664525u + 1013904223u;
      v[i] = std::byte{static_cast<std::uint8_t>(seed >> 24)};
    }
    return v;
  };
  const std::size_t kPage = 64;
  const std::vector<std::pair<std::size_t, std::size_t>> sizes = {
      {0, 100}, {100, 0}, {100, 100}, {100, 300}, {300, 100},
      {64, 64}, {65, 63}, {1, 1},    {0, 0},     {4096, 4096}};
  for (const auto& [nb, nn] : sizes) {
    const auto base = make(nb, 1);
    const auto next = make(nn, 2);
    const auto pages = diff_pages(base, next, kPage);
    EXPECT_EQ(apply_pages(base, next.size(), pages), next)
        << "base=" << nb << " next=" << nn;
  }
}

TEST(PrecopyPages, OnlyDirtyPagesTravel) {
  std::vector<std::byte> base(512, std::byte{0});
  std::vector<std::byte> next = base;
  next[70] = std::byte{1};   // page 1
  next[400] = std::byte{2};  // page 6
  const auto pages = diff_pages(base, next, 64);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0].offset, 64u);
  EXPECT_EQ(pages[1].offset, 384u);
  for (const StatePage& p : pages) EXPECT_EQ(p.bytes.size(), 64u);
  EXPECT_EQ(apply_pages(base, next.size(), pages), next);
}

// ---- Differential suite -----------------------------------------------------

class StrategyDifferential
    : public ::testing::TestWithParam<MigrationStrategyKind> {};

TEST_P(StrategyDifferential, CompletesWithExactlyOnceDelivery) {
  const Fingerprint fp = run_scenario(GetParam(), 1);
  EXPECT_EQ(fp.report.outcome, MigrationOutcome::kCompleted);
  EXPECT_EQ(fp.report.strategy, strategy_for(GetParam()).name());
  EXPECT_GT(fp.report.bytes_shipped(), 0u);
  EXPECT_GE(fp.report.activated, fp.report.frozen);
}

TEST_P(StrategyDifferential, ByteIdenticalAcrossThreadCounts) {
  const Fingerprint base = run_scenario(GetParam(), 1);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const Fingerprint fp = run_scenario(GetParam(), threads);
    // Raw order AND timestamps must match: the worker pool may only change
    // wall-clock, never simulated results.
    EXPECT_EQ(fp.audit, base.audit) << "threads=" << threads;
    EXPECT_EQ(fp.work_state, base.work_state) << "threads=" << threads;
    EXPECT_EQ(fp.collect_processed, base.collect_processed)
        << "threads=" << threads;
    EXPECT_EQ(fp.report.outcome, base.report.outcome) << "threads=" << threads;
    EXPECT_EQ(fp.report.bytes_shipped(), base.report.bytes_shipped())
        << "threads=" << threads;
  }
}

TEST_P(StrategyDifferential, ExactlyOnceSurvivesDestinationCrash) {
  const Fingerprint fp = run_scenario(GetParam(), 1, millis(25));
  // run_scenario already audited exactly-once; the migration must have
  // resolved one way or the other without wedging.
  EXPECT_TRUE(fp.report.outcome == MigrationOutcome::kCompleted ||
              fp.report.outcome == MigrationOutcome::kAbortedDstFailed);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyDifferential,
    ::testing::Values(MigrationStrategyKind::kBufferedReplay,
                      MigrationStrategyKind::kStopAndRestart,
                      MigrationStrategyKind::kIncrementalPrecopy),
    [](const ::testing::TestParamInfo<MigrationStrategyKind>& info) {
      std::string name = to_string(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// The content oracle: all three protocols process the same workload into
// the same facts — same value->slice delivery sets, same serialized
// operator state, same per-collector work counts.
TEST(StrategyDifferential, AllStrategiesYieldIdenticalContentFingerprints) {
  const Fingerprint base =
      run_scenario(MigrationStrategyKind::kBufferedReplay, 1);
  for (const MigrationStrategyKind kind :
       {MigrationStrategyKind::kStopAndRestart,
        MigrationStrategyKind::kIncrementalPrecopy}) {
    const Fingerprint fp = run_scenario(kind, 1);
    EXPECT_EQ(fp.sorted_audit(), base.sorted_audit()) << to_string(kind);
    EXPECT_EQ(fp.work_state, base.work_state) << to_string(kind);
    EXPECT_EQ(fp.collect_processed, base.collect_processed) << to_string(kind);
  }
}

// Same workload plus the same fault schedule (destination dies mid-protocol)
// must still converge to identical content under every strategy.
TEST(StrategyDifferential, FaultScheduleYieldsIdenticalContentFingerprints) {
  const SimDuration kCrashAt = millis(25);
  const Fingerprint base =
      run_scenario(MigrationStrategyKind::kBufferedReplay, 1, kCrashAt);
  for (const MigrationStrategyKind kind :
       {MigrationStrategyKind::kStopAndRestart,
        MigrationStrategyKind::kIncrementalPrecopy}) {
    const Fingerprint fp = run_scenario(kind, 1, kCrashAt);
    EXPECT_EQ(fp.sorted_audit(), base.sorted_audit()) << to_string(kind);
    EXPECT_EQ(fp.work_state, base.work_state) << to_string(kind);
  }
}

// The tradeoff the strategies exist for (also swept by
// bench/fig_migration_strategies): stop-and-restart ships the fewest bytes,
// incremental pre-copy stops the slice for the shortest window.
TEST(StrategyDifferential, TradeoffOrderingHolds) {
  const Fingerprint br =
      run_scenario(MigrationStrategyKind::kBufferedReplay, 1);
  const Fingerprint sr =
      run_scenario(MigrationStrategyKind::kStopAndRestart, 1);
  const Fingerprint pc =
      run_scenario(MigrationStrategyKind::kIncrementalPrecopy, 1);
  ASSERT_EQ(br.report.outcome, MigrationOutcome::kCompleted);
  ASSERT_EQ(sr.report.outcome, MigrationOutcome::kCompleted);
  ASSERT_EQ(pc.report.outcome, MigrationOutcome::kCompleted);

  EXPECT_LT(sr.report.bytes_shipped(), br.report.bytes_shipped());
  EXPECT_LT(sr.report.bytes_shipped(), pc.report.bytes_shipped());
  EXPECT_EQ(sr.report.duplicate_bytes, 0u);  // park redirects, never mirrors

  EXPECT_LT(pc.report.interruption(), br.report.interruption());
  EXPECT_LT(pc.report.interruption(), sr.report.interruption());
  // The delta transfer is the point: the final stop ships less than the
  // full image, the pre-copy rounds carry the rest.
  EXPECT_LT(pc.report.transfer_bytes, br.report.transfer_bytes);
  EXPECT_GT(pc.report.precopy_bytes, 0u);
}

}  // namespace
}  // namespace esh::engine
