// Tests for the protocol spec tables (src/analysis/protocol_spec.*) and the
// bounded model checker (src/analysis/modelcheck.*): table sanity, alignment
// with the runtime enums they describe, clean exhaustive verification of the
// stock models, and — the checker checking the checker — seeded mutations
// that each detection class must catch.
#include <cstddef>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/modelcheck.hpp"
#include "analysis/protocol_spec.hpp"
#include "engine/engine.hpp"
#include "engine/host_runtime.hpp"
#include "engine/migration_strategy.hpp"

namespace {

using esh::analysis::CheckOptions;
using esh::analysis::CheckResult;
using esh::analysis::ModelOptions;
using esh::analysis::PlantedFault;
using esh::analysis::StateMachineSpec;

// ---- Spec table sanity ------------------------------------------------------

TEST(SpecTables, EveryStateReachableFromAnInitialState) {
  for (const StateMachineSpec* spec : esh::analysis::all_specs()) {
    const std::size_t n = spec->states().size();
    std::vector<char> seen(n, 0);
    std::queue<std::size_t> frontier;
    for (std::size_t i = 0; i < n; ++i) {
      if (spec->states()[i].initial) {
        seen[i] = 1;
        frontier.push(i);
      }
    }
    ASSERT_FALSE(frontier.empty())
        << spec->name() << " declares no initial state";
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop();
      for (const auto& e : spec->edges()) {
        if (e.from == cur && !seen[e.to]) {
          seen[e.to] = 1;
          frontier.push(e.to);
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(seen[i]) << spec->name() << " state '"
                           << spec->states()[i].name
                           << "' is unreachable from every initial state";
    }
  }
}

TEST(SpecTables, TerminalStatesHaveNoOutgoingEdgesToOtherStates) {
  for (const StateMachineSpec* spec : esh::analysis::all_specs()) {
    for (const auto& e : spec->edges()) {
      if (spec->states()[e.from].terminal) {
        EXPECT_EQ(e.from, e.to)
            << spec->name() << " terminal state '"
            << spec->states()[e.from].name << "' has an edge to '"
            << spec->states()[e.to].name << "'";
      }
    }
    // Conversely a non-terminal state must have a way out (or it would be a
    // wedge by construction in every model that honors the table).
    for (std::size_t i = 0; i < spec->states().size(); ++i) {
      if (spec->states()[i].terminal) continue;
      bool out = false;
      for (const auto& e : spec->edges()) out |= (e.from == i && e.to != i);
      EXPECT_TRUE(out) << spec->name() << " non-terminal state '"
                       << spec->states()[i].name << "' has no exit edge";
    }
  }
}

TEST(SpecTables, EdgesCarryLabelsAndAgreeWithLegal) {
  for (const StateMachineSpec* spec : esh::analysis::all_specs()) {
    const std::size_t n = spec->states().size();
    for (const auto& e : spec->edges()) {
      EXPECT_FALSE(e.label.empty())
          << spec->name() << " edge " << int{e.from} << "->" << int{e.to};
      EXPECT_TRUE(spec->legal(e.from, e.to));
      EXPECT_EQ(spec->edge(e.from, e.to)->label, e.label);
    }
    for (std::size_t f = 0; f < n; ++f) {
      for (std::size_t t = 0; t < n; ++t) {
        EXPECT_EQ(spec->legal(f, t), spec->edge(f, t) != nullptr);
      }
    }
    EXPECT_FALSE(spec->legal(n, 0));
    EXPECT_FALSE(spec->legal(0, n));
  }
}

// State indices are load-bearing: states()[i] must describe enum value i of
// the runtime enum each table claims to mirror. A reordered enum (or table)
// fails here before it can mis-gate a transition.
TEST(SpecTables, StateNamesAlignWithRuntimeEnums) {
  const auto& mig = esh::analysis::migration_spec();
  for (std::size_t i = 0; i < mig.states().size(); ++i) {
    EXPECT_EQ(esh::engine::to_string(static_cast<esh::engine::MigrationStep>(i)),
              mig.states()[i].name)
        << "MigrationStep value " << i;
  }
  const auto& split = esh::analysis::split_spec();
  for (std::size_t i = 0; i < split.states().size(); ++i) {
    EXPECT_EQ(esh::engine::to_string(static_cast<esh::engine::SplitStep>(i)),
              split.states()[i].name)
        << "SplitStep value " << i;
  }
  const auto& merge = esh::analysis::merge_spec();
  for (std::size_t i = 0; i < merge.states().size(); ++i) {
    EXPECT_EQ(esh::engine::to_string(static_cast<esh::engine::MergeStep>(i)),
              merge.states()[i].name)
        << "MergeStep value " << i;
  }
  const auto& slice = esh::analysis::slice_lifecycle_spec();
  for (std::size_t i = 0; i < slice.states().size(); ++i) {
    EXPECT_EQ(esh::engine::to_string(
                  static_cast<esh::engine::SliceRuntime::State>(i)),
              slice.states()[i].name)
        << "SliceRuntime::State value " << i;
  }
}

// The runtime legality predicates are one-line delegations to the tables;
// pin the delegation over the full from×to square.
TEST(SpecTables, RuntimeLegalityPredicatesDelegateToTheTables) {
  using esh::engine::MigrationStep;
  const auto& mig = esh::analysis::migration_spec();
  for (std::size_t f = 0; f < mig.states().size(); ++f) {
    for (std::size_t t = 0; t < mig.states().size(); ++t) {
      EXPECT_EQ(esh::engine::migration_transition_legal(
                    static_cast<MigrationStep>(f), static_cast<MigrationStep>(t)),
                mig.legal(f, t));
    }
  }
  using esh::engine::SliceRuntime;
  const auto& slice = esh::analysis::slice_lifecycle_spec();
  for (std::size_t f = 0; f < slice.states().size(); ++f) {
    for (std::size_t t = 0; t < slice.states().size(); ++t) {
      EXPECT_EQ(esh::engine::slice_transition_legal(
                    static_cast<SliceRuntime::State>(f),
                    static_cast<SliceRuntime::State>(t)),
                slice.legal(f, t));
    }
  }
}

// Every registered migration strategy maps the shared MigrationStep enum
// into its own spec table; a mapped index must land on the state of the same
// name, and an unmapped step must be rejected by legal() outright.
TEST(SpecTables, StrategySpecIndicesAlignWithStepNames) {
  using esh::engine::MigrationStep;
  for (const esh::engine::MigrationStrategy* strategy :
       esh::engine::migration_strategies()) {
    const StateMachineSpec& spec = strategy->spec();
    for (std::size_t v = 0;
         v <= static_cast<std::size_t>(MigrationStep::kPrecopy); ++v) {
      const auto step = static_cast<MigrationStep>(v);
      const std::size_t idx = strategy->spec_index(step);
      if (idx < spec.states().size()) {
        EXPECT_EQ(spec.states()[idx].name, esh::engine::to_string(step))
            << strategy->name() << " maps step " << esh::engine::to_string(step)
            << " onto the wrong state";
      } else {
        EXPECT_FALSE(spec.legal(idx, 0))
            << strategy->name() << " unmapped step must be illegal";
        EXPECT_FALSE(spec.legal(0, idx));
      }
    }
  }
}

// Strategy spec tables are registered in the shared catalog under the names
// the strategies themselves report, so --mutate and SPEC_CATALOG.md find
// them without a side table.
TEST(SpecTables, StrategySpecsAreDiscoverableByName) {
  for (const esh::engine::MigrationStrategy* strategy :
       esh::engine::migration_strategies()) {
    const StateMachineSpec* found =
        esh::analysis::find_spec(strategy->spec().name());
    ASSERT_NE(found, nullptr) << strategy->name();
    EXPECT_EQ(found, &strategy->spec()) << strategy->name();
  }
  EXPECT_EQ(esh::analysis::stop_restart_spec().name(),
            "migration-stop-restart");
  EXPECT_EQ(esh::analysis::precopy_spec().name(), "migration-precopy");
}

TEST(SpecTables, WithoutEdgeRemovesExactlyThatEdge) {
  const auto& mig = esh::analysis::migration_spec();
  const std::size_t from = mig.index_of("duplication");
  const std::size_t to = mig.index_of("transfer");
  const StateMachineSpec cut = mig.without_edge(from, to);
  EXPECT_FALSE(cut.legal(from, to));
  EXPECT_EQ(cut.edges().size(), mig.edges().size() - 1);
  for (const auto& e : mig.edges()) {
    if (e.from == from && e.to == to) continue;
    EXPECT_TRUE(cut.legal(e.from, e.to));
  }
  EXPECT_THROW((void)mig.without_edge(mig.index_of("teardown"),
                                      mig.index_of("create-replica")),
               std::invalid_argument);
}

TEST(SpecTables, CatalogMarkdownCoversEveryMachine) {
  const std::string md = esh::analysis::render_catalog_markdown();
  for (const StateMachineSpec* spec : esh::analysis::all_specs()) {
    EXPECT_NE(md.find("## " + std::string{spec->name()}), std::string::npos);
    EXPECT_NE(md.find(std::string{spec->subsystem()} + "/" +
                      std::string{spec->invariant()}),
              std::string::npos);
    for (const auto& e : spec->edges()) {
      EXPECT_NE(md.find(std::string{e.label}), std::string::npos)
          << spec->name() << " edge label missing from catalog";
    }
  }
}

// ---- Model checking ---------------------------------------------------------

TEST(ModelCheck, StockModelsVerifyExhaustively) {
  for (const std::string& name : esh::analysis::model_names()) {
    auto model = esh::analysis::make_model(name);
    ASSERT_NE(model, nullptr) << name;
    const CheckResult r = esh::analysis::check_model(*model);
    EXPECT_TRUE(r.ok) << name << " failed (" << r.failure_kind
                      << "): " << r.failure << "\n"
                      << r.format_trace();
    EXPECT_FALSE(r.exhausted_budget) << name;
    EXPECT_GT(r.states, 0U) << name;
    EXPECT_GT(r.quiescent_states, 0U) << name;
  }
}

TEST(ModelCheck, PlantedWedgeIsFoundWithReplayableTrace) {
  ModelOptions opts;
  opts.fault = PlantedFault::kWedge;
  auto model = esh::analysis::make_migration_model(opts);
  const CheckResult r = esh::analysis::check_model(*model);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure_kind, "wedge");
  // The counterexample replays to the wedged state: the destination died
  // during transfer and the (planted-faulty) coordinator never reacted.
  ASSERT_FALSE(r.trace.empty());
  EXPECT_NE(r.format_trace().find("destination host dies"), std::string::npos);
  EXPECT_NE(r.failing_state.find("step=transfer"), std::string::npos);
}

TEST(ModelCheck, PlantedInvariantViolationIsFound) {
  ModelOptions opts;
  opts.fault = PlantedFault::kInvariant;
  auto model = esh::analysis::make_migration_model(opts);
  const CheckResult r = esh::analysis::check_model(*model);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure_kind, "invariant");
  EXPECT_NE(r.failure.find("exactly-once"), std::string::npos);
  EXPECT_FALSE(r.trace.empty());
}

// The strategy models must be exhaustively wedge-free AND demonstrably able
// to catch each planted failure class — a checker that can't see its own
// planted faults proves nothing.
TEST(ModelCheck, StrategyModelsCatchPlantedWedge) {
  for (const char* name : {"migration-stop-restart", "migration-precopy"}) {
    ModelOptions opts;
    opts.fault = PlantedFault::kWedge;
    auto model = esh::analysis::make_model(name, opts);
    ASSERT_NE(model, nullptr) << name;
    const CheckResult r = esh::analysis::check_model(*model);
    EXPECT_FALSE(r.ok) << name;
    EXPECT_EQ(r.failure_kind, "wedge") << name;
    ASSERT_FALSE(r.trace.empty()) << name;
    EXPECT_NE(r.format_trace().find("destination host dies"),
              std::string::npos)
        << name;
    EXPECT_NE(r.failing_state.find("step=transfer"), std::string::npos)
        << name;
  }
}

TEST(ModelCheck, StrategyModelsCatchPlantedInvariantViolation) {
  for (const char* name : {"migration-stop-restart", "migration-precopy"}) {
    ModelOptions opts;
    opts.fault = PlantedFault::kInvariant;
    auto model = esh::analysis::make_model(name, opts);
    ASSERT_NE(model, nullptr) << name;
    const CheckResult r = esh::analysis::check_model(*model);
    EXPECT_FALSE(r.ok) << name;
    EXPECT_EQ(r.failure_kind, "invariant") << name;
    EXPECT_NE(r.failure.find("exactly-once"), std::string::npos) << name;
    EXPECT_FALSE(r.trace.empty()) << name;
  }
}

TEST(ModelCheck, DeletedStrategyEdgesTripConformance) {
  {
    const auto& spec = esh::analysis::stop_restart_spec();
    ModelOptions opts;
    opts.spec_override = std::make_shared<StateMachineSpec>(
        spec.without_edge(spec.index_of("park"), spec.index_of("transfer")));
    auto model = esh::analysis::make_stop_restart_model(opts);
    const CheckResult r = esh::analysis::check_model(*model);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failure_kind, "conformance");
    EXPECT_NE(r.failure.find("park -> transfer"), std::string::npos);
  }
  {
    const auto& spec = esh::analysis::precopy_spec();
    ModelOptions opts;
    opts.spec_override = std::make_shared<StateMachineSpec>(spec.without_edge(
        spec.index_of("precopy"), spec.index_of("transfer")));
    auto model = esh::analysis::make_precopy_model(opts);
    const CheckResult r = esh::analysis::check_model(*model);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failure_kind, "conformance");
    EXPECT_NE(r.failure.find("precopy -> transfer"), std::string::npos);
  }
}

TEST(ModelCheck, DeletedMigrationEdgeTripsConformance) {
  const auto& mig = esh::analysis::migration_spec();
  ModelOptions opts;
  opts.spec_override = std::make_shared<StateMachineSpec>(mig.without_edge(
      mig.index_of("duplication"), mig.index_of("transfer")));
  auto model = esh::analysis::make_migration_model(opts);
  const CheckResult r = esh::analysis::check_model(*model);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure_kind, "conformance");
  EXPECT_NE(r.failure.find("duplication -> transfer"), std::string::npos);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.back(), "ack: StartDuplicationAck");
}

TEST(ModelCheck, DeletedSliceEdgeTripsConformanceAcrossModels) {
  // The slice-lifecycle table is shared: deleting frozen->retired must be
  // caught by both the migration model (teardown of the source) and the
  // merge model (teardown of the drained retiree).
  const auto& slice = esh::analysis::slice_lifecycle_spec();
  ModelOptions opts;
  opts.spec_override = std::make_shared<StateMachineSpec>(
      slice.without_edge(slice.index_of("frozen"), slice.index_of("retired")));
  for (const char* name : {"migration", "merge"}) {
    auto model = esh::analysis::make_model(name, opts);
    const CheckResult r = esh::analysis::check_model(*model);
    EXPECT_FALSE(r.ok) << name;
    EXPECT_EQ(r.failure_kind, "conformance") << name;
    EXPECT_NE(r.failure.find("frozen -> retired"), std::string::npos) << name;
  }
}

TEST(ModelCheck, DeletedReliableRxEdgeTripsConformance) {
  const auto& rx = esh::analysis::reliable_rx_spec();
  ModelOptions opts;
  opts.spec_override = std::make_shared<StateMachineSpec>(
      rx.without_edge(rx.index_of("buffered"), rx.index_of("delivered")));
  auto model = esh::analysis::make_reliable_model(opts);
  const CheckResult r = esh::analysis::check_model(*model);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure_kind, "conformance");
  EXPECT_NE(r.failure.find("buffered -> delivered"), std::string::npos);
}

TEST(ModelCheck, StateBudgetExhaustionIsAFailureNotAPass) {
  CheckOptions opts;
  opts.max_states = 5;
  auto model = esh::analysis::make_reliable_model();
  const CheckResult r = esh::analysis::check_model(*model, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.exhausted_budget);
  EXPECT_EQ(r.failure_kind, "budget");
}

TEST(ModelCheck, UnknownModelNameYieldsNull) {
  EXPECT_EQ(esh::analysis::make_model("no-such-model"), nullptr);
}

}  // namespace
