#include <gtest/gtest.h>

#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/host.hpp"
#include "cluster/iaas.hpp"
#include "sim/simulator.hpp"

namespace esh::cluster {
namespace {

class HostTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  HostSpec spec{2, 1e6};  // 2 cores, 1 unit = 1 us
  Host host{sim, HostId{1}, spec};
  SliceId s1{101}, s2{102};
};

TEST_F(HostTest, SingleJobRunsForItsCost) {
  bool done = false;
  host.submit(s1, LockMode::kNone, 1000.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), millis(1));
  EXPECT_DOUBLE_EQ(host.busy_core_us(), 1000.0);
}

TEST_F(HostTest, JobsOfDistinctSlicesUseBothCores) {
  int done = 0;
  host.submit(s1, LockMode::kWrite, 1000.0, [&] { ++done; });
  host.submit(s2, LockMode::kWrite, 1000.0, [&] { ++done; });
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(sim.now(), millis(1));  // parallel, not 2 ms
}

TEST_F(HostTest, WriteJobsOfSameSliceSerialize) {
  std::vector<int> order;
  host.submit(s1, LockMode::kWrite, 1000.0, [&] { order.push_back(1); });
  host.submit(s1, LockMode::kWrite, 1000.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), millis(2));  // serialized on the slice lock
}

TEST_F(HostTest, ReadJobsOfSameSliceRunConcurrently) {
  int done = 0;
  host.submit(s1, LockMode::kRead, 1000.0, [&] { ++done; });
  host.submit(s1, LockMode::kRead, 1000.0, [&] { ++done; });
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(sim.now(), millis(1));  // R jobs parallelize across cores
}

TEST_F(HostTest, WriteWaitsForRunningReads) {
  std::vector<int> order;
  host.submit(s1, LockMode::kRead, 1000.0, [&] { order.push_back(1); });
  host.submit(s1, LockMode::kWrite, 500.0, [&] { order.push_back(2); });
  host.submit(s1, LockMode::kRead, 100.0, [&] { order.push_back(3); });
  sim.run();
  // FIFO per slice: W waits for the first R; the second R waits behind W.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), micros(1'600));
}

TEST_F(HostTest, MoreJobsThanCoresQueue) {
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    host.submit(SliceId{200 + static_cast<std::uint64_t>(i)},
                LockMode::kNone, 1000.0, [&] { ++done; });
  }
  sim.run_until(millis(1));
  EXPECT_EQ(done, 2);  // only 2 cores
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.now(), millis(2));
}

TEST_F(HostTest, UtilizationOverWindow) {
  const double start = host.busy_core_us_now();
  host.submit(s1, LockMode::kNone, 10'000.0, nullptr);
  sim.run_until(millis(10));
  // One core busy 10 of 10 ms over 2 cores -> 50 %.
  EXPECT_NEAR(host.utilization(start, millis(10)), 0.5, 0.01);
}

TEST_F(HostTest, RunningJobsCountTowardLiveUtilization) {
  const double start = host.busy_core_us_now();
  host.submit(s1, LockMode::kNone, 100'000.0, nullptr);  // 100 ms
  sim.run_until(millis(10));
  // Job still running: its elapsed 10 ms must count.
  EXPECT_NEAR(host.utilization(start, millis(10)), 0.5, 0.01);
}

TEST_F(HostTest, PerSliceAccounting) {
  host.submit(s1, LockMode::kNone, 2000.0, nullptr);
  host.submit(s2, LockMode::kNone, 1000.0, nullptr);
  sim.run();
  EXPECT_DOUBLE_EQ(host.slice_busy_core_us(s1), 2000.0);
  EXPECT_DOUBLE_EQ(host.slice_busy_core_us(s2), 1000.0);
}

TEST_F(HostTest, ForgetSliceRequiresIdle) {
  host.submit(s1, LockMode::kWrite, 1000.0, nullptr);
  EXPECT_TRUE(host.has_pending_work(s1));
  EXPECT_THROW(host.forget_slice(s1), std::logic_error);
  sim.run();
  EXPECT_FALSE(host.has_pending_work(s1));
  host.forget_slice(s1);
  EXPECT_DOUBLE_EQ(host.slice_busy_core_us(s1), 0.0);
}

TEST_F(HostTest, RejectsNegativeCost) {
  EXPECT_THROW(host.submit(s1, LockMode::kNone, -1.0, nullptr),
               std::invalid_argument);
}

TEST_F(HostTest, CompletionCallbackMaySubmitMoreWork) {
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 3) host.submit(s1, LockMode::kWrite, 100.0, next);
  };
  host.submit(s1, LockMode::kWrite, 100.0, next);
  sim.run();
  EXPECT_EQ(chain, 3);
}

TEST_F(HostTest, SaturatedSlicesShareCoresFairly) {
  // Regression: with more queued work than cores, co-located slices must
  // progress at (nearly) the same rate — the EP operator awaits the
  // slowest M slice, so unfairness directly caps system throughput.
  std::vector<int> done(4, 0);
  for (int round = 0; round < 200; ++round) {
    for (int s = 0; s < 4; ++s) {
      host.submit(SliceId{300 + static_cast<std::uint64_t>(s)},
                  LockMode::kRead, 1000.0, [&done, s] { ++done[s]; });
    }
  }
  // 2 cores, 1 ms jobs: ~100 jobs finish in 50 ms, ~25 per slice.
  sim.run_until(millis(50));
  for (int s = 0; s < 4; ++s) {
    EXPECT_GE(done[s], 20) << "slice " << s << " starved";
    EXPECT_LE(done[s], 30) << "slice " << s << " hogged";
  }
}

TEST(HostSpecTest, RejectsBadSpec) {
  sim::Simulator sim;
  EXPECT_THROW((Host{sim, HostId{1}, HostSpec{0, 1e6}}),
               std::invalid_argument);
  EXPECT_THROW((Host{sim, HostId{1}, HostSpec{2, 0.0}}),
               std::invalid_argument);
}

TEST(IaasPool, AllocateBootsAfterDelay) {
  sim::Simulator sim;
  IaasConfig config;
  config.boot_delay = seconds(2);
  IaasPool pool{sim, config};
  bool ready = false;
  const HostId id = pool.allocate([&](Host& h) {
    ready = true;
    EXPECT_EQ(h.id(), id);
  });
  EXPECT_TRUE(pool.active(id));
  EXPECT_FALSE(ready);
  sim.run_until(seconds(1));
  EXPECT_FALSE(ready);
  sim.run();
  EXPECT_TRUE(ready);
}

TEST(IaasPool, ExhaustionThrows) {
  sim::Simulator sim;
  IaasConfig config;
  config.max_hosts = 2;
  IaasPool pool{sim, config};
  pool.allocate(nullptr);
  pool.allocate(nullptr);
  EXPECT_THROW(pool.allocate(nullptr), std::runtime_error);
}

TEST(IaasPool, ReleaseReturnsCapacityAndRecordsHistory) {
  sim::Simulator sim;
  IaasPool pool{sim, IaasConfig{}};
  const HostId a = pool.allocate(nullptr);
  const HostId b = pool.allocate(nullptr);
  EXPECT_EQ(pool.active_count(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.active_count(), 1u);
  EXPECT_FALSE(pool.active(a));
  EXPECT_TRUE(pool.active(b));
  ASSERT_EQ(pool.count_history().size(), 3u);
  EXPECT_EQ(pool.count_history().back().count, 1u);
  EXPECT_THROW(pool.release(a), std::logic_error);
}

TEST(IaasPool, ReleaseBusyHostThrows) {
  sim::Simulator sim;
  IaasPool pool{sim, IaasConfig{}};
  const HostId id = pool.allocate(nullptr);
  sim.run();
  pool.host(id).submit(SliceId{1}, LockMode::kNone, 1e6, nullptr);
  EXPECT_THROW(pool.release(id), std::logic_error);
}

TEST(CostModel, AspeMatchIsQuadraticInD) {
  CostModel cost;
  EXPECT_DOUBLE_EQ(cost.aspe_match_units(4), cost.aspe_match_units_per_d2 * 16);
  EXPECT_DOUBLE_EQ(cost.aspe_match_units(8) / cost.aspe_match_units(4), 4.0);
}

TEST(CostModel, CalibrationAnchor) {
  // 12 hosts (6 for M) must sustain ~422 pub/s against 100 K encrypted
  // subscriptions. The bottleneck M host carries ceil(16/6) = 3 slices of
  // 6250 subscriptions each; every publication costs it 3 matches-of-6250
  // across its 8 cores (see DESIGN.md).
  CostModel cost;
  const double per_pub_core_us = 3.0 * 6250.0 * cost.aspe_match_units(4);
  const double max_rate = 8.0 * 1e6 / per_pub_core_us;
  EXPECT_NEAR(max_rate, 422.0, 25.0);
}

}  // namespace
}  // namespace esh::cluster
