// Chaos harness tests: seeded fault schedules injected into a live testbed
// under publication load. The cluster must heal itself — zero manual
// recover_slice calls — and the match oracle must confirm exactly-once
// delivery of every publication afterwards.
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "harness/chaos.hpp"
#include "workload/schedule.hpp"

namespace esh::harness {
namespace {

TestbedConfig chaos_config() {
  TestbedConfig config;
  config.worker_hosts = 3;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 1000;
  config.workload.matching_rate = 0.02;
  config.workload.m_slices = 3;
  config.source_slices = 2;
  config.ap_slices = 3;
  config.ep_slices = 3;
  config.sink_slices = 2;
  config.engine.flush_interval = millis(10);
  config.engine.control_tick = millis(5);
  config.engine.probe_interval = millis(100);
  config.engine.checkpoints.enabled = true;
  config.engine.checkpoints.interval = millis(500);
  config.iaas.max_hosts = 6;  // 3 workers + 3 spares (manager/io on top)
  config.iaas.boot_delay = millis(500);
  config.with_manager = true;
  config.manager.recovery.enabled = true;
  config.manager.recovery.detector =
      elastic::FailureDetectorConfig{millis(100), 2, 4};
  config.manager.recovery.attempt_timeout = seconds(5);
  config.seed = 11;
  return config;
}

void await_heal(Testbed& bed, elastic::Manager& manager, std::size_t crashes) {
  ASSERT_TRUE(bed.run_until(
      [&] {
        return manager.recoveries().size() >= crashes &&
               !manager.recovery_in_progress();
      },
      seconds(60)))
      << "recovery did not complete (got " << manager.recoveries().size()
      << "/" << crashes << " reports)";
}

void await_drain(Testbed& bed) {
  ASSERT_TRUE(bed.run_until(
      [&] {
        return bed.delays().publications_completed() >=
               bed.hub().publications_sent();
      },
      seconds(120)))
      << "only " << bed.delays().publications_completed() << " of "
      << bed.hub().publications_sent() << " publications completed";
}

TEST(FaultScheduleTest, RandomIsSeededBoundedAndDistinct) {
  const SimTime start = seconds(2);
  const SimTime end = seconds(10);
  const auto a = FaultSchedule::random(7, start, end, 5, 3, true, true);
  const auto b = FaultSchedule::random(7, start, end, 5, 3, true, true);
  const auto c = FaultSchedule::random(8, start, end, 5, 3, true, true);

  ASSERT_EQ(a.crashes.size(), 3u);
  ASSERT_EQ(a.coord_failovers.size(), 1u);
  ASSERT_EQ(a.manager_failovers.size(), 1u);
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].at, b.crashes[i].at);
    EXPECT_EQ(a.crashes[i].worker_index, b.crashes[i].worker_index);
    EXPECT_GE(a.crashes[i].at, start);
    EXPECT_LT(a.crashes[i].at, end);
    EXPECT_LT(a.crashes[i].worker_index, 5u);
    // Distinct victims.
    for (std::size_t j = i + 1; j < a.crashes.size(); ++j) {
      EXPECT_NE(a.crashes[i].worker_index, a.crashes[j].worker_index);
    }
  }
  // A different seed perturbs the schedule.
  const bool differs =
      a.crashes[0].at != c.crashes[0].at ||
      a.crashes[0].worker_index != c.crashes[0].worker_index ||
      a.crashes[1].at != c.crashes[1].at;
  EXPECT_TRUE(differs);

  EXPECT_THROW(FaultSchedule::random(1, start, end, 2, 3),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::random(1, end, end, 2, 1),
               std::invalid_argument);
}

// The acceptance scenario: a worker crashes under live publication load
// (with a lossy network in the run-up to the crash); the manager detects,
// quarantines and re-places the lost slices without any manual
// recover_slice call, and the oracle confirms exactly-once delivery.
TEST(ChaosTest, WorkerCrashUnderLoadHealsWithExactlyOnceDelivery) {
  Testbed bed{chaos_config()};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();
  bed.store_subscriptions(1000);

  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(6)));

  FaultSchedule schedule;
  schedule.crashes.push_back(
      {bed.simulator().now() + seconds(2), 1, 0.1, millis(300)});
  ChaosRunner chaos{bed, schedule};
  chaos.arm();

  bed.run_for(seconds(6) + millis(10));
  driver->stop();

  await_heal(bed, *bed.manager(), 1);
  await_drain(bed);

  const auto& recoveries = bed.manager()->recoveries();
  ASSERT_EQ(recoveries.size(), 1u);
  const auto& report = recoveries.front();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.host, chaos.crashed().front());
  EXPECT_FALSE(report.slices_lost.empty());
  EXPECT_EQ(report.slices_recovered, report.slices_lost.size());
  EXPECT_GE(report.quarantined, report.detected);
  EXPECT_GE(report.placed, report.quarantined);
  EXPECT_GE(report.recovered, report.placed);
  EXPECT_GT(report.mttr(), SimDuration::zero());

  // The crashed host left the managed set; the network saw real loss.
  const auto managed = bed.manager()->managed_hosts();
  EXPECT_EQ(std::count(managed.begin(), managed.end(), report.host), 0);
  EXPECT_GT(bed.network().stats().messages_lost, 0u);

  const auto audit = verify_exactly_once(bed);
  EXPECT_GT(audit.published, 1000u);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

// When no survivor may absorb the lost slices (placement cap zero), the
// recovery must allocate replacement hosts from the IaaS pool and replay
// onto them once booted.
TEST(ChaosTest, AllocatesReplacementHostsWhenSurvivorsCannotAbsorb) {
  auto config = chaos_config();
  config.manager.policy.placement_cap = 0.0;
  Testbed bed{config};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();
  bed.store_subscriptions(1000);

  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(150.0, seconds(6)));

  FaultSchedule schedule;
  schedule.crashes.push_back({bed.simulator().now() + seconds(2), 0, 0.0, {}});
  ChaosRunner chaos{bed, schedule};
  chaos.arm();

  bed.run_for(seconds(6) + millis(10));
  driver->stop();

  await_heal(bed, *bed.manager(), 1);
  await_drain(bed);

  ASSERT_EQ(bed.manager()->recoveries().size(), 1u);
  const auto& report = bed.manager()->recoveries().front();
  EXPECT_TRUE(report.complete);
  ASSERT_FALSE(report.replacement_hosts.empty());
  // Boot time is part of the MTTR when replacements are needed.
  EXPECT_GE(report.mttr(), millis(500));
  const auto managed = bed.manager()->managed_hosts();
  for (HostId host : report.replacement_hosts) {
    EXPECT_EQ(std::count(managed.begin(), managed.end(), host), 1)
        << "replacement host " << host << " not managed";
    EXPECT_TRUE(bed.engine().has_host(host));
  }

  const auto audit = verify_exactly_once(bed);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

// A coordination leader failover right after the crash stalls the
// manager's persistence writes but must not block recovery; the dead
// verdict still lands in the tree once the new leader commits.
TEST(ChaosTest, CoordFailoverDuringRecoveryStillHeals) {
  Testbed bed{chaos_config()};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();
  bed.store_subscriptions(1000);

  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(150.0, seconds(5)));

  FaultSchedule schedule;
  const SimTime crash_at = bed.simulator().now() + seconds(2);
  schedule.crashes.push_back({crash_at, 2, 0.0, {}});
  schedule.coord_failovers.push_back({crash_at + millis(150)});
  ChaosRunner chaos{bed, schedule};
  chaos.arm();

  bed.run_for(seconds(5) + millis(10));
  driver->stop();

  await_heal(bed, *bed.manager(), 1);
  await_drain(bed);

  ASSERT_EQ(bed.manager()->recoveries().size(), 1u);
  const auto& report = bed.manager()->recoveries().front();
  EXPECT_TRUE(report.complete);

  // The verdict write survived the failover (committed by the new leader).
  const std::string health_path =
      "/estreamhub/health/" + std::to_string(report.host.value());
  ASSERT_TRUE(bed.run_until(
      [&] { return bed.coord().node_exists(health_path); }, seconds(10)));
  EXPECT_EQ(bed.coord().read(health_path), "dead");

  const auto audit = verify_exactly_once(bed);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

// Manager failover followed by a worker crash: the promoted standby must
// inherit the fleet from the coordination tree and run the recovery itself.
TEST(ChaosTest, PromotedStandbyHealsCrashAfterManagerFailover) {
  auto config = chaos_config();
  config.manager.use_leader_election = true;
  Testbed bed{config};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();

  elastic::Manager standby{bed.simulator(), bed.network(), bed.engine(),
                           bed.pool(),      bed.coord(),   bed.manager_host(),
                           config.manager};
  standby.set_enforcement(false);
  standby.enter_standby();

  bed.store_subscriptions(1000);
  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(150.0, seconds(6)));

  FaultSchedule schedule;
  const SimTime t0 = bed.simulator().now();
  schedule.manager_failovers.push_back({t0 + seconds(1)});
  schedule.crashes.push_back({t0 + seconds(2), 0, 0.0, {}});
  ChaosRunner chaos{bed, schedule};
  chaos.arm();

  bed.run_for(seconds(6) + millis(10));
  driver->stop();

  await_heal(bed, standby, 1);
  await_drain(bed);

  EXPECT_FALSE(bed.manager()->is_active());
  EXPECT_TRUE(standby.is_active());
  EXPECT_TRUE(bed.manager()->recoveries().empty());
  ASSERT_EQ(standby.recoveries().size(), 1u);
  EXPECT_TRUE(standby.recoveries().front().complete);
  EXPECT_EQ(standby.recoveries().front().host, chaos.crashed().front());

  const auto audit = verify_exactly_once(bed);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

}  // namespace
}  // namespace esh::harness
