// Chaos harness tests: seeded fault schedules injected into a live testbed
// under publication load. The cluster must heal itself — zero manual
// recover_slice calls — and the match oracle must confirm exactly-once
// delivery of every publication afterwards.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/det.hpp"
#include "engine/migration_strategy.hpp"
#include "harness/chaos.hpp"
#include "workload/schedule.hpp"

namespace esh::harness {
namespace {

TestbedConfig chaos_config() {
  TestbedConfig config;
  config.worker_hosts = 3;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 1000;
  config.workload.matching_rate = 0.02;
  config.workload.m_slices = 3;
  config.source_slices = 2;
  config.ap_slices = 3;
  config.ep_slices = 3;
  config.sink_slices = 2;
  config.engine.flush_interval = millis(10);
  config.engine.control_tick = millis(5);
  config.engine.probe_interval = millis(100);
  config.engine.checkpoints.enabled = true;
  config.engine.checkpoints.interval = millis(500);
  config.iaas.max_hosts = 6;  // 3 workers + 3 spares (manager/io on top)
  config.iaas.boot_delay = millis(500);
  config.with_manager = true;
  config.manager.recovery.enabled = true;
  config.manager.recovery.detector =
      elastic::FailureDetectorConfig{millis(100), 2, 4};
  config.manager.recovery.attempt_timeout = seconds(5);
  config.seed = 11;
  return config;
}

void await_heal(Testbed& bed, elastic::Manager& manager, std::size_t crashes) {
  ASSERT_TRUE(bed.run_until(
      [&] {
        return manager.recoveries().size() >= crashes &&
               !manager.recovery_in_progress();
      },
      seconds(60)))
      << "recovery did not complete (got " << manager.recoveries().size()
      << "/" << crashes << " reports)";
}

void await_drain(Testbed& bed) {
  ASSERT_TRUE(bed.run_until(
      [&] {
        return bed.delays().publications_completed() >=
               bed.hub().publications_sent();
      },
      seconds(120)))
      << "only " << bed.delays().publications_completed() << " of "
      << bed.hub().publications_sent() << " publications completed";
}

TEST(FaultScheduleTest, RandomIsSeededBoundedAndDistinct) {
  const SimTime start = seconds(2);
  const SimTime end = seconds(10);
  const auto a = FaultSchedule::random(7, start, end, 5, 3, true, true);
  const auto b = FaultSchedule::random(7, start, end, 5, 3, true, true);
  const auto c = FaultSchedule::random(8, start, end, 5, 3, true, true);

  ASSERT_EQ(a.crashes.size(), 3u);
  ASSERT_EQ(a.coord_failovers.size(), 1u);
  ASSERT_EQ(a.manager_failovers.size(), 1u);
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].at, b.crashes[i].at);
    EXPECT_EQ(a.crashes[i].worker_index, b.crashes[i].worker_index);
    EXPECT_GE(a.crashes[i].at, start);
    EXPECT_LT(a.crashes[i].at, end);
    EXPECT_LT(a.crashes[i].worker_index, 5u);
    // Distinct victims.
    for (std::size_t j = i + 1; j < a.crashes.size(); ++j) {
      EXPECT_NE(a.crashes[i].worker_index, a.crashes[j].worker_index);
    }
  }
  // A different seed perturbs the schedule.
  const bool differs =
      a.crashes[0].at != c.crashes[0].at ||
      a.crashes[0].worker_index != c.crashes[0].worker_index ||
      a.crashes[1].at != c.crashes[1].at;
  EXPECT_TRUE(differs);

  EXPECT_THROW(FaultSchedule::random(1, start, end, 2, 3),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::random(1, end, end, 2, 1),
               std::invalid_argument);
}

// The acceptance scenario: a worker crashes under live publication load
// (with a lossy network in the run-up to the crash); the manager detects,
// quarantines and re-places the lost slices without any manual
// recover_slice call, and the oracle confirms exactly-once delivery.
TEST(ChaosTest, WorkerCrashUnderLoadHealsWithExactlyOnceDelivery) {
  Testbed bed{chaos_config()};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();
  bed.store_subscriptions(1000);

  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(6)));

  FaultSchedule schedule;
  schedule.crashes.push_back(
      {bed.simulator().now() + seconds(2), 1, 0.1, millis(300)});
  ChaosRunner chaos{bed, schedule};
  chaos.arm();

  bed.run_for(seconds(6) + millis(10));
  driver->stop();

  await_heal(bed, *bed.manager(), 1);
  await_drain(bed);

  const auto& recoveries = bed.manager()->recoveries();
  ASSERT_EQ(recoveries.size(), 1u);
  const auto& report = recoveries.front();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.host, chaos.crashed().front());
  EXPECT_FALSE(report.slices_lost.empty());
  EXPECT_EQ(report.slices_recovered, report.slices_lost.size());
  EXPECT_GE(report.quarantined, report.detected);
  EXPECT_GE(report.placed, report.quarantined);
  EXPECT_GE(report.recovered, report.placed);
  EXPECT_GT(report.mttr(), SimDuration::zero());

  // The crashed host left the managed set; the network saw real loss.
  const auto managed = bed.manager()->managed_hosts();
  EXPECT_EQ(std::count(managed.begin(), managed.end(), report.host), 0);
  EXPECT_GT(bed.network().stats().messages_lost, 0u);

  const auto audit = verify_exactly_once(bed);
  EXPECT_GT(audit.published, 1000u);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

// Regression: PR 5 pinned its chaos leg to FaultSchedule::random seed 2
// because seeds 17 and 1 wedged the drain identically at every thread
// count. The wedge was a co-recovery renumbering bug, not schedule
// sensitivity: those seeds crash a host carrying both a multi-input slice
// and one of its consumers. The multi-input slice regenerates its
// post-checkpoint output with fresh sequence numbers, while the co-dead
// consumer restored channel watermarks counting the OLD numbering — so the
// regenerated suffix was silently deduplicated and its publications never
// completed. The engine now records per-consumer regenerated bases at
// fail_host time and rewinds co-recovering consumers' restored watermarks
// below them (Engine::register_recovery_rebases / clamp_to_rebases), which
// makes the wedge impossible. These seeds must drain exactly-once forever.
TEST(ChaosTest, FormerlyWedgingSeedsDrainExactlyOnce) {
  for (const std::uint64_t seed : {17u, 1u}) {
    auto config = chaos_config();
    config.workload.total_subscriptions = 1200;
    Testbed bed{config};
    bed.manager()->set_enforcement(false);
    bed.delays().enable_audit();
    bed.store_subscriptions(1200);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(6)));
    const FaultSchedule schedule = FaultSchedule::random(
        seed, bed.simulator().now() + seconds(1),
        bed.simulator().now() + seconds(4), bed.worker_hosts().size(), 1);
    ChaosRunner chaos{bed, schedule};
    chaos.arm();
    bed.run_for(seconds(6) + millis(10));
    driver->stop();

    await_heal(bed, *bed.manager(), 1);
    await_drain(bed);
    bed.run_for(seconds(2));

    const auto audit = verify_exactly_once(bed);
    EXPECT_TRUE(audit.exactly_once())
        << "seed " << seed << ": published=" << audit.published
        << " missing=" << audit.missing << " duplicated=" << audit.duplicated
        << " mismatched=" << audit.mismatched;
  }
}

// When no survivor may absorb the lost slices (placement cap zero), the
// recovery must allocate replacement hosts from the IaaS pool and replay
// onto them once booted.
TEST(ChaosTest, AllocatesReplacementHostsWhenSurvivorsCannotAbsorb) {
  auto config = chaos_config();
  config.manager.policy.placement_cap = 0.0;
  Testbed bed{config};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();
  bed.store_subscriptions(1000);

  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(150.0, seconds(6)));

  FaultSchedule schedule;
  schedule.crashes.push_back({bed.simulator().now() + seconds(2), 0, 0.0, {}});
  ChaosRunner chaos{bed, schedule};
  chaos.arm();

  bed.run_for(seconds(6) + millis(10));
  driver->stop();

  await_heal(bed, *bed.manager(), 1);
  await_drain(bed);

  ASSERT_EQ(bed.manager()->recoveries().size(), 1u);
  const auto& report = bed.manager()->recoveries().front();
  EXPECT_TRUE(report.complete);
  ASSERT_FALSE(report.replacement_hosts.empty());
  // Boot time is part of the MTTR when replacements are needed.
  EXPECT_GE(report.mttr(), millis(500));
  const auto managed = bed.manager()->managed_hosts();
  for (HostId host : report.replacement_hosts) {
    EXPECT_EQ(std::count(managed.begin(), managed.end(), host), 1)
        << "replacement host " << host << " not managed";
    EXPECT_TRUE(bed.engine().has_host(host));
  }

  const auto audit = verify_exactly_once(bed);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

// A coordination leader failover right after the crash stalls the
// manager's persistence writes but must not block recovery; the dead
// verdict still lands in the tree once the new leader commits.
TEST(ChaosTest, CoordFailoverDuringRecoveryStillHeals) {
  Testbed bed{chaos_config()};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();
  bed.store_subscriptions(1000);

  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(150.0, seconds(5)));

  FaultSchedule schedule;
  const SimTime crash_at = bed.simulator().now() + seconds(2);
  schedule.crashes.push_back({crash_at, 2, 0.0, {}});
  schedule.coord_failovers.push_back({crash_at + millis(150)});
  ChaosRunner chaos{bed, schedule};
  chaos.arm();

  bed.run_for(seconds(5) + millis(10));
  driver->stop();

  await_heal(bed, *bed.manager(), 1);
  await_drain(bed);

  ASSERT_EQ(bed.manager()->recoveries().size(), 1u);
  const auto& report = bed.manager()->recoveries().front();
  EXPECT_TRUE(report.complete);

  // The verdict write survived the failover (committed by the new leader).
  const std::string health_path =
      "/estreamhub/health/" + std::to_string(report.host.value());
  ASSERT_TRUE(bed.run_until(
      [&] { return bed.coord().node_exists(health_path); }, seconds(10)));
  EXPECT_EQ(bed.coord().read(health_path), "dead");

  const auto audit = verify_exactly_once(bed);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

// Manager failover followed by a worker crash: the promoted standby must
// inherit the fleet from the coordination tree and run the recovery itself.
TEST(ChaosTest, PromotedStandbyHealsCrashAfterManagerFailover) {
  auto config = chaos_config();
  config.manager.use_leader_election = true;
  Testbed bed{config};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();

  elastic::Manager standby{bed.simulator(), bed.network(), bed.engine(),
                           bed.pool(),      bed.coord(),   bed.manager_host(),
                           config.manager};
  standby.set_enforcement(false);
  standby.enter_standby();

  bed.store_subscriptions(1000);
  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(150.0, seconds(6)));

  FaultSchedule schedule;
  const SimTime t0 = bed.simulator().now();
  schedule.manager_failovers.push_back({t0 + seconds(1)});
  schedule.crashes.push_back({t0 + seconds(2), 0, 0.0, {}});
  ChaosRunner chaos{bed, schedule};
  chaos.arm();

  bed.run_for(seconds(6) + millis(10));
  driver->stop();

  await_heal(bed, standby, 1);
  await_drain(bed);

  EXPECT_FALSE(bed.manager()->is_active());
  EXPECT_TRUE(standby.is_active());
  EXPECT_TRUE(bed.manager()->recoveries().empty());
  ASSERT_EQ(standby.recoveries().size(), 1u);
  EXPECT_TRUE(standby.recoveries().front().complete);
  EXPECT_EQ(standby.recoveries().front().host, chaos.crashed().front());

  const auto audit = verify_exactly_once(bed);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

// ---- combined adversarial schedule -----------------------------------------

// Everything downstream consumers observe, plus the injection and reliable
// channel counters: two runs agreeing on this differ in wall-clock only.
struct ChaosFingerprint {
  std::uint64_t notifications = 0;
  std::uint64_t completed = 0;
  std::vector<double> percentiles;
  std::vector<std::tuple<std::uint64_t, std::uint32_t,
                         std::vector<std::uint64_t>>>
      audit;
  std::uint64_t net_sent = 0, net_lost = 0, net_duplicated = 0,
                net_reordered = 0, net_partitioned = 0, net_retransmitted = 0;
  std::uint64_t reliable_delivered = 0, reliable_retransmits = 0,
                reliable_dup_dropped = 0;
  std::size_t recoveries = 0, drains_completed = 0, drains_aborted = 0;
  std::uint64_t splits = 0, merges = 0;

  bool operator==(const ChaosFingerprint&) const = default;
};

ChaosFingerprint chaos_fingerprint(Testbed& bed) {
  ChaosFingerprint fp;
  fp.notifications = bed.delays().notifications();
  fp.completed = bed.delays().publications_completed();
  fp.percentiles = bed.delays().delays_ms().percentiles({0, 50, 90, 99, 100});
  for (const PublicationId pub : sorted_keys(bed.delays().audit())) {
    const auto& entry = bed.delays().audit().at(pub);
    std::vector<std::uint64_t> subscribers;
    subscribers.reserve(entry.subscribers.size());
    for (const SubscriberId s : entry.subscribers) {
      subscribers.push_back(s.value());
    }
    fp.audit.emplace_back(pub.value(), entry.deliveries,
                          std::move(subscribers));
  }
  const net::NetworkStats& net = bed.network().stats();
  fp.net_sent = net.messages_sent;
  fp.net_lost = net.messages_lost;
  fp.net_duplicated = net.messages_duplicated;
  fp.net_reordered = net.messages_reordered;
  fp.net_partitioned = net.messages_partitioned;
  fp.net_retransmitted = net.messages_retransmitted;
  const net::ReliableStats reliable = bed.engine().reliable_stats();
  fp.reliable_delivered = reliable.delivered;
  fp.reliable_retransmits = reliable.retransmits;
  fp.reliable_dup_dropped = reliable.duplicates_dropped;
  fp.recoveries = bed.manager()->recoveries().size();
  for (const elastic::DrainReport& drain : bed.manager()->drains()) {
    if (drain.complete) ++fp.drains_completed;
    if (drain.aborted) ++fp.drains_aborted;
  }
  fp.splits = bed.engine().splits_completed();
  fp.merges = bed.engine().merges_completed();
  return fp;
}

// The PR's acceptance scenario: a crash with a lossy run-up, a partition
// that outlasts the conviction window, a duplicate storm, a reorder storm
// and one gray host — all at once, against reliable control channels, a
// latency-aware detector and proactive draining. The oracle must confirm
// exactly-once delivery and the entire outcome must be byte-identical at
// every worker thread count.
TEST(ChaosTest, CombinedScheduleExactlyOnceAndByteIdenticalAcrossThreads) {
  auto run = [](std::size_t threads) {
    auto config = chaos_config();
    config.worker_hosts = 4;
    config.iaas.max_hosts = 8;
    config.engine.worker_threads = threads;
    config.engine.reliable_control = true;
    config.engine.reliable.initial_rto = millis(50);
    // Latency-aware suspicion: the gray host's x4 NIC slowdown must be
    // caught by the delay EWMA, never by silence.
    config.manager.recovery.detector.latency_suspect_factor = 2.0;
    config.manager.recovery.drain_suspects = true;
    config.manager.recovery.drain_after = millis(400);

    Testbed bed{config};
    bed.manager()->set_enforcement(false);
    bed.delays().enable_audit();
    bed.store_subscriptions(1000);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(150.0, seconds(7)));

    const SimTime t0 = bed.simulator().now();
    FaultSchedule schedule;
    // Worker 0 goes gray at 1s and stays degraded to the end: drained.
    schedule.gray_degrades.push_back({t0 + seconds(1), {}, 0, 4.0});
    // Worker 1 crashes at 3s after a 1%-loss run-up: recovered.
    schedule.crashes.push_back({t0 + seconds(3), 1, 0.01, millis(500)});
    // Worker 2 is cut off for 1.5s from 4.5s — longer than the conviction
    // window, so it is declared dead and healing cannot resurrect it.
    schedule.partitions.push_back({t0 + millis(4500), millis(1500), {2}});
    // Global storms overlap the crash and the partition.
    schedule.duplicate_storms.push_back({t0 + millis(2500), seconds(2), 0.05});
    schedule.reorder_storms.push_back(
        {t0 + millis(4000), seconds(2), 0.05, millis(1)});
    ChaosRunner chaos{bed, schedule};
    chaos.arm();

    bed.run_for(seconds(7) + millis(10));
    driver->stop();

    // Two dead hosts (crash + partition) must be recovered, the gray host
    // drained; then the stream must fully drain.
    await_heal(bed, *bed.manager(), 2);
    await_drain(bed);
    bed.run_for(seconds(2));

    EXPECT_GE(bed.manager()->recoveries().size(), 2u) << threads << " threads";
    for (const auto& report : bed.manager()->recoveries()) {
      EXPECT_TRUE(report.complete) << threads << " threads";
    }
    // The gray host's drain must run to completion. The partitioned host
    // may also arm a drain (it looks gray while cut off) that the silence
    // conviction then aborts — recovery takes over; every drain therefore
    // either completes or is aborted by a recovery, never wedges.
    EXPECT_GE(bed.manager()->drains().size(), 1u) << threads << " threads";
    std::size_t completed_drains = 0;
    for (const elastic::DrainReport& drain : bed.manager()->drains()) {
      EXPECT_TRUE(drain.complete || drain.aborted) << threads << " threads";
      if (!drain.complete) continue;
      ++completed_drains;
      EXPECT_EQ(drain.host, bed.worker_hosts()[0]) << threads << " threads";
      EXPECT_GT(drain.slices_moved, 0u) << threads << " threads";
    }
    EXPECT_EQ(completed_drains, 1u) << threads << " threads";

    // Every injected fault actually fired on the wire.
    const net::NetworkStats& net = bed.network().stats();
    EXPECT_GT(net.messages_lost, 0u);
    EXPECT_GT(net.messages_duplicated, 0u);
    EXPECT_GT(net.messages_reordered, 0u);
    EXPECT_GT(net.messages_partitioned, 0u);
    // ...and the reliable control channel earned its keep.
    const net::ReliableStats reliable = bed.engine().reliable_stats();
    EXPECT_GT(reliable.delivered, 0u);
    EXPECT_GT(reliable.retransmits, 0u);

    const auto audit = verify_exactly_once(bed);
    EXPECT_TRUE(audit.exactly_once())
        << "published=" << audit.published << " missing=" << audit.missing
        << " duplicated=" << audit.duplicated
        << " mismatched=" << audit.mismatched << " at " << threads
        << " threads";
    return chaos_fingerprint(bed);
  };

  const ChaosFingerprint reference = run(1);
  EXPECT_GT(reference.notifications, 0u);
  EXPECT_EQ(reference.drains_completed, 1u);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run(threads), reference) << threads << " threads";
  }
}

// ---- split/merge torture ----------------------------------------------------

// Crash-torture deployment: M isolated on its own pair of hosts. A crash
// mid-transition must kill matcher state, not the co-located upstream AP —
// an AP crash concurrent with an in-flight split/merge invalidates the
// saved cut vector's channel numbering and is documented out-of-scope
// (PROTOCOL.md); the generic co-crash chaos tests cover AP deaths.
TestbedConfig torture_config() {
  auto config = chaos_config();
  config.worker_hosts = 4;
  config.iaas.max_hosts = 7;
  config.placement = [](const std::vector<HostId>& workers) {
    pubsub::HostAssignment assignment;
    assignment["AP"] = {workers[0], workers[1]};
    assignment["EP"] = {workers[0], workers[1]};
    assignment["M"] = {workers[2], workers[3]};
    return assignment;
  };
  return config;
}

// The M-side worker (torture_config placement) not hosting `slice`.
HostId other_m_worker(Testbed& bed, SliceId slice) {
  const HostId current = bed.engine().slice_host(slice);
  const auto& workers = bed.worker_hosts();
  return workers[2] == current ? workers[3] : workers[2];
}

// Baseline: a key-level split and the inverse merge under live publication
// load, no faults. Routing flips mid-stream twice; the oracle must still
// confirm exactly-once delivery and the coverage must return to depth 0.
TEST(SplitMergeTortureTest, SplitThenMergeUnderLoadIsExactlyOnce) {
  Testbed bed{torture_config()};
  bed.manager()->set_enforcement(false);
  bed.delays().enable_audit();
  bed.store_subscriptions(1000);

  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(6)));

  const SliceId parent = bed.engine().slice_id("M", 0);
  const HostId dst = other_m_worker(bed, parent);
  std::optional<engine::TransitionReport> split_report;
  std::optional<engine::TransitionReport> merge_report;
  bed.simulator().schedule(seconds(2), [&] {
    bed.engine().split_slice(
        parent, dst, [&](const engine::TransitionReport& r) {
          split_report = r;
          bed.simulator().schedule(seconds(1), [&] {
            bed.engine().merge_slices(
                parent, split_report->child,
                [&](const engine::TransitionReport& r2) { merge_report = r2; });
          });
        });
  });

  bed.run_for(seconds(6) + millis(10));
  driver->stop();
  ASSERT_TRUE(bed.run_until([&] { return merge_report.has_value(); },
                            seconds(30)));
  await_drain(bed);
  bed.run_for(seconds(1));

  ASSERT_TRUE(split_report.has_value());
  EXPECT_TRUE(split_report->completed);
  EXPECT_EQ(split_report->kind, engine::TransitionKind::kSplit);
  EXPECT_GT(split_report->moved, 0u);  // state actually changed hands
  EXPECT_GE(split_report->cutover, split_report->requested);
  EXPECT_GE(split_report->finished, split_report->cutover);
  EXPECT_TRUE(merge_report->completed);
  EXPECT_EQ(merge_report->kind, engine::TransitionKind::kMerge);
  EXPECT_EQ(bed.engine().splits_completed(), 1u);
  EXPECT_EQ(bed.engine().merges_completed(), 1u);
  EXPECT_EQ(bed.engine().slice_coverage(parent).depth, 0u);

  const auto audit = verify_exactly_once(bed);
  EXPECT_GT(audit.published, 500u);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

// Crash torture, split half: at every coordinator step of an in-flight
// split, kill the parent's host or the child's host (via the network, so
// detection, conviction and recovery all run the production path). The
// transition must finish (abort pre-cut-over, roll forward after), the
// cluster must heal, and delivery must stay exactly-once.
TEST(SplitMergeTortureTest, CrashAtEverySplitStepHealsExactlyOnce) {
  struct Case {
    std::string_view step;
    bool kill_parent;
  };
  const Case cases[] = {
      {"create-child", true}, {"create-child", false}, {"drain", true},
      {"drain", false},       {"activate", true},      {"activate", false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string{"step="} + std::string{c.step} +
                 (c.kill_parent ? " victim=parent" : " victim=child"));
    Testbed bed{torture_config()};
    bed.manager()->set_enforcement(false);
    bed.delays().enable_audit();
    bed.store_subscriptions(1000);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(6)));

    const SliceId parent = bed.engine().slice_id("M", 0);
    const HostId parent_host = bed.engine().slice_host(parent);
    const HostId dst = other_m_worker(bed, parent);
    bool crashed = false;
    std::optional<engine::TransitionReport> report;
    bed.engine().on_elastic_step(
        [&](const engine::TransitionReport&, std::string_view step) {
          if (crashed || step != c.step) return;
          crashed = true;
          bed.network().set_host_down(c.kill_parent ? parent_host : dst, true);
        });
    bed.simulator().schedule(seconds(2), [&] {
      bed.engine().split_slice(
          parent, dst,
          [&](const engine::TransitionReport& r) { report = r; });
    });

    bed.run_for(seconds(6) + millis(10));
    driver->stop();
    EXPECT_TRUE(crashed);
    await_heal(bed, *bed.manager(), 1);
    ASSERT_TRUE(
        bed.run_until([&] { return report.has_value(); }, seconds(60)));
    await_drain(bed);
    bed.run_for(seconds(2));

    EXPECT_EQ(bed.engine().pending_transitions(), 0u);
    const auto audit = verify_exactly_once(bed);
    EXPECT_TRUE(audit.exactly_once())
        << "published=" << audit.published << " missing=" << audit.missing
        << " duplicated=" << audit.duplicated
        << " mismatched=" << audit.mismatched;
  }
}

// Crash torture, merge half: same drill at every step of an in-flight
// merge — survivor's host and retiree's host each die at drain-retiree,
// absorb and teardown. Merges never abort; every case must roll forward to
// completion through recovery, and delivery must stay exactly-once.
TEST(SplitMergeTortureTest, CrashAtEveryMergeStepHealsExactlyOnce) {
  struct Case {
    std::string_view step;
    bool kill_survivor;
  };
  const Case cases[] = {
      {"drain-retiree", true}, {"drain-retiree", false}, {"absorb", true},
      {"absorb", false},       {"teardown", true},       {"teardown", false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string{"step="} + std::string{c.step} +
                 (c.kill_survivor ? " victim=survivor" : " victim=retiree"));
    Testbed bed{torture_config()};
    bed.manager()->set_enforcement(false);
    bed.delays().enable_audit();
    bed.store_subscriptions(1000);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(7)));

    const SliceId parent = bed.engine().slice_id("M", 0);
    const HostId parent_host = bed.engine().slice_host(parent);
    const HostId dst = other_m_worker(bed, parent);
    bool crashed = false;
    std::optional<engine::TransitionReport> merge_report;
    bed.engine().on_elastic_step(
        [&](const engine::TransitionReport&, std::string_view step) {
          if (crashed || step != c.step) return;
          crashed = true;
          bed.network().set_host_down(c.kill_survivor ? parent_host : dst,
                                      true);
        });
    bed.simulator().schedule(seconds(1), [&] {
      bed.engine().split_slice(
          parent, dst, [&](const engine::TransitionReport& split_r) {
            ASSERT_TRUE(split_r.completed);
            const SliceId child = split_r.child;
            bed.simulator().schedule(millis(500), [&bed, parent, child,
                                                   &merge_report] {
              bed.engine().merge_slices(
                  parent, child,
                  [&merge_report](const engine::TransitionReport& r) {
                    merge_report = r;
                  });
            });
          });
    });

    bed.run_for(seconds(7) + millis(10));
    driver->stop();
    EXPECT_TRUE(crashed);
    await_heal(bed, *bed.manager(), 1);
    ASSERT_TRUE(
        bed.run_until([&] { return merge_report.has_value(); }, seconds(60)));
    EXPECT_TRUE(merge_report->completed);
    await_drain(bed);
    bed.run_for(seconds(2));

    EXPECT_EQ(bed.engine().pending_transitions(), 0u);
    EXPECT_EQ(bed.engine().merges_completed(), 1u);
    const auto audit = verify_exactly_once(bed);
    EXPECT_TRUE(audit.exactly_once())
        << "published=" << audit.published << " missing=" << audit.missing
        << " duplicated=" << audit.duplicated
        << " mismatched=" << audit.mismatched;
  }
}

// Determinism: a split whose parent host dies mid-drain (forcing the
// checkpoint+replay roll-forward), followed by the merge back — the whole
// outcome must be byte-identical at every worker thread count.
TEST(SplitMergeTortureTest, SplitCrashMergeByteIdenticalAcrossThreads) {
  auto run = [](std::size_t threads) {
    auto config = torture_config();
    config.engine.worker_threads = threads;
    Testbed bed{config};
    bed.manager()->set_enforcement(false);
    bed.delays().enable_audit();
    bed.store_subscriptions(1000);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(7)));

    const SliceId parent = bed.engine().slice_id("M", 1);
    const HostId parent_host = bed.engine().slice_host(parent);
    const HostId dst = other_m_worker(bed, parent);
    bool crashed = false;
    std::optional<engine::TransitionReport> merge_report;
    bed.engine().on_elastic_step(
        [&](const engine::TransitionReport&, std::string_view step) {
          if (crashed || step != "drain") return;
          crashed = true;
          bed.network().set_host_down(parent_host, true);
        });
    bed.simulator().schedule(millis(1500), [&] {
      bed.engine().split_slice(
          parent, dst, [&](const engine::TransitionReport& split_r) {
            EXPECT_TRUE(split_r.completed) << threads << " threads";
            const SliceId child = split_r.child;
            bed.simulator().schedule(seconds(1), [&bed, parent, child,
                                                  &merge_report] {
              bed.engine().merge_slices(
                  parent, child,
                  [&merge_report](const engine::TransitionReport& r) {
                    merge_report = r;
                  });
            });
          });
    });

    bed.run_for(seconds(7) + millis(10));
    driver->stop();
    await_heal(bed, *bed.manager(), 1);
    EXPECT_TRUE(bed.run_until([&] { return merge_report.has_value(); },
                              seconds(60)))
        << threads << " threads";
    await_drain(bed);
    bed.run_for(seconds(2));

    EXPECT_EQ(bed.engine().splits_completed(), 1u) << threads << " threads";
    EXPECT_EQ(bed.engine().merges_completed(), 1u) << threads << " threads";
    const auto audit = verify_exactly_once(bed);
    EXPECT_TRUE(audit.exactly_once())
        << "published=" << audit.published << " missing=" << audit.missing
        << " duplicated=" << audit.duplicated
        << " mismatched=" << audit.mismatched << " at " << threads
        << " threads";
    return chaos_fingerprint(bed);
  };

  const ChaosFingerprint reference = run(1);
  EXPECT_GT(reference.notifications, 0u);
  EXPECT_EQ(reference.splits, 1u);
  EXPECT_EQ(reference.merges, 1u);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run(threads), reference) << threads << " threads";
  }
}

// ---- migration-strategy torture ---------------------------------------------

// EP isolated on its own worker pair, mirroring torture_config's M isolation.
// The pre-copy torture migrates an EP slice because EP state (pending merges
// and the completed set) mutates on every publication, so dirty-delta rounds
// ship real bytes under live load; M's matcher state is static once the
// storage phase ends and would drain the pre-copy loop after one round.
TestbedConfig ep_torture_config() {
  auto config = chaos_config();
  config.worker_hosts = 4;
  config.iaas.max_hosts = 7;
  config.placement = [](const std::vector<HostId>& workers) {
    pubsub::HostAssignment assignment;
    assignment["AP"] = {workers[0], workers[1]};
    assignment["M"] = {workers[0], workers[1]};
    assignment["EP"] = {workers[2], workers[3]};
    return assignment;
  };
  return config;
}

// Crash torture, stop-and-restart: at every coordinator step of the
// redirect-park protocol, kill the source's host or the destination's host
// via the network, so detection, conviction and recovery all run the
// production path. The move must finish (abort or roll forward), the
// cluster must heal, and delivery must stay exactly-once.
TEST(MigrationStrategyTortureTest, StopRestartCrashAtEveryStepHealsExactlyOnce) {
  struct Case {
    std::string_view step;
    bool kill_src;
  };
  const Case cases[] = {
      {"create-replica", true}, {"create-replica", false},
      {"park", true},           {"park", false},
      {"transfer", true},       {"transfer", false},
      {"directory-update", true}, {"directory-update", false},
      {"teardown", true},       {"teardown", false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string{"step="} + std::string{c.step} +
                 (c.kill_src ? " victim=src" : " victim=dst"));
    Testbed bed{torture_config()};
    bed.manager()->set_enforcement(false);
    bed.delays().enable_audit();
    bed.store_subscriptions(1000);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(6)));

    const SliceId slice = bed.engine().slice_id("M", 0);
    const HostId src = bed.engine().slice_host(slice);
    const HostId dst = other_m_worker(bed, slice);
    bool crashed = false;
    std::optional<engine::MigrationReport> report;
    bed.engine().on_migration_step(
        [&](const engine::MigrationReport&, std::string_view step) {
          if (crashed || step != c.step) return;
          crashed = true;
          bed.network().set_host_down(c.kill_src ? src : dst, true);
        });
    bed.simulator().schedule(seconds(2), [&] {
      bed.engine().migrate(
          slice, dst, engine::MigrationStrategyKind::kStopAndRestart,
          [&](const engine::MigrationReport& r) { report = r; });
    });

    bed.run_for(seconds(6) + millis(10));
    driver->stop();
    EXPECT_TRUE(crashed);
    await_heal(bed, *bed.manager(), 1);
    ASSERT_TRUE(bed.run_until([&] { return report.has_value(); }, seconds(60)));
    EXPECT_EQ(report->strategy, "stop-and-restart");
    if (c.kill_src) {
      EXPECT_TRUE(report->outcome == engine::MigrationOutcome::kCompleted ||
                  report->outcome ==
                      engine::MigrationOutcome::kAbortedSrcFailed);
    } else {
      EXPECT_TRUE(report->outcome == engine::MigrationOutcome::kCompleted ||
                  report->outcome ==
                      engine::MigrationOutcome::kAbortedDstFailed);
    }
    await_drain(bed);
    bed.run_for(seconds(2));

    EXPECT_EQ(bed.engine().pending_migrations(), 0u);
    const auto audit = verify_exactly_once(bed);
    EXPECT_TRUE(audit.exactly_once())
        << "published=" << audit.published << " missing=" << audit.missing
        << " duplicated=" << audit.duplicated
        << " mismatched=" << audit.mismatched;
  }
}

// Crash torture, incremental-precopy: same drill at every step of the
// dirty-delta protocol — including a crash in the SECOND pre-copy round,
// which only exists because live publications keep dirtying the EP state
// between rounds.
TEST(MigrationStrategyTortureTest, PrecopyCrashAtEveryStepHealsExactlyOnce) {
  struct Case {
    std::string_view step;
    int nth;  // crash at the nth entry of `step` (pre-copy fires per round)
    bool kill_src;
  };
  const Case cases[] = {
      {"create-replica", 1, true}, {"create-replica", 1, false},
      {"duplication", 1, true},    {"duplication", 1, false},
      {"precopy", 1, true},        {"precopy", 1, false},
      {"precopy", 2, true},        {"precopy", 2, false},
      {"transfer", 1, true},       {"transfer", 1, false},
      {"directory-update", 1, true}, {"directory-update", 1, false},
      {"teardown", 1, true},       {"teardown", 1, false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string{"step="} + std::string{c.step} + "#" +
                 std::to_string(c.nth) +
                 (c.kill_src ? " victim=src" : " victim=dst"));
    Testbed bed{ep_torture_config()};
    bed.manager()->set_enforcement(false);
    bed.delays().enable_audit();
    bed.store_subscriptions(1000);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(6)));

    const SliceId slice = bed.engine().slice_id("EP", 0);
    const HostId src = bed.engine().slice_host(slice);
    const HostId dst = other_m_worker(bed, slice);
    bool crashed = false;
    int seen = 0;
    std::optional<engine::MigrationReport> report;
    bed.engine().on_migration_step(
        [&](const engine::MigrationReport&, std::string_view step) {
          if (crashed || step != c.step) return;
          if (++seen < c.nth) return;
          crashed = true;
          bed.network().set_host_down(c.kill_src ? src : dst, true);
        });
    bed.simulator().schedule(seconds(2), [&] {
      bed.engine().migrate(
          slice, dst, engine::MigrationStrategyKind::kIncrementalPrecopy,
          [&](const engine::MigrationReport& r) { report = r; });
    });

    bed.run_for(seconds(6) + millis(10));
    driver->stop();
    EXPECT_TRUE(crashed);
    await_heal(bed, *bed.manager(), 1);
    ASSERT_TRUE(bed.run_until([&] { return report.has_value(); }, seconds(60)));
    EXPECT_EQ(report->strategy, "incremental-precopy");
    if (c.kill_src) {
      EXPECT_TRUE(report->outcome == engine::MigrationOutcome::kCompleted ||
                  report->outcome ==
                      engine::MigrationOutcome::kAbortedSrcFailed);
    } else {
      EXPECT_TRUE(report->outcome == engine::MigrationOutcome::kCompleted ||
                  report->outcome ==
                      engine::MigrationOutcome::kAbortedDstFailed);
    }
    await_drain(bed);
    bed.run_for(seconds(2));

    EXPECT_EQ(bed.engine().pending_migrations(), 0u);
    const auto audit = verify_exactly_once(bed);
    EXPECT_TRUE(audit.exactly_once())
        << "published=" << audit.published << " missing=" << audit.missing
        << " duplicated=" << audit.duplicated
        << " mismatched=" << audit.mismatched;
  }
}

// Manager torture: the migration coordinator lives on the manager host, so
// cutting that host off mid-protocol severs every in-flight control RPC.
// With reliable control channels the protocol must ride out a partition
// shorter than the retry budget at ANY step of either new strategy: no
// abort, no wedge — the move completes once the partition heals. Data-plane
// injection and worker-to-worker event flow do not touch the manager host,
// so delivery must stay exactly-once throughout.
TEST(MigrationStrategyTortureTest, ManagerPartitionAtEveryStepStillCompletes) {
  struct Case {
    engine::MigrationStrategyKind kind;
    std::string_view step;
  };
  using Kind = engine::MigrationStrategyKind;
  const Case cases[] = {
      {Kind::kStopAndRestart, "create-replica"},
      {Kind::kStopAndRestart, "park"},
      {Kind::kStopAndRestart, "transfer"},
      {Kind::kStopAndRestart, "directory-update"},
      {Kind::kStopAndRestart, "teardown"},
      {Kind::kIncrementalPrecopy, "create-replica"},
      {Kind::kIncrementalPrecopy, "duplication"},
      {Kind::kIncrementalPrecopy, "precopy"},
      {Kind::kIncrementalPrecopy, "transfer"},
      {Kind::kIncrementalPrecopy, "directory-update"},
      {Kind::kIncrementalPrecopy, "teardown"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string{engine::to_string(c.kind)} + " step=" +
                 std::string{c.step});
    auto config = torture_config();
    config.engine.reliable_control = true;
    config.engine.reliable.initial_rto = millis(50);
    // No host dies in this drill; nothing should need (or run) recovery.
    config.manager.recovery.enabled = false;
    Testbed bed{config};
    bed.manager()->set_enforcement(false);
    bed.delays().enable_audit();
    bed.store_subscriptions(1000);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(150.0, seconds(5)));

    const SliceId slice = bed.engine().slice_id("M", 0);
    const HostId dst = other_m_worker(bed, slice);
    std::vector<HostId> others = bed.worker_hosts();
    others.insert(others.end(), bed.io_hosts().begin(), bed.io_hosts().end());
    bool cut = false;
    std::optional<engine::MigrationReport> report;
    bed.engine().on_migration_step(
        [&](const engine::MigrationReport&, std::string_view step) {
          if (cut || step != c.step) return;
          cut = true;
          bed.network().partition("mgr-cut", {bed.manager_host()}, others);
          bed.simulator().schedule(millis(700), [&] {
            bed.network().heal("mgr-cut");
          });
        });
    bed.simulator().schedule(millis(1500), [&] {
      bed.engine().migrate(slice, dst, c.kind,
                           [&](const engine::MigrationReport& r) {
                             report = r;
                           });
    });

    bed.run_for(seconds(5) + millis(10));
    driver->stop();
    EXPECT_TRUE(cut);
    ASSERT_TRUE(bed.run_until([&] { return report.has_value(); }, seconds(60)));
    EXPECT_EQ(report->outcome, engine::MigrationOutcome::kCompleted);
    EXPECT_EQ(report->strategy, engine::to_string(c.kind));
    EXPECT_EQ(bed.engine().slice_host(slice), dst);
    await_drain(bed);
    bed.run_for(seconds(1));

    EXPECT_EQ(bed.engine().pending_migrations(), 0u);
    EXPECT_TRUE(bed.manager()->recoveries().empty());
    // The partition really severed control traffic, and the reliable
    // channel really carried the protocol across it.
    EXPECT_GT(bed.network().stats().messages_partitioned, 0u);
    EXPECT_GT(bed.engine().reliable_stats().retransmits, 0u);
    const auto audit = verify_exactly_once(bed);
    EXPECT_TRUE(audit.exactly_once())
        << "published=" << audit.published << " missing=" << audit.missing
        << " duplicated=" << audit.duplicated
        << " mismatched=" << audit.mismatched;
  }
}

// The enforcer's key-level rules end to end: a hot M slice (split_share
// tuned below the live load) triggers an automatic hotspot split through
// the manager, and once the load stops, the cold-merge rule folds the pair
// back — no manual split/merge calls anywhere.
TEST(SplitMergeTortureTest, EnforcerHotspotSplitsAndColdMergesAutomatically) {
  auto config = chaos_config();
  config.manager.policy.enable_splits = true;
  config.manager.policy.split_share = 0.002;
  config.manager.policy.merge_share = 0.5;
  // Isolate the key-level rules: park every placement rule out of reach.
  config.manager.policy.global_high = 10.0;
  config.manager.policy.global_low = 0.0;
  config.manager.policy.local_high = 10.0;
  config.manager.policy.local_low = 0.0;
  config.manager.policy.grace = seconds(3);
  config.manager.policy.scale_out_grace = seconds(60);  // one split, not many
  Testbed bed{config};
  bed.delays().enable_audit();
  bed.store_subscriptions(1000);

  auto driver =
      bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(6)));
  ASSERT_TRUE(bed.run_until(
      [&] { return bed.engine().splits_completed() >= 1; }, seconds(6)))
      << "no automatic split; hottest slice never crossed split_share";
  bed.run_for(seconds(6));
  driver->stop();

  ASSERT_TRUE(bed.run_until(
      [&] { return bed.engine().merges_completed() >= 1; }, seconds(60)))
      << "cold-merge rule never folded the split pair back";
  await_drain(bed);
  bed.run_for(seconds(1));

  const auto& transitions = bed.manager()->transitions();
  ASSERT_GE(transitions.size(), 2u);
  EXPECT_EQ(transitions.front().kind, engine::TransitionKind::kSplit);
  EXPECT_TRUE(transitions.front().completed);
  bool merged = false;
  for (const auto& t : transitions) {
    if (t.kind == engine::TransitionKind::kMerge && t.completed) merged = true;
  }
  EXPECT_TRUE(merged);

  const auto audit = verify_exactly_once(bed);
  EXPECT_TRUE(audit.exactly_once())
      << "published=" << audit.published << " missing=" << audit.missing
      << " duplicated=" << audit.duplicated
      << " mismatched=" << audit.mismatched;
}

}  // namespace
}  // namespace esh::harness
