// Differential tests of the filtering schemes: every matcher -- scalar and
// batched, plain and encrypted -- must notify exactly the subscribers a
// direct evaluation of the live subscription set predicts, through churn
// (including freed-slot reuse), serialize/restore round-trips onto
// clone_empty() replicas, and batching. Plus golden ASPE match vectors
// (fixed key) and the batching-invariance of simulated work accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "filter/aspe.hpp"
#include "filter/attribute.hpp"
#include "filter/interval_index.hpp"
#include "filter/matcher.hpp"
#include "matcher_harness.hpp"

namespace esh::filter {
namespace {

using harness::DifferentialHarness;
using harness::sorted_ids;

// ---- differential harness ----------------------------------------------------

// The headline run: six schemes against one seeded op stream. The scalar
// brute force is the reference implementation; the oracle inside the
// harness is independent of all six, so a shared kernel bug still shows.
TEST(MatcherDiff, AllSchemesAgreeOnSeededChurn) {
  DifferentialHarness::Params params;
  params.dimensions = 4;
  params.seed = 20240807;
  params.initial_subscriptions = 64;
  params.operations = 1100;
  params.publish_batch = 6;
  DifferentialHarness h{params};
  h.add_scheme("brute/scalar", std::make_unique<BruteForceMatcher>(),
               /*encrypted=*/false, /*batched=*/false);
  h.add_scheme("brute/batched", std::make_unique<BruteForceMatcher>(),
               /*encrypted=*/false, /*batched=*/true);
  h.add_scheme("counting/batched", std::make_unique<CountingIndexMatcher>(),
               /*encrypted=*/false, /*batched=*/true);
  h.add_scheme("interval/scalar", std::make_unique<IntervalIndexMatcher>(),
               /*encrypted=*/false, /*batched=*/false);
  h.add_scheme("interval/batched", std::make_unique<IntervalIndexMatcher>(),
               /*encrypted=*/false, /*batched=*/true);
  h.add_scheme("aspe/scalar", std::make_unique<AspeMatcher>(),
               /*encrypted=*/true, /*batched=*/false);
  h.add_scheme("aspe/batched", std::make_unique<AspeMatcher>(),
               /*encrypted=*/true, /*batched=*/true);
  h.run();
  EXPECT_GE(h.operations_run(), 1000u);
  EXPECT_GT(h.publications_checked(), 2000u);
  EXPECT_GE(h.restores_run(), 10u);  // replicas really entered the stream
}

// Seed diversity: shorter runs under several seeds and dimension counts
// (plain schemes only; these are cheap enough to sweep).
TEST(MatcherDiff, PlainSchemesSeedSweep) {
  for (const std::uint64_t seed : {7ULL, 99ULL, 123456ULL}) {
    for (const std::size_t dims : {1, 3}) {
      DifferentialHarness::Params params;
      params.dimensions = dims;
      params.seed = seed;
      params.initial_subscriptions = 32;
      params.operations = 350;
      params.publish_batch = 4;
      params.roundtrip_every = 53;
      DifferentialHarness h{params};
      h.add_scheme("brute/scalar", std::make_unique<BruteForceMatcher>(),
                   false, false);
      h.add_scheme("brute/batched", std::make_unique<BruteForceMatcher>(),
                   false, true);
      h.add_scheme("counting/scalar", std::make_unique<CountingIndexMatcher>(),
                   false, false);
      h.add_scheme("counting/batched",
                   std::make_unique<CountingIndexMatcher>(), false, true);
      h.add_scheme("interval/scalar",
                   std::make_unique<IntervalIndexMatcher>(), false, false);
      h.add_scheme("interval/batched",
                   std::make_unique<IntervalIndexMatcher>(), false, true);
      h.run();
      ASSERT_FALSE(::testing::Test::HasFailure())
          << "diverged at seed " << seed << " dims " << dims;
    }
  }
}

// Encrypted sweep at a second seed (one run; ASPE is the expensive scheme).
TEST(MatcherDiff, EncryptedSchemesSecondSeed) {
  DifferentialHarness::Params params;
  params.dimensions = 2;
  params.seed = 4242;
  params.initial_subscriptions = 40;
  params.operations = 400;
  params.publish_batch = 4;
  params.roundtrip_every = 61;
  DifferentialHarness h{params};
  h.add_scheme("brute/scalar", std::make_unique<BruteForceMatcher>(), false,
               false);
  h.add_scheme("aspe/scalar", std::make_unique<AspeMatcher>(), true, false);
  h.add_scheme("aspe/batched", std::make_unique<AspeMatcher>(), true, true);
  h.run();
  EXPECT_GE(h.operations_run(), 400u);
}

// ---- split/merge round trips -------------------------------------------------

// Key-coverage algebra: refinement is a prefix-free binary trie over the
// mixed key hash, so split halves partition the parent and sibling merges
// reunite it.
TEST(KeyCoverage, SplitHalvesPartitionAndMergeReunites) {
  const KeyCoverage whole{4, 1, 0, 0};
  const KeyCoverage parent = whole.split_parent();
  const KeyCoverage child = whole.split_child();
  EXPECT_TRUE(parent.sibling_of(child));
  EXPECT_TRUE(child.sibling_of(parent));
  EXPECT_EQ(parent.merged(), whole);
  EXPECT_EQ(child.merged(), whole);
  EXPECT_FALSE(parent.sibling_of(parent));
  EXPECT_FALSE(whole.sibling_of(child));
  std::size_t covered = 0;
  for (std::uint64_t key = 0; key < 4000; ++key) {
    const bool in_whole = whole.covers(key);
    EXPECT_EQ(in_whole, parent.covers(key) || child.covers(key)) << key;
    EXPECT_FALSE(parent.covers(key) && child.covers(key)) << key;
    if (in_whole) ++covered;
  }
  EXPECT_GT(covered, 0u);
  // Depth-0 coverage is plain modulo routing.
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(whole.covers(key), key % 4 == 1);
  }
  EXPECT_TRUE(coverage_complete({{2, 0, 0, 0}, {2, 1, 0, 0}}, 2));
  EXPECT_TRUE(coverage_complete(
      {{2, 0, 1, 0}, {2, 0, 1, 1}, {2, 1, 0, 0}}, 2));
  // Gap: bucket 1 missing half its keys.
  EXPECT_FALSE(coverage_complete({{2, 0, 0, 0}, {2, 1, 1, 0}}, 2));
  // Overlap summing to full weight is still rejected.
  EXPECT_FALSE(coverage_complete(
      {{2, 0, 0, 0}, {2, 1, 1, 0}, {2, 1, 1, 0}}, 2));
  EXPECT_FALSE(coverage_complete({{2, 0, 0, 0}}, 2));
}

// The headline split/merge property run: all six schemes take seeded
// random split points (random depth + tag), each half is validated
// byte-for-byte against a clone_empty + reinsert reference, the merge must
// reunite byte-identically to a never-split twin, and every later
// publication must produce the twin's exact subscriber order and
// work_units -- through churn and serialize/restore swaps.
TEST(MatcherSplitMerge, AllSchemesSurviveSeededSplitMergeRoundTrips) {
  DifferentialHarness::Params params;
  params.dimensions = 3;
  params.seed = 777001;
  params.initial_subscriptions = 48;
  params.operations = 600;
  params.publish_batch = 5;
  params.roundtrip_every = 89;
  params.split_merge_every = 71;
  DifferentialHarness h{params};
  h.add_scheme("brute/scalar", std::make_unique<BruteForceMatcher>(), false,
               false);
  h.add_scheme("brute/batched", std::make_unique<BruteForceMatcher>(), false,
               true);
  h.add_scheme("counting/batched", std::make_unique<CountingIndexMatcher>(),
               false, true);
  h.add_scheme("interval/batched", std::make_unique<IntervalIndexMatcher>(),
               false, true);
  h.add_scheme("aspe/scalar", std::make_unique<AspeMatcher>(), true, false);
  h.add_scheme("aspe/batched", std::make_unique<AspeMatcher>(), true, true);
  h.run();
  EXPECT_GE(h.splits_run(), 8u);
  EXPECT_GT(h.publications_checked(), 1000u);
}

// Seed sweep of the same property at other dimensions/seeds (plain
// schemes; counting and interval exercise split across freed-slot reuse).
TEST(MatcherSplitMerge, PlainSchemesSplitMergeSeedSweep) {
  for (const std::uint64_t seed : {11ULL, 5309ULL}) {
    DifferentialHarness::Params params;
    params.dimensions = 2;
    params.seed = seed;
    params.initial_subscriptions = 32;
    params.operations = 300;
    params.publish_batch = 4;
    params.roundtrip_every = 67;
    params.split_merge_every = 43;
    DifferentialHarness h{params};
    h.add_scheme("brute/scalar", std::make_unique<BruteForceMatcher>(), false,
                 false);
    h.add_scheme("counting/scalar", std::make_unique<CountingIndexMatcher>(),
                 false, false);
    h.add_scheme("counting/batched", std::make_unique<CountingIndexMatcher>(),
                 false, true);
    h.add_scheme("interval/scalar", std::make_unique<IntervalIndexMatcher>(),
                 false, false);
    h.add_scheme("interval/batched", std::make_unique<IntervalIndexMatcher>(),
                 false, true);
    h.run();
    ASSERT_FALSE(::testing::Test::HasFailure()) << "diverged at seed " << seed;
    EXPECT_GE(h.splits_run(), 5u);
  }
}

// A second-level split (splitting an already-split half) still partitions:
// split off a child, split the child again, and the three-way merge in any
// order restores the original bytes.
void run_nested_split_merge(std::unique_ptr<Matcher> original) {
  Rng rng{424242};
  for (std::uint64_t id = 1; id <= 200; ++id) {
    std::vector<Range> preds;
    for (int a = 0; a < 2; ++a) {
      const double low = rng.uniform(0.0, 0.7);
      preds.push_back(Range{low, low + 0.2});
    }
    Subscription s;
    s.id = SubscriptionId{id};
    s.subscriber = SubscriberId{1 + id % 13};
    s.predicates = std::move(preds);
    original->add(AnySubscription{s});
  }
  BinaryWriter before;
  original->serialize_state(before);

  const KeyCoverage whole{1, 0, 0, 0};
  const KeyCoverage c1 = whole.split_child();      // depth 1, tag 1
  const KeyCoverage c2 = c1.split_child();         // depth 2, tag 11
  BinaryWriter w1;
  const std::size_t moved1 = original->split_state(c1, w1);
  auto child1 = original->clone_empty();
  BinaryReader r1{w1.buffer()};
  child1->restore_state(r1);
  EXPECT_EQ(child1->subscription_count(), moved1);
  BinaryWriter w2;
  const std::size_t moved2 = child1->split_state(c2, w2);
  auto child2 = child1->clone_empty();
  BinaryReader r2{w2.buffer()};
  child2->restore_state(r2);
  EXPECT_EQ(child2->subscription_count(), moved2);
  EXPECT_EQ(original->subscription_count() + moved1, 200u);
  EXPECT_GT(moved1, 0u);
  EXPECT_GT(moved2, 0u);

  // Merge back in a different order than the splits happened.
  original->merge_state(*child2);
  original->merge_state(*child1);
  EXPECT_EQ(original->subscription_count(), 200u);
  BinaryWriter after;
  original->serialize_state(after);
  EXPECT_EQ(after.buffer(), before.buffer()) << original->scheme_name();
}

TEST(MatcherSplitMerge, NestedSplitThenMergeRestoresOriginal) {
  run_nested_split_merge(std::make_unique<BruteForceMatcher>());
  run_nested_split_merge(std::make_unique<IntervalIndexMatcher>());
}

// ---- churn properties --------------------------------------------------------

Subscription make_sub(std::uint64_t id, std::uint64_t subscriber,
                      std::vector<Range> preds) {
  Subscription s;
  s.id = SubscriptionId{id};
  s.subscriber = SubscriberId{subscriber};
  s.predicates = std::move(preds);
  return s;
}

std::size_t plain_bytes(const std::vector<Subscription>& live) {
  std::size_t total = 0;
  for (const Subscription& s : live) {
    total += 24 + s.predicates.size() * 2 * sizeof(double);
  }
  return total;
}

// Adds, removals (forcing freed-slot reuse in the counting index), and
// mixed-dimension subscriptions keep subscription_count(), state_bytes()
// and the match results of every plain matcher in lockstep with a direct
// oracle evaluation.
TEST(MatcherChurn, RemovalsSlotReuseAndStateAccounting) {
  Rng rng{31337};
  std::vector<std::unique_ptr<Matcher>> matchers;
  matchers.push_back(std::make_unique<BruteForceMatcher>());
  matchers.push_back(std::make_unique<CountingIndexMatcher>());
  matchers.push_back(std::make_unique<IntervalIndexMatcher>());

  std::map<std::uint64_t, Subscription> live;
  std::uint64_t next_id = 1;
  auto add_random = [&](std::size_t dims) {
    std::vector<Range> preds;
    for (std::size_t a = 0; a < dims; ++a) {
      const double low = rng.uniform(0.0, 0.7);
      preds.push_back(Range{low, low + rng.uniform(0.05, 0.3)});
    }
    const Subscription s = make_sub(next_id, 100 + next_id % 7,
                                    std::move(preds));
    ++next_id;
    live.emplace(s.id.value(), s);
    for (auto& m : matchers) m->add(AnySubscription{s});
  };
  auto check_state = [&] {
    std::vector<Subscription> subs;
    for (const auto& [id, s] : live) subs.push_back(s);
    for (auto& m : matchers) {
      EXPECT_EQ(m->subscription_count(), live.size()) << m->scheme_name();
      EXPECT_EQ(m->state_bytes(), plain_bytes(subs)) << m->scheme_name();
    }
  };
  auto check_match = [&](const Publication& pub) {
    std::vector<SubscriberId> expected;
    for (const auto& [id, s] : live) {
      if (s.matches(pub)) expected.push_back(s.subscriber);
    }
    expected = sorted_ids(std::move(expected));
    for (auto& m : matchers) {
      EXPECT_EQ(sorted_ids(m->match(AnyPublication{pub}).subscribers),
                expected)
          << m->scheme_name() << " on publication " << pub.id.value();
    }
  };

  for (int i = 0; i < 30; ++i) add_random(3);
  add_random(2);  // mixed dimensionality: only 2-attribute pubs can match it
  check_state();

  Publication probe;
  probe.id = PublicationId{900};
  probe.attributes = {0.5, 0.5, 0.5};
  check_match(probe);
  Publication probe2d;
  probe2d.id = PublicationId{901};
  probe2d.attributes = {0.5, 0.5};
  check_match(probe2d);

  // Remove a third of the store (freeing index slots), then add the same
  // number back: the counting index reuses the freed slots.
  std::vector<std::uint64_t> victims;
  for (const auto& [id, s] : live) {
    if (id % 3 == 0) victims.push_back(id);
  }
  for (const std::uint64_t id : victims) {
    live.erase(id);
    for (auto& m : matchers) {
      EXPECT_TRUE(m->remove(SubscriptionId{id})) << m->scheme_name();
      EXPECT_FALSE(m->remove(SubscriptionId{id}))
          << m->scheme_name() << ": double remove must report unknown";
    }
  }
  check_state();
  for (std::size_t i = 0; i < victims.size(); ++i) add_random(3);
  check_state();
  for (int p = 0; p < 20; ++p) {
    Publication pub;
    pub.id = PublicationId{1000 + static_cast<std::uint64_t>(p)};
    pub.attributes = {rng.next_double(), rng.next_double(),
                      rng.next_double()};
    check_match(pub);
  }

  // Drain to empty: counts and footprint go to zero and matches are empty.
  while (!live.empty()) {
    const std::uint64_t id = live.begin()->first;
    live.erase(live.begin());
    for (auto& m : matchers) {
      EXPECT_TRUE(m->remove(SubscriptionId{id}));
    }
  }
  check_state();
  for (auto& m : matchers) {
    EXPECT_EQ(m->state_bytes(), 0u) << m->scheme_name();
    EXPECT_TRUE(m->match(AnyPublication{probe}).subscribers.empty());
  }
}

// Same churn properties for the encrypted store: state_bytes() must equal
// the sum of the live ciphertext sizes across adds, removes and restores.
TEST(MatcherChurn, AspeStateAccounting) {
  Rng key_rng{5150};
  const AspeKey key = AspeKey::generate(3, key_rng);
  AspeEncryptor enc{key, Rng{5151}};
  AspeMatcher matcher;

  std::map<std::uint64_t, EncryptedSubscription> live;
  Rng rng{5152};
  for (std::uint64_t id = 1; id <= 12; ++id) {
    std::vector<Range> preds;
    for (int a = 0; a < 3; ++a) {
      const double low = rng.uniform(0.0, 0.6);
      preds.push_back(Range{low, low + 0.3});
    }
    const EncryptedSubscription e =
        enc.encrypt(make_sub(id, 200 + id, std::move(preds)));
    live.emplace(id, e);
    matcher.add(AnySubscription{e});
  }
  auto expected_bytes = [&] {
    std::size_t total = 0;
    for (const auto& [id, e] : live) total += e.bytes();
    return total;
  };
  EXPECT_EQ(matcher.state_bytes(), expected_bytes());
  EXPECT_EQ(matcher.subscription_count(), live.size());

  for (const std::uint64_t id : {3ULL, 7ULL, 11ULL}) {
    EXPECT_TRUE(matcher.remove(SubscriptionId{id}));
    live.erase(id);
    EXPECT_EQ(matcher.state_bytes(), expected_bytes());
  }
  EXPECT_FALSE(matcher.remove(SubscriptionId{999}));

  BinaryWriter w;
  matcher.serialize_state(w);
  auto replica = matcher.clone_empty();
  BinaryReader r{w.buffer()};
  replica->restore_state(r);
  EXPECT_EQ(replica->subscription_count(), live.size());
  EXPECT_EQ(replica->state_bytes(), expected_bytes());
}

// ---- golden ASPE vectors -----------------------------------------------------

// Fixed key (seed 2024) and encryption randomness (seed 2025), fixed
// subscriptions and publications chosen so every attribute is >= 0.01 away
// from every bound: the encrypted comparison margins dwarf floating-point
// noise, so this matrix is stable across kernel rewrites. Any change to
// the ASPE pipeline or the batched row kernel that alters a single
// match/no-match decision trips it.
TEST(AspeGolden, MatchMatrixIsStable) {
  const std::vector<Subscription> subs = {
      make_sub(1, 100, {{0.0, 0.5}, {0.0, 0.5}}),
      make_sub(2, 101, {{0.25, 0.75}, {0.25, 0.75}}),
      make_sub(3, 102, {{0.5, 1.0}, {0.5, 1.0}}),
      make_sub(4, 103, {{0.0, 1.0}, {0.0, 0.25}}),
      make_sub(5, 104, {{0.4, 0.6}, {0.0, 1.0}}),
      make_sub(6, 105, {{0.9, 1.0}, {0.9, 1.0}}),
  };
  const std::vector<std::vector<double>> pub_values = {
      {0.10, 0.10}, {0.30, 0.30}, {0.49, 0.51}, {0.55, 0.45}, {0.95, 0.95},
      {0.45, 0.20}, {0.05, 0.99}, {0.99, 0.05}, {0.26, 0.24}, {0.55, 0.70},
  };
  // golden[p][s] == '1' iff publication p matches subscription s.
  const std::vector<std::string> golden = {
      "100100", "110000", "010010", "010010", "001001",
      "100110", "000000", "000100", "100100", "011010",
  };

  std::vector<Publication> pubs;
  for (std::size_t p = 0; p < pub_values.size(); ++p) {
    Publication pub;
    pub.id = PublicationId{500 + p};
    pub.attributes = pub_values[p];
    pubs.push_back(std::move(pub));
  }

  // The golden matrix is first of all the plain-containment truth.
  for (std::size_t p = 0; p < pubs.size(); ++p) {
    std::string row;
    for (const Subscription& s : subs) {
      row += s.matches(pubs[p]) ? '1' : '0';
    }
    EXPECT_EQ(row, golden[p]) << "plain containment, publication " << p;
  }

  Rng key_rng{2024};
  const AspeKey key = AspeKey::generate(2, key_rng);
  AspeEncryptor enc{key, Rng{2025}};
  AspeMatcher matcher;
  for (const Subscription& s : subs) {
    matcher.add(AnySubscription{enc.encrypt(s)});
  }
  std::vector<AnyPublication> enc_pubs;
  for (const Publication& pub : pubs) {
    enc_pubs.emplace_back(enc.encrypt(pub));
  }

  auto row_of = [&](const MatchOutcome& outcome) {
    std::string row(subs.size(), '0');
    for (const SubscriberId sub : outcome.subscribers) {
      row[sub.value() - 100] = '1';
    }
    return row;
  };
  const std::vector<MatchOutcome> batched = matcher.match_batch(enc_pubs);
  ASSERT_EQ(batched.size(), pubs.size());
  for (std::size_t p = 0; p < enc_pubs.size(); ++p) {
    EXPECT_EQ(row_of(matcher.match(enc_pubs[p])), golden[p])
        << "aspe scalar, publication " << p;
    EXPECT_EQ(row_of(batched[p]), golden[p]) << "aspe batched, publication "
                                             << p;
  }
}

// ---- batching invariance of simulated work -----------------------------------

// match_batch is a wall-clock optimization only: outcome i must carry
// exactly the subscribers AND the work_units of a scalar match(pubs[i]),
// so the cluster emulation charges identical simulated CPU regardless of
// how the M operator groups its input. Store sizes cross the kernels'
// internal tile/block boundaries (1024 brute slots, 64 ASPE pubs).
TEST(MatcherBatch, WorkUnitsAreBatchingInvariant) {
  Rng rng{777};
  auto random_sub = [&](std::uint64_t id, std::size_t dims) {
    std::vector<Range> preds;
    for (std::size_t a = 0; a < dims; ++a) {
      const double low = rng.uniform(0.0, 0.8);
      preds.push_back(Range{low, low + 0.2});
    }
    return make_sub(id, 1 + id % 97, std::move(preds));
  };
  auto random_pub = [&](std::uint64_t id, std::size_t dims) {
    Publication pub;
    pub.id = PublicationId{id};
    for (std::size_t a = 0; a < dims; ++a) {
      pub.attributes.push_back(rng.next_double());
    }
    return pub;
  };
  auto check = [](Matcher& m, const std::vector<AnyPublication>& pubs) {
    std::vector<MatchOutcome> scalar;
    scalar.reserve(pubs.size());
    for (const AnyPublication& pub : pubs) scalar.push_back(m.match(pub));
    const std::vector<MatchOutcome> batched = m.match_batch(pubs);
    ASSERT_EQ(batched.size(), scalar.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(batched[i].subscribers, scalar[i].subscribers)
          << m.scheme_name() << " publication " << i;
      EXPECT_DOUBLE_EQ(batched[i].work_units, scalar[i].work_units)
          << m.scheme_name() << " publication " << i;
    }
    // The up-front estimate the scheduler charges is linear in the batch.
    EXPECT_DOUBLE_EQ(m.estimate_match_units(17),
                     17.0 * m.estimate_match_units());
    EXPECT_DOUBLE_EQ(m.estimate_match_units(1), m.estimate_match_units());
  };

  // Plain schemes: 1500 subscriptions cross the 1024-slot brute tile.
  {
    BruteForceMatcher brute;
    CountingIndexMatcher counting;
    IntervalIndexMatcher interval;
    for (std::uint64_t id = 1; id <= 1500; ++id) {
      const Subscription s = random_sub(id, 3);
      brute.add(AnySubscription{s});
      counting.add(AnySubscription{s});
      interval.add(AnySubscription{s});
    }
    std::vector<AnyPublication> pubs;
    for (std::uint64_t id = 1; id <= 40; ++id) {
      pubs.emplace_back(random_pub(id, 3));
    }
    check(brute, pubs);
    check(counting, pubs);
    check(interval, pubs);
    // Churn between batches: the index schemes must rebuild once per
    // batch and still agree with their own scalar paths.
    EXPECT_TRUE(counting.remove(SubscriptionId{10}));
    EXPECT_TRUE(brute.remove(SubscriptionId{10}));
    EXPECT_TRUE(interval.remove(SubscriptionId{10}));
    counting.add(AnySubscription{random_sub(2000, 3)});
    brute.add(AnySubscription{random_sub(2000, 3)});
    interval.add(AnySubscription{random_sub(2000, 3)});
    check(brute, pubs);
    check(counting, pubs);
    check(interval, pubs);
  }

  // Encrypted scheme: 70 publications cross the 64-publication block.
  {
    Rng key_rng{778};
    const AspeKey key = AspeKey::generate(3, key_rng);
    AspeEncryptor enc{key, Rng{779}};
    AspeMatcher aspe;
    for (std::uint64_t id = 1; id <= 25; ++id) {
      aspe.add(AnySubscription{enc.encrypt(random_sub(id, 3))});
    }
    std::vector<AnyPublication> pubs;
    for (std::uint64_t id = 1; id <= 70; ++id) {
      pubs.emplace_back(enc.encrypt(random_pub(id, 3)));
    }
    check(aspe, pubs);
  }

  // Empty batches are legal and empty.
  BruteForceMatcher empty;
  EXPECT_TRUE(empty.match_batch({}).empty());
}

}  // namespace
}  // namespace esh::filter
