// Fault-tolerant migrations: a source or destination crash at any protocol
// step must abort the move cleanly (reported through the callback outcome),
// leave the engine able to process and migrate other slices, and end with
// the slice running exactly once somewhere.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/host.hpp"
#include "engine/engine.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace esh::engine {
namespace {

struct NumPayload final : Payload {
  explicit NumPayload(std::uint64_t v) : value(v) {}
  std::uint64_t value;
  [[nodiscard]] std::size_t bytes() const override { return 64; }
};

struct Record {
  std::size_t slice_index;
  std::uint64_t value;
};

class CollectHandler final : public Handler {
 public:
  CollectHandler(std::shared_ptr<std::vector<Record>> out, std::size_t index)
      : out_(std::move(out)), index_(index) {}
  void on_event(Context&, const PayloadPtr& p) override {
    out_->push_back(Record{index_, dynamic_cast<const NumPayload&>(*p).value});
  }
  double cost_units(const PayloadPtr&) const override { return 5.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::shared_ptr<std::vector<Record>> out_;
  std::size_t index_;
};

class SumForwardHandler final : public Handler {
 public:
  explicit SumForwardHandler(std::string next) : next_(std::move(next)) {}
  void on_event(Context& ctx, const PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    sum_ += num.value;
    if (!next_.empty()) ctx.emit(next_, Routing::hash(num.value), p);
  }
  double cost_units(const PayloadPtr&) const override { return 20.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kWrite;
  }
  void serialize_state(BinaryWriter& w) const override { w.write_u64(sum_); }
  void restore_state(BinaryReader& r) override { sum_ = r.read_u64(); }
  std::size_t state_bytes() const override { return 8; }
  double replica_init_units() const override { return 1000.0; }

  std::uint64_t sum_ = 0;

 private:
  std::string next_;
};

class GenHandler final : public Handler {
 public:
  explicit GenHandler(std::string next) : next_(std::move(next)) {}
  void on_event(Context& ctx, const PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    ctx.emit(next_, Routing::hash(num.value), p);
  }
  double cost_units(const PayloadPtr&) const override { return 2.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::string next_;
};

// Self-contained engine assembly so crash-offset sweeps can build a fresh,
// deterministic world per iteration. gen on host1, work:0 on host2,
// work:1 on host3, collect on host4; host5 stays empty (migration target).
struct Rig {
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  std::unique_ptr<Engine> engine;
  std::shared_ptr<std::vector<Record>> collected =
      std::make_shared<std::vector<Record>>();

  Rig() {
    EngineConfig config;
    config.flush_interval = millis(10);
    config.control_tick = millis(5);
    config.checkpoints.enabled = true;
    config.checkpoints.interval = seconds(1);
    engine = std::make_unique<Engine>(sim, net, HostId{999}, config, 7);
    for (std::size_t i = 0; i < 5; ++i) {
      hosts.push_back(std::make_unique<cluster::Host>(sim, HostId{i + 1},
                                                      cluster::HostSpec{}));
      engine->add_host(*hosts.back());
    }
    Topology t;
    t.operators.push_back(OperatorSpec{"gen", 1, [](std::size_t) {
      return std::make_unique<GenHandler>("work");
    }});
    t.operators.push_back(OperatorSpec{"work", 2, [](std::size_t) {
      return std::make_unique<SumForwardHandler>("collect");
    }});
    t.operators.push_back(OperatorSpec{"collect", 2, [this](std::size_t i) {
      return std::make_unique<CollectHandler>(collected, i);
    }});
    t.edges = {{"gen", "work"}, {"work", "collect"}};
    engine->deploy(t, {
        {"gen", {hosts[0]->id()}},
        {"work", {hosts[1]->id(), hosts[2]->id()}},
        {"collect", {hosts[3]->id(), hosts[3]->id()}},
    });
  }

  void inject_values(std::uint64_t count, SimDuration gap) {
    SimTime at = sim.now();
    for (std::uint64_t v = 1; v <= count; ++v) {
      at += gap;
      sim.schedule_at(at, [this, v] {
        engine->inject("gen", 0, std::make_shared<NumPayload>(v));
      });
    }
  }

  void expect_exactly_once(std::uint64_t count) {
    ASSERT_EQ(collected->size(), count);
    std::map<std::uint64_t, int> seen;
    for (const Record& r : *collected) ++seen[r.value];
    for (std::uint64_t v = 1; v <= count; ++v) {
      ASSERT_EQ(seen[v], 1) << "value " << v;
    }
  }
};

// Crash offsets (after the migrate call) chosen to land in different
// protocol steps: replica creation, duplication, freeze/transfer, and the
// directory-update/teardown tail. The exact step hit is seed-determined;
// every iteration must satisfy the same invariants regardless.
const SimDuration kCrashOffsets[] = {millis(1),  millis(5),  millis(12),
                                     millis(25), millis(60), millis(150)};

TEST(MigrationFaults, DestinationCrashAtEveryStep) {
  for (const SimDuration offset : kCrashOffsets) {
    Rig rig;
    constexpr std::uint64_t kValues = 500;
    rig.inject_values(kValues, millis(10));  // 5 s of traffic
    rig.sim.run_until(rig.sim.now() + millis(1500));  // checkpoints exist

    const SliceId slice = rig.engine->slice_id("work", 0);
    const HostId src = rig.engine->slice_host(slice);
    const HostId dst = rig.hosts[4]->id();
    std::vector<MigrationReport> reports;
    rig.engine->migrate(slice, dst,
                        [&](const MigrationReport& r) { reports.push_back(r); });
    rig.sim.schedule(offset, [&] { rig.engine->fail_host(dst); });
    rig.sim.run_until(rig.sim.now() + seconds(5));

    ASSERT_EQ(reports.size(), 1u) << "offset " << offset.count();
    const MigrationReport& report = reports.front();
    EXPECT_TRUE(report.outcome == MigrationOutcome::kAbortedDstFailed ||
                report.outcome == MigrationOutcome::kCompleted)
        << "offset " << offset.count();
    EXPECT_EQ(rig.engine->pending_migrations(), 0u);

    // The slice either kept running on the source, or was lost (state
    // shipped to the dead host / completed onto it) and recovery places it.
    if (rig.engine->slice_lost(slice)) {
      bool recovered = false;
      rig.engine->recover_slice(slice, rig.hosts[0]->id(),
                                [&] { recovered = true; });
      rig.sim.run_until(rig.sim.now() + seconds(10));
      ASSERT_TRUE(recovered) << "offset " << offset.count();
    } else if (report.outcome == MigrationOutcome::kAbortedDstFailed) {
      EXPECT_EQ(rig.engine->slice_host(slice), src);
    }
    rig.sim.run_until(rig.sim.now() + seconds(10));  // drain
    rig.expect_exactly_once(kValues);

    // The engine is still able to migrate other slices.
    const SliceId other = rig.engine->slice_id("work", 1);
    std::optional<MigrationReport> follow_up;
    rig.engine->migrate(other, rig.hosts[0]->id(),
                        [&](const MigrationReport& r) { follow_up = r; });
    rig.sim.run_until(rig.sim.now() + seconds(5));
    ASSERT_TRUE(follow_up.has_value()) << "offset " << offset.count();
    EXPECT_EQ(follow_up->outcome, MigrationOutcome::kCompleted);
    EXPECT_EQ(rig.engine->slice_host(other), rig.hosts[0]->id());
  }
}

TEST(MigrationFaults, SourceCrashAtEveryStep) {
  for (const SimDuration offset : kCrashOffsets) {
    Rig rig;
    constexpr std::uint64_t kValues = 500;
    rig.inject_values(kValues, millis(10));
    rig.sim.run_until(rig.sim.now() + millis(1500));

    const SliceId slice = rig.engine->slice_id("work", 0);
    const HostId src = rig.engine->slice_host(slice);
    const HostId dst = rig.hosts[4]->id();
    std::vector<MigrationReport> reports;
    rig.engine->migrate(slice, dst,
                        [&](const MigrationReport& r) { reports.push_back(r); });
    rig.sim.schedule(offset, [&] { rig.engine->fail_host(src); });
    rig.sim.run_until(rig.sim.now() + seconds(5));

    ASSERT_EQ(reports.size(), 1u) << "offset " << offset.count();
    const MigrationReport& report = reports.front();
    EXPECT_TRUE(report.outcome == MigrationOutcome::kAbortedSrcFailed ||
                report.outcome == MigrationOutcome::kCompleted)
        << "offset " << offset.count();
    EXPECT_EQ(rig.engine->pending_migrations(), 0u);

    if (rig.engine->slice_lost(slice)) {
      bool recovered = false;
      rig.engine->recover_slice(slice, rig.hosts[0]->id(),
                                [&] { recovered = true; });
      rig.sim.run_until(rig.sim.now() + seconds(10));
      ASSERT_TRUE(recovered) << "offset " << offset.count();
    } else if (report.outcome == MigrationOutcome::kCompleted) {
      // Raced activation: the move finished despite the source's death.
      EXPECT_EQ(rig.engine->slice_host(slice), dst);
    }
    rig.sim.run_until(rig.sim.now() + seconds(10));
    rig.expect_exactly_once(kValues);

    const SliceId other = rig.engine->slice_id("work", 1);
    std::optional<MigrationReport> follow_up;
    rig.engine->migrate(other, rig.hosts[3]->id(),
                        [&](const MigrationReport& r) { follow_up = r; });
    rig.sim.run_until(rig.sim.now() + seconds(5));
    ASSERT_TRUE(follow_up.has_value()) << "offset " << offset.count();
    EXPECT_EQ(follow_up->outcome, MigrationOutcome::kCompleted);
  }
}

TEST(MigrationFaults, QueuedMigrationSurvivesAbortOfCurrent) {
  Rig rig;
  rig.inject_values(300, millis(10));
  rig.sim.run_until(rig.sim.now() + millis(1500));

  const SliceId first = rig.engine->slice_id("work", 0);
  const SliceId second = rig.engine->slice_id("work", 1);
  const HostId dst = rig.hosts[4]->id();
  std::vector<MigrationOutcome> outcomes;
  rig.engine->migrate(first, dst, [&](const MigrationReport& r) {
    outcomes.push_back(r.outcome);
  });
  rig.engine->migrate(second, rig.hosts[0]->id(),
                      [&](const MigrationReport& r) {
                        outcomes.push_back(r.outcome);
                      });
  // Kill the first migration's destination while it is in flight; the
  // queued second migration must still run to completion.
  rig.sim.schedule(millis(10), [&] { rig.engine->fail_host(dst); });
  rig.sim.run_until(rig.sim.now() + seconds(10));

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_NE(outcomes[0], MigrationOutcome::kRejected);
  EXPECT_EQ(outcomes[1], MigrationOutcome::kCompleted);
  EXPECT_EQ(rig.engine->slice_host(second), rig.hosts[0]->id());
  EXPECT_EQ(rig.engine->pending_migrations(), 0u);
}

TEST(MigrationFaults, QueuedMigrationToDeadHostIsRejected) {
  Rig rig;
  rig.inject_values(100, millis(10));
  rig.sim.run_until(rig.sim.now() + millis(1500));

  const SliceId first = rig.engine->slice_id("work", 0);
  const SliceId second = rig.engine->slice_id("work", 1);
  const HostId dst = rig.hosts[4]->id();
  std::vector<MigrationOutcome> outcomes;
  // Both moves target host5; it dies while the first is in flight, so the
  // queued second must be rejected at start instead of wedging the queue.
  rig.engine->migrate(first, dst, [&](const MigrationReport& r) {
    outcomes.push_back(r.outcome);
  });
  rig.engine->migrate(second, dst, [&](const MigrationReport& r) {
    outcomes.push_back(r.outcome);
  });
  rig.sim.schedule(millis(10), [&] { rig.engine->fail_host(dst); });
  rig.sim.run_until(rig.sim.now() + seconds(10));

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_NE(outcomes[0], MigrationOutcome::kRejected);
  EXPECT_EQ(outcomes[1], MigrationOutcome::kRejected);
  EXPECT_EQ(rig.engine->pending_migrations(), 0u);
}

}  // namespace
}  // namespace esh::engine
