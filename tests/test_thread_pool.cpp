// ThreadPool unit tests: fork-join correctness (every chunk runs exactly
// once, worker ids stay in range, the caller participates), the inline
// single-worker path, and the exception contract -- a throwing chunk never
// terminates a worker; every chunk still runs; the lowest-indexed captured
// exception resurfaces in the joiner; and the pool stays usable afterwards.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

#include <atomic>
#include <cstddef>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace esh {
namespace {

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.worker_count(), 4u);
  constexpr std::size_t kChunks = 257;  // far more chunks than workers
  std::vector<std::atomic<int>> runs(kChunks);
  pool.parallel_for(kChunks, [&](std::size_t chunk, std::size_t worker) {
    EXPECT_LT(worker, pool.worker_count());
    runs[chunk].fetch_add(1);
  });
  for (std::size_t c = 0; c < kChunks; ++c) {
    EXPECT_EQ(runs[c].load(), 1) << "chunk " << c;
  }
}

TEST(ThreadPoolTest, CallerParticipatesAsWorkerZero) {
  ThreadPool pool{2};
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> worker0_on_caller{true};
  pool.parallel_for(64, [&](std::size_t, std::size_t worker) {
    if (worker == 0 && std::this_thread::get_id() != caller) {
      worker0_on_caller = false;
    }
  });
  EXPECT_TRUE(worker0_on_caller.load());
}

TEST(ThreadPoolTest, ZeroChunksReturnsImmediately) {
  ThreadPool pool{4};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineInOrder) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.worker_count(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(8, [&](std::size_t chunk, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(chunk);
  });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ZeroThreadsMeansOneWorker) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.worker_count(), 1u);
  std::size_t ran = 0;
  pool.parallel_for(3, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran, 3u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToJoinerAfterAllChunksRan) {
  ThreadPool pool{4};
  constexpr std::size_t kChunks = 64;
  std::atomic<std::size_t> ran{0};
  try {
    pool.parallel_for(kChunks, [&](std::size_t chunk, std::size_t) {
      ran.fetch_add(1);
      if (chunk == 17) throw std::runtime_error{"chunk 17"};
    });
    FAIL() << "expected the chunk's exception in the joiner";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 17");
  }
  // No chunk is abandoned when another throws.
  EXPECT_EQ(ran.load(), kChunks);
}

TEST(ThreadPoolTest, LowestIndexedExceptionWins) {
  ThreadPool pool{4};
  try {
    pool.parallel_for(32, [&](std::size_t chunk, std::size_t) {
      if (chunk % 2 == 1) {
        throw std::runtime_error{"chunk " + std::to_string(chunk)};
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");
  }
}

TEST(ThreadPoolTest, PoolUsableAfterException) {
  ThreadPool pool{4};
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.parallel_for(16,
                                   [&](std::size_t chunk, std::size_t) {
                                     if (chunk == 3) {
                                       throw std::logic_error{"boom"};
                                     }
                                   }),
                 std::logic_error);
    // The workers all survived: a full fan-out still covers every chunk.
    std::vector<std::atomic<int>> runs(128);
    pool.parallel_for(128, [&](std::size_t chunk, std::size_t) {
      runs[chunk].fetch_add(1);
    });
    for (std::size_t c = 0; c < runs.size(); ++c) {
      ASSERT_EQ(runs[c].load(), 1) << "round " << round << " chunk " << c;
    }
  }
}

TEST(ThreadPoolTest, InlinePathPropagatesExceptions) {
  ThreadPool pool{1};
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t chunk, std::size_t) {
                          if (chunk == 2) throw std::runtime_error{"inline"};
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool{4};
  std::atomic<std::size_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.parallel_for(7, [&](std::size_t, std::size_t) {
      total.fetch_add(1);
    });
  }
  EXPECT_EQ(total.load(), 200u * 7u);
}

TEST(ThreadPoolTest, PerWorkerScratchNeedsNoLocking) {
  ThreadPool pool{4};
  constexpr std::size_t kChunks = 500;
  // Non-atomic per-worker counters: safe iff one worker never runs two
  // chunks concurrently, which is the contract callers' scratch relies on.
  std::vector<std::size_t> per_worker(pool.worker_count(), 0);
  pool.parallel_for(kChunks, [&](std::size_t, std::size_t worker) {
    ++per_worker[worker];
  });
  EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(),
                            std::size_t{0}),
            kChunks);
}

TEST(ThreadPoolTest, DestructionWithNoJobsJoinsCleanly) {
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool{8};  // spin up and immediately tear down
  }
}

// ---- stress: the AP/EP offload shapes -------------------------------------
//
// The pipeline offload (PR 5) leans on three pool properties under irregular
// load: correctness at arbitrary chunk-to-worker ratios, the lowest-indexed
// exception surviving a storm of concurrent throwers, and the pool remaining
// serviceable for the next batch after a throw. These tests drive all three
// with seeded-random shapes so every run covers a different mix while
// staying reproducible.

TEST(ThreadPoolStressTest, RandomizedChunkAndWorkerCounts) {
  Rng rng{20260807};
  for (int round = 0; round < 40; ++round) {
    const auto workers = static_cast<std::size_t>(rng.next_below(9));
    ThreadPool pool{workers};
    // Cover the degenerate shapes too: 0 chunks, 1 chunk, fewer chunks than
    // workers, and far more chunks than workers.
    const auto chunks = static_cast<std::size_t>(rng.next_below(300));
    std::vector<std::atomic<int>> runs(chunks > 0 ? chunks : 1);
    pool.parallel_for(chunks, [&](std::size_t chunk, std::size_t worker) {
      ASSERT_LT(chunk, chunks);
      ASSERT_LT(worker, pool.worker_count());
      runs[chunk].fetch_add(1);
    });
    for (std::size_t c = 0; c < chunks; ++c) {
      ASSERT_EQ(runs[c].load(), 1)
          << "round " << round << " workers " << workers << " chunk " << c;
    }
  }
}

TEST(ThreadPoolStressTest, LowestIndexedExceptionWinsUnderRandomThrowers) {
  Rng rng{4242};
  ThreadPool pool{4};
  for (int round = 0; round < 25; ++round) {
    const std::size_t chunks = 16 + rng.next_below(200);
    // A random subset of chunks throws, mimicking per-event planning
    // failures scattered through an AP route plan or EP merge batch.
    std::vector<bool> throws(chunks, false);
    std::size_t lowest = chunks;
    const std::size_t throwers = 1 + rng.next_below(chunks / 2);
    for (std::size_t t = 0; t < throwers; ++t) {
      const auto c = static_cast<std::size_t>(rng.next_below(chunks));
      throws[c] = true;
      lowest = std::min(lowest, c);
    }
    std::atomic<std::size_t> ran{0};
    try {
      pool.parallel_for(chunks, [&](std::size_t chunk, std::size_t) {
        ran.fetch_add(1);
        if (throws[chunk]) {
          throw std::runtime_error{"chunk " + std::to_string(chunk)};
        }
      });
      FAIL() << "expected a rethrow in round " << round;
    } catch (const std::runtime_error& e) {
      ASSERT_EQ(std::string{e.what()}, "chunk " + std::to_string(lowest))
          << "round " << round;
    }
    // Capture never abandons chunks: the full batch still ran.
    ASSERT_EQ(ran.load(), chunks) << "round " << round;
  }
}

TEST(ThreadPoolStressTest, ReusableForNextBatchAfterRandomThrows) {
  Rng rng{777};
  ThreadPool pool{4};
  // Alternate throwing and clean batches of random sizes: the simulator
  // thread reuses one pool for every AP plan, M match and EP merge, so a
  // throw in one batch must leave the next batch's fan-out intact.
  for (int round = 0; round < 30; ++round) {
    const std::size_t chunks = 8 + rng.next_below(64);
    const auto doomed = static_cast<std::size_t>(rng.next_below(chunks));
    EXPECT_THROW(pool.parallel_for(chunks,
                                   [&](std::size_t chunk, std::size_t) {
                                     if (chunk == doomed) {
                                       throw std::logic_error{"boom"};
                                     }
                                   }),
                 std::logic_error);
    const std::size_t clean = 8 + rng.next_below(64);
    std::vector<std::atomic<int>> runs(clean);
    pool.parallel_for(clean, [&](std::size_t chunk, std::size_t) {
      runs[chunk].fetch_add(1);
    });
    for (std::size_t c = 0; c < clean; ++c) {
      ASSERT_EQ(runs[c].load(), 1) << "round " << round << " chunk " << c;
    }
  }
}

}  // namespace
}  // namespace esh
