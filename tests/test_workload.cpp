#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/stats.hpp"
#include "sim/simulator.hpp"
#include "workload/driver.hpp"
#include "workload/generator.hpp"
#include "workload/oracle.hpp"
#include "workload/schedule.hpp"

namespace esh::workload {
namespace {

// ---- generators -----------------------------------------------------------------

TEST(PlainWorkload, SubscriptionsDeterministicPerIndex) {
  PlainWorkload a{{4, 0.01, 9}};
  PlainWorkload b{{4, 0.01, 9}};
  const auto s1 = a.subscription(5);
  const auto s2 = b.subscription(5);
  EXPECT_EQ(s1.id, s2.id);
  ASSERT_EQ(s1.predicates.size(), s2.predicates.size());
  for (std::size_t i = 0; i < s1.predicates.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.predicates[i].low, s2.predicates[i].low);
  }
}

TEST(PlainWorkload, WidthsProductEqualsMatchingRate) {
  PlainWorkload gen{{4, 0.01, 3}};
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto sub = gen.subscription(i);
    double product = 1.0;
    for (const auto& p : sub.predicates) {
      EXPECT_GE(p.low, 0.0);
      EXPECT_LE(p.high, 1.0);
      product *= p.width();
    }
    EXPECT_NEAR(product, 0.01, 1e-9);
  }
}

TEST(PlainWorkload, EmpiricalMatchingRateNearTarget) {
  PlainWorkload gen{{4, 0.02, 11}};
  std::vector<filter::Subscription> subs;
  for (std::uint64_t i = 0; i < 400; ++i) subs.push_back(gen.subscription(i));
  std::uint64_t matches = 0, trials = 0;
  for (int p = 0; p < 500; ++p) {
    const auto pub = gen.next_publication();
    for (const auto& s : subs) {
      ++trials;
      if (s.matches(pub)) ++matches;
    }
  }
  const double rate = static_cast<double>(matches) / trials;
  EXPECT_NEAR(rate, 0.02, 0.004);
}

TEST(PlainWorkload, PublicationIdsIncrease) {
  PlainWorkload gen{{4, 0.01, 5}};
  EXPECT_EQ(gen.next_publication().id, PublicationId{1});
  EXPECT_EQ(gen.next_publication().id, PublicationId{2});
}

TEST(PlainWorkload, RejectsBadParams) {
  EXPECT_THROW((PlainWorkload{{0, 0.1, 1}}), std::invalid_argument);
  EXPECT_THROW((PlainWorkload{{4, 0.0, 1}}), std::invalid_argument);
  EXPECT_THROW((PlainWorkload{{4, 1.5, 1}}), std::invalid_argument);
}

TEST(EncryptedWorkload, RoundTripMatchesPlain) {
  EncryptedWorkload enc{{4, 0.05, 21}};
  PlainWorkload plain{{4, 0.05, 21}};
  const auto esub = enc.subscription(3);
  const auto psub = plain.subscription(3);
  EXPECT_EQ(esub.id, psub.id);
  filter::Publication ppub;
  const auto epub = enc.next_publication(&ppub);
  EXPECT_EQ(filter::encrypted_match(esub, epub), psub.matches(ppub));
}

// ---- oracle --------------------------------------------------------------------

TEST(MatchOracle, DeterministicPerPublication) {
  MatchOracle oracle{{.dimensions = 4, .total_subscriptions = 10'000,
                      .matching_rate = 0.01, .m_slices = 4, .seed = 99}};
  const auto a = oracle.matches(PublicationId{42});
  const auto b = oracle.matches(PublicationId{42});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, oracle.matches(PublicationId{43}));
}

TEST(MatchOracle, MatchCountNearExpectation) {
  MatchOracle oracle{{.dimensions = 4, .total_subscriptions = 10'000,
                      .matching_rate = 0.01, .m_slices = 4, .seed = 1}};
  RunningStats counts;
  for (std::uint64_t p = 1; p <= 200; ++p) {
    counts.add(static_cast<double>(oracle.matches(PublicationId{p}).size()));
  }
  EXPECT_NEAR(counts.mean(), 100.0, 3.0);
  EXPECT_GT(counts.stddev(), 2.0);  // binomial spread, not constant
}

TEST(MatchOracle, PartitionConsistentWithFlatMatches) {
  MatchOracle oracle{{.dimensions = 4, .total_subscriptions = 5'000,
                      .matching_rate = 0.02, .m_slices = 8, .seed = 5}};
  const PublicationId pub{7};
  const auto flat = oracle.matches(pub);
  const auto partition = oracle.partitioned_matches(pub);
  ASSERT_EQ(partition->size(), 8u);
  std::vector<std::uint64_t> merged;
  for (std::size_t s = 0; s < partition->size(); ++s) {
    for (auto idx : (*partition)[s]) {
      EXPECT_EQ(oracle.slice_of(idx), s);
      merged.push_back(idx);
    }
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, flat);
}

TEST(MatchOracle, SkewedIdsStayUniqueAndConcentrateInBucketZero) {
  MatchOracle oracle{{.dimensions = 4, .total_subscriptions = 10'000,
                      .matching_rate = 0.01, .m_slices = 4, .seed = 9,
                      .hot_fraction = 0.55}};
  std::set<std::uint64_t> ids;
  std::size_t in_hot_bucket = 0;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const auto id = oracle.sub_id(i);
    EXPECT_TRUE(ids.insert(id.value()).second) << "duplicate id " << i;
    // slice_of must stay the modulo of the (skewed) id, matching AP.
    EXPECT_EQ(oracle.slice_of(i), id.value() % 4);
    if (oracle.slice_of(i) == 0) ++in_hot_bucket;
  }
  EXPECT_EQ(in_hot_bucket, 5'500u);  // hot_fraction of the population
  // Uniform scheme untouched: ids are still index + 1.
  MatchOracle uniform{{.dimensions = 4, .total_subscriptions = 100,
                       .matching_rate = 0.01, .m_slices = 4, .seed = 9}};
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(uniform.sub_id(i).value(), i + 1);
  }
}

TEST(MatchOracle, ZipfSkewIsDeterministicAndConcentrated) {
  const OracleParams params{.dimensions = 4, .total_subscriptions = 10'000,
                            .matching_rate = 0.01, .m_slices = 4, .seed = 33,
                            .zipf_exponent = 1.1};
  MatchOracle a{params};
  MatchOracle b{params};
  std::uint64_t total = 0, in_top_decile = 0;
  RunningStats counts;
  for (std::uint64_t p = 1; p <= 200; ++p) {
    const auto m = a.matches(PublicationId{p});
    // Deterministic per publication id, and a without-replacement sample:
    // sorted with no duplicate indices.
    EXPECT_EQ(m, b.matches(PublicationId{p}));
    EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
    EXPECT_EQ(std::adjacent_find(m.begin(), m.end()), m.end());
    counts.add(static_cast<double>(m.size()));
    for (const std::uint64_t idx : m) {
      ++total;
      if (idx < 1'000) ++in_top_decile;
    }
  }
  // The match-count distribution is the same Binomial(n, p) as the uniform
  // oracle; only which indices carry the matches skews.
  EXPECT_NEAR(counts.mean(), 100.0, 3.0);
  // At s = 1.1 the first decile of the popularity ranking holds ~78 % of
  // the total Zipf mass; uniform sampling would put 10 % there.
  EXPECT_GT(static_cast<double>(in_top_decile), 0.6 * static_cast<double>(total));
}

TEST(MatchOracle, RejectsBadZipfAndChurnParams) {
  OracleParams bad_zipf;
  bad_zipf.zipf_exponent = -0.1;
  EXPECT_THROW((MatchOracle{bad_zipf}), std::invalid_argument);
  OracleParams bad_churn;
  bad_churn.churn_fraction = 1.5;
  EXPECT_THROW((MatchOracle{bad_churn}), std::invalid_argument);
}

TEST(ChurnStream, DeterministicWithFreshUniqueIds) {
  const OracleParams params{.dimensions = 4, .total_subscriptions = 1'000,
                            .matching_rate = 0.01, .m_slices = 4, .seed = 21,
                            .hot_fraction = 0.4, .churn_fraction = 0.2};
  auto oracle = std::make_shared<MatchOracle>(params);
  ChurnStream a{oracle, 7};
  ChurnStream b{oracle, 7};
  EXPECT_EQ(a.target_fringe(), 200u);

  // Ids of the base population plus every churned-in fringe subscription
  // must be globally unique: sub_id() is injective over all indices, even
  // under hot_fraction skew.
  std::set<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < params.total_subscriptions; ++i) {
    EXPECT_TRUE(ids.insert(oracle->sub_id(i).value()).second) << i;
  }
  std::set<std::uint64_t> fringe_live;
  for (int step = 0; step < 2'000; ++step) {
    const auto ea = a.next();
    const auto eb = b.next();
    EXPECT_EQ(ea.subscribe, eb.subscribe) << step;
    EXPECT_EQ(ea.index, eb.index) << step;
    if (ea.subscribe) {
      // Fresh indices only, beyond the base population, never reused.
      EXPECT_GE(ea.index, params.total_subscriptions);
      EXPECT_TRUE(fringe_live.insert(ea.index).second) << step;
      EXPECT_TRUE(ids.insert(oracle->sub_id(ea.index).value()).second)
          << "duplicate id at step " << step;
      // AP's modulo routing applies to the fringe like any other traffic.
      EXPECT_EQ(oracle->slice_of(ea.index),
                oracle->sub_id(ea.index).value() % params.m_slices);
    } else {
      // Unsubscribes only ever target a currently live fringe index.
      EXPECT_EQ(fringe_live.erase(ea.index), 1u) << step;
    }
    EXPECT_EQ(a.live_fringe(), fringe_live.size());
  }
  // The walk reached and then held the target fringe size (within the
  // random-walk band), and kept spawning fresh subscriptions throughout.
  EXPECT_GT(a.spawned(), 500u);
  EXPECT_GT(a.live_fringe(), 100u);
  EXPECT_LT(a.live_fringe(), 400u);
}

TEST(OracleMatcher, OnlyStoredSubscriptionsMatch) {
  OracleParams params{.dimensions = 4, .total_subscriptions = 1'000,
                      .matching_rate = 0.05, .m_slices = 2, .seed = 77};
  OracleWorkload workload{params};
  auto m0 = workload.make_matcher({}, 0);
  // Store only half of slice 0's partition (even indices).
  std::set<std::uint64_t> stored;
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    if (workload.oracle()->slice_of(i) == 0 && i % 2 == 0) {
      m0->add(filter::AnySubscription{workload.subscription(i)});
      stored.insert(i);
    }
  }
  const auto pub = workload.next_publication();
  const auto outcome = m0->match(filter::AnyPublication{pub});
  const auto truth = workload.oracle()->matches(pub.id);
  std::size_t expected = 0;
  for (auto idx : truth) {
    if (stored.contains(idx)) ++expected;
  }
  EXPECT_EQ(outcome.subscribers.size(), expected);
}

TEST(OracleMatcher, StateRoundTripPadsToEncryptedSize) {
  OracleParams params{.dimensions = 4, .total_subscriptions = 100,
                      .matching_rate = 0.1, .m_slices = 2, .seed = 3};
  OracleWorkload workload{params};
  cluster::CostModel cost;
  auto matcher = workload.make_matcher(cost, 0);
  std::size_t added = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (workload.oracle()->slice_of(i) == 0) {
      matcher->add(filter::AnySubscription{workload.subscription(i)});
      ++added;
    }
  }
  EXPECT_EQ(matcher->subscription_count(), added);
  EXPECT_EQ(matcher->state_bytes(), added * cost.subscription_bytes(4));
  BinaryWriter w;
  matcher->serialize_state(w);
  // Serialized blob within ~2 % of the declared encrypted size.
  EXPECT_NEAR(static_cast<double>(w.size()),
              static_cast<double>(matcher->state_bytes()),
              0.05 * static_cast<double>(matcher->state_bytes()) + 64);
  auto restored = matcher->clone_empty();
  BinaryReader r{w.buffer()};
  restored->restore_state(r);
  EXPECT_EQ(restored->subscription_count(), added);
}

TEST(OracleWorkload, MockCiphertextsHaveRealSizes) {
  OracleWorkload workload{{.dimensions = 4, .total_subscriptions = 100,
                           .matching_rate = 0.1, .m_slices = 2, .seed = 3}};
  const auto sub = workload.subscription(0);
  EXPECT_EQ(sub.comparisons.size(), 8u);
  EXPECT_EQ(sub.comparisons[0].share_a.size(), 7u);
  auto pub = workload.next_publication();
  EXPECT_EQ(pub.share_a.size(), 7u);
  EXPECT_EQ(pub.id, PublicationId{1});
}

// ---- schedules -----------------------------------------------------------------

TEST(Schedules, ConstantRate) {
  ConstantRate schedule{100.0, seconds(60)};
  EXPECT_DOUBLE_EQ(schedule.rate(seconds(10)), 100.0);
  EXPECT_EQ(schedule.duration(), seconds(60));
  EXPECT_DOUBLE_EQ(schedule.peak_rate(), 100.0);
}

TEST(Schedules, TrapezoidShape) {
  TrapezoidRate schedule{350.0, seconds(100), seconds(50), seconds(100)};
  EXPECT_DOUBLE_EQ(schedule.rate(seconds(0)), 0.0);
  EXPECT_NEAR(schedule.rate(seconds(50)), 175.0, 1e-9);
  EXPECT_DOUBLE_EQ(schedule.rate(seconds(100)), 350.0);
  EXPECT_DOUBLE_EQ(schedule.rate(seconds(125)), 350.0);
  EXPECT_NEAR(schedule.rate(seconds(200)), 175.0, 1e-9);
  EXPECT_DOUBLE_EQ(schedule.rate(seconds(260)), 0.0);
  EXPECT_EQ(schedule.duration(), seconds(250));
}

TEST(FrankfurtCurve, ReproducesFigure1Features) {
  // Quiet before the market opens.
  EXPECT_LT(FrankfurtTrace::base_curve(6.0), 1.0);
  // Sharp surge at the 9:00 open.
  EXPECT_GT(FrankfurtTrace::base_curve(9.0),
            5.0 * FrankfurtTrace::base_curve(8.5));
  // Afternoon spike above the midday level.
  EXPECT_GT(FrankfurtTrace::base_curve(15.5),
            1.5 * FrankfurtTrace::base_curve(13.0));
  // Sharp decline after the 17:30 close.
  EXPECT_LT(FrankfurtTrace::base_curve(18.0),
            0.3 * FrankfurtTrace::base_curve(17.0));
  // Quiet evening.
  EXPECT_LT(FrankfurtTrace::base_curve(21.0), 1.0);
  EXPECT_DOUBLE_EQ(FrankfurtTrace::base_peak(), 1200.0);
}

TEST(FrankfurtTrace, CompressionAndScaling) {
  FrankfurtTrace::Config config;
  config.start_hour = 7.0;
  config.end_hour = 20.5;
  config.speedup = 20.0;
  config.peak_rate = 190.0;
  config.noise = 0.0;
  FrankfurtTrace trace{config};
  // 13.5 hours at 20x -> 2430 s experiment.
  EXPECT_EQ(trace.duration(), seconds(2430));
  // Peak of the compressed trace ~ peak_rate (9:00 is at (9-7)*3600/20 s).
  const SimTime open{static_cast<std::int64_t>(2.0 * 3600.0 / 20.0 * 1e6)};
  EXPECT_NEAR(trace.rate(open), 190.0 * 1150.0 / 1200.0, 5.0);
  EXPECT_DOUBLE_EQ(trace.rate(seconds(0)), 0.0);
}

TEST(FrankfurtTrace, NoiseIsDeterministicAndBounded) {
  FrankfurtTrace::Config config;
  config.noise = 0.15;
  FrankfurtTrace a{config}, b{config};
  for (int s = 0; s < 2000; s += 100) {
    EXPECT_DOUBLE_EQ(a.rate(seconds(s)), b.rate(seconds(s)));
    EXPECT_GE(a.rate(seconds(s)), 0.0);
  }
}

// ---- driver --------------------------------------------------------------------

TEST(PublicationDriver, GeneratesApproximatelyTheScheduledVolume) {
  sim::Simulator sim;
  auto schedule = std::make_shared<ConstantRate>(200.0, seconds(60));
  std::uint64_t count = 0;
  PublicationDriver driver{sim, schedule, [&] { ++count; }, 5};
  driver.start();
  sim.run();
  // 200/s for 60 s = 12000 expected (Poisson, ~1 % tolerance at 3 sigma).
  EXPECT_NEAR(static_cast<double>(count), 12'000.0, 400.0);
  EXPECT_EQ(driver.published(), count);
  EXPECT_FALSE(driver.running());
}

TEST(PublicationDriver, TracksTimeVaryingRate) {
  sim::Simulator sim;
  auto schedule =
      std::make_shared<TrapezoidRate>(100.0, seconds(30), seconds(0),
                                      seconds(30));
  std::uint64_t first_half = 0, second_half = 0;
  PublicationDriver driver{
      sim, schedule,
      [&] { (sim.now() < seconds(30) ? first_half : second_half)++; }, 6};
  driver.start();
  sim.run();
  // Symmetric triangle: halves roughly equal, total ~ 3000.
  EXPECT_NEAR(static_cast<double>(first_half + second_half), 3000.0, 300.0);
  EXPECT_NEAR(static_cast<double>(first_half),
              static_cast<double>(second_half),
              0.25 * static_cast<double>(first_half));
}

TEST(PublicationDriver, StopHalts) {
  sim::Simulator sim;
  auto schedule = std::make_shared<ConstantRate>(1000.0, seconds(100));
  std::uint64_t count = 0;
  PublicationDriver driver{sim, schedule, [&] { ++count; }, 8};
  driver.start();
  sim.run_until(seconds(1));
  driver.stop();
  const auto at_stop = count;
  sim.run_until(seconds(5));
  EXPECT_EQ(count, at_stop);
}

TEST(PublicationDriver, OnDoneFires) {
  sim::Simulator sim;
  auto schedule = std::make_shared<ConstantRate>(10.0, seconds(5));
  bool done = false;
  PublicationDriver driver{sim, schedule, [] {}, 9, [&] { done = true; }};
  driver.start();
  sim.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace esh::workload
