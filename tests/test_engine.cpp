#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "cluster/host.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace esh::engine {
namespace {

struct NumPayload final : Payload {
  explicit NumPayload(std::uint64_t v) : value(v) {}
  std::uint64_t value;
  [[nodiscard]] std::size_t bytes() const override { return 64; }
};

// Sink of the test DAG: records (slice_index, value) pairs.
struct Record {
  std::size_t slice_index;
  std::uint64_t value;
};

class CollectHandler final : public Handler {
 public:
  CollectHandler(std::shared_ptr<std::vector<Record>> out, std::size_t index)
      : out_(std::move(out)), index_(index) {}
  void on_event(Context&, const PayloadPtr& p) override {
    out_->push_back(
        Record{index_, dynamic_cast<const NumPayload&>(*p).value});
  }
  double cost_units(const PayloadPtr&) const override { return 5.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::shared_ptr<std::vector<Record>> out_;
  std::size_t index_;
};

// Middle stage: stateful (sum + count), forwards to `next` by value-hash.
class SumForwardHandler final : public Handler {
 public:
  SumForwardHandler(std::string next, std::size_t state_pad = 0)
      : next_(std::move(next)), pad_(state_pad) {}

  void on_event(Context& ctx, const PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    sum_ += num.value;
    ++count_;
    if (!next_.empty()) {
      ctx.emit(next_, Routing::hash(num.value), p);
    }
  }
  double cost_units(const PayloadPtr&) const override { return 20.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kWrite;
  }
  void serialize_state(BinaryWriter& w) const override {
    w.write_u64(sum_);
    w.write_u64(count_);
    for (std::size_t i = 0; i < pad_; ++i) w.write_u8(0);
  }
  void restore_state(BinaryReader& r) override {
    sum_ = r.read_u64();
    count_ = r.read_u64();
    for (std::size_t i = 0; i < pad_; ++i) (void)r.read_u8();
  }
  std::size_t state_bytes() const override { return 16 + pad_; }
  double replica_init_units() const override { return 2000.0; }

  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;

 private:
  std::string next_;
  std::size_t pad_;
};

// Entry stage: stateless, broadcast or hash routing to `next`.
class GenHandler final : public Handler {
 public:
  GenHandler(std::string next, bool broadcast)
      : next_(std::move(next)), broadcast_(broadcast) {}
  void on_event(Context& ctx, const PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    ctx.emit(next_, broadcast_ ? Routing::broadcast()
                               : Routing::hash(num.value),
             p);
  }
  double cost_units(const PayloadPtr&) const override { return 2.0; }
  cluster::LockMode lock_mode(const PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::string next_;
  bool broadcast_;
};

class EngineTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  std::unique_ptr<Engine> engine;
  std::shared_ptr<std::vector<Record>> collected =
      std::make_shared<std::vector<Record>>();

  void make_engine(std::size_t host_count, EngineConfig config = {}) {
    config.flush_interval = millis(10);
    config.control_tick = millis(5);
    engine = std::make_unique<Engine>(sim, net, HostId{999}, config, 7);
    for (std::size_t i = 0; i < host_count; ++i) {
      hosts.push_back(std::make_unique<cluster::Host>(
          sim, HostId{i + 1}, cluster::HostSpec{}));
      engine->add_host(*hosts.back());
    }
  }

  Topology test_topology(std::size_t work_slices, bool broadcast = false,
                         std::size_t state_pad = 0) {
    Topology t;
    t.operators.push_back(OperatorSpec{
        "gen", 1, [broadcast](std::size_t) {
          return std::make_unique<GenHandler>("work", broadcast);
        }});
    t.operators.push_back(OperatorSpec{
        "work", work_slices, [state_pad](std::size_t) {
          return std::make_unique<SumForwardHandler>("collect", state_pad);
        }});
    t.operators.push_back(OperatorSpec{
        "collect", 2, [this](std::size_t index) {
          return std::make_unique<CollectHandler>(collected, index);
        }});
    t.edges = {{"gen", "work"}, {"work", "collect"}};
    return t;
  }

  std::unordered_map<std::string, std::vector<HostId>> spread_placement(
      const Topology& t) {
    std::unordered_map<std::string, std::vector<HostId>> placement;
    std::size_t next = 0;
    for (const auto& op : t.operators) {
      std::vector<HostId> assigned;
      for (std::size_t s = 0; s < op.slices; ++s) {
        assigned.push_back(hosts[next++ % hosts.size()]->id());
      }
      placement[op.name] = assigned;
    }
    return placement;
  }

  void inject_values(std::uint64_t count, SimDuration gap) {
    SimTime at = sim.now();
    for (std::uint64_t v = 1; v <= count; ++v) {
      at += gap;
      sim.schedule_at(at, [this, v] {
        engine->inject("gen", 0, std::make_shared<NumPayload>(v));
      });
    }
  }

  const SumForwardHandler& work_handler(std::size_t index) {
    auto* runtime = engine->slice_runtime(engine->slice_id("work", index));
    return dynamic_cast<const SumForwardHandler&>(runtime->handler());
  }
};

TEST_F(EngineTest, DeployValidation) {
  make_engine(2);
  Topology t = test_topology(2);
  auto placement = spread_placement(t);
  placement.erase("work");
  EXPECT_THROW(engine->deploy(t, placement), std::invalid_argument);
  placement["work"] = {HostId{1}};  // wrong count
  EXPECT_THROW(engine->deploy(t, placement), std::invalid_argument);
  placement["work"] = {HostId{1}, HostId{77}};  // unknown host
  EXPECT_THROW(engine->deploy(t, placement), std::invalid_argument);
  placement["work"] = {HostId{1}, HostId{2}};
  engine->deploy(t, placement);
  EXPECT_THROW(engine->deploy(t, placement), std::logic_error);
}

TEST_F(EngineTest, EndToEndFlowDeliversAll) {
  make_engine(3);
  const Topology t = test_topology(4);
  engine->deploy(t, spread_placement(t));
  inject_values(100, millis(2));
  sim.run_until(sim.now() + seconds(2));
  ASSERT_EQ(collected->size(), 100u);
  // Every value delivered exactly once, routed by hash.
  std::map<std::uint64_t, int> seen;
  for (const Record& r : *collected) {
    ++seen[r.value];
    EXPECT_EQ(r.slice_index, r.value % 2);
  }
  for (std::uint64_t v = 1; v <= 100; ++v) EXPECT_EQ(seen[v], 1);
}

TEST_F(EngineTest, BroadcastReachesEverySlice) {
  make_engine(3);
  const Topology t = test_topology(4, /*broadcast=*/true);
  engine->deploy(t, spread_placement(t));
  inject_values(10, millis(2));
  sim.run_until(sim.now() + seconds(2));
  // Each of the 10 values hits all 4 work slices; every copy forwards.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 4; ++i) total += work_handler(i).count_;
  EXPECT_EQ(total, 40u);
}

TEST_F(EngineTest, StatefulHandlersAccumulate) {
  make_engine(2);
  const Topology t = test_topology(2);
  engine->deploy(t, spread_placement(t));
  inject_values(20, millis(1));
  sim.run_until(sim.now() + seconds(1));
  // Values hash-partitioned: evens to slice 0, odds to slice 1.
  std::uint64_t even_sum = 0, odd_sum = 0;
  for (std::uint64_t v = 1; v <= 20; ++v) (v % 2 ? odd_sum : even_sum) += v;
  EXPECT_EQ(work_handler(0).sum_, even_sum);
  EXPECT_EQ(work_handler(1).sum_, odd_sum);
}

TEST_F(EngineTest, MigrationPreservesStateAndLosesNothing) {
  make_engine(3);
  const Topology t = test_topology(2, false, /*state_pad=*/5000);
  engine->deploy(t, spread_placement(t));

  // Continuous flow while slice "work:0" migrates to host 3.
  inject_values(400, millis(5));  // 2 s of traffic
  sim.run_until(sim.now() + millis(300));

  const SliceId slice = engine->slice_id("work", 0);
  const HostId src = engine->slice_host(slice);
  const HostId dst = hosts[2]->id();
  ASSERT_NE(src, dst);
  std::optional<MigrationReport> report;
  engine->migrate(slice, dst, [&](const MigrationReport& r) { report = r; });
  sim.run_until(sim.now() + seconds(4));

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->slice, slice);
  EXPECT_EQ(report->src, src);
  EXPECT_EQ(report->dst, dst);
  EXPECT_EQ(engine->slice_host(slice), dst);
  EXPECT_GT(report->state_bytes, 5000u);
  EXPECT_GE(report->frozen, report->requested);
  EXPECT_GE(report->activated, report->frozen);
  EXPECT_GE(report->completed, report->activated);

  // No event lost or duplicated end to end.
  ASSERT_EQ(collected->size(), 400u);
  std::map<std::uint64_t, int> seen;
  for (const Record& r : *collected) ++seen[r.value];
  for (std::uint64_t v = 1; v <= 400; ++v) EXPECT_EQ(seen[v], 1) << v;

  // The migrated handler's state followed it (sum of even values).
  std::uint64_t even_sum = 0;
  for (std::uint64_t v = 2; v <= 400; v += 2) even_sum += v;
  EXPECT_EQ(work_handler(0).sum_, even_sum);
  EXPECT_EQ(work_handler(0).count_, 200u);

  // Old host no longer owns the slice.
  const auto remaining = engine->slices_on(src);
  EXPECT_EQ(std::count(remaining.begin(), remaining.end(), slice), 0);
}

TEST_F(EngineTest, MigrationOfStatelessEntrySlice) {
  make_engine(3);
  const Topology t = test_topology(2);
  engine->deploy(t, spread_placement(t));
  inject_values(200, millis(5));
  sim.run_until(sim.now() + millis(200));

  const SliceId slice = engine->slice_id("gen", 0);
  const HostId dst = hosts[2]->id();
  std::optional<MigrationReport> report;
  engine->migrate(slice, dst, [&](const MigrationReport& r) { report = r; });
  sim.run_until(sim.now() + seconds(3));
  ASSERT_TRUE(report.has_value());
  // Stateless: tiny state, short interruption.
  EXPECT_LT(report->state_bytes, 64u);
  EXPECT_LT(report->interruption(), millis(500));
  ASSERT_EQ(collected->size(), 200u);
}

TEST_F(EngineTest, SequentialMigrationsQueue) {
  make_engine(3);
  const Topology t = test_topology(2);
  engine->deploy(t, spread_placement(t));
  inject_values(100, millis(5));

  // Pick destinations that differ from the current placement so both
  // migrations are real (and the second queues behind the first).
  const SliceId w0 = engine->slice_id("work", 0);
  const SliceId w1 = engine->slice_id("work", 1);
  const HostId dst0 = engine->slice_host(w0) == hosts[2]->id()
                          ? hosts[0]->id()
                          : hosts[2]->id();
  const HostId dst1 = engine->slice_host(w1) == hosts[0]->id()
                          ? hosts[2]->id()
                          : hosts[0]->id();
  int completed = 0;
  engine->migrate(w0, dst0, [&](const MigrationReport&) { ++completed; });
  engine->migrate(w1, dst1, [&](const MigrationReport&) { ++completed; });
  EXPECT_EQ(engine->pending_migrations(), 2u);
  sim.run_until(sim.now() + seconds(5));
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(engine->pending_migrations(), 0u);
  EXPECT_EQ(engine->slice_host(w0), dst0);
  EXPECT_EQ(engine->slice_host(w1), dst1);
  ASSERT_EQ(collected->size(), 100u);
}

TEST_F(EngineTest, MigrateToSameHostIsImmediate) {
  make_engine(2);
  const Topology t = test_topology(2);
  engine->deploy(t, spread_placement(t));
  const SliceId slice = engine->slice_id("work", 0);
  const HostId host = engine->slice_host(slice);
  bool done = false;
  engine->migrate(slice, host, [&](const MigrationReport& r) {
    done = true;
    EXPECT_EQ(r.total_duration(), SimDuration::zero());
  });
  EXPECT_TRUE(done);
}

TEST_F(EngineTest, MigrationValidation) {
  make_engine(2);
  const Topology t = test_topology(2);
  engine->deploy(t, spread_placement(t));
  // Invalid requests are rejected through the callback, not by throwing.
  std::vector<MigrationOutcome> outcomes;
  engine->migrate(SliceId{12345}, hosts[0]->id(),
                  [&](const MigrationReport& r) {
                    outcomes.push_back(r.outcome);
                  });
  engine->migrate(engine->slice_id("work", 0), HostId{777},
                  [&](const MigrationReport& r) {
                    outcomes.push_back(r.outcome);
                  });
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], MigrationOutcome::kRejected);
  EXPECT_EQ(outcomes[1], MigrationOutcome::kRejected);
  EXPECT_EQ(engine->pending_migrations(), 0u);

  // The engine stays fully usable: a valid migration still completes.
  const SliceId slice = engine->slice_id("work", 0);
  const HostId dst = engine->slice_host(slice) == hosts[0]->id()
                         ? hosts[1]->id()
                         : hosts[0]->id();
  std::optional<MigrationReport> report;
  engine->migrate(slice, dst, [&](const MigrationReport& r) { report = r; });
  sim.run_until(sim.now() + seconds(5));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->outcome, MigrationOutcome::kCompleted);
  EXPECT_EQ(engine->slice_host(slice), dst);
}

TEST_F(EngineTest, InjectionAfterMigrationFollowsSlice) {
  make_engine(3);
  Topology t;
  t.operators.push_back(OperatorSpec{"solo", 1, [this](std::size_t index) {
    return std::make_unique<CollectHandler>(collected, index);
  }});
  engine->deploy(t, {{"solo", {hosts[0]->id()}}});
  const SliceId slice = engine->slice_id("solo", 0);
  engine->inject("solo", 0, std::make_shared<NumPayload>(1));
  sim.run_until(sim.now() + millis(100));
  engine->migrate(slice, hosts[1]->id(), nullptr);
  sim.run_until(sim.now() + seconds(3));
  engine->inject("solo", 0, std::make_shared<NumPayload>(2));
  sim.run_until(sim.now() + millis(100));
  ASSERT_EQ(collected->size(), 2u);
  EXPECT_EQ((*collected)[1].value, 2u);
}

TEST_F(EngineTest, ProbesArriveAtTarget) {
  make_engine(2, [] {
    EngineConfig c;
    c.probe_interval = millis(500);
    return c;
  }());
  const Topology t = test_topology(2);
  engine->deploy(t, spread_placement(t));

  std::vector<cluster::HostProbe> probes;
  const net::Endpoint target = net.new_endpoint();
  net.bind(target, HostId{999}, [&](const net::Delivery& d) {
    const auto* msg = dynamic_cast<const ProbeMessage*>(d.message.get());
    ASSERT_NE(msg, nullptr);
    probes.push_back(msg->probe);
  });
  engine->enable_probes(target);
  inject_values(100, millis(5));
  sim.run_until(sim.now() + seconds(2));
  // 2 hosts x ~4 rounds.
  EXPECT_GE(probes.size(), 6u);
  bool saw_slice_cpu = false;
  for (const auto& probe : probes) {
    EXPECT_GE(probe.cpu, 0.0);
    EXPECT_LE(probe.cpu, 1.0);
    for (const auto& sp : probe.slices) {
      if (sp.cpu > 0.0) saw_slice_cpu = true;
    }
  }
  EXPECT_TRUE(saw_slice_cpu);
}

TEST_F(EngineTest, RemoveHostRequiresEmpty) {
  make_engine(3);
  const Topology t = test_topology(2);
  auto placement = spread_placement(t);
  engine->deploy(t, placement);
  // Host 3 may or may not hold slices depending on spreading; find one with
  // slices and one without by moving everything off host 3 first.
  for (SliceId slice : engine->slices_on(hosts[2]->id())) {
    engine->migrate(slice, hosts[0]->id(), nullptr);
  }
  sim.run_until(sim.now() + seconds(10));
  EXPECT_TRUE(engine->slices_on(hosts[2]->id()).empty());
  engine->remove_host(hosts[2]->id());
  EXPECT_FALSE(engine->has_host(hosts[2]->id()));
  EXPECT_THROW(engine->remove_host(hosts[0]->id()), std::logic_error);
}

// Property sweep: random migration storms must never lose or duplicate an
// event, and migrated state must stay exact, across seeds.
class EngineStormTest : public EngineTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(EngineStormTest, ExactlyOnceUnderRandomMigrations) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  make_engine(4);
  const Topology t = test_topology(4, false, /*state_pad=*/2000);
  engine->deploy(t, spread_placement(t));

  constexpr std::uint64_t kValues = 600;
  inject_values(kValues, millis(10));  // 6 s of traffic

  // Six random migrations of random work slices at random times.
  int completed_migrations = 0;
  for (int m = 0; m < 6; ++m) {
    const auto at = millis(200 + rng.next_below(6000));
    const std::size_t slice_index = rng.next_below(4);
    const std::size_t host_index = rng.next_below(hosts.size());
    sim.schedule_at(SimTime{at}, [this, slice_index, host_index,
                                  &completed_migrations] {
      const SliceId slice = engine->slice_id("work", slice_index);
      HostId dst = hosts[host_index]->id();
      if (engine->slice_host(slice) == dst) {
        dst = hosts[(host_index + 1) % hosts.size()]->id();
      }
      engine->migrate(slice, dst, [&completed_migrations](
                                      const MigrationReport&) {
        ++completed_migrations;
      });
    });
  }
  sim.run_until(sim.now() + seconds(40));

  EXPECT_EQ(completed_migrations, 6);
  ASSERT_EQ(collected->size(), kValues);
  std::map<std::uint64_t, int> seen;
  for (const Record& r : *collected) ++seen[r.value];
  for (std::uint64_t v = 1; v <= kValues; ++v) {
    ASSERT_EQ(seen[v], 1) << "value " << v << " seed " << GetParam();
  }
  // State integrity: per-slice sums add up to the full series.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 4; ++i) total += work_handler(i).sum_;
  EXPECT_EQ(total, kValues * (kValues + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStormTest, ::testing::Range(1, 9));

TEST_F(EngineTest, DuplicatesDroppedCounterStaysZeroWithoutMigration) {
  make_engine(2);
  const Topology t = test_topology(2);
  engine->deploy(t, spread_placement(t));
  inject_values(50, millis(2));
  sim.run_until(sim.now() + seconds(1));
  for (std::size_t i = 0; i < 2; ++i) {
    auto* rt = engine->slice_runtime(engine->slice_id("work", i));
    EXPECT_EQ(rt->duplicates_dropped(), 0u);
    EXPECT_GT(rt->events_processed(), 0u);
  }
}

}  // namespace
}  // namespace esh::engine
