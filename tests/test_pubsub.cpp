#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "cluster/host.hpp"
#include "engine/engine.hpp"
#include "filter/interval_index.hpp"
#include "filter/matcher.hpp"
#include "net/network.hpp"
#include "pubsub/streamhub.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/oracle.hpp"

namespace esh::pubsub {
namespace {

// Small-scale fixture running the whole pub/sub pipeline with the REAL ASPE
// scheme: full cryptographic matching end to end.
class StreamHubAspeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSubs = 300;
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<StreamHub> hub;
  workload::WorkloadParams wl_params{4, 0.05, 2024};
  std::unique_ptr<workload::EncryptedWorkload> workload;
  std::unique_ptr<workload::PlainWorkload> plain;  // ground truth twin

  void SetUp() override {
    engine::EngineConfig config;
    config.flush_interval = millis(10);
    config.control_tick = millis(5);
    engine = std::make_unique<engine::Engine>(sim, net, HostId{99}, config, 3);
    for (std::size_t i = 0; i < 4; ++i) {
      hosts.push_back(std::make_unique<cluster::Host>(
          sim, HostId{i + 1}, cluster::HostSpec{}));
      engine->add_host(*hosts.back());
    }
    workload = std::make_unique<workload::EncryptedWorkload>(wl_params);
    plain = std::make_unique<workload::PlainWorkload>(wl_params);

    StreamHubParams params;
    params.source_slices = 2;
    params.ap_slices = 2;
    params.m_slices = 4;
    params.ep_slices = 2;
    params.sink_slices = 2;
    params.matcher_factory = [](std::size_t) {
      return std::make_unique<filter::AspeMatcher>();
    };
    hub = std::make_unique<StreamHub>(*engine, params);
    HostAssignment assignment;
    std::vector<HostId> ids;
    for (const auto& h : hosts) ids.push_back(h->id());
    for (const char* op : {"source", "AP", "M", "EP", "sink"}) {
      assignment[op] = ids;
    }
    hub->deploy(assignment);
  }

  void store_all() {
    for (std::uint64_t i = 0; i < kSubs; ++i) {
      hub->subscribe(filter::AnySubscription{workload->subscription(i)});
    }
    sim.run_until(sim.now() + seconds(5));
    ASSERT_EQ(hub->stored_subscriptions(), kSubs);
  }

  std::vector<filter::Publication> pending_pubs_;
};

TEST_F(StreamHubAspeTest, SubscriptionsPartitionAcrossMSlices) {
  store_all();
  const auto& cfg = engine->static_config();
  const auto& m_op = cfg.operators.at(cfg.index_of("M"));
  std::size_t total = 0;
  for (SliceId slice : m_op.slices) {
    auto* rt = engine->slice_runtime(slice);
    const auto& handler = dynamic_cast<const MHandler&>(rt->handler());
    const std::size_t count = handler.matcher().subscription_count();
    // Modulo-hash partitioning is near-uniform here by construction.
    EXPECT_EQ(count, kSubs / 4);
    total += count;
  }
  EXPECT_EQ(total, kSubs);
}

TEST_F(StreamHubAspeTest, NotificationsMatchPlaintextGroundTruth) {
  store_all();
  // Keep plain subscriptions for ground truth.
  std::vector<filter::Subscription> subs;
  for (std::uint64_t i = 0; i < kSubs; ++i) subs.push_back(plain->subscription(i));

  std::uint64_t expected_notifications = 0;
  const int pubs = 30;
  for (int p = 0; p < pubs; ++p) {
    filter::Publication plain_pub;
    const auto enc = workload->next_publication(&plain_pub);
    for (const auto& s : subs) {
      if (s.matches(plain_pub)) ++expected_notifications;
    }
    hub->publish(filter::AnyPublication{enc});
    sim.run_until(sim.now() + millis(200));
  }
  sim.run_until(sim.now() + seconds(3));

  auto& collector = *hub->collector();
  EXPECT_EQ(collector.publications_completed(), static_cast<std::uint64_t>(pubs));
  EXPECT_EQ(collector.notifications(), expected_notifications);
  EXPECT_GT(expected_notifications, 0u);
}

TEST_F(StreamHubAspeTest, DelaysAreMeasuredAndPositive) {
  store_all();
  for (int p = 0; p < 10; ++p) {
    hub->publish(filter::AnyPublication{workload->next_publication()});
  }
  sim.run_until(sim.now() + seconds(3));
  const auto& delays = hub->collector()->delays_ms();
  ASSERT_EQ(delays.count(), 10u);
  EXPECT_GT(delays.percentile(0), 0.0);
  EXPECT_LT(delays.percentile(100), 1000.0);
}

TEST_F(StreamHubAspeTest, EpAwaitsAllMSlices) {
  store_all();
  hub->publish(filter::AnyPublication{workload->next_publication()});
  // Before any flush interval elapses nothing can have been notified.
  sim.run_until(sim.now() + millis(1));
  EXPECT_EQ(hub->collector()->publications_completed(), 0u);
  sim.run_until(sim.now() + seconds(3));
  EXPECT_EQ(hub->collector()->publications_completed(), 1u);
  // All EP pending tables drained.
  for (SliceId slice : hub->slices_of("EP")) {
    auto* rt = engine->slice_runtime(slice);
    const auto& ep = dynamic_cast<const EpHandler&>(rt->handler());
    EXPECT_EQ(ep.pending_publications(), 0u);
  }
}

TEST_F(StreamHubAspeTest, MMigrationUnderLoadPreservesSemantics) {
  store_all();
  std::vector<filter::Subscription> subs;
  for (std::uint64_t i = 0; i < kSubs; ++i) subs.push_back(plain->subscription(i));

  // Publish continuously; migrate one M slice in the middle.
  std::uint64_t expected_notifications = 0;
  const int pubs = 40;
  for (int p = 0; p < pubs; ++p) {
    sim.schedule_at(sim.now() + millis(50 * (p + 1)), [this, p] {
      filter::Publication plain_pub;
      const auto enc = workload->next_publication(&plain_pub);
      pending_pubs_.push_back(plain_pub);
      hub->publish(filter::AnyPublication{enc});
    });
  }
  sim.run_until(sim.now() + millis(500));
  const SliceId m0 = hub->slices_of("M")[0];
  const HostId dst = hosts[(3) % hosts.size()]->id() == engine->slice_host(m0)
                         ? hosts[0]->id()
                         : hosts[3]->id();
  std::optional<engine::MigrationReport> report;
  engine->migrate(m0, dst, [&](const engine::MigrationReport& r) { report = r; });
  sim.run_until(sim.now() + seconds(10));

  for (const auto& plain_pub : pending_pubs_) {
    for (const auto& s : subs) {
      if (s.matches(plain_pub)) ++expected_notifications;
    }
  }
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(hub->collector()->publications_completed(),
            static_cast<std::uint64_t>(pubs));
  EXPECT_EQ(hub->collector()->notifications(), expected_notifications);
}

TEST_F(StreamHubAspeTest, UnsubscribeStopsNotifications) {
  store_all();
  // Remove every stored subscription.
  for (std::uint64_t i = 0; i < kSubs; ++i) {
    hub->unsubscribe(SubscriptionId{i + 1});
  }
  sim.run_until(sim.now() + seconds(3));
  EXPECT_EQ(hub->stored_subscriptions(), 0u);

  hub->publish(filter::AnyPublication{workload->next_publication()});
  sim.run_until(sim.now() + seconds(3));
  EXPECT_EQ(hub->collector()->publications_completed(), 1u);
  EXPECT_EQ(hub->collector()->notifications(), 0u);
}

// ---- oracle-backed path -------------------------------------------------------

TEST(OracleStreamHub, NotificationCountsFollowMatchingRate) {
  sim::Simulator sim;
  net::Network net{sim};
  engine::EngineConfig config;
  config.flush_interval = millis(10);
  auto engine =
      std::make_unique<engine::Engine>(sim, net, HostId{99}, config, 4);
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  for (std::size_t i = 0; i < 4; ++i) {
    hosts.push_back(std::make_unique<cluster::Host>(sim, HostId{i + 1},
                                                    cluster::HostSpec{}));
    engine->add_host(*hosts.back());
  }
  workload::OracleParams params;
  params.total_subscriptions = 5000;
  params.matching_rate = 0.02;
  params.m_slices = 4;
  workload::OracleWorkload workload{params};

  StreamHubParams hub_params;
  hub_params.source_slices = 2;
  hub_params.ap_slices = 2;
  hub_params.m_slices = 4;
  hub_params.ep_slices = 2;
  hub_params.sink_slices = 2;
  hub_params.matcher_factory = [&](std::size_t index) {
    return workload.make_matcher(cluster::CostModel{}, index);
  };
  StreamHub hub{*engine, hub_params};
  HostAssignment assignment;
  std::vector<HostId> ids;
  for (const auto& h : hosts) ids.push_back(h->id());
  for (const char* op : {"source", "AP", "M", "EP", "sink"}) {
    assignment[op] = ids;
  }
  hub.deploy(assignment);

  for (std::uint64_t i = 0; i < params.total_subscriptions; ++i) {
    hub.subscribe(filter::AnySubscription{workload.subscription(i)});
  }
  sim.run_until(sim.now() + seconds(10));
  ASSERT_EQ(hub.stored_subscriptions(), params.total_subscriptions);

  const int pubs = 50;
  for (int p = 0; p < pubs; ++p) {
    sim.schedule_at(sim.now() + millis(20 * (p + 1)),
                    [&] { hub.publish(workload.next_publication()); });
  }
  sim.run_until(sim.now() + seconds(5));
  EXPECT_EQ(hub.collector()->publications_completed(),
            static_cast<std::uint64_t>(pubs));
  const double avg_notifications =
      static_cast<double>(hub.collector()->notifications()) / pubs;
  // 5000 subs at 2 % -> ~100 notifications per publication.
  EXPECT_NEAR(avg_notifications, 100.0, 10.0);
}

// Multi-scheme deployment (paper §III): a plain-text M operator running
// next to an encrypted one; AP routes by scheme, EP combines per scheme.
TEST(MultiScheme, PlainAndEncryptedOperatorsCoexist) {
  sim::Simulator sim;
  net::Network net{sim};
  engine::EngineConfig config;
  config.flush_interval = millis(10);
  engine::Engine engine{sim, net, HostId{99}, config, 6};
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  for (std::size_t i = 0; i < 3; ++i) {
    hosts.push_back(std::make_unique<cluster::Host>(sim, HostId{i + 1},
                                                    cluster::HostSpec{}));
    engine.add_host(*hosts.back());
  }

  workload::WorkloadParams wl{4, 0.1, 55};
  workload::EncryptedWorkload enc_client{wl};
  workload::PlainWorkload plain_gen{{4, 0.1, 56}};

  StreamHubParams params;
  params.source_slices = 1;
  params.ap_slices = 2;
  params.ep_slices = 2;
  params.sink_slices = 1;
  MatcherSchemeSpec plain_scheme;
  plain_scheme.op_name = "M-plain";
  plain_scheme.slices = 2;
  plain_scheme.encrypted = false;
  plain_scheme.factory = [](std::size_t) {
    return std::make_unique<filter::CountingIndexMatcher>();
  };
  MatcherSchemeSpec enc_scheme;
  enc_scheme.op_name = "M-aspe";
  enc_scheme.slices = 4;
  enc_scheme.encrypted = true;
  enc_scheme.factory = [](std::size_t) {
    return std::make_unique<filter::AspeMatcher>();
  };
  params.schemes = {plain_scheme, enc_scheme};
  StreamHub hub{engine, params};

  std::vector<HostId> ids;
  for (const auto& h : hosts) ids.push_back(h->id());
  HostAssignment assignment;
  for (const char* op : {"source", "AP", "M-plain", "M-aspe", "EP", "sink"}) {
    assignment[op] = ids;
  }
  hub.deploy(assignment);

  // 100 plain + 100 encrypted subscriptions (distinct id spaces).
  std::vector<filter::Subscription> plain_subs, enc_plain_twins;
  workload::PlainWorkload enc_truth{wl};
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto p = plain_gen.subscription(i);
    p.id = SubscriptionId{10'000 + i};
    plain_subs.push_back(p);
    hub.subscribe(filter::AnySubscription{p});
    enc_plain_twins.push_back(enc_truth.subscription(i));
    hub.subscribe(filter::AnySubscription{enc_client.subscription(i)});
  }
  sim.run_until(sim.now() + seconds(5));
  ASSERT_EQ(hub.stored_subscriptions(), 200u);

  // Publish 10 plain + 10 encrypted; track ground truth separately.
  std::uint64_t expected = 0;
  for (int p = 0; p < 10; ++p) {
    auto plain_pub = plain_gen.next_publication();
    plain_pub.id = PublicationId{50'000 + static_cast<std::uint64_t>(p)};
    for (const auto& s : plain_subs) {
      if (s.matches(plain_pub)) ++expected;
    }
    hub.publish(filter::AnyPublication{plain_pub});

    filter::Publication enc_plain;
    const auto epub = enc_client.next_publication(&enc_plain);
    for (const auto& s : enc_plain_twins) {
      if (s.matches(enc_plain)) ++expected;
    }
    hub.publish(filter::AnyPublication{epub});
    sim.run_until(sim.now() + millis(100));
  }
  sim.run_until(sim.now() + seconds(3));

  EXPECT_EQ(hub.collector()->publications_completed(), 20u);
  EXPECT_EQ(hub.collector()->notifications(), expected);
  EXPECT_GT(expected, 0u);
}

// The interval-index backend behind the same scheme-selection config: M
// slices built by a MatcherSchemeSpec factory run the sublinear matcher
// end-to-end and must notify exactly the ground-truth subscriber set.
TEST(MultiScheme, IntervalIndexSchemeRunsEndToEnd) {
  sim::Simulator sim;
  net::Network net{sim};
  engine::EngineConfig config;
  config.flush_interval = millis(10);
  engine::Engine engine{sim, net, HostId{99}, config, 4};
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  for (std::size_t i = 0; i < 3; ++i) {
    hosts.push_back(std::make_unique<cluster::Host>(sim, HostId{i + 1},
                                                    cluster::HostSpec{}));
    engine.add_host(*hosts.back());
  }

  workload::PlainWorkload gen{{4, 0.1, 57}};
  StreamHubParams params;
  params.source_slices = 1;
  params.ap_slices = 2;
  params.ep_slices = 2;
  params.sink_slices = 1;
  MatcherSchemeSpec scheme;
  scheme.op_name = "M-interval";
  scheme.slices = 3;
  scheme.encrypted = false;
  scheme.factory = [](std::size_t) {
    return std::make_unique<filter::IntervalIndexMatcher>();
  };
  params.schemes = {scheme};
  StreamHub hub{engine, params};

  std::vector<HostId> ids;
  for (const auto& h : hosts) ids.push_back(h->id());
  HostAssignment assignment;
  for (const char* op : {"source", "AP", "M-interval", "EP", "sink"}) {
    assignment[op] = ids;
  }
  hub.deploy(assignment);

  std::vector<filter::Subscription> subs;
  for (std::uint64_t i = 0; i < 150; ++i) {
    subs.push_back(gen.subscription(i));
    hub.subscribe(filter::AnySubscription{subs.back()});
  }
  sim.run_until(sim.now() + seconds(5));
  ASSERT_EQ(hub.stored_subscriptions(), 150u);

  std::uint64_t expected = 0;
  const int pubs = 15;
  for (int p = 0; p < pubs; ++p) {
    const auto pub = gen.next_publication();
    for (const auto& s : subs) {
      if (s.matches(pub)) ++expected;
    }
    hub.publish(filter::AnyPublication{pub});
    sim.run_until(sim.now() + millis(100));
  }
  sim.run_until(sim.now() + seconds(3));

  EXPECT_EQ(hub.collector()->publications_completed(),
            static_cast<std::uint64_t>(pubs));
  EXPECT_EQ(hub.collector()->notifications(), expected);
  EXPECT_GT(expected, 0u);
}

// Full-pipeline determinism under the matching worker pool: the identical
// seeded deployment and event stream must produce the same notifications,
// the same delay distribution and the same final simulated timestamp at
// every match_threads setting -- the pool changes wall-clock only.
TEST(StreamHubParallelMatching, SimulatedResultsIndependentOfThreads) {
  struct Result {
    std::uint64_t notifications;
    std::uint64_t completed;
    double p50_ms;
    double p99_ms;
    SimTime last;
  };
  auto run_pipeline = [](std::size_t match_threads) {
    sim::Simulator sim;
    net::Network net{sim};
    engine::EngineConfig config;
    config.flush_interval = millis(10);
    config.control_tick = millis(5);
    config.match_threads = match_threads;
    engine::Engine engine{sim, net, HostId{99}, config, 3};
    std::vector<std::unique_ptr<cluster::Host>> hosts;
    for (std::size_t i = 0; i < 3; ++i) {
      hosts.push_back(std::make_unique<cluster::Host>(sim, HostId{i + 1},
                                                      cluster::HostSpec{}));
      engine.add_host(*hosts.back());
    }
    StreamHubParams params;
    params.source_slices = 1;
    params.ap_slices = 2;
    params.m_slices = 2;
    params.ep_slices = 2;
    params.sink_slices = 1;
    params.matcher_factory = [](std::size_t) {
      return std::make_unique<filter::AspeMatcher>();
    };
    StreamHub hub{engine, params};
    std::vector<HostId> ids;
    for (const auto& h : hosts) ids.push_back(h->id());
    HostAssignment assignment;
    for (const char* op : {"source", "AP", "M", "EP", "sink"}) {
      assignment[op] = ids;
    }
    hub.deploy(assignment);

    // 3000 subscriptions so each M slice holds >1024 slots and the brute
    // tiling (and ASPE row ranges) genuinely split across workers.
    workload::EncryptedWorkload workload{{4, 0.05, 2024}};
    for (std::uint64_t i = 0; i < 3000; ++i) {
      hub.subscribe(filter::AnySubscription{workload.subscription(i)});
    }
    sim.run_until(sim.now() + seconds(5));
    for (int p = 0; p < 20; ++p) {
      hub.publish(filter::AnyPublication{workload.next_publication()});
      sim.run_until(sim.now() + millis(50));
    }
    sim.run_until(sim.now() + seconds(3));
    const auto& collector = *hub.collector();
    return Result{collector.notifications(),
                  collector.publications_completed(),
                  collector.delays_ms().percentile(50),
                  collector.delays_ms().percentile(99),
                  collector.last_completion()};
  };

  const Result scalar = run_pipeline(1);
  EXPECT_EQ(scalar.completed, 20u);
  EXPECT_GT(scalar.notifications, 0u);
  for (const std::size_t threads : {2u, 4u}) {
    const Result pooled = run_pipeline(threads);
    EXPECT_EQ(pooled.notifications, scalar.notifications)
        << threads << " threads";
    EXPECT_EQ(pooled.completed, scalar.completed) << threads << " threads";
    EXPECT_EQ(pooled.p50_ms, scalar.p50_ms) << threads << " threads";
    EXPECT_EQ(pooled.p99_ms, scalar.p99_ms) << threads << " threads";
    EXPECT_EQ(pooled.last, scalar.last) << threads << " threads";
  }
}

TEST(StreamHubValidation, RequiresMatcherFactory) {
  sim::Simulator sim;
  net::Network net{sim};
  engine::Engine engine{sim, net, HostId{1}, {}, 1};
  StreamHubParams params;  // no matcher factory
  EXPECT_THROW((StreamHub{engine, params}), std::invalid_argument);
}

TEST(SpreadHelper, RoundRobin) {
  const std::vector<HostId> hosts{HostId{1}, HostId{2}};
  const auto spread4 = spread(hosts, 4);
  EXPECT_EQ(spread4,
            (std::vector<HostId>{HostId{1}, HostId{2}, HostId{1}, HostId{2}}));
  EXPECT_THROW(spread({}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace esh::pubsub
