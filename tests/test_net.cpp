#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace esh::net {
namespace {

struct TestMessage final : Message {
  explicit TestMessage(int v) : value(v) {}
  int value;
};

MessagePtr msg(int v) { return std::make_shared<TestMessage>(v); }

int value_of(const Delivery& d) {
  return dynamic_cast<const TestMessage&>(*d.message).value;
}

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  NetworkConfig config;
  std::unique_ptr<Network> net;
  HostId h1{1}, h2{2};

  void SetUp() override { net = std::make_unique<Network>(sim, config); }

  Endpoint bind_on(HostId host, std::vector<Delivery>* sink) {
    const Endpoint ep = net->new_endpoint();
    net->bind(ep, host, [sink](const Delivery& d) { sink->push_back(d); });
    return ep;
  }
};

TEST_F(NetworkTest, DeliversBetweenHostsWithLatency) {
  std::vector<Delivery> in_b;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in_b);

  net->send(src, dst, msg(42), 100);
  EXPECT_TRUE(in_b.empty());
  sim.run();
  ASSERT_EQ(in_b.size(), 1u);
  EXPECT_EQ(value_of(in_b[0]), 42);
  // latency + serialization of (100 + overhead) bytes at 125 B/us.
  const auto expected = config.latency + micros((100 + 64) / 125);
  EXPECT_EQ(sim.now(), expected);
}

TEST_F(NetworkTest, LocalDeliveryUsesLocalLatency) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h1, &in);
  net->send(src, dst, msg(1), 10);
  sim.run();
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(sim.now(), config.local_latency);
}

TEST_F(NetworkTest, FifoPerSourceHost) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  for (int i = 0; i < 10; ++i) net->send(src, dst, msg(i), 50'000);
  sim.run();
  ASSERT_EQ(in.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(value_of(in[i]), i);
}

TEST_F(NetworkTest, NicSerializationDelaysLargeTransfers) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  // 12.5 MB at 125 B/us ~= 100 ms of NIC time.
  net->send(src, dst, msg(0), 12'500'000);
  sim.run();
  ASSERT_EQ(in.size(), 1u);
  EXPECT_GE(sim.now(), millis(100));
  EXPECT_LT(sim.now(), millis(102));
}

TEST_F(NetworkTest, UnboundDestinationDrops) {
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint ghost = net->new_endpoint();
  net->send(src, ghost, msg(1), 10);
  sim.run();
  EXPECT_EQ(net->stats().messages_dropped, 1u);
  EXPECT_EQ(net->stats().messages_delivered, 0u);
}

TEST_F(NetworkTest, RebindMovesEndpointAndDropsInFlight) {
  std::vector<Delivery> old_in, new_in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = net->new_endpoint();
  net->bind(dst, h2, [&](const Delivery& d) { old_in.push_back(d); });

  net->send(src, dst, msg(1), 10);  // in flight toward h2
  net->rebind(dst, h1, [&](const Delivery& d) { new_in.push_back(d); });
  net->send(src, dst, msg(2), 10);  // routed to the new location
  sim.run();
  EXPECT_TRUE(old_in.empty());
  ASSERT_EQ(new_in.size(), 1u);
  EXPECT_EQ(value_of(new_in[0]), 2);
  EXPECT_EQ(net->stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, HostDownDropsTraffic) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->set_host_down(h2, true);
  net->send(src, dst, msg(1), 10);
  sim.run();
  EXPECT_TRUE(in.empty());
  net->set_host_down(h2, false);
  net->send(src, dst, msg(2), 10);
  sim.run();
  ASSERT_EQ(in.size(), 1u);
}

TEST_F(NetworkTest, DownDestinationAtDeliveryTimeDrops) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->send(src, dst, msg(1), 10);
  net->set_host_down(h2, true);  // goes down while the message flies
  sim.run();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(net->stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, BindErrors) {
  const Endpoint ep = net->new_endpoint();
  net->bind(ep, h1, [](const Delivery&) {});
  EXPECT_THROW(net->bind(ep, h2, [](const Delivery&) {}), std::logic_error);
  net->unbind(ep);
  EXPECT_THROW(net->unbind(ep), std::logic_error);
  EXPECT_THROW(net->rebind(ep, h1, [](const Delivery&) {}), std::logic_error);
  EXPECT_THROW(static_cast<void>(net->host_of(ep)), std::logic_error);
}

TEST_F(NetworkTest, LossInjectionDiscardsAndCounts) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);

  net->set_loss(0.3);
  constexpr std::uint64_t kSends = 1000;
  for (std::uint64_t i = 0; i < kSends; ++i) net->send(src, dst, msg(1), 10);
  sim.run();

  const NetworkStats& stats = net->stats();
  EXPECT_GT(stats.messages_lost, 200u);
  EXPECT_LT(stats.messages_lost, 400u);
  EXPECT_EQ(stats.messages_dropped, 0u);  // loss is a distinct counter
  EXPECT_EQ(stats.messages_sent,
            stats.messages_delivered + stats.messages_lost);
  EXPECT_EQ(in.size(), stats.messages_delivered);

  net->set_loss(0.0);
  in.clear();
  net->send(src, dst, msg(2), 10);
  sim.run();
  EXPECT_EQ(in.size(), 1u);
}

TEST_F(NetworkTest, LossIsSeededAndDeterministic) {
  auto run_once = [this] {
    Network fresh{sim, config};
    const Endpoint src = fresh.new_endpoint();
    fresh.bind(src, h1, [](const Delivery&) {});
    const Endpoint dst = fresh.new_endpoint();
    fresh.bind(dst, h2, [](const Delivery&) {});
    fresh.set_loss(0.25);
    for (int i = 0; i < 500; ++i) fresh.send(src, dst, msg(i), 10);
    return fresh.stats().messages_lost;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(NetworkTest, PerHostLossOnlyAffectsThatDestination) {
  HostId h3{3};
  std::vector<Delivery> in_b, in_c;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint to_b = bind_on(h2, &in_b);
  const Endpoint to_c = bind_on(h3, &in_c);

  net->set_host_loss(h2, 1.0);
  for (int i = 0; i < 50; ++i) {
    net->send(src, to_b, msg(i), 10);
    net->send(src, to_c, msg(i), 10);
  }
  sim.run();
  EXPECT_TRUE(in_b.empty());
  EXPECT_EQ(in_c.size(), 50u);
  EXPECT_EQ(net->stats().messages_lost, 50u);

  // The per-host knob overrides the global one, and clears cleanly.
  net->set_loss(1.0);
  net->set_host_loss(h2, 0.0);
  net->send(src, to_b, msg(99), 10);
  net->send(src, to_c, msg(99), 10);
  sim.run();
  EXPECT_EQ(in_b.size(), 1u);
  EXPECT_EQ(in_c.size(), 50u);

  net->clear_host_loss(h2);
  net->send(src, to_b, msg(100), 10);
  sim.run();
  EXPECT_EQ(in_b.size(), 1u);  // global loss applies again

  EXPECT_THROW(net->set_loss(1.5), std::invalid_argument);
  EXPECT_THROW(net->set_host_loss(h2, -0.1), std::invalid_argument);
}

TEST_F(NetworkTest, DownHostDropsAreNotCountedAsLoss) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->set_loss(1.0);
  net->set_host_down(h2, true);
  net->send(src, dst, msg(1), 10);
  sim.run();
  // The down-host check wins: the message is a drop, not a loss.
  EXPECT_EQ(net->stats().messages_dropped, 1u);
  EXPECT_EQ(net->stats().messages_lost, 0u);
}

TEST_F(NetworkTest, StatsCountBytes) {
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  std::vector<Delivery> in;
  const Endpoint dst = bind_on(h2, &in);
  net->send(src, dst, msg(1), 100);
  sim.run();
  EXPECT_EQ(net->stats().messages_sent, 1u);
  EXPECT_EQ(net->stats().bytes_sent, 100u + config.overhead_bytes);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].bytes, 100u + config.overhead_bytes);
  EXPECT_EQ(in[0].from, src);
}

}  // namespace
}  // namespace esh::net
