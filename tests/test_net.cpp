#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace esh::net {
namespace {

struct TestMessage final : Message {
  explicit TestMessage(int v) : value(v) {}
  int value;
};

MessagePtr msg(int v) { return std::make_shared<TestMessage>(v); }

int value_of(const Delivery& d) {
  return dynamic_cast<const TestMessage&>(*d.message).value;
}

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  NetworkConfig config;
  std::unique_ptr<Network> net;
  HostId h1{1}, h2{2};

  void SetUp() override { net = std::make_unique<Network>(sim, config); }

  Endpoint bind_on(HostId host, std::vector<Delivery>* sink) {
    const Endpoint ep = net->new_endpoint();
    net->bind(ep, host, [sink](const Delivery& d) { sink->push_back(d); });
    return ep;
  }
};

TEST_F(NetworkTest, DeliversBetweenHostsWithLatency) {
  std::vector<Delivery> in_b;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in_b);

  net->send(src, dst, msg(42), 100);
  EXPECT_TRUE(in_b.empty());
  sim.run();
  ASSERT_EQ(in_b.size(), 1u);
  EXPECT_EQ(value_of(in_b[0]), 42);
  // latency + serialization of (100 + overhead) bytes at 125 B/us.
  const auto expected = config.latency + micros((100 + 64) / 125);
  EXPECT_EQ(sim.now(), expected);
}

TEST_F(NetworkTest, LocalDeliveryUsesLocalLatency) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h1, &in);
  net->send(src, dst, msg(1), 10);
  sim.run();
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(sim.now(), config.local_latency);
}

TEST_F(NetworkTest, FifoPerSourceHost) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  for (int i = 0; i < 10; ++i) net->send(src, dst, msg(i), 50'000);
  sim.run();
  ASSERT_EQ(in.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(value_of(in[i]), i);
}

TEST_F(NetworkTest, NicSerializationDelaysLargeTransfers) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  // 12.5 MB at 125 B/us ~= 100 ms of NIC time.
  net->send(src, dst, msg(0), 12'500'000);
  sim.run();
  ASSERT_EQ(in.size(), 1u);
  EXPECT_GE(sim.now(), millis(100));
  EXPECT_LT(sim.now(), millis(102));
}

TEST_F(NetworkTest, UnboundDestinationDrops) {
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint ghost = net->new_endpoint();
  net->send(src, ghost, msg(1), 10);
  sim.run();
  EXPECT_EQ(net->stats().messages_dropped, 1u);
  EXPECT_EQ(net->stats().messages_delivered, 0u);
}

TEST_F(NetworkTest, RebindMovesEndpointAndDropsInFlight) {
  std::vector<Delivery> old_in, new_in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = net->new_endpoint();
  net->bind(dst, h2, [&](const Delivery& d) { old_in.push_back(d); });

  net->send(src, dst, msg(1), 10);  // in flight toward h2
  net->rebind(dst, h1, [&](const Delivery& d) { new_in.push_back(d); });
  net->send(src, dst, msg(2), 10);  // routed to the new location
  sim.run();
  EXPECT_TRUE(old_in.empty());
  ASSERT_EQ(new_in.size(), 1u);
  EXPECT_EQ(value_of(new_in[0]), 2);
  EXPECT_EQ(net->stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, HostDownDropsTraffic) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->set_host_down(h2, true);
  net->send(src, dst, msg(1), 10);
  sim.run();
  EXPECT_TRUE(in.empty());
  net->set_host_down(h2, false);
  net->send(src, dst, msg(2), 10);
  sim.run();
  ASSERT_EQ(in.size(), 1u);
}

TEST_F(NetworkTest, DownDestinationAtDeliveryTimeDrops) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->send(src, dst, msg(1), 10);
  net->set_host_down(h2, true);  // goes down while the message flies
  sim.run();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(net->stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, BindErrors) {
  const Endpoint ep = net->new_endpoint();
  net->bind(ep, h1, [](const Delivery&) {});
  EXPECT_THROW(net->bind(ep, h2, [](const Delivery&) {}), std::logic_error);
  net->unbind(ep);
  EXPECT_THROW(net->unbind(ep), std::logic_error);
  EXPECT_THROW(net->rebind(ep, h1, [](const Delivery&) {}), std::logic_error);
  EXPECT_THROW(static_cast<void>(net->host_of(ep)), std::logic_error);
}

TEST_F(NetworkTest, LossInjectionDiscardsAndCounts) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);

  net->set_loss(0.3);
  constexpr std::uint64_t kSends = 1000;
  for (std::uint64_t i = 0; i < kSends; ++i) net->send(src, dst, msg(1), 10);
  sim.run();

  const NetworkStats& stats = net->stats();
  EXPECT_GT(stats.messages_lost, 200u);
  EXPECT_LT(stats.messages_lost, 400u);
  EXPECT_EQ(stats.messages_dropped, 0u);  // loss is a distinct counter
  EXPECT_EQ(stats.messages_sent,
            stats.messages_delivered + stats.messages_lost);
  EXPECT_EQ(in.size(), stats.messages_delivered);

  net->set_loss(0.0);
  in.clear();
  net->send(src, dst, msg(2), 10);
  sim.run();
  EXPECT_EQ(in.size(), 1u);
}

TEST_F(NetworkTest, LossIsSeededAndDeterministic) {
  auto run_once = [this] {
    Network fresh{sim, config};
    const Endpoint src = fresh.new_endpoint();
    fresh.bind(src, h1, [](const Delivery&) {});
    const Endpoint dst = fresh.new_endpoint();
    fresh.bind(dst, h2, [](const Delivery&) {});
    fresh.set_loss(0.25);
    for (int i = 0; i < 500; ++i) fresh.send(src, dst, msg(i), 10);
    return fresh.stats().messages_lost;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(NetworkTest, PerHostLossOnlyAffectsThatDestination) {
  HostId h3{3};
  std::vector<Delivery> in_b, in_c;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint to_b = bind_on(h2, &in_b);
  const Endpoint to_c = bind_on(h3, &in_c);

  net->set_host_loss(h2, 1.0);
  for (int i = 0; i < 50; ++i) {
    net->send(src, to_b, msg(i), 10);
    net->send(src, to_c, msg(i), 10);
  }
  sim.run();
  EXPECT_TRUE(in_b.empty());
  EXPECT_EQ(in_c.size(), 50u);
  EXPECT_EQ(net->stats().messages_lost, 50u);

  // The per-host knob overrides the global one, and clears cleanly.
  net->set_loss(1.0);
  net->set_host_loss(h2, 0.0);
  net->send(src, to_b, msg(99), 10);
  net->send(src, to_c, msg(99), 10);
  sim.run();
  EXPECT_EQ(in_b.size(), 1u);
  EXPECT_EQ(in_c.size(), 50u);

  net->clear_host_loss(h2);
  net->send(src, to_b, msg(100), 10);
  sim.run();
  EXPECT_EQ(in_b.size(), 1u);  // global loss applies again

  EXPECT_THROW(net->set_loss(1.5), std::invalid_argument);
  EXPECT_THROW(net->set_host_loss(h2, -0.1), std::invalid_argument);
}

TEST_F(NetworkTest, DownHostDropsAreNotCountedAsLoss) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->set_loss(1.0);
  net->set_host_down(h2, true);
  net->send(src, dst, msg(1), 10);
  sim.run();
  // The down-host check wins: the message is a drop, not a loss.
  EXPECT_EQ(net->stats().messages_dropped, 1u);
  EXPECT_EQ(net->stats().messages_lost, 0u);
}

// ---- loss precedence and accounting edge cases ------------------------------

TEST_F(NetworkTest, LinkLossOverridesHostLossOverridesGlobal) {
  HostId h3{3};
  std::vector<Delivery> in_b, in_c;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint to_b = bind_on(h2, &in_b);
  const Endpoint to_c = bind_on(h3, &in_c);

  // Global says drop everything; the host override on h2 and the link
  // override on h1->h3 both say deliver. Precedence: link > host > global.
  net->set_loss(1.0);
  net->set_host_loss(h2, 0.0);
  net->set_host_loss(h3, 1.0);
  net->set_link_loss(h1, h3, 0.0);
  net->send(src, to_b, msg(1), 10);
  net->send(src, to_c, msg(2), 10);
  sim.run();
  EXPECT_EQ(in_b.size(), 1u);
  EXPECT_EQ(in_c.size(), 1u);

  // Clearing the link override falls back to the host override (lossy).
  net->clear_link_loss(h1, h3);
  net->send(src, to_c, msg(3), 10);
  sim.run();
  EXPECT_EQ(in_c.size(), 1u);
  EXPECT_EQ(net->stats().messages_lost, 1u);

  // Clearing the host override falls back to global (still lossy).
  net->clear_host_loss(h3);
  net->send(src, to_c, msg(4), 10);
  sim.run();
  EXPECT_EQ(in_c.size(), 1u);
  EXPECT_EQ(net->stats().messages_lost, 2u);

  // Clearing the global knob restores delivery end to end.
  net->set_loss(0.0);
  net->clear_host_loss(h2);
  net->send(src, to_c, msg(5), 10);
  sim.run();
  EXPECT_EQ(in_c.size(), 2u);
  EXPECT_EQ(net->stats().messages_dropped, 0u);
}

TEST_F(NetworkTest, ClearingUnknownOverridesIsANoOp) {
  EXPECT_NO_THROW(net->clear_host_loss(HostId{77}));
  EXPECT_NO_THROW(net->clear_link_loss(HostId{77}, HostId{78}));
  EXPECT_NO_THROW(net->clear_host_degradation(HostId{77}));
  EXPECT_NO_THROW(net->clear_link_degradation(HostId{77}, HostId{78}));
}

TEST_F(NetworkTest, HostLossCountsAsLostUnderEveryInjectionPath) {
  // With duplication and reordering armed, injected loss must still land in
  // messages_lost (never messages_dropped): the loss stage runs before the
  // copy fan-out, so the counter stays per-send, not per-copy.
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->set_host_loss(h2, 1.0);
  net->set_duplication(1.0);
  net->set_reorder(1.0, millis(1));
  net->set_corruption(1.0);
  for (int i = 0; i < 20; ++i) net->send(src, dst, msg(i), 10);
  sim.run();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(net->stats().messages_lost, 20u);
  EXPECT_EQ(net->stats().messages_dropped, 0u);
  EXPECT_EQ(net->stats().messages_duplicated, 0u);  // lost before fan-out
}

// ---- duplication -------------------------------------------------------------

TEST_F(NetworkTest, DuplicationDeliversTheMessageTwice) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->set_duplication(1.0);
  net->send(src, dst, msg(7), 10);
  sim.run();
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(value_of(in[0]), 7);
  EXPECT_EQ(value_of(in[1]), 7);
  EXPECT_EQ(net->stats().messages_sent, 1u);
  EXPECT_EQ(net->stats().messages_duplicated, 1u);
  EXPECT_EQ(net->stats().messages_delivered, 2u);
}

TEST_F(NetworkTest, DuplicationIsSeededAndDeterministic) {
  auto run_once = [this] {
    Network fresh{sim, config};
    const Endpoint src = fresh.new_endpoint();
    fresh.bind(src, h1, [](const Delivery&) {});
    const Endpoint dst = fresh.new_endpoint();
    fresh.bind(dst, h2, [](const Delivery&) {});
    fresh.set_duplication(0.3);
    for (int i = 0; i < 500; ++i) fresh.send(src, dst, msg(i), 10);
    return fresh.stats().messages_duplicated;
  };
  const auto first = run_once();
  EXPECT_GT(first, 100u);
  EXPECT_LT(first, 200u);
  EXPECT_EQ(first, run_once());
}

// ---- reordering ---------------------------------------------------------------

TEST_F(NetworkTest, ReorderJitterStaysWithinWindow) {
  std::vector<Delivery> in;
  std::vector<SimTime> at;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = net->new_endpoint();
  net->bind(dst, h2, [&](const Delivery& d) {
    in.push_back(d);
    at.push_back(sim.now());
  });

  const auto window = millis(2);
  net->set_reorder(1.0, window);
  net->send(src, dst, msg(1), 10);
  sim.run();
  ASSERT_EQ(in.size(), 1u);
  // Undisturbed arrival would be latency + serialization; jitter adds at
  // most the window on top.
  const SimTime base = SimTime{} + config.latency + micros((10 + 64) / 125);
  EXPECT_GT(at[0], base);
  EXPECT_LE(at[0], base + window);
  EXPECT_EQ(net->stats().messages_reordered, 1u);
}

TEST_F(NetworkTest, ReorderingDisplacesFifoOrder) {
  // A burst with full reorder probability must displace at least one pair
  // from per-source FIFO order (that is the point of the fault).
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->set_reorder(1.0, millis(5));
  for (int i = 0; i < 50; ++i) net->send(src, dst, msg(i), 10);
  sim.run();
  ASSERT_EQ(in.size(), 50u);
  bool displaced = false;
  for (std::size_t i = 1; i < in.size(); ++i) {
    if (value_of(in[i]) < value_of(in[i - 1])) displaced = true;
  }
  EXPECT_TRUE(displaced);
  EXPECT_THROW(net->set_reorder(0.5, SimDuration::zero()),
               std::invalid_argument);
}

// ---- corruption ---------------------------------------------------------------

TEST_F(NetworkTest, CorruptionFlagsDeliveryAndPreservesSize) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->set_corruption(1.0);
  net->send(src, dst, msg(3), 100);
  sim.run();
  ASSERT_EQ(in.size(), 1u);
  EXPECT_TRUE(in[0].corrupted);
  EXPECT_EQ(in[0].bytes, 100u + config.overhead_bytes);  // size-preserving
  EXPECT_EQ(value_of(in[0]), 3);  // payload object shared, not mangled
  EXPECT_EQ(net->stats().messages_corrupted, 1u);
  EXPECT_EQ(net->stats().messages_delivered, 1u);

  net->set_corruption(0.0);
  net->send(src, dst, msg(4), 100);
  sim.run();
  ASSERT_EQ(in.size(), 2u);
  EXPECT_FALSE(in[1].corrupted);
}

// ---- gray degradation ----------------------------------------------------------

TEST_F(NetworkTest, HostDegradationSlowsDeliveryWithoutLoss) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);

  net->send(src, dst, msg(1), 1000);
  sim.run();
  const SimTime healthy = sim.now();

  net->set_host_degradation(h2, 4.0);
  net->send(src, dst, msg(2), 1000);
  sim.run();
  const auto degraded_elapsed = sim.now() - healthy;
  ASSERT_EQ(in.size(), 2u);  // gray means slow, not lossy
  // Both serialization and propagation stretch by the factor.
  const auto healthy_elapsed = healthy - SimTime{};
  EXPECT_GE(degraded_elapsed.count(), healthy_elapsed.count() * 4 - 4);

  net->clear_host_degradation(h2);
  const SimTime before = sim.now();
  net->send(src, dst, msg(3), 1000);
  sim.run();
  EXPECT_EQ((sim.now() - before).count(), healthy_elapsed.count());

  EXPECT_THROW(net->set_host_degradation(h2, 0.5), std::invalid_argument);
}

TEST_F(NetworkTest, LinkDegradationAppliesToThatDirectionOnly) {
  std::vector<Delivery> in_b, in_a;
  const Endpoint at_a = bind_on(h1, &in_a);
  const Endpoint at_b = bind_on(h2, &in_b);

  net->send(at_a, at_b, msg(1), 1000);
  sim.run();
  const auto healthy = sim.now() - SimTime{};

  net->set_link_degradation(h1, h2, 3.0);
  SimTime mark = sim.now();
  net->send(at_a, at_b, msg(2), 1000);
  sim.run();
  EXPECT_GE((sim.now() - mark).count(), healthy.count() * 3 - 3);

  // The reverse direction is untouched.
  mark = sim.now();
  net->send(at_b, at_a, msg(3), 1000);
  sim.run();
  EXPECT_EQ((sim.now() - mark).count(), healthy.count());
  ASSERT_EQ(in_a.size(), 1u);
  ASSERT_EQ(in_b.size(), 2u);
}

// ---- named partitions -----------------------------------------------------------

TEST_F(NetworkTest, PartitionCutsBothDirectionsAndHealRestores) {
  std::vector<Delivery> in_a, in_b;
  const Endpoint at_a = bind_on(h1, &in_a);
  const Endpoint at_b = bind_on(h2, &in_b);

  net->partition("split", {h1}, {h2});
  EXPECT_TRUE(net->partitioned(h1, h2));
  EXPECT_TRUE(net->partitioned(h2, h1));
  EXPECT_EQ(net->active_partitions(), 1u);

  net->send(at_a, at_b, msg(1), 10);
  net->send(at_b, at_a, msg(2), 10);
  sim.run();
  EXPECT_TRUE(in_a.empty());
  EXPECT_TRUE(in_b.empty());
  EXPECT_EQ(net->stats().messages_partitioned, 2u);
  EXPECT_EQ(net->stats().messages_lost, 2u);  // partitions are counted loss

  net->heal("split");
  EXPECT_FALSE(net->partitioned(h1, h2));
  EXPECT_EQ(net->active_partitions(), 0u);
  net->send(at_a, at_b, msg(3), 10);
  sim.run();
  ASSERT_EQ(in_b.size(), 1u);
  EXPECT_EQ(value_of(in_b[0]), 3);
}

TEST_F(NetworkTest, PartitionLeavesSameSideTrafficAlone) {
  HostId h3{3};
  std::vector<Delivery> in_b, in_c;
  const Endpoint at_b = bind_on(h2, &in_b);
  const Endpoint at_c = bind_on(h3, &in_c);

  net->partition("cut", {h1, h2}, {h3});
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  net->send(src, at_b, msg(1), 10);  // same side: flows
  net->send(src, at_c, msg(2), 10);  // across: cut
  sim.run();
  EXPECT_EQ(in_b.size(), 1u);
  EXPECT_TRUE(in_c.empty());
  net->heal_all();
  EXPECT_EQ(net->active_partitions(), 0u);
}

TEST_F(NetworkTest, PartitionValidatesItsGroups) {
  EXPECT_THROW(net->partition("bad", {}, {h2}), std::invalid_argument);
  EXPECT_THROW(net->partition("bad", {h1}, {h1}), std::invalid_argument);
  EXPECT_THROW(net->heal("never-existed"), std::invalid_argument);
  net->partition("cut", {h1}, {h2});
  net->heal("cut");
  EXPECT_THROW(net->heal("cut"), std::invalid_argument);  // heal is one-shot
}

// ---- conservation ---------------------------------------------------------------

TEST_F(NetworkTest, MessageAccountingBalancesUnderCombinedInjection) {
  std::vector<Delivery> in;
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  const Endpoint dst = bind_on(h2, &in);
  net->set_loss(0.1);
  net->set_duplication(0.2);
  net->set_reorder(0.3, millis(1));
  net->set_corruption(0.1);
  for (int i = 0; i < 500; ++i) net->send(src, dst, msg(i), 10);
  // Take the receiver down mid-flight so some copies resolve as drops.
  sim.schedule(micros(300), [&] { net->set_host_down(h2, true); });
  sim.run();
  const NetworkStats& s = net->stats();
  EXPECT_EQ(s.messages_delivered + s.messages_dropped + s.messages_lost,
            s.messages_sent + s.messages_duplicated);
  EXPECT_EQ(in.size(), s.messages_delivered);
}

TEST_F(NetworkTest, StatsCountBytes) {
  const Endpoint src = net->new_endpoint();
  net->bind(src, h1, [](const Delivery&) {});
  std::vector<Delivery> in;
  const Endpoint dst = bind_on(h2, &in);
  net->send(src, dst, msg(1), 100);
  sim.run();
  EXPECT_EQ(net->stats().messages_sent, 1u);
  EXPECT_EQ(net->stats().bytes_sent, 100u + config.overhead_bytes);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].bytes, 100u + config.overhead_bytes);
  EXPECT_EQ(in[0].from, src);
}

}  // namespace
}  // namespace esh::net
