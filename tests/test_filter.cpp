#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "filter/aspe.hpp"
#include "filter/attribute.hpp"
#include "filter/interval_index.hpp"
#include "filter/matcher.hpp"
#include "filter/matrix.hpp"
#include "workload/generator.hpp"

namespace esh::filter {
namespace {

// ---- matrix ------------------------------------------------------------------

TEST(Matrix, IdentityMultiply) {
  const Matrix id = Matrix::identity(4);
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(id.multiply(v), v);
}

TEST(Matrix, InverseTimesSelfIsIdentity) {
  Rng rng{5};
  const Matrix m = Matrix::random_invertible(7, rng);
  const Matrix product = m.multiply(m.inverted());
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_NEAR(product.at(r, c), r == c ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Matrix, TransposeSwapsIndices) {
  Matrix m{2, 3};
  m.at(0, 1) = 5.0;
  m.at(1, 2) = -2.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.at(2, 1), -2.0);
}

TEST(Matrix, SingularInversionThrows) {
  Matrix m{2, 2};  // all zeros
  EXPECT_THROW((void)m.inverted(), std::domain_error);
}

TEST(Matrix, ShapeErrors) {
  Matrix m{2, 3};
  EXPECT_THROW((void)m.inverted(), std::domain_error);
  EXPECT_THROW((void)m.multiply(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW((Matrix{0, 3}), std::invalid_argument);
}

TEST(Matrix, DotProduct) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_THROW((void)dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

// ---- plain model --------------------------------------------------------------

TEST(PlainModel, SubscriptionMatchSemantics) {
  Subscription sub;
  sub.id = SubscriptionId{1};
  sub.subscriber = SubscriberId{10};
  sub.predicates = {{0.2, 0.5}, {0.0, 1.0}};
  Publication in{PublicationId{1}, {0.3, 0.99}};
  Publication out{PublicationId{2}, {0.6, 0.5}};
  Publication boundary{PublicationId{3}, {0.2, 0.0}};
  EXPECT_TRUE(sub.matches(in));
  EXPECT_FALSE(sub.matches(out));
  EXPECT_TRUE(sub.matches(boundary));  // closed interval
  Publication wrong_dims{PublicationId{4}, {0.3}};
  EXPECT_FALSE(sub.matches(wrong_dims));
}

TEST(PlainModel, SerializationRoundTrip) {
  Subscription sub;
  sub.id = SubscriptionId{7};
  sub.subscriber = SubscriberId{13};
  sub.predicates = {{0.1, 0.4}, {0.5, 0.9}};
  BinaryWriter w;
  serialize(w, sub);
  BinaryReader r{w.buffer()};
  const Subscription back = deserialize_subscription(r);
  EXPECT_EQ(back.id, sub.id);
  EXPECT_EQ(back.subscriber, sub.subscriber);
  ASSERT_EQ(back.predicates.size(), 2u);
  EXPECT_DOUBLE_EQ(back.predicates[1].low, 0.5);
}

// ---- ASPE ----------------------------------------------------------------------

class AspeTest : public ::testing::Test {
 protected:
  Rng rng{17};
  AspeKey key = AspeKey::generate(4, rng);
  AspeEncryptor enc{key, Rng{18}};
};

TEST_F(AspeTest, ComparisonPreservesScalarProductSign) {
  // x_2 >= 0.4, tested against x_2 = 0.7 (true) and x_2 = 0.1 (false).
  Publication above{PublicationId{1}, {0.5, 0.5, 0.7, 0.5}};
  Publication below{PublicationId{2}, {0.5, 0.5, 0.1, 0.5}};
  Subscription sub;
  sub.id = SubscriptionId{1};
  sub.subscriber = SubscriberId{1};
  sub.predicates = {{0.0, 1.0}, {0.0, 1.0}, {0.4, 1.0}, {0.0, 1.0}};
  const auto esub = enc.encrypt(sub);
  EXPECT_TRUE(encrypted_match(esub, enc.encrypt(above)));
  EXPECT_FALSE(encrypted_match(esub, enc.encrypt(below)));
}

TEST_F(AspeTest, MatchesAgreeWithPlaintextGroundTruth) {
  Rng wrng{99};
  std::vector<Subscription> subs;
  std::vector<EncryptedSubscription> esubs;
  workload::PlainWorkload gen{{4, 0.05, 123}};
  for (std::uint64_t i = 0; i < 300; ++i) {
    subs.push_back(gen.subscription(i));
    esubs.push_back(enc.encrypt(subs.back()));
  }
  int checked = 0, matched = 0;
  for (int p = 0; p < 50; ++p) {
    const Publication pub = gen.next_publication();
    const EncryptedPublication epub = enc.encrypt(pub);
    for (std::size_t s = 0; s < subs.size(); ++s) {
      const bool plain = subs[s].matches(pub);
      const bool encrypted = encrypted_match(esubs[s], epub);
      EXPECT_EQ(plain, encrypted)
          << "pub " << p << " sub " << s << " disagree";
      ++checked;
      if (plain) ++matched;
    }
  }
  EXPECT_EQ(checked, 50 * 300);
  EXPECT_GT(matched, 0);  // the workload's matching rate is 5 %
}

TEST_F(AspeTest, CiphertextHidesPlaintextValues) {
  // Two encryptions of the same publication differ (fresh randomness), and
  // no share equals the plaintext attributes.
  Publication pub{PublicationId{1}, {0.25, 0.5, 0.75, 1.0}};
  const auto e1 = enc.encrypt(pub);
  const auto e2 = enc.encrypt(pub);
  EXPECT_NE(e1.share_a, e2.share_a);
  for (std::size_t i = 0; i < pub.attributes.size(); ++i) {
    EXPECT_NE(e1.share_a[i], pub.attributes[i]);
  }
}

TEST_F(AspeTest, EncryptedSizesAreQuadraticFree) {
  // 2d comparisons of 2 (d+3)-vectors each: size linear in d per predicate.
  Publication pub{PublicationId{1}, {0.1, 0.2, 0.3, 0.4}};
  const auto epub = enc.encrypt(pub);
  EXPECT_EQ(epub.share_a.size(), 7u);
  Subscription sub;
  sub.id = SubscriptionId{1};
  sub.subscriber = SubscriberId{1};
  sub.predicates.assign(4, Range{0.0, 1.0});
  const auto esub = enc.encrypt(sub);
  EXPECT_EQ(esub.comparisons.size(), 8u);
}

TEST_F(AspeTest, SerializationRoundTrip) {
  Subscription sub;
  sub.id = SubscriptionId{5};
  sub.subscriber = SubscriberId{6};
  sub.predicates.assign(4, Range{0.2, 0.8});
  const auto esub = enc.encrypt(sub);
  BinaryWriter w;
  serialize(w, esub);
  BinaryReader r{w.buffer()};
  const auto back = deserialize_encrypted_subscription(r);
  EXPECT_EQ(back.id, esub.id);
  EXPECT_EQ(back.subscriber, esub.subscriber);
  ASSERT_EQ(back.comparisons.size(), esub.comparisons.size());
  EXPECT_EQ(back.comparisons[3].share_b, esub.comparisons[3].share_b);

  Publication pub{PublicationId{9}, {0.5, 0.5, 0.5, 0.5}};
  const auto epub = enc.encrypt(pub);
  BinaryWriter w2;
  serialize(w2, epub);
  BinaryReader r2{w2.buffer()};
  const auto pback = deserialize_encrypted_publication(r2);
  EXPECT_EQ(pback.id, epub.id);
  EXPECT_EQ(pback.share_a, epub.share_a);
  // Deserialized ciphertext still matches correctly.
  EXPECT_EQ(encrypted_match(esub, epub), encrypted_match(back, pback));
}

TEST_F(AspeTest, DimensionMismatchThrows) {
  Publication pub{PublicationId{1}, {0.1, 0.2}};
  EXPECT_THROW((void)enc.encrypt(pub), std::invalid_argument);
  Subscription sub;
  sub.predicates = {{0.0, 1.0}};
  EXPECT_THROW((void)enc.encrypt(sub), std::invalid_argument);
}

// ---- matchers ------------------------------------------------------------------

// All plain matchers must produce identical results; run the same suite
// over each via a typed parameterized fixture.
enum class MatcherKind { kBrute, kCounting, kInterval };

class PlainMatcherTest : public ::testing::TestWithParam<MatcherKind> {
 protected:
  std::unique_ptr<Matcher> make() const {
    switch (GetParam()) {
      case MatcherKind::kBrute:
        return std::make_unique<BruteForceMatcher>();
      case MatcherKind::kCounting:
        return std::make_unique<CountingIndexMatcher>();
      case MatcherKind::kInterval:
        return std::make_unique<IntervalIndexMatcher>();
    }
    return nullptr;
  }
};

TEST_P(PlainMatcherTest, AgreesWithDirectEvaluation) {
  auto matcher = make();
  workload::PlainWorkload gen{{3, 0.1, 77}};
  std::vector<Subscription> subs;
  for (std::uint64_t i = 0; i < 500; ++i) {
    subs.push_back(gen.subscription(i));
    matcher->add(AnySubscription{subs.back()});
  }
  EXPECT_EQ(matcher->subscription_count(), 500u);
  for (int p = 0; p < 100; ++p) {
    const Publication pub = gen.next_publication();
    auto outcome = matcher->match(AnyPublication{pub});
    std::vector<SubscriberId> expected;
    for (const auto& s : subs) {
      if (s.matches(pub)) expected.push_back(s.subscriber);
    }
    std::sort(outcome.subscribers.begin(), outcome.subscribers.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(outcome.subscribers, expected) << "publication " << p;
    EXPECT_GT(outcome.work_units, 0.0);
  }
}

TEST_P(PlainMatcherTest, RemoveStopsMatching) {
  auto matcher = make();
  Subscription sub;
  sub.id = SubscriptionId{1};
  sub.subscriber = SubscriberId{5};
  sub.predicates = {{0.0, 1.0}};
  matcher->add(AnySubscription{sub});
  Publication pub{PublicationId{1}, {0.5}};
  EXPECT_EQ(matcher->match(AnyPublication{pub}).subscribers.size(), 1u);
  EXPECT_TRUE(matcher->remove(SubscriptionId{1}));
  EXPECT_FALSE(matcher->remove(SubscriptionId{1}));
  EXPECT_TRUE(matcher->match(AnyPublication{pub}).subscribers.empty());
  EXPECT_EQ(matcher->subscription_count(), 0u);
}

TEST_P(PlainMatcherTest, StateRoundTripPreservesMatches) {
  auto matcher = make();
  workload::PlainWorkload gen{{3, 0.2, 31}};
  for (std::uint64_t i = 0; i < 100; ++i) {
    matcher->add(AnySubscription{gen.subscription(i)});
  }
  BinaryWriter w;
  matcher->serialize_state(w);
  auto restored = matcher->clone_empty();
  BinaryReader r{w.buffer()};
  restored->restore_state(r);
  EXPECT_EQ(restored->subscription_count(), matcher->subscription_count());
  const Publication pub = gen.next_publication();
  auto a = matcher->match(AnyPublication{pub}).subscribers;
  auto b = restored->match(AnyPublication{pub}).subscribers;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_P(PlainMatcherTest, StateBytesGrowWithSubscriptions) {
  auto matcher = make();
  workload::PlainWorkload gen{{4, 0.1, 3}};
  const std::size_t empty = matcher->state_bytes();
  for (std::uint64_t i = 0; i < 50; ++i) {
    matcher->add(AnySubscription{gen.subscription(i)});
  }
  EXPECT_GT(matcher->state_bytes(), empty);
}

INSTANTIATE_TEST_SUITE_P(AllPlainMatchers, PlainMatcherTest,
                         ::testing::Values(MatcherKind::kBrute,
                                           MatcherKind::kCounting,
                                           MatcherKind::kInterval),
                         [](const auto& info) {
                           switch (info.param) {
                             case MatcherKind::kBrute:
                               return "BruteForce";
                             case MatcherKind::kCounting:
                               return "CountingIndex";
                             case MatcherKind::kInterval:
                               return "IntervalIndex";
                           }
                           return "Unknown";
                         });

// ---- interval index specifics --------------------------------------------------

// The covering rule registers only the narrowest predicate per
// subscription: a publication stabbing the wide (dominated) attribute but
// not the narrow one must pay for zero candidates -- only the tree
// descents. With N subscriptions whose attribute 0 spans the whole domain
// and whose attribute 1 is a tiny disjoint sliver, the per-publication
// work must stay far below the brute-force O(N) scan.
TEST(IntervalIndexTest, CoveringRuleIndexesTheNarrowestPredicate) {
  IntervalIndexMatcher interval;
  BruteForceMatcher brute;
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    Subscription s;
    s.id = SubscriptionId{i + 1};
    s.subscriber = SubscriberId{i + 1};
    const double at = static_cast<double>(i) / static_cast<double>(kN);
    s.predicates = {Range{0.0, 1.0},             // wide: dominated
                    Range{at, at + 0.0001}};     // narrow: registered
    interval.add(AnySubscription{s});
    brute.add(AnySubscription{s});
  }
  // Attribute 1 value that no sliver contains (the slivers tile [0, 1) at
  // stride 1/kN with width 0.0001 << stride after the first few).
  Publication pub{PublicationId{1}, {0.5, 0.12345}};
  const auto from_index = interval.match(AnyPublication{pub});
  const auto from_brute = brute.match(AnyPublication{pub});
  EXPECT_EQ(from_index.subscribers, from_brute.subscribers);
  EXPECT_GT(from_index.work_units, 0.0);
  // Brute pays 0.02 * 2000 = 40 units; the index pays a descent plus a
  // handful of candidates. An order of magnitude is a conservative floor.
  EXPECT_LT(from_index.work_units, from_brute.work_units / 10.0);

  // A value inside sliver i = 1000 finds exactly that subscription.
  Publication hit{PublicationId{2}, {0.5, 0.50005}};
  const auto outcome = interval.match(AnyPublication{hit});
  ASSERT_EQ(outcome.subscribers.size(), 1u);
  EXPECT_EQ(outcome.subscribers[0], SubscriberId{1001});
}

// Zero-dimension subscriptions (no predicates) have nothing to register:
// they must match exactly the zero-attribute publications, and nothing
// else.
TEST(IntervalIndexTest, ZeroDimensionSubscriptionsMatchZeroDimPublications) {
  IntervalIndexMatcher m;
  Subscription none;
  none.id = SubscriptionId{1};
  none.subscriber = SubscriberId{11};
  m.add(AnySubscription{none});
  Subscription one;
  one.id = SubscriptionId{2};
  one.subscriber = SubscriberId{22};
  one.predicates = {Range{0.0, 1.0}};
  m.add(AnySubscription{one});

  Publication empty{PublicationId{1}, {}};
  const auto e = m.match(AnyPublication{empty});
  ASSERT_EQ(e.subscribers.size(), 1u);
  EXPECT_EQ(e.subscribers[0], SubscriberId{11});

  Publication wide{PublicationId{2}, {0.5}};
  const auto w = m.match(AnyPublication{wide});
  ASSERT_EQ(w.subscribers.size(), 1u);
  EXPECT_EQ(w.subscribers[0], SubscriberId{22});
}

// Work units are an exact function of the live subscription set: a replica
// restored from serialized state and a slot-churned instance holding the
// same live set charge identical work for the same publication.
TEST(IntervalIndexTest, WorkUnitsAreSlotLayoutIndependent) {
  workload::PlainWorkload gen{{3, 0.05, 909}};
  IntervalIndexMatcher churned;
  // Build with interleaved removals so slots are reused out of id order.
  for (std::uint64_t i = 0; i < 300; ++i) {
    churned.add(AnySubscription{gen.subscription(i)});
  }
  for (std::uint64_t i = 0; i < 300; i += 3) {
    EXPECT_TRUE(
        churned.remove(subscription_id(AnySubscription{gen.subscription(i)})));
  }
  for (std::uint64_t i = 300; i < 400; ++i) {
    churned.add(AnySubscription{gen.subscription(i)});
  }
  BinaryWriter w;
  churned.serialize_state(w);
  auto restored = churned.clone_empty();
  BinaryReader r{w.buffer()};
  restored->restore_state(r);
  for (int p = 0; p < 30; ++p) {
    const Publication pub = gen.next_publication();
    const auto a = churned.match(AnyPublication{pub});
    const auto b = restored->match(AnyPublication{pub});
    EXPECT_EQ(a.subscribers, b.subscribers) << "publication " << p;
    EXPECT_DOUBLE_EQ(a.work_units, b.work_units) << "publication " << p;
  }
}

TEST(AspeMatcherTest, EndToEndEncryptedMatching) {
  Rng rng{41};
  const AspeKey key = AspeKey::generate(4, rng);
  AspeEncryptor enc{key, Rng{42}};
  workload::PlainWorkload gen{{4, 0.05, 55}};

  AspeMatcher matcher;
  std::vector<Subscription> subs;
  for (std::uint64_t i = 0; i < 200; ++i) {
    subs.push_back(gen.subscription(i));
    matcher.add(AnySubscription{enc.encrypt(subs.back())});
  }
  for (int p = 0; p < 40; ++p) {
    const Publication pub = gen.next_publication();
    auto outcome = matcher.match(AnyPublication{enc.encrypt(pub)});
    std::vector<SubscriberId> expected;
    for (const auto& s : subs) {
      if (s.matches(pub)) expected.push_back(s.subscriber);
    }
    std::sort(outcome.subscribers.begin(), outcome.subscribers.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(outcome.subscribers, expected);
  }
}

TEST(AspeMatcherTest, WorkUnitsScaleWithStoreSize) {
  Rng rng{4};
  const AspeKey key = AspeKey::generate(4, rng);
  AspeEncryptor enc{key, Rng{5}};
  workload::PlainWorkload gen{{4, 0.01, 6}};
  AspeMatcher matcher;
  for (std::uint64_t i = 0; i < 10; ++i) {
    matcher.add(AnySubscription{enc.encrypt(gen.subscription(i))});
  }
  const double ten = matcher.estimate_match_units();
  for (std::uint64_t i = 10; i < 20; ++i) {
    matcher.add(AnySubscription{enc.encrypt(gen.subscription(i))});
  }
  EXPECT_DOUBLE_EQ(matcher.estimate_match_units(), 2.0 * ten);
}

TEST(AspeMatcherTest, StateRoundTrip) {
  Rng rng{8};
  const AspeKey key = AspeKey::generate(4, rng);
  AspeEncryptor enc{key, Rng{9}};
  workload::PlainWorkload gen{{4, 0.5, 10}};
  AspeMatcher matcher;
  for (std::uint64_t i = 0; i < 30; ++i) {
    matcher.add(AnySubscription{enc.encrypt(gen.subscription(i))});
  }
  BinaryWriter w;
  matcher.serialize_state(w);
  EXPECT_NEAR(static_cast<double>(w.size()),
              static_cast<double>(matcher.state_bytes()), 600.0);
  auto restored = matcher.clone_empty();
  BinaryReader r{w.buffer()};
  restored->restore_state(r);
  EXPECT_EQ(restored->subscription_count(), 30u);
  const Publication pub = gen.next_publication();
  const auto epub = enc.encrypt(pub);
  EXPECT_EQ(restored->match(AnyPublication{epub}).subscribers,
            matcher.match(AnyPublication{epub}).subscribers);
}

TEST(AspeMatcherTest, WrongPayloadTypeThrows) {
  AspeMatcher matcher;
  Subscription plain;
  EXPECT_THROW(matcher.add(AnySubscription{plain}), std::bad_variant_access);
}

}  // namespace
}  // namespace esh::filter
