// Pipeline-wide determinism suite for the AP/M/EP worker-pool offload:
// full StreamHub runs must be byte-identical at every worker thread count
// (dispatched publications, per-publication subscriber merges, delay
// percentiles, simulated work units and serialized slice state), including
// under slice migration and chaos-harness crash/recovery schedules. Also
// checks the AP/EP batched paths directly against serial per-event
// processing, so a divergence is attributable to one operator tier.
#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/det.hpp"
#include "common/serde.hpp"
#include "common/thread_pool.hpp"
#include "harness/chaos.hpp"
#include "harness/testbed.hpp"
#include "pubsub/operators.hpp"
#include "workload/generator.hpp"
#include "workload/schedule.hpp"

namespace esh::harness {
namespace {

// Everything the figures derive from, plus the raw protocol state: if two
// runs agree on this, the offload changed wall-clock only.
struct RunFingerprint {
  std::uint64_t notifications = 0;
  std::uint64_t completed = 0;
  std::vector<double> percentiles;
  SimTime last_completion{};
  // Per publication: id, delivery count, merged subscriber list (EP merge
  // order is observable here: the subscribers arrive in list-merge order).
  std::vector<std::tuple<std::uint64_t, std::uint32_t,
                         std::vector<std::uint64_t>>>
      audit;
  // Simulated work units: per-host busy core time in host-id order.
  std::vector<std::pair<std::uint64_t, double>> work_us;
  // Serialized state of every live slice handler, in deployment order --
  // exactly the bytes a checkpoint of the final state would store.
  std::vector<std::byte> slice_states;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint fingerprint(Testbed& bed) {
  RunFingerprint fp;
  const auto& collector = bed.delays();
  fp.notifications = collector.notifications();
  fp.completed = collector.publications_completed();
  fp.percentiles = collector.delays_ms().percentiles({0, 25, 50, 75, 90, 99,
                                                      100});
  fp.last_completion = collector.last_completion();
  for (const PublicationId pub : sorted_keys(collector.audit())) {
    const auto& entry = collector.audit().at(pub);
    std::vector<std::uint64_t> subscribers;
    subscribers.reserve(entry.subscribers.size());
    for (const SubscriberId s : entry.subscribers) {
      subscribers.push_back(s.value());
    }
    fp.audit.emplace_back(pub.value(), entry.deliveries,
                          std::move(subscribers));
  }
  std::vector<HostId> hosts = bed.pool().active_hosts();
  std::sort(hosts.begin(), hosts.end());
  for (const HostId host : hosts) {
    fp.work_us.emplace_back(host.value(), bed.pool().host(host).busy_core_us());
  }
  BinaryWriter w;
  const auto& cfg = bed.engine().static_config();
  for (const auto& op : cfg.operators) {
    for (const SliceId slice : op.slices) {
      auto* runtime = bed.engine().slice_runtime(slice);
      w.write_u64(slice.value());
      w.write_bool(runtime != nullptr);
      if (runtime != nullptr) runtime->handler().serialize_state(w);
    }
  }
  fp.slice_states = std::move(w).take();
  return fp;
}

TestbedConfig pipeline_config(std::size_t worker_threads) {
  TestbedConfig config;
  config.worker_hosts = 3;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 1200;
  config.workload.matching_rate = 0.02;
  config.workload.m_slices = 3;
  config.source_slices = 2;
  config.ap_slices = 3;
  config.ep_slices = 3;
  config.sink_slices = 2;
  config.engine.flush_interval = millis(10);
  config.engine.control_tick = millis(5);
  config.engine.probe_interval = millis(100);
  config.engine.checkpoints.enabled = true;
  config.engine.checkpoints.interval = millis(500);
  config.engine.worker_threads = worker_threads;
  config.seed = 23;
  return config;
}

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

// Steady-state run: paced publications over a checkpointing deployment.
TEST(ParallelPipelineTest, ByteIdenticalAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    Testbed bed{pipeline_config(threads)};
    bed.delays().enable_audit();
    bed.store_subscriptions(1200);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(250.0, seconds(4)));
    bed.run_for(seconds(4) + millis(10));
    driver->stop();
    bed.run_for(seconds(3));
    EXPECT_GE(bed.delays().publications_completed(), 900u)
        << threads << " threads";
    return fingerprint(bed);
  };
  const RunFingerprint reference = run(kThreadCounts[0]);
  EXPECT_GT(reference.notifications, 0u);
  EXPECT_FALSE(reference.slice_states.empty());
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    EXPECT_EQ(run(kThreadCounts[i]), reference)
        << kThreadCounts[i] << " threads";
  }
}

// Same stream with an AP and an EP slice migrating mid-run: the offload
// plans must survive freeze/transfer/activate without disturbing the
// simulated outcome at any thread count.
TEST(ParallelPipelineTest, ByteIdenticalUnderSliceMigration) {
  auto run = [](std::size_t threads) {
    Testbed bed{pipeline_config(threads)};
    bed.delays().enable_audit();
    bed.store_subscriptions(1200);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(250.0, seconds(4)));
    bed.run_for(seconds(1));
    std::size_t migrations_done = 0;
    for (const char* op : {"AP", "EP"}) {
      const SliceId slice = bed.hub().slices_of(op).front();
      const HostId src = bed.engine().slice_host(slice);
      HostId dst = src;
      for (const HostId candidate : bed.worker_hosts()) {
        if (candidate != src) {
          dst = candidate;
          break;
        }
      }
      bed.engine().migrate(slice, dst, [&migrations_done](const auto& report) {
        EXPECT_EQ(report.outcome, engine::MigrationOutcome::kCompleted);
        ++migrations_done;
      });
    }
    EXPECT_TRUE(bed.run_until([&] { return migrations_done == 2; },
                              seconds(30)));
    bed.run_for(seconds(3));
    driver->stop();
    bed.run_for(seconds(3));
    EXPECT_GE(bed.delays().publications_completed(), 900u)
        << threads << " threads";
    return fingerprint(bed);
  };
  const RunFingerprint reference = run(kThreadCounts[0]);
  EXPECT_GT(reference.notifications, 0u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    EXPECT_EQ(run(kThreadCounts[i]), reference)
        << kThreadCounts[i] << " threads";
  }
}

// Chaos leg: a seeded crash/recovery schedule under load. Self-healing plus
// the exactly-once audit must land on identical bytes at every thread count.
TEST(ParallelPipelineTest, ByteIdenticalUnderChaosRecovery) {
  auto run = [](std::size_t threads) {
    TestbedConfig config = pipeline_config(threads);
    config.iaas.max_hosts = 6;
    config.iaas.boot_delay = millis(500);
    config.with_manager = true;
    config.manager.recovery.enabled = true;
    config.manager.recovery.detector =
        elastic::FailureDetectorConfig{millis(100), 2, 4};
    config.manager.recovery.attempt_timeout = seconds(5);
    Testbed bed{config};
    bed.manager()->set_enforcement(false);
    bed.delays().enable_audit();
    bed.store_subscriptions(1200);
    auto driver =
        bed.drive(std::make_shared<workload::ConstantRate>(200.0, seconds(6)));
    // Any seed drains now: the seeds that formerly wedged (17, 1) hit a
    // co-recovery renumbering bug since fixed by the engine's recovery
    // rebase registry (regression-pinned in
    // ChaosTest.FormerlyWedgingSeedsDrainExactlyOnce). Seed 2 is kept so
    // the byte-identity fingerprint stays comparable across revisions.
    const FaultSchedule schedule = FaultSchedule::random(
        2, bed.simulator().now() + seconds(1),
        bed.simulator().now() + seconds(4), bed.worker_hosts().size(), 1);
    ChaosRunner chaos{bed, schedule};
    chaos.arm();
    bed.run_for(seconds(6) + millis(10));
    driver->stop();
    EXPECT_TRUE(bed.run_until(
        [&] {
          return bed.manager()->recoveries().size() >= 1 &&
                 !bed.manager()->recovery_in_progress();
        },
        seconds(60)))
        << "recovery did not complete at " << threads << " threads";
    EXPECT_TRUE(bed.run_until(
        [&] {
          return bed.delays().publications_completed() >=
                 bed.hub().publications_sent();
        },
        seconds(120)))
        << "publications did not drain at " << threads << " threads";
    bed.run_for(seconds(2));
    const DeliveryAudit audit = verify_exactly_once(bed);
    EXPECT_TRUE(audit.exactly_once())
        << "missing " << audit.missing << " duplicated " << audit.duplicated
        << " mismatched " << audit.mismatched << " at " << threads
        << " threads";
    return fingerprint(bed);
  };
  const RunFingerprint reference = run(kThreadCounts[0]);
  EXPECT_GT(reference.notifications, 0u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    EXPECT_EQ(run(kThreadCounts[i]), reference)
        << kThreadCounts[i] << " threads";
  }
}

}  // namespace
}  // namespace esh::harness

// ---- operator-tier unit checks: batched path == serial path -----------------

namespace esh::pubsub {
namespace {

// Context that records every emission with its routing decision.
class RecordingContext final : public engine::Context {
 public:
  struct Emission {
    std::string op;
    engine::Routing::Kind kind;
    std::uint64_t key;
    engine::PayloadPtr payload;
  };

  void emit(std::string_view op, engine::Routing routing,
            engine::PayloadPtr payload) override {
    emitted.push_back(Emission{std::string{op}, routing.kind(), routing.key(),
                               std::move(payload)});
  }
  [[nodiscard]] SimTime now() const override { return SimTime{0}; }
  [[nodiscard]] std::size_t slice_index() const override { return 0; }
  [[nodiscard]] std::size_t slice_count(std::string_view op) const override {
    if (op == "M-plain") return 3;
    if (op == "M-enc") return 2;
    return 4;
  }
  [[nodiscard]] std::vector<std::uint32_t> fan_indices(
      std::string_view op) const override {
    std::vector<std::uint32_t> fan(slice_count(op));
    for (std::uint32_t i = 0; i < fan.size(); ++i) fan[i] = i;
    return fan;
  }
  [[nodiscard]] std::uint64_t routing_epoch() const override { return 0; }

  std::vector<Emission> emitted;
};

engine::PayloadPtr make_list(PublicationId pub, std::uint32_t index,
                             std::uint32_t expected,
                             std::vector<SubscriberId> subscribers) {
  auto list = std::make_shared<MatchListPayload>();
  list->publication = pub;
  list->m_slice_index = index;
  list->expected_lists = expected;
  list->subscribers = std::move(subscribers);
  list->published_at = SimTime{1000 + pub.value()};
  return list;
}

std::vector<std::byte> ep_state(const EpHandler& ep) {
  BinaryWriter w;
  ep.serialize_state(w);
  return std::move(w).take();
}

// Drives the same partial-list stream through a serial EP (event by event,
// never batched) and a batched EP backed by a 4-worker pool; emissions,
// merge order and serialized state must be byte-identical. The stream
// exercises every dedup edge: duplicate slice lists, lists for an
// already-completed publication, a publication completing across two
// batches, one left pending, and an empty partial list.
TEST(ParallelPipelineEpUnit, BatchedMergeMatchesSerial) {
  ThreadPool pool{4};
  const OperatorNames names{};
  const cluster::CostModel cost{};
  EpHandler serial{names, 4, cost};
  EpHandler batched{names, 4, cost, &pool};
  RecordingContext serial_ctx;
  RecordingContext batched_ctx;

  auto subs = [](std::uint64_t base, std::size_t n) {
    std::vector<SubscriberId> out;
    for (std::size_t i = 0; i < n; ++i) out.emplace_back(base + i);
    return out;
  };

  // Publication 15 completes before the batch; its late list must be
  // absorbed by the completed_-set in both modes.
  const std::vector<engine::PayloadPtr> warmup = {
      make_list(PublicationId{15}, 0, 1, subs(900, 2)),
  };
  // Two batches: publication 12's lists straddle the boundary, so it
  // completes in the second batch with a pre-batch pending prefix.
  const std::vector<engine::PayloadPtr> batch1 = {
      make_list(PublicationId{10}, 0, 4, subs(100, 3)),
      make_list(PublicationId{11}, 2, 4, subs(200, 1)),
      make_list(PublicationId{10}, 1, 4, subs(110, 0)),  // empty list
      make_list(PublicationId{10}, 1, 4, subs(119, 5)),  // duplicate slice
      make_list(PublicationId{12}, 3, 4, subs(300, 2)),
      make_list(PublicationId{10}, 2, 4, subs(120, 2)),
      make_list(PublicationId{11}, 0, 4, subs(210, 4)),
      make_list(PublicationId{10}, 3, 4, subs(130, 1)),  // completes 10
      make_list(PublicationId{15}, 0, 1, subs(910, 3)),  // already completed
      make_list(PublicationId{11}, 1, 4, subs(220, 2)),
      make_list(PublicationId{12}, 0, 4, subs(310, 3)),
  };
  const std::vector<engine::PayloadPtr> batch2 = {
      make_list(PublicationId{12}, 1, 4, subs(320, 1)),
      make_list(PublicationId{11}, 3, 4, subs(230, 1)),  // completes 11
      make_list(PublicationId{12}, 2, 4, subs(330, 4)),  // completes 12
      make_list(PublicationId{13}, 0, 4, subs(400, 2)),  // stays pending
  };

  for (const auto& p : warmup) {
    serial.on_event(serial_ctx, p);
    batched.on_event(batched_ctx, p);
  }
  for (const auto& batch : {batch1, batch2}) {
    for (const auto& p : batch) {
      ASSERT_TRUE(serial.can_batch(p));
      serial.on_event(serial_ctx, p);
    }
    batched.on_batch_start(batched_ctx, batch);
    for (const auto& p : batch) batched.on_event(batched_ctx, p);
  }

  ASSERT_EQ(batched_ctx.emitted.size(), serial_ctx.emitted.size());
  for (std::size_t i = 0; i < serial_ctx.emitted.size(); ++i) {
    const auto& a = serial_ctx.emitted[i];
    const auto& b = batched_ctx.emitted[i];
    EXPECT_EQ(a.op, b.op) << "emission " << i;
    EXPECT_EQ(a.kind, b.kind) << "emission " << i;
    EXPECT_EQ(a.key, b.key) << "emission " << i;
    const auto* na = dynamic_cast<const NotificationPayload*>(a.payload.get());
    const auto* nb = dynamic_cast<const NotificationPayload*>(b.payload.get());
    ASSERT_NE(na, nullptr);
    ASSERT_NE(nb, nullptr);
    EXPECT_EQ(na->publication, nb->publication) << "emission " << i;
    EXPECT_EQ(na->subscribers, nb->subscribers)
        << "merge order diverged at emission " << i;
    EXPECT_EQ(na->published_at, nb->published_at) << "emission " << i;
  }
  // 15 (warmup), 10, 11, 12 completed; 13 pending in both.
  EXPECT_EQ(serial_ctx.emitted.size(), 4u);
  EXPECT_EQ(serial.pending_publications(), 1u);
  EXPECT_EQ(batched.pending_publications(), 1u);
  EXPECT_EQ(ep_state(batched), ep_state(serial));
}

// Same equivalence for AP: a mixed run of plain/encrypted subscriptions and
// publications planned through the pool must route exactly like the serial
// per-event path, including when the batch's precomputed plan is consumed
// out of submission order (AP's kNone jobs may complete in any order).
TEST(ParallelPipelineApUnit, BatchedRoutePlanMatchesSerial) {
  ThreadPool pool{4};
  const cluster::CostModel cost{};
  const std::vector<MatchingTarget> targets = {
      MatchingTarget{"M-plain", 3, false},
      MatchingTarget{"M-enc", 2, true},
  };
  ApHandler serial{targets, cost};
  ApHandler batched{targets, cost, &pool};
  RecordingContext serial_ctx;
  RecordingContext batched_ctx;

  workload::PlainWorkload plain{{4, 0.02, 91}};
  workload::EncryptedWorkload encrypted{{4, 0.02, 92}};
  std::vector<engine::PayloadPtr> batch;
  for (std::uint64_t i = 0; i < 20; ++i) {
    batch.push_back(std::make_shared<SubscriptionPayload>(
        filter::AnySubscription{plain.subscription(i)}));
    batch.push_back(std::make_shared<SubscriptionPayload>(
        filter::AnySubscription{encrypted.subscription(100 + i)}));
    batch.push_back(std::make_shared<PublicationPayload>(
        filter::AnyPublication{plain.next_publication()}, SimTime{0}));
    batch.push_back(std::make_shared<PublicationPayload>(
        filter::AnyPublication{encrypted.next_publication()}, SimTime{0}));
  }
  for (const auto& p : batch) ASSERT_TRUE(serial.can_batch(p));

  for (const auto& p : batch) serial.on_event(serial_ctx, p);
  batched.on_batch_start(batched_ctx, batch);
  // Consume the plan in a scrambled order: reverse within blocks of 7,
  // mimicking out-of-submission-order completion of AP's unserialized jobs.
  std::vector<std::size_t> order;
  for (std::size_t begin = 0; begin < batch.size(); begin += 7) {
    const std::size_t end = std::min(begin + 7, batch.size());
    for (std::size_t i = end; i > begin; --i) order.push_back(i - 1);
  }
  std::vector<std::size_t> batched_emission_of(batch.size());
  for (const std::size_t i : order) {
    const std::size_t before = batched_ctx.emitted.size();
    batched.on_event(batched_ctx, batch[i]);
    ASSERT_EQ(batched_ctx.emitted.size(), before + 1);
    batched_emission_of[i] = before;
  }

  ASSERT_EQ(serial_ctx.emitted.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& a = serial_ctx.emitted[i];
    const auto& b = batched_ctx.emitted[batched_emission_of[i]];
    EXPECT_EQ(a.op, b.op) << "event " << i;
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.key, b.key) << "event " << i;
    // Publications are re-stamped with the commit-time broadcast fan, so
    // AP emits a fresh payload object: compare content, not identity.
    const auto* pub_a = dynamic_cast<const PublicationPayload*>(a.payload.get());
    const auto* pub_b = dynamic_cast<const PublicationPayload*>(b.payload.get());
    if (pub_a != nullptr || pub_b != nullptr) {
      ASSERT_NE(pub_a, nullptr) << "event " << i;
      ASSERT_NE(pub_b, nullptr) << "event " << i;
      EXPECT_EQ(filter::publication_id(pub_a->publication),
                filter::publication_id(pub_b->publication))
          << "event " << i;
      EXPECT_EQ(pub_a->fan_indices, pub_b->fan_indices) << "event " << i;
    } else {
      EXPECT_EQ(a.payload.get(), b.payload.get()) << "event " << i;
    }
  }
}

}  // namespace
}  // namespace esh::pubsub
