// ReliableChannel behavior under the adversarial network: in-order
// exactly-once delivery across loss/duplication/reordering/corruption,
// passthrough for plain traffic, bounded retry budget with give-up
// escalation, and determinism of the whole stack under fixed seeds.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/reliable.hpp"
#include "sim/simulator.hpp"

namespace esh::net {
namespace {

struct TestMessage final : Message {
  explicit TestMessage(int v) : value(v) {}
  int value;
};

MessagePtr msg(int v) { return std::make_shared<TestMessage>(v); }

int value_of(const Delivery& d) {
  return dynamic_cast<const TestMessage&>(*d.message).value;
}

class ReliableTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  NetworkConfig config;
  std::unique_ptr<Network> net;
  HostId h1{1}, h2{2};
  std::vector<Delivery> at_a, at_b;
  std::unique_ptr<ReliableChannel> a, b;

  void SetUp() override { net = std::make_unique<Network>(sim, config); }

  void make_channels(ReliableChannelConfig rc = {}) {
    a = std::make_unique<ReliableChannel>(
        sim, *net, net->new_endpoint(), h1,
        [this](const Delivery& d) { at_a.push_back(d); }, rc);
    b = std::make_unique<ReliableChannel>(
        sim, *net, net->new_endpoint(), h2,
        [this](const Delivery& d) { at_b.push_back(d); }, rc);
  }

  std::vector<int> values(const std::vector<Delivery>& in) {
    std::vector<int> out;
    out.reserve(in.size());
    for (const auto& d : in) out.push_back(value_of(d));
    return out;
  }
};

TEST_F(ReliableTest, DeliversInOrderOnCleanNetwork) {
  make_channels();
  for (int i = 0; i < 5; ++i) a->send(b->endpoint(), msg(i), 100);
  sim.run();
  EXPECT_EQ(values(at_b), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(a->stats().data_sent, 5u);
  EXPECT_EQ(a->stats().retransmits, 0u);
  EXPECT_EQ(b->stats().delivered, 5u);
  EXPECT_EQ(b->stats().duplicates_dropped, 0u);
  EXPECT_EQ(a->in_flight(), 0u);
}

TEST_F(ReliableTest, ExactlyOnceInOrderUnderLossDuplicationReorder) {
  net->set_loss(0.2);
  net->set_duplication(0.2);
  net->set_reorder(0.3, millis(2));
  make_channels();
  const int n = 50;
  for (int i = 0; i < n; ++i) a->send(b->endpoint(), msg(i), 200);
  sim.run();

  std::vector<int> expected;
  for (int i = 0; i < n; ++i) expected.push_back(i);
  EXPECT_EQ(values(at_b), expected);
  EXPECT_EQ(b->stats().delivered, static_cast<std::uint64_t>(n));
  // The fault mix must actually have exercised the recovery machinery.
  EXPECT_GT(a->stats().retransmits, 0u);
  EXPECT_GT(b->stats().duplicates_dropped, 0u);
  EXPECT_EQ(a->in_flight(), 0u);
}

TEST_F(ReliableTest, CorruptionIsTreatedAsLossAndRetransmitCovers) {
  net->set_corruption(0.3);
  make_channels();
  const int n = 20;
  for (int i = 0; i < n; ++i) a->send(b->endpoint(), msg(i), 100);
  sim.run();

  std::vector<int> expected;
  for (int i = 0; i < n; ++i) expected.push_back(i);
  EXPECT_EQ(values(at_b), expected);
  // Some frames must have arrived corrupted and been dropped without an
  // ack; retransmission is what closed the gap.
  EXPECT_GT(b->stats().corrupt_dropped + a->stats().corrupt_dropped, 0u);
  EXPECT_GT(a->stats().retransmits, 0u);
  EXPECT_EQ(a->in_flight(), 0u);
}

TEST_F(ReliableTest, BidirectionalStreamsAreIndependent) {
  net->set_loss(0.1);
  make_channels();
  for (int i = 0; i < 10; ++i) {
    a->send(b->endpoint(), msg(i), 100);
    b->send(a->endpoint(), msg(100 + i), 100);
  }
  sim.run();
  EXPECT_EQ(values(at_b), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(values(at_a), (std::vector<int>{100, 101, 102, 103, 104, 105, 106,
                                            107, 108, 109}));
}

TEST_F(ReliableTest, PlainTrafficPassesThroughUntouched) {
  make_channels();
  // A raw Network::send to the channel's endpoint is not a reliable frame:
  // it must reach the application handler unchanged, with no channel state.
  const Endpoint raw = net->new_endpoint();
  net->bind(raw, h1, [](const Delivery&) {});
  net->send(raw, b->endpoint(), msg(7), 50);
  sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(value_of(at_b[0]), 7);
  EXPECT_EQ(b->stats().delivered, 0u);
  EXPECT_EQ(b->stats().acks_sent, 0u);
}

TEST_F(ReliableTest, GivesUpOnDownPeerAfterRetryBudget) {
  ReliableChannelConfig rc;
  rc.initial_rto = millis(10);
  rc.max_rto = millis(80);
  rc.max_retries = 4;
  make_channels(rc);

  std::vector<Endpoint> abandoned;
  a->on_give_up([&](Endpoint peer) { abandoned.push_back(peer); });

  net->set_host_down(h2, true);
  a->send(b->endpoint(), msg(1), 100);
  a->send(b->endpoint(), msg(2), 100);
  sim.run();

  // Budget exhausted on the oldest pending message; the whole peer state
  // is dropped (both messages), and exactly one escalation fires.
  ASSERT_EQ(abandoned.size(), 1u);
  EXPECT_EQ(abandoned[0], b->endpoint());
  EXPECT_EQ(a->stats().give_ups, 1u);
  EXPECT_EQ(a->in_flight(), 0u);
  EXPECT_TRUE(at_b.empty());
  EXPECT_LE(a->stats().retransmits,
            static_cast<std::uint64_t>(2 * rc.max_retries));
}

TEST_F(ReliableTest, ForgetPeerCancelsRetransmitsWithoutEscalation) {
  ReliableChannelConfig rc;
  rc.initial_rto = millis(10);
  rc.max_retries = 4;
  make_channels(rc);

  std::vector<Endpoint> abandoned;
  a->on_give_up([&](Endpoint peer) { abandoned.push_back(peer); });

  net->set_host_down(h2, true);
  a->send(b->endpoint(), msg(1), 100);
  EXPECT_EQ(a->in_flight(), 1u);
  a->forget_peer(b->endpoint());
  EXPECT_EQ(a->in_flight(), 0u);
  sim.run();

  EXPECT_TRUE(abandoned.empty());
  EXPECT_EQ(a->stats().give_ups, 0u);
}

TEST_F(ReliableTest, RecoversWhenLossyWindowEnds) {
  // Total blackout shorter than the retry budget: every message still
  // arrives, in order, once the window lifts.
  ReliableChannelConfig rc;
  rc.initial_rto = millis(20);
  rc.max_retries = 8;
  net->set_loss(1.0);
  make_channels(rc);
  for (int i = 0; i < 5; ++i) a->send(b->endpoint(), msg(i), 100);
  sim.schedule(millis(60), [&] { net->set_loss(0.0); });
  sim.run();
  EXPECT_EQ(values(at_b), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(a->stats().give_ups, 0u);
  EXPECT_EQ(a->in_flight(), 0u);
}

TEST_F(ReliableTest, SameSeedsProduceIdenticalStats) {
  struct Run {
    ReliableStats a, b;
    NetworkStats net;
    std::vector<int> order;
  };
  const auto run_once = [] {
    sim::Simulator sim;
    NetworkConfig config;
    Network net{sim, config};
    net.set_loss(0.15);
    net.set_duplication(0.15);
    net.set_reorder(0.25, millis(1));
    net.set_corruption(0.05);
    std::vector<Delivery> at_b;
    ReliableChannel a{sim, net, net.new_endpoint(), HostId{1},
                      [](const Delivery&) {}};
    ReliableChannel b{sim, net, net.new_endpoint(), HostId{2},
                      [&at_b](const Delivery& d) { at_b.push_back(d); }};
    for (int i = 0; i < 40; ++i) a.send(b.endpoint(), msg(i), 150);
    sim.run();
    Run r;
    r.a = a.stats();
    r.b = b.stats();
    r.net = net.stats();
    for (const auto& d : at_b) r.order.push_back(value_of(d));
    return r;
  };
  const Run r1 = run_once();
  const Run r2 = run_once();
  EXPECT_EQ(r1.order, r2.order);
  EXPECT_EQ(r1.a.retransmits, r2.a.retransmits);
  EXPECT_EQ(r1.b.duplicates_dropped, r2.b.duplicates_dropped);
  EXPECT_EQ(r1.b.corrupt_dropped, r2.b.corrupt_dropped);
  EXPECT_EQ(r1.net.messages_lost, r2.net.messages_lost);
  EXPECT_EQ(r1.net.messages_duplicated, r2.net.messages_duplicated);
  EXPECT_EQ(r1.net.messages_reordered, r2.net.messages_reordered);
}

TEST_F(ReliableTest, LargePayloadRtoCoversSerializationTime) {
  // A 12.5 MB checkpoint takes ~100 ms of NIC time — far beyond the 50 ms
  // initial RTO. The per-message RTO adds 2x serialization time, so a
  // clean network must not see a single spurious retransmission.
  make_channels();
  a->send(b->endpoint(), msg(1), 12'500'000);
  sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(a->stats().retransmits, 0u);
}

}  // namespace
}  // namespace esh::net
