// Determinism tests of the pooled match_batch backend: for every matcher
// (brute force, counting index, interval index, ASPE) the same seeded
// subscription and
// publication stream is driven through a scalar instance and through
// pooled instances at 1, 2, 4 and 8 threads, and every observable must be
// byte-identical -- the exact per-publication subscriber vectors (order
// included), the simulated work_units, state_bytes, and the serialized
// state. A differential-harness run with the pool installed additionally
// checks pooled matchers against the independent oracle under add/remove
// churn and serialize -> clone_empty -> restore round-trips (which must
// preserve the installed pool).
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/serde.hpp"
#include "common/thread_pool.hpp"
#include "filter/interval_index.hpp"
#include "filter/matcher.hpp"
#include "matcher_harness.hpp"
#include "workload/generator.hpp"

namespace esh::filter {
namespace {

constexpr std::size_t kDims = 4;
constexpr std::size_t kPlainSubs = 20000;  // ~20 brute tiles, ~40 ASPE ranges
constexpr std::size_t kAspeSubs = 2000;
constexpr std::size_t kPubs = 128;
constexpr std::size_t kBatch = 48;

std::vector<MatchOutcome> run_batches(Matcher& matcher,
                                      const std::vector<AnyPublication>& pubs) {
  std::vector<MatchOutcome> out;
  out.reserve(pubs.size());
  for (std::size_t i = 0; i < pubs.size(); i += kBatch) {
    const std::size_t n = std::min(kBatch, pubs.size() - i);
    auto chunk =
        matcher.match_batch(std::span<const AnyPublication>{pubs.data() + i, n});
    for (auto& outcome : chunk) out.push_back(std::move(outcome));
  }
  return out;
}

std::vector<std::byte> serialized(const Matcher& matcher) {
  BinaryWriter w;
  matcher.serialize_state(w);
  return w.buffer();
}

// Replays the identical seeded stream at every thread count and requires
// byte identity with the scalar run on every observable.
void expect_identical_at_all_thread_counts(
    const std::function<std::unique_ptr<Matcher>()>& fresh_loaded_matcher,
    const std::vector<AnyPublication>& pubs) {
  const auto scalar = fresh_loaded_matcher();
  ASSERT_EQ(scalar->thread_pool(), nullptr);
  const std::vector<MatchOutcome> ref = run_batches(*scalar, pubs);
  const std::size_t ref_bytes = scalar->state_bytes();
  const std::vector<std::byte> ref_serialized = serialized(*scalar);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool{threads};
    const auto pooled = fresh_loaded_matcher();
    pooled->set_thread_pool(&pool);
    const std::vector<MatchOutcome> got = run_batches(*pooled, pubs);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t p = 0; p < ref.size(); ++p) {
      // Exact vector equality: order and duplicates included, no sorting.
      EXPECT_EQ(got[p].subscribers, ref[p].subscribers)
          << "publication " << p;
      EXPECT_EQ(got[p].work_units, ref[p].work_units) << "publication " << p;
    }
    EXPECT_EQ(pooled->state_bytes(), ref_bytes);
    EXPECT_EQ(serialized(*pooled), ref_serialized);
  }
}

std::vector<AnyPublication> plain_publications(workload::PlainWorkload& gen) {
  std::vector<AnyPublication> pubs;
  pubs.reserve(kPubs);
  for (std::size_t i = 0; i < kPubs; ++i) {
    pubs.emplace_back(gen.next_publication());
  }
  return pubs;
}

// The subscription stream is generated ONCE and shared by every rebuilt
// instance: ASPE ciphertexts embed fresh encryption randomness, so
// re-generating them would legitimately change the serialized state.
TEST(ParallelMatchTest, BruteForceIdenticalAtEveryThreadCount) {
  workload::PlainWorkload gen{{kDims, 0.01, 11}};
  std::vector<AnySubscription> subs;
  subs.reserve(kPlainSubs);
  for (std::size_t i = 0; i < kPlainSubs; ++i) {
    subs.emplace_back(gen.subscription(i));
  }
  auto pubs = plain_publications(gen);
  expect_identical_at_all_thread_counts(
      [&] {
        auto matcher = std::make_unique<BruteForceMatcher>();
        for (const AnySubscription& sub : subs) matcher->add(sub);
        return matcher;
      },
      pubs);
}

TEST(ParallelMatchTest, CountingIndexIdenticalAtEveryThreadCount) {
  workload::PlainWorkload gen{{kDims, 0.01, 11}};
  std::vector<AnySubscription> subs;
  subs.reserve(kPlainSubs);
  for (std::size_t i = 0; i < kPlainSubs; ++i) {
    subs.emplace_back(gen.subscription(i));
  }
  auto pubs = plain_publications(gen);
  expect_identical_at_all_thread_counts(
      [&] {
        auto matcher = std::make_unique<CountingIndexMatcher>();
        for (const AnySubscription& sub : subs) matcher->add(sub);
        return matcher;
      },
      pubs);
}

TEST(ParallelMatchTest, IntervalIndexIdenticalAtEveryThreadCount) {
  workload::PlainWorkload gen{{kDims, 0.01, 11}};
  std::vector<AnySubscription> subs;
  subs.reserve(kPlainSubs);
  for (std::size_t i = 0; i < kPlainSubs; ++i) {
    subs.emplace_back(gen.subscription(i));
  }
  auto pubs = plain_publications(gen);
  expect_identical_at_all_thread_counts(
      [&] {
        auto matcher = std::make_unique<IntervalIndexMatcher>();
        for (const AnySubscription& sub : subs) matcher->add(sub);
        return matcher;
      },
      pubs);
}

TEST(ParallelMatchTest, AspeIdenticalAtEveryThreadCount) {
  workload::EncryptedWorkload gen{{kDims, 0.01, 11}};
  std::vector<AnySubscription> subs;
  subs.reserve(kAspeSubs);
  for (std::size_t i = 0; i < kAspeSubs; ++i) {
    subs.emplace_back(gen.subscription(i));
  }
  std::vector<AnyPublication> pubs;
  pubs.reserve(kPubs);
  for (std::size_t i = 0; i < kPubs; ++i) {
    pubs.emplace_back(gen.next_publication());
  }
  expect_identical_at_all_thread_counts(
      [&] {
        auto matcher = std::make_unique<AspeMatcher>();
        for (const AnySubscription& sub : subs) matcher->add(sub);
        return matcher;
      },
      pubs);
}

TEST(ParallelMatchTest, CloneEmptyPropagatesPool) {
  ThreadPool pool{2};
  BruteForceMatcher matcher;
  matcher.set_thread_pool(&pool);
  const auto clone = matcher.clone_empty();
  EXPECT_EQ(clone->thread_pool(), &pool);
}

// Pooled matchers against the independent oracle under churn: adds,
// removes, batched publishes and mid-stream restore round-trips, all with
// the pool fanning the matching compute out.
TEST(ParallelMatchDifferentialTest, PooledSchemesMatchOracleUnderChurn) {
  ThreadPool pool{4};
  harness::DifferentialHarness::Params params;
  params.seed = 77;
  params.operations = 600;
  harness::DifferentialHarness h{params};

  auto brute = std::make_unique<BruteForceMatcher>();
  brute->set_thread_pool(&pool);
  h.add_scheme("brute-pooled", std::move(brute), /*encrypted=*/false,
               /*batched=*/true);
  auto counting = std::make_unique<CountingIndexMatcher>();
  counting->set_thread_pool(&pool);
  h.add_scheme("counting-pooled", std::move(counting), /*encrypted=*/false,
               /*batched=*/true);
  auto interval = std::make_unique<IntervalIndexMatcher>();
  interval->set_thread_pool(&pool);
  h.add_scheme("interval-pooled", std::move(interval), /*encrypted=*/false,
               /*batched=*/true);
  auto aspe = std::make_unique<AspeMatcher>();
  aspe->set_thread_pool(&pool);
  h.add_scheme("aspe-pooled", std::move(aspe), /*encrypted=*/true,
               /*batched=*/true);

  h.run();
  EXPECT_GT(h.publications_checked(), 0u);
  EXPECT_GT(h.restores_run(), 0u);  // round-trips kept the pool installed
}

}  // namespace
}  // namespace esh::filter
