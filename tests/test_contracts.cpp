// Contract-layer tests: the transition tables and the structured
// ContractViolation payload are exercised in every build; each seeded fault
// (clock warp, corrupted channel, illegal transition, double release,
// duplicate EP dispatch) must trip its named invariant in checked builds.
// The complementary property — that the full suite, chaos harness included,
// runs violation-free under ESH_CHECK_INVARIANTS=ON — is covered by running
// this whole test directory in the checked CI job (scripts/ci.sh checked).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/iaas.hpp"
#include "common/contracts.hpp"
#include "elastic/enforcer.hpp"
#include "elastic/manager.hpp"
#include "engine/migration_strategy.hpp"
#include "common/keyspace.hpp"
#include "common/serde.hpp"
#include "common/thread_pool.hpp"
#include "filter/matcher.hpp"
#include "engine/engine.hpp"
#include "engine/host_runtime.hpp"
#include "harness/testbed.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "pubsub/operators.hpp"
#include "pubsub/payloads.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace esh {
namespace {

using contracts::ContractViolation;
using contracts::Detail;
using contracts::Kind;

// ---- payload and tables: live in every build -------------------------------

TEST(ContractViolationTest, CarriesStructuredPayload) {
  const ContractViolation v{
      Kind::kInvariant, "engine", "channel-gap-free", "expected == last + 1",
      Detail{}.slice(SliceId{7}).host(HostId{3}).expected(4).actual(6).note(
          "input channel from slice 2")};
  EXPECT_EQ(v.kind(), Kind::kInvariant);
  EXPECT_EQ(v.subsystem(), "engine");
  EXPECT_EQ(v.name(), "channel-gap-free");
  EXPECT_EQ(v.condition(), "expected == last + 1");
  EXPECT_EQ(v.detail().slice_id, 7u);
  EXPECT_EQ(v.detail().host_id, 3u);
  EXPECT_EQ(v.detail().expected_value, "4");
  EXPECT_EQ(v.detail().actual_value, "6");
  const std::string what = v.what();
  EXPECT_NE(what.find("ContractViolation[invariant]"), std::string::npos);
  EXPECT_NE(what.find("engine/channel-gap-free"), std::string::npos);
  EXPECT_NE(what.find("slice=7"), std::string::npos);
  EXPECT_NE(what.find("host=3"), std::string::npos);
  EXPECT_NE(what.find("expected=4"), std::string::npos);
  EXPECT_NE(what.find("actual=6"), std::string::npos);
}

TEST(ContractViolationTest, IsALogicErrorSoDefensiveThrowTestsStillPass) {
  EXPECT_THROW(
      contracts::fail(Kind::kPrecondition, "cluster", "iaas-no-double-release",
                      "id >= next", Detail{}),
      std::logic_error);
}

TEST(ContractViolationTest, DetailStringifiesDomainTypes) {
  Detail d;
  d.slice(SliceId{1}).expected(micros(1500)).actual(HostId{}).transition(
      "frozen", "active");
  EXPECT_EQ(d.expected_value, "1500us");
  EXPECT_EQ(d.actual_value, "frozen -> active");
  EXPECT_FALSE(d.has_host());
  EXPECT_TRUE(d.has_slice());
}

TEST(MigrationTransitionTest, TableEncodesProtocolOrder) {
  using Step = engine::MigrationStep;
  // The paper's migration order: create replica, duplicate, freeze+transfer,
  // update directory, tear down.
  EXPECT_TRUE(engine::migration_transition_legal(Step::kCreateReplica,
                                                 Step::kDuplication));
  EXPECT_TRUE(
      engine::migration_transition_legal(Step::kDuplication, Step::kTransfer));
  EXPECT_TRUE(engine::migration_transition_legal(Step::kTransfer,
                                                 Step::kDirectoryUpdate));
  EXPECT_TRUE(engine::migration_transition_legal(Step::kDirectoryUpdate,
                                                 Step::kTeardown));
  // Source operators with no upstream channels skip duplication.
  EXPECT_TRUE(engine::migration_transition_legal(Step::kCreateReplica,
                                                 Step::kTransfer));
  // Either peer dying aborts; an ActivatedAck racing the abort means the
  // transfer won and directory convergence proceeds.
  EXPECT_TRUE(
      engine::migration_transition_legal(Step::kTransfer, Step::kAborting));
  EXPECT_TRUE(engine::migration_transition_legal(Step::kAborting,
                                                 Step::kDirectoryUpdate));
  // Never backwards, never out of the terminal step.
  EXPECT_FALSE(engine::migration_transition_legal(Step::kTeardown,
                                                  Step::kDuplication));
  EXPECT_FALSE(engine::migration_transition_legal(Step::kDirectoryUpdate,
                                                  Step::kDuplication));
  EXPECT_FALSE(
      engine::migration_transition_legal(Step::kAborting, Step::kTransfer));
}

TEST(SliceTransitionTest, TableEncodesLifecycle) {
  using State = engine::SliceRuntime::State;
  EXPECT_TRUE(engine::slice_transition_legal(State::kActive,
                                             State::kFreezePending));
  EXPECT_TRUE(
      engine::slice_transition_legal(State::kFreezePending, State::kFrozen));
  EXPECT_TRUE(
      engine::slice_transition_legal(State::kFreezePending, State::kActive));
  EXPECT_TRUE(
      engine::slice_transition_legal(State::kInactiveReplica, State::kActive));
  EXPECT_TRUE(engine::slice_transition_legal(State::kFrozen, State::kRetired));
  // fail_host retires a slice, then evict_slice retires it again.
  EXPECT_TRUE(engine::slice_transition_legal(State::kRetired, State::kRetired));
  // Stop-and-restart abort: a parked source frozen at its exact catch-up
  // point thaws back to active (the coordinator replays the dropped suffix).
  EXPECT_TRUE(engine::slice_transition_legal(State::kFrozen, State::kActive));
  EXPECT_FALSE(
      engine::slice_transition_legal(State::kRetired, State::kActive));
  EXPECT_FALSE(engine::slice_transition_legal(State::kActive, State::kFrozen));
}

TEST(SplitMergeTransitionTest, TablesEncodeRollForwardProtocol) {
  using S = engine::SplitStep;
  using M = engine::MergeStep;
  // Split order: create child, cut routing over, drain the captured half,
  // activate the child. Only the pre-cut-over step may abort.
  EXPECT_TRUE(engine::split_transition_legal(S::kCreateChild, S::kCutOver));
  EXPECT_TRUE(engine::split_transition_legal(S::kCreateChild, S::kAborting));
  EXPECT_TRUE(engine::split_transition_legal(S::kCutOver, S::kDrain));
  EXPECT_TRUE(engine::split_transition_legal(S::kDrain, S::kActivate));
  // Post-cut-over the split can only roll forward, never abort or rewind.
  EXPECT_FALSE(engine::split_transition_legal(S::kDrain, S::kAborting));
  EXPECT_FALSE(engine::split_transition_legal(S::kActivate, S::kCreateChild));
  EXPECT_FALSE(engine::split_transition_legal(S::kAborting, S::kCutOver));
  // Merge order: inline cut-over, drain the retiree, absorb its state into
  // the survivor, tear down. Merges have no abort edge at all.
  EXPECT_TRUE(engine::merge_transition_legal(M::kCutOver, M::kDrainRetiree));
  EXPECT_TRUE(engine::merge_transition_legal(M::kDrainRetiree, M::kAbsorb));
  EXPECT_TRUE(engine::merge_transition_legal(M::kAbsorb, M::kTeardown));
  EXPECT_FALSE(engine::merge_transition_legal(M::kTeardown, M::kCutOver));
  EXPECT_FALSE(engine::merge_transition_legal(M::kAbsorb, M::kDrainRetiree));
}

#if ESH_INVARIANTS_ENABLED

// ---- seeded faults: each must trip its named invariant ---------------------

TEST(SeededFaultTest, ClockWarpTripsEventTimeMonotonicity) {
  sim::Simulator sim;
  sim.schedule(millis(10), [] {});
  sim.testing_warp_clock(millis(100));
  try {
    sim.run_until(millis(200));
    FAIL() << "warped clock not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.subsystem(), "sim");
    EXPECT_EQ(v.name(), "event-time-monotonic");
    EXPECT_EQ(v.kind(), Kind::kInvariant);
  }
}

TEST(SeededFaultTest, IllegalMigrationTransitionThrowsStructured) {
  using Step = engine::MigrationStep;
  try {
    engine::assert_migration_transition(MigrationId{7}, SliceId{3},
                                        Step::kTeardown, Step::kDuplication);
    FAIL() << "illegal transition not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kStateMachine);
    EXPECT_EQ(v.subsystem(), "engine");
    EXPECT_EQ(v.name(), "migration-step-legal");
    EXPECT_EQ(v.detail().slice_id, 3u);
    EXPECT_EQ(v.detail().actual_value, "teardown -> duplication");
    EXPECT_NE(v.detail().note_text.find("migration 7"), std::string::npos);
  }
}

TEST(SeededFaultTest, IllegalSliceTransitionThrowsStructured) {
  using State = engine::SliceRuntime::State;
  try {
    engine::assert_slice_transition(SliceId{5}, State::kRetired,
                                    State::kActive);
    FAIL() << "illegal transition not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kStateMachine);
    EXPECT_EQ(v.name(), "slice-state-legal");
    EXPECT_EQ(v.detail().slice_id, 5u);
    EXPECT_EQ(v.detail().actual_value, "retired -> active");
  }
}

TEST(SeededFaultTest, IllegalSplitAndMergeTransitionsThrowStructured) {
  try {
    engine::assert_split_transition(MigrationId{9}, SliceId{4},
                                    engine::SplitStep::kDrain,
                                    engine::SplitStep::kAborting);
    FAIL() << "post-cut-over abort edge not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kStateMachine);
    EXPECT_EQ(v.subsystem(), "engine");
    EXPECT_EQ(v.name(), "split-step-legal");
    EXPECT_EQ(v.detail().slice_id, 4u);
    EXPECT_EQ(v.detail().actual_value, "drain -> aborting");
    EXPECT_NE(v.detail().note_text.find("transition 9"), std::string::npos);
  }
  try {
    engine::assert_merge_transition(MigrationId{10}, SliceId{6},
                                    engine::MergeStep::kAbsorb,
                                    engine::MergeStep::kDrainRetiree);
    FAIL() << "backwards merge edge not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kStateMachine);
    EXPECT_EQ(v.name(), "merge-step-legal");
    EXPECT_EQ(v.detail().slice_id, 6u);
    EXPECT_EQ(v.detail().actual_value, "absorb -> drain-retiree");
  }
}

// A split that serializes a subscription for the child but keeps it in the
// parent store (or drops one outright) breaks exactly-once; the M handler's
// conservation check must trip before the corrupt capture leaves the host.
TEST(SeededFaultTest, KeepOneOnSplitTripsStateConservation) {
  workload::PlainWorkload plain{{4, 0.02, 91}};
  auto matcher = std::make_unique<filter::BruteForceMatcher>();
  for (std::uint64_t i = 0; i < 8; ++i) {
    matcher->add(filter::AnySubscription{plain.subscription(i)});
  }
  matcher->testing_keep_one_on_split = true;
  pubsub::MHandler m{pubsub::OperatorNames{}, "M", 0, std::move(matcher),
                     cluster::CostModel{}};
  BinaryWriter w;
  const KeyCoverage everything{1, 0, 0, 0};  // covers every key
  try {
    (void)m.split_state(everything, w);
    FAIL() << "retained-but-serialized subscription not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "pubsub");
    EXPECT_EQ(v.name(), "split-state-conserved");
    EXPECT_EQ(v.detail().expected_value, "8");
    EXPECT_EQ(v.detail().actual_value, "9");  // 1 retained + 8 serialized
  }
}

TEST(SeededFaultTest, IaasDoubleReleaseTripsPrecondition) {
  sim::Simulator sim;
  cluster::IaasConfig config;
  config.max_hosts = 2;
  cluster::IaasPool pool{sim, config};
  const HostId id = pool.allocate({});
  pool.release(id);
  try {
    pool.release(id);
    FAIL() << "double release not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kPrecondition);
    EXPECT_EQ(v.subsystem(), "cluster");
    EXPECT_EQ(v.name(), "iaas-no-double-release");
    EXPECT_EQ(v.detail().host_id, id.value());
  }
  // A never-allocated id is a plain defensive logic_error, not a contract
  // violation: the caller holds no stale handle, it holds garbage.
  try {
    pool.release(HostId{999});
    FAIL() << "unknown host accepted";
  } catch (const std::logic_error& e) {
    EXPECT_EQ(dynamic_cast<const ContractViolation*>(&e), nullptr);
  }
}

// Minimal engine::Context for driving EpHandler directly.
class RecordingContext final : public engine::Context {
 public:
  void emit(std::string_view op, engine::Routing,
            engine::PayloadPtr payload) override {
    emitted.emplace_back(std::string{op}, std::move(payload));
  }
  [[nodiscard]] SimTime now() const override { return SimTime{0}; }
  [[nodiscard]] std::size_t slice_index() const override { return 0; }
  [[nodiscard]] std::size_t slice_count(std::string_view) const override {
    return 1;
  }
  [[nodiscard]] std::vector<std::uint32_t> fan_indices(
      std::string_view) const override {
    return {0};
  }
  [[nodiscard]] std::uint64_t routing_epoch() const override { return 0; }

  std::vector<std::pair<std::string, engine::PayloadPtr>> emitted;
};

pubsub::MatchListPayload* make_list(PublicationId pub, std::uint32_t index,
                                    std::uint32_t expected,
                                    engine::PayloadPtr* out) {
  auto list = std::make_shared<pubsub::MatchListPayload>();
  list->publication = pub;
  list->m_slice_index = index;
  list->expected_lists = expected;
  list->subscribers = {SubscriberId{1}};
  auto* raw = list.get();
  *out = std::move(list);
  return raw;
}

TEST(SeededFaultTest, EpDuplicateDispatchTripsExactlyOnce) {
  RecordingContext ctx;
  pubsub::EpHandler ep{pubsub::OperatorNames{}, 1, cluster::CostModel{}};
  engine::PayloadPtr p;
  make_list(PublicationId{42}, 0, 1, &p);
  ep.on_event(ctx, p);  // sole partial list -> dispatches the notification
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.emitted[0].first, "sink");
  try {
    ep.testing_force_dispatch(ctx, PublicationId{42});
    FAIL() << "duplicate dispatch not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.subsystem(), "pubsub");
    EXPECT_EQ(v.name(), "ep-exactly-once");
    EXPECT_NE(v.detail().note_text.find("publication 42"), std::string::npos);
  }
  EXPECT_EQ(ctx.emitted.size(), 1u);  // the duplicate never reached the sink
}

TEST(SeededFaultTest, EpOutOfRangeSliceIndexTripsBoundsPrecondition) {
  RecordingContext ctx;
  pubsub::EpHandler ep{pubsub::OperatorNames{}, 2, cluster::CostModel{}};
  engine::PayloadPtr p;
  make_list(PublicationId{43}, 5, 2, &p);
  try {
    ep.on_event(ctx, p);
    FAIL() << "out-of-range slice index not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kPrecondition);
    EXPECT_EQ(v.name(), "ep-list-in-fan");
    EXPECT_EQ(v.detail().actual_value, "5");
  }
}

// The AP offload plans each publication's broadcast fan-out off-thread; a
// corrupted plan (fewer slices than the target operator really has) must be
// caught by the consuming on_event before the broadcast is emitted.
TEST(SeededFaultTest, CorruptedRoutePlanTripsApBroadcastCompleteness) {
  RecordingContext ctx;
  ThreadPool pool{2};
  pubsub::ApHandler ap{{pubsub::MatchingTarget{"M", 1, false}},
                       cluster::CostModel{},
                       &pool};

  workload::PlainWorkload plain{{4, 0.02, 91}};
  std::vector<engine::PayloadPtr> batch;
  batch.push_back(std::make_shared<pubsub::SubscriptionPayload>(
      filter::AnySubscription{plain.subscription(1)}));
  batch.push_back(std::make_shared<pubsub::PublicationPayload>(
      filter::AnyPublication{plain.next_publication()}, SimTime{0}));
  for (const auto& p : batch) ASSERT_TRUE(ap.can_batch(p));
  ap.on_batch_start(ctx, batch);

  // The uncorrupted plan routes the subscription cleanly.
  ap.on_event(ctx, batch[0]);
  ASSERT_EQ(ctx.emitted.size(), 1u);

  ap.testing_corrupt_route_plan();
  try {
    ap.on_event(ctx, batch[1]);
    FAIL() << "corrupted route plan not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "pubsub");
    EXPECT_EQ(v.name(), "ap-offload-broadcast-complete");
    EXPECT_EQ(v.detail().expected_value, "1");
    EXPECT_EQ(v.detail().actual_value, "0");
  }
  // The incomplete broadcast never left the handler.
  EXPECT_EQ(ctx.emitted.size(), 1u);
}

// The EP offload precomputes one merged subscriber list per publication the
// batch completes, committed by the per-event calls in plan order; a plan
// scrambled out of that order must trip before any wrong merge is dispatched.
TEST(SeededFaultTest, ScrambledMergePlanTripsEpOrderInvariant) {
  RecordingContext ctx;
  pubsub::EpHandler ep{pubsub::OperatorNames{}, 1, cluster::CostModel{}};
  std::vector<engine::PayloadPtr> batch(2);
  make_list(PublicationId{50}, 0, 1, &batch[0]);
  make_list(PublicationId{51}, 0, 1, &batch[1]);
  for (const auto& p : batch) ASSERT_TRUE(ep.can_batch(p));
  ep.on_batch_start(ctx, batch);

  ep.testing_scramble_merge_plan();
  try {
    ep.on_event(ctx, batch[0]);
    FAIL() << "out-of-order merge commit not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "pubsub");
    EXPECT_EQ(v.name(), "ep-offload-merge-ordered");
    EXPECT_NE(v.detail().note_text.find("out of plan order"),
              std::string::npos);
  }
  // The misordered notification never reached the sink.
  EXPECT_TRUE(ctx.emitted.empty());
}

// ---- reliable control channel: each invariant tripped by a seeded fault ----

// Shared rig: a ReliableChannel receiver plus a raw endpoint that can forge
// wire frames at it, bypassing the sender-side state machine entirely.
struct ReliableFaultRig {
  sim::Simulator sim;
  net::NetworkConfig config;
  net::Network network{sim, config};
  std::vector<net::Delivery> delivered;
  net::ReliableChannel rx{sim, network, network.new_endpoint(), HostId{2},
                          [this](const net::Delivery& d) {
                            delivered.push_back(d);
                          }};
  net::Endpoint forger = network.new_endpoint();

  ReliableFaultRig() {
    network.bind(forger, HostId{1}, [](const net::Delivery&) {});
  }

  void forge_data(std::uint64_t seq) {
    auto frame = std::make_shared<net::ReliableData>();
    frame->seq = seq;
    frame->payload = std::make_shared<net::Message>();
    frame->payload_bytes = 8;
    network.send(forger, rx.endpoint(), std::move(frame),
                 8 + net::ReliableChannel::kHeaderBytes);
  }
};

TEST(SeededFaultTest, RewoundRxCursorTripsReliableNoDupDeliver) {
  ReliableFaultRig rig;
  rig.forge_data(1);
  rig.sim.run();
  ASSERT_EQ(rig.delivered.size(), 1u);  // seq 1 reached the app once

  // Warp the admission cursor below the delivered audit trail: the next
  // retransmission of seq 1 is re-admitted and would reach the app twice.
  rig.rx.testing_rewind_rx_cursor(rig.forger, 1);
  rig.forge_data(1);
  try {
    rig.sim.run();
    FAIL() << "duplicate delivery not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "net");
    EXPECT_EQ(v.name(), "reliable-no-dup-deliver");
    EXPECT_EQ(v.detail().expected_value, "2");
    EXPECT_EQ(v.detail().actual_value, "1");
  }
  EXPECT_EQ(rig.delivered.size(), 1u);  // the duplicate never reached the app
}

TEST(SeededFaultTest, SkippedRxCursorTripsReliableNoGap) {
  ReliableFaultRig rig;
  rig.forge_data(1);
  rig.sim.run();
  ASSERT_EQ(rig.delivered.size(), 1u);

  // Warp the admission cursor past seqs 2..4: seq 5 is admitted as if in
  // order, but the audit trail still says only seq 1 was handed up.
  rig.rx.testing_skip_rx_cursor(rig.forger, 5);
  rig.forge_data(5);
  try {
    rig.sim.run();
    FAIL() << "delivery gap not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "net");
    EXPECT_EQ(v.name(), "reliable-no-gap");
    EXPECT_EQ(v.detail().expected_value, "2");
    EXPECT_EQ(v.detail().actual_value, "5");
  }
  EXPECT_EQ(rig.delivered.size(), 1u);  // the gapped message was withheld
}

TEST(SeededFaultTest, OverbudgetRetransmitTripsRetryBudgetBounded) {
  sim::Simulator sim;
  net::NetworkConfig config;
  net::Network network{sim, config};
  net::ReliableChannelConfig rc;
  rc.max_retries = 3;
  net::ReliableChannel a{sim,     network, network.new_endpoint(),
                         HostId{1}, [](const net::Delivery&) {}, rc};
  net::ReliableChannel b{sim,     network, network.new_endpoint(),
                         HostId{2}, [](const net::Delivery&) {}, rc};

  network.set_host_down(HostId{2}, true);
  a.send(b.endpoint(), std::make_shared<net::Message>(), 16);
  ASSERT_EQ(a.in_flight(), 1u);
  try {
    // Inflate the retry counter past the budget and force a transmission:
    // the invariant must fire before the frame hits the wire.
    a.testing_force_overbudget_retransmit(b.endpoint());
    FAIL() << "over-budget retransmission not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "net");
    EXPECT_EQ(v.name(), "retry-budget-bounded");
    EXPECT_EQ(v.detail().expected_value, "3");
    EXPECT_EQ(v.detail().actual_value, "4");
  }
}

TEST(SeededFaultTest, CorruptedChannelTripsGapFreedom) {
  harness::TestbedConfig config;
  config.worker_hosts = 2;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 50;
  config.workload.matching_rate = 0.05;
  config.workload.m_slices = 2;
  config.source_slices = 1;
  config.ap_slices = 2;
  config.ep_slices = 2;
  config.sink_slices = 1;
  config.iaas.max_hosts = 5;
  harness::Testbed bed{config};
  bed.store_subscriptions(50);

  const auto& cfg = bed.engine().static_config();
  const auto& m_op = cfg.operators.at(cfg.index_of("M"));
  ASSERT_FALSE(m_op.slices.empty());
  auto* runtime = bed.engine().slice_runtime(m_op.slices.front());
  ASSERT_NE(runtime, nullptr);
  // Corrupt the victim's input-channel cursors from every AP slice, so the
  // publication trips the invariant no matter which AP slice forwards it.
  for (SliceId ap : cfg.operators.at(cfg.index_of("AP")).slices) {
    runtime->testing_corrupt_channel(ap);
  }
  bed.publish_one();
  try {
    bed.run_for(seconds(2));
    FAIL() << "corrupted channel cursors not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.subsystem(), "engine");
    EXPECT_EQ(v.name(), "channel-gap-free");
    EXPECT_EQ(v.detail().slice_id, m_op.slices.front().value());
  }
}

// A split plan that "forgets" to refine the parent's coverage leaves parent
// and child overlapping: some keys would be matched twice. The cut-over's
// completeness invariant must trip before the corrupt routing table is used.
TEST(SeededFaultTest, CorruptSplitPlanTripsKeyCoverageCompleteness) {
  harness::TestbedConfig config;
  config.worker_hosts = 2;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 50;
  config.workload.matching_rate = 0.05;
  config.workload.m_slices = 2;
  config.source_slices = 1;
  config.ap_slices = 2;
  config.ep_slices = 2;
  config.sink_slices = 1;
  config.iaas.max_hosts = 5;
  harness::Testbed bed{config};  // no manager: the split is driven manually
  bed.store_subscriptions(50);

  const auto& cfg = bed.engine().static_config();
  const SliceId parent = cfg.operators.at(cfg.index_of("M")).slices.front();
  const HostId parent_host = bed.engine().slice_host(parent);
  HostId dst = parent_host;
  for (const HostId host : bed.worker_hosts()) {
    if (host != parent_host) dst = host;
  }
  ASSERT_NE(dst, parent_host);

  bed.engine().testing_corrupt_split_plan = true;
  bed.simulator().schedule(millis(10), [&] {
    bed.engine().split_slice(parent, dst,
                             [](const engine::TransitionReport&) {});
  });
  try {
    bed.run_for(seconds(5));
    FAIL() << "overlapping split coverages not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "engine");
    EXPECT_EQ(v.name(), "key-coverage-complete");
    EXPECT_EQ(v.detail().slice_id, parent.value());
    EXPECT_NE(v.detail().note_text.find("split cut-over"), std::string::npos);
  }
}

// ---- migration-strategy lab: each strategy invariant tripped by a seam ----

// Shared rig for the strategy faults: two worker hosts with the M operator
// spread across both, so one M slice can migrate to the other worker.
harness::TestbedConfig strategy_rig_config() {
  harness::TestbedConfig config;
  config.worker_hosts = 2;
  config.io_hosts = 2;
  config.workload.dimensions = 4;
  config.workload.total_subscriptions = 50;
  config.workload.matching_rate = 0.05;
  config.workload.m_slices = 2;
  config.source_slices = 1;
  config.ap_slices = 2;
  config.ep_slices = 2;
  config.sink_slices = 1;
  config.iaas.max_hosts = 5;
  return config;
}

struct StrategyMove {
  SliceId slice;
  HostId dst;
};

StrategyMove pick_m_move(harness::Testbed& bed) {
  const auto& cfg = bed.engine().static_config();
  const SliceId slice = cfg.operators.at(cfg.index_of("M")).slices.front();
  const HostId src = bed.engine().slice_host(slice);
  HostId dst = src;
  for (const HostId host : bed.worker_hosts()) {
    if (host != src) dst = host;
  }
  EXPECT_NE(dst, src);
  return {slice, dst};
}

// An incremental-precopy coordinator that issues one dirty-delta round past
// its budget must trip before the over-budget request leaves the host.
TEST(SeededFaultTest, ExtraPrecopyRoundTripsRoundBudget) {
  auto config = strategy_rig_config();
  // One-round budget: the seeded extra round is round two, over budget.
  config.engine.precopy_rounds = 1;
  harness::Testbed bed{config};
  bed.store_subscriptions(50);
  const StrategyMove mv = pick_m_move(bed);

  bed.engine().testing_force_extra_precopy_round = true;
  bed.simulator().schedule(millis(10), [&] {
    bed.engine().migrate(mv.slice, mv.dst,
                         engine::MigrationStrategyKind::kIncrementalPrecopy,
                         [](const engine::MigrationReport&) {});
  });
  try {
    bed.run_for(seconds(5));
    FAIL() << "over-budget precopy round not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "engine");
    EXPECT_EQ(v.name(), "precopy-rounds-bounded");
    EXPECT_EQ(v.detail().slice_id, mv.slice.value());
    EXPECT_EQ(v.detail().actual_value, "2");
  }
}

// Stop-and-restart parks the source before any state ships; a seeded
// resurrection of the source right under the activation check simulates a
// lost park — the replica going live would mean two primaries at once.
TEST(SeededFaultTest, ResurrectedSourceTripsStopRestartDualActive) {
  harness::Testbed bed{strategy_rig_config()};
  bed.store_subscriptions(50);
  const StrategyMove mv = pick_m_move(bed);

  bed.engine().testing_force_src_active_on_activate = true;
  bed.simulator().schedule(millis(10), [&] {
    bed.engine().migrate(mv.slice, mv.dst,
                         engine::MigrationStrategyKind::kStopAndRestart,
                         [](const engine::MigrationReport&) {});
  });
  try {
    bed.run_for(seconds(5));
    FAIL() << "dual-active source not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "engine");
    EXPECT_EQ(v.name(), "stop-restart-no-dual-active");
    EXPECT_EQ(v.detail().slice_id, mv.slice.value());
    EXPECT_EQ(v.detail().actual_value, "active");
  }
}

// The enforcer's protocol choice is a pure function of the signals the plan
// records; a plan whose stamped strategy disagrees with its own signals must
// be rejected by the manager before the migration starts.
TEST(SeededFaultTest, CorruptStrategyPlanTripsSelectionDeterminism) {
  auto config = strategy_rig_config();
  config.with_manager = true;
  config.engine.probe_interval = millis(100);
  harness::Testbed bed{config};
  elastic::Manager& manager = *bed.manager();
  manager.set_enforcement(false);  // quiet while subscriptions store
  bed.store_subscriptions(50);
  const StrategyMove mv = pick_m_move(bed);

  // Replace the policy with a single hand-built move whose strategy is
  // stamped exactly as select_strategy derives it from the recorded
  // signals; only the seeded corruption below makes them disagree.
  manager.set_policy([&](const elastic::SystemView& view) {
    elastic::MigrationPlan plan;
    for (const elastic::SliceView& sv : view.slices) {
      if (sv.slice != mv.slice) continue;
      plan.reason = elastic::MigrationPlan::Reason::kLocalHigh;
      elastic::MigrationPlan::Move move;
      move.slice = sv.slice;
      move.dst = mv.dst;
      move.state_bytes = sv.state_bytes;
      move.cpu = sv.cpu;
      move.strategy = elastic::select_strategy(manager.enforcer().config(),
                                               sv.state_bytes, sv.cpu);
      plan.moves.push_back(move);
    }
    return plan;
  });
  manager.testing_corrupt_strategy_plan = true;
  manager.set_enforcement(true);
  try {
    bed.run_for(seconds(5));
    FAIL() << "corrupted strategy plan not detected";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), Kind::kInvariant);
    EXPECT_EQ(v.subsystem(), "elastic");
    EXPECT_EQ(v.name(), "strategy-selection-deterministic");
    EXPECT_EQ(v.detail().slice_id, mv.slice.value());
  }
}

#else  // !ESH_INVARIANTS_ENABLED

// ---- default build: the macros must be free and inert ----------------------

TEST(DisabledContractsTest, MacrosExpandToNoOps) {
  // Arguments are not evaluated in the default build; a false condition must
  // neither throw nor be computed.
  bool evaluated = false;
  // The macros discard their arguments entirely in this build.
  [[maybe_unused]] auto probe = [&evaluated] {
    evaluated = true;
    return false;
  };
  EXPECT_NO_THROW(ESH_INVARIANT("test", "never-fires", probe(), Detail{}));
  EXPECT_NO_THROW(
      ESH_PRECONDITION("test", "never-fires", probe(), Detail{}));
  EXPECT_NO_THROW(
      ESH_STATE_MACHINE_ASSERT("test", "never-fires", probe(), Detail{}));
  EXPECT_FALSE(evaluated);
  EXPECT_FALSE(contracts::kEnabled);
}

#endif  // ESH_INVARIANTS_ENABLED

}  // namespace
}  // namespace esh
