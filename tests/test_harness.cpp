#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "harness/testbed.hpp"

namespace esh::harness {
namespace {

TestbedConfig tiny_config() {
  TestbedConfig config;
  config.worker_hosts = 3;
  config.io_hosts = 2;
  config.workload.total_subscriptions = 2'000;
  config.workload.m_slices = 4;
  config.ap_slices = 2;
  config.ep_slices = 2;
  config.source_slices = 2;
  config.sink_slices = 2;
  config.seed = 17;
  return config;
}

TEST(Testbed, BuildsTheFullStack) {
  Testbed bed{tiny_config()};
  EXPECT_EQ(bed.worker_hosts().size(), 3u);
  EXPECT_EQ(bed.io_hosts().size(), 2u);
  EXPECT_TRUE(bed.manager_host().valid());
  EXPECT_EQ(bed.manager(), nullptr);  // with_manager defaults to false
  // 2 source + 2 AP + 4 M + 2 EP + 2 sink slices deployed.
  std::size_t slices = 0;
  for (HostId host : bed.worker_hosts()) {
    slices += bed.engine().slices_on(host).size();
  }
  for (HostId host : bed.io_hosts()) {
    slices += bed.engine().slices_on(host).size();
  }
  EXPECT_EQ(slices, 12u);
}

TEST(Testbed, IoHostsOnlyCarrySourceAndSink) {
  Testbed bed{tiny_config()};
  const auto& cfg = bed.engine().static_config();
  for (HostId host : bed.io_hosts()) {
    for (SliceId slice : bed.engine().slices_on(host)) {
      const auto& name = cfg.op_of(slice).name;
      EXPECT_TRUE(name == "source" || name == "sink") << name;
    }
  }
}

TEST(Testbed, CustomPlacementHookIsHonored) {
  auto config = tiny_config();
  config.placement = [](const std::vector<HostId>& workers) {
    pubsub::HostAssignment assignment;
    assignment["AP"] = {workers[0]};
    assignment["M"] = {workers[1]};
    assignment["EP"] = {workers[2]};
    return assignment;
  };
  Testbed bed{config};
  const auto workers = bed.worker_hosts();
  for (SliceId slice : bed.hub().slices_of("M")) {
    EXPECT_EQ(bed.engine().slice_host(slice), workers[1]);
  }
  for (SliceId slice : bed.hub().slices_of("AP")) {
    EXPECT_EQ(bed.engine().slice_host(slice), workers[0]);
  }
}

TEST(Testbed, StoresSubscriptionsCompletely) {
  Testbed bed{tiny_config()};
  bed.store_subscriptions(2'000);
  EXPECT_EQ(bed.hub().stored_subscriptions(), 2'000u);
}

TEST(Testbed, CompletionRatioNearOneBelowSaturation) {
  Testbed bed{tiny_config()};
  bed.store_subscriptions(2'000);
  const double ratio = bed.completion_ratio(5.0, seconds(20));
  EXPECT_GE(ratio, 0.9);
  EXPECT_LE(ratio, 1.05);
}

TEST(Testbed, DriverPublishesThroughTheHub) {
  Testbed bed{tiny_config()};
  bed.store_subscriptions(500);
  auto driver = bed.drive(
      std::make_shared<workload::ConstantRate>(20.0, seconds(10)));
  bed.run_for(seconds(12));
  EXPECT_GT(driver->published(), 100u);
  EXPECT_EQ(bed.hub().publications_sent(), driver->published());
  EXPECT_GT(bed.delays().publications_completed(), 100u);
}

TEST(Testbed, RunUntilTimesOut) {
  Testbed bed{tiny_config()};
  const bool ok = bed.run_until([] { return false; }, seconds(2));
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace esh::harness
