// Self-healing cluster: the manager's failure detector turns missed probe
// deadlines into dead verdicts, and the recovery orchestration re-places
// and replays the lost slices with no manual intervention.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/iaas.hpp"
#include "coord/coord.hpp"
#include "elastic/failure_detector.hpp"
#include "elastic/manager.hpp"
#include "engine/engine.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace esh::elastic {
namespace {

// ---- failure detector unit tests --------------------------------------------

class FailureDetectorTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  FailureDetectorConfig config{millis(100), 2, 4};
};

TEST_F(FailureDetectorTest, EscalatesAliveSuspectDead) {
  FailureDetector fd{sim, config};
  std::vector<HealthEvent> suspects, deads;
  fd.on_suspect([&](const HealthEvent& ev) { suspects.push_back(ev); });
  fd.on_dead([&](const HealthEvent& ev) { deads.push_back(ev); });

  const HostId host{1};
  fd.watch(host);
  EXPECT_EQ(fd.health(host), HostHealth::kAlive);

  // Regular heartbeats keep the host alive.
  for (int i = 0; i < 5; ++i) {
    sim.run_until(sim.now() + millis(100));
    fd.heartbeat(host);
  }
  EXPECT_EQ(fd.health(host), HostHealth::kAlive);
  EXPECT_TRUE(suspects.empty());

  // Silence: suspect after 2 missed intervals, dead after 4.
  sim.run_until(sim.now() + millis(250));
  EXPECT_EQ(fd.health(host), HostHealth::kSuspect);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].host, host);
  EXPECT_TRUE(deads.empty());

  sim.run_until(sim.now() + millis(250));
  EXPECT_EQ(fd.health(host), HostHealth::kDead);
  ASSERT_EQ(deads.size(), 1u);
  EXPECT_EQ(deads[0].host, host);
  EXPECT_GE(deads[0].silence, millis(400));

  // Verdicts are final: late heartbeats do not resurrect the host.
  fd.heartbeat(host);
  sim.run_until(sim.now() + millis(500));
  EXPECT_EQ(fd.health(host), HostHealth::kDead);
  EXPECT_EQ(deads.size(), 1u);  // fired exactly once
  EXPECT_EQ(fd.dead_hosts(), std::vector<HostId>{host});
}

TEST_F(FailureDetectorTest, HeartbeatClearsSuspicion) {
  FailureDetector fd{sim, config};
  std::vector<HealthEvent> deads;
  fd.on_dead([&](const HealthEvent& ev) { deads.push_back(ev); });
  const HostId host{1};
  fd.watch(host);
  sim.run_until(sim.now() + millis(250));
  EXPECT_EQ(fd.health(host), HostHealth::kSuspect);
  fd.heartbeat(host);
  EXPECT_EQ(fd.health(host), HostHealth::kAlive);
  sim.run_until(sim.now() + millis(250));
  EXPECT_EQ(fd.health(host), HostHealth::kSuspect);  // counted from heartbeat
  EXPECT_TRUE(deads.empty());
}

TEST_F(FailureDetectorTest, MarkDeadRecordsInheritedVerdictSilently) {
  FailureDetector fd{sim, config};
  std::vector<HealthEvent> deads;
  fd.on_dead([&](const HealthEvent& ev) { deads.push_back(ev); });
  const HostId host{7};
  fd.mark_dead(host);
  EXPECT_EQ(fd.health(host), HostHealth::kDead);
  EXPECT_TRUE(deads.empty());
  // watch() must not resurrect an inherited verdict.
  fd.watch(host);
  EXPECT_EQ(fd.health(host), HostHealth::kDead);
}

TEST_F(FailureDetectorTest, UnwatchedHostsReportAliveAndConfigValidates) {
  FailureDetector fd{sim, config};
  EXPECT_EQ(fd.health(HostId{42}), HostHealth::kAlive);
  EXPECT_FALSE(fd.watching(HostId{42}));
  EXPECT_THROW((FailureDetector{sim, FailureDetectorConfig{millis(0), 2, 4}}),
               std::invalid_argument);
  EXPECT_THROW(
      (FailureDetector{sim, FailureDetectorConfig{millis(100), 3, 2}}),
      std::invalid_argument);
  EXPECT_THROW(
      (FailureDetector{sim, FailureDetectorConfig{millis(100), 0, 4}}),
      std::invalid_argument);
}

// ---- manager recovery orchestration -----------------------------------------

struct NumPayload final : engine::Payload {
  explicit NumPayload(std::uint64_t v) : value(v) {}
  std::uint64_t value;
  [[nodiscard]] std::size_t bytes() const override { return 64; }
};

struct Record {
  std::size_t slice_index;
  std::uint64_t value;
};

class CollectHandler final : public engine::Handler {
 public:
  CollectHandler(std::shared_ptr<std::vector<Record>> out, std::size_t index)
      : out_(std::move(out)), index_(index) {}
  void on_event(engine::Context&, const engine::PayloadPtr& p) override {
    out_->push_back(Record{index_, dynamic_cast<const NumPayload&>(*p).value});
  }
  double cost_units(const engine::PayloadPtr&) const override { return 5.0; }
  cluster::LockMode lock_mode(const engine::PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::shared_ptr<std::vector<Record>> out_;
  std::size_t index_;
};

class SumForwardHandler final : public engine::Handler {
 public:
  explicit SumForwardHandler(std::string next) : next_(std::move(next)) {}
  void on_event(engine::Context& ctx, const engine::PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    sum_ += num.value;
    if (!next_.empty()) ctx.emit(next_, engine::Routing::hash(num.value), p);
  }
  double cost_units(const engine::PayloadPtr&) const override { return 20.0; }
  cluster::LockMode lock_mode(const engine::PayloadPtr&) const override {
    return cluster::LockMode::kWrite;
  }
  void serialize_state(BinaryWriter& w) const override { w.write_u64(sum_); }
  void restore_state(BinaryReader& r) override { sum_ = r.read_u64(); }
  std::size_t state_bytes() const override { return 8; }

  std::uint64_t sum_ = 0;

 private:
  std::string next_;
};

class GenHandler final : public engine::Handler {
 public:
  explicit GenHandler(std::string next) : next_(std::move(next)) {}
  void on_event(engine::Context& ctx, const engine::PayloadPtr& p) override {
    const auto& num = dynamic_cast<const NumPayload&>(*p);
    ctx.emit(next_, engine::Routing::hash(num.value), p);
  }
  double cost_units(const engine::PayloadPtr&) const override { return 2.0; }
  cluster::LockMode lock_mode(const engine::PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  std::string next_;
};

// Full self-healing rig: pool-allocated hosts, engine with checkpoints,
// manager with failure detection. Hosts 1..4 hold gen/work0/work1/collect.
class SelfHealingTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  net::Network net{sim};
  std::unique_ptr<cluster::IaasPool> pool;
  std::unique_ptr<coord::CoordService> coord;
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<Manager> manager;
  std::shared_ptr<std::vector<Record>> collected =
      std::make_shared<std::vector<Record>>();
  std::vector<HostId> hosts;

  void build(std::size_t max_hosts = 8) {
    cluster::IaasConfig iaas;
    iaas.max_hosts = max_hosts;
    iaas.boot_delay = millis(500);
    pool = std::make_unique<cluster::IaasPool>(sim, iaas);
    coord = std::make_unique<coord::CoordService>(sim);

    engine::EngineConfig config;
    config.flush_interval = millis(10);
    config.control_tick = millis(5);
    config.probe_interval = millis(100);
    config.checkpoints.enabled = true;
    config.checkpoints.interval = millis(500);
    engine = std::make_unique<engine::Engine>(sim, net, HostId{999}, config, 7);

    for (std::size_t i = 0; i < 4; ++i) {
      hosts.push_back(pool->allocate([this](cluster::Host& h) {
        engine->add_host(h);
      }));
    }
    sim.run_until(sim.now() + millis(600));  // boot

    engine::Topology t;
    t.operators.push_back(engine::OperatorSpec{"gen", 1, [](std::size_t) {
      return std::make_unique<GenHandler>("work");
    }});
    t.operators.push_back(engine::OperatorSpec{"work", 2, [](std::size_t) {
      return std::make_unique<SumForwardHandler>("collect");
    }});
    t.operators.push_back(
        engine::OperatorSpec{"collect", 2, [this](std::size_t i) {
          return std::make_unique<CollectHandler>(collected, i);
        }});
    t.edges = {{"gen", "work"}, {"work", "collect"}};
    engine->deploy(t, {
        {"gen", {hosts[0]}},
        {"work", {hosts[1], hosts[2]}},
        {"collect", {hosts[3], hosts[3]}},
    });
  }

  ManagerConfig manager_config() {
    ManagerConfig cfg;
    cfg.elastic_operators = {"work"};
    cfg.recovery.enabled = true;
    cfg.recovery.detector.probe_interval = millis(100);
    cfg.recovery.detector.suspect_after = 2;
    cfg.recovery.detector.dead_after = 4;
    cfg.recovery.attempt_timeout = seconds(5);
    return cfg;
  }

  void start_manager(const std::vector<HostId>& managed) {
    manager = std::make_unique<Manager>(sim, net, *engine, *pool, *coord,
                                        HostId{999}, manager_config());
    manager->set_enforcement(false);
    manager->start(managed);
  }

  void inject_values(std::uint64_t count, SimDuration gap) {
    SimTime at = sim.now();
    for (std::uint64_t v = 1; v <= count; ++v) {
      at += gap;
      sim.schedule_at(at, [this, v] {
        engine->inject("gen", 0, std::make_shared<NumPayload>(v));
      });
    }
  }

  void expect_exactly_once(std::uint64_t count) {
    ASSERT_EQ(collected->size(), count);
    std::map<std::uint64_t, int> seen;
    for (const Record& r : *collected) ++seen[r.value];
    for (std::uint64_t v = 1; v <= count; ++v) {
      ASSERT_EQ(seen[v], 1) << "value " << v;
    }
  }
};

TEST_F(SelfHealingTest, CrashedHostRecoversOntoSurvivorAutomatically) {
  build();
  start_manager({hosts[1], hosts[2]});
  constexpr std::uint64_t kValues = 400;
  inject_values(kValues, millis(10));
  sim.run_until(sim.now() + millis(1500));  // past the first checkpoint

  // Crash the host holding work:0. No manual fail_host/recover_slice: the
  // probe silence alone must drive detection and recovery.
  const SliceId lost = engine->slice_id("work", 0);
  ASSERT_EQ(engine->slice_host(lost), hosts[1]);
  net.set_host_down(hosts[1], true);

  sim.run_until(sim.now() + seconds(30));
  ASSERT_EQ(manager->recoveries().size(), 1u);
  const RecoveryReport& report = manager->recoveries()[0];
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.host, hosts[1]);
  EXPECT_EQ(report.slices_lost, std::vector<SliceId>{lost});
  EXPECT_EQ(report.slices_recovered, 1u);
  EXPECT_TRUE(report.replacement_hosts.empty());  // survivor had room
  EXPECT_GT(report.mttr(), SimDuration::zero());
  EXPECT_GE(report.quarantined, report.detected);
  EXPECT_GE(report.placed, report.quarantined);
  EXPECT_GE(report.recovered, report.placed);
  // Detection needed at least dead_after probe intervals of silence.
  EXPECT_GE(report.detected, millis(1500) + 4 * millis(100));

  // The slice lives on the surviving managed host and traffic is intact.
  EXPECT_EQ(engine->slice_host(lost), hosts[2]);
  EXPECT_FALSE(engine->slice_lost(lost));
  expect_exactly_once(kValues);

  // The verdict and the new placement were persisted for successors.
  EXPECT_EQ(coord->read("/estreamhub/health/" +
                        std::to_string(hosts[1].value())),
            "dead");
  EXPECT_EQ(coord->read("/estreamhub/config/slices/" +
                        std::to_string(lost.value())),
            std::to_string(hosts[2].value()));
  EXPECT_EQ(manager->managed_hosts(), std::vector<HostId>{hosts[2]});
}

TEST_F(SelfHealingTest, AllocatesReplacementHostWhenSurvivorsLackCapacity) {
  build();
  // Only the crashed host is managed: placement has no surviving bins and
  // must allocate a replacement from the pool.
  start_manager({hosts[1]});
  constexpr std::uint64_t kValues = 300;
  inject_values(kValues, millis(10));
  sim.run_until(sim.now() + millis(1200));

  const SliceId lost = engine->slice_id("work", 0);
  net.set_host_down(hosts[1], true);
  sim.run_until(sim.now() + seconds(30));

  ASSERT_EQ(manager->recoveries().size(), 1u);
  const RecoveryReport& report = manager->recoveries()[0];
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.replacement_hosts.size(), 1u);
  const HostId fresh = report.replacement_hosts[0];
  EXPECT_TRUE(engine->has_host(fresh));
  EXPECT_EQ(engine->slice_host(lost), fresh);
  // Boot delay is part of the MTTR.
  EXPECT_GE(report.mttr(), millis(500));
  // The replacement joined the managed set (and is being watched).
  EXPECT_EQ(manager->managed_hosts(), std::vector<HostId>{fresh});
  EXPECT_TRUE(manager->failure_detector()->watching(fresh));
  expect_exactly_once(kValues);
}

TEST_F(SelfHealingTest, SuccessorManagerInheritsDeadVerdict) {
  build();
  start_manager({hosts[1], hosts[2]});
  inject_values(200, millis(10));
  sim.run_until(sim.now() + millis(1500));
  net.set_host_down(hosts[1], true);
  sim.run_until(sim.now() + seconds(30));
  ASSERT_EQ(manager->recoveries().size(), 1u);

  // A restarted manager instance recovers the managed set from the
  // coordination tree and must not re-adopt the dead host. The previous
  // instance is gone (its detector dies with it).
  manager.reset();
  Manager successor{sim, net, *engine, *pool, *coord, HostId{999},
                    manager_config()};
  successor.set_enforcement(false);
  std::optional<bool> ready;
  successor.start_from_coordination([&](bool ok) { ready = ok; });
  sim.run_until(sim.now() + seconds(1));
  ASSERT_TRUE(ready.has_value());
  EXPECT_TRUE(*ready);
  EXPECT_EQ(successor.managed_hosts(), std::vector<HostId>{hosts[2]});
  EXPECT_EQ(successor.failure_detector()->health(hosts[1]),
            HostHealth::kDead);
}

TEST_F(SelfHealingTest, StartFromCoordinationWithoutStateFailsCleanly) {
  build();
  // Nothing persisted yet: recovery reports failure, nothing is enforced,
  // and a subsequent fresh start() must succeed.
  manager = std::make_unique<Manager>(sim, net, *engine, *pool, *coord,
                                      HostId{999}, manager_config());
  manager->set_enforcement(false);
  std::optional<bool> ready;
  manager->start_from_coordination([&](bool ok) { ready = ok; });
  sim.run_until(sim.now() + seconds(1));
  ASSERT_TRUE(ready.has_value());
  EXPECT_FALSE(*ready);
  EXPECT_EQ(manager->managed_host_count(), 0u);
  EXPECT_TRUE(manager->load_history().empty());

  manager->start({hosts[1], hosts[2]});
  sim.run_until(sim.now() + seconds(1));
  EXPECT_EQ(manager->managed_host_count(), 2u);
  // Probes flow: the manager records load samples again.
  EXPECT_FALSE(manager->load_history().empty());
}

TEST_F(SelfHealingTest, MidPlanDestinationCrashAbandonsMoveAndFinishesPlan) {
  build();
  start_manager({hosts[1], hosts[2]});
  inject_values(300, millis(10));
  sim.run_until(sim.now() + millis(1200));

  // Drive a manual plan moving work:0 -> host 3 (collect's host is not
  // managed; use the other worker) and crash the destination mid-flight.
  const SliceId moving = engine->slice_id("work", 0);
  bool crashed = false;
  MigrationPlan plan;
  plan.reason = MigrationPlan::Reason::kLocalHigh;
  plan.moves.push_back(MigrationPlan::Move{moving, hosts[2], std::nullopt});
  manager->set_policy([&](const SystemView&) {
    MigrationPlan p;
    if (!crashed) p = plan;
    return p;
  });
  manager->set_enforcement(true);
  sim.schedule(millis(150), [&] {
    crashed = true;
    net.set_host_down(hosts[2], true);
  });
  sim.run_until(sim.now() + seconds(30));

  // The move was aborted or rejected, never wedged: the plan finished and
  // the dead destination went through recovery like any other host.
  EXPECT_FALSE(manager->plan_in_progress());
  ASSERT_EQ(manager->recoveries().size(), 1u);
  EXPECT_TRUE(manager->recoveries()[0].complete);
  EXPECT_FALSE(engine->slice_lost(moving));
  EXPECT_FALSE(engine->slice_lost(engine->slice_id("work", 1)));
}

}  // namespace
}  // namespace esh::elastic
