// Differential matcher test harness: drives one seeded stream of
// subscription adds, removes and publications through several Matcher
// instances at once -- plain and encrypted, scalar and batched -- and
// asserts that every scheme notifies exactly the subscriber set a direct
// evaluation of the live subscriptions predicts.
//
// The oracle is independent of every matcher: it re-evaluates
// Subscription::matches over the live set for each publication, so a bug
// shared by two schemes (e.g. a batching kernel and its scalar fallback)
// still diverges from it. Periodic serialize -> clone_empty -> restore
// round-trips swap each matcher for a freshly restored replica mid-stream,
// so state transfer is exercised under churn, not just at rest.
//
// ASPE note: encrypted comparisons preserve the sign of r(x - c) exactly
// in real arithmetic; in doubles the noise is ~1e-12 while the generated
// workloads keep every publication attribute a finite distance away from
// every predicate bound with probability 1, so encrypted results agree
// with the plain oracle deterministically under the fixed seeds used here.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/keyspace.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"
#include "filter/aspe.hpp"
#include "filter/attribute.hpp"
#include "filter/matcher.hpp"

namespace esh::filter::harness {

// Schemes enumerate their stores in different orders; comparisons are over
// sorted subscriber lists (duplicates kept: two subscriptions of the same
// subscriber notify twice in every scheme).
inline std::vector<SubscriberId> sorted_ids(std::vector<SubscriberId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class DifferentialHarness {
 public:
  struct Params {
    std::size_t dimensions = 4;
    std::uint64_t seed = 1;
    std::size_t initial_subscriptions = 64;
    std::size_t operations = 1000;   // add/remove/publish steps after seeding
    std::size_t publish_batch = 8;   // publications per publish step
    double add_weight = 0.30;        // op mix; remainder publishes
    double remove_weight = 0.15;
    std::size_t roundtrip_every = 97;  // ops between restore swaps (0 = off)
    double min_width = 0.05;           // per-attribute predicate width range
    double max_width = 0.45;
    std::size_t subscriber_pool = 50;  // small pool => duplicate subscribers
    // Ops between split/merge round trips (0 = off). Each round trip splits
    // every scheme's store at a seeded random key coverage into a fresh
    // child (validated byte-for-byte against a clone_empty + reinsert
    // reference of each half) and merges it back; a never-split twin of
    // each scheme then pins subscriber order, work_units and serialized
    // state byte-identical for the rest of the run.
    std::size_t split_merge_every = 0;
  };

  explicit DifferentialHarness(Params params)
      : params_(params),
        rng_(params.seed),
        key_rng_(params.seed ^ 0x9e3779b97f4a7c15ULL),
        key_(AspeKey::generate(params.dimensions, key_rng_)),
        encryptor_(key_, Rng{params.seed + 1}) {}

  DifferentialHarness(const DifferentialHarness&) = delete;
  DifferentialHarness& operator=(const DifferentialHarness&) = delete;

  // `encrypted` schemes receive the ASPE ciphertexts of the same plain
  // events; `batched` schemes take publications through match_batch().
  void add_scheme(std::string label, std::unique_ptr<Matcher> matcher,
                  bool encrypted, bool batched) {
    schemes_.push_back(
        Scheme{std::move(label), std::move(matcher), encrypted, batched, {}});
  }

  void run() {
    if (params_.split_merge_every != 0) {
      for (Scheme& scheme : schemes_) {
        scheme.twin = scheme.matcher->clone_empty();
      }
    }
    for (std::size_t i = 0; i < params_.initial_subscriptions; ++i) do_add();
    check_counts();
    for (std::size_t op = 0; op < params_.operations; ++op) {
      const double pick = rng_.next_double();
      if (pick < params_.add_weight) {
        do_add();
      } else if (pick < params_.add_weight + params_.remove_weight) {
        do_remove();
      } else {
        do_publish();
      }
      check_counts();
      ++ops_run_;
      if (params_.roundtrip_every != 0 &&
          (op + 1) % params_.roundtrip_every == 0) {
        do_roundtrip();
      }
      if (params_.split_merge_every != 0 &&
          (op + 1) % params_.split_merge_every == 0) {
        do_split_merge();
      }
      // A real divergence would otherwise repeat on every later step;
      // stop at the first failing operation to keep the report readable.
      if (::testing::Test::HasFailure()) return;
    }
  }

  [[nodiscard]] std::size_t operations_run() const { return ops_run_; }
  [[nodiscard]] std::size_t publications_checked() const {
    return pubs_checked_;
  }
  [[nodiscard]] std::size_t live_subscriptions() const {
    return oracle_.size();
  }
  [[nodiscard]] std::size_t restores_run() const { return restores_run_; }
  [[nodiscard]] std::size_t splits_run() const { return splits_run_; }

 private:
  struct Scheme {
    std::string label;
    std::unique_ptr<Matcher> matcher;
    bool encrypted;
    bool batched;
    // Never-split shadow fed the identical op stream (split runs only).
    std::unique_ptr<Matcher> twin;
  };

  Subscription random_subscription() {
    Subscription sub;
    sub.id = SubscriptionId{next_sub_++};
    sub.subscriber =
        SubscriberId{1 + rng_.next_below(params_.subscriber_pool)};
    sub.predicates.reserve(params_.dimensions);
    for (std::size_t a = 0; a < params_.dimensions; ++a) {
      const double center = rng_.next_double();
      const double width = rng_.uniform(params_.min_width, params_.max_width);
      Range range;
      range.low = std::max(0.0, center - width);
      range.high = std::min(1.0, center + width);
      sub.predicates.push_back(range);
    }
    return sub;
  }

  Publication random_publication() {
    Publication pub;
    pub.id = PublicationId{next_pub_++};
    pub.attributes.reserve(params_.dimensions);
    for (std::size_t a = 0; a < params_.dimensions; ++a) {
      pub.attributes.push_back(rng_.next_double());
    }
    return pub;
  }

  void do_add() {
    const Subscription sub = random_subscription();
    const EncryptedSubscription enc = encryptor_.encrypt(sub);
    oracle_.emplace(sub.id, sub);
    enc_oracle_.emplace(sub.id, enc);
    for (Scheme& scheme : schemes_) {
      const AnySubscription any = scheme.encrypted ? AnySubscription{enc}
                                                   : AnySubscription{sub};
      scheme.matcher->add(any);
      if (scheme.twin) scheme.twin->add(any);
    }
  }

  void do_remove() {
    if (oracle_.empty()) {
      do_add();
      return;
    }
    // Every scheme must agree that unknown ids are unknown.
    const SubscriptionId bogus{next_sub_ + 1000000};
    for (Scheme& scheme : schemes_) {
      EXPECT_FALSE(scheme.matcher->remove(bogus))
          << scheme.label << ": removed an id that was never added";
    }
    auto it = oracle_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(
                         rng_.next_below(oracle_.size())));
    const SubscriptionId victim = it->first;
    oracle_.erase(it);
    enc_oracle_.erase(victim);
    for (Scheme& scheme : schemes_) {
      EXPECT_TRUE(scheme.matcher->remove(victim))
          << scheme.label << ": lost subscription " << victim.value();
      if (scheme.twin) {
        EXPECT_TRUE(scheme.twin->remove(victim)) << scheme.label << " twin";
      }
    }
  }

  void do_publish() {
    std::vector<Publication> plains;
    std::vector<EncryptedPublication> encs;
    std::vector<std::vector<SubscriberId>> expected;
    for (std::size_t i = 0; i < params_.publish_batch; ++i) {
      plains.push_back(random_publication());
      encs.push_back(encryptor_.encrypt(plains.back()));
      std::vector<SubscriberId> hit;
      for (const auto& [id, sub] : oracle_) {
        if (sub.matches(plains.back())) hit.push_back(sub.subscriber);
      }
      expected.push_back(sorted_ids(std::move(hit)));
    }
    for (Scheme& scheme : schemes_) {
      std::vector<AnyPublication> pubs;
      pubs.reserve(plains.size());
      for (std::size_t i = 0; i < plains.size(); ++i) {
        if (scheme.encrypted) {
          pubs.emplace_back(encs[i]);
        } else {
          pubs.emplace_back(plains[i]);
        }
      }
      std::vector<MatchOutcome> outcomes;
      if (scheme.batched) {
        outcomes = scheme.matcher->match_batch(pubs);
      } else {
        outcomes.reserve(pubs.size());
        for (const AnyPublication& pub : pubs) {
          outcomes.push_back(scheme.matcher->match(pub));
        }
      }
      ASSERT_EQ(outcomes.size(), plains.size()) << scheme.label;
      for (std::size_t i = 0; i < plains.size(); ++i) {
        EXPECT_EQ(sorted_ids(outcomes[i].subscribers), expected[i])
            << scheme.label << " diverged from the oracle on publication "
            << plains[i].id.value() << " (op " << ops_run_ << ", "
            << oracle_.size() << " live subscriptions)";
      }
      if (scheme.twin) {
        // The split/merged store must behave byte-identically to the
        // never-split twin: exact subscriber order AND work_units, not
        // just the same set.
        std::vector<MatchOutcome> twin_outcomes;
        if (scheme.batched) {
          twin_outcomes = scheme.twin->match_batch(pubs);
        } else {
          twin_outcomes.reserve(pubs.size());
          for (const AnyPublication& pub : pubs) {
            twin_outcomes.push_back(scheme.twin->match(pub));
          }
        }
        ASSERT_EQ(twin_outcomes.size(), outcomes.size()) << scheme.label;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          EXPECT_EQ(outcomes[i].subscribers, twin_outcomes[i].subscribers)
              << scheme.label
              << ": split/merge changed subscriber order on publication "
              << plains[i].id.value();
          EXPECT_EQ(outcomes[i].work_units, twin_outcomes[i].work_units)
              << scheme.label
              << ": split/merge changed work accounting on publication "
              << plains[i].id.value();
        }
      }
    }
    pubs_checked_ += plains.size();
  }

  // serialize -> clone_empty -> restore, then keep running on the replica.
  void do_roundtrip() {
    for (Scheme& scheme : schemes_) {
      BinaryWriter w;
      scheme.matcher->serialize_state(w);
      auto replica = scheme.matcher->clone_empty();
      EXPECT_EQ(replica->subscription_count(), 0u) << scheme.label;
      BinaryReader r{w.buffer()};
      replica->restore_state(r);
      EXPECT_EQ(replica->subscription_count(), oracle_.size()) << scheme.label;
      EXPECT_EQ(replica->state_bytes(), scheme.matcher->state_bytes())
          << scheme.label << ": restore changed the state footprint";
      // The restored store must serialize back to the identical bytes:
      // restore compacts holes but preserves the live order serialization
      // uses, so the formats round-trip exactly.
      BinaryWriter w2;
      replica->serialize_state(w2);
      EXPECT_EQ(w2.buffer(), w.buffer())
          << scheme.label << ": serialize/restore/serialize not a fixpoint";
      scheme.matcher = std::move(replica);
    }
    ++restores_run_;
  }

  static std::vector<std::byte> serialized(const Matcher& m) {
    BinaryWriter w;
    m.serialize_state(w);
    return std::move(w).take();
  }

  // One seeded split/merge round trip per scheme: split_state carves a
  // random key coverage into a fresh child, both halves are checked
  // byte-for-byte against clone_empty + reinsert references, and the merge
  // must reunite the store byte-identically to the never-split twin.
  void do_split_merge() {
    const auto depth = static_cast<std::uint32_t>(1 + rng_.next_below(3));
    const std::uint64_t tag = rng_.next_below(std::uint64_t{1} << depth);
    const KeyCoverage cov{1, 0, depth, tag};
    for (Scheme& scheme : schemes_) {
      BinaryWriter split_bytes;
      const std::size_t moved = scheme.matcher->split_state(cov, split_bytes);
      auto child = scheme.matcher->clone_empty();
      BinaryReader r{split_bytes.buffer()};
      child->restore_state(r);
      EXPECT_EQ(child->subscription_count(), moved) << scheme.label;
      EXPECT_EQ(scheme.matcher->subscription_count() + moved, oracle_.size())
          << scheme.label << ": split dropped or duplicated subscriptions";

      auto ref_child = scheme.matcher->clone_empty();
      auto ref_parent = scheme.matcher->clone_empty();
      for (const auto& [id, sub] : oracle_) {
        const AnySubscription any =
            scheme.encrypted ? AnySubscription{enc_oracle_.at(id)}
                             : AnySubscription{sub};
        (cov.covers(id.value()) ? *ref_child : *ref_parent).add(any);
      }
      EXPECT_EQ(serialized(*child), serialized(*ref_child))
          << scheme.label << ": child half != clone_empty + reinsert (op "
          << ops_run_ << ")";
      EXPECT_EQ(serialized(*scheme.matcher), serialized(*ref_parent))
          << scheme.label << ": parent half != clone_empty + reinsert (op "
          << ops_run_ << ")";

      scheme.matcher->merge_state(*child);
      EXPECT_EQ(scheme.matcher->subscription_count(), oracle_.size())
          << scheme.label << ": merge lost subscriptions";
      EXPECT_EQ(serialized(*scheme.matcher), serialized(*scheme.twin))
          << scheme.label
          << ": merge did not restore the never-split state (op " << ops_run_
          << ")";
    }
    ++splits_run_;
  }

  void check_counts() {
    for (const Scheme& scheme : schemes_) {
      EXPECT_EQ(scheme.matcher->subscription_count(), oracle_.size())
          << scheme.label;
      if (scheme.twin) {
        EXPECT_EQ(scheme.twin->subscription_count(), oracle_.size())
            << scheme.label << " twin";
      }
    }
  }

  Params params_;
  Rng rng_;
  Rng key_rng_;
  AspeKey key_;
  AspeEncryptor encryptor_;
  std::vector<Scheme> schemes_;
  std::map<SubscriptionId, Subscription> oracle_;  // live set, ground truth
  // Ciphertexts of the live set (clone_empty + reinsert references for the
  // encrypted schemes need the exact stored ciphertexts; re-encrypting
  // would draw fresh randomness).
  std::map<SubscriptionId, EncryptedSubscription> enc_oracle_;
  std::uint64_t next_sub_ = 1;
  std::uint64_t next_pub_ = 1;
  std::size_t ops_run_ = 0;
  std::size_t pubs_checked_ = 0;
  std::size_t restores_run_ = 0;
  std::size_t splits_run_ = 0;
};

}  // namespace esh::filter::harness
