// Full-system integration tests: the emulated cluster runs the complete
// e-STREAMHUB stack (engine + StreamHub + manager + coordination) under
// time-varying load, exercising automatic scale out/in end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "harness/testbed.hpp"

namespace esh::harness {
namespace {

// Scaled-down cluster: weak hosts so a small publication rate saturates
// them quickly, keeping simulated-event counts test-friendly.
TestbedConfig small_config(bool with_manager) {
  TestbedConfig config;
  config.worker_hosts = 1;
  config.io_hosts = 2;
  config.workload.total_subscriptions = 20'000;
  config.workload.matching_rate = 0.01;
  config.workload.m_slices = 8;
  config.ap_slices = 4;
  config.ep_slices = 4;
  config.source_slices = 2;
  config.sink_slices = 2;
  config.iaas.host_spec.units_per_second = 1e5;  // 10x weaker cores
  config.iaas.boot_delay = seconds(1);
  config.engine.probe_interval = seconds(2);
  config.engine.flush_interval = millis(50);
  config.manager.policy.grace = seconds(15);
  config.with_manager = with_manager;
  config.seed = 11;
  return config;
}

TEST(Integration, SubscriptionStorageReachesAllSlices) {
  Testbed bed{small_config(false)};
  bed.store_subscriptions(20'000);
  EXPECT_EQ(bed.hub().stored_subscriptions(), 20'000u);
}

TEST(Integration, SteadyFlowDeliversExpectedNotificationVolume) {
  Testbed bed{small_config(false)};
  bed.store_subscriptions(20'000);
  bed.delays().reset_counts();
  auto driver = bed.drive(
      std::make_shared<workload::ConstantRate>(5.0, seconds(30)));
  bed.run_for(seconds(35));
  const auto completed = bed.delays().publications_completed();
  EXPECT_NEAR(static_cast<double>(completed), 150.0, 40.0);
  // ~200 notifications per publication (20 K subs at 1 %).
  const double per_pub = static_cast<double>(bed.delays().notifications()) /
                         static_cast<double>(completed);
  EXPECT_NEAR(per_pub, 200.0, 10.0);
  // Delays bounded in steady state.
  EXPECT_LT(bed.delays().delays_ms().percentile(99), 2'000.0);
}

TEST(Integration, ManualMigrationUnderLoadKeepsDelaysBounded) {
  Testbed bed{small_config(false)};
  bed.store_subscriptions(20'000);
  auto driver = bed.drive(
      std::make_shared<workload::ConstantRate>(5.0, seconds(60)));
  bed.run_for(seconds(10));

  // Move an M slice to a second worker host.
  const HostId new_host = bed.pool().allocate(nullptr);
  bed.run_for(seconds(2));
  bed.engine().add_host(bed.pool().host(new_host));
  const SliceId m0 = bed.hub().slices_of("M")[0];
  std::optional<engine::MigrationReport> report;
  bed.engine().migrate(m0, new_host,
                       [&](const engine::MigrationReport& r) { report = r; });
  const bool done = bed.run_until([&] { return report.has_value(); },
                                  seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(bed.engine().slice_host(m0), new_host);
  // M slice of 2500 subs (~2.7 MB): interruption under a few seconds.
  EXPECT_LT(report->interruption(), seconds(5));
  EXPECT_GT(report->state_bytes, 2'000'000u);

  bed.run_for(seconds(20));
  // Flow continues correctly after the migration.
  const auto completed = bed.delays().publications_completed();
  EXPECT_GT(completed, 100u);
}

TEST(Integration, ElasticScaleOutAndInFollowsLoad) {
  auto config = small_config(true);
  Testbed bed{config};
  bed.store_subscriptions(20'000);
  bed.delays().reset_counts();

  // Trapezoid to 60 pub/s (~14 cores of matching work at peak): one weak
  // host saturates early, so the manager must scale out toward 4 hosts,
  // then back in as the load fades.
  auto driver = bed.drive(std::make_shared<workload::TrapezoidRate>(
      60.0, seconds(150), seconds(120), seconds(150)));
  std::size_t peak_hosts = 1;
  std::size_t samples = 0;
  while (bed.simulator().now() < seconds(600)) {
    bed.run_for(seconds(5));
    peak_hosts = std::max(peak_hosts, bed.manager()->managed_host_count());
    ++samples;
  }
  EXPECT_GE(peak_hosts, 3u);

  // Load is gone: the system scales back in.
  bed.run_for(seconds(200));
  EXPECT_LE(bed.manager()->managed_host_count(), 2u);

  // Migrations actually happened, in both directions.
  EXPECT_GE(bed.manager()->migrations().size(), 4u);
  EXPECT_GE(bed.manager()->plans_executed(), 2u);

  // The CPU envelope was respected most of the plateau (paper: 40-70 %).
  const auto& history = bed.manager()->load_history();
  ASSERT_FALSE(history.empty());
  std::size_t in_band = 0, plateau_samples = 0;
  for (const auto& s : history) {
    if (s.time > seconds(170) && s.time < seconds(250)) {
      ++plateau_samples;
      if (s.avg_cpu > 0.25 && s.avg_cpu < 0.85) ++in_band;
    }
  }
  ASSERT_GT(plateau_samples, 0u);
  EXPECT_GE(static_cast<double>(in_band) / plateau_samples, 0.6);

  // Delays stayed sane despite the migrations.
  EXPECT_LT(bed.delays().delays_ms().percentile(50), 3'000.0);

  // No events were lost: everything offered (minus in-flight tail) arrived.
  const auto offered = bed.hub().publications_sent();
  const auto completed = bed.delays().publications_completed();
  EXPECT_GE(completed + 50, offered);
}

TEST(Integration, ManagerPersistsPlacementInCoordination) {
  auto config = small_config(true);
  Testbed bed{config};
  bed.store_subscriptions(20'000);
  auto driver = bed.drive(std::make_shared<workload::TrapezoidRate>(
      50.0, seconds(100), seconds(100), seconds(10)));
  bed.run_for(seconds(180));

  // Placement written to the coordination service matches the engine's
  // live directory for every elastic slice.
  std::size_t checked = 0;
  for (const char* op : {"AP", "M", "EP"}) {
    for (SliceId slice : bed.hub().slices_of(op)) {
      const auto stored = bed.coord().read(
          "/estreamhub/config/slices/" + std::to_string(slice.value()));
      ASSERT_TRUE(stored.has_value()) << "slice " << slice;
      EXPECT_EQ(std::stoull(*stored),
                bed.engine().slice_host(slice).value());
      ++checked;
    }
  }
  EXPECT_EQ(checked, 16u);

  // The managed host set is persisted too.
  EXPECT_TRUE(bed.coord().read("/estreamhub/config/hosts").has_value());
}

TEST(Integration, CoordinatorFailoverOnlyDelaysPersistence) {
  auto config = small_config(true);
  Testbed bed{config};
  bed.store_subscriptions(20'000);
  auto driver = bed.drive(std::make_shared<workload::TrapezoidRate>(
      50.0, seconds(80), seconds(60), seconds(10)));
  bed.run_for(seconds(30));
  bed.coord().inject_leader_failover();
  bed.run_for(seconds(150));
  // The system still scaled out despite the coordination hiccup.
  EXPECT_GE(bed.manager()->managed_host_count(), 2u);
  EXPECT_GT(bed.delays().publications_completed(), 0u);
}

TEST(Integration, StandbyManagerTakesOverOnResign) {
  auto config = small_config(true);
  config.manager.use_leader_election = true;
  Testbed bed{config};
  bed.store_subscriptions(20'000);

  // Hot standby joins the election behind the active manager.
  elastic::Manager standby{bed.simulator(), bed.network(), bed.engine(),
                           bed.pool(),      bed.coord(),   bed.manager_host(),
                           config.manager};
  standby.enter_standby();
  bed.run_for(seconds(5));
  EXPECT_TRUE(bed.manager()->is_active());
  EXPECT_FALSE(standby.is_active());

  auto driver = bed.drive(std::make_shared<workload::TrapezoidRate>(
      60.0, seconds(120), seconds(300), seconds(120)));
  bed.run_for(seconds(160));
  const auto plans_before = bed.manager()->plans_executed();
  EXPECT_GT(plans_before, 0u);  // the leader scaled out
  EXPECT_EQ(standby.plans_executed(), 0u);

  // Leader steps down mid-plateau: the standby must take over and keep
  // governing the same fleet.
  bed.manager()->resign();
  bed.run_for(seconds(10));
  EXPECT_FALSE(bed.manager()->is_active());
  EXPECT_TRUE(standby.is_active());
  EXPECT_GE(standby.managed_host_count(), 2u);

  // Load fades: the standby (now leader) scales the system back in.
  bed.run_for(seconds(500));
  EXPECT_GT(standby.plans_executed(), 0u);
  EXPECT_LT(standby.managed_host_count(), 4u);
  // The deposed manager did not act again.
  EXPECT_EQ(bed.manager()->plans_executed(), plans_before);
}

TEST(Integration, ManagerRestartRecoversFromCoordination) {
  auto config = small_config(true);
  Testbed bed{config};
  bed.store_subscriptions(20'000);
  auto driver = bed.drive(std::make_shared<workload::TrapezoidRate>(
      60.0, seconds(120), seconds(240), seconds(120)));
  bed.run_for(seconds(200));
  const auto hosts_before = bed.manager()->managed_host_count();
  ASSERT_GE(hosts_before, 2u);

  // "Crash" the manager and start a fresh instance that recovers its
  // managed-host set from the coordination service (paper §IV-B).
  // (The Testbed owns the original; we build a replacement side by side.)
  bed.manager()->set_enforcement(false);
  elastic::Manager replacement{bed.simulator(), bed.network(), bed.engine(),
                               bed.pool(),      bed.coord(),   bed.manager_host(),
                               config.manager};
  bool recovered = false;
  replacement.start_from_coordination([&](bool ok) { recovered = ok; });
  bed.run_until([&] { return recovered; }, seconds(10));
  ASSERT_TRUE(recovered);
  EXPECT_EQ(replacement.managed_host_count(), hosts_before);

  // The replacement resumes enforcement: when the load fades it scales in.
  bed.run_for(seconds(500));
  EXPECT_LT(replacement.managed_host_count(), hosts_before);
}

TEST(Integration, PoolExhaustionDegradesGracefully) {
  auto config = small_config(true);
  config.iaas.max_hosts = 2;  // manager can grow to at most 2 workers
  Testbed bed{config};
  bed.store_subscriptions(20'000);
  auto driver = bed.drive(
      std::make_shared<workload::ConstantRate>(40.0, seconds(200)));
  bed.run_for(seconds(220));
  // The system saturates but keeps running at the pool cap.
  EXPECT_LE(bed.manager()->managed_host_count(), 2u);
  EXPECT_GT(bed.delays().publications_completed(), 0u);
}

TEST(Integration, EnforcementCanBeDisabled) {
  auto config = small_config(true);
  Testbed bed{config};
  bed.store_subscriptions(20'000);
  bed.manager()->set_enforcement(false);
  auto driver = bed.drive(
      std::make_shared<workload::ConstantRate>(50.0, seconds(120)));
  bed.run_for(seconds(150));
  EXPECT_EQ(bed.manager()->managed_host_count(), 1u);
  EXPECT_TRUE(bed.manager()->migrations().empty());
  // Probes still collected.
  EXPECT_FALSE(bed.manager()->load_history().empty());
}

}  // namespace
}  // namespace esh::harness
