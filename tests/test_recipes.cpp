#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coord/coord.hpp"
#include "coord/recipes.hpp"
#include "sim/simulator.hpp"

namespace esh::coord {
namespace {

class RecipesTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  CoordConfig config;
  std::unique_ptr<CoordService> zk;

  void SetUp() override { zk = std::make_unique<CoordService>(sim, config); }

  void settle() { sim.run_until(sim.now() + seconds(2)); }
};

TEST_F(RecipesTest, FirstContenderLeads) {
  CoordClient client{*zk};
  bool leader = false;
  LeaderElection election{client, "/election", [&](bool l) { leader = l; }};
  election.enter();
  settle();
  EXPECT_TRUE(leader);
  EXPECT_TRUE(election.is_leader());
}

TEST_F(RecipesTest, SecondContenderWaitsThenTakesOver) {
  CoordClient a{*zk}, b{*zk};
  bool a_leader = false, b_leader = false;
  LeaderElection ea{a, "/election", [&](bool l) { a_leader = l; }};
  LeaderElection eb{b, "/election", [&](bool l) { b_leader = l; }};
  ea.enter();
  settle();
  eb.enter();
  settle();
  EXPECT_TRUE(a_leader);
  EXPECT_FALSE(b_leader);

  ea.resign();
  settle();
  EXPECT_FALSE(ea.is_leader());
  EXPECT_TRUE(b_leader);
  EXPECT_TRUE(eb.is_leader());
}

TEST_F(RecipesTest, SessionExpiryPassesLeadership) {
  // Leader's session dies without an explicit resign: its ephemeral
  // candidate node vanishes and the watcher takes over.
  auto a = std::make_unique<CoordClient>(*zk);
  CoordClient b{*zk};
  bool b_leader = false;
  LeaderElection ea{*a, "/election", nullptr};
  LeaderElection eb{b, "/election", [&](bool l) { b_leader = l; }};
  ea.enter();
  settle();
  eb.enter();
  settle();
  ASSERT_TRUE(ea.is_leader());

  a.reset();  // closes the session; ephemerals vanish
  settle();
  EXPECT_TRUE(b_leader);
}

TEST_F(RecipesTest, ThreeWaySuccessionInCreationOrder) {
  CoordClient c1{*zk}, c2{*zk}, c3{*zk};
  std::vector<int> leaders;
  LeaderElection e1{c1, "/e", [&](bool l) { if (l) leaders.push_back(1); }};
  LeaderElection e2{c2, "/e", [&](bool l) { if (l) leaders.push_back(2); }};
  LeaderElection e3{c3, "/e", [&](bool l) { if (l) leaders.push_back(3); }};
  e1.enter();
  settle();
  e2.enter();
  e3.enter();
  settle();
  e1.resign();
  settle();
  e2.resign();
  settle();
  EXPECT_EQ(leaders, (std::vector<int>{1, 2, 3}));
}

TEST_F(RecipesTest, LockGrantsInOrder) {
  CoordClient c1{*zk}, c2{*zk};
  DistributedLock l1{c1, "/lock"}, l2{c2, "/lock"};
  std::vector<int> grants;
  l1.acquire([&] { grants.push_back(1); });
  settle();
  l2.acquire([&] { grants.push_back(2); });
  settle();
  EXPECT_TRUE(l1.held());
  EXPECT_FALSE(l2.held());
  EXPECT_EQ(grants, (std::vector<int>{1}));

  l1.release();
  settle();
  EXPECT_TRUE(l2.held());
  EXPECT_EQ(grants, (std::vector<int>{1, 2}));
}

TEST_F(RecipesTest, DoubleAcquireThrows) {
  CoordClient c{*zk};
  DistributedLock lock{c, "/lock"};
  lock.acquire(nullptr);
  settle();
  EXPECT_THROW(lock.acquire(nullptr), std::logic_error);
  lock.release();
  settle();
  lock.acquire(nullptr);  // reacquirable after release
  settle();
  EXPECT_TRUE(lock.held());
}

TEST_F(RecipesTest, LockHolderSessionExpiresMidHold) {
  // The holder's process stalls (pings stop) while it believes it holds
  // the lock: the session expires, the ephemeral lock node vanishes, and
  // the lock passes to the contender. The stale holder's release() is a
  // safe no-op.
  CoordClient holder{*zk};
  CoordClient waiter{*zk};
  DistributedLock l1{holder, "/lock"};
  DistributedLock l2{waiter, "/lock"};
  l1.acquire(nullptr);
  settle();
  ASSERT_TRUE(l1.held());
  bool granted = false;
  l2.acquire([&] { granted = true; });
  settle();
  ASSERT_FALSE(granted);

  holder.stop_pinging();
  sim.run_until(sim.now() + config.session_timeout + seconds(2));
  EXPECT_FALSE(zk->session_alive(holder.session()));
  EXPECT_TRUE(granted);
  EXPECT_TRUE(l2.held());

  l1.release();  // node already gone with the session
  settle();
  EXPECT_FALSE(l1.held());
  EXPECT_TRUE(l2.held());
}

TEST_F(RecipesTest, LockHolderSessionExpiryUnblocksWaiter) {
  auto holder = std::make_unique<CoordClient>(*zk);
  CoordClient waiter{*zk};
  DistributedLock l1{*holder, "/lock"};
  DistributedLock l2{waiter, "/lock"};
  l1.acquire(nullptr);
  settle();
  bool granted = false;
  l2.acquire([&] { granted = true; });
  settle();
  EXPECT_FALSE(granted);
  holder.reset();  // session closes, ephemeral lock node vanishes
  settle();
  EXPECT_TRUE(granted);
}

TEST_F(RecipesTest, ResignBeforeLeadingIsSafe) {
  CoordClient a{*zk}, b{*zk};
  LeaderElection ea{a, "/e", nullptr};
  LeaderElection eb{b, "/e", nullptr};
  ea.enter();
  settle();
  eb.enter();
  eb.resign();  // resign while still waiting
  settle();
  EXPECT_FALSE(eb.is_leader());
  EXPECT_TRUE(ea.is_leader());
}

}  // namespace
}  // namespace esh::coord
