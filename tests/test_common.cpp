#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace esh {
namespace {

TEST(Ids, DefaultIsInvalid) {
  HostId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(HostId{3}.valid());
  EXPECT_EQ(HostId::invalid(), HostId{});
}

TEST(Ids, ComparesByValue) {
  EXPECT_EQ(SliceId{7}, SliceId{7});
  EXPECT_NE(SliceId{7}, SliceId{8});
  EXPECT_LT(SliceId{7}, SliceId{8});
}

TEST(Ids, DistinctTagTypesDoNotMix) {
  static_assert(!std::is_same_v<HostId, SliceId>);
  static_assert(!std::is_convertible_v<HostId, SliceId>);
}

TEST(Ids, HashSpreads) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<SliceId>{}(SliceId{i}));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(SimTimeHelpers, Conversions) {
  EXPECT_EQ(millis(3), micros(3000));
  EXPECT_EQ(seconds(2), millis(2000));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_millis(micros(1500)), 1.5);
}

TEST(Rng, Deterministic) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{9};
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, NormalMoments) {
  Rng rng{11};
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{13};
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, SplitIndependence) {
  Rng a{42};
  Rng b = a.split();
  // The split stream differs from the parent's continuation.
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ShufflePermutes) {
  Rng rng{17};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(RunningStats, Moments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(PercentileTracker, ExactQuartiles) {
  PercentileTracker t;
  for (int i = 1; i <= 101; ++i) t.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(t.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(50), 51.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 101.0);
  EXPECT_NEAR(t.percentile(25), 26.0, 1e-9);
}

TEST(PercentileTracker, AddAfterQueryResorts) {
  PercentileTracker t;
  t.add(10.0);
  t.add(20.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 20.0);
  t.add(5.0);
  EXPECT_DOUBLE_EQ(t.percentile(0), 5.0);
}

TEST(PercentileTracker, ErrorsOnEmptyOrBadPercentile) {
  PercentileTracker t;
  // The (void) casts keep [[nodiscard]] quiet under -Werror: the value is
  // intentionally unused because the call must throw before producing one.
  EXPECT_THROW((void)t.percentile(50), std::logic_error);
  t.add(1.0);
  EXPECT_THROW((void)t.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)t.percentile(101), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to first
  h.add(100.0);  // clamps to last
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), std::invalid_argument);
}

TEST(TimeBinnedSeries, BinsByWidth) {
  TimeBinnedSeries series{seconds(30)};
  series.add(seconds(1), 1.0);
  series.add(seconds(29), 3.0);
  series.add(seconds(31), 10.0);
  series.add(seconds(95), 7.0);
  ASSERT_EQ(series.bins().size(), 3u);
  EXPECT_EQ(series.bins()[0].start, seconds(0));
  EXPECT_DOUBLE_EQ(series.bins()[0].stats.mean(), 2.0);
  EXPECT_EQ(series.bins()[1].start, seconds(30));
  EXPECT_EQ(series.bins()[2].start, seconds(90));
}

TEST(TimeBinnedSeries, RejectsOutOfOrder) {
  TimeBinnedSeries series{seconds(30)};
  series.add(seconds(40), 1.0);
  EXPECT_THROW(series.add(seconds(5), 1.0), std::logic_error);
}

TEST(Serde, RoundTripScalars) {
  BinaryWriter w;
  w.write_u8(7);
  w.write_u32(123456);
  w.write_u64(0xdeadbeefcafebabeULL);
  w.write_i64(-42);
  w.write_f64(3.14159);
  w.write_bool(true);
  w.write_id(SliceId{99});
  w.write_string("hello world");
  w.write_f64_span(std::vector<double>{1.0, 2.5, -3.0});

  BinaryReader r{w.buffer()};
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 123456u);
  EXPECT_EQ(r.read_u64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read_id<SliceTag>(), SliceId{99});
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_f64_vector(), (std::vector<double>{1.0, 2.5, -3.0}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, TruncatedInputThrows) {
  BinaryWriter w;
  w.write_u32(1);
  BinaryReader r{w.buffer()};
  EXPECT_THROW(r.read_u64(), std::out_of_range);
}

TEST(Serde, SizeTracksWrites) {
  BinaryWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.write_u64(1);
  EXPECT_EQ(w.size(), 8u);
  w.write_string("abc");
  EXPECT_EQ(w.size(), 8u + 8u + 3u);
}

}  // namespace
}  // namespace esh
