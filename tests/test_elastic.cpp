#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "elastic/enforcer.hpp"
#include "elastic/threshold_policy.hpp"

namespace esh::elastic {
namespace {

SliceView slice(std::uint64_t id, std::uint64_t host, double cpu,
                std::size_t bytes = 1000) {
  return SliceView{SliceId{id}, HostId{host}, cpu, bytes, false, {}};
}

// ---- subset-sum selection -----------------------------------------------------

TEST(SubsetSum, PicksExactCover) {
  std::vector<SliceView> slices{
      slice(1, 1, 0.10), slice(2, 1, 0.20), slice(3, 1, 0.30)};
  const auto chosen = select_slices_min_state(slices, 0.20);
  double sum = 0.0;
  for (auto i : chosen) sum += slices[i].cpu;
  EXPECT_GE(sum, 0.20 - 1e-9);
}

TEST(SubsetSum, MinimizesStateTransferAmongValidSets) {
  // Both {1} (cpu .3, 9000B) and {2,3} (cpu .3, 2000B) cover 0.25; the
  // enforcer must prefer the cheaper state transfer.
  std::vector<SliceView> slices{
      slice(1, 1, 0.30, 9000), slice(2, 1, 0.15, 1000),
      slice(3, 1, 0.15, 1000)};
  const auto chosen = select_slices_min_state(slices, 0.25);
  std::set<std::uint64_t> ids;
  for (auto i : chosen) ids.insert(slices[i].slice.value());
  EXPECT_EQ(ids, (std::set<std::uint64_t>{2, 3}));
}

TEST(SubsetSum, SelectsAllWhenInsufficient) {
  std::vector<SliceView> slices{slice(1, 1, 0.1), slice(2, 1, 0.1)};
  const auto chosen = select_slices_min_state(slices, 0.9);
  EXPECT_EQ(chosen.size(), 2u);
}

TEST(SubsetSum, EmptyForNonPositiveRequirement) {
  std::vector<SliceView> slices{slice(1, 1, 0.1)};
  EXPECT_TRUE(select_slices_min_state(slices, 0.0).empty());
  EXPECT_TRUE(select_slices_min_state({}, 0.5).empty());
}

TEST(SubsetSum, NoDuplicateSelections) {
  std::vector<SliceView> slices;
  for (std::uint64_t i = 0; i < 20; ++i) {
    slices.push_back(slice(i + 1, 1, 0.05, 100 * (i + 1)));
  }
  const auto chosen = select_slices_min_state(slices, 0.42);
  std::set<std::size_t> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), chosen.size());
  double sum = 0.0;
  for (auto i : chosen) sum += slices[i].cpu;
  EXPECT_GE(sum, 0.42 - 1e-9);
}

// Property sweep: the selected subset always covers the requirement (when
// coverable) with no duplicates, across many random instances.
class SubsetSumProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubsetSumProperty, AlwaysCoversWithoutDuplicates) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<SliceView> slices;
  const std::size_t n = 3 + rng.next_below(20);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double cpu = rng.uniform(0.01, 0.25);
    total += cpu;
    slices.push_back(slice(i + 1, 1, cpu, 100 + rng.next_below(10'000)));
  }
  const double required = rng.uniform(0.05, total * 0.8);
  const auto chosen = select_slices_min_state(slices, required);
  std::set<std::size_t> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), chosen.size());
  double sum = 0.0;
  for (auto i : chosen) sum += slices[i].cpu;
  // Permille discretization can undershoot by at most n/1000.
  EXPECT_GE(sum, required - 0.001 * static_cast<double>(n) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SubsetSumProperty,
                         ::testing::Range(1, 25));

// ---- first-fit placement -------------------------------------------------------

TEST(FirstFit, PlacesHeaviestFirstUnderCap) {
  std::vector<SliceView> moving{slice(1, 9, 0.10), slice(2, 9, 0.30)};
  std::vector<HostView> bins{{HostId{1}, 0.25}, {HostId{2}, 0.10}};
  std::size_t used = 0;
  const auto moves = first_fit_place(moving, bins, 0.5, 0, &used);
  ASSERT_EQ(moves.size(), 2u);
  // Heaviest (slice 2, 0.30) first: host1 0.25+0.30 > 0.5 -> host2.
  EXPECT_EQ(moves[0].slice, SliceId{2});
  EXPECT_EQ(moves[0].dst, HostId{2});
  // slice 1 (0.10) fits on host1.
  EXPECT_EQ(moves[1].dst, HostId{1});
  EXPECT_EQ(used, 0u);
}

TEST(FirstFit, SpillsToNewBins) {
  std::vector<SliceView> moving{slice(1, 9, 0.4), slice(2, 9, 0.4)};
  std::vector<HostView> bins{{HostId{1}, 0.45}};
  std::size_t used = 0;
  const auto moves = first_fit_place(moving, bins, 0.5, 2, &used);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_TRUE(moves[0].new_host_index.has_value());
  EXPECT_TRUE(moves[1].new_host_index.has_value());
  EXPECT_NE(*moves[0].new_host_index, *moves[1].new_host_index);
  EXPECT_EQ(used, 2u);
}

TEST(FirstFit, OpensExtraBinWhenEverythingFull) {
  std::vector<SliceView> moving{slice(1, 9, 0.45)};
  std::vector<HostView> bins{{HostId{1}, 0.45}};
  std::size_t used = 0;
  const auto moves = first_fit_place(moving, bins, 0.5, 0, &used);
  ASSERT_EQ(moves.size(), 1u);
  ASSERT_TRUE(moves[0].new_host_index.has_value());
  EXPECT_EQ(used, 1u);
}

// ---- policy rules ---------------------------------------------------------------

SystemView make_view(SimTime t, std::vector<HostView> hosts,
                     std::vector<SliceView> slices) {
  SystemView v;
  v.time = t;
  v.hosts = std::move(hosts);
  v.slices = std::move(slices);
  return v;
}

TEST(Enforcer, NoActionInsideBand) {
  Enforcer enforcer{PolicyConfig{}};
  const auto view = make_view(
      seconds(100), {{HostId{1}, 0.5}, {HostId{2}, 0.55}},
      {slice(1, 1, 0.25), slice(2, 1, 0.25), slice(3, 2, 0.55)});
  EXPECT_TRUE(enforcer.evaluate(view).empty());
}

TEST(Enforcer, ScaleOutAboveHighWatermark) {
  // The paper's Figure 5 scenario: two hosts at 74 % and 73 %; scale out
  // must move slices to one new host, choosing the sets with the smallest
  // memory among CPU-equivalent options.
  PolicyConfig config;
  Enforcer enforcer{config};
  std::vector<SliceView> slices{
      // host 1: AP:1 and AP:2 small state, M:1 large state
      slice(1, 1, 0.12, 100),   slice(2, 1, 0.12, 100),
      slice(3, 1, 0.50, 50000),
      // host 2: EP:1, EP:2 small, M:2 large
      slice(4, 2, 0.12, 200),   slice(5, 2, 0.11, 200),
      slice(6, 2, 0.50, 50000),
  };
  const auto view = make_view(seconds(60),
                              {{HostId{1}, 0.74}, {HostId{2}, 0.73}}, slices);
  const auto plan = enforcer.evaluate(view);
  EXPECT_EQ(plan.reason, MigrationPlan::Reason::kScaleOut);
  ASSERT_FALSE(plan.moves.empty());
  EXPECT_GE(plan.new_hosts, 1u);
  // The cheap-state slices (AP/EP) move, not the big M slices.
  for (const auto& mv : plan.moves) {
    EXPECT_NE(mv.slice, SliceId{3});
    EXPECT_NE(mv.slice, SliceId{6});
  }
}

TEST(Enforcer, ScaleInBelowLowWatermark) {
  PolicyConfig config;
  Enforcer enforcer{config};
  const auto view = make_view(
      seconds(60),
      {{HostId{1}, 0.2}, {HostId{2}, 0.15}, {HostId{3}, 0.1}},
      {slice(1, 1, 0.2), slice(2, 2, 0.15), slice(3, 3, 0.1)});
  const auto plan = enforcer.evaluate(view);
  EXPECT_EQ(plan.reason, MigrationPlan::Reason::kScaleIn);
  EXPECT_FALSE(plan.releases.empty());
  // Least-loaded host released first.
  EXPECT_EQ(plan.releases.front(), HostId{3});
  // Its slices get new destinations among surviving hosts.
  for (const auto& mv : plan.moves) {
    EXPECT_FALSE(mv.new_host_index.has_value());
    EXPECT_NE(mv.dst, HostId{3});
  }
}

TEST(Enforcer, ScaleInNeverReleasesLastHost) {
  Enforcer enforcer{PolicyConfig{}};
  const auto view =
      make_view(seconds(60), {{HostId{1}, 0.01}}, {slice(1, 1, 0.01)});
  EXPECT_TRUE(enforcer.evaluate(view).empty());
}

TEST(Enforcer, GracePeriodSuppressesBackToBackActions) {
  PolicyConfig config;
  config.grace = seconds(30);
  config.scale_out_grace = seconds(10);
  Enforcer enforcer{config};
  const auto overloaded = make_view(
      seconds(10), {{HostId{1}, 0.9}},
      {slice(1, 1, 0.45), slice(2, 1, 0.45)});
  EXPECT_FALSE(enforcer.evaluate(overloaded).empty());
  // Within even the fast scale-out grace: suppressed.
  const auto immediately = make_view(
      seconds(15), {{HostId{1}, 0.9}, {HostId{2}, 0.6}},
      {slice(1, 1, 0.45), slice(2, 1, 0.45), slice(3, 2, 0.6)});
  EXPECT_TRUE(enforcer.evaluate(immediately).empty());
  // Scale-out chains at the fast cadence (load increases are urgent).
  const auto chained = make_view(
      seconds(21), {{HostId{1}, 0.9}, {HostId{2}, 0.6}},
      {slice(1, 1, 0.45), slice(2, 1, 0.45), slice(3, 2, 0.6)});
  EXPECT_FALSE(enforcer.evaluate(chained).empty());
  // Scale-in still waits out the full grace period after the last action.
  const auto idle_soon = make_view(
      seconds(40), {{HostId{1}, 0.1}, {HostId{2}, 0.1}},
      {slice(1, 1, 0.1), slice(2, 2, 0.1)});
  EXPECT_TRUE(enforcer.evaluate(idle_soon).empty());
  const auto idle_later = make_view(
      seconds(52), {{HostId{1}, 0.1}, {HostId{2}, 0.1}},
      {slice(1, 1, 0.1), slice(2, 2, 0.1)});
  EXPECT_FALSE(enforcer.evaluate(idle_later).empty());
}

TEST(Enforcer, LocalHighRebalancesWithoutGlobalViolation) {
  // Average is fine (50 %) but one host runs hot: local rule moves load.
  Enforcer enforcer{PolicyConfig{}};
  const auto view = make_view(
      seconds(60), {{HostId{1}, 0.9}, {HostId{2}, 0.1}},
      {slice(1, 1, 0.45), slice(2, 1, 0.45), slice(3, 2, 0.1)});
  const auto plan = enforcer.evaluate(view);
  EXPECT_EQ(plan.reason, MigrationPlan::Reason::kLocalHigh);
  ASSERT_FALSE(plan.moves.empty());
  for (const auto& mv : plan.moves) {
    if (!mv.new_host_index.has_value()) {
      EXPECT_EQ(mv.dst, HostId{2});
    }
  }
}

TEST(Enforcer, LocalLowEmptiesIdleHost) {
  // Global average (0.32) is inside the band; host 3 alone is nearly idle
  // and its slice fits on host 2 without breaching the placement cap.
  Enforcer enforcer{PolicyConfig{}};
  const auto view = make_view(
      seconds(60),
      {{HostId{1}, 0.45}, {HostId{2}, 0.42}, {HostId{3}, 0.08}},
      {slice(1, 1, 0.45), slice(2, 2, 0.42), slice(3, 3, 0.08)});
  const auto plan = enforcer.evaluate(view);
  EXPECT_EQ(plan.reason, MigrationPlan::Reason::kLocalLow);
  ASSERT_EQ(plan.releases.size(), 1u);
  EXPECT_EQ(plan.releases[0], HostId{3});
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].dst, HostId{2});
}

TEST(Enforcer, EmptyViewIsNoOp) {
  Enforcer enforcer{PolicyConfig{}};
  EXPECT_TRUE(enforcer.evaluate(SystemView{}).empty());
}

TEST(Enforcer, RejectsInvalidPolicy) {
  PolicyConfig bad;
  bad.global_low = 0.8;
  bad.target = 0.5;
  EXPECT_THROW(Enforcer{bad}, std::invalid_argument);
}

// ---- threshold baseline ---------------------------------------------------

TEST(ThresholdEnforcer, StepsOutOneHostAboveThreshold) {
  ThresholdEnforcer enforcer{ThresholdPolicyConfig{}};
  const auto view = make_view(
      seconds(60), {{HostId{1}, 0.9}},
      {slice(1, 1, 0.5), slice(2, 1, 0.4)});
  const auto plan = enforcer.evaluate(view);
  EXPECT_EQ(plan.reason, MigrationPlan::Reason::kScaleOut);
  EXPECT_EQ(plan.new_hosts, 1u);
  ASSERT_FALSE(plan.moves.empty());
  // Naive: heaviest slice moves first.
  EXPECT_EQ(plan.moves[0].slice, SliceId{1});
}

TEST(ThresholdEnforcer, StepsInOneHostBelowThreshold) {
  ThresholdEnforcer enforcer{ThresholdPolicyConfig{}};
  const auto view = make_view(
      seconds(60), {{HostId{1}, 0.2}, {HostId{2}, 0.1}},
      {slice(1, 1, 0.2), slice(2, 2, 0.1)});
  const auto plan = enforcer.evaluate(view);
  EXPECT_EQ(plan.reason, MigrationPlan::Reason::kScaleIn);
  ASSERT_EQ(plan.releases.size(), 1u);
  EXPECT_EQ(plan.releases[0], HostId{2});  // least loaded
  for (const auto& mv : plan.moves) {
    EXPECT_NE(mv.dst, HostId{2});
  }
}

TEST(ThresholdEnforcer, CooldownBetweenActions) {
  ThresholdPolicyConfig config;
  config.cooldown = seconds(30);
  ThresholdEnforcer enforcer{config};
  const auto hot = make_view(seconds(10), {{HostId{1}, 0.9}},
                             {slice(1, 1, 0.9)});
  EXPECT_FALSE(enforcer.evaluate(hot).empty());
  const auto hot2 = make_view(seconds(20), {{HostId{1}, 0.9}},
                              {slice(1, 1, 0.9)});
  EXPECT_TRUE(enforcer.evaluate(hot2).empty());
}

TEST(ThresholdEnforcer, IgnoresStateSizeDuringSelection) {
  // Unlike the paper's enforcer, the baseline happily moves the slice with
  // the most state if it has the highest CPU.
  ThresholdEnforcer enforcer{ThresholdPolicyConfig{}};
  const auto view = make_view(
      seconds(60), {{HostId{1}, 0.9}},
      {slice(1, 1, 0.5, 50'000'000), slice(2, 1, 0.45, 100)});
  const auto plan = enforcer.evaluate(view);
  ASSERT_FALSE(plan.moves.empty());
  EXPECT_EQ(plan.moves[0].slice, SliceId{1});  // huge state, moved anyway
}

TEST(Enforcer, ScaleOutSizesNewFleetTowardTarget) {
  // One host at 100 %: total 1.0 -> need ceil(1.0/0.5) = 2 hosts.
  PolicyConfig config;
  Enforcer enforcer{config};
  std::vector<SliceView> slices;
  for (std::uint64_t i = 0; i < 10; ++i) {
    slices.push_back(slice(i + 1, 1, 0.1));
  }
  const auto plan =
      enforcer.evaluate(make_view(seconds(60), {{HostId{1}, 1.0}}, slices));
  EXPECT_EQ(plan.reason, MigrationPlan::Reason::kScaleOut);
  EXPECT_GE(plan.new_hosts, 1u);
  // Enough CPU moved to bring host 1 near the target.
  double moved = 0.0;
  for (const auto& mv : plan.moves) {
    for (const auto& s : slices) {
      if (s.slice == mv.slice) moved += s.cpu;
    }
  }
  EXPECT_GE(moved, 0.5 - 0.02);
}

}  // namespace
}  // namespace esh::elastic
