#!/usr/bin/env bash
# Regenerates every table/figure of the paper reproduction plus the micro
# and ablation benches, saving the combined output to bench_output.txt.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-bench_output.txt}

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

: > "$OUT"
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$OUT"
  "$b" 2>&1 | tee -a "$OUT"
  echo | tee -a "$OUT"
done
echo "wrote $OUT"
