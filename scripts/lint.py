#!/usr/bin/env python3
"""Determinism and hygiene linter for the esh source tree.

The simulator's contract is that a run is a pure function of its inputs and
seeds: the same configuration must produce byte-identical results on every
machine, in every build mode, at any --threads setting.  This linter rejects
the constructs that historically break that contract:

  random-device        std::random_device (non-seeded entropy)
  libc-rand            rand()/srand() (global hidden state, impl-defined)
  wall-clock           time(), gettimeofday, clock_gettime, localtime/gmtime
  chrono-clock         std::chrono::{system,steady,high_resolution}_clock
                       (wall/monotonic time leaking into simulated time)
  unordered-iteration  range-for over a std::unordered_* container whose
                       visit order feeds an outcome (use esh::sorted_keys)
  pointer-keyed        std::(unordered_)map/set keyed by a raw pointer
                       (iteration order = allocation order = nondeterminism)
  unseeded-rng         std::mt19937 / default_random_engine / minstd_rand
                       and friends: retry jitter and backoff randomness must
                       come from an esh::SplitMix64/esh::Rng seeded from the
                       configuration, or two runs retransmit differently
  wall-clock-sleep     sleep_for/sleep_until/usleep/nanosleep: real-time
                       waits (e.g. retry timeouts) stall the host instead of
                       the simulation; schedule a sim::Simulator timer

plus hygiene rules that keep the checked-invariants and clang-tidy builds
honest:

  include-guard        headers must use #pragma once
  iostream-in-header   <iostream> must not be included from a header
  using-namespace      `using namespace` at file scope is banned
  self-include-first   a .cpp's first include is its own header
  invariant-catalog    the DESIGN.md §3 invariant table and the
                       ESH_INVARIANT / ESH_PRECONDITION /
                       ESH_STATE_MACHINE_ASSERT sites in src/ must agree in
                       both directions: a catalog row naming no site is
                       stale, a site with no catalog row is undocumented,
                       and a row packing several names into one cell hides
                       both checks

A finding can be waived in place with an escape comment carrying a reason,
on the offending line or the line above:

    // lint:allow(unordered-iteration): order-free sum

An escape without a rule name or without a non-empty reason is itself an
error, as is an escape that no finding matches (stale allows rot).

Usage: scripts/lint.py [--root DIR] [--quiet]
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HEADER_EXTS = {".hpp", ".h"}
SOURCE_EXTS = {".cpp", ".cc"} | HEADER_EXTS

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)\s*:\s*(\S.*)?$")
ALLOW_LOOSE_RE = re.compile(r"lint:allow")

# ---- simple substring / regex rules -----------------------------------------

PATTERN_RULES = [
    ("random-device", re.compile(r"\bstd\s*::\s*random_device\b"),
     "std::random_device draws real entropy; seed esh::SplitMix64 instead"),
    ("libc-rand", re.compile(r"\b(?:s?rand)\s*\("),
     "rand()/srand() use hidden global state; use esh::SplitMix64"),
    ("wall-clock",
     re.compile(r"\b(?:time|gettimeofday|clock_gettime|localtime|gmtime)\s*\("),
     "wall-clock reads differ per run; derive time from sim::Simulator"),
    ("chrono-clock",
     re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "chrono clocks leak host time into the simulation; use SimTime"),
    ("pointer-keyed",
     re.compile(r"\b(?:unordered_)?(?:map|set)\s*<\s*(?:const\s+)?"
                r"[A-Za-z_][\w:]*\s*\*"),
     "pointer keys order by allocation address; key by a stable id"),
    ("unseeded-rng",
     re.compile(r"\bstd\s*::\s*(?:mt19937(?:_64)?|default_random_engine|"
                r"minstd_rand0?|ranlux(?:24|48)(?:_base)?|knuth_b)\b"),
     "std <random> engines hide their seeding discipline; draw retry "
     "jitter/backoff from an esh::SplitMix64 seeded by the configuration"),
    ("wall-clock-sleep",
     re.compile(r"\b(?:sleep_for|sleep_until|usleep|nanosleep|"
                r"this_thread\s*::\s*yield)\s*\("),
     "real-time waits stall the host, not the simulation; retry/backoff "
     "timeouts must be sim::Simulator timers"),
    ("using-namespace", re.compile(r"^\s*using\s+namespace\s"),
     "file-scope using-directives leak and invite ADL surprises"),
]

# Identifier conventions that make the unordered-iteration heuristic sound:
# a range-for target resolves to its last path component (after ., ->, ::).
FOR_RANGE_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*\*?&?\s*([A-Za-z_][\w.>:\-]*)\s*\)")
UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;(){}]*>\s*"
    r"(?:&\s*)?([A-Za-z_]\w*)\s*(?:;|=|\{|$)")


def last_component(expr: str) -> str:
    for sep in ("->", ".", "::"):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip()


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of string/char literals and // comments so rule
    regexes do not fire on prose.  Block comments are handled line-locally,
    which is enough for this codebase's style."""
    out = []
    i, n = 0, len(line)
    in_str = in_chr = False
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == '"':
                in_str = False
            i += 1
            continue
        if in_chr:
            if c == "\\":
                i += 2
                continue
            if c == "'":
                in_chr = False
            i += 1
            continue
        if c == '"':
            in_str = True
            i += 1
            continue
        if c == "'" and i > 0 and (line[i - 1].isalnum() or line[i - 1] == "_"):
            # digit separator (1'000'000), not a char literal
            out.append(c)
            i += 1
            continue
        if c == "'":
            in_chr = True
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def collect_unordered_names(files: list[Path]) -> dict[Path, set[str]]:
    """Per-directory table of identifiers declared with a std::unordered_*
    type.  Cross-file within a directory on purpose: members are declared in
    headers but iterated in the matching .cpp next to them.  Not global —
    an unrelated subsystem reusing the name for a vector must not be
    flagged."""
    names: dict[Path, set[str]] = {}
    for path in files:
        bucket = names.setdefault(path.parent, set())
        for raw in path.read_text(encoding="utf-8").splitlines():
            code = strip_comments_and_strings(raw)
            for m in UNORDERED_DECL_RE.finditer(code):
                bucket.add(m.group(1))
    return names


def lint_file(path: Path, unordered_names: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    is_header = path.suffix in HEADER_EXTS

    # allows[line_no] = (rule, reason, consumed)
    allows: dict[int, list] = {}
    for idx, raw in enumerate(lines, start=1):
        if ALLOW_LOOSE_RE.search(raw):
            m = ALLOW_RE.search(raw)
            if not m:
                findings.append(Finding(
                    path, idx, "bad-allow",
                    "malformed escape; use // lint:allow(<rule>): <reason>"))
                continue
            rule, reason = m.group(1), m.group(2)
            if not reason:
                findings.append(Finding(
                    path, idx, "bad-allow",
                    f"lint:allow({rule}) must carry a non-empty reason"))
                continue
            allows[idx] = [rule, reason, False]

    def comment_only(line_no: int) -> bool:
        if not 1 <= line_no <= len(lines):
            return False
        stripped = lines[line_no - 1].strip()
        return stripped.startswith("//") or not stripped

    def allowed(line_no: int, rule: str) -> bool:
        # An escape covers its own line, or — when written as a comment —
        # the next code line after the comment block it belongs to.
        candidate = line_no
        while candidate >= 1:
            entry = allows.get(candidate)
            if entry and entry[0] == rule:
                entry[2] = True
                return True
            candidate -= 1
            if not comment_only(candidate):
                return False
        return False

    def report(line_no: int, rule: str, message: str) -> None:
        if not allowed(line_no, rule):
            findings.append(Finding(path, line_no, rule, message))

    if is_header and "#pragma once" not in text:
        findings.append(Finding(path, 1, "include-guard",
                                "header is missing #pragma once"))

    first_include: str | None = None
    for idx, raw in enumerate(lines, start=1):
        # Includes are matched on the raw line: the quoted form would be
        # eaten by the string-literal stripper below.
        inc = re.match(r'\s*#\s*include\s+([<"][^">]+[">])', raw)
        code = strip_comments_and_strings(raw)
        if not code.strip() and not inc:
            continue

        if inc:
            target = inc.group(1)
            if first_include is None:
                first_include = target
            if is_header and target == "<iostream>":
                report(idx, "iostream-in-header",
                       "<iostream> in a header drags iostream statics into "
                       "every TU; include it in the one .cpp that prints")
            continue

        for rule, pattern, message in PATTERN_RULES:
            if pattern.search(code):
                report(idx, rule, message)

        for m in FOR_RANGE_RE.finditer(code):
            name = last_component(m.group(1))
            if name in unordered_names:
                report(idx, "unordered-iteration",
                       f"range-for over unordered container '{name}': visit "
                       "order is hash-table layout; iterate "
                       "esh::sorted_keys(...) or justify with lint:allow")

    if (path.suffix in {".cpp", ".cc"} and first_include is not None
            and not first_include.startswith('"')):
        report(1, "self-include-first",
               f"first include is {first_include}; a .cpp must include its "
               "own header first to prove the header is self-contained")

    for line_no, (rule, _reason, consumed) in sorted(allows.items()):
        if not consumed:
            findings.append(Finding(
                path, line_no, "stale-allow",
                f"lint:allow({rule}) matches no finding; delete it"))

    return findings


# ---- invariant catalog cross-check ------------------------------------------

# Contract sites span lines (clang-format wraps the macro arguments), so the
# subsystem/name pair is matched over whole-file text, \s crossing newlines.
SITE_RE = re.compile(
    r'\bESH_(?:INVARIANT|PRECONDITION|STATE_MACHINE_ASSERT)\s*\(\s*'
    r'"([a-z]+)"\s*,\s*"([a-z0-9-]+)"')
CATALOG_HEADER = "### Invariant catalog"
CATALOG_ROW_RE = re.compile(r"^\|\s*(.*?)\s*\|")
CATALOG_NAME_RE = re.compile(r"^`([a-z]+/[a-z0-9-]+)`$")


def lint_invariant_catalog(repo: Path, files: list[Path]) -> list[Finding]:
    """Bidirectional check of DESIGN.md §3's invariant table against the
    contract sites: stale rows, undocumented sites, and rows that combine
    several invariants into one cell are all findings."""
    design = repo / "DESIGN.md"
    if not design.is_file():
        return [Finding(design, 1, "invariant-catalog",
                        "DESIGN.md not found; the invariant catalog is the "
                        "documented contract surface")]
    findings: list[Finding] = []

    site_names: dict[str, tuple[Path, int]] = {}
    for path in files:
        text = path.read_text(encoding="utf-8")
        for m in SITE_RE.finditer(text):
            qualified = f"{m.group(1)}/{m.group(2)}"
            line = text.count("\n", 0, m.start()) + 1
            site_names.setdefault(qualified, (path, line))

    catalog: dict[str, int] = {}
    lines = design.read_text(encoding="utf-8").splitlines()
    header_line = None
    in_catalog = False
    for idx, raw in enumerate(lines, start=1):
        if raw.startswith(CATALOG_HEADER):
            in_catalog = True
            header_line = idx
            continue
        if in_catalog and raw.startswith("## "):
            break
        if not in_catalog:
            continue
        row = CATALOG_ROW_RE.match(raw)
        if not row:
            continue
        cell = row.group(1)
        if not cell or cell.startswith("---") or cell == "Invariant":
            continue
        m = CATALOG_NAME_RE.match(cell)
        if not m:
            findings.append(Finding(
                design, idx, "invariant-catalog",
                f"catalog row cell '{cell}' is not a single "
                "`subsystem/name`; one invariant per row so each can be "
                "cross-checked against its site"))
            continue
        catalog[m.group(1)] = idx

    if header_line is None:
        return [Finding(design, 1, "invariant-catalog",
                        f"'{CATALOG_HEADER}' section not found in DESIGN.md")]

    for name, row_line in sorted(catalog.items()):
        if name not in site_names:
            findings.append(Finding(
                design, row_line, "invariant-catalog",
                f"catalog row `{name}` names no ESH_* site in src/ "
                "(renamed or removed invariant; update the row)"))
    for name, (path, line) in sorted(site_names.items()):
        if name not in catalog:
            findings.append(Finding(
                path, line, "invariant-catalog",
                f"ESH_* site `{name}` has no row in DESIGN.md's invariant "
                "catalog; document it"))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="directory to lint (default: <repo>/src)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the success line")
    args = parser.parse_args()

    repo = Path(__file__).resolve().parent.parent
    root = Path(args.root).resolve() if args.root else repo / "src"
    if not root.is_dir():
        print(f"lint.py: no such directory: {root}", file=sys.stderr)
        return 2

    files = sorted(p for p in root.rglob("*") if p.suffix in SOURCE_EXTS)
    if not files:
        print(f"lint.py: no C++ sources under {root}", file=sys.stderr)
        return 2

    unordered_names = collect_unordered_names(files)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, unordered_names.get(path.parent, set())))
    if root == repo / "src":
        findings.extend(lint_invariant_catalog(repo, files))

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        tracked = sum(len(v) for v in unordered_names.values())
        print(f"lint.py: {len(files)} files clean "
              f"({tracked} unordered containers tracked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
