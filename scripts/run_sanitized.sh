#!/usr/bin/env bash
# Builds the whole tree with AddressSanitizer + UBSan in a dedicated build
# directory and runs the test suite under the instrumented binaries.
#
# Usage: run_sanitized.sh [ctest-regex]
#   With an argument, only tests matching the regex run (ctest -R), e.g.
#   `run_sanitized.sh 'Matcher|Aspe'` for the matcher differential suite.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}
FILTER=${1:-}

cmake -B "$BUILD_DIR" -S . -DESH_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [[ -n "$FILTER" ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -R "$FILTER"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
