#!/usr/bin/env bash
# Builds the whole tree with a sanitizer in a dedicated build directory and
# runs the test suite under the instrumented binaries.
#
# Usage: [SANITIZE=address|thread|undefined] run_sanitized.sh [ctest-regex]
#   SANITIZE=address (default) instruments with ASan+UBSan in build-asan;
#   SANITIZE=thread instruments with TSan in build-tsan (exercises the
#   matching worker pool); SANITIZE=undefined instruments with standalone
#   UBSan (-fno-sanitize-recover=all: first report aborts) in build-ubsan.
#   With an argument, only tests matching the regex run (ctest -R), e.g.
#   `run_sanitized.sh 'Matcher|Aspe'` for the matcher differential suite.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=${SANITIZE:-address}
case "$SANITIZE" in
  address)   DEFAULT_DIR=build-asan ;;
  thread)    DEFAULT_DIR=build-tsan ;;
  undefined) DEFAULT_DIR=build-ubsan ;;
  *)         DEFAULT_DIR=build-$SANITIZE ;;
esac
BUILD_DIR=${BUILD_DIR:-$DEFAULT_DIR}
FILTER=${1:-}

cmake -B "$BUILD_DIR" -S . -DESH_SANITIZE="$SANITIZE" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [[ -n "$FILTER" ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -R "$FILTER"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
