#!/usr/bin/env bash
# Builds the whole tree with AddressSanitizer + UBSan in a dedicated build
# directory and runs the full test suite under the instrumented binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DESH_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
