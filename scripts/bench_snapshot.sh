#!/usr/bin/env bash
# Captures the parallel-matching wall-clock snapshot: runs the micro_filter
# threads x batch sweep (which also verifies pooled outcomes are identical
# to scalar) and writes the JSON to BENCH_parallel.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-BENCH_parallel.json}

if [ ! -x "$BUILD/bench/micro_filter" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" -j "$(nproc)" --target micro_filter
fi

"$BUILD/bench/micro_filter" --thread_sweep > "$OUT"
echo "wrote $OUT"
