#!/usr/bin/env bash
# Captures the wall-clock benchmark snapshots:
#   - the micro_filter threads x batch matcher sweep (which also verifies
#     pooled outcomes are identical to scalar) -> BENCH_parallel.json
#   - the micro_filter pipeline sweep (full StreamHub run per thread count
#     and dispatch batch cap, outcomes verified identical to the serial
#     reference before timing) -> BENCH_pipeline.json
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-BENCH_parallel.json}
PIPELINE_OUT=${PIPELINE_OUT:-BENCH_pipeline.json}

if [ ! -x "$BUILD/bench/micro_filter" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" -j "$(nproc)" --target micro_filter
fi

"$BUILD/bench/micro_filter" --thread_sweep > "$OUT"
echo "wrote $OUT"

"$BUILD/bench/micro_filter" --pipeline_sweep > "$PIPELINE_OUT"
echo "wrote $PIPELINE_OUT"
