#!/usr/bin/env bash
# Captures the wall-clock benchmark snapshots:
#   - the micro_filter threads x batch matcher sweep (which also verifies
#     pooled outcomes are identical to scalar) -> BENCH_parallel.json
#   - the micro_filter pipeline sweep (full StreamHub run per thread count
#     and dispatch batch cap, outcomes verified identical to the serial
#     reference before timing) -> BENCH_pipeline.json
#   - the micro_filter index sweep (IntervalIndexMatcher vs brute force at
#     100 K -> 1 M subscriptions, subscriber sets verified identical before
#     and after churn) -> BENCH_index.json
#   - the fig_recovery fault scenarios (crash at two checkpoint intervals,
#     partition outlasting the conviction window, gray-host drain) with
#     MTTR phase breakdowns, exactly-once audits and NetworkStats
#     -> BENCH_recovery.json
#   - the fig_split skewed-workload comparison (static vs migrate-only vs
#     automatic hotspot split) with sustained tail throughput, delay
#     percentiles and exactly-once audits -> BENCH_split.json
#   - the fig_migration_strategies sweep (one M slice migrates under load
#     once per protocol) with per-strategy bytes-shipped/downtime/delay
#     curves and the tradeoff ordering verified by the exit code
#     -> BENCH_migration_strategies.json
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-BENCH_parallel.json}
PIPELINE_OUT=${PIPELINE_OUT:-BENCH_pipeline.json}
INDEX_OUT=${INDEX_OUT:-BENCH_index.json}
RECOVERY_OUT=${RECOVERY_OUT:-BENCH_recovery.json}
SPLIT_OUT=${SPLIT_OUT:-BENCH_split.json}
STRATEGIES_OUT=${STRATEGIES_OUT:-BENCH_migration_strategies.json}

if [ ! -x "$BUILD/bench/micro_filter" ] || [ ! -x "$BUILD/bench/fig_recovery" ] \
   || [ ! -x "$BUILD/bench/fig_split" ] \
   || [ ! -x "$BUILD/bench/fig_migration_strategies" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" -j "$(nproc)" --target micro_filter fig_recovery \
    fig_split fig_migration_strategies
fi

"$BUILD/bench/micro_filter" --thread_sweep > "$OUT"
echo "wrote $OUT"

"$BUILD/bench/micro_filter" --pipeline_sweep > "$PIPELINE_OUT"
echo "wrote $PIPELINE_OUT"

"$BUILD/bench/micro_filter" --index_sweep > "$INDEX_OUT"
echo "wrote $INDEX_OUT"

"$BUILD/bench/fig_recovery" --json > "$RECOVERY_OUT"
echo "wrote $RECOVERY_OUT"

"$BUILD/bench/fig_split" --json > "$SPLIT_OUT"
echo "wrote $SPLIT_OUT"

"$BUILD/bench/fig_migration_strategies" --json > "$STRATEGIES_OUT"
echo "wrote $STRATEGIES_OUT"
