#!/usr/bin/env bash
# Assembles bench_output.txt by running every experiment binary once.
# Long-running binaries can be skipped by exporting SKIP="table1_migration
# fig7_migration_delay" and providing their saved output via PRESEED_DIR.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-bench_output.txt}
SKIP=${SKIP:-}
PRESEED_DIR=${PRESEED_DIR:-}

: > "$OUT"
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "### $name" | tee -a "$OUT"
  if [[ " $SKIP " == *" $name "* ]] && [ -n "$PRESEED_DIR" ] \
       && [ -f "$PRESEED_DIR/$name.txt" ]; then
    cat "$PRESEED_DIR/$name.txt" | tee -a "$OUT"
  else
    "$b" 2>&1 | grep -v "WARNING conda" | tee -a "$OUT"
  fi
  echo | tee -a "$OUT"
done
echo "wrote $OUT"
