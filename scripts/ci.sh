#!/usr/bin/env bash
# Continuous-integration entry point. Stages:
#
#   ci.sh [tier1]    configure + build (-Werror) + full tier-1 ctest suite
#   ci.sh checked    same suite under -DESH_CHECK_INVARIANTS=ON: every
#                    contract in src/common/contracts.hpp is live and any
#                    violation fails the run
#   ci.sh lint       scripts/lint.py determinism/hygiene linter over src/
#   ci.sh tidy       clang-tidy build (gate configured in .clang-tidy);
#                    skipped with a notice when clang-tidy is not installed
#   ci.sh all        every stage above, in that order
#
# Each stage is also usable locally; stages never reuse another stage's
# build directory, so incremental local builds stay intact.
set -euo pipefail
cd "$(dirname "$0")/.."

stage_tier1() {
  local dir=${BUILD_DIR:-build-ci}
  cmake -B "$dir" -S . -DESH_WERROR=ON
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

stage_checked() {
  local dir=${BUILD_DIR:-build-ci-checked}
  cmake -B "$dir" -S . -DESH_WERROR=ON -DESH_CHECK_INVARIANTS=ON
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
  # Explicit gate: the pipeline-wide determinism suite (AP/EP/M offload
  # byte-identity across thread counts) must hold with every contract live.
  ctest --test-dir "$dir" --output-on-failure -R 'ParallelPipeline'
}

stage_lint() {
  python3 scripts/lint.py
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "ci.sh: clang-tidy not installed; skipping tidy stage" >&2
    return 0
  fi
  local dir=${BUILD_DIR:-build-ci-tidy}
  cmake -B "$dir" -S . -DESH_CLANG_TIDY=ON
  cmake --build "$dir" -j "$(nproc)"
}

case "${1:-tier1}" in
  tier1)   stage_tier1 ;;
  checked) stage_checked ;;
  lint)    stage_lint ;;
  tidy)    stage_tidy ;;
  all)
    stage_lint
    stage_tier1
    stage_checked
    stage_tidy
    ;;
  *)
    echo "usage: $0 [tier1|checked|lint|tidy|all]" >&2
    exit 2
    ;;
esac
