#!/usr/bin/env bash
# Continuous-integration entry point. Stages:
#
#   ci.sh [tier1]    configure + build (-Werror) + full tier-1 ctest suite
#   ci.sh checked    same suite under -DESH_CHECK_INVARIANTS=ON: every
#                    contract in src/common/contracts.hpp is live and any
#                    violation fails the run
#   ci.sh lint       scripts/lint.py determinism/hygiene linter over src/
#   ci.sh tidy       clang-tidy build (gate configured in .clang-tidy);
#                    skipped with a notice when clang-tidy is not installed
#   ci.sh chaos      fault-injection suites (chaos schedules, reliable
#                    channel, adversarial network, recovery contracts)
#                    under -DESH_CHECK_INVARIANTS=ON, then again under
#                    ASan and TSan via scripts/run_sanitized.sh
#   ci.sh analysis   bounded model checking of the migration/split/merge/
#                    reliable-channel protocols (tools/modelcheck): stock
#                    models must verify exhaustively, planted faults and
#                    spec mutations must produce counterexamples, and
#                    docs/SPEC_CATALOG.md must match the generated tables
#   ci.sh all        every stage above (lint, tier1, checked, chaos, tidy,
#                    analysis), in that order
#
# Each stage is also usable locally; stages never reuse another stage's
# build directory, so incremental local builds stay intact.
#
# Every stage exits with a stage-distinct non-zero code on failure and
# prints a one-line `STAGE <name> FAILED` trailer, so a wrapper (or a log
# scrape) can tell which gate broke without parsing the whole transcript:
#   lint=10  tier1=11  checked=12  chaos=13  tidy=14  analysis=15
set -euEo pipefail
cd "$(dirname "$0")/.."

stage_tier1() {
  local dir=${BUILD_DIR:-build-ci}
  cmake -B "$dir" -S . -DESH_WERROR=ON
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

stage_checked() {
  local dir=${BUILD_DIR:-build-ci-checked}
  cmake -B "$dir" -S . -DESH_WERROR=ON -DESH_CHECK_INVARIANTS=ON
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
  # Explicit gate: the pipeline-wide determinism suite (AP/EP/M offload
  # byte-identity across thread counts) must hold with every contract live.
  ctest --test-dir "$dir" --output-on-failure -R 'ParallelPipeline'
}

stage_lint() {
  python3 scripts/lint.py
}

# Robustness gate: the chaos schedules (crash + partition + gray + storm
# faults), the split/merge torture suite, the migration-strategy differential
# and torture suites, the reliable control channel, the adversarial network
# tests, and the interval-index determinism tests must pass with every
# invariant live, and stay clean under ASan and TSan.
CHAOS_FILTER='Chaos|Reliable|Net|Contract|Split|Merge|Interval|Strateg'

stage_chaos() {
  local dir=${BUILD_DIR:-build-ci-chaos}
  cmake -B "$dir" -S . -DESH_WERROR=ON -DESH_CHECK_INVARIANTS=ON
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)" -R "$CHAOS_FILTER"
  SANITIZE=address BUILD_DIR=build-ci-chaos-asan \
    scripts/run_sanitized.sh "$CHAOS_FILTER"
  SANITIZE=thread BUILD_DIR=build-ci-chaos-tsan \
    scripts/run_sanitized.sh "$CHAOS_FILTER"
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "ci.sh: clang-tidy not installed; skipping tidy stage" >&2
    return 0
  fi
  local dir=${BUILD_DIR:-build-ci-tidy}
  cmake -B "$dir" -S . -DESH_CLANG_TIDY=ON
  cmake --build "$dir" -j "$(nproc)"
}

# The planted-fault / mutated-spec runs must find a counterexample (exit 1);
# a clean pass there means the checker went blind.
expect_counterexample() {
  local rc=0
  "$@" > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "ci.sh: expected a counterexample (exit 1) from: $* (got rc=$rc)" >&2
    return 1
  fi
}

stage_analysis() {
  # The build directory is cached across runs (only esh_analysis and the
  # driver rebuild), and the exploration carries both a wall-clock and a
  # distinct-state budget so a state-space regression fails fast instead of
  # hanging the pipeline.
  local dir=${BUILD_DIR:-build-ci-analysis}
  local budget=${ESH_MODELCHECK_MAX_STATES:-1000000}
  local clock=${ESH_MODELCHECK_TIMEOUT:-120}
  cmake -B "$dir" -S . -DESH_WERROR=ON
  cmake --build "$dir" -j "$(nproc)" --target modelcheck
  local mc="$dir/tools/modelcheck"

  # (a) Every stock model verifies exhaustively: no wedge, no spec-
  #     conformance violation, no invariant violation, budget not exhausted.
  timeout "$clock" "$mc" --max-states "$budget"

  # (b) The checker still detects each failure class it exists to catch.
  expect_counterexample timeout "$clock" "$mc" --model migration --plant-wedge
  expect_counterexample timeout "$clock" "$mc" --model migration \
    --plant-invariant
  expect_counterexample timeout "$clock" "$mc" --model migration \
    --mutate migration:duplication:transfer
  expect_counterexample timeout "$clock" "$mc" --model reliable \
    --mutate reliable-rx:buffered:delivered
  expect_counterexample timeout "$clock" "$mc" --model migration-stop-restart \
    --plant-wedge
  expect_counterexample timeout "$clock" "$mc" --model migration-stop-restart \
    --mutate migration-stop-restart:park:transfer
  expect_counterexample timeout "$clock" "$mc" --model migration-precopy \
    --plant-invariant
  expect_counterexample timeout "$clock" "$mc" --model migration-precopy \
    --mutate migration-precopy:precopy:transfer

  # (c) The documented spec catalog is the generated one, byte for byte.
  "$mc" --dump-catalog-md > "$dir/SPEC_CATALOG.generated.md"
  if ! diff -u docs/SPEC_CATALOG.md "$dir/SPEC_CATALOG.generated.md"; then
    echo "ci.sh: docs/SPEC_CATALOG.md drifted from protocol_spec.cpp;" \
         "regenerate with: build/tools/modelcheck --dump-catalog-md >" \
         "docs/SPEC_CATALOG.md" >&2
    return 1
  fi
}

stage_exit_code() {
  case "$1" in
    lint)     echo 10 ;;
    tier1)    echo 11 ;;
    checked)  echo 12 ;;
    chaos)    echo 13 ;;
    tidy)     echo 14 ;;
    analysis) echo 15 ;;
  esac
}

stage="${1:-tier1}"
case "$stage" in
  all)
    # Each stage runs as a child invocation so its ERR trap and distinct
    # exit code apply unchanged; the first failure stops the pipeline.
    for s in lint tier1 checked chaos tidy analysis; do
      bash "$0" "$s" || exit $?
    done
    exit 0
    ;;
  lint|tier1|checked|chaos|tidy|analysis) ;;
  *)
    echo "usage: $0 [tier1|checked|lint|tidy|chaos|analysis|all]" >&2
    exit 2
    ;;
esac

code="$(stage_exit_code "$stage")"
trap 'echo "STAGE '"$stage"' FAILED" >&2; exit '"$code"'' ERR
"stage_$stage"
