#!/usr/bin/env bash
# Continuous-integration entry point. Stages:
#
#   ci.sh [tier1]    configure + build (-Werror) + full tier-1 ctest suite
#   ci.sh checked    same suite under -DESH_CHECK_INVARIANTS=ON: every
#                    contract in src/common/contracts.hpp is live and any
#                    violation fails the run
#   ci.sh lint       scripts/lint.py determinism/hygiene linter over src/
#   ci.sh tidy       clang-tidy build (gate configured in .clang-tidy);
#                    skipped with a notice when clang-tidy is not installed
#   ci.sh chaos      fault-injection suites (chaos schedules, reliable
#                    channel, adversarial network, recovery contracts)
#                    under -DESH_CHECK_INVARIANTS=ON, then again under
#                    ASan and TSan via scripts/run_sanitized.sh
#   ci.sh all        every stage above, in that order
#
# Each stage is also usable locally; stages never reuse another stage's
# build directory, so incremental local builds stay intact.
set -euo pipefail
cd "$(dirname "$0")/.."

stage_tier1() {
  local dir=${BUILD_DIR:-build-ci}
  cmake -B "$dir" -S . -DESH_WERROR=ON
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

stage_checked() {
  local dir=${BUILD_DIR:-build-ci-checked}
  cmake -B "$dir" -S . -DESH_WERROR=ON -DESH_CHECK_INVARIANTS=ON
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
  # Explicit gate: the pipeline-wide determinism suite (AP/EP/M offload
  # byte-identity across thread counts) must hold with every contract live.
  ctest --test-dir "$dir" --output-on-failure -R 'ParallelPipeline'
}

stage_lint() {
  python3 scripts/lint.py
}

# Robustness gate: the chaos schedules (crash + partition + gray + storm
# faults), the split/merge torture suite, the reliable control channel, the
# adversarial network tests, and the interval-index determinism tests must
# pass with every invariant live, and stay clean under ASan and TSan.
CHAOS_FILTER='Chaos|Reliable|Net|Contract|Split|Merge|Interval'

stage_chaos() {
  local dir=${BUILD_DIR:-build-ci-chaos}
  cmake -B "$dir" -S . -DESH_WERROR=ON -DESH_CHECK_INVARIANTS=ON
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)" -R "$CHAOS_FILTER"
  SANITIZE=address BUILD_DIR=build-ci-chaos-asan \
    scripts/run_sanitized.sh "$CHAOS_FILTER"
  SANITIZE=thread BUILD_DIR=build-ci-chaos-tsan \
    scripts/run_sanitized.sh "$CHAOS_FILTER"
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "ci.sh: clang-tidy not installed; skipping tidy stage" >&2
    return 0
  fi
  local dir=${BUILD_DIR:-build-ci-tidy}
  cmake -B "$dir" -S . -DESH_CLANG_TIDY=ON
  cmake --build "$dir" -j "$(nproc)"
}

case "${1:-tier1}" in
  tier1)   stage_tier1 ;;
  checked) stage_checked ;;
  lint)    stage_lint ;;
  tidy)    stage_tidy ;;
  chaos)   stage_chaos ;;
  all)
    stage_lint
    stage_tier1
    stage_checked
    stage_chaos
    stage_tidy
    ;;
  *)
    echo "usage: $0 [tier1|checked|lint|tidy|chaos|all]" >&2
    exit 2
    ;;
esac
