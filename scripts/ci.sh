#!/usr/bin/env bash
# Continuous-integration entry point: configures, builds and runs the
# tier-1 test suite exactly as ROADMAP.md specifies. Also usable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
