// Command-line driver for the bounded protocol model checker
// (src/analysis/modelcheck.hpp). scripts/ci.sh `analysis` runs it three ways:
//
//   modelcheck                          # all stock models must verify (exit 0)
//   modelcheck --model migration --plant-wedge      # must find it  (exit 1)
//   modelcheck --model migration --mutate migration:duplication:transfer
//                                       # deleted edge must trip    (exit 1)
//   modelcheck --dump-catalog-md        # docs/SPEC_CATALOG.md body to stdout
//
// Exit codes: 0 all checked properties hold; 1 a counterexample was found;
// 2 usage error; 3 state budget exhausted (exploration not exhaustive).
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/modelcheck.hpp"
#include "analysis/protocol_spec.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--model NAME] [--max-states N] [--plant-wedge]\n"
      "          [--plant-invariant] [--mutate MACHINE:FROM:TO]\n"
      "          [--dump-catalog-md] [--list]\n"
      "  --model NAME       check one model (default: every stock model)\n"
      "  --max-states N     distinct-state budget per model (default 1<<20)\n"
      "  --plant-wedge      plant the dropped-crash-reaction wedge\n"
      "  --plant-invariant  plant the ship-without-freeze fault\n"
      "  --mutate M:F:T     delete spec edge F->T of machine M (state names)\n"
      "  --dump-catalog-md  print the generated spec catalog and exit\n"
      "  --list             print the stock model names and exit\n",
      argv0);
  return 2;
}

int run_one(const std::string& name, const esh::analysis::ModelOptions& mopts,
            const esh::analysis::CheckOptions& copts) {
  auto model = esh::analysis::make_model(name, mopts);
  if (!model) {
    std::fprintf(stderr, "modelcheck: unknown model '%s'\n", name.c_str());
    return 2;
  }
  const esh::analysis::CheckResult r = esh::analysis::check_model(*model, copts);
  if (r.ok) {
    std::printf(
        "modelcheck: %-10s OK  %zu states, %zu transitions, %zu quiescent\n",
        name.c_str(), r.states, r.transitions, r.quiescent_states);
    return 0;
  }
  if (r.failure_kind == "budget") {
    std::fprintf(stderr, "modelcheck: %s BUDGET EXHAUSTED: %s\n", name.c_str(),
                 r.failure.c_str());
    return 3;
  }
  std::fprintf(stderr,
               "modelcheck: %s FAILED (%s)\n  %s\n  counterexample "
               "(replayable):\n%s",
               name.c_str(), r.failure_kind.c_str(), r.failure.c_str(),
               r.format_trace().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> models;
  esh::analysis::ModelOptions mopts;
  esh::analysis::CheckOptions copts;
  std::string mutate;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--model") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      models.emplace_back(v);
    } else if (arg == "--max-states") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      copts.max_states = std::stoull(v);
    } else if (arg == "--plant-wedge") {
      mopts.fault = esh::analysis::PlantedFault::kWedge;
    } else if (arg == "--plant-invariant") {
      mopts.fault = esh::analysis::PlantedFault::kInvariant;
    } else if (arg == "--mutate") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      mutate = v;
    } else if (arg == "--dump-catalog-md") {
      std::fputs(esh::analysis::render_catalog_markdown().c_str(), stdout);
      return 0;
    } else if (arg == "--list") {
      for (const std::string& n : esh::analysis::model_names()) {
        std::printf("%s\n", n.c_str());
      }
      return 0;
    } else {
      std::fprintf(stderr, "modelcheck: unknown flag '%s'\n", argv[i]);
      return usage(argv[0]);
    }
  }

  if (!mutate.empty()) {
    const auto c1 = mutate.find(':');
    const auto c2 = c1 == std::string::npos ? c1 : mutate.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      std::fprintf(stderr,
                   "modelcheck: --mutate wants MACHINE:FROM:TO, got '%s'\n",
                   mutate.c_str());
      return 2;
    }
    const std::string machine = mutate.substr(0, c1);
    const std::string from = mutate.substr(c1 + 1, c2 - c1 - 1);
    const std::string to = mutate.substr(c2 + 1);
    const esh::analysis::StateMachineSpec* spec =
        esh::analysis::find_spec(machine);
    if (!spec) {
      std::fprintf(stderr, "modelcheck: unknown machine '%s'\n",
                   machine.c_str());
      return 2;
    }
    try {
      mopts.spec_override = std::make_shared<esh::analysis::StateMachineSpec>(
          spec->without_edge(spec->index_of(from), spec->index_of(to)));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "modelcheck: --mutate %s: %s\n", mutate.c_str(),
                   e.what());
      return 2;
    }
    std::printf("modelcheck: checking against %s without edge %s -> %s\n",
                machine.c_str(), from.c_str(), to.c_str());
  }

  if (models.empty()) models = esh::analysis::model_names();

  int worst = 0;
  for (const std::string& name : models) {
    const int rc = run_one(name, mopts, copts);
    if (rc == 2) return 2;
    if (rc > worst) worst = rc;
  }
  return worst;
}
