#include "analysis/protocol_spec.hpp"

#include <stdexcept>
#include <utility>

namespace esh::analysis {

StateMachineSpec::StateMachineSpec(std::string_view machine,
                                   std::string_view subsystem,
                                   std::string_view invariant,
                                   std::vector<SpecState> states,
                                   std::vector<SpecEdge> edges)
    : name_(machine),
      subsystem_(subsystem),
      invariant_(invariant),
      states_(std::move(states)),
      edges_(std::move(edges)),
      adjacency_(states_.size(), 0) {
  if (states_.size() > 64) {
    throw std::invalid_argument{"StateMachineSpec: > 64 states unsupported"};
  }
  for (const SpecEdge& e : edges_) {
    if (e.from >= states_.size() || e.to >= states_.size()) {
      throw std::invalid_argument{"StateMachineSpec: edge endpoint out of "
                                  "range in machine " + std::string{name_}};
    }
    adjacency_[e.from] |= std::uint64_t{1} << e.to;
  }
}

bool StateMachineSpec::legal(std::size_t from, std::size_t to) const {
  if (from >= adjacency_.size() || to >= states_.size()) return false;
  return (adjacency_[from] >> to) & 1U;
}

const SpecEdge* StateMachineSpec::edge(std::size_t from, std::size_t to) const {
  for (const SpecEdge& e : edges_) {
    if (e.from == from && e.to == to) return &e;
  }
  return nullptr;
}

std::size_t StateMachineSpec::index_of(std::string_view state) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].name == state) return i;
  }
  throw std::invalid_argument{"StateMachineSpec: unknown state " +
                              std::string{state} + " in machine " +
                              std::string{name_}};
}

std::string_view StateMachineSpec::state_name(std::size_t index) const {
  if (index >= states_.size()) return "out-of-range";
  return states_[index].name;
}

StateMachineSpec StateMachineSpec::without_edge(std::size_t from,
                                                std::size_t to) const {
  if (!legal(from, to)) {
    throw std::invalid_argument{"StateMachineSpec: cannot delete illegal "
                                "edge in machine " + std::string{name_}};
  }
  std::vector<SpecEdge> kept;
  kept.reserve(edges_.size() - 1);
  for (const SpecEdge& e : edges_) {
    if (e.from == from && e.to == to) continue;
    kept.push_back(e);
  }
  return StateMachineSpec{name_, subsystem_, invariant_, states_,
                          std::move(kept)};
}

// ---- Tables ----------------------------------------------------------------
//
// Index order in each `states` vector mirrors the runtime enum declaration
// order; tests/test_analysis.cpp pins `to_string(Enum(i)) == states()[i].name`
// for all four engine machines. A `terminal` state has no edges to *other*
// states (idempotency self-edges are allowed and listed explicitly).

const StateMachineSpec& slice_lifecycle_spec() {
  // SliceRuntime::State in engine/host_runtime.hpp.
  static const StateMachineSpec spec{
      "slice-lifecycle",
      "engine",
      "slice-state-legal",
      {
          {"active", /*initial=*/true, /*terminal=*/false},
          {"inactive-replica", /*initial=*/true, /*terminal=*/false},
          {"freeze-pending", false, false},
          {"frozen", false, false},
          {"retired", false, /*terminal=*/true},
      },
      {
          {0, 2, "freeze requested; slice catches up to the freeze point"},
          {0, 4, "host failed or slice evicted while active"},
          {2, 2, "duplicate freeze request re-arms the catch-up wait"},
          {2, 0, "migration aborted before the freeze completed; thaw"},
          {2, 3, "caught up; state serialization / transfer begins"},
          {3, 0,
           "stop-and-restart abort: the parked source froze at its exact "
           "catch-up point, so it thaws and the redirected suffix replays "
           "from the upstream logs"},
          {2, 4, "host failed or slice evicted while freezing"},
          {3, 4, "transfer done (or host failed); instance torn down"},
          {1, 0, "state restored into the replica; activation"},
          {1, 4, "replica aborted or its host failed before activation"},
          {4, 4, "fail_host retires, then evict_slice retires again"},
      }};
  return spec;
}

const StateMachineSpec& migration_spec() {
  // MigrationStep in engine/engine.hpp (paper §IV-A Fig. 3 plus abort edges).
  static const StateMachineSpec spec{
      "migration",
      "engine",
      "migration-step-legal",
      {
          {"create-replica", /*initial=*/true, false},
          {"duplication", false, false},
          {"transfer", false, false},
          {"directory-update", false, false},
          {"teardown", false, /*terminal=*/true},
          {"aborting", false, false},
      },
      {
          {0, 1, "CreateReplicaAck with live upstream channels; duplicate"},
          {0, 2, "CreateReplicaAck with no live upstreams; straight to freeze"},
          {0, 5, "src or dst host died while the replica was being created"},
          {1, 2, "all StartDuplicationAcks received; freeze the source"},
          {1, 5, "src or dst host died during duplication"},
          {2, 3, "ActivatedAck: dst restored state; update the directory"},
          {2, 5, "src or dst host died during freeze / state transfer"},
          {5, 3, "ActivatedAck raced the abort: the move won; converge"},
          {3, 4, "DirectoryUpdateAcks complete; tear the source down"},
      }};
  return spec;
}

const StateMachineSpec& stop_restart_spec() {
  // MigrationStep subset taken by the stop-and-restart strategy
  // (engine/migration_strategy.cpp). State indices are strategy-local:
  // MigrationStrategy::spec_index maps the shared enum into this table
  // (kDuplication and kPrecopy never occur, so they map out of range).
  static const StateMachineSpec spec{
      "migration-stop-restart",
      "engine",
      "stop-restart-step-legal",
      {
          {"create-replica", /*initial=*/true, false},
          {"park", false, false},
          {"transfer", false, false},
          {"directory-update", false, false},
          {"teardown", false, /*terminal=*/true},
          {"aborting", false, false},
      },
      {
          {0, 1, "CreateReplicaAck: upstreams redirect channels to the dst"},
          {0, 2, "CreateReplicaAck with no live upstreams; straight to freeze"},
          {0, 5, "src or dst host died while the replica was being created"},
          {1, 2, "all redirect acks in; source drains to the park point"},
          {1, 5, "src or dst host died while the channels were parked"},
          {2, 3, "ActivatedAck: dst restored the checkpoint; converge"},
          {2, 5, "src or dst host died during freeze / state transfer"},
          {5, 3, "ActivatedAck raced the abort: the move won; converge"},
          {3, 4, "DirectoryUpdateAcks complete; tear the source down"},
      }};
  return spec;
}

const StateMachineSpec& precopy_spec() {
  // MigrationStep subset taken by the incremental pre-copy strategy
  // (engine/migration_strategy.cpp); the `precopy -> precopy` self-edge is
  // one dirty-delta round, bounded by EngineConfig::precopy_rounds (runtime
  // invariant engine/precopy-rounds-bounded).
  static const StateMachineSpec spec{
      "migration-precopy",
      "engine",
      "precopy-step-legal",
      {
          {"create-replica", /*initial=*/true, false},
          {"duplication", false, false},
          {"precopy", false, false},
          {"transfer", false, false},
          {"directory-update", false, false},
          {"teardown", false, /*terminal=*/true},
          {"aborting", false, false},
      },
      {
          {0, 1, "CreateReplicaAck with live upstream channels; duplicate"},
          {0, 2, "CreateReplicaAck with no live upstreams; pre-copy directly"},
          {0, 6, "src or dst host died while the replica was being created"},
          {1, 2, "all StartDuplicationAcks received; ship the baseline"},
          {1, 6, "src or dst host died during duplication"},
          {2, 2, "PrecopyAck with a non-empty delta and rounds remaining"},
          {2, 3, "delta converged or round budget spent; freeze the source"},
          {2, 6, "src or dst host died during a pre-copy round"},
          {3, 4, "ActivatedAck: dst patched the baseline; converge"},
          {3, 6, "src or dst host died during freeze / delta transfer"},
          {6, 4, "ActivatedAck raced the abort: the move won; converge"},
          {4, 5, "DirectoryUpdateAcks complete; tear the source down"},
      }};
  return spec;
}

const StateMachineSpec& split_spec() {
  // SplitStep in engine/engine.hpp (docs/PROTOCOL.md, key-level split).
  static const StateMachineSpec spec{
      "split",
      "engine",
      "split-step-legal",
      {
          {"create-child", /*initial=*/true, false},
          {"cut-over", false, false},
          {"drain", false, false},
          {"activate", false, /*terminal=*/true},
          {"aborting", false, /*terminal=*/true},
      },
      {
          {0, 1, "child replica registered; atomic routing flip"},
          {0, 4, "child host died pre-cut-over; nothing routed yet, abort"},
          {1, 2, "routing flipped; parent drains to the captured cut"},
          {2, 3, "SplitStateMessage captured; child restores its half"},
      }};
  return spec;
}

const StateMachineSpec& merge_spec() {
  // MergeStep in engine/engine.hpp. Merges only roll forward: once routing
  // flipped, participant deaths re-drive the pending leg via recovery.
  static const StateMachineSpec spec{
      "merge",
      "engine",
      "merge-step-legal",
      {
          {"cut-over", /*initial=*/true, false},
          {"drain-retiree", false, false},
          {"absorb", false, false},
          {"teardown", false, /*terminal=*/true},
      },
      {
          {0, 1, "routing flipped to the survivor; retiree drains"},
          {1, 2, "retiree's final vector captured; survivor absorbs"},
          {2, 3, "absorption applied; retire the drained instance"},
      }};
  return spec;
}

const StateMachineSpec& reliable_tx_spec() {
  // Sender-side lifecycle of one message in net/reliable.cpp: a Pending
  // entry exists exactly while the message is in flight.
  static const StateMachineSpec spec{
      "reliable-tx",
      "net",
      "reliable-tx-step-legal",
      {
          {"fresh", /*initial=*/true, false},
          {"in-flight", false, false},
          {"acked", false, /*terminal=*/true},
          {"given-up", false, /*terminal=*/true},
          {"forgotten", false, /*terminal=*/true},
      },
      {
          {0, 1, "send(): first transmission, RTO timer armed"},
          {1, 1, "RTO fired with retries <= budget; retransmit with backoff"},
          {1, 2, "cumulative ack covers this seq"},
          {1, 3, "retry budget exhausted; peer escalated to give-up handler"},
          {1, 4, "forget_peer: failure detector convicted the peer"},
      }};
  return spec;
}

const StateMachineSpec& reliable_rx_spec() {
  // Receiver-side lifecycle of one sequence number in net/reliable.cpp.
  static const StateMachineSpec spec{
      "reliable-rx",
      "net",
      "reliable-rx-step-legal",
      {
          {"unseen", /*initial=*/true, false},
          {"buffered", false, false},
          {"delivered", false, /*terminal=*/true},
          {"forgotten", false, /*terminal=*/true},
      },
      {
          {0, 1, "frame admitted: seq >= expected and not already buffered"},
          {1, 1, "duplicate of a buffered seq dropped; ack re-sent"},
          {1, 2, "in-order prefix complete; app sees the payload once"},
          {2, 2, "stale duplicate below the cursor dropped; ack re-sent"},
          {1, 3, "forget_peer discards the reorder buffer"},
      }};
  return spec;
}

const std::vector<const StateMachineSpec*>& all_specs() {
  static const std::vector<const StateMachineSpec*> specs{
      &slice_lifecycle_spec(), &migration_spec(),     &stop_restart_spec(),
      &precopy_spec(),         &split_spec(),         &merge_spec(),
      &reliable_tx_spec(),     &reliable_rx_spec(),
  };
  return specs;
}

const StateMachineSpec* find_spec(std::string_view machine) {
  for (const StateMachineSpec* spec : all_specs()) {
    if (spec->name() == machine) return spec;
  }
  return nullptr;
}

std::string render_catalog_markdown() {
  std::string out;
  out += "# Protocol state-machine catalog\n\n";
  out += "Generated from `src/analysis/protocol_spec.cpp` by "
         "`tools/modelcheck --dump-catalog-md`.\n";
  out += "Do not edit by hand: `scripts/ci.sh analysis` regenerates this "
         "file and fails on drift.\n";
  out += "DESIGN.md §3 references these tables for every "
         "`ESH_STATE_MACHINE_ASSERT` invariant.\n";
  for (const StateMachineSpec* spec : all_specs()) {
    out += "\n## ";
    out += spec->name();
    out += " (`";
    out += spec->subsystem();
    out += "/";
    out += spec->invariant();
    out += "`)\n\nStates: ";
    bool first = true;
    for (const SpecState& s : spec->states()) {
      if (!first) out += ", ";
      first = false;
      out += "`";
      out += s.name;
      out += "`";
      if (s.initial) out += " (initial)";
      if (s.terminal) out += " (terminal)";
    }
    out += "\n\n| from | to | when |\n|---|---|---|\n";
    for (const SpecEdge& e : spec->edges()) {
      out += "| `";
      out += spec->state_name(e.from);
      out += "` | `";
      out += spec->state_name(e.to);
      out += "` | ";
      out += e.label;
      out += " |\n";
    }
  }
  return out;
}

}  // namespace esh::analysis
