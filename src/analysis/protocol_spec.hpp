// Declarative transition tables for the engine's protocol state machines —
// the single source of truth shared by three consumers:
//
//   1. the runtime `ESH_STATE_MACHINE_ASSERT` sites (`slice_transition_legal`
//      in host_runtime.cpp, the migration/split/merge step tables in
//      engine.cpp, the reliable-channel handshake in net/reliable.cpp) all
//      delegate their legality checks to these tables;
//   2. the bounded model checker (analysis/modelcheck.hpp) validates every
//      edge a model takes against the same tables (spec conformance);
//   3. docs/SPEC_CATALOG.md is generated from them (`tools/modelcheck
//      --dump-catalog-md`), so the documented edge lists cannot drift.
//
// State indices are load-bearing: `states()[i]` describes the enum value `i`
// of the corresponding runtime enum (MigrationStep, SplitStep, MergeStep,
// SliceRuntime::State). tests/test_analysis.cpp pins name alignment for every
// index so a reordered enum fails loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace esh::analysis {

struct SpecState {
  std::string_view name;
  bool initial = false;   // a machine instance may start here
  bool terminal = false;  // no outgoing edges; resolved outside the machine
};

struct SpecEdge {
  std::uint8_t from = 0;
  std::uint8_t to = 0;
  std::string_view label;  // when/why this edge is taken
};

class StateMachineSpec {
 public:
  StateMachineSpec(std::string_view machine, std::string_view subsystem,
                   std::string_view invariant, std::vector<SpecState> states,
                   std::vector<SpecEdge> edges);

  [[nodiscard]] std::string_view name() const { return name_; }
  // Subsystem + invariant name of the ESH_STATE_MACHINE_ASSERT site that
  // enforces this table at runtime (e.g. "engine" / "migration-step-legal").
  [[nodiscard]] std::string_view subsystem() const { return subsystem_; }
  [[nodiscard]] std::string_view invariant() const { return invariant_; }
  [[nodiscard]] const std::vector<SpecState>& states() const { return states_; }
  [[nodiscard]] const std::vector<SpecEdge>& edges() const { return edges_; }

  // O(1) adjacency lookup; out-of-range indices are simply illegal.
  [[nodiscard]] bool legal(std::size_t from, std::size_t to) const;
  // The edge record for (from, to), or nullptr when illegal.
  [[nodiscard]] const SpecEdge* edge(std::size_t from, std::size_t to) const;
  [[nodiscard]] std::size_t index_of(std::string_view state) const;  // throws
  [[nodiscard]] std::string_view state_name(std::size_t index) const;

  // A copy of this spec with one legal edge removed — the mutation hook used
  // by the deleted-edge conformance tests and `tools/modelcheck --mutate`.
  // Throws std::invalid_argument when (from, to) is not a legal edge.
  [[nodiscard]] StateMachineSpec without_edge(std::size_t from,
                                              std::size_t to) const;

 private:
  std::string_view name_;
  std::string_view subsystem_;
  std::string_view invariant_;
  std::vector<SpecState> states_;
  std::vector<SpecEdge> edges_;
  std::vector<std::uint64_t> adjacency_;  // bitmask of legal `to` per `from`
};

// Slice instance lifecycle on a host (engine/host_runtime.cpp,
// SliceRuntime::State). Runtime assert: engine/slice-state-legal.
[[nodiscard]] const StateMachineSpec& slice_lifecycle_spec();

// Coordinator position of one in-flight migration (paper §IV-A Fig. 3;
// engine/engine.cpp MigrationStep). Runtime assert: engine/migration-step-legal.
[[nodiscard]] const StateMachineSpec& migration_spec();

// Coordinator position of one stop-and-restart migration (park the slice's
// channels at the replica, ship one full checkpoint; engine/engine.cpp
// MigrationStep via MigrationStrategy::spec_index). Runtime assert:
// engine/stop-restart-step-legal.
[[nodiscard]] const StateMachineSpec& stop_restart_spec();

// Coordinator position of one incremental pre-copy migration (mirrored
// duplication, bounded dirty-delta rounds, delta final transfer;
// engine/engine.cpp MigrationStep via MigrationStrategy::spec_index).
// Runtime assert: engine/precopy-step-legal.
[[nodiscard]] const StateMachineSpec& precopy_spec();

// Coordinator position of one key-level slice split (docs/PROTOCOL.md;
// engine/engine.cpp SplitStep). Runtime assert: engine/split-step-legal.
[[nodiscard]] const StateMachineSpec& split_spec();

// Coordinator position of one cold-sibling merge (roll-forward only;
// engine/engine.cpp MergeStep). Runtime assert: engine/merge-step-legal.
[[nodiscard]] const StateMachineSpec& merge_spec();

// Sender-side lifecycle of one message on the reliable control channel
// (net/reliable.cpp). Runtime assert: net/reliable-tx-step-legal.
[[nodiscard]] const StateMachineSpec& reliable_tx_spec();

// Receiver-side lifecycle of one sequence number on the reliable control
// channel (net/reliable.cpp). Runtime assert: net/reliable-rx-step-legal.
[[nodiscard]] const StateMachineSpec& reliable_rx_spec();

[[nodiscard]] const std::vector<const StateMachineSpec*>& all_specs();
// nullptr when no machine has that name.
[[nodiscard]] const StateMachineSpec* find_spec(std::string_view machine);

// Markdown rendering of every spec table (one section per machine: states,
// then edges with labels). This is the generated body of docs/SPEC_CATALOG.md;
// `scripts/ci.sh analysis` regenerates and diffs it so docs cannot drift.
[[nodiscard]] std::string render_catalog_markdown();

}  // namespace esh::analysis
