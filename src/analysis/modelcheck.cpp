#include "analysis/modelcheck.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace esh::analysis {
namespace {

std::uint64_t fnv1a(const ModelState& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::uint8_t b : s) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

struct StateHash {
  std::size_t operator()(const ModelState& s) const {
    return static_cast<std::size_t>(fnv1a(s));
  }
};

// Non-owning view of a static spec, or the caller's mutated override when its
// machine name matches — this is how `--mutate` swaps a table out from under a
// model without changing the model's behavior.
std::shared_ptr<const StateMachineSpec> bind_spec(
    const ModelOptions& options, const StateMachineSpec& stock) {
  if (options.spec_override && options.spec_override->name() == stock.name()) {
    return options.spec_override;
  }
  return {std::shared_ptr<void>{}, &stock};  // aliasing, no-op lifetime
}

}  // namespace

std::string CheckResult::format_trace() const {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ". " + trace[i] + "\n";
  }
  out += "  => " + failing_state + "\n";
  return out;
}

CheckResult check_model(const Model& model, const CheckOptions& options) {
  CheckResult result;
  std::vector<ModelState> states;
  std::unordered_map<ModelState, std::uint32_t, StateHash> index;
  std::vector<std::int64_t> parent;   // discovery parent, -1 for the initial
  std::vector<std::string> via;       // action label that discovered the state
  std::vector<std::vector<std::uint32_t>> fwd;  // forward adjacency
  std::vector<char> quiet;

  auto trace_to = [&](std::uint32_t target) {
    std::vector<std::string> steps;
    for (std::int64_t cur = target; parent[cur] >= 0; cur = parent[cur]) {
      steps.push_back(via[cur]);
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  };

  auto fail = [&](std::string kind, std::string what,
                  std::vector<std::string> trace, std::string state_text) {
    result.ok = false;
    result.failure_kind = std::move(kind);
    result.failure = std::move(what);
    result.trace = std::move(trace);
    result.failing_state = std::move(state_text);
    result.states = states.size();
    return result;
  };

  auto admit = [&](ModelState state, std::int64_t from,
                   std::string label) -> std::pair<std::uint32_t, bool> {
    auto it = index.find(state);
    if (it != index.end()) return {it->second, false};
    auto id = static_cast<std::uint32_t>(states.size());
    index.emplace(state, id);
    states.push_back(std::move(state));
    parent.push_back(from);
    via.push_back(std::move(label));
    fwd.emplace_back();
    quiet.push_back(model.quiescent(states[id]) ? 1 : 0);
    return {id, true};
  };

  auto [init_id, init_new] = admit(model.initial(), -1, "");
  (void)init_new;
  if (std::string v = model.invariant(states[init_id]); !v.empty()) {
    return fail("invariant", "invariant violated in the initial state: " + v,
                {}, model.describe(states[init_id]));
  }

  std::vector<Successor> succ;
  // BFS (states are appended in discovery order), so counterexample traces
  // are shortest-path.
  for (std::uint32_t cursor = 0; cursor < states.size(); ++cursor) {
    if (states.size() > options.max_states) {
      result.exhausted_budget = true;
      return fail("budget",
                  "state budget exceeded (" +
                      std::to_string(options.max_states) +
                      " distinct states); exploration was not exhaustive",
                  {}, "");
    }
    succ.clear();
    model.successors(states[cursor], succ);
    for (Successor& s : succ) {
      ++result.transitions;
      if (s.action.machine != nullptr &&
          !s.action.machine->legal(s.action.from, s.action.to)) {
        auto trace = trace_to(cursor);
        trace.push_back(s.action.label);
        return fail(
            "conformance",
            "machine '" + std::string{s.action.machine->name()} +
                "': action '" + s.action.label + "' takes edge " +
                std::string{s.action.machine->state_name(s.action.from)} +
                " -> " +
                std::string{s.action.machine->state_name(s.action.to)} +
                " which is not in the spec table",
            std::move(trace), model.describe(s.state));
      }
      auto [id, fresh] = admit(std::move(s.state), cursor, s.action.label);
      fwd[cursor].push_back(id);
      if (fresh) {
        if (std::string v = model.invariant(states[id]); !v.empty()) {
          return fail("invariant", "invariant violated: " + v, trace_to(id),
                      model.describe(states[id]));
        }
      }
    }
  }

  // Wedge check: backward reachability from the quiescent states; every
  // reachable state must be able to reach one.
  std::vector<std::vector<std::uint32_t>> rev(states.size());
  for (std::uint32_t from = 0; from < states.size(); ++from) {
    for (std::uint32_t to : fwd[from]) rev[to].push_back(from);
  }
  std::vector<char> can_quiesce(states.size(), 0);
  std::vector<std::uint32_t> queue;
  for (std::uint32_t i = 0; i < states.size(); ++i) {
    if (quiet[i]) {
      can_quiesce[i] = 1;
      queue.push_back(i);
      ++result.quiescent_states;
    }
  }
  while (!queue.empty()) {
    std::uint32_t cur = queue.back();
    queue.pop_back();
    for (std::uint32_t pred : rev[cur]) {
      if (!can_quiesce[pred]) {
        can_quiesce[pred] = 1;
        queue.push_back(pred);
      }
    }
  }
  for (std::uint32_t i = 0; i < states.size(); ++i) {
    if (!can_quiesce[i]) {  // lowest discovery index = shortest trace
      return fail("wedge",
                  "state has no path to quiescence (protocol wedged)" +
                      std::string{fwd[i].empty() ? "; no actions enabled" : ""},
                  trace_to(i), model.describe(states[i]));
    }
  }

  result.ok = true;
  result.states = states.size();
  return result;
}

// ---- Shared model scaffolding ----------------------------------------------

namespace {

// Slice-lifecycle indices (slice_lifecycle_spec order) plus model sentinels.
constexpr std::uint8_t kActive = 0;
constexpr std::uint8_t kReplica = 1;
constexpr std::uint8_t kFreezePending = 2;
constexpr std::uint8_t kFrozen = 3;
constexpr std::uint8_t kRetired = 4;
constexpr std::uint8_t kNone = 5;  // instance never created in this slot
constexpr std::uint8_t kLost = 6;  // instance's host crashed

std::string slot_name(std::uint8_t v) {
  switch (v) {
    case kNone: return "none";
    case kLost: return "lost";
    default: return std::string{slice_lifecycle_spec().state_name(v)};
  }
}

class ModelBase : public Model {
 public:
  explicit ModelBase(ModelOptions options) : options_(std::move(options)) {}

 protected:
  static void add(std::vector<Successor>& out, const ModelState& s,
                  std::string label, const StateMachineSpec* machine,
                  std::uint8_t from, std::uint8_t to,
                  const std::function<void(ModelState&)>& mut) {
    ModelState next = s;
    mut(next);
    out.push_back({ModelAction{std::move(label), machine, from, to},
                   std::move(next)});
  }

  ModelOptions options_;
};

// ---- Migration --------------------------------------------------------------
//
// Hosts: coordinator (immortal), source, destination, peers (immortal).
// One migration of one slice. Byte layout below; single in-flight
// request/response round at a time (the coordinator protocol is sequential
// per step), one crash and one frame drop budgeted.
class MigrationModel final : public ModelBase {
  // state bytes
  enum : std::size_t {
    kStep = 0,     // migration_spec index; 6 = abort record erased
    kSrc,          // slice slot of the source instance
    kDst,          // slice slot of the destination replica
    kAwait,        // a request/response round is outstanding
    kDropped,      // the round's current frame was dropped (awaiting rto)
    kDropBudget,
    kCrashBudget,
    kSrcAlive,
    kDstAlive,
    kBytes,
  };
  static constexpr std::uint8_t kResolved = 6;  // abort cleaned, record erased

 public:
  explicit MigrationModel(ModelOptions options)
      : ModelBase(std::move(options)),
        mig_(bind_spec(options_, migration_spec())),
        slice_(bind_spec(options_, slice_lifecycle_spec())) {}

  std::string name() const override { return "migration"; }

  ModelState initial() const override {
    ModelState s(kBytes, 0);
    s[kStep] = 0;
    s[kSrc] = kActive;
    s[kDst] = kNone;
    s[kDropBudget] = 1;
    s[kCrashBudget] = 1;
    s[kSrcAlive] = 1;
    s[kDstAlive] = 1;
    return s;
  }

  void successors(const ModelState& s, std::vector<Successor>& out) const override {
    const std::uint8_t step = s[kStep];
    const bool both = s[kSrcAlive] && s[kDstAlive];
    const PlantedFault fault = options_.fault;

    // Planted wedge: the coordinator's reaction to a destination crash during
    // transfer was dropped, so the run sits awaiting an ack from a corpse —
    // model the blocked coordinator as a deadlock.
    if (fault == PlantedFault::kWedge && step == 2 && !s[kDstAlive]) return;

    auto step_to = [](std::uint8_t to) {
      return [to](ModelState& n) {
        n[kStep] = to;
        n[kAwait] = 0;
      };
    };

    // Protocol rounds (request -> processing -> ack), steps 0-2 ride the
    // src/dst control channels, step 3 fans out to the immortal peers.
    if (step == 0 && both) {
      if (!s[kAwait] && s[kDst] == kNone) {
        add(out, s, "request: CreateReplica -> dst", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: CreateReplicaAck (live upstreams)", mig_.get(), 0, 1,
            [step_to](ModelState& n) {
              n[kDst] = kReplica;
              step_to(1)(n);
            });
        add(out, s, "ack: CreateReplicaAck (no upstreams)", mig_.get(), 0, 2,
            [step_to](ModelState& n) {
              n[kDst] = kReplica;
              step_to(2)(n);
            });
      }
    }
    if (step == 1 && both) {
      if (!s[kAwait]) {
        add(out, s, "request: StartDuplication -> dst", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: StartDuplicationAck", mig_.get(), 1, 2, step_to(2));
      }
    }
    // Freeze of the source happens around the duplication -> transfer
    // boundary; the kInvariant fault ships state without ever freezing.
    if ((step == 1 || step == 2) && s[kSrcAlive] &&
        fault != PlantedFault::kInvariant && s[kSrc] == kActive) {
      add(out, s, "source: freeze requested", slice_.get(), kActive,
          kFreezePending,
          [](ModelState& n) { n[kSrc] = kFreezePending; });
    }
    if ((step == 1 || step == 2) && s[kSrcAlive] && s[kSrc] == kFreezePending) {
      add(out, s, "source: caught up to freeze point", slice_.get(),
          kFreezePending, kFrozen, [](ModelState& n) { n[kSrc] = kFrozen; });
    }
    if (step == 2 && both) {
      const bool frozen = s[kSrc] == kFrozen;
      const bool faulty_ship =
          fault == PlantedFault::kInvariant && s[kSrc] == kActive;
      if (!s[kAwait] && (frozen || faulty_ship)) {
        add(out, s, "request: ship frozen state -> dst", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped] && s[kDst] == kReplica &&
          (frozen || faulty_ship)) {
        add(out, s, "dst: restored state; replica activates", slice_.get(),
            kReplica, kActive, [](ModelState& n) { n[kDst] = kActive; });
      }
      if (s[kAwait] && !s[kDropped] && s[kDst] == kActive) {
        add(out, s, "ack: ActivatedAck", mig_.get(), 2, 3, step_to(3));
      }
    }
    if (step == 3) {
      if (!s[kAwait]) {
        add(out, s, "request: DirectoryUpdate -> peers", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: DirectoryUpdateAcks complete", mig_.get(), 3, 4,
            step_to(4));
      }
    }
    if (step == 4 && s[kSrcAlive] && s[kSrc] == kFrozen) {
      add(out, s, "source: instance torn down", slice_.get(), kFrozen,
          kRetired, [](ModelState& n) { n[kSrc] = kRetired; });
    }

    // Abort cleanup (step 5). Messaging during cleanup is abstracted into
    // atomic actions; the record is erased once no replica or freeze is left.
    if (step == 5) {
      if (s[kSrc] == kFreezePending && s[kSrcAlive]) {
        add(out, s, "abort: thaw the source", slice_.get(), kFreezePending,
            kActive, [](ModelState& n) { n[kSrc] = kActive; });
      }
      if (s[kSrc] == kFrozen && s[kSrcAlive]) {
        add(out, s, "abort: retire the frozen source (re-homed)", slice_.get(),
            kFrozen, kRetired, [](ModelState& n) { n[kSrc] = kRetired; });
      }
      if (s[kDst] == kReplica && s[kDstAlive]) {
        add(out, s, "abort: retire the replica", slice_.get(), kReplica,
            kRetired, [](ModelState& n) { n[kDst] = kRetired; });
      }
      if (s[kDst] == kActive && s[kDstAlive]) {
        add(out, s, "abort: activation raced the abort; converge", mig_.get(),
            5, 3, step_to(3));
      }
      const bool src_clean =
          s[kSrc] == kActive || s[kSrc] == kRetired || s[kSrc] == kLost;
      const bool dst_clean = s[kDst] == kRetired || s[kDst] == kNone ||
                             s[kDst] == kLost;
      if (src_clean && dst_clean) {
        add(out, s, "abort: cleanup complete; record erased", nullptr, 0, 0,
            [](ModelState& n) { n[kStep] = kResolved; });
      }
    }

    // Manager re-covers a slice whose every incarnation is gone, once the
    // protocol record is resolved (recovery itself is out of scope here).
    const bool no_active = s[kSrc] != kActive && s[kDst] != kActive;
    if (no_active && (step == 4 || step == kResolved) && s[kSrc] != kFrozen &&
        s[kSrc] != kFreezePending) {
      add(out, s, "manager: respawn lost slice from checkpoint", nullptr, 0, 0,
          [](ModelState& n) { n[kSrc] = kActive; });
    }

    // Channel nondeterminism: drop the round's frame (the reliable channel
    // will retransmit), then retransmit restores it.
    if (s[kAwait] && !s[kDropped] && s[kDropBudget] > 0) {
      add(out, s, "net: frame dropped", nullptr, 0, 0, [](ModelState& n) {
        n[kDropped] = 1;
        --n[kDropBudget];
      });
    }
    if (s[kDropped] && (step == 3 || both)) {
      add(out, s, "net: rto retransmit", nullptr, 0, 0,
          [](ModelState& n) { n[kDropped] = 0; });
    }

    // Crashes. The coordinator reaction (handle_host_failure) runs atomically
    // with the failure-detector conviction; outstanding frames to/from the
    // dead host are purged and the round restarts under the abort.
    if (s[kCrashBudget] > 0) {
      if (s[kSrcAlive]) {
        const bool abort = step <= 2;
        add(out, s, "crash: source host dies", abort ? mig_.get() : nullptr,
            step, 5, [abort](ModelState& n) {
              n[kSrcAlive] = 0;
              if (n[kSrc] != kRetired) n[kSrc] = kLost;
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
              if (abort) n[kStep] = 5;
            });
      }
      if (s[kDstAlive]) {
        const bool react = !(fault == PlantedFault::kWedge && step == 2);
        const bool abort = react && step <= 2;
        add(out, s,
            react ? "crash: destination host dies"
                  : "crash: destination host dies (reaction dropped)",
            abort ? mig_.get() : nullptr, step, 5,
            [abort](ModelState& n) {
              n[kDstAlive] = 0;
              if (n[kDst] != kRetired && n[kDst] != kNone) n[kDst] = kLost;
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
              if (abort) n[kStep] = 5;
            });
      }
    }
  }

  bool quiescent(const ModelState& s) const override {
    if (s[kAwait] || s[kDropped]) return false;
    if (s[kStep] == 4) {
      // Exactly one active incarnation covers the slice: the destination
      // after a completed move, or the manager's respawn if the newly
      // active destination died right after the directory update.
      const bool src_settled = s[kSrc] == kRetired || s[kSrc] == kLost;
      return (s[kDst] == kActive && src_settled) ||
             (s[kSrc] == kActive && s[kDst] == kLost);
    }
    if (s[kStep] == kResolved) {
      return s[kSrc] == kActive;  // abort cleaned; the source (or its
                                  // respawned incarnation) serves the slice
    }
    return false;
  }

  std::string invariant(const ModelState& s) const override {
    if (s[kSrc] == kActive && s[kDst] == kActive) {
      return "exactly-once: source and destination active concurrently "
             "(duplicate delivery of every publication on the slice)";
    }
    return "";
  }

  std::string describe(const ModelState& s) const override {
    std::string step = s[kStep] == kResolved
                           ? "resolved"
                           : std::string{mig_->state_name(s[kStep])};
    return "migration{step=" + step + " src=" + slot_name(s[kSrc]) +
           (s[kSrcAlive] ? "" : "(host down)") + " dst=" + slot_name(s[kDst]) +
           (s[kDstAlive] ? "" : "(host down)") +
           " awaiting=" + std::to_string(s[kAwait]) +
           " dropped=" + std::to_string(s[kDropped]) + "}";
  }

 private:
  std::shared_ptr<const StateMachineSpec> mig_;
  std::shared_ptr<const StateMachineSpec> slice_;
};

// ---- Stop-and-restart migration --------------------------------------------
//
// Same cast as MigrationModel, driving the redirect variant: instead of
// mirroring, the park step flips every upstream channel to deliver
// exclusively to the destination replica (the source drains), then the full
// checkpoint ships in one hop. Aborts must replay the redirected suffix back
// to the thawed source — abstracted into the atomic thaw action.
class StopRestartModel final : public ModelBase {
  enum : std::size_t {
    kStep = 0,  // stop_restart_spec index; 6 = abort record erased
    kSrc,
    kDst,
    kAwait,
    kDropped,
    kDropBudget,
    kCrashBudget,
    kSrcAlive,
    kDstAlive,
    kBytes,
  };
  static constexpr std::uint8_t kResolved = 6;

 public:
  explicit StopRestartModel(ModelOptions options)
      : ModelBase(std::move(options)),
        mig_(bind_spec(options_, stop_restart_spec())),
        slice_(bind_spec(options_, slice_lifecycle_spec())) {}

  std::string name() const override { return "migration-stop-restart"; }

  ModelState initial() const override {
    ModelState s(kBytes, 0);
    s[kStep] = 0;
    s[kSrc] = kActive;
    s[kDst] = kNone;
    s[kDropBudget] = 1;
    s[kCrashBudget] = 1;
    s[kSrcAlive] = 1;
    s[kDstAlive] = 1;
    return s;
  }

  void successors(const ModelState& s, std::vector<Successor>& out) const override {
    const std::uint8_t step = s[kStep];
    const bool both = s[kSrcAlive] && s[kDstAlive];
    const PlantedFault fault = options_.fault;

    // Planted wedge: reaction to the destination dying mid-transfer dropped;
    // the coordinator waits forever on an ack from a corpse.
    if (fault == PlantedFault::kWedge && step == 2 && !s[kDstAlive]) return;

    auto step_to = [](std::uint8_t to) {
      return [to](ModelState& n) {
        n[kStep] = to;
        n[kAwait] = 0;
      };
    };

    if (step == 0 && both) {
      if (!s[kAwait] && s[kDst] == kNone) {
        add(out, s, "request: CreateReplica -> dst", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: CreateReplicaAck (live upstreams)", mig_.get(), 0, 1,
            [step_to](ModelState& n) {
              n[kDst] = kReplica;
              step_to(1)(n);
            });
        add(out, s, "ack: CreateReplicaAck (no upstreams)", mig_.get(), 0, 2,
            [step_to](ModelState& n) {
              n[kDst] = kReplica;
              step_to(2)(n);
            });
      }
    }
    // Park: upstream channels flip to redirect-to-destination; the source
    // stops receiving and drains toward its freeze point.
    if (step == 1 && both) {
      if (!s[kAwait]) {
        add(out, s, "request: StartDuplication(redirect) -> dst", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: StartDuplicationAck (channels parked)", mig_.get(),
            1, 2, step_to(2));
      }
    }
    // The source freezes once its parked input drains; the kInvariant fault
    // ships the full checkpoint without ever freezing.
    if ((step == 1 || step == 2) && s[kSrcAlive] &&
        fault != PlantedFault::kInvariant && s[kSrc] == kActive) {
      add(out, s, "source: freeze requested", slice_.get(), kActive,
          kFreezePending,
          [](ModelState& n) { n[kSrc] = kFreezePending; });
    }
    if ((step == 1 || step == 2) && s[kSrcAlive] && s[kSrc] == kFreezePending) {
      add(out, s, "source: caught up to freeze point", slice_.get(),
          kFreezePending, kFrozen, [](ModelState& n) { n[kSrc] = kFrozen; });
    }
    if (step == 2 && both) {
      const bool frozen = s[kSrc] == kFrozen;
      const bool faulty_ship =
          fault == PlantedFault::kInvariant && s[kSrc] == kActive;
      if (!s[kAwait] && (frozen || faulty_ship)) {
        add(out, s, "request: ship full checkpoint -> dst", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped] && s[kDst] == kReplica &&
          (frozen || faulty_ship)) {
        add(out, s, "dst: restored checkpoint; replica activates",
            slice_.get(), kReplica, kActive,
            [](ModelState& n) { n[kDst] = kActive; });
      }
      if (s[kAwait] && !s[kDropped] && s[kDst] == kActive) {
        add(out, s, "ack: ActivatedAck", mig_.get(), 2, 3, step_to(3));
      }
    }
    if (step == 3) {
      if (!s[kAwait]) {
        add(out, s, "request: DirectoryUpdate -> peers", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: DirectoryUpdateAcks complete", mig_.get(), 3, 4,
            step_to(4));
      }
    }
    if (step == 4 && s[kSrcAlive] && s[kSrc] == kFrozen) {
      add(out, s, "source: instance torn down", slice_.get(), kFrozen,
          kRetired, [](ModelState& n) { n[kSrc] = kRetired; });
    }

    // Abort cleanup (step 5). The thaw action covers the redirected-channel
    // repair: channels flip back and the parked suffix replays to the source.
    if (step == 5) {
      if (s[kSrc] == kFreezePending && s[kSrcAlive]) {
        add(out, s, "abort: thaw the source (redirected suffix replayed)",
            slice_.get(), kFreezePending, kActive,
            [](ModelState& n) { n[kSrc] = kActive; });
      }
      if (s[kSrc] == kFrozen && s[kSrcAlive]) {
        add(out, s, "abort: retire the frozen source (re-homed)", slice_.get(),
            kFrozen, kRetired, [](ModelState& n) { n[kSrc] = kRetired; });
      }
      if (s[kDst] == kReplica && s[kDstAlive]) {
        add(out, s, "abort: retire the replica", slice_.get(), kReplica,
            kRetired, [](ModelState& n) { n[kDst] = kRetired; });
      }
      if (s[kDst] == kActive && s[kDstAlive]) {
        add(out, s, "abort: activation raced the abort; converge", mig_.get(),
            5, 3, step_to(3));
      }
      const bool src_clean =
          s[kSrc] == kActive || s[kSrc] == kRetired || s[kSrc] == kLost;
      const bool dst_clean = s[kDst] == kRetired || s[kDst] == kNone ||
                             s[kDst] == kLost;
      if (src_clean && dst_clean) {
        add(out, s, "abort: cleanup complete; record erased", nullptr, 0, 0,
            [](ModelState& n) { n[kStep] = kResolved; });
      }
    }

    const bool no_active = s[kSrc] != kActive && s[kDst] != kActive;
    if (no_active && (step == 4 || step == kResolved) && s[kSrc] != kFrozen &&
        s[kSrc] != kFreezePending) {
      add(out, s, "manager: respawn lost slice from checkpoint", nullptr, 0, 0,
          [](ModelState& n) { n[kSrc] = kActive; });
    }

    if (s[kAwait] && !s[kDropped] && s[kDropBudget] > 0) {
      add(out, s, "net: frame dropped", nullptr, 0, 0, [](ModelState& n) {
        n[kDropped] = 1;
        --n[kDropBudget];
      });
    }
    if (s[kDropped] && (step == 3 || both)) {
      add(out, s, "net: rto retransmit", nullptr, 0, 0,
          [](ModelState& n) { n[kDropped] = 0; });
    }

    if (s[kCrashBudget] > 0) {
      if (s[kSrcAlive]) {
        const bool abort = step <= 2;
        add(out, s, "crash: source host dies", abort ? mig_.get() : nullptr,
            step, 5, [abort](ModelState& n) {
              n[kSrcAlive] = 0;
              if (n[kSrc] != kRetired) n[kSrc] = kLost;
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
              if (abort) n[kStep] = 5;
            });
      }
      if (s[kDstAlive]) {
        const bool react = !(fault == PlantedFault::kWedge && step == 2);
        const bool abort = react && step <= 2;
        add(out, s,
            react ? "crash: destination host dies"
                  : "crash: destination host dies (reaction dropped)",
            abort ? mig_.get() : nullptr, step, 5,
            [abort](ModelState& n) {
              n[kDstAlive] = 0;
              if (n[kDst] != kRetired && n[kDst] != kNone) n[kDst] = kLost;
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
              if (abort) n[kStep] = 5;
            });
      }
    }
  }

  bool quiescent(const ModelState& s) const override {
    if (s[kAwait] || s[kDropped]) return false;
    if (s[kStep] == 4) {
      const bool src_settled = s[kSrc] == kRetired || s[kSrc] == kLost;
      return (s[kDst] == kActive && src_settled) ||
             (s[kSrc] == kActive && s[kDst] == kLost);
    }
    if (s[kStep] == kResolved) {
      return s[kSrc] == kActive;
    }
    return false;
  }

  std::string invariant(const ModelState& s) const override {
    if (s[kSrc] == kActive && s[kDst] == kActive) {
      return "exactly-once: source and destination active concurrently "
             "while channels redirect (every parked publication delivered "
             "twice)";
    }
    return "";
  }

  std::string describe(const ModelState& s) const override {
    std::string step = s[kStep] == kResolved
                           ? "resolved"
                           : std::string{mig_->state_name(s[kStep])};
    return "stop-restart{step=" + step + " src=" + slot_name(s[kSrc]) +
           (s[kSrcAlive] ? "" : "(host down)") + " dst=" + slot_name(s[kDst]) +
           (s[kDstAlive] ? "" : "(host down)") +
           " awaiting=" + std::to_string(s[kAwait]) +
           " dropped=" + std::to_string(s[kDropped]) + "}";
  }

 private:
  std::shared_ptr<const StateMachineSpec> mig_;
  std::shared_ptr<const StateMachineSpec> slice_;
};

// ---- Incremental pre-copy migration ----------------------------------------
//
// The mirror stays on while bounded dirty-delta rounds ship state pages under
// live traffic; the final freeze only transfers the last delta. A round byte
// tracks the iteration (bounded at kRoundBound, matching the
// engine/precopy-rounds-bounded contract); each round's ack nondeterministic-
// ally reports a remaining dirty delta (another round) or a drained one
// (advance to the final transfer).
class PrecopyModel final : public ModelBase {
  enum : std::size_t {
    kStep = 0,  // precopy_spec index; 7 = abort record erased
    kSrc,
    kDst,
    kRound,  // completed pre-copy rounds
    kAwait,
    kDropped,
    kDropBudget,
    kCrashBudget,
    kSrcAlive,
    kDstAlive,
    kBytes,
  };
  static constexpr std::uint8_t kResolved = 7;
  static constexpr std::uint8_t kRoundBound = 2;

 public:
  explicit PrecopyModel(ModelOptions options)
      : ModelBase(std::move(options)),
        mig_(bind_spec(options_, precopy_spec())),
        slice_(bind_spec(options_, slice_lifecycle_spec())) {}

  std::string name() const override { return "migration-precopy"; }

  ModelState initial() const override {
    ModelState s(kBytes, 0);
    s[kStep] = 0;
    s[kSrc] = kActive;
    s[kDst] = kNone;
    s[kDropBudget] = 1;
    s[kCrashBudget] = 1;
    s[kSrcAlive] = 1;
    s[kDstAlive] = 1;
    return s;
  }

  void successors(const ModelState& s, std::vector<Successor>& out) const override {
    const std::uint8_t step = s[kStep];
    const bool both = s[kSrcAlive] && s[kDstAlive];
    const PlantedFault fault = options_.fault;

    // Planted wedge: reaction to the destination dying during the final
    // transfer dropped; the coordinator waits on an ack from a corpse.
    if (fault == PlantedFault::kWedge && step == 3 && !s[kDstAlive]) return;

    auto step_to = [](std::uint8_t to) {
      return [to](ModelState& n) {
        n[kStep] = to;
        n[kAwait] = 0;
      };
    };

    if (step == 0 && both) {
      if (!s[kAwait] && s[kDst] == kNone) {
        add(out, s, "request: CreateReplica -> dst", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: CreateReplicaAck (live upstreams)", mig_.get(), 0, 1,
            [step_to](ModelState& n) {
              n[kDst] = kReplica;
              step_to(1)(n);
            });
        add(out, s, "ack: CreateReplicaAck (no upstreams)", mig_.get(), 0, 2,
            [step_to](ModelState& n) {
              n[kDst] = kReplica;
              step_to(2)(n);
            });
      }
    }
    if (step == 1 && both) {
      if (!s[kAwait]) {
        add(out, s, "request: StartDuplication -> dst", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: StartDuplicationAck", mig_.get(), 1, 2, step_to(2));
      }
    }
    // Pre-copy rounds: the source stays active serving while page deltas
    // ship. The ack either leaves a dirty delta behind (another round, only
    // while the bound allows) or reports the delta drained.
    if (step == 2 && both) {
      if (!s[kAwait]) {
        add(out, s, "request: Precopy round -> src", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        if (s[kRound] + 1 < kRoundBound) {
          add(out, s, "ack: PrecopyAck (dirty delta remains)", mig_.get(), 2,
              2, [step_to](ModelState& n) {
                ++n[kRound];
                step_to(2)(n);
              });
        }
        add(out, s, "ack: PrecopyAck (delta drained / bound reached)",
            mig_.get(), 2, 3, [step_to](ModelState& n) {
              ++n[kRound];
              step_to(3)(n);
            });
      }
    }
    // Final stop-and-copy: freeze, ship only the last dirty delta. The
    // kInvariant fault ships it without freezing the source first.
    if (step == 3 && s[kSrcAlive] && fault != PlantedFault::kInvariant &&
        s[kSrc] == kActive) {
      add(out, s, "source: freeze requested", slice_.get(), kActive,
          kFreezePending,
          [](ModelState& n) { n[kSrc] = kFreezePending; });
    }
    if (step == 3 && s[kSrcAlive] && s[kSrc] == kFreezePending) {
      add(out, s, "source: caught up to freeze point", slice_.get(),
          kFreezePending, kFrozen, [](ModelState& n) { n[kSrc] = kFrozen; });
    }
    if (step == 3 && both) {
      const bool frozen = s[kSrc] == kFrozen;
      const bool faulty_ship =
          fault == PlantedFault::kInvariant && s[kSrc] == kActive;
      if (!s[kAwait] && (frozen || faulty_ship)) {
        add(out, s, "request: ship final delta -> dst", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped] && s[kDst] == kReplica &&
          (frozen || faulty_ship)) {
        add(out, s, "dst: patched final delta; replica activates",
            slice_.get(), kReplica, kActive,
            [](ModelState& n) { n[kDst] = kActive; });
      }
      if (s[kAwait] && !s[kDropped] && s[kDst] == kActive) {
        add(out, s, "ack: ActivatedAck", mig_.get(), 3, 4, step_to(4));
      }
    }
    if (step == 4) {
      if (!s[kAwait]) {
        add(out, s, "request: DirectoryUpdate -> peers", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: DirectoryUpdateAcks complete", mig_.get(), 4, 5,
            step_to(5));
      }
    }
    if (step == 5 && s[kSrcAlive] && s[kSrc] == kFrozen) {
      add(out, s, "source: instance torn down", slice_.get(), kFrozen,
          kRetired, [](ModelState& n) { n[kSrc] = kRetired; });
    }

    // Abort cleanup (step 6).
    if (step == 6) {
      if (s[kSrc] == kFreezePending && s[kSrcAlive]) {
        add(out, s, "abort: thaw the source", slice_.get(), kFreezePending,
            kActive, [](ModelState& n) { n[kSrc] = kActive; });
      }
      if (s[kSrc] == kFrozen && s[kSrcAlive]) {
        add(out, s, "abort: retire the frozen source (re-homed)", slice_.get(),
            kFrozen, kRetired, [](ModelState& n) { n[kSrc] = kRetired; });
      }
      if (s[kDst] == kReplica && s[kDstAlive]) {
        add(out, s, "abort: retire the replica (pre-copied pages discarded)",
            slice_.get(), kReplica, kRetired,
            [](ModelState& n) { n[kDst] = kRetired; });
      }
      if (s[kDst] == kActive && s[kDstAlive]) {
        add(out, s, "abort: activation raced the abort; converge", mig_.get(),
            6, 4, step_to(4));
      }
      const bool src_clean =
          s[kSrc] == kActive || s[kSrc] == kRetired || s[kSrc] == kLost;
      const bool dst_clean = s[kDst] == kRetired || s[kDst] == kNone ||
                             s[kDst] == kLost;
      if (src_clean && dst_clean) {
        add(out, s, "abort: cleanup complete; record erased", nullptr, 0, 0,
            [](ModelState& n) { n[kStep] = kResolved; });
      }
    }

    const bool no_active = s[kSrc] != kActive && s[kDst] != kActive;
    if (no_active && (step == 5 || step == kResolved) && s[kSrc] != kFrozen &&
        s[kSrc] != kFreezePending) {
      add(out, s, "manager: respawn lost slice from checkpoint", nullptr, 0, 0,
          [](ModelState& n) { n[kSrc] = kActive; });
    }

    if (s[kAwait] && !s[kDropped] && s[kDropBudget] > 0) {
      add(out, s, "net: frame dropped", nullptr, 0, 0, [](ModelState& n) {
        n[kDropped] = 1;
        --n[kDropBudget];
      });
    }
    if (s[kDropped] && (step == 4 || both)) {
      add(out, s, "net: rto retransmit", nullptr, 0, 0,
          [](ModelState& n) { n[kDropped] = 0; });
    }

    if (s[kCrashBudget] > 0) {
      if (s[kSrcAlive]) {
        const bool abort = step <= 3;
        add(out, s, "crash: source host dies", abort ? mig_.get() : nullptr,
            step, 6, [abort](ModelState& n) {
              n[kSrcAlive] = 0;
              if (n[kSrc] != kRetired) n[kSrc] = kLost;
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
              if (abort) n[kStep] = 6;
            });
      }
      if (s[kDstAlive]) {
        const bool react = !(fault == PlantedFault::kWedge && step == 3);
        const bool abort = react && step <= 3;
        add(out, s,
            react ? "crash: destination host dies"
                  : "crash: destination host dies (reaction dropped)",
            abort ? mig_.get() : nullptr, step, 6,
            [abort](ModelState& n) {
              n[kDstAlive] = 0;
              if (n[kDst] != kRetired && n[kDst] != kNone) n[kDst] = kLost;
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
              if (abort) n[kStep] = 6;
            });
      }
    }
  }

  bool quiescent(const ModelState& s) const override {
    if (s[kAwait] || s[kDropped]) return false;
    if (s[kStep] == 5) {
      const bool src_settled = s[kSrc] == kRetired || s[kSrc] == kLost;
      return (s[kDst] == kActive && src_settled) ||
             (s[kSrc] == kActive && s[kDst] == kLost);
    }
    if (s[kStep] == kResolved) {
      return s[kSrc] == kActive;
    }
    return false;
  }

  std::string invariant(const ModelState& s) const override {
    if (s[kSrc] == kActive && s[kDst] == kActive) {
      return "exactly-once: source and destination active concurrently "
             "(duplicate delivery of every publication on the slice)";
    }
    if (s[kRound] > kRoundBound) {
      return "precopy-rounds-bounded: round counter exceeded the bound";
    }
    return "";
  }

  std::string describe(const ModelState& s) const override {
    std::string step = s[kStep] == kResolved
                           ? "resolved"
                           : std::string{mig_->state_name(s[kStep])};
    return "precopy{step=" + step + " round=" + std::to_string(s[kRound]) +
           " src=" + slot_name(s[kSrc]) +
           (s[kSrcAlive] ? "" : "(host down)") + " dst=" + slot_name(s[kDst]) +
           (s[kDstAlive] ? "" : "(host down)") +
           " awaiting=" + std::to_string(s[kAwait]) +
           " dropped=" + std::to_string(s[kDropped]) + "}";
  }

 private:
  std::shared_ptr<const StateMachineSpec> mig_;
  std::shared_ptr<const StateMachineSpec> slice_;
};

// ---- Split ------------------------------------------------------------------
//
// Parent host keeps half the key range, the child slice lands on another
// host. Post-flip the split only rolls forward: a dead participant's role is
// re-homed onto a replacement and the pending leg re-driven.
class SplitModel final : public ModelBase {
  enum : std::size_t {
    kStep = 0,  // split_spec index
    kParent,
    kChild,
    kAwait,
    kDropped,
    kDropBudget,
    kCrashBudget,
    kParentAlive,
    kChildAlive,
    kBytes,
  };

 public:
  explicit SplitModel(ModelOptions options)
      : ModelBase(std::move(options)),
        split_(bind_spec(options_, split_spec())),
        slice_(bind_spec(options_, slice_lifecycle_spec())) {}

  std::string name() const override { return "split"; }

  ModelState initial() const override {
    ModelState s(kBytes, 0);
    s[kParent] = kActive;
    s[kChild] = kNone;
    s[kDropBudget] = 1;
    s[kCrashBudget] = 1;
    s[kParentAlive] = 1;
    s[kChildAlive] = 1;
    return s;
  }

  void successors(const ModelState& s, std::vector<Successor>& out) const override {
    const std::uint8_t step = s[kStep];
    const bool both = s[kParentAlive] && s[kChildAlive];

    if (step == 0 && both) {
      if (!s[kAwait] && s[kChild] == kNone) {
        add(out, s, "request: CreateChild -> child host", nullptr, 0, 0,
            [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped]) {
        add(out, s, "ack: child replica registered", split_.get(), 0, 1,
            [](ModelState& n) {
              n[kChild] = kReplica;
              n[kAwait] = 0;
              n[kStep] = 1;
            });
      }
    }
    if (step == 1) {
      add(out, s, "coordinator: atomic routing flip", split_.get(), 1, 2,
          [](ModelState& n) { n[kStep] = 2; });
    }
    if (step == 2 && both) {
      if (!s[kAwait]) {
        add(out, s, "request: parent drains; SplitStateMessage -> child",
            nullptr, 0, 0, [](ModelState& n) { n[kAwait] = 1; });
      }
      if (s[kAwait] && !s[kDropped] && s[kChild] == kReplica) {
        add(out, s, "child: restored its half; activates", slice_.get(),
            kReplica, kActive, [](ModelState& n) { n[kChild] = kActive; });
      }
      if (s[kAwait] && !s[kDropped] && s[kChild] == kActive) {
        add(out, s, "ack: split state applied", split_.get(), 2, 3,
            [](ModelState& n) {
              n[kAwait] = 0;
              n[kStep] = 3;
            });
      }
    }

    // Roll-forward recovery: a dead participant's role is adopted by a
    // replacement host (restored from checkpoint) and the leg re-driven.
    if (s[kParent] == kLost && step <= 2) {
      add(out, s, "recovery: parent re-homed; split re-driven", nullptr, 0, 0,
          [](ModelState& n) {
            n[kParent] = kActive;
            n[kParentAlive] = 1;
          });
    }
    if (s[kChild] == kLost && (step == 1 || step == 2)) {
      add(out, s, "recovery: child re-homed as a fresh replica", nullptr, 0, 0,
          [](ModelState& n) {
            n[kChild] = kReplica;
            n[kChildAlive] = 1;
          });
    }

    if (s[kAwait] && !s[kDropped] && s[kDropBudget] > 0) {
      add(out, s, "net: frame dropped", nullptr, 0, 0, [](ModelState& n) {
        n[kDropped] = 1;
        --n[kDropBudget];
      });
    }
    if (s[kDropped] && both) {
      add(out, s, "net: rto retransmit", nullptr, 0, 0,
          [](ModelState& n) { n[kDropped] = 0; });
    }

    if (s[kCrashBudget] > 0) {
      if (s[kParentAlive]) {
        add(out, s, "crash: parent host dies", nullptr, 0, 0,
            [](ModelState& n) {
              n[kParentAlive] = 0;
              if (n[kParent] != kRetired) n[kParent] = kLost;
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
            });
      }
      if (s[kChildAlive]) {
        // Pre-cut-over a child death aborts (nothing routed yet); afterwards
        // the split rolls forward via re-homing.
        const bool abort = step == 0;
        add(out, s, "crash: child host dies", abort ? split_.get() : nullptr,
            0, 4, [abort](ModelState& n) {
              n[kChildAlive] = 0;
              if (n[kChild] != kRetired && n[kChild] != kNone) {
                n[kChild] = kLost;
              }
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
              if (abort) n[kStep] = 4;
            });
      }
    }
  }

  bool quiescent(const ModelState& s) const override {
    if (s[kAwait] || s[kDropped]) return false;
    if (s[kStep] == 3) {
      return (s[kParent] == kActive || s[kParent] == kLost) &&
             (s[kChild] == kActive || s[kChild] == kLost);
    }
    return s[kStep] == 4 && s[kParent] == kActive;
  }

  std::string invariant(const ModelState& s) const override {
    if (s[kStep] >= 2 && s[kStep] != 4 && s[kChild] == kNone) {
      return "coverage: routing flipped to a child that was never created";
    }
    if (s[kStep] == 4 && s[kChild] == kActive) {
      return "coverage: aborted split left an active child "
             "(its key half is routed to the parent)";
    }
    return "";
  }

  std::string describe(const ModelState& s) const override {
    return "split{step=" + std::string{split_->state_name(s[kStep])} +
           " parent=" + slot_name(s[kParent]) +
           (s[kParentAlive] ? "" : "(host down)") +
           " child=" + slot_name(s[kChild]) +
           (s[kChildAlive] ? "" : "(host down)") +
           " awaiting=" + std::to_string(s[kAwait]) +
           " dropped=" + std::to_string(s[kDropped]) + "}";
  }

 private:
  std::shared_ptr<const StateMachineSpec> split_;
  std::shared_ptr<const StateMachineSpec> slice_;
};

// ---- Merge ------------------------------------------------------------------
//
// Survivor absorbs the retiree's key range. Merges only roll forward: once
// routing flipped, a dead participant re-drives the pending leg via recovery
// (a lost retiree's stash is recovered from its checkpoint, abstracted here
// as a skip).
class MergeModel final : public ModelBase {
  enum : std::size_t {
    kStep = 0,  // merge_spec index
    kSurvivor,
    kRetiree,
    kAwait,
    kDropped,
    kDropBudget,
    kCrashBudget,
    kSurvivorAlive,
    kRetireeAlive,
    kBytes,
  };

 public:
  explicit MergeModel(ModelOptions options)
      : ModelBase(std::move(options)),
        merge_(bind_spec(options_, merge_spec())),
        slice_(bind_spec(options_, slice_lifecycle_spec())) {}

  std::string name() const override { return "merge"; }

  ModelState initial() const override {
    ModelState s(kBytes, 0);
    s[kSurvivor] = kActive;
    s[kRetiree] = kActive;
    s[kDropBudget] = 1;
    s[kCrashBudget] = 1;
    s[kSurvivorAlive] = 1;
    s[kRetireeAlive] = 1;
    return s;
  }

  void successors(const ModelState& s, std::vector<Successor>& out) const override {
    const std::uint8_t step = s[kStep];
    const bool both = s[kSurvivorAlive] && s[kRetireeAlive];

    if (step == 0) {
      add(out, s, "coordinator: routing flip to the survivor", merge_.get(), 0,
          1, [](ModelState& n) { n[kStep] = 1; });
    }
    if (step == 1) {
      if (s[kRetiree] == kActive && s[kRetireeAlive]) {
        add(out, s, "retiree: freeze requested", slice_.get(), kActive,
            kFreezePending,
            [](ModelState& n) { n[kRetiree] = kFreezePending; });
      }
      if (s[kRetiree] == kFreezePending && s[kRetireeAlive]) {
        add(out, s, "retiree: drained to the captured cut", slice_.get(),
            kFreezePending, kFrozen,
            [](ModelState& n) { n[kRetiree] = kFrozen; });
      }
      if (s[kRetiree] == kFrozen) {
        add(out, s, "coordinator: final vector captured", merge_.get(), 1, 2,
            [](ModelState& n) { n[kStep] = 2; });
      }
      if (s[kRetiree] == kLost) {
        add(out, s, "recovery: retiree lost; vector taken from checkpoint",
            merge_.get(), 1, 2, [](ModelState& n) { n[kStep] = 2; });
      }
    }
    if (step == 2) {
      if (both && s[kRetiree] == kFrozen) {
        if (!s[kAwait]) {
          add(out, s, "request: ship retiree stash -> survivor", nullptr, 0, 0,
              [](ModelState& n) { n[kAwait] = 1; });
        }
        if (s[kAwait] && !s[kDropped]) {
          add(out, s, "ack: absorption applied by the survivor", merge_.get(),
              2, 3, [](ModelState& n) {
                n[kAwait] = 0;
                n[kStep] = 3;
              });
        }
      }
      if (s[kRetiree] == kLost) {
        add(out, s, "recovery: absorb from checkpoint stash", merge_.get(), 2,
            3, [](ModelState& n) {
              n[kAwait] = 0;
              n[kStep] = 3;
            });
      }
    }
    if (step == 3 && s[kRetiree] == kFrozen && s[kRetireeAlive]) {
      add(out, s, "retiree: drained instance torn down", slice_.get(), kFrozen,
          kRetired, [](ModelState& n) { n[kRetiree] = kRetired; });
    }

    // Survivor deaths always re-drive: the replacement restores from its
    // checkpoint and the coordinator repeats the pending leg.
    if (s[kSurvivor] == kLost) {
      add(out, s, "recovery: survivor re-homed; merge re-driven", nullptr, 0,
          0, [](ModelState& n) {
            n[kSurvivor] = kActive;
            n[kSurvivorAlive] = 1;
          });
    }

    if (s[kAwait] && !s[kDropped] && s[kDropBudget] > 0) {
      add(out, s, "net: frame dropped", nullptr, 0, 0, [](ModelState& n) {
        n[kDropped] = 1;
        --n[kDropBudget];
      });
    }
    if (s[kDropped] && both) {
      add(out, s, "net: rto retransmit", nullptr, 0, 0,
          [](ModelState& n) { n[kDropped] = 0; });
    }

    if (s[kCrashBudget] > 0) {
      if (s[kSurvivorAlive]) {
        add(out, s, "crash: survivor host dies", nullptr, 0, 0,
            [](ModelState& n) {
              n[kSurvivorAlive] = 0;
              if (n[kSurvivor] != kRetired) n[kSurvivor] = kLost;
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
            });
      }
      if (s[kRetireeAlive]) {
        add(out, s, "crash: retiree host dies", nullptr, 0, 0,
            [](ModelState& n) {
              n[kRetireeAlive] = 0;
              if (n[kRetiree] != kRetired) n[kRetiree] = kLost;
              --n[kCrashBudget];
              n[kAwait] = 0;
              n[kDropped] = 0;
            });
      }
    }
  }

  bool quiescent(const ModelState& s) const override {
    if (s[kAwait] || s[kDropped]) return false;
    return s[kStep] == 3 &&
           (s[kSurvivor] == kActive || s[kSurvivor] == kLost) &&
           (s[kRetiree] == kRetired || s[kRetiree] == kLost);
  }

  std::string invariant(const ModelState& s) const override {
    if (s[kStep] >= 2 &&
        (s[kRetiree] == kActive || s[kRetiree] == kFreezePending)) {
      return "exactly-once: retiree still accepting publications after its "
             "final vector was captured";
    }
    return "";
  }

  std::string describe(const ModelState& s) const override {
    return "merge{step=" + std::string{merge_->state_name(s[kStep])} +
           " survivor=" + slot_name(s[kSurvivor]) +
           (s[kSurvivorAlive] ? "" : "(host down)") +
           " retiree=" + slot_name(s[kRetiree]) +
           (s[kRetireeAlive] ? "" : "(host down)") +
           " awaiting=" + std::to_string(s[kAwait]) +
           " dropped=" + std::to_string(s[kDropped]) + "}";
  }

 private:
  std::shared_ptr<const StateMachineSpec> merge_;
  std::shared_ptr<const StateMachineSpec> slice_;
};

// ---- Reliable channel -------------------------------------------------------
//
// One sender, one receiver, two messages (seq 1 and 2), frame-level
// nondeterminism: drop, duplicate, reorder (frames are independent tokens),
// retransmission with a retry budget of one, give-up escalation, and the
// receiver's reorder buffer with in-order delivery.
class ReliableModel final : public ModelBase {
  enum : std::size_t {
    kTx1 = 0,  // reliable_tx_spec index per message
    kTx2,
    kRx1,  // reliable_rx_spec index per seq
    kRx2,
    kFrames1,  // data frames of seq 1 in flight (0..3)
    kFrames2,
    kAck1,  // cumulative ack in flight (latest-wins, so a flag)
    kAck2,
    kRetries1,
    kRetries2,
    kDropBudget,
    kDupBudget,
    kBytes,
  };
  // tx indices
  static constexpr std::uint8_t kFresh = 0;
  static constexpr std::uint8_t kInFlight = 1;
  static constexpr std::uint8_t kAcked = 2;
  static constexpr std::uint8_t kGivenUp = 3;
  // rx indices
  static constexpr std::uint8_t kUnseen = 0;
  static constexpr std::uint8_t kBuffered = 1;
  static constexpr std::uint8_t kDelivered = 2;
  static constexpr std::uint8_t kForgotten = 3;

 public:
  explicit ReliableModel(ModelOptions options)
      : ModelBase(std::move(options)),
        tx_(bind_spec(options_, reliable_tx_spec())),
        rx_(bind_spec(options_, reliable_rx_spec())) {}

  std::string name() const override { return "reliable"; }

  ModelState initial() const override {
    ModelState s(kBytes, 0);
    s[kDropBudget] = 1;
    s[kDupBudget] = 1;
    return s;
  }

  void successors(const ModelState& s, std::vector<Successor>& out) const override {
    for (int i = 0; i < 2; ++i) {
      const std::size_t tx = kTx1 + i;
      const std::size_t rx = kRx1 + i;
      const std::size_t fr = kFrames1 + i;
      const std::size_t ack = kAck1 + i;
      const std::size_t rt = kRetries1 + i;
      const std::string seq = "seq " + std::to_string(i + 1);

      if (s[tx] == kFresh) {
        add(out, s, "send " + seq, tx_.get(), 0, 1, [tx, fr](ModelState& n) {
          n[tx] = kInFlight;
          ++n[fr];
        });
      }
      if (s[tx] == kInFlight && s[rt] < 1) {
        add(out, s, "rto retransmit " + seq, tx_.get(), 1, 1,
            [fr, rt](ModelState& n) {
              ++n[rt];
              if (n[fr] < 3) ++n[fr];
            });
      }
      if (s[fr] > 0 && s[kDropBudget] > 0) {
        add(out, s, "net: drop a data frame of " + seq, nullptr, 0, 0,
            [fr](ModelState& n) {
              --n[fr];
              --n[kDropBudget];
            });
      }
      if (s[fr] > 0 && s[kDupBudget] > 0 && s[fr] < 3) {
        add(out, s, "net: duplicate a data frame of " + seq, nullptr, 0, 0,
            [fr](ModelState& n) {
              ++n[fr];
              --n[kDupBudget];
            });
      }
      if (s[fr] > 0) {
        // Receiving a frame always (re-)sends the cumulative ack; the rx
        // machine admits an unseen seq and drops duplicates on the floor.
        const std::uint8_t from = s[rx];
        const std::uint8_t to = s[rx] == kUnseen ? kBuffered : s[rx];
        if (s[rx] != kForgotten) {
          add(out, s, "recv a data frame of " + seq, rx_.get(), from, to,
              [rx, fr, ack, to](ModelState& n) {
                --n[fr];
                n[rx] = to;
                n[ack] = 1;
              });
        } else {
          add(out, s, "recv a data frame of " + seq + " (peer forgotten)",
              nullptr, 0, 0, [fr](ModelState& n) { --n[fr]; });
        }
      }
      if (s[rx] == kBuffered && (i == 0 || s[kRx1] == kDelivered)) {
        add(out, s, "deliver " + seq + " to the app", rx_.get(), 1, 2,
            [rx](ModelState& n) { n[rx] = kDelivered; });
      }
      if (s[ack] > 0) {
        const bool pending = s[tx] == kInFlight;
        add(out, s,
            pending ? "recv ack for " + seq
                    : "recv stale ack for " + seq + " (pending gone)",
            pending ? tx_.get() : nullptr, 1, 2, [tx, ack, pending](ModelState& n) {
              n[ack] = 0;
              if (pending) n[tx] = kAcked;
            });
        if (s[kDropBudget] > 0) {
          add(out, s, "net: drop the ack for " + seq, nullptr, 0, 0,
              [ack](ModelState& n) {
                --n[ack];
                --n[kDropBudget];
              });
        }
      }
      if (s[tx] == kInFlight && s[rt] >= 1) {
        add(out, s, "give up on " + seq + " (retry budget spent)", tx_.get(),
            1, 3, [tx](ModelState& n) { n[tx] = kGivenUp; });
      }
      // Give-up escalates to the peer-failure handler, which unbinds the
      // peer; the receiver's reorder buffer for it is discarded.
      if (s[rx] == kBuffered && (s[kTx1] == kGivenUp || s[kTx2] == kGivenUp)) {
        add(out, s, "forget peer: discard buffered " + seq, rx_.get(), 1, 3,
            [rx](ModelState& n) { n[rx] = kForgotten; });
      }
    }
  }

  bool quiescent(const ModelState& s) const override {
    if (s[kFrames1] || s[kFrames2] || s[kAck1] || s[kAck2]) return false;
    for (int i = 0; i < 2; ++i) {
      if (s[kTx1 + i] != kAcked && s[kTx1 + i] != kGivenUp) return false;
      if (s[kRx1 + i] == kBuffered) return false;
    }
    return true;
  }

  std::string invariant(const ModelState& s) const override {
    if (s[kRx2] == kDelivered && s[kRx1] != kDelivered) {
      return "fifo: seq 2 delivered before seq 1";
    }
    if (s[kRx1] != kUnseen && s[kTx1] == kFresh) {
      return "causality: seq 1 observed before it was sent";
    }
    return "";
  }

  std::string describe(const ModelState& s) const override {
    auto msg = [&](int i) {
      return std::string{tx_->state_name(s[kTx1 + i])} + "/" +
             std::string{rx_->state_name(s[kRx1 + i])} + " frames=" +
             std::to_string(s[kFrames1 + i]) + " ack=" +
             std::to_string(s[kAck1 + i]);
    };
    return "reliable{seq1: " + msg(0) + "; seq2: " + msg(1) + "}";
  }

 private:
  std::shared_ptr<const StateMachineSpec> tx_;
  std::shared_ptr<const StateMachineSpec> rx_;
};

}  // namespace

std::unique_ptr<Model> make_migration_model(ModelOptions options) {
  return std::make_unique<MigrationModel>(std::move(options));
}
std::unique_ptr<Model> make_stop_restart_model(ModelOptions options) {
  return std::make_unique<StopRestartModel>(std::move(options));
}
std::unique_ptr<Model> make_precopy_model(ModelOptions options) {
  return std::make_unique<PrecopyModel>(std::move(options));
}
std::unique_ptr<Model> make_split_model(ModelOptions options) {
  return std::make_unique<SplitModel>(std::move(options));
}
std::unique_ptr<Model> make_merge_model(ModelOptions options) {
  return std::make_unique<MergeModel>(std::move(options));
}
std::unique_ptr<Model> make_reliable_model(ModelOptions options) {
  return std::make_unique<ReliableModel>(std::move(options));
}

const std::vector<std::string>& model_names() {
  static const std::vector<std::string> names{
      "migration", "migration-stop-restart", "migration-precopy", "split",
      "merge",     "reliable"};
  return names;
}

std::unique_ptr<Model> make_model(std::string_view name,
                                  ModelOptions options) {
  if (name == "migration") return make_migration_model(std::move(options));
  if (name == "migration-stop-restart") {
    return make_stop_restart_model(std::move(options));
  }
  if (name == "migration-precopy") return make_precopy_model(std::move(options));
  if (name == "split") return make_split_model(std::move(options));
  if (name == "merge") return make_merge_model(std::move(options));
  if (name == "reliable") return make_reliable_model(std::move(options));
  return nullptr;
}

}  // namespace esh::analysis
