// Bounded explicit-state model checker for the elasticity protocols.
//
// The models in this file are small-scope abstractions of the coordinator
// logic in src/engine/engine.cpp (migration, split, merge) and the
// seq/ack handshake in src/net/reliable.cpp: 2–3 hosts, one protocol
// instance, and nondeterministic actions for protocol steps, host crashes,
// message drops and duplicates. The explorer enumerates the full reachable
// state space (deduplicated by state hashing) and checks three properties:
//
//   (a) no wedge: every reachable state can still reach a quiescent state
//       (the class of search that finds seed-17/1-style co-recovery bugs
//       by construction rather than by seeded sampling);
//   (b) spec conformance: every protocol-step action claims the state
//       machine edge it takes, validated against the declarative tables in
//       analysis/protocol_spec.hpp — an edge outside the tables is a
//       counterexample;
//   (c) abstract safety invariants (exactly-once / coverage completeness),
//       checked on every reachable state.
//
// Counterexamples print as replayable step lists (see
// CheckResult::format_trace and docs/ANALYSIS.md for how to read one).
//
// Abstraction boundary: coordinator control logic is modeled faithfully
// (per-branch translation of handle_host_failure and the on_control ack
// handlers); data-plane event flow, timers and checkpoint contents are
// abstracted away; the manager/IaaS layer is abstracted as "recovery of a
// lost slice is always eventually possible"; control messages ride per-peer
// FIFO queues (the reliable channel's delivery order), and a "dropped"
// message models a frame loss that the channel will retransmit — it only
// becomes a permanent loss when an endpoint dies first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/protocol_spec.hpp"

namespace esh::analysis {

// Packed model state: each model encodes its entire configuration into a
// small byte vector; byte equality dedups the explored graph.
using ModelState = std::vector<std::uint8_t>;

// One enabled action out of a state. When the action advances one of the
// spec'd machines it carries the claimed edge for conformance checking.
struct ModelAction {
  std::string label;
  const StateMachineSpec* machine = nullptr;  // nullptr: no machine edge
  std::uint8_t from = 0;
  std::uint8_t to = 0;
};

struct Successor {
  ModelAction action;
  ModelState state;
};

class Model {
 public:
  virtual ~Model() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual ModelState initial() const = 0;
  virtual void successors(const ModelState& state,
                          std::vector<Successor>& out) const = 0;
  // Protocol resolved with nothing outstanding; the wedge check requires
  // every reachable state to have a path to a quiescent one.
  [[nodiscard]] virtual bool quiescent(const ModelState& state) const = 0;
  // Abstract safety invariant; empty string = holds, else violation text.
  [[nodiscard]] virtual std::string invariant(const ModelState& state) const = 0;
  [[nodiscard]] virtual std::string describe(const ModelState& state) const = 0;
};

struct CheckOptions {
  // Distinct-state budget; exceeding it fails the run (the exploration was
  // not exhaustive, so none of the three properties were proven).
  std::size_t max_states = 1 << 20;
};

struct CheckResult {
  bool ok = false;
  bool exhausted_budget = false;
  std::size_t states = 0;       // distinct states reached
  std::size_t transitions = 0;  // edges explored
  std::size_t quiescent_states = 0;
  // "" when ok; otherwise one of "wedge", "conformance", "invariant",
  // "budget", prefixing a human-readable description in `failure`.
  std::string failure_kind;
  std::string failure;
  // Replayable counterexample: action labels from the initial state to the
  // failing state (for a wedge, to the wedged state).
  std::vector<std::string> trace;
  std::string failing_state;  // describe() of the trace's end state
  [[nodiscard]] std::string format_trace() const;
};

[[nodiscard]] CheckResult check_model(const Model& model,
                                      const CheckOptions& options = {});

// ---- Models ----------------------------------------------------------------

// Faults a model can plant so tests prove the checker detects each failure
// class (the stock models must come up clean).
enum class PlantedFault {
  kNone,
  // Migration model: drop the coordinator's reaction to a destination-host
  // crash during the transfer step — the run wedges awaiting an ack from a
  // corpse, exactly the seed-17/1 bug shape.
  kWedge,
  // Migration model: the source ships state without freezing first, so
  // source and replica run active concurrently — the exactly-once abstract
  // invariant must trip.
  kInvariant,
};

struct ModelOptions {
  PlantedFault fault = PlantedFault::kNone;
  // Conformance mutation: substitute spec the model's actions are validated
  // against (e.g. a real table with one edge deleted via without_edge); the
  // model still behaves as on main, so the first use of the deleted edge is
  // a spec-conformance counterexample.
  std::shared_ptr<const StateMachineSpec> spec_override;
};

[[nodiscard]] std::unique_ptr<Model> make_migration_model(ModelOptions = {});
// The two alternative migration strategies (engine/migration_strategy.hpp):
// redirect-park stop-and-restart and bounded dirty-delta pre-copy. Both
// support the same planted faults as the buffered-replay migration model.
[[nodiscard]] std::unique_ptr<Model> make_stop_restart_model(ModelOptions = {});
[[nodiscard]] std::unique_ptr<Model> make_precopy_model(ModelOptions = {});
[[nodiscard]] std::unique_ptr<Model> make_split_model(ModelOptions = {});
[[nodiscard]] std::unique_ptr<Model> make_merge_model(ModelOptions = {});
[[nodiscard]] std::unique_ptr<Model> make_reliable_model(ModelOptions = {});

// Stock model registry for tools/modelcheck and tests.
[[nodiscard]] const std::vector<std::string>& model_names();
// nullptr for an unknown name.
[[nodiscard]] std::unique_ptr<Model> make_model(std::string_view name,
                                                ModelOptions = {});

}  // namespace esh::analysis
