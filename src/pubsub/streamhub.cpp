#include "pubsub/streamhub.hpp"

#include <stdexcept>

namespace esh::pubsub {

std::vector<HostId> spread(const std::vector<HostId>& hosts,
                           std::size_t slices) {
  if (hosts.empty()) {
    throw std::invalid_argument{"spread: no hosts"};
  }
  std::vector<HostId> out;
  out.reserve(slices);
  for (std::size_t i = 0; i < slices; ++i) {
    out.push_back(hosts[i % hosts.size()]);
  }
  return out;
}

StreamHub::StreamHub(engine::Engine& engine, StreamHubParams params)
    : engine_(engine),
      params_(std::move(params)),
      collector_(std::make_shared<DelayCollector>()) {
  if (params_.schemes.empty()) {
    if (!params_.matcher_factory) {
      throw std::invalid_argument{
          "StreamHub: matcher_factory (or schemes) required"};
    }
    // Single-scheme deployment: one M operator serving both payload kinds.
    MatcherSchemeSpec spec;
    spec.op_name = params_.names.m;
    spec.slices = params_.m_slices;
    spec.factory = params_.matcher_factory;
    schemes_.push_back(std::move(spec));
  } else {
    schemes_ = params_.schemes;
    for (const auto& spec : schemes_) {
      if (!spec.factory || spec.slices == 0) {
        throw std::invalid_argument{
            "StreamHub: every scheme needs a factory and slices"};
      }
    }
  }
}

void StreamHub::deploy(const HostAssignment& assignment) {
  if (deployed_) {
    throw std::logic_error{"StreamHub::deploy: already deployed"};
  }
  const OperatorNames& names = params_.names;
  const bool single_scheme = params_.schemes.empty();

  // AP's routing table: one target per scheme; a single scheme accepts
  // both payload kinds.
  std::vector<MatchingTarget> targets;
  for (const auto& spec : schemes_) {
    targets.push_back(MatchingTarget{spec.op_name, spec.slices,
                                     spec.encrypted});
    if (single_scheme) {
      targets.push_back(MatchingTarget{spec.op_name, spec.slices,
                                       !spec.encrypted});
    }
  }

  engine::Topology topology;
  topology.operators.push_back(engine::OperatorSpec{
      names.source, params_.source_slices,
      [names = names, cost = params_.cost](std::size_t) {
        return std::make_unique<SourceHandler>(names, cost);
      }});
  topology.operators.push_back(engine::OperatorSpec{
      names.ap, params_.ap_slices,
      [targets, cost = params_.cost,
       pool = engine_.worker_pool()](std::size_t) {
        return std::make_unique<ApHandler>(targets, cost, pool);
      }});
  for (const auto& spec : schemes_) {
    topology.operators.push_back(engine::OperatorSpec{
        spec.op_name, spec.slices,
        [names = names, op = spec.op_name, factory = spec.factory,
         cost = params_.cost, pool = engine_.worker_pool()](std::size_t index) {
          return std::make_unique<MHandler>(
              names, op, static_cast<std::uint32_t>(index), factory(index),
              cost, pool);
        }});
  }
  topology.operators.push_back(engine::OperatorSpec{
      names.ep, params_.ep_slices,
      [names = names, m = schemes_.front().slices, cost = params_.cost,
       pool = engine_.worker_pool()](std::size_t) {
        return std::make_unique<EpHandler>(names, m, cost, pool);
      }});
  topology.operators.push_back(engine::OperatorSpec{
      names.sink, params_.sink_slices,
      [collector = collector_](std::size_t) {
        return std::make_unique<SinkHandler>(collector);
      }});
  topology.edges.push_back({names.source, names.ap});
  for (const auto& spec : schemes_) {
    topology.edges.push_back({names.ap, spec.op_name});
    topology.edges.push_back({spec.op_name, names.ep});
  }
  topology.edges.push_back({names.ep, names.sink});

  std::unordered_map<std::string, std::vector<HostId>> placement;
  for (const auto& op : topology.operators) {
    auto it = assignment.find(op.name);
    if (it == assignment.end()) {
      // Scheme operators may share the generic "M" assignment.
      it = assignment.find(names.m);
      if (it == assignment.end()) {
        throw std::invalid_argument{"deploy: missing host assignment for " +
                                    op.name};
      }
    }
    placement[op.name] = spread(it->second, op.slices);
  }
  engine_.deploy(topology, placement);
  deployed_ = true;
}

void StreamHub::subscribe(filter::AnySubscription subscription) {
  const auto key = filter::subscription_id(subscription).value();
  const std::size_t source = key % params_.source_slices;
  engine_.inject(params_.names.source, source,
                 std::make_shared<SubscriptionPayload>(std::move(subscription)));
}

void StreamHub::unsubscribe(SubscriptionId id, bool encrypted) {
  if (params_.schemes.empty()) {
    // Single-scheme deployments accept both kinds on the same operator;
    // match what AP's routing table expects.
    encrypted = schemes_.front().encrypted;
  }
  const std::size_t source = id.value() % params_.source_slices;
  engine_.inject(params_.names.source, source,
                 std::make_shared<UnsubscriptionPayload>(id, encrypted));
}

void StreamHub::publish(filter::AnyPublication publication) {
  const auto key = filter::publication_id(publication).value();
  const std::size_t source = key % params_.source_slices;
  ++pubs_sent_;
  engine_.inject(params_.names.source, source,
                 std::make_shared<PublicationPayload>(
                     std::move(publication), engine_.simulator().now()));
}

std::size_t StreamHub::stored_subscriptions() const {
  std::size_t total = 0;
  auto& engine = const_cast<engine::Engine&>(engine_);
  const auto& cfg = engine.static_config();
  for (const auto& spec : schemes_) {
    const auto& m_op = cfg.operators.at(cfg.index_of(spec.op_name));
    for (SliceId slice : m_op.slices) {
      auto* runtime = engine.slice_runtime(slice);
      if (runtime == nullptr) continue;
      const auto* handler = dynamic_cast<const MHandler*>(&runtime->handler());
      if (handler != nullptr) total += handler->matcher().subscription_count();
    }
  }
  return total;
}

std::vector<SliceId> StreamHub::slices_of(const std::string& op) const {
  const auto& cfg = engine_.static_config();
  return cfg.operators.at(cfg.index_of(op)).slices;
}

std::vector<OperatorId> StreamHub::elastic_operators() const {
  const auto& cfg = engine_.static_config();
  std::vector<OperatorId> out;
  out.push_back(cfg.operators.at(cfg.index_of(params_.names.ap)).id);
  for (const auto& spec : schemes_) {
    out.push_back(cfg.operators.at(cfg.index_of(spec.op_name)).id);
  }
  out.push_back(cfg.operators.at(cfg.index_of(params_.names.ep)).id);
  return out;
}

bool StreamHub::is_elastic_slice(SliceId slice) const {
  const auto& cfg = engine_.static_config();
  const auto& name = cfg.op_of(slice).name;
  if (name == params_.names.ap || name == params_.names.ep) return true;
  for (const auto& spec : schemes_) {
    if (name == spec.op_name) return true;
  }
  return false;
}

}  // namespace esh::pubsub
