#include "pubsub/operators.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/det.hpp"
#include "common/thread_pool.hpp"

namespace esh::pubsub {

namespace {

// Stable key for modulo-hash routing.
std::uint64_t route_key(PublicationId id) { return id.value(); }
std::uint64_t route_key(SubscriptionId id) { return id.value(); }

// Runs fn(chunk, worker) for every chunk in [0, chunks): on the pool when
// one is installed and there is anything to spread, inline otherwise. The
// callers write chunk-indexed result slots, so the output is byte-identical
// either way (see the ThreadPool header's determinism contract).
void run_chunks(ThreadPool* pool, std::size_t chunks,
                const std::function<void(std::size_t, std::size_t)>& fn) {
  if (pool != nullptr && chunks > 1) {
    pool->parallel_for(chunks, fn);
    return;
  }
  for (std::size_t c = 0; c < chunks; ++c) fn(c, 0);
}

}  // namespace

// ---- SourceHandler -----------------------------------------------------------

void SourceHandler::on_event(engine::Context& ctx,
                             const engine::PayloadPtr& p) {
  if (const auto* sub = dynamic_cast<const SubscriptionPayload*>(p.get())) {
    ctx.emit(names_.ap,
             engine::Routing::hash(
                 route_key(filter::subscription_id(sub->subscription))),
             p);
    return;
  }
  if (const auto* pub = dynamic_cast<const PublicationPayload*>(p.get())) {
    ctx.emit(names_.ap,
             engine::Routing::hash(
                 route_key(filter::publication_id(pub->publication))),
             p);
    return;
  }
  if (const auto* unsub = dynamic_cast<const UnsubscriptionPayload*>(p.get())) {
    ctx.emit(names_.ap, engine::Routing::hash(route_key(unsub->id)), p);
    return;
  }
  throw std::logic_error{"SourceHandler: unexpected payload"};
}

// ---- ApHandler ----------------------------------------------------------------

const MatchingTarget& ApHandler::target_for(bool encrypted) const {
  for (const MatchingTarget& target : targets_) {
    if (target.encrypted == encrypted) return target;
  }
  throw std::logic_error{
      "ApHandler: no Matching operator deployed for this scheme"};
}

bool ApHandler::can_batch(const engine::PayloadPtr& p) const {
  return dynamic_cast<const SubscriptionPayload*>(p.get()) != nullptr ||
         dynamic_cast<const PublicationPayload*>(p.get()) != nullptr;
}

void ApHandler::on_batch_start(engine::Context& ctx,
                               const std::vector<engine::PayloadPtr>& batch) {
  // Reclaim once every outstanding plan entry was consumed; concurrent
  // batches (AP's kNone jobs overlap in simulated time) may still hold
  // unconsumed entries, which must survive this append.
  if (route_plan_consumed_ == route_plan_.size()) {
    route_plan_.clear();
    route_plan_consumed_ = 0;
  }
  const std::size_t base = route_plan_.size();
  route_plan_.resize(base + batch.size());
  // Routing decisions are pure reads of the static target table: plan them
  // off-thread in fixed-size chunks writing slot-indexed entries, so the
  // plan is identical at any worker count.
  constexpr std::size_t kRoutesPerChunk = 16;
  const std::size_t chunks =
      (batch.size() + kRoutesPerChunk - 1) / kRoutesPerChunk;
  run_chunks(pool_, chunks, [&](std::size_t chunk, std::size_t) {
    const std::size_t begin = chunk * kRoutesPerChunk;
    const std::size_t end = std::min(begin + kRoutesPerChunk, batch.size());
    for (std::size_t i = begin; i < end; ++i) {
      PlannedRoute& route = route_plan_[base + i];
      const engine::PayloadPtr& p = batch[i];
      if (const auto* sub = dynamic_cast<const SubscriptionPayload*>(p.get())) {
        const bool encrypted =
            std::holds_alternative<filter::EncryptedSubscription>(
                sub->subscription);
        route.is_publication = false;
        route.encrypted = encrypted;
        route.key = route_key(filter::subscription_id(sub->subscription));
        route.target = &target_for(encrypted);
      } else if (const auto* pub =
                     dynamic_cast<const PublicationPayload*>(p.get())) {
        const bool encrypted =
            std::holds_alternative<filter::EncryptedPublication>(
                pub->publication);
        route.is_publication = true;
        route.encrypted = encrypted;
        route.key = route_key(filter::publication_id(pub->publication));
        route.target = &target_for(encrypted);
        // Plan against the live fan, not the deploy-time slice count: a
        // prior split/merge may have resized the target operator. Pure read
        // of the routing table, safe off-thread (the simulator thread is
        // parked in the parallel_for join, so no cut-over can interleave).
        route.slices = ctx.slice_count(route.target->op_name);
        route.epoch = ctx.routing_epoch();
      } else {
        throw std::logic_error{"ApHandler: non-batchable payload in batch"};
      }
    }
  });
}

const ApHandler::PlannedRoute* ApHandler::consume_planned_route(
    bool is_publication, bool encrypted, std::uint64_t key) {
  for (PlannedRoute& route : route_plan_) {
    if (route.consumed || route.is_publication != is_publication ||
        route.encrypted != encrypted || route.key != key) {
      continue;
    }
    route.consumed = true;
    ++route_plan_consumed_;
    return &route;
  }
  return nullptr;
}

void ApHandler::on_event(engine::Context& ctx, const engine::PayloadPtr& p) {
  if (const auto* sub = dynamic_cast<const SubscriptionPayload*>(p.get())) {
    // Subscription partitioning: modulo hash over subscription identifiers
    // splits the workload into non-overlapping per-M-slice sets, within
    // the M operator handling the subscription's filtering scheme.
    const std::uint64_t key =
        route_key(filter::subscription_id(sub->subscription));
    const bool encrypted =
        std::holds_alternative<filter::EncryptedSubscription>(
            sub->subscription);
    const MatchingTarget* target;
    if (const PlannedRoute* plan = consume_planned_route(false, encrypted, key)) {
      target = plan->target;
    } else {
      // Standalone (unbatched) subscription: resolve inline -- the target
      // table is immutable, so the result is identical either way.
      target = &target_for(encrypted);
    }
    ctx.emit(target->op_name, engine::Routing::hash(key), p);
    return;
  }
  if (const auto* pub = dynamic_cast<const PublicationPayload*>(p.get())) {
    // Publications must meet every stored subscription of their scheme:
    // broadcast to all slices of that scheme's M operator.
    const std::uint64_t key = route_key(filter::publication_id(pub->publication));
    const bool encrypted =
        std::holds_alternative<filter::EncryptedPublication>(pub->publication);
    const MatchingTarget* target;
    if (const PlannedRoute* plan = consume_planned_route(true, encrypted, key)) {
      // Offloaded AP broadcasts must stay complete: the fan-out planned off
      // the simulator thread has to cover every live slice of the target
      // operator, or some M partition would silently never see the
      // publication (EP would then wait forever on its partial list). A
      // plan from an older routing epoch is exempt — the cut-over between
      // planning and commit resized the fan, and the commit-time stamp
      // below is what EP completes against.
      ESH_INVARIANT("pubsub", "ap-offload-broadcast-complete",
                    plan->epoch != ctx.routing_epoch() ||
                        plan->slices == ctx.slice_count(plan->target->op_name),
                    ::esh::contracts::Detail{}
                        .expected(ctx.slice_count(plan->target->op_name))
                        .actual(plan->slices)
                        .note("publication " + std::to_string(key)));
      target = plan->target;
    } else {
      target = &target_for(encrypted);
    }
    // Stamp the broadcast fan at the commit instant: the emit below
    // delivers to exactly these slice indices, and downstream completion
    // (EP) must collect against the fan the event was actually routed
    // with, not whatever the fan is when a partial list arrives.
    auto stamped = std::make_shared<PublicationPayload>(
        pub->publication, pub->published_at, ctx.fan_indices(target->op_name));
    ctx.emit(target->op_name, engine::Routing::broadcast(), std::move(stamped));
    return;
  }
  if (const auto* unsub = dynamic_cast<const UnsubscriptionPayload*>(p.get())) {
    // Same modulo hash as the original subscription: the removal reaches
    // exactly the slice storing it. Rare control traffic: never batched.
    ctx.emit(target_for(unsub->encrypted).op_name,
             engine::Routing::hash(route_key(unsub->id)), p);
    return;
  }
  throw std::logic_error{"ApHandler: unexpected payload"};
}

double ApHandler::cost_units(const engine::PayloadPtr& p) const {
  if (const auto* pub = dynamic_cast<const PublicationPayload*>(p.get())) {
    const bool encrypted = std::holds_alternative<filter::EncryptedPublication>(
        pub->publication);
    return cost_.ap_route_units *
           static_cast<double>(target_for(encrypted).slices);
  }
  return cost_.ap_route_units;
}

// ---- MHandler ------------------------------------------------------------------

bool MHandler::can_batch(const engine::PayloadPtr& p) const {
  return dynamic_cast<const PublicationPayload*>(p.get()) != nullptr;
}

void MHandler::on_batch_start(engine::Context& ctx,
                              const std::vector<engine::PayloadPtr>& batch) {
  (void)ctx;
  std::vector<filter::AnyPublication> pubs;
  pubs.reserve(batch.size());
  for (const engine::PayloadPtr& p : batch) {
    const auto* pub = dynamic_cast<const PublicationPayload*>(p.get());
    if (pub == nullptr) {
      throw std::logic_error{"MHandler: non-publication in batch"};
    }
    pubs.push_back(pub->publication);
  }
  std::vector<filter::MatchOutcome> outcomes = matcher_->match_batch(pubs);
  precomputed_.clear();
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    precomputed_.emplace_back(filter::publication_id(pubs[i]),
                              std::move(outcomes[i]));
  }
}

void MHandler::on_event(engine::Context& ctx, const engine::PayloadPtr& p) {
  if (const auto* sub = dynamic_cast<const SubscriptionPayload*>(p.get())) {
    matcher_->add(sub->subscription);
    return;
  }
  if (const auto* unsub = dynamic_cast<const UnsubscriptionPayload*>(p.get())) {
    (void)matcher_->remove(unsub->id);  // unknown ids are ignored
    return;
  }
  if (const auto* pub = dynamic_cast<const PublicationPayload*>(p.get())) {
    filter::MatchOutcome outcome;
    const PublicationId pub_id = filter::publication_id(pub->publication);
    if (!precomputed_.empty() && precomputed_.front().first == pub_id) {
      outcome = std::move(precomputed_.front().second);
      precomputed_.pop_front();
    } else {
      // Standalone (unbatched) publication, or a batch consumed out of
      // order: the store is unchanged since on_batch_start, so the scalar
      // result is identical either way.
      outcome = matcher_->match(pub->publication);
    }
    auto list = std::make_shared<MatchListPayload>();
    list->publication = filter::publication_id(pub->publication);
    list->m_slice_index = slice_index_;
    // The completion target is the fan the publication was broadcast with
    // (pinned at AP emit time), not the operator's current slice count: a
    // split/merge cut-over between broadcast and match must not change how
    // many partial lists EP waits for.
    list->fan_indices = pub->fan_indices;
    list->expected_lists =
        pub->fan_indices.empty()
            ? static_cast<std::uint32_t>(ctx.slice_count(own_op_))
            : static_cast<std::uint32_t>(pub->fan_indices.size());
    // A partial list labeled with a slice index outside the broadcast fan
    // would either be dropped by EP's dedup or inflate the completeness
    // count.
    const bool in_fan =
        pub->fan_indices.empty()
            ? slice_index_ < list->expected_lists
            : std::find(pub->fan_indices.begin(), pub->fan_indices.end(),
                        slice_index_) != pub->fan_indices.end();
    ESH_INVARIANT("pubsub", "m-slice-in-fan", in_fan,
                  ::esh::contracts::Detail{}
                      .expected("member of the broadcast fan")
                      .actual(slice_index_)
                      .note("publication " +
                            std::to_string(list->publication.value())));
    list->subscribers = std::move(outcome.subscribers);
    list->published_at = pub->published_at;
    const auto routing = engine::Routing::hash(route_key(list->publication));
    ctx.emit(names_.ep, routing, std::move(list));
    return;
  }
  throw std::logic_error{"MHandler: unexpected payload"};
}

double MHandler::cost_units(const engine::PayloadPtr& p) const {
  if (dynamic_cast<const PublicationPayload*>(p.get()) != nullptr) {
    return cost_.m_fixed_units + matcher_->estimate_match_units();
  }
  return 4.0;  // subscription insertion
}

std::size_t MHandler::split_state(const KeyCoverage& cov, BinaryWriter& w) {
  const std::size_t before = matcher_->subscription_count();
  const std::size_t moved = matcher_->split_state(cov, w);
  // Conservation: every subscription either stayed or was serialized for
  // the child — a split must not drop or duplicate stored state.
  ESH_INVARIANT("pubsub", "split-state-conserved",
                matcher_->subscription_count() + moved == before,
                ::esh::contracts::Detail{}
                    .expected(before)
                    .actual(matcher_->subscription_count() + moved)
                    .note("subscriptions before vs. retained + moved"));
  return moved;
}

void MHandler::absorb_state(BinaryReader& r) { matcher_->absorb_state(r); }

cluster::LockMode MHandler::lock_mode(const engine::PayloadPtr& p) const {
  // Matching only reads the subscription store: R lock, so one slice's
  // matches parallelize across the host's cores (paper §III).
  if (dynamic_cast<const PublicationPayload*>(p.get()) != nullptr) {
    return cluster::LockMode::kRead;
  }
  return cluster::LockMode::kWrite;
}

// ---- EpHandler -----------------------------------------------------------------

namespace {

// True when `lists_from` covers the completion target of `list`: the
// broadcast fan stamped on the publication at AP emit time when present,
// the dense 0..expected-1 range otherwise (legacy / never-split payloads).
bool lists_complete(const std::set<std::uint32_t>& lists_from,
                    const MatchListPayload& list, std::size_t fallback) {
  if (!list.fan_indices.empty()) {
    for (const std::uint32_t index : list.fan_indices) {
      if (!lists_from.contains(index)) return false;
    }
    return true;
  }
  const std::uint32_t expected =
      list.expected_lists > 0 ? list.expected_lists
                              : static_cast<std::uint32_t>(fallback);
  return lists_from.size() >= expected;
}

}  // namespace

bool EpHandler::can_batch(const engine::PayloadPtr& p) const {
  return dynamic_cast<const MatchListPayload*>(p.get()) != nullptr;
}

void EpHandler::on_batch_start(engine::Context& ctx,
                               const std::vector<engine::PayloadPtr>& batch) {
  (void)ctx;
  // EP's write jobs serialize in submission order and a batch's jobs are
  // submitted back to back, so the previous batch fully committed: any
  // leftover plan would mean a dropped mid-batch slice (retired by a host
  // failure), in which case this handler never runs again anyway.
  merge_plan_.clear();
  planned_complete_.clear();

  // Serial shadow walk (simulator thread, bookkeeping only): replay the
  // batch's dedup and completeness logic against the live state without
  // mutating it, to learn which publications the batch completes and which
  // arriving lists contribute to each merge, in arrival order.
  struct ShadowPending {
    std::set<std::uint32_t> lists_from;
    std::vector<const MatchListPayload*> arriving;
  };
  std::unordered_map<PublicationId, ShadowPending> shadow;
  struct Completion {
    PublicationId pub{};
    const std::vector<SubscriberId>* prefix = nullptr;  // live pending list
    std::vector<const MatchListPayload*> lists;
  };
  std::vector<Completion> completions;
  for (const engine::PayloadPtr& p : batch) {
    const auto* list = dynamic_cast<const MatchListPayload*>(p.get());
    if (list == nullptr) {
      throw std::logic_error{"EpHandler: non-list payload in batch"};
    }
    const PublicationId pub = list->publication;
    if (completed_.contains(pub) || planned_complete_.contains(pub)) continue;
    auto [it, inserted] = shadow.try_emplace(pub);
    ShadowPending& shadow_pending = it->second;
    if (inserted) {
      if (const auto live = pending_.find(pub); live != pending_.end()) {
        shadow_pending.lists_from = live->second.lists_from;
      }
    }
    if (!shadow_pending.lists_from.insert(list->m_slice_index).second) {
      continue;
    }
    shadow_pending.arriving.push_back(list);
    if (!lists_complete(shadow_pending.lists_from, *list, m_slices_)) continue;
    Completion completion;
    completion.pub = pub;
    if (const auto live = pending_.find(pub); live != pending_.end()) {
      completion.prefix = &live->second.subscribers;
    }
    completion.lists = std::move(shadow_pending.arriving);
    completions.push_back(std::move(completion));
    planned_complete_.insert(pub);
  }
  if (completions.empty()) return;

  // Merge assembly is pure compute over immutable inputs (the live pending
  // prefix and the batch payloads): fan one chunk per completing
  // publication across the pool, each writing its own plan slot and
  // concatenating in arrival order, so every merged list is byte-identical
  // to the serial per-event appends. The per-event on_event calls commit
  // them on the simulator thread in the serial completion order.
  merge_plan_.resize(completions.size());
  run_chunks(pool_, completions.size(), [&](std::size_t c, std::size_t) {
    const Completion& completion = completions[c];
    PlannedMerge& plan = merge_plan_[c];
    plan.pub = completion.pub;
    std::size_t total =
        completion.prefix != nullptr ? completion.prefix->size() : 0;
    for (const MatchListPayload* list : completion.lists) {
      total += list->subscribers.size();
    }
    plan.merged.reserve(total);
    if (completion.prefix != nullptr) {
      plan.merged.insert(plan.merged.end(), completion.prefix->begin(),
                         completion.prefix->end());
    }
    for (const MatchListPayload* list : completion.lists) {
      plan.merged.insert(plan.merged.end(), list->subscribers.begin(),
                         list->subscribers.end());
    }
  });
}

void EpHandler::on_event(engine::Context& ctx, const engine::PayloadPtr& p) {
  const auto* list = dynamic_cast<const MatchListPayload*>(p.get());
  if (list == nullptr) {
    throw std::logic_error{"EpHandler: unexpected payload"};
  }
  // EP is the exactly-once boundary (the paper's Exit Point): recovery
  // replays deliver partial lists at-least-once below it, so lists of
  // already-notified publications and duplicate per-M-slice lists must be
  // absorbed here.
  if (completed_.contains(list->publication)) return;
  // Each publication is filtered by exactly one scheme's M operator; its
  // completion target arrives with every partial list: the broadcast fan
  // pinned at AP emit time (falls back to a dense count for legacy /
  // never-split payloads).
  const bool in_fan =
      list->fan_indices.empty()
          ? list->m_slice_index < (list->expected_lists > 0
                                       ? list->expected_lists
                                       : static_cast<std::uint32_t>(m_slices_))
          : std::find(list->fan_indices.begin(), list->fan_indices.end(),
                      list->m_slice_index) != list->fan_indices.end();
  ESH_PRECONDITION("pubsub", "ep-list-in-fan", in_fan,
                   ::esh::contracts::Detail{}
                       .expected("member of the broadcast fan")
                       .actual(list->m_slice_index)
                       .note("publication " +
                             std::to_string(list->publication.value())));
  Pending& pending = pending_[list->publication];
  pending.published_at = list->published_at;
  if (!pending.lists_from.insert(list->m_slice_index).second) return;
  // Publications completing inside the current batch already have their
  // full merge precomputed (on_batch_start); appending here too would
  // duplicate their subscribers.
  const bool planned = planned_complete_.contains(list->publication);
  if (!planned) {
    pending.subscribers.insert(pending.subscribers.end(),
                               list->subscribers.begin(),
                               list->subscribers.end());
  }
  if (!lists_complete(pending.lists_from, *list, m_slices_)) return;

  // AP broadcast completeness: every collected index passed the fan
  // membership precondition and the full fan is covered, so set equality
  // reduces to a size check (dense fallback: `expected` distinct indices,
  // each below `expected`, is exactly {0 .. expected-1}).
  const std::size_t fan_size =
      list->fan_indices.empty()
          ? (list->expected_lists > 0 ? list->expected_lists
                                      : static_cast<std::uint32_t>(m_slices_))
          : list->fan_indices.size();
  ESH_INVARIANT("pubsub", "ap-broadcast-complete",
                pending.lists_from.size() == fan_size &&
                    (!list->fan_indices.empty() ||
                     *pending.lists_from.rbegin() < fan_size),
                ::esh::contracts::Detail{}
                    .expected(fan_size)
                    .actual(pending.lists_from.size())
                    .note("publication " +
                          std::to_string(list->publication.value())));
  if (planned) {
    // Commit the precomputed parallel merge. The plan was laid down in the
    // serial completion order of the batch, and EP's W-serialized FIFO
    // replays the batch in exactly that order, so the first unconsumed slot
    // must be this publication -- anything else means the off-thread merges
    // would commit in a different order than serial processing.
    std::size_t next = 0;
    while (next < merge_plan_.size() && merge_plan_[next].consumed) ++next;
    std::size_t found = next;
    while (found < merge_plan_.size() &&
           !(merge_plan_[found].pub == list->publication &&
             !merge_plan_[found].consumed)) {
      ++found;
    }
    ESH_INVARIANT("pubsub", "ep-offload-merge-ordered",
                  found == next && found < merge_plan_.size(),
                  ::esh::contracts::Detail{}
                      .expected(next < merge_plan_.size()
                                    ? "plan slot " + std::to_string(next) +
                                          " (publication " +
                                          std::to_string(
                                              merge_plan_[next].pub.value()) +
                                          ")"
                                    : std::string("plan drained"))
                      .actual("publication " +
                              std::to_string(list->publication.value()))
                      .note("parallel merge commit out of plan order"));
    if (found < merge_plan_.size()) {
      pending.subscribers = std::move(merge_plan_[found].merged);
      merge_plan_[found].consumed = true;
    }
    planned_complete_.erase(list->publication);
  }
  complete_publication(ctx, list->publication, std::move(pending));
}

void EpHandler::complete_publication(engine::Context& ctx, PublicationId pub,
                                     Pending pending) {
  auto notification = std::make_shared<NotificationPayload>();
  notification->publication = pub;
  notification->subscribers = std::move(pending.subscribers);
  notification->published_at = pending.published_at;
  // EP exactly-once: a publication enters the completed set precisely once;
  // a second dispatch would double-notify its subscribers.
  [[maybe_unused]] const bool first_dispatch = completed_.insert(pub).second;
  ESH_INVARIANT("pubsub", "ep-exactly-once", first_dispatch,
                ::esh::contracts::Detail{}
                    .expected("first dispatch")
                    .actual("already completed")
                    .note("publication " + std::to_string(pub.value())));
  pending_.erase(pub);
  const auto routing =
      engine::Routing::hash(route_key(notification->publication));
  ctx.emit(names_.sink, routing, std::move(notification));
}

double EpHandler::cost_units(const engine::PayloadPtr& p) const {
  const auto* list = dynamic_cast<const MatchListPayload*>(p.get());
  if (list == nullptr) return 1.0;
  const auto ids = static_cast<double>(list->subscribers.size());
  // Merge cost plus this partial list's share of the notification sends.
  return cost_.ep_list_units + ids * (cost_.ep_merge_units_per_id +
                                      cost_.ep_notify_units_per_id);
}

void EpHandler::serialize_state(BinaryWriter& w) const {
  w.write_u64(pending_.size());
  // Sorted: checkpoint bytes must not depend on hash-table layout.
  for (const PublicationId pub : sorted_keys(pending_)) {
    const Pending& pending = pending_.at(pub);
    w.write_id(pub);
    w.write_u64(pending.lists_from.size());
    for (std::uint32_t m : pending.lists_from) w.write_u32(m);
    w.write_i64(pending.published_at.count());
    w.write_u64(pending.subscribers.size());
    for (SubscriberId s : pending.subscribers) w.write_id(s);
  }
  w.write_u64(completed_.size());
  for (PublicationId pub : completed_) w.write_id(pub);
}

void EpHandler::restore_state(BinaryReader& r) {
  pending_.clear();
  completed_.clear();
  merge_plan_.clear();
  planned_complete_.clear();
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto pub = r.read_id<PublicationTag>();
    Pending pending;
    const auto lists = r.read_u64();
    for (std::uint64_t j = 0; j < lists; ++j) {
      pending.lists_from.insert(r.read_u32());
    }
    pending.published_at = SimTime{r.read_i64()};
    const auto count = r.read_u64();
    pending.subscribers.reserve(count);
    for (std::uint64_t j = 0; j < count; ++j) {
      pending.subscribers.push_back(r.read_id<SubscriberTag>());
    }
    pending_.emplace(pub, std::move(pending));
  }
  const auto done = r.read_u64();
  for (std::uint64_t i = 0; i < done; ++i) {
    completed_.insert(r.read_id<PublicationTag>());
  }
}

std::size_t EpHandler::state_bytes() const {
  std::size_t total = 16;
  // lint:allow(unordered-iteration): order-free sum
  for (const auto& [pub, pending] : pending_) {
    total += 32 + pending.subscribers.size() * sizeof(SubscriberId);
  }
  total += completed_.size() * sizeof(PublicationId);
  return total;
}

// ---- SinkHandler ----------------------------------------------------------------

void SinkHandler::on_event(engine::Context& ctx, const engine::PayloadPtr& p) {
  const auto* n = dynamic_cast<const NotificationPayload*>(p.get());
  if (n == nullptr) {
    throw std::logic_error{"SinkHandler: unexpected payload"};
  }
  // A recovered EP slice regenerates notifications it had already sent;
  // each publication is measured once.
  if (!seen_.insert(n->publication).second) return;
  collector_->record(ctx.now(), ctx.now() - n->published_at,
                     n->subscribers.size());
  collector_->record_delivery(n->publication, n->subscribers);
}

void SinkHandler::serialize_state(BinaryWriter& w) const {
  w.write_u64(seen_.size());
  for (PublicationId pub : seen_) w.write_id(pub);
}

void SinkHandler::restore_state(BinaryReader& r) {
  seen_.clear();
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    seen_.insert(r.read_id<PublicationTag>());
  }
}

std::size_t SinkHandler::state_bytes() const {
  return 16 + seen_.size() * sizeof(PublicationId);
}

double SinkHandler::cost_units(const engine::PayloadPtr& p) const {
  const auto* n = dynamic_cast<const NotificationPayload*>(p.get());
  return 1.0 + (n != nullptr
                    ? 0.05 * static_cast<double>(n->subscribers.size())
                    : 0.0);
}

}  // namespace esh::pubsub
