#include "pubsub/operators.hpp"

#include <stdexcept>

#include "common/det.hpp"

namespace esh::pubsub {

namespace {

// Stable key for modulo-hash routing.
std::uint64_t route_key(PublicationId id) { return id.value(); }
std::uint64_t route_key(SubscriptionId id) { return id.value(); }

}  // namespace

// ---- SourceHandler -----------------------------------------------------------

void SourceHandler::on_event(engine::Context& ctx,
                             const engine::PayloadPtr& p) {
  if (const auto* sub = dynamic_cast<const SubscriptionPayload*>(p.get())) {
    ctx.emit(names_.ap,
             engine::Routing::hash(
                 route_key(filter::subscription_id(sub->subscription))),
             p);
    return;
  }
  if (const auto* pub = dynamic_cast<const PublicationPayload*>(p.get())) {
    ctx.emit(names_.ap,
             engine::Routing::hash(
                 route_key(filter::publication_id(pub->publication))),
             p);
    return;
  }
  if (const auto* unsub = dynamic_cast<const UnsubscriptionPayload*>(p.get())) {
    ctx.emit(names_.ap, engine::Routing::hash(route_key(unsub->id)), p);
    return;
  }
  throw std::logic_error{"SourceHandler: unexpected payload"};
}

// ---- ApHandler ----------------------------------------------------------------

const MatchingTarget& ApHandler::target_for(bool encrypted) const {
  for (const MatchingTarget& target : targets_) {
    if (target.encrypted == encrypted) return target;
  }
  throw std::logic_error{
      "ApHandler: no Matching operator deployed for this scheme"};
}

void ApHandler::on_event(engine::Context& ctx, const engine::PayloadPtr& p) {
  if (const auto* sub = dynamic_cast<const SubscriptionPayload*>(p.get())) {
    // Subscription partitioning: modulo hash over subscription identifiers
    // splits the workload into non-overlapping per-M-slice sets, within
    // the M operator handling the subscription's filtering scheme.
    const bool encrypted = std::holds_alternative<filter::EncryptedSubscription>(
        sub->subscription);
    ctx.emit(target_for(encrypted).op_name,
             engine::Routing::hash(
                 route_key(filter::subscription_id(sub->subscription))),
             p);
    return;
  }
  if (const auto* pub = dynamic_cast<const PublicationPayload*>(p.get())) {
    // Publications must meet every stored subscription of their scheme:
    // broadcast to all slices of that scheme's M operator.
    const bool encrypted = std::holds_alternative<filter::EncryptedPublication>(
        pub->publication);
    ctx.emit(target_for(encrypted).op_name, engine::Routing::broadcast(), p);
    return;
  }
  if (const auto* unsub = dynamic_cast<const UnsubscriptionPayload*>(p.get())) {
    // Same modulo hash as the original subscription: the removal reaches
    // exactly the slice storing it.
    ctx.emit(target_for(unsub->encrypted).op_name,
             engine::Routing::hash(route_key(unsub->id)), p);
    return;
  }
  throw std::logic_error{"ApHandler: unexpected payload"};
}

double ApHandler::cost_units(const engine::PayloadPtr& p) const {
  if (const auto* pub = dynamic_cast<const PublicationPayload*>(p.get())) {
    const bool encrypted = std::holds_alternative<filter::EncryptedPublication>(
        pub->publication);
    return cost_.ap_route_units *
           static_cast<double>(target_for(encrypted).slices);
  }
  return cost_.ap_route_units;
}

// ---- MHandler ------------------------------------------------------------------

bool MHandler::can_batch(const engine::PayloadPtr& p) const {
  return dynamic_cast<const PublicationPayload*>(p.get()) != nullptr;
}

void MHandler::on_batch_start(engine::Context& ctx,
                              const std::vector<engine::PayloadPtr>& batch) {
  (void)ctx;
  std::vector<filter::AnyPublication> pubs;
  pubs.reserve(batch.size());
  for (const engine::PayloadPtr& p : batch) {
    const auto* pub = dynamic_cast<const PublicationPayload*>(p.get());
    if (pub == nullptr) {
      throw std::logic_error{"MHandler: non-publication in batch"};
    }
    pubs.push_back(pub->publication);
  }
  std::vector<filter::MatchOutcome> outcomes = matcher_->match_batch(pubs);
  precomputed_.clear();
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    precomputed_.emplace_back(filter::publication_id(pubs[i]),
                              std::move(outcomes[i]));
  }
}

void MHandler::on_event(engine::Context& ctx, const engine::PayloadPtr& p) {
  if (const auto* sub = dynamic_cast<const SubscriptionPayload*>(p.get())) {
    matcher_->add(sub->subscription);
    return;
  }
  if (const auto* unsub = dynamic_cast<const UnsubscriptionPayload*>(p.get())) {
    (void)matcher_->remove(unsub->id);  // unknown ids are ignored
    return;
  }
  if (const auto* pub = dynamic_cast<const PublicationPayload*>(p.get())) {
    filter::MatchOutcome outcome;
    const PublicationId pub_id = filter::publication_id(pub->publication);
    if (!precomputed_.empty() && precomputed_.front().first == pub_id) {
      outcome = std::move(precomputed_.front().second);
      precomputed_.pop_front();
    } else {
      // Standalone (unbatched) publication, or a batch consumed out of
      // order: the store is unchanged since on_batch_start, so the scalar
      // result is identical either way.
      outcome = matcher_->match(pub->publication);
    }
    auto list = std::make_shared<MatchListPayload>();
    list->publication = filter::publication_id(pub->publication);
    list->m_slice_index = slice_index_;
    list->expected_lists =
        static_cast<std::uint32_t>(ctx.slice_count(own_op_));
    // A partial list labeled with an out-of-range slice index would either
    // be dropped by EP's dedup or inflate the completeness count.
    ESH_INVARIANT("pubsub", "m-slice-index-bounds",
                  slice_index_ < list->expected_lists,
                  ::esh::contracts::Detail{}
                      .expected(std::string("< ") +
                                std::to_string(list->expected_lists))
                      .actual(slice_index_)
                      .note("publication " +
                            std::to_string(list->publication.value())));
    list->subscribers = std::move(outcome.subscribers);
    list->published_at = pub->published_at;
    const auto routing = engine::Routing::hash(route_key(list->publication));
    ctx.emit(names_.ep, routing, std::move(list));
    return;
  }
  throw std::logic_error{"MHandler: unexpected payload"};
}

double MHandler::cost_units(const engine::PayloadPtr& p) const {
  if (dynamic_cast<const PublicationPayload*>(p.get()) != nullptr) {
    return cost_.m_fixed_units + matcher_->estimate_match_units();
  }
  return 4.0;  // subscription insertion
}

cluster::LockMode MHandler::lock_mode(const engine::PayloadPtr& p) const {
  // Matching only reads the subscription store: R lock, so one slice's
  // matches parallelize across the host's cores (paper §III).
  if (dynamic_cast<const PublicationPayload*>(p.get()) != nullptr) {
    return cluster::LockMode::kRead;
  }
  return cluster::LockMode::kWrite;
}

// ---- EpHandler -----------------------------------------------------------------

void EpHandler::on_event(engine::Context& ctx, const engine::PayloadPtr& p) {
  const auto* list = dynamic_cast<const MatchListPayload*>(p.get());
  if (list == nullptr) {
    throw std::logic_error{"EpHandler: unexpected payload"};
  }
  // EP is the exactly-once boundary (the paper's Exit Point): recovery
  // replays deliver partial lists at-least-once below it, so lists of
  // already-notified publications and duplicate per-M-slice lists must be
  // absorbed here.
  if (completed_.contains(list->publication)) return;
  // Each publication is filtered by exactly one scheme's M operator; its
  // slice count arrives with every partial list (falls back to the static
  // single-scheme configuration when absent).
  const std::uint32_t expected =
      list->expected_lists > 0 ? list->expected_lists
                               : static_cast<std::uint32_t>(m_slices_);
  ESH_PRECONDITION("pubsub", "ep-list-slice-bounds",
                   list->m_slice_index < expected,
                   ::esh::contracts::Detail{}
                       .expected(std::string("< ") + std::to_string(expected))
                       .actual(list->m_slice_index)
                       .note("publication " +
                             std::to_string(list->publication.value())));
  Pending& pending = pending_[list->publication];
  pending.published_at = list->published_at;
  if (!pending.lists_from.insert(list->m_slice_index).second) return;
  pending.subscribers.insert(pending.subscribers.end(),
                             list->subscribers.begin(),
                             list->subscribers.end());
  if (pending.lists_from.size() < expected) return;

  // AP broadcast completeness: `expected` distinct indices, each below
  // `expected`, is exactly the full slice set {0 .. expected-1}.
  ESH_INVARIANT("pubsub", "ap-broadcast-complete",
                pending.lists_from.size() == expected &&
                    *pending.lists_from.rbegin() < expected,
                ::esh::contracts::Detail{}
                    .expected(expected)
                    .actual(pending.lists_from.size())
                    .note("publication " +
                          std::to_string(list->publication.value())));
  complete_publication(ctx, list->publication, std::move(pending));
}

void EpHandler::complete_publication(engine::Context& ctx, PublicationId pub,
                                     Pending pending) {
  auto notification = std::make_shared<NotificationPayload>();
  notification->publication = pub;
  notification->subscribers = std::move(pending.subscribers);
  notification->published_at = pending.published_at;
  // EP exactly-once: a publication enters the completed set precisely once;
  // a second dispatch would double-notify its subscribers.
  [[maybe_unused]] const bool first_dispatch = completed_.insert(pub).second;
  ESH_INVARIANT("pubsub", "ep-exactly-once", first_dispatch,
                ::esh::contracts::Detail{}
                    .expected("first dispatch")
                    .actual("already completed")
                    .note("publication " + std::to_string(pub.value())));
  pending_.erase(pub);
  const auto routing =
      engine::Routing::hash(route_key(notification->publication));
  ctx.emit(names_.sink, routing, std::move(notification));
}

double EpHandler::cost_units(const engine::PayloadPtr& p) const {
  const auto* list = dynamic_cast<const MatchListPayload*>(p.get());
  if (list == nullptr) return 1.0;
  const auto ids = static_cast<double>(list->subscribers.size());
  // Merge cost plus this partial list's share of the notification sends.
  return cost_.ep_list_units + ids * (cost_.ep_merge_units_per_id +
                                      cost_.ep_notify_units_per_id);
}

void EpHandler::serialize_state(BinaryWriter& w) const {
  w.write_u64(pending_.size());
  // Sorted: checkpoint bytes must not depend on hash-table layout.
  for (const PublicationId pub : sorted_keys(pending_)) {
    const Pending& pending = pending_.at(pub);
    w.write_id(pub);
    w.write_u64(pending.lists_from.size());
    for (std::uint32_t m : pending.lists_from) w.write_u32(m);
    w.write_i64(pending.published_at.count());
    w.write_u64(pending.subscribers.size());
    for (SubscriberId s : pending.subscribers) w.write_id(s);
  }
  w.write_u64(completed_.size());
  for (PublicationId pub : completed_) w.write_id(pub);
}

void EpHandler::restore_state(BinaryReader& r) {
  pending_.clear();
  completed_.clear();
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto pub = r.read_id<PublicationTag>();
    Pending pending;
    const auto lists = r.read_u64();
    for (std::uint64_t j = 0; j < lists; ++j) {
      pending.lists_from.insert(r.read_u32());
    }
    pending.published_at = SimTime{r.read_i64()};
    const auto count = r.read_u64();
    pending.subscribers.reserve(count);
    for (std::uint64_t j = 0; j < count; ++j) {
      pending.subscribers.push_back(r.read_id<SubscriberTag>());
    }
    pending_.emplace(pub, std::move(pending));
  }
  const auto done = r.read_u64();
  for (std::uint64_t i = 0; i < done; ++i) {
    completed_.insert(r.read_id<PublicationTag>());
  }
}

std::size_t EpHandler::state_bytes() const {
  std::size_t total = 16;
  // lint:allow(unordered-iteration): order-free sum
  for (const auto& [pub, pending] : pending_) {
    total += 32 + pending.subscribers.size() * sizeof(SubscriberId);
  }
  total += completed_.size() * sizeof(PublicationId);
  return total;
}

// ---- SinkHandler ----------------------------------------------------------------

void SinkHandler::on_event(engine::Context& ctx, const engine::PayloadPtr& p) {
  const auto* n = dynamic_cast<const NotificationPayload*>(p.get());
  if (n == nullptr) {
    throw std::logic_error{"SinkHandler: unexpected payload"};
  }
  // A recovered EP slice regenerates notifications it had already sent;
  // each publication is measured once.
  if (!seen_.insert(n->publication).second) return;
  collector_->record(ctx.now(), ctx.now() - n->published_at,
                     n->subscribers.size());
  collector_->record_delivery(n->publication, n->subscribers);
}

void SinkHandler::serialize_state(BinaryWriter& w) const {
  w.write_u64(seen_.size());
  for (PublicationId pub : seen_) w.write_id(pub);
}

void SinkHandler::restore_state(BinaryReader& r) {
  seen_.clear();
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    seen_.insert(r.read_id<PublicationTag>());
  }
}

std::size_t SinkHandler::state_bytes() const {
  return 16 + seen_.size() * sizeof(PublicationId);
}

double SinkHandler::cost_units(const engine::PayloadPtr& p) const {
  const auto* n = dynamic_cast<const NotificationPayload*>(p.get());
  return 1.0 + (n != nullptr
                    ? 0.05 * static_cast<double>(n->subscribers.size())
                    : 0.0);
}

}  // namespace esh::pubsub
