// STREAMHUB assembly: builds the operator topology (source -> AP -> M ->
// EP -> sink) on an Engine and exposes the pub/sub service API used by
// examples, tests, and the experiment harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.hpp"
#include "filter/matcher.hpp"
#include "pubsub/operators.hpp"
#include "pubsub/payloads.hpp"

namespace esh::pubsub {

// One Matching operator (filtering scheme) to deploy. The paper's platform
// can run several M operators side by side, one per scheme (§III), e.g. a
// plain-text operator next to an encrypted one; AP routes every event to
// the operator of its scheme.
struct MatcherSchemeSpec {
  std::string op_name = "M";
  std::size_t slices = 16;
  // Receives encrypted payloads (EncryptedSubscription/Publication) when
  // true, plain ones when false.
  bool encrypted = true;
  std::function<std::unique_ptr<filter::Matcher>(std::size_t slice_index)>
      factory;
};

struct StreamHubParams {
  std::size_t source_slices = 4;
  std::size_t ap_slices = 8;
  std::size_t m_slices = 16;
  std::size_t ep_slices = 8;
  std::size_t sink_slices = 4;
  // Single-scheme shortcut: creates the filtering-library instance of M
  // slice `slice_index`; that one operator serves plain and encrypted
  // events alike. Ignored when `schemes` is non-empty.
  std::function<std::unique_ptr<filter::Matcher>(std::size_t slice_index)>
      matcher_factory;
  // Multi-scheme deployment: one M operator per entry.
  std::vector<MatcherSchemeSpec> schemes;
  OperatorNames names{};
  cluster::CostModel cost{};
};

// Placement of every operator onto hosts: operator name -> hosts, slices
// assigned round-robin.
using HostAssignment = std::unordered_map<std::string, std::vector<HostId>>;

class StreamHub {
 public:
  StreamHub(engine::Engine& engine, StreamHubParams params);

  // Deploys the operators; `assignment` lists candidate hosts per operator
  // name (slices are spread round-robin over them). Scheme operators
  // without their own entry fall back to the assignment of "M".
  void deploy(const HostAssignment& assignment);

  // The deployed Matching operators (one per scheme).
  [[nodiscard]] const std::vector<MatcherSchemeSpec>& schemes() const {
    return schemes_;
  }

  // ---- client API ----
  void subscribe(filter::AnySubscription subscription);
  // Removes a stored subscription. `encrypted` selects the scheme whose M
  // operator stores it (ignored for single-scheme deployments).
  void unsubscribe(SubscriptionId id, bool encrypted = true);
  void publish(filter::AnyPublication publication);

  // ---- observation ----
  [[nodiscard]] std::shared_ptr<DelayCollector> collector() { return collector_; }
  // Total subscriptions currently stored across all M slices.
  [[nodiscard]] std::size_t stored_subscriptions() const;
  [[nodiscard]] std::uint64_t publications_sent() const { return pubs_sent_; }

  // ---- structure ----
  [[nodiscard]] const StreamHubParams& params() const { return params_; }
  [[nodiscard]] std::vector<SliceId> slices_of(const std::string& op) const;
  [[nodiscard]] engine::Engine& engine() { return engine_; }

  // Operators eligible for elasticity-driven migration (AP, M, EP;
  // source/sink stay on their dedicated hosts, §VI-A).
  [[nodiscard]] std::vector<OperatorId> elastic_operators() const;
  [[nodiscard]] bool is_elastic_slice(SliceId slice) const;

 private:
  engine::Engine& engine_;
  StreamHubParams params_;
  std::vector<MatcherSchemeSpec> schemes_;
  std::shared_ptr<DelayCollector> collector_;
  std::uint64_t pubs_sent_ = 0;
  bool deployed_ = false;
};

// Spreads `slices` over `hosts` round-robin; helper for placements.
std::vector<HostId> spread(const std::vector<HostId>& hosts,
                           std::size_t slices);

}  // namespace esh::pubsub
