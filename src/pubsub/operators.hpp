// STREAMHUB's three fundamental operators (paper §III) plus the source and
// sink convenience operators used by the evaluation (§VI-A).
//
//   AP  (Access Point):   partitions subscriptions across M slices by
//                          modulo hash; broadcasts publications to all of
//                          them. Stateless.
//   M   (Matching):       stores its partition of the subscriptions in a
//                          filtering-library instance; matches each
//                          publication against all of them (R-locked, so
//                          several matches can run on different cores).
//   EP  (Exit Point):     collects the per-M-slice partial lists of one
//                          publication (modulo hash on publication id
//                          brings them to the same slice), combines them
//                          and sends the notification.
//   source / sink:         push pre-encrypted events in, collect
//                          notifications and delay measurements out.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "cluster/cost_model.hpp"
#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "engine/handler.hpp"
#include "filter/matcher.hpp"
#include "pubsub/payloads.hpp"

namespace esh::pubsub {

struct OperatorNames {
  std::string source = "source";
  std::string ap = "AP";
  std::string m = "M";
  std::string ep = "EP";
  std::string sink = "sink";
};

class SourceHandler final : public engine::Handler {
 public:
  SourceHandler(OperatorNames names, cluster::CostModel cost)
      : names_(std::move(names)), cost_(cost) {}

  void on_event(engine::Context& ctx, const engine::PayloadPtr& p) override;
  [[nodiscard]] double cost_units(const engine::PayloadPtr&) const override {
    return 2.0;
  }
  [[nodiscard]] cluster::LockMode lock_mode(
      const engine::PayloadPtr&) const override {
    return cluster::LockMode::kNone;
  }

 private:
  OperatorNames names_;
  cluster::CostModel cost_;
};

// One Matching operator per filtering scheme (paper §III: "there might be
// several M operators, one per filtering scheme"). AP routes each event to
// the operator of its scheme, selected by payload kind.
struct MatchingTarget {
  std::string op_name;
  std::size_t slices = 0;
  bool encrypted = false;  // receives EncryptedSubscription/Publication
};

class ApHandler final : public engine::Handler {
 public:
  // `worker_pool` (optional) parallelizes on_batch_start's route planning:
  // per-event scheme resolution, partition hashes and broadcast fan-out
  // targets are precomputed in parallel_for chunks and committed (emitted)
  // on the simulator thread by the per-event on_event calls, so simulated
  // behavior is independent of the pool.
  ApHandler(std::vector<MatchingTarget> targets, cluster::CostModel cost,
            ThreadPool* worker_pool = nullptr)
      : targets_(std::move(targets)), cost_(cost), pool_(worker_pool) {}

  void on_event(engine::Context& ctx, const engine::PayloadPtr& p) override;
  [[nodiscard]] double cost_units(const engine::PayloadPtr& p) const override;
  [[nodiscard]] cluster::LockMode lock_mode(
      const engine::PayloadPtr&) const override {
    return cluster::LockMode::kNone;  // stateless (paper §IV-A)
  }
  [[nodiscard]] double replica_init_units() const override {
    return cost_.generic_replica_init_units;
  }

  // Subscriptions and publications batch (AP is stateless, so any run
  // coalesces); on_batch_start plans each event's route off-thread and the
  // per-event on_event calls consume the plan by key -- AP jobs are
  // lock-free (kNone) and may complete out of submission order when their
  // simulated costs differ.
  [[nodiscard]] bool can_batch(const engine::PayloadPtr& p) const override;
  void on_batch_start(engine::Context& ctx,
                      const std::vector<engine::PayloadPtr>& batch) override;

#if ESH_INVARIANTS_ENABLED
  // Seeded-fault seam for tests/test_contracts.cpp: shrinks the planned
  // broadcast fan-out of the first unconsumed publication route, so the
  // consuming on_event trips ap-offload-broadcast-complete.
  void testing_corrupt_route_plan() {
    for (PlannedRoute& route : route_plan_) {
      if (!route.consumed && route.is_publication) {
        --route.slices;
        return;
      }
    }
  }
#endif

 private:
  // One precomputed routing decision. `key` is the modulo-hash routing key
  // (subscription id or publication id); publications broadcast instead and
  // carry the planned fan-out width for the completeness invariant. The
  // scheme flag is part of the consumption key: the two schemes' id spaces
  // are independent, so a plain and an encrypted event may share `key`.
  struct PlannedRoute {
    bool is_publication = false;
    bool encrypted = false;
    std::uint64_t key = 0;
    const MatchingTarget* target = nullptr;
    std::size_t slices = 0;  // planned broadcast fan-out (publications)
    // Routing epoch the fan-out was planned under; a split/merge cut-over
    // between planning and commit legitimately changes the fan width.
    std::uint64_t epoch = 0;
    bool consumed = false;
  };

  [[nodiscard]] const MatchingTarget& target_for(bool encrypted) const;
  [[nodiscard]] const PlannedRoute* consume_planned_route(bool is_publication,
                                                          bool encrypted,
                                                          std::uint64_t key);

  std::vector<MatchingTarget> targets_;
  cluster::CostModel cost_;
  ThreadPool* pool_;
  // Outstanding planned routes. Multiple batches can be in flight at once
  // (AP receives from several source slices and its jobs are unserialized),
  // so plans append and are consumed by key; fully-consumed plans are
  // reclaimed at the next batch boundary.
  std::vector<PlannedRoute> route_plan_;
  std::size_t route_plan_consumed_ = 0;
};

class MHandler final : public engine::Handler {
 public:
  // `match_pool` (optional) is installed on the matcher: on_batch_start's
  // match_batch call then fans its compute across the pool and joins before
  // returning, so every result is committed on the simulator thread and
  // simulated behavior is independent of the pool.
  MHandler(OperatorNames names, std::string own_op, std::uint32_t slice_index,
           std::unique_ptr<filter::Matcher> matcher, cluster::CostModel cost,
           ThreadPool* match_pool = nullptr)
      : names_(std::move(names)),
        own_op_(std::move(own_op)),
        slice_index_(slice_index),
        matcher_(std::move(matcher)),
        cost_(cost) {
    matcher_->set_thread_pool(match_pool);
  }

  void on_event(engine::Context& ctx, const engine::PayloadPtr& p) override;
  [[nodiscard]] double cost_units(const engine::PayloadPtr& p) const override;
  [[nodiscard]] cluster::LockMode lock_mode(
      const engine::PayloadPtr& p) const override;

  // Publications are read-only with respect to the subscription store, so a
  // run of them drains from the input channel as one batch: on_batch_start
  // issues a single matcher_->match_batch() whose per-publication outcomes
  // the subsequent on_event calls emit. Results, simulated costs and lock
  // modes are identical to scalar processing.
  [[nodiscard]] bool can_batch(const engine::PayloadPtr& p) const override;
  void on_batch_start(engine::Context& ctx,
                      const std::vector<engine::PayloadPtr>& batch) override;

  void serialize_state(BinaryWriter& w) const override {
    matcher_->serialize_state(w);
  }
  void restore_state(BinaryReader& r) override { matcher_->restore_state(r); }
  [[nodiscard]] std::size_t state_bytes() const override {
    return matcher_->state_bytes();
  }
  [[nodiscard]] double replica_init_units() const override {
    return cost_.m_replica_init_units;
  }

  [[nodiscard]] const filter::Matcher& matcher() const { return *matcher_; }

  // Key-level elasticity: M partitions its subscription store by routing
  // key, so a slice can split off the half a child slice takes over (and
  // absorb it back on a merge). Delegates to the filtering library.
  [[nodiscard]] bool supports_split() const override { return true; }
  std::size_t split_state(const KeyCoverage& cov, BinaryWriter& w) override;
  void absorb_state(BinaryReader& r) override;

 private:
  OperatorNames names_;
  std::string own_op_;
  std::uint32_t slice_index_;
  std::unique_ptr<filter::Matcher> matcher_;
  cluster::CostModel cost_;
  // Outcomes precomputed by on_batch_start, consumed in order by the
  // per-publication on_event calls of the same batch.
  std::deque<std::pair<PublicationId, filter::MatchOutcome>> precomputed_;
};

class EpHandler final : public engine::Handler {
 public:
  // `worker_pool` (optional) parallelizes on_batch_start's merge assembly:
  // the batch is shadow-walked serially on the simulator thread to find the
  // publications it completes, their full subscriber merges are then built
  // in parallel_for chunks (one per completing publication, arrival order
  // preserved inside each merge), and the per-event on_event calls commit
  // state changes, dispatch and cost accounting on the simulator thread in
  // the serial order -- simulated behavior is independent of the pool.
  EpHandler(OperatorNames names, std::size_t m_slices, cluster::CostModel cost,
            ThreadPool* worker_pool = nullptr)
      : names_(std::move(names)),
        m_slices_(m_slices),
        cost_(cost),
        pool_(worker_pool) {}

  void on_event(engine::Context& ctx, const engine::PayloadPtr& p) override;
  [[nodiscard]] double cost_units(const engine::PayloadPtr& p) const override;
  [[nodiscard]] cluster::LockMode lock_mode(
      const engine::PayloadPtr&) const override {
    return cluster::LockMode::kWrite;  // mutates the pending-list state
  }

  // Partial lists batch even though they are W-locked: EP's write jobs are
  // strictly serialized in submission order and a batch's jobs are submitted
  // back to back, so no checkpoint/freeze/foreign-channel job can observe
  // mid-batch state (see Handler::can_batch). on_batch_start therefore sees
  // exactly the serial pre-batch state and precomputes the in-batch merges.
  [[nodiscard]] bool can_batch(const engine::PayloadPtr& p) const override;
  void on_batch_start(engine::Context& ctx,
                      const std::vector<engine::PayloadPtr>& batch) override;

  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  [[nodiscard]] std::size_t state_bytes() const override;
  [[nodiscard]] double replica_init_units() const override {
    return cost_.generic_replica_init_units;
  }

  [[nodiscard]] std::size_t pending_publications() const {
    return pending_.size();
  }

#if ESH_INVARIANTS_ENABLED
  // Seeded-fault seam for tests/test_contracts.cpp: dispatches a
  // notification while bypassing the completed_-set guard, so a second call
  // for the same publication trips the exactly-once invariant.
  void testing_force_dispatch(engine::Context& ctx, PublicationId pub) {
    complete_publication(ctx, pub, std::move(pending_[pub]));
  }
  // Seeded-fault seam: swaps the first two precomputed parallel merges so
  // the batch commits them out of plan order; the first completing on_event
  // trips ep-offload-merge-ordered.
  void testing_scramble_merge_plan() {
    if (merge_plan_.size() >= 2) {
      std::swap(merge_plan_[0], merge_plan_[1]);
    }
  }
#endif

 private:
  struct Pending {
    // Which M slices' partial lists arrived (a set, not a count: recovery
    // can re-deliver a list, and EP is the exactly-once boundary).
    std::set<std::uint32_t> lists_from;
    std::vector<SubscriberId> subscribers;
    SimTime published_at{};
  };

  // Dispatch tail shared by on_event and the seeded-fault hook: marks the
  // publication completed (the exactly-once boundary) and emits the merged
  // notification toward the sink.
  void complete_publication(engine::Context& ctx, PublicationId pub,
                            Pending pending);

  // One precomputed merge for a publication that completes inside the
  // current batch: the full subscriber list (pre-batch pending prefix, then
  // the batch's lists in arrival order), built off-thread.
  struct PlannedMerge {
    PublicationId pub{};
    std::vector<SubscriberId> merged;
    bool consumed = false;
  };

  OperatorNames names_;
  std::size_t m_slices_;
  cluster::CostModel cost_;
  ThreadPool* pool_ = nullptr;
  std::unordered_map<PublicationId, Pending> pending_;
  // Publications already notified. Upstream recovery replays deliver
  // at-least-once below this operator; completed publications must not be
  // re-notified. Grows with the publication count — fine for simulation.
  std::set<PublicationId> completed_;
  // Precomputed merges of the batch in flight (EP's W-serialized FIFO means
  // at most one batch is outstanding, fully consumed before the next
  // on_batch_start). Publications listed here skip the per-event subscriber
  // appends; the completing event commits the precomputed merge instead.
  std::vector<PlannedMerge> merge_plan_;
  std::set<PublicationId> planned_complete_;
};

// Observation sink: records end-to-end delays (publication emission at the
// source to notification reception, global simulated clock).
class DelayCollector {
 public:
  void record(SimTime now, SimDuration delay, std::size_t notified) {
    delays_ms_.add(to_millis(delay));
    if (series_) series_->add(now, to_millis(delay));
    notifications_ += notified;
    ++publications_completed_;
    last_completion_ = now;
  }

  // Optional time-binned view (Figures 7-9).
  void enable_series(SimDuration bin) {
    series_.emplace(bin);
  }

  // Optional per-publication delivery ledger: every notification is recorded
  // against its publication id so the chaos harness can compare the actual
  // deliveries with the match oracle's ground truth (missing, duplicated or
  // mis-addressed notifications all become visible).
  struct AuditEntry {
    std::uint32_t deliveries = 0;
    std::vector<SubscriberId> subscribers;  // as carried by the last delivery
  };
  void enable_audit() { audit_enabled_ = true; }
  [[nodiscard]] bool audit_enabled() const { return audit_enabled_; }
  void record_delivery(PublicationId pub,
                       const std::vector<SubscriberId>& subscribers) {
    if (!audit_enabled_) return;
    auto& entry = audit_[pub];
    ++entry.deliveries;
    entry.subscribers = subscribers;
  }
  [[nodiscard]] const std::unordered_map<PublicationId, AuditEntry>& audit()
      const {
    return audit_;
  }

  [[nodiscard]] const PercentileTracker& delays_ms() const {
    return delays_ms_;
  }
  [[nodiscard]] const TimeBinnedSeries* series() const {
    return series_ ? &*series_ : nullptr;
  }
  [[nodiscard]] std::uint64_t notifications() const { return notifications_; }
  [[nodiscard]] std::uint64_t publications_completed() const {
    return publications_completed_;
  }
  [[nodiscard]] SimTime last_completion() const { return last_completion_; }
  void reset_counts() {
    notifications_ = 0;
    publications_completed_ = 0;
    delays_ms_.reset();
  }

 private:
  PercentileTracker delays_ms_;
  std::optional<TimeBinnedSeries> series_;
  std::uint64_t notifications_ = 0;
  std::uint64_t publications_completed_ = 0;
  SimTime last_completion_{0};
  bool audit_enabled_ = false;
  std::unordered_map<PublicationId, AuditEntry> audit_;
};

class SinkHandler final : public engine::Handler {
 public:
  explicit SinkHandler(std::shared_ptr<DelayCollector> collector)
      : collector_(std::move(collector)) {}

  void on_event(engine::Context& ctx, const engine::PayloadPtr& p) override;
  [[nodiscard]] double cost_units(const engine::PayloadPtr& p) const override;
  [[nodiscard]] cluster::LockMode lock_mode(
      const engine::PayloadPtr& p) const override {
    return dynamic_cast<const NotificationPayload*>(p.get()) != nullptr
               ? cluster::LockMode::kWrite  // mutates the seen-set
               : cluster::LockMode::kNone;
  }
  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  [[nodiscard]] std::size_t state_bytes() const override;

 private:
  std::shared_ptr<DelayCollector> collector_;
  // Publications already recorded: an EP recovery may re-send a
  // notification, and the measurements must count each publication once.
  std::set<PublicationId> seen_;
};

}  // namespace esh::pubsub
