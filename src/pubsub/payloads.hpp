// Event payloads flowing through the STREAMHUB operator DAG.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/cost_model.hpp"
#include "common/types.hpp"
#include "engine/event.hpp"
#include "filter/matcher.hpp"

namespace esh::pubsub {

struct SubscriptionPayload final : engine::Payload {
  filter::AnySubscription subscription;

  explicit SubscriptionPayload(filter::AnySubscription s)
      : subscription(std::move(s)) {}
  [[nodiscard]] std::size_t bytes() const override {
    return filter::subscription_bytes(subscription);
  }
};

struct PublicationPayload final : engine::Payload {
  filter::AnyPublication publication;
  SimTime published_at{};
  // Broadcast fan (ascending M slice indices) stamped by AP at emit time.
  // EP completes a publication when it has one partial list per fan entry;
  // the stamp pins the fan the event was actually routed with, so matching
  // stays exactly-once across split/merge cut-overs. Empty = deploy-time
  // fan (never-split operators). Not counted in bytes(): the wire carries
  // the fan implicitly in the real engine's routing header.
  std::vector<std::uint32_t> fan_indices;

  PublicationPayload(filter::AnyPublication p, SimTime at)
      : publication(std::move(p)), published_at(at) {}
  PublicationPayload(filter::AnyPublication p, SimTime at,
                     std::vector<std::uint32_t> fan)
      : publication(std::move(p)),
        published_at(at),
        fan_indices(std::move(fan)) {}
  [[nodiscard]] std::size_t bytes() const override {
    return filter::publication_bytes(publication);
  }
};

// Cancels a stored subscription. The client indicates the filtering scheme
// so AP can route the removal to the right M operator (ciphertext ids are
// meaningless to the plain operator and vice versa).
struct UnsubscriptionPayload final : engine::Payload {
  SubscriptionId id;
  bool encrypted = true;

  UnsubscriptionPayload(SubscriptionId sub_id, bool enc)
      : id(sub_id), encrypted(enc) {}
  [[nodiscard]] std::size_t bytes() const override { return 24; }
};

// Partial result of one M slice for one publication.
struct MatchListPayload final : engine::Payload {
  PublicationId publication;
  std::uint32_t m_slice_index = 0;
  // Number of partial lists EP must collect for this publication (the
  // slice count of the M operator that filtered it; with several filtering
  // schemes deployed, each scheme's operator reports its own count).
  std::uint32_t expected_lists = 0;
  // Broadcast fan the publication carried (copied from PublicationPayload);
  // EP completes against this set rather than a dense 0..expected-1 range,
  // since split children occupy sparse slice indices. Empty = dense fan.
  std::vector<std::uint32_t> fan_indices;
  std::vector<SubscriberId> subscribers;
  SimTime published_at{};

  [[nodiscard]] std::size_t bytes() const override {
    return 32 + subscribers.size() * sizeof(SubscriberId);
  }
};

// Combined notification for one publication (all matching subscribers).
struct NotificationPayload final : engine::Payload {
  PublicationId publication;
  std::vector<SubscriberId> subscribers;
  SimTime published_at{};

  [[nodiscard]] std::size_t bytes() const override {
    return 32 + subscribers.size() * sizeof(SubscriberId);
  }
};

}  // namespace esh::pubsub
