// Calibrated cost model tying algorithmic work to simulated CPU time.
//
// One work unit is one microsecond on a reference core (Xeon E5405 class,
// matching the paper's testbed). The anchor is the ASPE match cost: the
// paper's Figure 6 reports 422 publications/s with 100 K subscriptions on
// 12 hosts. With 16 M slices spread over the 6 M hosts, the bottleneck
// host runs ceil(16/6) = 3 slices and must complete 3 matches-of-6250 per
// publication on its 8 cores: 422/s * 3 * 6250 * c = 8 core-seconds/s
// -> c ~= 1.01 us per d=4 match -> aspe_match_units_per_d2 ~= 0.063.
// Every other constant is a small multiple estimated relative to this
// anchor; DESIGN.md documents the calibration.
#pragma once

#include <cstddef>

namespace esh::cluster {

struct CostModel {
  // --- filtering -----------------------------------------------------------
  // Matching one encrypted publication against one stored ASPE subscription:
  // 2d scalar products of (d+3)-vectors -> cost proportional to d^2.
  double aspe_match_units_per_d2 = 0.063;
  // Plain-text range matching of one publication against one subscription.
  double plain_match_units = 0.02;
  // Interval-index matching (IntervalIndexMatcher): the index prunes by the
  // registered predicate's selectivity, so cost is charged per tree node
  // visited during the stabbing descent and per surviving candidate
  // verified against the arena columns -- not per stored subscription.
  // A node visit is one compare + one pointer chase, about a binary-search
  // step (one plain_match_units); a candidate verification is a partial
  // rectangle test that early-exits on the first failing attribute, about
  // half a full plain match.
  double index_node_units = 0.02;
  double index_candidate_units = 0.01;
  // Encrypting one publication / subscription client-side (matrix-vector
  // products) -- only exercised by the workload pre-encryption pipeline.
  double aspe_encrypt_units_per_d2 = 0.5;

  // --- operator overheads --------------------------------------------------
  // AP: hashing + routing one subscription, or fanning one publication out
  // to one M slice (per target).
  double ap_route_units = 8.0;
  // M: fixed per-publication overhead on top of the per-subscription match.
  double m_fixed_units = 20.0;
  // EP: merging one matching-subscriber identifier into the pending list.
  double ep_merge_units_per_id = 0.15;
  // EP: fixed per-partial-list overhead.
  double ep_list_units = 5.0;
  // Preparing + sending one notification batch (per subscriber notified).
  double ep_notify_units_per_id = 0.6;

  // --- state & migration ---------------------------------------------------
  // Serializing / deserializing slice state, per byte (RW-locked work).
  double state_serialize_units_per_byte = 0.005;
  double state_deserialize_units_per_byte = 0.005;
  // Instantiating an operator-slice replica before state transfer (runtime
  // setup + filtering-library initialization). Dominates the fixed part of
  // M-slice migration time (Table I's sublinear growth in state size).
  double m_replica_init_units = 1.0e6;     // ~1 s
  double generic_replica_init_units = 5e4;  // ~50 ms for AP / EP

  // --- sizes (bytes) -------------------------------------------------------
  std::size_t pub_bytes_per_attribute = 2 * 8 * 8;  // 2 split (d+3)-vectors
  std::size_t sub_bytes_per_attribute = 4 * 8 * 8;  // 2 bounds x 2 vectors
  std::size_t event_header_bytes = 48;
  std::size_t matched_id_bytes = 8;

  [[nodiscard]] double aspe_match_units(std::size_t dimensions) const {
    const auto d = static_cast<double>(dimensions);
    return aspe_match_units_per_d2 * d * d;
  }
  // Batched match estimation. Batching is a wall-clock optimization of the
  // real kernels only: a batch of `batch` publications tested against
  // `stored` subscriptions is charged exactly `batch` times the scalar
  // estimate, so simulated CPU work -- and with it every elasticity
  // decision and throughput/delay curve -- is invariant in the batch size.
  [[nodiscard]] double plain_match_units_batch(std::size_t stored,
                                              std::size_t batch) const {
    return plain_match_units * static_cast<double>(stored) *
           static_cast<double>(batch);
  }
  [[nodiscard]] double aspe_match_units_batch(std::size_t dimensions,
                                              std::size_t stored,
                                              std::size_t batch) const {
    return aspe_match_units(dimensions) * static_cast<double>(stored) *
           static_cast<double>(batch);
  }
  [[nodiscard]] double aspe_encrypt_units(std::size_t dimensions) const {
    const auto d = static_cast<double>(dimensions);
    return aspe_encrypt_units_per_d2 * d * d;
  }
  [[nodiscard]] std::size_t publication_bytes(std::size_t dimensions) const {
    return event_header_bytes + dimensions * pub_bytes_per_attribute;
  }
  [[nodiscard]] std::size_t subscription_bytes(std::size_t dimensions) const {
    return event_header_bytes + dimensions * sub_bytes_per_attribute;
  }
};

}  // namespace esh::cluster
