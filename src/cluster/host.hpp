// Emulated host: a fixed number of cores executing submitted jobs on the
// simulated clock. Reproduces the STREAMMINE3G execution model (paper
// §III): each host runs a thread pool sized to its cores; a slice's
// read-locked work (e.g. matching) can occupy several cores in parallel,
// while read/write-locked work (e.g. subscription insertion, state
// serialization) is exclusive per slice.
//
// CPU utilization emerges from accounting of busy core-time, which feeds
// the probes consumed by the elasticity enforcer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <unordered_map>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace esh::cluster {

// Synchronization mode of a job with respect to its slice's state,
// mirroring STREAMMINE3G's R / R/W slice locks.
enum class LockMode {
  kNone,   // no slice state touched; never serialized
  kRead,   // shared: concurrent with other kRead jobs of the same slice
  kWrite,  // exclusive: waits for all jobs of the slice, blocks all others
};

struct HostSpec {
  int cores = 8;
  // Work units one core executes per second. With the default, one unit is
  // one microsecond of reference-core time.
  double units_per_second = 1e6;
};

class Host {
 public:
  Host(sim::Simulator& simulator, HostId id, HostSpec spec = {});
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] HostId id() const { return id_; }
  [[nodiscard]] const HostSpec& spec() const { return spec_; }

  // Submits a job costing `cost_units` of single-core work, belonging to
  // `slice` (which scopes the lock), to run when a core and the lock are
  // available. Jobs of the same slice dispatch in submission order.
  // `on_complete` runs when the job finishes. Use SliceId::invalid() with
  // LockMode::kNone for slice-less work.
  void submit(SliceId slice, LockMode mode, double cost_units,
              std::function<void()> on_complete);

  // Total busy core-microseconds since construction (monotone).
  [[nodiscard]] double busy_core_us() const { return busy_core_us_; }

  // Busy core-microseconds attributed to one slice.
  [[nodiscard]] double slice_busy_core_us(SliceId slice) const;

  // Utilization (0..1) over a window ending now, given the busy counter
  // sampled at the window start. Includes partially-finished running jobs.
  [[nodiscard]] double utilization(double busy_at_window_start_us,
                                   SimDuration window) const;

  // Busy counter including the elapsed part of currently-running jobs;
  // use this to sample utilization windows.
  [[nodiscard]] double busy_core_us_now() const;
  [[nodiscard]] double slice_busy_core_us_now(SliceId slice) const;

  [[nodiscard]] int running_jobs() const { return running_jobs_; }
  [[nodiscard]] std::size_t queued_jobs() const { return queued_jobs_; }

  // Removes per-slice accounting after a slice migrates away. Requires the
  // slice to have no queued or running jobs.
  void forget_slice(SliceId slice);

  [[nodiscard]] bool has_pending_work(SliceId slice) const;

 private:
  struct Job {
    SliceId slice;
    LockMode mode;
    double cost_units;
    std::function<void()> on_complete;
  };

  struct SliceSched {
    std::deque<Job> queue;
    int running_read = 0;
    bool running_write = false;
    double busy_core_us = 0.0;
    double running_started_units = 0.0;  // helper for live accounting
  };

  void dispatch();
  bool try_dispatch_slice(SliceId slice, SliceSched& sched);
  void start_job(SliceId slice, Job job);
  [[nodiscard]] SimDuration job_duration(double cost_units) const;

  sim::Simulator& simulator_;
  HostId id_;
  HostSpec spec_;
  int free_cores_;
  int running_jobs_ = 0;
  std::size_t queued_jobs_ = 0;
  double busy_core_us_ = 0.0;
  std::unordered_map<SliceId, SliceSched> slices_;
  // Round-robin order of slices with queued work (no duplicates).
  std::list<SliceId> ready_;
  std::unordered_map<SliceId, bool> in_ready_;
  // Live accounting of running jobs: (start time, cost) per running job id.
  std::unordered_map<std::uint64_t, std::pair<SimTime, SliceId>> running_;
  std::unordered_map<std::uint64_t, double> running_cost_;
  std::uint64_t next_job_id_ = 1;
};

}  // namespace esh::cluster
