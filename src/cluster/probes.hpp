// Probe records exchanged between hosts and the manager (paper §IV-B):
// per-slice CPU, memory, and network usage, aggregated per slice and per
// host, shipped via heartbeats.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace esh::cluster {

struct SliceProbe {
  SliceId slice;
  OperatorId op;
  // CPU consumed by the slice over the probe window, as a fraction of the
  // *whole host's* capacity (0..1): the weight used for bin packing.
  double cpu = 0.0;
  // Resident state size (bytes): the migration-cost signal minimized by
  // slice selection.
  std::size_t state_bytes = 0;
  // Bytes sent by this slice during the window.
  std::size_t net_bytes = 0;
};

struct HostProbe {
  HostId host;
  SimTime window_start{};
  SimTime window_end{};
  // Host CPU utilization over the window (0..1), all slices plus runtime.
  double cpu = 0.0;
  std::vector<SliceProbe> slices;
};

// One complete round of probes covering every active engine host.
struct ProbeSet {
  SimTime time{};
  std::vector<HostProbe> hosts;
};

}  // namespace esh::cluster
