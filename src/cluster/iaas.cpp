#include "cluster/iaas.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"

namespace esh::cluster {

IaasPool::IaasPool(sim::Simulator& simulator, IaasConfig config)
    : simulator_(simulator), config_(config) {
  if (config_.max_hosts == 0) {
    throw std::invalid_argument{"IaasPool: max_hosts must be > 0"};
  }
}

HostId IaasPool::allocate(std::function<void(Host&)> ready) {
  if (active_.size() >= config_.max_hosts) {
    throw std::runtime_error{"IaasPool: pool exhausted"};
  }
  const HostId id{next_host_++};
  hosts_[id] = std::make_unique<Host>(simulator_, id, config_.host_spec);
  booted_[id] = false;
  active_.push_back(id);
  // Allocate/release balance: the three membership structures move in
  // lockstep, and the pool never exceeds its configured capacity.
  ESH_INVARIANT("cluster", "iaas-allocate-balanced",
                active_.size() <= config_.max_hosts &&
                    hosts_.size() == active_.size() &&
                    booted_.size() == active_.size(),
                ::esh::contracts::Detail{}
                    .host(id)
                    .expected(active_.size())
                    .actual(hosts_.size())
                    .note("active/hosts/booted sizes diverged"));
  record_count();
  simulator_.schedule(config_.boot_delay,
                      [this, id, ready = std::move(ready)] {
                        auto it = hosts_.find(id);
                        if (it == hosts_.end()) return;  // released pre-boot
                        booted_[id] = true;
                        if (ready) ready(*it->second);
                      });
  return id;
}

void IaasPool::release(HostId id) {
  auto it = hosts_.find(id);
  if (it == hosts_.end()) {
    // Distinguish a double release (the id was allocated, then already
    // given back) from a never-allocated id; both remain logic_errors in
    // default builds, but checked builds report the structured payload.
    ESH_PRECONDITION("cluster", "iaas-no-double-release",
                     id.value() >= next_host_,
                     ::esh::contracts::Detail{}
                         .host(id)
                         .expected("an active host")
                         .actual("already released"));
    throw std::logic_error{"IaasPool::release: unknown host"};
  }
  if (it->second->running_jobs() > 0 || it->second->queued_jobs() > 0) {
    throw std::logic_error{"IaasPool::release: host still busy"};
  }
  hosts_.erase(it);
  booted_.erase(id);
  active_.erase(std::remove(active_.begin(), active_.end(), id),
                active_.end());
  ESH_INVARIANT("cluster", "iaas-release-balanced",
                hosts_.size() == active_.size() &&
                    booted_.size() == active_.size(),
                ::esh::contracts::Detail{}
                    .host(id)
                    .expected(active_.size())
                    .actual(hosts_.size())
                    .note("active/hosts/booted sizes diverged"));
  record_count();
}

Host& IaasPool::host(HostId id) {
  auto it = hosts_.find(id);
  if (it == hosts_.end()) {
    throw std::logic_error{"IaasPool::host: unknown host"};
  }
  return *it->second;
}

const Host& IaasPool::host(HostId id) const {
  auto it = hosts_.find(id);
  if (it == hosts_.end()) {
    throw std::logic_error{"IaasPool::host: unknown host"};
  }
  return *it->second;
}

bool IaasPool::active(HostId id) const { return hosts_.contains(id); }

std::vector<HostId> IaasPool::active_hosts() const { return active_; }

void IaasPool::record_count() {
  count_history_.push_back(CountSample{simulator_.now(), active_.size()});
}

}  // namespace esh::cluster
