#include "cluster/iaas.hpp"

#include <algorithm>
#include <stdexcept>

namespace esh::cluster {

IaasPool::IaasPool(sim::Simulator& simulator, IaasConfig config)
    : simulator_(simulator), config_(config) {
  if (config_.max_hosts == 0) {
    throw std::invalid_argument{"IaasPool: max_hosts must be > 0"};
  }
}

HostId IaasPool::allocate(std::function<void(Host&)> ready) {
  if (active_.size() >= config_.max_hosts) {
    throw std::runtime_error{"IaasPool: pool exhausted"};
  }
  const HostId id{next_host_++};
  hosts_[id] = std::make_unique<Host>(simulator_, id, config_.host_spec);
  booted_[id] = false;
  active_.push_back(id);
  record_count();
  simulator_.schedule(config_.boot_delay,
                      [this, id, ready = std::move(ready)] {
                        auto it = hosts_.find(id);
                        if (it == hosts_.end()) return;  // released pre-boot
                        booted_[id] = true;
                        if (ready) ready(*it->second);
                      });
  return id;
}

void IaasPool::release(HostId id) {
  auto it = hosts_.find(id);
  if (it == hosts_.end()) {
    throw std::logic_error{"IaasPool::release: unknown host"};
  }
  if (it->second->running_jobs() > 0 || it->second->queued_jobs() > 0) {
    throw std::logic_error{"IaasPool::release: host still busy"};
  }
  hosts_.erase(it);
  booted_.erase(id);
  active_.erase(std::remove(active_.begin(), active_.end(), id),
                active_.end());
  record_count();
}

Host& IaasPool::host(HostId id) {
  auto it = hosts_.find(id);
  if (it == hosts_.end()) {
    throw std::logic_error{"IaasPool::host: unknown host"};
  }
  return *it->second;
}

const Host& IaasPool::host(HostId id) const {
  auto it = hosts_.find(id);
  if (it == hosts_.end()) {
    throw std::logic_error{"IaasPool::host: unknown host"};
  }
  return *it->second;
}

bool IaasPool::active(HostId id) const { return hosts_.contains(id); }

std::vector<HostId> IaasPool::active_hosts() const { return active_; }

void IaasPool::record_count() {
  count_history_.push_back(CountSample{simulator_.now(), active_.size()});
}

}  // namespace esh::cluster
