#include "cluster/host.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"

namespace esh::cluster {

Host::Host(sim::Simulator& simulator, HostId id, HostSpec spec)
    : simulator_(simulator), id_(id), spec_(spec), free_cores_(spec.cores) {
  if (spec.cores <= 0 || spec.units_per_second <= 0.0) {
    throw std::invalid_argument{"Host: cores and capacity must be positive"};
  }
}

void Host::submit(SliceId slice, LockMode mode, double cost_units,
                  std::function<void()> on_complete) {
  if (cost_units < 0.0) {
    throw std::invalid_argument{"Host::submit: negative cost"};
  }
  auto& sched = slices_[slice];
  sched.queue.push_back(Job{slice, mode, cost_units, std::move(on_complete)});
  ++queued_jobs_;
  if (!in_ready_[slice]) {
    ready_.push_back(slice);
    in_ready_[slice] = true;
  }
  dispatch();
}

void Host::dispatch() {
  // Fair round-robin over slices with queued work: after a slice receives
  // a core it moves to the back of the ready list, so slices sharing a
  // host progress at the same rate (vital for the EP operator, which
  // awaits the *slowest* M slice's partial list for every publication).
  // A slice whose head job is blocked by its lock is skipped in place.
  while (free_cores_ > 0 && !ready_.empty()) {
    bool dispatched = false;
    for (auto it = ready_.begin(); it != ready_.end();) {
      const SliceId slice = *it;
      auto& sched = slices_[slice];
      if (sched.queue.empty()) {
        in_ready_[slice] = false;
        it = ready_.erase(it);
        continue;
      }
      if (!try_dispatch_slice(slice, sched)) {
        ++it;  // blocked by its slice lock; keep its turn position
        continue;
      }
      dispatched = true;
      if (sched.queue.empty()) {
        in_ready_[slice] = false;
        ready_.erase(it);
      } else {
        // Move to the back: next core goes to a sibling slice first.
        ready_.splice(ready_.end(), ready_, it);
      }
      break;  // rescan from the front with the updated order
    }
    if (!dispatched) break;
  }
}

bool Host::try_dispatch_slice(SliceId slice, SliceSched& sched) {
  const Job& head = sched.queue.front();
  switch (head.mode) {
    case LockMode::kNone:
      break;
    case LockMode::kRead:
      if (sched.running_write) return false;
      break;
    case LockMode::kWrite:
      if (sched.running_write || sched.running_read > 0) return false;
      break;
  }
  ESH_INVARIANT("cluster", "queued-jobs-accounting", queued_jobs_ > 0,
                ::esh::contracts::Detail{}
                    .host(id_)
                    .slice(slice)
                    .expected("queued_jobs > 0")
                    .actual(queued_jobs_));
  Job job = std::move(sched.queue.front());
  sched.queue.pop_front();
  --queued_jobs_;
  if (job.mode == LockMode::kRead) ++sched.running_read;
  if (job.mode == LockMode::kWrite) sched.running_write = true;
  start_job(slice, std::move(job));
  return true;
}

SimDuration Host::job_duration(double cost_units) const {
  const double us = cost_units * 1e6 / spec_.units_per_second;
  return micros(static_cast<std::int64_t>(us));
}

void Host::start_job(SliceId slice, Job job) {
  // Core capacity never goes negative: dispatch() only starts jobs while
  // free_cores_ > 0, so the decrement below cannot underflow.
  ESH_INVARIANT("cluster", "core-capacity-nonnegative", free_cores_ > 0,
                ::esh::contracts::Detail{}
                    .host(id_)
                    .slice(slice)
                    .expected("free_cores > 0")
                    .actual(free_cores_));
  --free_cores_;
  ++running_jobs_;
  const std::uint64_t job_id = next_job_id_++;
  const SimDuration duration = job_duration(job.cost_units);
  running_[job_id] = {simulator_.now(), slice};
  running_cost_[job_id] =
      static_cast<double>(duration.count());  // busy core-us of this job
  const LockMode mode = job.mode;
  simulator_.schedule(
      duration,
      [this, job_id, slice, mode, on_complete = std::move(job.on_complete),
       duration]() mutable {
        ++free_cores_;
        --running_jobs_;
        ESH_INVARIANT("cluster", "core-capacity-bounded",
                      free_cores_ <= spec_.cores,
                      ::esh::contracts::Detail{}
                          .host(id_)
                          .expected(spec_.cores)
                          .actual(free_cores_)
                          .note("job completion released a core twice"));
        running_.erase(job_id);
        running_cost_.erase(job_id);
        auto& sched = slices_[slice];
        if (mode == LockMode::kRead) --sched.running_read;
        if (mode == LockMode::kWrite) sched.running_write = false;
        const auto busy = static_cast<double>(duration.count());
        busy_core_us_ += busy;
        sched.busy_core_us += busy;
        // Completion may submit follow-up work; dispatch first so freed
        // capacity is reused before the callback's submissions queue up.
        dispatch();
        if (on_complete) on_complete();
        dispatch();
      });
}

double Host::slice_busy_core_us(SliceId slice) const {
  auto it = slices_.find(slice);
  return it == slices_.end() ? 0.0 : it->second.busy_core_us;
}

double Host::busy_core_us_now() const {
  double busy = busy_core_us_;
  const SimTime now = simulator_.now();
  // lint:allow(unordered-iteration): order-free sum
  for (const auto& [job_id, entry] : running_) {
    busy += static_cast<double>((now - entry.first).count());
  }
  return busy;
}

double Host::slice_busy_core_us_now(SliceId slice) const {
  double busy = slice_busy_core_us(slice);
  const SimTime now = simulator_.now();
  // lint:allow(unordered-iteration): order-free sum
  for (const auto& [job_id, entry] : running_) {
    if (entry.second == slice) {
      busy += static_cast<double>((now - entry.first).count());
    }
  }
  return busy;
}

double Host::utilization(double busy_at_window_start_us,
                         SimDuration window) const {
  if (window <= SimDuration::zero()) return 0.0;
  const double busy = busy_core_us_now() - busy_at_window_start_us;
  const double capacity = static_cast<double>(spec_.cores) *
                          static_cast<double>(window.count());
  return std::clamp(busy / capacity, 0.0, 1.0);
}

void Host::forget_slice(SliceId slice) {
  auto it = slices_.find(slice);
  if (it == slices_.end()) return;
  if (!it->second.queue.empty() || it->second.running_read > 0 ||
      it->second.running_write) {
    throw std::logic_error{"Host::forget_slice: slice still has work"};
  }
  slices_.erase(it);
  in_ready_.erase(slice);
  ready_.remove(slice);
}

bool Host::has_pending_work(SliceId slice) const {
  auto it = slices_.find(slice);
  if (it == slices_.end()) return false;
  if (!it->second.queue.empty() || it->second.running_read > 0 ||
      it->second.running_write) {
    return true;
  }
  // lint:allow(unordered-iteration): order-free any-of scan
  for (const auto& [job_id, entry] : running_) {
    if (entry.second == slice) return true;
  }
  return false;
}

}  // namespace esh::cluster
