// IaaS-style host pool: the elasticity manager requests and releases hosts
// through this interface, mirroring how an elastic application interacts
// with the VM allocation APIs of an IaaS elasticity manager (paper §II-A).
// Allocation has a boot delay; released hosts must be idle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/host.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace esh::cluster {

struct IaasConfig {
  std::size_t max_hosts = 30;  // the paper's private cloud size
  HostSpec host_spec{};
  SimDuration boot_delay = seconds(2);
};

class IaasPool {
 public:
  IaasPool(sim::Simulator& simulator, IaasConfig config = {});

  // Requests a host. `ready` fires after the boot delay with the host
  // usable. Throws std::runtime_error when the pool is exhausted.
  HostId allocate(std::function<void(Host&)> ready);

  // Releases a host back to the pool. The host must exist and be active.
  void release(HostId id);

  [[nodiscard]] Host& host(HostId id);
  [[nodiscard]] const Host& host(HostId id) const;
  [[nodiscard]] bool active(HostId id) const;
  [[nodiscard]] std::size_t active_count() const { return active_.size(); }
  [[nodiscard]] std::vector<HostId> active_hosts() const;

  // Active-host count sampled whenever it changes; feeds the host-count
  // plots of Figures 8 and 9.
  struct CountSample {
    SimTime time{};
    std::size_t count = 0;
  };
  [[nodiscard]] const std::vector<CountSample>& count_history() const {
    return count_history_;
  }

  [[nodiscard]] const IaasConfig& config() const { return config_; }

 private:
  void record_count();

  sim::Simulator& simulator_;
  IaasConfig config_;
  std::uint64_t next_host_ = 1;
  std::unordered_map<HostId, std::unique_ptr<Host>> hosts_;
  std::unordered_map<HostId, bool> booted_;
  std::vector<HostId> active_;
  std::vector<CountSample> count_history_;
};

}  // namespace esh::cluster
