#include "elastic/enforcer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace esh::elastic {

double SystemView::average_cpu() const {
  if (hosts.empty()) return 0.0;
  return total_cpu() / static_cast<double>(hosts.size());
}

double SystemView::total_cpu() const {
  double total = 0.0;
  for (const HostView& h : hosts) total += h.cpu;
  return total;
}

const char* to_string(MigrationPlan::Reason r) {
  switch (r) {
    case MigrationPlan::Reason::kNone:
      return "none";
    case MigrationPlan::Reason::kScaleOut:
      return "scale-out";
    case MigrationPlan::Reason::kScaleIn:
      return "scale-in";
    case MigrationPlan::Reason::kLocalHigh:
      return "local-high";
    case MigrationPlan::Reason::kLocalLow:
      return "local-low";
    case MigrationPlan::Reason::kHotspotSplit:
      return "hotspot-split";
    case MigrationPlan::Reason::kColdMerge:
      return "cold-merge";
  }
  return "?";
}

engine::MigrationStrategyKind select_strategy(const PolicyConfig& policy,
                                              std::size_t state_bytes,
                                              double cpu) {
  if (state_bytes <= policy.strategy_small_state_bytes) {
    return engine::MigrationStrategyKind::kStopAndRestart;
  }
  if (cpu >= policy.strategy_hot_cpu) {
    return engine::MigrationStrategyKind::kIncrementalPrecopy;
  }
  return engine::MigrationStrategyKind::kBufferedReplay;
}

std::vector<std::size_t> select_slices_min_state(
    const std::vector<SliceView>& slices, double required_cpu) {
  if (slices.empty() || required_cpu <= 0.0) return {};

  // Discretize CPU weights to permille for the DP (pseudo-polynomial
  // subset sum, paper [24]).
  std::vector<std::uint32_t> weight(slices.size());
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    weight[i] = static_cast<std::uint32_t>(
        std::lround(std::max(0.0, slices[i].cpu) * 1000.0));
    total += weight[i];
  }
  const auto required = static_cast<std::uint32_t>(
      std::lround(required_cpu * 1000.0));
  if (total <= required) {
    // Everything must move.
    std::vector<std::size_t> all(slices.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }

  // dp[s] = minimal summed state bytes over subsets with weight exactly s.
  // Each state carries the subset itself as a bitmask (few dozen slices per
  // host in practice), making reconstruction trivially correct.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t words = (slices.size() + 63) / 64;
  std::vector<double> dp(total + 1, kInf);
  std::vector<std::uint64_t> mask((total + 1) * words, 0);
  dp[0] = 0.0;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const std::uint32_t w = weight[i];
    const auto bytes = static_cast<double>(slices[i].state_bytes);
    for (std::uint32_t s = total; s + 1 > w; --s) {
      const std::uint32_t from = s - w;
      if (dp[from] == kInf) continue;
      const double candidate = dp[from] + bytes;
      if (candidate < dp[s]) {
        dp[s] = candidate;
        for (std::size_t word = 0; word < words; ++word) {
          mask[s * words + word] = mask[from * words + word];
        }
        mask[s * words + i / 64] |= std::uint64_t{1} << (i % 64);
      }
    }
  }

  // Among all achievable sums >= required, pick minimal state transfer;
  // ties break toward the smaller sum (less load displaced).
  std::uint32_t best_sum = 0;
  double best_bytes = kInf;
  for (std::uint32_t s = required; s <= total; ++s) {
    if (dp[s] < best_bytes) {
      best_bytes = dp[s];
      best_sum = s;
    }
  }
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    if ((mask[best_sum * words + i / 64] >> (i % 64)) & 1u) {
      chosen.push_back(i);
    }
  }
  return chosen;
}

std::vector<MigrationPlan::Move> first_fit_place(
    std::vector<SliceView> moving, std::vector<HostView> bins, double cap,
    std::size_t extra_bins, std::size_t* bins_used) {
  // First Fit Decreasing: heaviest slices first (paper §V, [12]).
  std::sort(moving.begin(), moving.end(),
            [](const SliceView& a, const SliceView& b) {
              if (a.cpu != b.cpu) return a.cpu > b.cpu;
              return a.slice < b.slice;
            });
  std::vector<double> new_bin_load(extra_bins, 0.0);
  std::vector<MigrationPlan::Move> moves;
  moves.reserve(moving.size());
  for (const SliceView& slice : moving) {
    bool placed = false;
    for (HostView& bin : bins) {
      if (bin.cpu + slice.cpu <= cap) {
        bin.cpu += slice.cpu;
        moves.push_back(MigrationPlan::Move{slice.slice, bin.host, {}});
        placed = true;
        break;
      }
    }
    if (placed) continue;
    for (std::size_t i = 0; i < new_bin_load.size(); ++i) {
      if (new_bin_load[i] + slice.cpu <= cap) {
        new_bin_load[i] += slice.cpu;
        moves.push_back(MigrationPlan::Move{slice.slice, HostId{}, i});
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Automatic allocation: open one more bin (paper: the enforcer
      // derives allocation decisions when spare capacity is insufficient).
      new_bin_load.push_back(slice.cpu);
      moves.push_back(
          MigrationPlan::Move{slice.slice, HostId{}, new_bin_load.size() - 1});
    }
  }
  if (bins_used != nullptr) {
    std::size_t used = 0;
    for (double load : new_bin_load) {
      if (load > 0.0) ++used;
    }
    *bins_used = used;
  }
  return moves;
}

Enforcer::Enforcer(PolicyConfig config) : config_(config) {
  if (!(config_.global_low < config_.target &&
        config_.target <= config_.global_high)) {
    throw std::invalid_argument{"PolicyConfig: need low < target <= high"};
  }
}

MigrationPlan Enforcer::evaluate(const SystemView& view) {
  MigrationPlan plan;
  if (view.hosts.empty()) return plan;
  const double avg = view.average_cpu();
  // Load increases are addressed at a faster cadence than scale-in (which
  // waits out the full grace period for stability): both a violated global
  // high watermark and an individual overloaded host are urgent.
  bool host_overloaded = false;
  for (const HostView& host : view.hosts) {
    if (host.cpu > config_.local_high) host_overloaded = true;
  }
  bool slice_hot = false;
  if (config_.enable_splits) {
    for (const SliceView& s : view.slices) {
      if (s.splittable && s.cpu >= config_.split_share) slice_hot = true;
    }
  }
  const SimDuration required_gap =
      (avg > config_.global_high || host_overloaded || slice_hot)
          ? config_.scale_out_grace
          : config_.grace;
  if (acted_once_ && view.time - last_action_ < required_gap) return plan;

  // A single-slice hotspot is the one load pattern whole-slice migration
  // cannot dilute: moving the slice moves the hotspot. Splitting its key
  // coverage halves it, so the split rule outranks every placement rule.
  if (slice_hot) plan = hotspot_split(view);
  if (plan.empty()) {
    if (avg > config_.global_high) {
      plan = scale_out(view);
    } else if (avg < config_.global_low &&
               view.hosts.size() > config_.min_hosts) {
      plan = scale_in(view);
    } else {
      // Local rules apply only when no global rule is violated (paper §V).
      plan = local_rebalance(view);
    }
  }
  // Merging back is pure consolidation: considered only when everything
  // else is quiet, under the slow (scale-in) grace.
  if (plan.empty() && config_.enable_splits) plan = cold_merge(view);
  if (!plan.empty()) {
    // Stamp each move with its protocol choice and the view signals it was
    // derived from; the manager re-derives the choice from those recorded
    // signals before executing (strategy-selection-deterministic).
    for (MigrationPlan::Move& mv : plan.moves) {
      for (const SliceView& s : view.slices) {
        if (s.slice == mv.slice) {
          mv.state_bytes = s.state_bytes;
          mv.cpu = s.cpu;
        }
      }
      mv.strategy = select_strategy(config_, mv.state_bytes, mv.cpu);
    }
    last_action_ = view.time;
    acted_once_ = true;
  }
  return plan;
}

MigrationPlan Enforcer::scale_out(const SystemView& view) const {
  MigrationPlan plan;
  plan.reason = MigrationPlan::Reason::kScaleOut;

  // Step 0: how many hosts short are we for an average at `target`?
  const double total = view.total_cpu();
  const auto needed = static_cast<std::size_t>(
      std::ceil(total / config_.target));
  const std::size_t extra =
      needed > view.hosts.size() ? needed - view.hosts.size() : 1;

  // Step 1: per overloaded host, pick the slices to evict via subset sum,
  // minimizing state transfer (paper §V).
  std::unordered_map<HostId, std::vector<SliceView>> by_host;
  for (const SliceView& s : view.slices) by_host[s.host].push_back(s);

  std::vector<SliceView> moving;
  for (const HostView& host : view.hosts) {
    const double excess = host.cpu - config_.target;
    if (excess <= 0.0) continue;
    auto it = by_host.find(host.host);
    if (it == by_host.end()) continue;
    const auto chosen = select_slices_min_state(it->second, excess);
    for (std::size_t idx : chosen) moving.push_back(it->second[idx]);
  }
  if (moving.empty()) return MigrationPlan{};

  // Step 2: First Fit Decreasing over remaining capacity + new hosts.
  std::vector<HostView> bins;
  for (const HostView& host : view.hosts) {
    double load = host.cpu;
    // Remove the load of the slices that are leaving this host.
    for (const SliceView& s : moving) {
      if (s.host == host.host) load -= s.cpu;
    }
    bins.push_back(HostView{host.host, std::max(0.0, load)});
  }
  // Prefer filling new hosts during scale-out: place new bins by marking
  // existing bins as inspected after new ones? The paper assigns to hosts in
  // decreasing order of CPU utilization; sort bins accordingly.
  std::sort(bins.begin(), bins.end(), [](const HostView& a, const HostView& b) {
    if (a.cpu != b.cpu) return a.cpu > b.cpu;
    return a.host < b.host;
  });
  std::size_t bins_used = 0;
  plan.moves = first_fit_place(std::move(moving), std::move(bins),
                               config_.placement_cap, extra, &bins_used);
  plan.new_hosts = bins_used;
  if (plan.moves.empty()) return MigrationPlan{};
  return plan;
}

MigrationPlan Enforcer::scale_in(const SystemView& view) const {
  MigrationPlan plan;
  plan.reason = MigrationPlan::Reason::kScaleIn;

  const double total = view.total_cpu();
  auto target_hosts = static_cast<std::size_t>(
      std::ceil(std::max(1.0, total / config_.target)));
  target_hosts = std::max(target_hosts, config_.min_hosts);
  if (target_hosts >= view.hosts.size()) return MigrationPlan{};
  std::size_t to_release = view.hosts.size() - target_hosts;

  std::unordered_map<HostId, std::vector<SliceView>> by_host;
  for (const SliceView& s : view.slices) by_host[s.host].push_back(s);

  // Release the least-loaded hosts first, re-dispatching their slices onto
  // the remaining hosts (paper §V).
  std::vector<HostView> by_load = view.hosts;
  std::sort(by_load.begin(), by_load.end(),
            [](const HostView& a, const HostView& b) {
              if (a.cpu != b.cpu) return a.cpu < b.cpu;
              return a.host < b.host;
            });

  std::vector<HostView> bins(by_load.begin() + static_cast<std::ptrdiff_t>(
                                                   to_release),
                             by_load.end());
  // Bins in decreasing utilization for First Fit.
  std::sort(bins.begin(), bins.end(), [](const HostView& a, const HostView& b) {
    if (a.cpu != b.cpu) return a.cpu > b.cpu;
    return a.host < b.host;
  });

  for (std::size_t r = 0; r < to_release; ++r) {
    const HostId victim = by_load[r].host;
    std::vector<SliceView> moving = by_host[victim];
    std::size_t bins_used = 0;
    auto moves =
        first_fit_place(std::move(moving), bins, config_.placement_cap,
                        /*extra_bins=*/0, &bins_used);
    // Releasing must not allocate: if anything spilled to a new bin, this
    // host cannot be emptied; stop releasing further hosts.
    bool spilled = false;
    for (const auto& mv : moves) {
      if (mv.new_host_index.has_value()) spilled = true;
    }
    if (spilled) break;
    // Commit: update bin loads and the plan.
    for (const auto& mv : moves) {
      for (HostView& bin : bins) {
        if (bin.host == mv.dst) {
          for (const SliceView& s : by_host[victim]) {
            if (s.slice == mv.slice) bin.cpu += s.cpu;
          }
        }
      }
    }
    plan.moves.insert(plan.moves.end(), moves.begin(), moves.end());
    plan.releases.push_back(victim);
  }
  if (plan.releases.empty()) return MigrationPlan{};
  return plan;
}

MigrationPlan Enforcer::hotspot_split(const SystemView& view) const {
  // Split the hottest qualifying slice; one split per plan, the grace
  // period paces successive refinements. The child goes to the least
  // loaded host so the freed half of the load lands on spare capacity.
  const SliceView* hottest = nullptr;
  for (const SliceView& s : view.slices) {
    if (!s.splittable || s.cpu < config_.split_share) continue;
    if (hottest == nullptr || s.cpu > hottest->cpu ||
        (s.cpu == hottest->cpu && s.slice < hottest->slice)) {
      hottest = &s;
    }
  }
  if (hottest == nullptr) return MigrationPlan{};
  const HostView* coldest = nullptr;
  for (const HostView& host : view.hosts) {
    if (coldest == nullptr || host.cpu < coldest->cpu ||
        (host.cpu == coldest->cpu && host.host < coldest->host)) {
      coldest = &host;
    }
  }
  MigrationPlan plan;
  plan.reason = MigrationPlan::Reason::kHotspotSplit;
  plan.splits.push_back(MigrationPlan::Split{hottest->slice, coldest->host});
  return plan;
}

MigrationPlan Enforcer::cold_merge(const SystemView& view) const {
  // Fold the coldest sibling pair back together. Requiring the combined
  // load to stay clear of split_share (hysteresis) prevents a merge from
  // immediately re-arming the split rule.
  const SliceView* best = nullptr;
  double best_combined = 0.0;
  for (const SliceView& s : view.slices) {
    if (!s.merge_sibling) continue;
    const SliceView* sibling = nullptr;
    for (const SliceView& other : view.slices) {
      if (other.slice == *s.merge_sibling) sibling = &other;
    }
    if (sibling == nullptr) continue;  // sibling probe missing this round
    const double combined = s.cpu + sibling->cpu;
    if (combined >= config_.merge_share) continue;
    if (best == nullptr || combined < best_combined ||
        (combined == best_combined && s.slice < best->slice)) {
      best = &s;
      best_combined = combined;
    }
  }
  if (best == nullptr) return MigrationPlan{};
  MigrationPlan plan;
  plan.reason = MigrationPlan::Reason::kColdMerge;
  plan.merges.push_back(MigrationPlan::Merge{best->slice, *best->merge_sibling});
  return plan;
}

MigrationPlan Enforcer::local_rebalance(const SystemView& view) const {
  std::unordered_map<HostId, std::vector<SliceView>> by_host;
  for (const SliceView& s : view.slices) by_host[s.host].push_back(s);

  // Overloaded host: evict enough load to return to target, onto existing
  // hosts (allocating only if nothing fits).
  for (const HostView& host : view.hosts) {
    if (host.cpu <= config_.local_high) continue;
    const double excess = host.cpu - config_.target;
    const auto& local = by_host[host.host];
    const auto chosen = select_slices_min_state(local, excess);
    if (chosen.empty()) continue;
    std::vector<SliceView> moving;
    for (std::size_t idx : chosen) moving.push_back(local[idx]);

    std::vector<HostView> bins;
    for (const HostView& other : view.hosts) {
      if (other.host != host.host) bins.push_back(other);
    }
    std::sort(bins.begin(), bins.end(),
              [](const HostView& a, const HostView& b) {
                if (a.cpu != b.cpu) return a.cpu > b.cpu;
                return a.host < b.host;
              });
    MigrationPlan plan;
    plan.reason = MigrationPlan::Reason::kLocalHigh;
    std::size_t bins_used = 0;
    plan.moves = first_fit_place(std::move(moving), std::move(bins),
                                 config_.placement_cap, 0, &bins_used);
    plan.new_hosts = 0;
    for (auto& mv : plan.moves) {
      if (mv.new_host_index.has_value()) {
        plan.new_hosts = std::max(plan.new_hosts, *mv.new_host_index + 1);
      }
    }
    if (!plan.moves.empty()) return plan;
  }

  // Underloaded host (and more hosts than the minimum): try to empty it.
  if (view.hosts.size() > config_.min_hosts) {
    for (const HostView& host : view.hosts) {
      if (host.cpu >= config_.local_low) continue;
      std::vector<SliceView> moving = by_host[host.host];
      std::vector<HostView> bins;
      for (const HostView& other : view.hosts) {
        if (other.host != host.host) bins.push_back(other);
      }
      std::sort(bins.begin(), bins.end(),
                [](const HostView& a, const HostView& b) {
                  if (a.cpu != b.cpu) return a.cpu > b.cpu;
                  return a.host < b.host;
                });
      std::size_t bins_used = 0;
      auto moves = first_fit_place(std::move(moving), std::move(bins),
                                   config_.placement_cap, 0, &bins_used);
      bool spilled = false;
      for (const auto& mv : moves) {
        if (mv.new_host_index.has_value()) spilled = true;
      }
      if (spilled) continue;  // cannot empty this host without a new one
      MigrationPlan plan;
      plan.reason = MigrationPlan::Reason::kLocalLow;
      plan.moves = std::move(moves);
      plan.releases.push_back(host.host);
      return plan;
    }
  }
  return MigrationPlan{};
}

}  // namespace esh::elastic
