// Elasticity enforcer (paper §V): decides slice placement from probe data
// according to global and local policy rules, minimizing the number and
// cost (state transfer) of migrations.
//
// Pure decision logic: consumes a SystemView snapshot, produces a
// MigrationPlan. The manager executes plans (allocations, migrations,
// releases). Keeping the enforcer side-effect free makes every rule and
// both resolution steps directly unit-testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "engine/migration_strategy.hpp"

namespace esh::elastic {

struct PolicyConfig {
  // Global rule: the average CPU load over managed hosts must stay within
  // [global_low, global_high]; violations scale the system in/out toward
  // the ideal average utilization `target` (paper: 50 %, violation at 70 %).
  double global_high = 0.70;
  double global_low = 0.30;
  double target = 0.50;
  // Local rule: a single host outside [local_low, local_high] triggers
  // re-balancing among existing hosts (evaluated only when global holds).
  double local_high = 0.80;
  double local_low = 0.10;
  // First Fit never fills a host beyond this utilization.
  double placement_cap = 0.50;
  // Grace period after any enforcement action (paper: >= 30 s).
  SimDuration grace = seconds(30);
  // Scale-out reacts faster: the paper's enforcer addresses load increases
  // "immediately", while the longer grace protects scale-in/re-balancing
  // from oscillation. Successive scale-outs may chain at this pace (the
  // sharp 9:00 surge of the tick trace needs several in a row).
  SimDuration scale_out_grace = seconds(10);
  // Never release the last host.
  std::size_t min_hosts = 1;
  // Key-level elasticity: a single splittable slice consuming more than
  // `split_share` of one host's capacity is a hotspot no migration can
  // dilute — split its key coverage instead (half stays, half moves to the
  // least-loaded host). The inverse rule merges a coverage-sibling pair
  // back when their combined load falls below `merge_share`. Disabled by
  // default: whole-slice migration remains the baseline behaviour.
  bool enable_splits = false;
  double split_share = 0.45;
  double merge_share = 0.10;
  // Migration-strategy selection (see select_strategy): a slice with at most
  // this much state stop-and-restarts (the full checkpoint ships in one hop,
  // so the minimal-transfer protocol wins and the downtime stays tiny) ...
  std::size_t strategy_small_state_bytes = 4096;
  // ... while a hot slice above this CPU share pre-copies (its input rate
  // makes every parked millisecond expensive; pay delta traffic for the
  // shortest stop). Everything between runs the paper's buffered replay.
  double strategy_hot_cpu = 0.35;
};

struct SliceView {
  SliceId slice;
  HostId host;
  // CPU consumed by the slice as a fraction of one host's capacity.
  double cpu = 0.0;
  // State size: the migration-cost signal minimized during selection.
  std::size_t state_bytes = 0;
  // True when the slice's operator supports key-level state split (filled
  // by the manager from the engine; split rules skip everything else).
  bool splittable = false;
  // Coverage-sibling that could merge back into this slice. The manager
  // sets it on the low-tag side of each sibling pair only, so every
  // mergeable pair appears exactly once in a view.
  std::optional<SliceId> merge_sibling;
};

struct HostView {
  HostId host;
  double cpu = 0.0;  // utilization in [0, 1]
};

struct SystemView {
  SimTime time{};
  std::vector<HostView> hosts;
  std::vector<SliceView> slices;

  [[nodiscard]] double average_cpu() const;
  [[nodiscard]] double total_cpu() const;
};

struct MigrationPlan {
  enum class Reason {
    kNone,
    kScaleOut,
    kScaleIn,
    kLocalHigh,
    kLocalLow,
    kHotspotSplit,
    kColdMerge,
  };

  struct Move {
    SliceId slice;
    // Destination: an existing host, or a new host when new_host_index is
    // set (hosts are allocated by the manager before executing moves).
    HostId dst;
    std::optional<std::size_t> new_host_index;
    // Migration protocol for this move plus the view signals it was derived
    // from, stamped by Enforcer::evaluate. The manager re-derives the choice
    // from the same signals before executing (the elastic/
    // strategy-selection-deterministic invariant).
    engine::MigrationStrategyKind strategy =
        engine::MigrationStrategyKind::kBufferedReplay;
    std::size_t state_bytes = 0;
    double cpu = 0.0;
  };

  // Key-level split: half of `slice`'s coverage moves to a child on `dst`.
  struct Split {
    SliceId slice;
    HostId dst;
  };

  // Key-level merge: `retiree` folds back into its sibling `survivor`.
  struct Merge {
    SliceId survivor;
    SliceId retiree;
  };

  Reason reason = Reason::kNone;
  std::vector<Move> moves;
  std::size_t new_hosts = 0;
  std::vector<HostId> releases;
  std::vector<Split> splits;
  std::vector<Merge> merges;

  [[nodiscard]] bool empty() const {
    return moves.empty() && releases.empty() && new_hosts == 0 &&
           splits.empty() && merges.empty();
  }
};

const char* to_string(MigrationPlan::Reason r);

// ---- resolution-step primitives (exposed for tests and benches) ----------

// Pure strategy choice from a slice's probed signals: small state ->
// stop-and-restart (fewest bytes), hot slice -> incremental pre-copy
// (shortest stop), otherwise the paper's buffered replay. Deterministic in
// its arguments by construction; the manager re-derives it at execution
// time and cross-checks against the plan.
[[nodiscard]] engine::MigrationStrategyKind select_strategy(
    const PolicyConfig& policy, std::size_t state_bytes, double cpu);

// Subset-sum slice selection (paper §V): returns the subset of `slices`
// whose summed CPU is >= `required_cpu`, among all such subsets one with
// minimal summed state_bytes. Weights are discretized to permille. Returns
// indices into `slices`; selects everything if the total is insufficient.
std::vector<std::size_t> select_slices_min_state(
    const std::vector<SliceView>& slices, double required_cpu);

// First Fit placement: assigns each of `moving` (processed in decreasing
// CPU order) to the first host whose load stays below `cap`. `extra_bins`
// adds that many empty candidate bins (new hosts). Assignments to new bins
// use new_host_index; slices that fit nowhere get additional new bins.
std::vector<MigrationPlan::Move> first_fit_place(
    std::vector<SliceView> moving, std::vector<HostView> bins, double cap,
    std::size_t extra_bins, std::size_t* bins_used);

class Enforcer {
 public:
  explicit Enforcer(PolicyConfig config);

  // Evaluates the policy against a fresh snapshot. Returns an empty plan
  // while the grace period since the last action is still running or no
  // rule is violated. Slices in the view must all live on view hosts.
  [[nodiscard]] MigrationPlan evaluate(const SystemView& view);

  [[nodiscard]] const PolicyConfig& config() const { return config_; }
  [[nodiscard]] SimTime last_action() const { return last_action_; }

 private:
  [[nodiscard]] MigrationPlan scale_out(const SystemView& view) const;
  [[nodiscard]] MigrationPlan scale_in(const SystemView& view) const;
  [[nodiscard]] MigrationPlan local_rebalance(const SystemView& view) const;
  [[nodiscard]] MigrationPlan hotspot_split(const SystemView& view) const;
  [[nodiscard]] MigrationPlan cold_merge(const SystemView& view) const;

  PolicyConfig config_;
  SimTime last_action_{-config_.grace};
  bool acted_once_ = false;
};

}  // namespace esh::elastic
