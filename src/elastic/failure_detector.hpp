// Manager-side failure detection (paper §IV-B): hosts heartbeat through
// their periodic probes; a host that misses enough consecutive probe
// intervals is first *suspected* and then declared *dead*. Verdicts are
// final — a dead host never returns to alive; a replacement registers as a
// new host. The manager records dead verdicts in the coordination tree so
// a restarted or promoted standby manager inherits them (mark_dead).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace esh::elastic {

enum class HostHealth { kAlive, kSuspect, kDead };

const char* to_string(HostHealth h);

struct FailureDetectorConfig {
  // Expected heartbeat period: must match the engine's probe_interval.
  SimDuration probe_interval = seconds(5);
  // Consecutive missed intervals before escalation.
  std::uint32_t suspect_after = 2;
  std::uint32_t dead_after = 4;
};

// Structured verdict event handed to the manager's callbacks.
struct HealthEvent {
  HostId host;
  HostHealth verdict = HostHealth::kAlive;
  SimTime at{};
  // Silence observed when the verdict was reached.
  SimDuration silence{};
};

class FailureDetector {
 public:
  using Callback = std::function<void(const HealthEvent&)>;

  FailureDetector(sim::Simulator& simulator, FailureDetectorConfig config);

  void on_suspect(Callback cb) { on_suspect_ = std::move(cb); }
  void on_dead(Callback cb) { on_dead_ = std::move(cb); }

  // Starts the deadline clock for `host` (grace starts now, not at the
  // first heartbeat). Watching an already-watched host resets its clock;
  // watching a dead host is a no-op (verdicts are final).
  void watch(HostId host);
  void unwatch(HostId host);

  // A probe arrived. Clears a suspect verdict; ignored for dead or
  // unwatched hosts.
  void heartbeat(HostId host);

  // Records an inherited verdict (e.g. read from the coordination tree by
  // a promoted standby). Does not fire callbacks: the caller already knows.
  void mark_dead(HostId host);

  [[nodiscard]] HostHealth health(HostId host) const;
  [[nodiscard]] bool watching(HostId host) const;
  [[nodiscard]] std::vector<HostId> dead_hosts() const;
  [[nodiscard]] const std::vector<HealthEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const FailureDetectorConfig& config() const { return config_; }

 private:
  struct Watched {
    SimTime last_heard{};
    HostHealth health = HostHealth::kAlive;
  };

  void sweep();

  sim::Simulator& simulator_;
  FailureDetectorConfig config_;
  std::map<HostId, Watched> watched_;
  Callback on_suspect_;
  Callback on_dead_;
  std::vector<HealthEvent> events_;
  std::unique_ptr<sim::PeriodicTimer> sweep_timer_;
};

}  // namespace esh::elastic
