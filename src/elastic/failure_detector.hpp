// Manager-side failure detection (paper §IV-B): hosts heartbeat through
// their periodic probes; a host that misses enough consecutive probe
// intervals is first *suspected* and then declared *dead*. Dead verdicts
// are final — a dead host never returns to alive; a replacement registers
// as a new host. The manager records dead verdicts in the coordination tree
// so a restarted or promoted standby manager inherits them (mark_dead).
//
// Suspicion is accrual-style over two signals:
//   - probe inter-arrival (silence): missed intervals escalate alive ->
//     suspect -> dead, as before;
//   - probe latency (gray failures): a host that still heartbeats but whose
//     smoothed one-way probe delay drifts past a configurable multiple of
//     its baseline becomes *suspect* without ever convicting it dead.
//     Latency suspicion clears itself when the smoothed delay recovers.
// External evidence (a reliable control channel exhausting its retry
// budget) can also raise suspicion via report_unreachable(); like latency,
// it never convicts on its own — only silence kills.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace esh::elastic {

enum class HostHealth { kAlive, kSuspect, kDead };

const char* to_string(HostHealth h);

struct FailureDetectorConfig {
  // Expected heartbeat period: must match the engine's probe_interval.
  SimDuration probe_interval = seconds(5);
  // Consecutive missed intervals before escalation.
  std::uint32_t suspect_after = 2;
  std::uint32_t dead_after = 4;
  // Gray-failure (latency) suspicion: suspect a host whose smoothed probe
  // delay exceeds latency_suspect_factor x its baseline. 0 disables the
  // latency signal entirely (and heartbeat delays are ignored).
  double latency_suspect_factor = 0.0;
  // Baseline one-way probe delay; zero means learn it per host from the
  // first delay sample (the cluster is healthy at watch time).
  SimDuration latency_baseline{};
  // EWMA smoothing applied to delay samples (weight of the newest sample).
  double latency_ewma_alpha = 0.25;
};

// Structured verdict event handed to the manager's callbacks.
struct HealthEvent {
  HostId host;
  HostHealth verdict = HostHealth::kAlive;
  SimTime at{};
  // Silence observed when the verdict was reached.
  SimDuration silence{};
  // Accrual suspicion score when the verdict was reached (see suspicion()).
  double score = 0.0;
  // Smoothed one-way probe delay at the verdict (zero if no sample yet).
  SimDuration delay{};
};

class FailureDetector {
 public:
  using Callback = std::function<void(const HealthEvent&)>;

  FailureDetector(sim::Simulator& simulator, FailureDetectorConfig config);

  void on_suspect(Callback cb) { on_suspect_ = std::move(cb); }
  void on_dead(Callback cb) { on_dead_ = std::move(cb); }
  // Fires when a suspect host recovers to alive (silence ended or latency
  // EWMA back under threshold) — lets the manager call off a drain.
  void on_recovered(Callback cb) { on_recovered_ = std::move(cb); }

  // Starts the deadline clock for `host` (grace starts now, not at the
  // first heartbeat). Watching an already-watched host resets its clock;
  // watching a dead host is a no-op (verdicts are final).
  void watch(HostId host);
  void unwatch(HostId host);

  // A probe arrived. Clears a silence-based suspect verdict; ignored for
  // dead or unwatched hosts.
  void heartbeat(HostId host);
  // A probe arrived carrying its one-way delay (arrival time minus the
  // probe's send timestamp). Feeds the latency EWMA: the host turns
  // suspect when the smoothed delay exceeds the configured multiple of its
  // baseline, and back alive when it recovers. Latency never convicts dead.
  void heartbeat(HostId host, SimDuration delay);

  // External unreachability evidence (e.g. a reliable control channel gave
  // up on the host after exhausting its retry budget): escalates an alive
  // host to suspect immediately instead of waiting out the probe silence.
  // Never convicts dead; a subsequent heartbeat clears it.
  void report_unreachable(HostId host);

  // Records an inherited verdict (e.g. read from the coordination tree by
  // a promoted standby). Does not fire callbacks: the caller already knows.
  void mark_dead(HostId host);

  [[nodiscard]] HostHealth health(HostId host) const;
  [[nodiscard]] bool watching(HostId host) const;
  [[nodiscard]] std::vector<HostId> dead_hosts() const;
  // Accrual suspicion score: missed-interval count (silence divided by the
  // probe interval) plus the latency ratio (smoothed delay over the suspect
  // threshold; 0 when the latency signal is disabled or unsampled). A score
  // >= suspect_after, or a latency ratio >= 1, warrants suspicion.
  [[nodiscard]] double suspicion(HostId host) const;
  // Smoothed one-way probe delay (zero before the first sample).
  [[nodiscard]] SimDuration smoothed_delay(HostId host) const;
  [[nodiscard]] const std::vector<HealthEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const FailureDetectorConfig& config() const { return config_; }

 private:
  struct Watched {
    SimTime last_heard{};
    HostHealth health = HostHealth::kAlive;
    // Latency tracking (gray-failure signal), microseconds.
    double delay_ewma_us = 0.0;
    double baseline_us = 0.0;  // 0 until learned / configured
    bool has_delay = false;
    // True while the current suspect verdict is held up by latency (it
    // survives heartbeats until the EWMA recovers).
    bool latency_suspect = false;
  };

  void sweep();
  void suspect(HostId host, Watched& w, SimDuration silence);
  void recover(HostId host, Watched& w);
  [[nodiscard]] double latency_ratio(const Watched& w) const;

  sim::Simulator& simulator_;
  FailureDetectorConfig config_;
  std::map<HostId, Watched> watched_;
  Callback on_suspect_;
  Callback on_dead_;
  Callback on_recovered_;
  std::vector<HealthEvent> events_;
  std::unique_ptr<sim::PeriodicTimer> sweep_timer_;
};

}  // namespace esh::elastic
