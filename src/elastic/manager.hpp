// The e-STREAMHUB manager (paper §IV-B): collects heartbeat probes from
// every engine host, aggregates them per slice and per host, feeds the
// elasticity enforcer, and orchestrates the resulting plan — allocating
// hosts from the IaaS pool, requesting slice migrations from the engine,
// and releasing emptied hosts. The shared configuration (slice placement,
// managed host set) is persisted in the coordination service so a restarted
// manager can recover it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/iaas.hpp"
#include "cluster/probes.hpp"
#include "coord/coord.hpp"
#include "coord/recipes.hpp"
#include "elastic/enforcer.hpp"
#include "elastic/failure_detector.hpp"
#include "engine/engine.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace esh::elastic {

// Automatic failure handling: when enabled the manager runs a failure
// detector over the probe stream and, on a dead verdict, quarantines the
// host, re-places its slices (allocating replacement hosts from the IaaS
// pool when the survivors lack capacity) and drives checkpoint+replay
// recovery for every lost slice. Requires engine checkpoints to be on.
struct RecoveryConfig {
  bool enabled = false;
  FailureDetectorConfig detector{};
  // Deadline for one recover_slice attempt before it is retried elsewhere.
  SimDuration attempt_timeout = seconds(10);
  // Bounded retries per slice (first attempt included).
  std::size_t max_attempts = 3;
  SimDuration retry_backoff = seconds(1);
  // Graceful degradation: a host that stays suspect for drain_after (gray
  // failure — latency drift past the detector's threshold, or a reliable
  // control channel giving up on it) is proactively *drained*: its slices
  // migrate away over the normal migration protocol while the host still
  // works, instead of waiting for a crash that may never come. The drained
  // host is removed from the managed set but never returned to the IaaS
  // pool (a gray box is not reused).
  bool drain_suspects = false;
  SimDuration drain_after = seconds(1);
};

struct ManagerConfig {
  PolicyConfig policy{};
  // Root path of the manager's state in the coordination service.
  std::string coord_root = "/estreamhub";
  // Slices of these operators may be migrated; others (source/sink) are
  // pinned to their dedicated hosts.
  std::vector<std::string> elastic_operators = {"AP", "M", "EP"};
  // Run a leader election among manager instances: only the elected leader
  // collects probes and enforces; standbys take over on failure/resign.
  bool use_leader_election = false;
  RecoveryConfig recovery{};
  // A migration aborted by a host failure is retried this many times (with
  // backoff) before the move is abandoned.
  std::size_t migration_max_retries = 2;
  SimDuration migration_retry_backoff = seconds(2);
};

// Timeline of one automatic host recovery; the MTTR breakdown measured by
// bench/fig_recovery (detect -> quarantine -> placement -> replay done).
struct RecoveryReport {
  HostId host;
  SimTime detected{};
  SimTime quarantined{};
  SimTime placed{};
  SimTime recovered{};
  std::vector<SliceId> slices_lost;
  std::size_t slices_recovered = 0;
  std::vector<HostId> replacement_hosts;
  std::size_t retries = 0;
  bool complete = false;
  [[nodiscard]] SimDuration mttr() const { return recovered - detected; }
};

// Timeline of one proactive suspect drain (graceful degradation).
struct DrainReport {
  HostId host;
  SimTime suspected{};   // the verdict that armed the drain
  SimTime started{};     // drain_after elapsed with the suspicion sustained
  SimTime completed{};
  std::size_t slices_moved = 0;
  bool complete = false;  // every slice left and the host was removed
  bool aborted = false;   // the host died mid-drain (recovery took over)
};

// Aggregate load sample over the managed hosts; recorded on each full probe
// round (drives the host-count and CPU envelope plots of Figures 8/9).
struct LoadSample {
  SimTime time{};
  std::size_t hosts = 0;
  double min_cpu = 0.0;
  double avg_cpu = 0.0;
  double max_cpu = 0.0;
};

class Manager {
 public:
  Manager(sim::Simulator& simulator, net::Network& network,
          engine::Engine& engine, cluster::IaasPool& pool,
          coord::CoordService& coord, HostId manager_host,
          ManagerConfig config);
  ~Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // Registers the initially managed (engine worker) hosts and starts probe
  // collection and policy enforcement.
  void start(const std::vector<HostId>& managed_hosts);

  // Restart path (paper §IV-B: the manager's state lives in the
  // coordination service). Reads the managed host set back from the
  // coordination tree and resumes probing/enforcement; `ready` fires once
  // recovery completed. Requires a previous manager instance to have
  // persisted its state under the same coord_root.
  void start_from_coordination(std::function<void(bool ok)> ready = nullptr);

  // Hot-standby path (requires use_leader_election): joins the election
  // without touching the system; on promotion it recovers the managed host
  // set from the coordination tree, redirects probes to itself, and starts
  // enforcing.
  void enter_standby();

  // Steps down from leadership (the next contender takes over). No-op
  // without leader election.
  void resign();

  // True when this instance may act (leader, or no election configured).
  [[nodiscard]] bool is_active() const {
    return !election_ || election_->is_leader();
  }

  [[nodiscard]] const std::vector<LoadSample>& load_history() const {
    return load_history_;
  }
  [[nodiscard]] const std::vector<engine::MigrationReport>& migrations() const {
    return migrations_;
  }
  // Key-level splits/merges executed from hotspot-split / cold-merge plans.
  [[nodiscard]] const std::vector<engine::TransitionReport>& transitions()
      const {
    return transitions_;
  }
  [[nodiscard]] std::size_t managed_host_count() const {
    return managed_.size();
  }
  [[nodiscard]] std::vector<HostId> managed_hosts() const;
  [[nodiscard]] bool plan_in_progress() const { return executing_; }
  [[nodiscard]] std::uint64_t plans_executed() const { return plans_executed_; }
  [[nodiscard]] Enforcer& enforcer() { return enforcer_; }
  // Present iff config.recovery.enabled.
  [[nodiscard]] FailureDetector* failure_detector() { return detector_.get(); }
  [[nodiscard]] const std::vector<RecoveryReport>& recoveries() const {
    return recoveries_;
  }
  [[nodiscard]] bool recovery_in_progress() const {
    return !active_recoveries_.empty();
  }
  [[nodiscard]] const std::vector<DrainReport>& drains() const {
    return drains_;
  }
  [[nodiscard]] bool drain_in_progress() const {
    return draining_.has_value();
  }

  // Disables/enables policy evaluation (probes still collected); used by
  // experiments that drive migrations manually.
  void set_enforcement(bool enabled) { enforcement_enabled_ = enabled; }

  // Replaces the built-in enforcer with an arbitrary policy (used by the
  // policy-ablation bench to plug in baseline auto-scalers).
  using PolicyFn = std::function<MigrationPlan(const SystemView&)>;
  void set_policy(PolicyFn policy) { policy_override_ = std::move(policy); }

  // Testing seam: corrupt the next executed move's planned strategy so the
  // execution-time re-derivation disagrees — the elastic/
  // strategy-selection-deterministic contract must trip (checked builds).
  bool testing_corrupt_strategy_plan = false;

 private:
  void on_probe(const net::Delivery& delivery);
  void maybe_evaluate();
  void execute(MigrationPlan plan);
  void run_next_move();
  void run_move(MigrationPlan::Move move, HostId dst, std::size_t attempt);
  void run_next_split();
  void run_next_merge();
  void finish_plan();
  void persist_placement(SliceId slice, HostId host);
  void persist_hosts();
  void persist_health(HostId host);
  // Reads the dead-host verdicts persisted under <coord_root>/health.
  void load_health(std::function<void(std::set<HostId>)> done);
  void watch_managed();
  void on_host_dead(const HealthEvent& ev);
  void on_host_suspect(const HealthEvent& ev);
  void maybe_start_drain(HostId host, SimTime suspected);
  void drain_next_move();
  void finish_drain();
  void attempt_recover(HostId dead_host, SliceId slice, HostId dst,
                       std::size_t attempt);
  void on_slice_recovered(HostId dead_host, SliceId slice);
  void maybe_finish_recovery(HostId dead_host);
  [[nodiscard]] std::optional<HostId> pick_recovery_host(HostId avoid) const;

  sim::Simulator& simulator_;
  net::Network& network_;
  engine::Engine& engine_;
  cluster::IaasPool& pool_;
  coord::CoordService& coord_;
  HostId manager_host_;
  ManagerConfig config_;
  Enforcer enforcer_;
  net::Endpoint probe_endpoint_;
  std::unique_ptr<coord::CoordClient> coord_client_;
  std::unique_ptr<coord::LeaderElection> election_;

  std::set<HostId> managed_;
  std::unordered_map<HostId, cluster::HostProbe> latest_probes_;
  std::set<HostId> reported_since_eval_;
  bool started_ = false;
  bool enforcement_enabled_ = true;
  PolicyFn policy_override_;

  // Plan execution state.
  bool executing_ = false;
  MigrationPlan active_plan_;
  std::vector<HostId> plan_new_hosts_;
  std::size_t next_move_ = 0;
  std::size_t next_split_ = 0;
  std::size_t next_merge_ = 0;
  std::size_t hosts_booting_ = 0;

  // Failure handling state.
  struct ActiveRecovery {
    RecoveryReport report;
    std::set<SliceId> pending;
    std::map<SliceId, std::size_t> attempts;
  };
  std::unique_ptr<FailureDetector> detector_;
  std::map<HostId, ActiveRecovery> active_recoveries_;
  std::vector<RecoveryReport> recoveries_;

  // Proactive suspect drain (one at a time, like plans).
  std::set<HostId> drain_scheduled_;
  std::optional<HostId> draining_;
  DrainReport active_drain_{};
  std::vector<std::pair<SliceId, HostId>> drain_moves_;
  std::size_t next_drain_move_ = 0;
  std::vector<DrainReport> drains_;

  std::vector<LoadSample> load_history_;
  std::vector<engine::MigrationReport> migrations_;
  std::vector<engine::TransitionReport> transitions_;
  std::uint64_t plans_executed_ = 0;
  std::set<std::string> elastic_ops_;
};

}  // namespace esh::elastic
