// Baseline elasticity policy in the style of IaaS auto-scalers (paper
// §II-A: "Amazon EC2 Auto Scaling relies on basic elasticity policies by
// setting simple thresholds on resource utilization").
//
// Contrast with the e-STREAMHUB enforcer:
//   - scales by a fixed step (+1/-1 host) instead of sizing the fleet
//     toward the target utilization;
//   - selects slices to move greedily by CPU (no subset-sum, no
//     state-transfer minimization);
//   - balances by evening the load instead of First Fit against a cap.
//
// Used by bench/ablation_policy to quantify what the paper's policy buys:
// fewer migrations, less state moved, and a tighter utilization envelope.
#pragma once

#include "elastic/enforcer.hpp"

namespace esh::elastic {

struct ThresholdPolicyConfig {
  double scale_out_above = 0.70;
  double scale_in_below = 0.30;
  std::size_t step = 1;  // hosts added/removed per violation
  SimDuration cooldown = seconds(30);
  std::size_t min_hosts = 1;
};

// Drop-in alternative to Enforcer (same evaluate() surface, so the
// manager template in bench/ablation_policy can drive either).
class ThresholdEnforcer {
 public:
  explicit ThresholdEnforcer(ThresholdPolicyConfig config);

  [[nodiscard]] MigrationPlan evaluate(const SystemView& view);

  [[nodiscard]] const ThresholdPolicyConfig& config() const { return config_; }

 private:
  [[nodiscard]] MigrationPlan step_out(const SystemView& view) const;
  [[nodiscard]] MigrationPlan step_in(const SystemView& view) const;

  ThresholdPolicyConfig config_;
  SimTime last_action_{0};
  bool acted_once_ = false;
};

}  // namespace esh::elastic
