#include "elastic/threshold_policy.hpp"

#include <algorithm>
#include <unordered_map>

namespace esh::elastic {

ThresholdEnforcer::ThresholdEnforcer(ThresholdPolicyConfig config)
    : config_(config) {}

MigrationPlan ThresholdEnforcer::evaluate(const SystemView& view) {
  MigrationPlan plan;
  if (view.hosts.empty()) return plan;
  if (acted_once_ && view.time - last_action_ < config_.cooldown) return plan;

  const double avg = view.average_cpu();
  if (avg > config_.scale_out_above) {
    plan = step_out(view);
  } else if (avg < config_.scale_in_below &&
             view.hosts.size() > config_.min_hosts) {
    plan = step_in(view);
  }
  if (!plan.empty()) {
    last_action_ = view.time;
    acted_once_ = true;
  }
  return plan;
}

MigrationPlan ThresholdEnforcer::step_out(const SystemView& view) const {
  MigrationPlan plan;
  plan.reason = MigrationPlan::Reason::kScaleOut;
  plan.new_hosts = config_.step;

  // Naive re-balancing: take the heaviest slices off the most loaded
  // hosts, one per new host per round, ignoring state size entirely.
  std::vector<SliceView> slices = view.slices;
  std::sort(slices.begin(), slices.end(),
            [](const SliceView& a, const SliceView& b) {
              if (a.cpu != b.cpu) return a.cpu > b.cpu;
              return a.slice < b.slice;
            });
  // Move roughly enough of the heaviest slices to fill the new hosts to
  // the average.
  const double per_new_host = view.average_cpu();
  double budget = per_new_host * static_cast<double>(config_.step);
  std::size_t next_bin = 0;
  std::vector<double> bin_load(config_.step, 0.0);
  for (const SliceView& s : slices) {
    if (budget <= 0.0) break;
    plan.moves.push_back(MigrationPlan::Move{s.slice, HostId{}, next_bin});
    bin_load[next_bin] += s.cpu;
    budget -= s.cpu;
    next_bin = (next_bin + 1) % config_.step;
  }
  if (plan.moves.empty()) return MigrationPlan{};
  return plan;
}

MigrationPlan ThresholdEnforcer::step_in(const SystemView& view) const {
  MigrationPlan plan;
  plan.reason = MigrationPlan::Reason::kScaleIn;

  std::vector<HostView> by_load = view.hosts;
  std::sort(by_load.begin(), by_load.end(),
            [](const HostView& a, const HostView& b) {
              if (a.cpu != b.cpu) return a.cpu < b.cpu;
              return a.host < b.host;
            });
  const std::size_t releasable =
      std::min(config_.step, view.hosts.size() - config_.min_hosts);
  std::unordered_map<HostId, std::vector<SliceView>> by_host;
  for (const SliceView& s : view.slices) by_host[s.host].push_back(s);

  for (std::size_t r = 0; r < releasable; ++r) {
    const HostId victim = by_load[r].host;
    // Dump the victim's slices round-robin onto the surviving hosts,
    // with no capacity check (the naive policy trusts the threshold).
    std::size_t target = releasable;
    for (const SliceView& s : by_host[victim]) {
      plan.moves.push_back(
          MigrationPlan::Move{s.slice, by_load[target].host, {}});
      target = releasable + (target - releasable + 1) %
                                (by_load.size() - releasable);
    }
    plan.releases.push_back(victim);
  }
  if (plan.releases.empty()) return MigrationPlan{};
  return plan;
}

}  // namespace esh::elastic
