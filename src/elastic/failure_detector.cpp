#include "elastic/failure_detector.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace esh::elastic {

const char* to_string(HostHealth h) {
  switch (h) {
    case HostHealth::kAlive:
      return "alive";
    case HostHealth::kSuspect:
      return "suspect";
    case HostHealth::kDead:
      return "dead";
  }
  return "?";
}

FailureDetector::FailureDetector(sim::Simulator& simulator,
                                 FailureDetectorConfig config)
    : simulator_(simulator), config_(config) {
  if (config_.probe_interval <= SimDuration::zero()) {
    throw std::invalid_argument{"FailureDetector: probe_interval must be > 0"};
  }
  if (config_.suspect_after == 0 || config_.dead_after < config_.suspect_after) {
    throw std::invalid_argument{
        "FailureDetector: need 0 < suspect_after <= dead_after"};
  }
  if (config_.latency_suspect_factor < 0.0) {
    throw std::invalid_argument{
        "FailureDetector: latency_suspect_factor must be >= 0"};
  }
  if (config_.latency_suspect_factor > 0.0 &&
      config_.latency_suspect_factor <= 1.0) {
    throw std::invalid_argument{
        "FailureDetector: latency_suspect_factor must exceed 1 (a host at "
        "its own baseline would be permanently suspect)"};
  }
  if (config_.latency_ewma_alpha <= 0.0 || config_.latency_ewma_alpha > 1.0) {
    throw std::invalid_argument{
        "FailureDetector: latency_ewma_alpha must be in (0, 1]"};
  }
  // Deadlines are checked at half the heartbeat period: fine enough that a
  // verdict lands within half an interval of its deadline, coarse enough
  // to stay negligible next to the probe traffic itself.
  const SimDuration period = std::max(config_.probe_interval / 2, micros(1));
  sweep_timer_ = std::make_unique<sim::PeriodicTimer>(
      simulator_, period, [this] { this->sweep(); });
}

void FailureDetector::watch(HostId host) {
  auto it = watched_.find(host);
  if (it != watched_.end() && it->second.health == HostHealth::kDead) return;
  Watched w;
  w.last_heard = simulator_.now();
  if (config_.latency_baseline > SimDuration::zero()) {
    w.baseline_us = static_cast<double>(config_.latency_baseline.count());
  }
  watched_[host] = w;
}

void FailureDetector::unwatch(HostId host) { watched_.erase(host); }

double FailureDetector::latency_ratio(const Watched& w) const {
  if (config_.latency_suspect_factor <= 0.0 || !w.has_delay ||
      w.baseline_us <= 0.0) {
    return 0.0;
  }
  return w.delay_ewma_us / (w.baseline_us * config_.latency_suspect_factor);
}

void FailureDetector::heartbeat(HostId host) {
  auto it = watched_.find(host);
  if (it == watched_.end() || it->second.health == HostHealth::kDead) return;
  Watched& w = it->second;
  w.last_heard = simulator_.now();
  // A heartbeat ends silence-based suspicion, but a latency-held verdict
  // stands until the EWMA recovers (the host is up — just gray).
  if (w.health == HostHealth::kSuspect && !w.latency_suspect) {
    recover(host, w);
  }
}

void FailureDetector::heartbeat(HostId host, SimDuration delay) {
  auto it = watched_.find(host);
  if (it == watched_.end() || it->second.health == HostHealth::kDead) return;
  Watched& w = it->second;
  w.last_heard = simulator_.now();
  if (config_.latency_suspect_factor > 0.0) {
    const auto sample = static_cast<double>(delay.count());
    if (!w.has_delay) {
      w.has_delay = true;
      w.delay_ewma_us = sample;
      // Healthy-at-watch assumption: the first sample is the baseline
      // unless the config pinned one.
      if (w.baseline_us <= 0.0) w.baseline_us = std::max(sample, 1.0);
    } else {
      w.delay_ewma_us = config_.latency_ewma_alpha * sample +
                        (1.0 - config_.latency_ewma_alpha) * w.delay_ewma_us;
    }
    const double ratio = latency_ratio(w);
    if (ratio >= 1.0) {
      if (w.health == HostHealth::kAlive) {
        w.latency_suspect = true;
        suspect(host, w, SimDuration::zero());
      } else {
        // Already suspect (silence or unreachable evidence): the latency
        // signal now holds the verdict too.
        w.latency_suspect = true;
      }
      return;
    }
    w.latency_suspect = false;
  }
  if (w.health == HostHealth::kSuspect && !w.latency_suspect) {
    recover(host, w);
  }
}

void FailureDetector::report_unreachable(HostId host) {
  auto it = watched_.find(host);
  if (it == watched_.end() || it->second.health != HostHealth::kAlive) return;
  ESH_WARN << "FailureDetector: host " << host
           << " reported unreachable (control-channel retry budget)";
  suspect(host, it->second, simulator_.now() - it->second.last_heard);
}

void FailureDetector::suspect(HostId host, Watched& w, SimDuration silence) {
  w.health = HostHealth::kSuspect;
  HealthEvent ev{host, HostHealth::kSuspect, simulator_.now(), silence};
  ev.score = suspicion(host);
  ev.delay = micros(static_cast<std::int64_t>(w.delay_ewma_us));
  events_.push_back(ev);
  ESH_WARN << "FailureDetector: host " << host << " suspected ("
           << to_millis(silence) << " ms silent, score " << ev.score << ")";
  if (on_suspect_) on_suspect_(ev);
}

void FailureDetector::recover(HostId host, Watched& w) {
  w.health = HostHealth::kAlive;
  w.latency_suspect = false;
  ESH_INFO << "FailureDetector: host " << host << " back alive after suspicion";
  HealthEvent ev{host, HostHealth::kAlive, simulator_.now(),
                 SimDuration::zero()};
  ev.score = suspicion(host);
  ev.delay = micros(static_cast<std::int64_t>(w.delay_ewma_us));
  events_.push_back(ev);
  if (on_recovered_) on_recovered_(ev);
}

void FailureDetector::mark_dead(HostId host) {
  watched_[host].health = HostHealth::kDead;
}

HostHealth FailureDetector::health(HostId host) const {
  auto it = watched_.find(host);
  if (it == watched_.end()) return HostHealth::kAlive;
  return it->second.health;
}

bool FailureDetector::watching(HostId host) const {
  return watched_.contains(host);
}

std::vector<HostId> FailureDetector::dead_hosts() const {
  std::vector<HostId> out;
  for (const auto& [host, w] : watched_) {
    if (w.health == HostHealth::kDead) out.push_back(host);
  }
  return out;
}

double FailureDetector::suspicion(HostId host) const {
  auto it = watched_.find(host);
  if (it == watched_.end()) return 0.0;
  const Watched& w = it->second;
  const SimDuration silence = simulator_.now() - w.last_heard;
  const double missed = static_cast<double>(silence.count()) /
                        static_cast<double>(config_.probe_interval.count());
  return missed + latency_ratio(w);
}

SimDuration FailureDetector::smoothed_delay(HostId host) const {
  auto it = watched_.find(host);
  if (it == watched_.end() || !it->second.has_delay) return {};
  return micros(static_cast<std::int64_t>(it->second.delay_ewma_us));
}

void FailureDetector::sweep() {
  const SimTime now = simulator_.now();
  for (auto& [host, w] : watched_) {
    if (w.health == HostHealth::kDead) continue;
    const SimDuration silence = now - w.last_heard;
    const auto missed =
        static_cast<std::uint64_t>(silence / config_.probe_interval);
    if (missed >= config_.dead_after) {
      w.health = HostHealth::kDead;
      HealthEvent ev{host, HostHealth::kDead, now, silence};
      ev.score = suspicion(host);
      ev.delay = micros(static_cast<std::int64_t>(w.delay_ewma_us));
      events_.push_back(ev);
      ESH_WARN << "FailureDetector: host " << host << " declared dead ("
               << to_millis(silence) << " ms silent)";
      if (on_dead_) on_dead_(ev);
    } else if (missed >= config_.suspect_after &&
               w.health == HostHealth::kAlive) {
      suspect(host, w, silence);
    }
  }
}

}  // namespace esh::elastic
