#include "elastic/failure_detector.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace esh::elastic {

const char* to_string(HostHealth h) {
  switch (h) {
    case HostHealth::kAlive:
      return "alive";
    case HostHealth::kSuspect:
      return "suspect";
    case HostHealth::kDead:
      return "dead";
  }
  return "?";
}

FailureDetector::FailureDetector(sim::Simulator& simulator,
                                 FailureDetectorConfig config)
    : simulator_(simulator), config_(config) {
  if (config_.probe_interval <= SimDuration::zero()) {
    throw std::invalid_argument{"FailureDetector: probe_interval must be > 0"};
  }
  if (config_.suspect_after == 0 || config_.dead_after < config_.suspect_after) {
    throw std::invalid_argument{
        "FailureDetector: need 0 < suspect_after <= dead_after"};
  }
  // Deadlines are checked at half the heartbeat period: fine enough that a
  // verdict lands within half an interval of its deadline, coarse enough
  // to stay negligible next to the probe traffic itself.
  const SimDuration period = std::max(config_.probe_interval / 2, micros(1));
  sweep_timer_ = std::make_unique<sim::PeriodicTimer>(
      simulator_, period, [this] { this->sweep(); });
}

void FailureDetector::watch(HostId host) {
  auto it = watched_.find(host);
  if (it != watched_.end() && it->second.health == HostHealth::kDead) return;
  watched_[host] = Watched{simulator_.now(), HostHealth::kAlive};
}

void FailureDetector::unwatch(HostId host) { watched_.erase(host); }

void FailureDetector::heartbeat(HostId host) {
  auto it = watched_.find(host);
  if (it == watched_.end() || it->second.health == HostHealth::kDead) return;
  if (it->second.health == HostHealth::kSuspect) {
    ESH_INFO << "FailureDetector: host " << host
             << " back alive after suspicion";
  }
  it->second.last_heard = simulator_.now();
  it->second.health = HostHealth::kAlive;
}

void FailureDetector::mark_dead(HostId host) {
  watched_[host].health = HostHealth::kDead;
}

HostHealth FailureDetector::health(HostId host) const {
  auto it = watched_.find(host);
  if (it == watched_.end()) return HostHealth::kAlive;
  return it->second.health;
}

bool FailureDetector::watching(HostId host) const {
  return watched_.contains(host);
}

std::vector<HostId> FailureDetector::dead_hosts() const {
  std::vector<HostId> out;
  for (const auto& [host, w] : watched_) {
    if (w.health == HostHealth::kDead) out.push_back(host);
  }
  return out;
}

void FailureDetector::sweep() {
  const SimTime now = simulator_.now();
  for (auto& [host, w] : watched_) {
    if (w.health == HostHealth::kDead) continue;
    const SimDuration silence = now - w.last_heard;
    const auto missed =
        static_cast<std::uint64_t>(silence / config_.probe_interval);
    if (missed >= config_.dead_after) {
      w.health = HostHealth::kDead;
      const HealthEvent ev{host, HostHealth::kDead, now, silence};
      events_.push_back(ev);
      ESH_WARN << "FailureDetector: host " << host << " declared dead ("
               << to_millis(silence) << " ms silent)";
      if (on_dead_) on_dead_(ev);
    } else if (missed >= config_.suspect_after &&
               w.health == HostHealth::kAlive) {
      w.health = HostHealth::kSuspect;
      const HealthEvent ev{host, HostHealth::kSuspect, now, silence};
      events_.push_back(ev);
      ESH_WARN << "FailureDetector: host " << host << " suspected ("
               << to_millis(silence) << " ms silent)";
      if (on_suspect_) on_suspect_(ev);
    }
  }
}

}  // namespace esh::elastic
