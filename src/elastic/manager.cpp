#include "elastic/manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"
#include "engine/event.hpp"

namespace esh::elastic {

Manager::Manager(sim::Simulator& simulator, net::Network& network,
                 engine::Engine& engine, cluster::IaasPool& pool,
                 coord::CoordService& coord, HostId manager_host,
                 ManagerConfig config)
    : simulator_(simulator),
      network_(network),
      engine_(engine),
      pool_(pool),
      coord_(coord),
      manager_host_(manager_host),
      config_(std::move(config)),
      enforcer_(config_.policy) {
  probe_endpoint_ = network_.new_endpoint();
  network_.bind(probe_endpoint_, manager_host_,
                [this](const net::Delivery& d) { on_probe(d); });
  coord_client_ = std::make_unique<coord::CoordClient>(coord_);
  for (const auto& name : config_.elastic_operators) {
    elastic_ops_.insert(name);
  }
  if (config_.use_leader_election) {
    election_ = std::make_unique<coord::LeaderElection>(
        *coord_client_, config_.coord_root + "/manager-election",
        [this](bool leader) {
          if (!leader) return;
          // Promotion: recover the current managed set and pull the probe
          // stream to this instance.
          coord_client_->get(
              config_.coord_root + "/config/hosts",
              [this](coord::Status st, const std::string& data, coord::Stat) {
                if (st == coord::Status::kOk && !data.empty()) {
                  std::set<HostId> recovered;
                  std::size_t pos = 0;
                  while (pos <= data.size()) {
                    const std::size_t comma = data.find(',', pos);
                    const std::string token = data.substr(
                        pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
                    if (!token.empty()) {
                      const HostId host{std::stoull(token)};
                      if (engine_.has_host(host)) recovered.insert(host);
                    }
                    if (comma == std::string::npos) break;
                    pos = comma + 1;
                  }
                  // Keep the bootstrap set if the persisted one is not
                  // readable yet (fresh deployment racing its first write).
                  if (!recovered.empty()) managed_ = std::move(recovered);
                }
                reported_since_eval_.clear();
                engine_.enable_probes(probe_endpoint_);
              });
        });
  }
}

Manager::~Manager() {
  if (network_.bound(probe_endpoint_)) {
    network_.unbind(probe_endpoint_);
  }
}

void Manager::start(const std::vector<HostId>& managed_hosts) {
  if (started_) {
    throw std::logic_error{"Manager::start: already started"};
  }
  managed_.insert(managed_hosts.begin(), managed_hosts.end());
  started_ = true;
  // The config tree must exist before the first placement writes; chain
  // the creates (the coordination pipeline is asynchronous).
  coord_client_->ensure_path(
      config_.coord_root + "/config/slices", "", [this](coord::Status) {
        coord_client_->ensure_path(
            config_.coord_root + "/config/hosts", "", [this](coord::Status) {
              persist_hosts();
              for (HostId host : managed_) {
                for (SliceId slice : engine_.slices_on(host)) {
                  persist_placement(slice, host);
                }
              }
            });
      });
  if (election_) {
    election_->enter();  // first contender: leads and pulls probes
  } else {
    engine_.enable_probes(probe_endpoint_);
  }
}

void Manager::enter_standby() {
  if (!election_) {
    throw std::logic_error{"enter_standby requires use_leader_election"};
  }
  if (started_) {
    throw std::logic_error{"enter_standby: already started"};
  }
  started_ = true;
  election_->enter();
}

void Manager::resign() {
  if (election_) election_->resign();
}

void Manager::start_from_coordination(std::function<void(bool)> ready) {
  if (started_) {
    throw std::logic_error{"Manager::start_from_coordination: already started"};
  }
  started_ = true;
  coord_client_->get(
      config_.coord_root + "/config/hosts",
      [this, ready = std::move(ready)](coord::Status st,
                                       const std::string& data, coord::Stat) {
        if (st != coord::Status::kOk) {
          ESH_WARN << "Manager recovery: no persisted host set ("
                   << coord::to_string(st) << ")";
          if (ready) ready(false);
          return;
        }
        std::size_t pos = 0;
        while (pos < data.size()) {
          const std::size_t comma = data.find(',', pos);
          const std::string token =
              data.substr(pos, comma == std::string::npos ? std::string::npos
                                                          : comma - pos);
          if (!token.empty()) {
            const HostId host{std::stoull(token)};
            // Only hosts that still exist in the engine are recovered.
            if (engine_.has_host(host)) managed_.insert(host);
          }
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
        engine_.enable_probes(probe_endpoint_);
        if (ready) ready(!managed_.empty());
      });
}

std::vector<HostId> Manager::managed_hosts() const {
  return {managed_.begin(), managed_.end()};
}

void Manager::on_probe(const net::Delivery& delivery) {
  const auto* msg =
      dynamic_cast<const engine::ProbeMessage*>(delivery.message.get());
  if (msg == nullptr) {
    ESH_WARN << "Manager: unexpected message on probe endpoint";
    return;
  }
  const HostId host = msg->probe.host;
  if (!managed_.contains(host)) return;  // source/sink/dedicated hosts
  latest_probes_[host] = msg->probe;
  reported_since_eval_.insert(host);
  maybe_evaluate();
}

void Manager::maybe_evaluate() {
  // Rules are evaluated as soon as a complete set of probes has arrived
  // since the previous evaluation (paper §V).
  if (reported_since_eval_.size() < managed_.size()) return;
  reported_since_eval_.clear();

  SystemView view;
  view.time = simulator_.now();
  LoadSample sample;
  sample.time = view.time;
  sample.hosts = managed_.size();
  sample.min_cpu = 1.0;
  const auto& cfg = engine_.static_config();
  for (HostId host : managed_) {
    auto it = latest_probes_.find(host);
    if (it == latest_probes_.end()) return;  // not all hosts known yet
    const cluster::HostProbe& probe = it->second;
    view.hosts.push_back(HostView{host, probe.cpu});
    sample.min_cpu = std::min(sample.min_cpu, probe.cpu);
    sample.max_cpu = std::max(sample.max_cpu, probe.cpu);
    sample.avg_cpu += probe.cpu;
    for (const cluster::SliceProbe& sp : probe.slices) {
      const auto& op_name = cfg.op_of(sp.slice).name;
      if (!elastic_ops_.contains(op_name)) continue;
      view.slices.push_back(
          SliceView{sp.slice, host, sp.cpu, sp.state_bytes});
    }
  }
  sample.avg_cpu /= static_cast<double>(managed_.size());
  load_history_.push_back(sample);

  if (!enforcement_enabled_ || executing_ || !is_active()) return;
  MigrationPlan plan =
      policy_override_ ? policy_override_(view) : enforcer_.evaluate(view);
  if (plan.empty()) return;
  ESH_INFO << "Manager: executing " << to_string(plan.reason) << " plan ("
           << plan.moves.size() << " moves, " << plan.new_hosts
           << " new hosts, " << plan.releases.size() << " releases)";
  execute(std::move(plan));
}

void Manager::execute(MigrationPlan plan) {
  executing_ = true;
  active_plan_ = std::move(plan);
  plan_new_hosts_.clear();
  next_move_ = 0;
  hosts_booting_ = active_plan_.new_hosts;
  if (active_plan_.new_hosts == 0) {
    run_next_move();
    return;
  }
  std::size_t allocated = 0;
  for (std::size_t i = 0; i < active_plan_.new_hosts; ++i) {
    try {
      const HostId id = pool_.allocate([this](cluster::Host& host) {
        engine_.add_host(host);
        if (--hosts_booting_ == 0) run_next_move();
      });
      plan_new_hosts_.push_back(id);
      managed_.insert(id);
      ++allocated;
    } catch (const std::runtime_error&) {
      // Pool exhausted: execute what we can. Drop the moves that targeted
      // the hosts we could not get.
      ESH_WARN << "Manager: IaaS pool exhausted, got " << allocated << "/"
               << active_plan_.new_hosts << " hosts";
      std::erase_if(active_plan_.moves,
                    [allocated](const MigrationPlan::Move& mv) {
                      return mv.new_host_index.has_value() &&
                             *mv.new_host_index >= allocated;
                    });
      hosts_booting_ = allocated;
      break;
    }
  }
  persist_hosts();
  if (allocated == 0) {
    run_next_move();
  }
}

void Manager::run_next_move() {
  if (next_move_ >= active_plan_.moves.size()) {
    finish_plan();
    return;
  }
  const MigrationPlan::Move& move = active_plan_.moves[next_move_++];
  HostId dst = move.dst;
  if (move.new_host_index.has_value()) {
    dst = plan_new_hosts_.at(*move.new_host_index);
  }
  if (engine_.slice_host(move.slice) == dst) {
    run_next_move();
    return;
  }
  engine_.migrate(move.slice, dst,
                  [this, dst](const engine::MigrationReport& report) {
                    migrations_.push_back(report);
                    persist_placement(report.slice, dst);
                    run_next_move();
                  });
}

void Manager::finish_plan() {
  for (HostId host : active_plan_.releases) {
    if (!engine_.slices_on(host).empty()) {
      ESH_WARN << "Manager: host " << host
               << " not empty after plan; skipping release";
      continue;
    }
    engine_.remove_host(host);
    pool_.release(host);
    managed_.erase(host);
    latest_probes_.erase(host);
  }
  persist_hosts();
  executing_ = false;
  ++plans_executed_;
  // Fresh probe round before the next evaluation.
  reported_since_eval_.clear();
}

void Manager::persist_placement(SliceId slice, HostId host) {
  const std::string path = config_.coord_root + "/config/slices/" +
                           std::to_string(slice.value());
  const std::string data = std::to_string(host.value());
  coord_client_->set(path, data, -1,
                     [this, path, data](coord::Status st, coord::Stat) {
                       if (st == coord::Status::kNoNode) {
                         coord_client_->create(path, data,
                                               coord::CreateMode::kPersistent,
                                               [](coord::Status,
                                                  const std::string&) {});
                       }
                     });
}

void Manager::persist_hosts() {
  std::string data;
  for (HostId host : managed_) {
    if (!data.empty()) data += ',';
    data += std::to_string(host.value());
  }
  const std::string path = config_.coord_root + "/config/hosts";
  coord_client_->set(path, data, -1,
                     [this, path, data](coord::Status st, coord::Stat) {
                       if (st == coord::Status::kNoNode) {
                         coord_client_->create(path, data,
                                               coord::CreateMode::kPersistent,
                                               [](coord::Status,
                                                  const std::string&) {});
                       }
                     });
}

}  // namespace esh::elastic
