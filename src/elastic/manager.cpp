#include "elastic/manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"
#include "engine/event.hpp"

namespace esh::elastic {

Manager::Manager(sim::Simulator& simulator, net::Network& network,
                 engine::Engine& engine, cluster::IaasPool& pool,
                 coord::CoordService& coord, HostId manager_host,
                 ManagerConfig config)
    : simulator_(simulator),
      network_(network),
      engine_(engine),
      pool_(pool),
      coord_(coord),
      manager_host_(manager_host),
      config_(std::move(config)),
      enforcer_(config_.policy) {
  probe_endpoint_ = network_.new_endpoint();
  network_.bind(probe_endpoint_, manager_host_,
                [this](const net::Delivery& d) { on_probe(d); });
  coord_client_ = std::make_unique<coord::CoordClient>(coord_);
  for (const auto& name : config_.elastic_operators) {
    elastic_ops_.insert(name);
  }
  if (config_.recovery.enabled) {
    detector_ = std::make_unique<FailureDetector>(simulator_,
                                                  config_.recovery.detector);
    detector_->on_dead([this](const HealthEvent& ev) {
      if (is_active()) on_host_dead(ev);
    });
    detector_->on_suspect([this](const HealthEvent& ev) {
      if (is_active()) on_host_suspect(ev);
    });
    if (engine_.reliable_control_enabled()) {
      // Control-channel retry exhaustion is unreachability evidence: raise
      // suspicion immediately instead of waiting out the probe silence.
      // (The engine holds one callback; with hot standbys the most recently
      // constructed manager owns it — inactive instances drop the signal
      // and silence-based conviction still covers the window.)
      engine_.on_control_unreachable([this](HostId host) {
        if (is_active() && detector_) detector_->report_unreachable(host);
      });
    }
  }
  if (config_.use_leader_election) {
    election_ = std::make_unique<coord::LeaderElection>(
        *coord_client_, config_.coord_root + "/manager-election",
        [this](bool leader) {
          if (!leader) return;
          // Promotion: recover the current managed set (minus any host the
          // previous manager declared dead) and pull the probe stream to
          // this instance.
          load_health([this](std::set<HostId> dead) {
            coord_client_->get(
                config_.coord_root + "/config/hosts",
                [this, dead = std::move(dead)](coord::Status st,
                                               const std::string& data,
                                               coord::Stat) {
                  if (st == coord::Status::kOk && !data.empty()) {
                    std::set<HostId> recovered;
                    std::size_t pos = 0;
                    while (pos <= data.size()) {
                      const std::size_t comma = data.find(',', pos);
                      const std::string token = data.substr(
                          pos, comma == std::string::npos ? std::string::npos
                                                          : comma - pos);
                      if (!token.empty()) {
                        const HostId host{std::stoull(token)};
                        if (engine_.has_host(host) && !dead.contains(host)) {
                          recovered.insert(host);
                        }
                      }
                      if (comma == std::string::npos) break;
                      pos = comma + 1;
                    }
                    // Keep the bootstrap set if the persisted one is not
                    // readable yet (fresh deployment racing its first write).
                    if (!recovered.empty()) managed_ = std::move(recovered);
                  }
                  if (detector_) {
                    for (HostId host : dead) detector_->mark_dead(host);
                  }
                  watch_managed();
                  reported_since_eval_.clear();
                  engine_.enable_probes(probe_endpoint_);
                });
          });
        });
  }
}

Manager::~Manager() {
  if (network_.bound(probe_endpoint_)) {
    network_.unbind(probe_endpoint_);
  }
}

void Manager::start(const std::vector<HostId>& managed_hosts) {
  if (started_) {
    throw std::logic_error{"Manager::start: already started"};
  }
  managed_.insert(managed_hosts.begin(), managed_hosts.end());
  started_ = true;
  // The config tree must exist before the first placement writes; chain
  // the creates (the coordination pipeline is asynchronous).
  coord_client_->ensure_path(
      config_.coord_root + "/config/slices", "", [this](coord::Status) {
        coord_client_->ensure_path(
            config_.coord_root + "/config/hosts", "", [this](coord::Status) {
              persist_hosts();
              for (HostId host : managed_) {
                for (SliceId slice : engine_.slices_on(host)) {
                  persist_placement(slice, host);
                }
              }
            });
      });
  if (election_) {
    election_->enter();  // first contender: leads and pulls probes
  } else {
    watch_managed();
    engine_.enable_probes(probe_endpoint_);
  }
}

void Manager::enter_standby() {
  if (!election_) {
    throw std::logic_error{"enter_standby requires use_leader_election"};
  }
  if (started_) {
    throw std::logic_error{"enter_standby: already started"};
  }
  started_ = true;
  election_->enter();
}

void Manager::resign() {
  if (election_) election_->resign();
}

void Manager::start_from_coordination(std::function<void(bool)> ready) {
  if (started_) {
    throw std::logic_error{"Manager::start_from_coordination: already started"};
  }
  started_ = true;
  load_health([this, ready = std::move(ready)](std::set<HostId> dead) {
    coord_client_->get(
        config_.coord_root + "/config/hosts",
        [this, ready = std::move(ready), dead = std::move(dead)](
            coord::Status st, const std::string& data, coord::Stat) {
          if (st != coord::Status::kOk) {
            ESH_WARN << "Manager recovery: no persisted host set ("
                     << coord::to_string(st) << ")";
            // Not started after all: a later fresh start() must work.
            started_ = false;
            if (ready) ready(false);
            return;
          }
          std::size_t pos = 0;
          while (pos < data.size()) {
            const std::size_t comma = data.find(',', pos);
            const std::string token =
                data.substr(pos, comma == std::string::npos ? std::string::npos
                                                            : comma - pos);
            if (!token.empty()) {
              const HostId host{std::stoull(token)};
              // Only hosts that still exist in the engine and were not
              // declared dead by the previous manager are recovered.
              if (engine_.has_host(host) && !dead.contains(host)) {
                managed_.insert(host);
              }
            }
            if (comma == std::string::npos) break;
            pos = comma + 1;
          }
          if (managed_.empty()) {
            ESH_WARN << "Manager recovery: persisted host set empty";
            started_ = false;
            if (ready) ready(false);
            return;
          }
          if (detector_) {
            for (HostId host : dead) detector_->mark_dead(host);
          }
          watch_managed();
          engine_.enable_probes(probe_endpoint_);
          if (ready) ready(true);
        });
  });
}

std::vector<HostId> Manager::managed_hosts() const {
  return {managed_.begin(), managed_.end()};
}

void Manager::on_probe(const net::Delivery& delivery) {
  const auto* msg =
      dynamic_cast<const engine::ProbeMessage*>(delivery.message.get());
  if (msg == nullptr) {
    ESH_WARN << "Manager: unexpected message on probe endpoint";
    return;
  }
  const HostId host = msg->probe.host;
  if (!managed_.contains(host)) return;  // source/sink/dedicated hosts
  // window_end is the probe's send timestamp on the global virtual clock,
  // so arrival minus it is the one-way delay — the detector's gray-failure
  // (latency) signal.
  if (detector_) {
    detector_->heartbeat(host, simulator_.now() - msg->probe.window_end);
  }
  latest_probes_[host] = msg->probe;
  reported_since_eval_.insert(host);
  maybe_evaluate();
}

void Manager::maybe_evaluate() {
  // Rules are evaluated as soon as a complete set of probes has arrived
  // since the previous evaluation (paper §V).
  if (reported_since_eval_.size() < managed_.size()) return;
  reported_since_eval_.clear();

  SystemView view;
  view.time = simulator_.now();
  LoadSample sample;
  sample.time = view.time;
  sample.hosts = managed_.size();
  sample.min_cpu = 1.0;
  const auto& cfg = engine_.static_config();
  for (HostId host : managed_) {
    auto it = latest_probes_.find(host);
    if (it == latest_probes_.end()) return;  // not all hosts known yet
    const cluster::HostProbe& probe = it->second;
    view.hosts.push_back(HostView{host, probe.cpu});
    sample.min_cpu = std::min(sample.min_cpu, probe.cpu);
    sample.max_cpu = std::max(sample.max_cpu, probe.cpu);
    sample.avg_cpu += probe.cpu;
    for (const cluster::SliceProbe& sp : probe.slices) {
      const auto& op_name = cfg.op_of(sp.slice).name;
      if (!elastic_ops_.contains(op_name)) continue;
      SliceView sv{sp.slice, host, sp.cpu, sp.state_bytes, false, {}};
      if (config_.policy.enable_splits) {
        if (auto* rt = engine_.slice_runtime(sp.slice)) {
          sv.splittable = rt->handler().supports_split();
        }
      }
      view.slices.push_back(sv);
    }
  }
  sample.avg_cpu /= static_cast<double>(managed_.size());
  load_history_.push_back(sample);

  if (config_.policy.enable_splits) {
    // Pair coverage-siblings for the cold-merge rule. The low-tag side of
    // each pair carries the link, so every mergeable pair appears exactly
    // once per view. Coverage is resolved against CURRENT routing: probes
    // can be a beat stale, and the engine re-validates before acting.
    const auto coverage_of = [&cfg](SliceId slice) -> const KeyCoverage* {
      if (!cfg.slice_infos.contains(slice)) return nullptr;
      const auto& op = cfg.op_of(slice);
      for (std::size_t i = 0; i < op.slices.size(); ++i) {
        if (op.slices[i] == slice) return &op.coverages[i];
      }
      return nullptr;
    };
    std::map<std::pair<std::size_t, KeyCoverage>, SliceId> by_cov;
    for (const SliceView& s : view.slices) {
      if (const KeyCoverage* cov = coverage_of(s.slice)) {
        by_cov[{cfg.info_of(s.slice).op_index, *cov}] = s.slice;
      }
    }
    for (SliceView& s : view.slices) {
      if (!s.splittable) continue;
      const KeyCoverage* cov = coverage_of(s.slice);
      if (cov == nullptr || cov->depth == 0) continue;
      if (((cov->tag >> (cov->depth - 1)) & 1U) != 0) continue;
      const KeyCoverage sibling{
          cov->base, cov->bucket, cov->depth,
          cov->tag | (std::uint64_t{1} << (cov->depth - 1))};
      auto it = by_cov.find({cfg.info_of(s.slice).op_index, sibling});
      if (it != by_cov.end()) s.merge_sibling = it->second;
    }
  }

  if (!enforcement_enabled_ || executing_ || !is_active()) return;
  MigrationPlan plan =
      policy_override_ ? policy_override_(view) : enforcer_.evaluate(view);
  if (plan.empty()) return;
  ESH_INFO << "Manager: executing " << to_string(plan.reason) << " plan ("
           << plan.moves.size() << " moves, " << plan.new_hosts
           << " new hosts, " << plan.releases.size() << " releases)";
  execute(std::move(plan));
}

void Manager::execute(MigrationPlan plan) {
  executing_ = true;
  active_plan_ = std::move(plan);
  plan_new_hosts_.clear();
  next_move_ = 0;
  next_split_ = 0;
  next_merge_ = 0;
  hosts_booting_ = active_plan_.new_hosts;
  if (active_plan_.new_hosts == 0) {
    run_next_move();
    return;
  }
  std::size_t allocated = 0;
  for (std::size_t i = 0; i < active_plan_.new_hosts; ++i) {
    try {
      const HostId id = pool_.allocate([this](cluster::Host& host) {
        engine_.add_host(host);
        if (detector_) detector_->watch(host.id());
        if (--hosts_booting_ == 0) run_next_move();
      });
      plan_new_hosts_.push_back(id);
      managed_.insert(id);
      ++allocated;
    } catch (const std::runtime_error&) {
      // Pool exhausted: execute what we can. Drop the moves that targeted
      // the hosts we could not get.
      ESH_WARN << "Manager: IaaS pool exhausted, got " << allocated << "/"
               << active_plan_.new_hosts << " hosts";
      std::erase_if(active_plan_.moves,
                    [allocated](const MigrationPlan::Move& mv) {
                      return mv.new_host_index.has_value() &&
                             *mv.new_host_index >= allocated;
                    });
      hosts_booting_ = allocated;
      break;
    }
  }
  persist_hosts();
  if (allocated == 0) {
    run_next_move();
  }
}

void Manager::run_next_move() {
  if (next_move_ >= active_plan_.moves.size()) {
    run_next_split();
    return;
  }
  const MigrationPlan::Move& move = active_plan_.moves[next_move_++];
  HostId dst = move.dst;
  if (move.new_host_index.has_value()) {
    dst = plan_new_hosts_.at(*move.new_host_index);
  }
  run_move(move, dst, 0);
}

void Manager::run_move(MigrationPlan::Move move, HostId dst,
                       std::size_t attempt) {
  const SliceId slice = move.slice;
  // The plan may be stale by the time a move runs: hosts die mid-plan and
  // lost slices belong to the recovery path, not the migration path.
  if (!engine_.has_host(dst) || engine_.slice_lost(slice) ||
      engine_.slice_host(slice) == dst) {
    run_next_move();
    return;
  }
  // Re-derive the protocol from the signals the plan recorded: the choice
  // is a pure function of (policy, state_bytes, cpu), so the planning-time
  // and execution-time answers must agree.
  const engine::MigrationStrategyKind strategy =
      select_strategy(enforcer_.config(), move.state_bytes, move.cpu);
#if ESH_INVARIANTS_ENABLED
  engine::MigrationStrategyKind planned = move.strategy;
  if (testing_corrupt_strategy_plan) {
    // Seeded fault: the plan carries a different protocol than its own
    // signals derive; the determinism contract below must trip.
    testing_corrupt_strategy_plan = false;
    planned = planned == engine::MigrationStrategyKind::kBufferedReplay
                  ? engine::MigrationStrategyKind::kStopAndRestart
                  : engine::MigrationStrategyKind::kBufferedReplay;
  }
  ESH_INVARIANT("elastic", "strategy-selection-deterministic",
                planned == strategy,
                ::esh::contracts::Detail{}
                    .slice(slice)
                    .expected(engine::to_string(strategy))
                    .actual(engine::to_string(planned))
                    .note("state_bytes=" + std::to_string(move.state_bytes)));
#endif
  engine_.migrate(
      slice, dst, strategy,
      [this, move, slice, dst, attempt](const engine::MigrationReport& report) {
        migrations_.push_back(report);
        switch (report.outcome) {
          case engine::MigrationOutcome::kCompleted:
            persist_placement(slice, dst);
            run_next_move();
            return;
          case engine::MigrationOutcome::kRejected:
            run_next_move();
            return;
          case engine::MigrationOutcome::kAbortedSrcFailed:
          case engine::MigrationOutcome::kAbortedDstFailed:
            break;
        }
        // Aborted by a host failure mid-protocol. Retry with backoff while
        // the slice survived and the destination still exists; a lost
        // slice is the recovery orchestration's problem now.
        if (attempt < config_.migration_max_retries &&
            !engine_.slice_lost(slice) && engine_.has_host(dst)) {
          ESH_WARN << "Manager: migration of slice " << slice << " aborted ("
                   << to_string(report.outcome) << "); retrying";
          simulator_.schedule(config_.migration_retry_backoff,
                              [this, move, dst, attempt] {
                                run_move(move, dst, attempt + 1);
                              });
          return;
        }
        ESH_WARN << "Manager: migration of slice " << slice << " abandoned ("
                 << to_string(report.outcome) << ")";
        run_next_move();
      });
}

void Manager::run_next_split() {
  if (next_split_ >= active_plan_.splits.size()) {
    run_next_merge();
    return;
  }
  const MigrationPlan::Split split = active_plan_.splits[next_split_++];
  // Stale-plan guard mirrors run_move: a lost slice belongs to recovery.
  if (engine_.slice_lost(split.slice) || !engine_.has_host(split.dst)) {
    run_next_split();
    return;
  }
  engine_.split_slice(
      split.slice, split.dst,
      [this](const engine::TransitionReport& report) {
        transitions_.push_back(report);
        if (report.completed) {
          persist_placement(report.child, engine_.slice_host(report.child));
        }
        // No retry: an aborted split leaves routing intact, and the
        // enforcer re-arms after the grace period if the hotspot persists.
        run_next_split();
      });
}

void Manager::run_next_merge() {
  if (next_merge_ >= active_plan_.merges.size()) {
    finish_plan();
    return;
  }
  const MigrationPlan::Merge merge = active_plan_.merges[next_merge_++];
  if (engine_.slice_lost(merge.survivor) || engine_.slice_lost(merge.retiree)) {
    run_next_merge();
    return;
  }
  engine_.merge_slices(merge.survivor, merge.retiree,
                       [this](const engine::TransitionReport& report) {
                         transitions_.push_back(report);
                         run_next_merge();
                       });
}

void Manager::finish_plan() {
  for (HostId host : active_plan_.releases) {
    if (!engine_.slices_on(host).empty()) {
      ESH_WARN << "Manager: host " << host
               << " not empty after plan; skipping release";
      continue;
    }
    engine_.remove_host(host);
    pool_.release(host);
    managed_.erase(host);
    latest_probes_.erase(host);
    // A released host legitimately stops probing.
    if (detector_) detector_->unwatch(host);
  }
  persist_hosts();
  executing_ = false;
  ++plans_executed_;
  // Fresh probe round before the next evaluation.
  reported_since_eval_.clear();
}

void Manager::persist_placement(SliceId slice, HostId host) {
  const std::string path = config_.coord_root + "/config/slices/" +
                           std::to_string(slice.value());
  const std::string data = std::to_string(host.value());
  coord_client_->set(path, data, -1,
                     [this, path, data](coord::Status st, coord::Stat) {
                       if (st == coord::Status::kNoNode) {
                         coord_client_->create(path, data,
                                               coord::CreateMode::kPersistent,
                                               [](coord::Status,
                                                  const std::string&) {});
                       }
                     });
}

void Manager::persist_hosts() {
  std::string data;
  for (HostId host : managed_) {
    if (!data.empty()) data += ',';
    data += std::to_string(host.value());
  }
  const std::string path = config_.coord_root + "/config/hosts";
  coord_client_->set(path, data, -1,
                     [this, path, data](coord::Status st, coord::Stat) {
                       if (st == coord::Status::kNoNode) {
                         coord_client_->create(path, data,
                                               coord::CreateMode::kPersistent,
                                               [](coord::Status,
                                                  const std::string&) {});
                       }
                     });
}

// ---- failure handling -------------------------------------------------------

void Manager::persist_health(HostId host) {
  // The verdict outlives this manager instance: a restarted or promoted
  // manager must not re-adopt a host that was already declared dead.
  coord_client_->ensure_path(
      config_.coord_root + "/health/" + std::to_string(host.value()), "dead",
      [](coord::Status) {});
}

void Manager::load_health(std::function<void(std::set<HostId>)> done) {
  coord_client_->get_children(
      config_.coord_root + "/health",
      [done = std::move(done)](coord::Status st,
                               const std::vector<std::string>& names) {
        std::set<HostId> dead;
        if (st == coord::Status::kOk) {
          for (const std::string& name : names) {
            dead.insert(HostId{std::stoull(name)});
          }
        }
        done(std::move(dead));
      });
}

void Manager::watch_managed() {
  if (!detector_) return;
  for (HostId host : managed_) detector_->watch(host);
}

void Manager::on_host_dead(const HealthEvent& ev) {
  const HostId host = ev.host;
  if (!managed_.contains(host) || active_recoveries_.contains(host)) return;
  if (!engine_.has_host(host)) {
    // Already quarantined (e.g. by a concurrent manager instance): just
    // drop it from the managed set.
    managed_.erase(host);
    latest_probes_.erase(host);
    reported_since_eval_.erase(host);
    persist_hosts();
    return;
  }
  if (!engine_.config().checkpoints.enabled) {
    ESH_WARN << "Manager: host " << host
             << " dead but checkpoints are disabled; cannot recover";
    return;
  }
  ESH_WARN << "Manager: host " << host << " dead, starting recovery";
  persist_health(host);

  // Snapshot the dead host's last probe before dropping it: the per-slice
  // CPU weights drive the replacement placement.
  cluster::HostProbe last_probe{};
  if (auto it = latest_probes_.find(host); it != latest_probes_.end()) {
    last_probe = it->second;
    latest_probes_.erase(it);
  }
  managed_.erase(host);
  reported_since_eval_.erase(host);
  persist_hosts();
  // Note: the crashed host is NOT released back to the IaaS pool; its Host
  // object is still referenced by the quarantined runtime.

  ActiveRecovery rec;
  rec.report.host = host;
  rec.report.detected = ev.at;
  const std::vector<SliceId> lost = engine_.fail_host(host);
  rec.report.quarantined = simulator_.now();
  rec.report.slices_lost = lost;
  if (lost.empty()) {
    rec.report.placed = rec.report.recovered = simulator_.now();
    rec.report.complete = true;
    recoveries_.push_back(std::move(rec.report));
    return;
  }

  // Re-place the lost slices over the survivors under the placement cap;
  // what does not fit goes to fresh hosts from the pool.
  std::vector<SliceView> moving;
  for (SliceId slice : lost) {
    SliceView view{slice, host, 0.0, 0, false, {}};
    for (const cluster::SliceProbe& sp : last_probe.slices) {
      if (sp.slice == slice) {
        view.cpu = sp.cpu;
        view.state_bytes = sp.state_bytes;
        break;
      }
    }
    moving.push_back(view);
  }
  std::vector<HostView> bins;
  for (HostId survivor : managed_) {
    double cpu = 0.0;
    if (auto it = latest_probes_.find(survivor); it != latest_probes_.end()) {
      cpu = it->second.cpu;
    }
    bins.push_back(HostView{survivor, cpu});
  }
  std::size_t bins_used = 0;
  const std::vector<MigrationPlan::Move> placement =
      first_fit_place(std::move(moving), std::move(bins),
                      enforcer_.config().placement_cap, 0, &bins_used);

  std::vector<std::pair<SliceId, HostId>> immediate;
  std::map<std::size_t, std::vector<SliceId>> on_new_host;
  for (const MigrationPlan::Move& mv : placement) {
    if (mv.new_host_index.has_value()) {
      on_new_host[*mv.new_host_index].push_back(mv.slice);
    } else {
      immediate.emplace_back(mv.slice, mv.dst);
    }
  }
  for (auto& [index, slices] : on_new_host) {
    try {
      const HostId fresh =
          pool_.allocate([this, host, slices](cluster::Host& h) {
            // Replacement booted: adopt it, then replay the slices that
            // waited for its capacity.
            engine_.add_host(h);
            managed_.insert(h.id());
            persist_hosts();
            if (detector_) detector_->watch(h.id());
            for (SliceId slice : slices) attempt_recover(host, slice, h.id(), 1);
          });
      rec.report.replacement_hosts.push_back(fresh);
    } catch (const std::runtime_error&) {
      // Pool exhausted: recover onto survivors beyond the cap — degraded
      // capacity beats lost slices.
      const std::optional<HostId> fallback = pick_recovery_host(host);
      if (!fallback) {
        ESH_WARN << "Manager: no host available to recover slices of " << host;
        continue;
      }
      ESH_WARN << "Manager: IaaS pool exhausted, recovering onto " << *fallback;
      for (SliceId slice : slices) immediate.emplace_back(slice, *fallback);
    }
  }
  rec.report.placed = simulator_.now();
  for (SliceId slice : lost) rec.pending.insert(slice);
  active_recoveries_[host] = std::move(rec);
  for (const auto& [slice, dst] : immediate) attempt_recover(host, slice, dst, 1);
}

void Manager::attempt_recover(HostId dead_host, SliceId slice, HostId dst,
                              std::size_t attempt) {
  auto it = active_recoveries_.find(dead_host);
  if (it == active_recoveries_.end()) return;
  ActiveRecovery& rec = it->second;
  if (!rec.pending.contains(slice)) return;  // already recovered
  if (attempt > config_.recovery.max_attempts) {
    ESH_WARN << "Manager: giving up on slice " << slice << " after "
             << config_.recovery.max_attempts << " attempts";
    rec.pending.erase(slice);
    maybe_finish_recovery(dead_host);
    return;
  }
  if (!engine_.has_host(dst)) {
    const std::optional<HostId> other = pick_recovery_host(dst);
    if (!other) {
      ESH_WARN << "Manager: no live host to recover slice " << slice;
      rec.pending.erase(slice);
      maybe_finish_recovery(dead_host);
      return;
    }
    dst = *other;
  }
  rec.attempts[slice] = attempt;
  if (attempt > 1) ++rec.report.retries;
  engine_.recover_slice(slice, dst, [this, dead_host, slice] {
    on_slice_recovered(dead_host, slice);
  });
  // Watchdog: a replay that missed its deadline is retried on another host
  // after a backoff (bounded by max_attempts).
  simulator_.schedule(
      config_.recovery.attempt_timeout,
      [this, dead_host, slice, dst, attempt] {
        auto rit = active_recoveries_.find(dead_host);
        if (rit == active_recoveries_.end()) return;
        if (!rit->second.pending.contains(slice)) return;
        if (rit->second.attempts[slice] != attempt) return;  // superseded
        ESH_WARN << "Manager: recovery of slice " << slice
                 << " timed out on host " << dst;
        const std::optional<HostId> next = pick_recovery_host(dst);
        const HostId retry_dst = next.value_or(dst);
        simulator_.schedule(config_.recovery.retry_backoff,
                            [this, dead_host, slice, retry_dst, attempt] {
                              attempt_recover(dead_host, slice, retry_dst,
                                              attempt + 1);
                            });
      });
}

void Manager::on_slice_recovered(HostId dead_host, SliceId slice) {
  auto it = active_recoveries_.find(dead_host);
  if (it == active_recoveries_.end()) return;
  if (it->second.pending.erase(slice) == 0) return;
  ++it->second.report.slices_recovered;
  persist_placement(slice, engine_.slice_host(slice));
  maybe_finish_recovery(dead_host);
}

void Manager::maybe_finish_recovery(HostId dead_host) {
  auto it = active_recoveries_.find(dead_host);
  if (it == active_recoveries_.end() || !it->second.pending.empty()) return;
  RecoveryReport report = std::move(it->second.report);
  report.recovered = simulator_.now();
  report.complete = report.slices_recovered == report.slices_lost.size();
  ESH_INFO << "Manager: recovery of host " << dead_host << " finished ("
           << report.slices_recovered << "/" << report.slices_lost.size()
           << " slices, MTTR " << to_millis(report.mttr()) << " ms)";
  recoveries_.push_back(std::move(report));
  active_recoveries_.erase(it);
  // Fresh probe round before the next policy evaluation.
  reported_since_eval_.clear();
}

// ---- graceful degradation (suspect drain) -----------------------------------

void Manager::on_host_suspect(const HealthEvent& ev) {
  if (!config_.recovery.drain_suspects) return;
  const HostId host = ev.host;
  if (!managed_.contains(host)) return;
  if (drain_scheduled_.contains(host) || draining_ == host) return;
  drain_scheduled_.insert(host);
  const SimTime suspected = ev.at;
  simulator_.schedule(config_.recovery.drain_after, [this, host, suspected] {
    maybe_start_drain(host, suspected);
  });
}

void Manager::maybe_start_drain(HostId host, SimTime suspected) {
  drain_scheduled_.erase(host);
  if (!is_active() || !detector_) return;
  // Only *sustained* suspicion drains: a host that recovered (heartbeats
  // resumed, latency EWMA back under threshold) is left alone, and one
  // already convicted dead belongs to the recovery path.
  if (detector_->health(host) != HostHealth::kSuspect) return;
  if (!managed_.contains(host) || !engine_.has_host(host)) return;
  if (executing_ || draining_) {
    // A plan or another drain is in flight; re-check later. The suspicion
    // re-check above keeps this loop finite.
    drain_scheduled_.insert(host);
    simulator_.schedule(config_.recovery.drain_after, [this, host, suspected] {
      maybe_start_drain(host, suspected);
    });
    return;
  }

  ESH_WARN << "Manager: draining suspect host " << host
           << " (graceful degradation)";
  draining_ = host;
  executing_ = true;  // drains and policy plans are mutually exclusive
  active_drain_ = DrainReport{};
  active_drain_.host = host;
  active_drain_.suspected = suspected;
  active_drain_.started = simulator_.now();
  drain_moves_.clear();
  next_drain_move_ = 0;

  // Re-place every slice over the other survivors under the placement cap,
  // reusing the recovery placement logic; whatever does not fit piles onto
  // the least-loaded survivor (degraded capacity beats a gray host).
  std::vector<SliceView> moving;
  cluster::HostProbe last_probe{};
  if (auto it = latest_probes_.find(host); it != latest_probes_.end()) {
    last_probe = it->second;
  }
  for (SliceId slice : engine_.slices_on(host)) {
    SliceView view{slice, host, 0.0, 0, false, {}};
    for (const cluster::SliceProbe& sp : last_probe.slices) {
      if (sp.slice == slice) {
        view.cpu = sp.cpu;
        view.state_bytes = sp.state_bytes;
        break;
      }
    }
    moving.push_back(view);
  }
  std::vector<HostView> bins;
  for (HostId survivor : managed_) {
    if (survivor == host) continue;
    double cpu = 0.0;
    if (auto it = latest_probes_.find(survivor); it != latest_probes_.end()) {
      cpu = it->second.cpu;
    }
    bins.push_back(HostView{survivor, cpu});
  }
  std::size_t bins_used = 0;
  const std::vector<MigrationPlan::Move> placement =
      first_fit_place(std::move(moving), std::move(bins),
                      enforcer_.config().placement_cap, 0, &bins_used);
  for (const MigrationPlan::Move& mv : placement) {
    HostId dst = mv.dst;
    if (mv.new_host_index.has_value()) {
      const std::optional<HostId> fallback = pick_recovery_host(host);
      if (!fallback) {
        ESH_WARN << "Manager: no survivor can absorb slice " << mv.slice
                 << "; it stays on the suspect host";
        continue;
      }
      dst = *fallback;
    }
    drain_moves_.emplace_back(mv.slice, dst);
  }
  drain_next_move();
}

void Manager::drain_next_move() {
  const HostId host = *draining_;
  if (!engine_.has_host(host)) {
    // The host died mid-drain; recovery owns its remaining slices now.
    active_drain_.aborted = true;
    finish_drain();
    return;
  }
  if (next_drain_move_ >= drain_moves_.size()) {
    finish_drain();
    return;
  }
  const auto [slice, dst] = drain_moves_[next_drain_move_++];
  if (engine_.slice_lost(slice) || !engine_.has_host(dst) ||
      engine_.slice_host(slice) != host) {
    drain_next_move();
    return;
  }
  engine_.migrate(slice, dst,
                  [this, slice, dst](const engine::MigrationReport& report) {
                    migrations_.push_back(report);
                    if (report.outcome ==
                        engine::MigrationOutcome::kCompleted) {
                      ++active_drain_.slices_moved;
                      persist_placement(slice, dst);
                    }
                    drain_next_move();
                  });
}

void Manager::finish_drain() {
  const HostId host = *draining_;
  if (!active_drain_.aborted && engine_.has_host(host) &&
      engine_.slices_on(host).empty()) {
    // The gray box is out of the dataflow: stop managing it. It is NOT
    // released back to the IaaS pool — a host that went gray is not reused.
    engine_.remove_host(host);
    managed_.erase(host);
    latest_probes_.erase(host);
    reported_since_eval_.erase(host);
    if (detector_) detector_->unwatch(host);
    persist_hosts();
    active_drain_.complete = true;
  }
  active_drain_.completed = simulator_.now();
  ESH_INFO << "Manager: drain of host " << host << " finished ("
           << active_drain_.slices_moved << " slices moved, "
           << (active_drain_.complete ? "complete" : "incomplete")
           << (active_drain_.aborted ? ", aborted" : "") << ")";
  drains_.push_back(active_drain_);
  draining_.reset();
  executing_ = false;
  // Fresh probe round before the next policy evaluation.
  reported_since_eval_.clear();
}

std::optional<HostId> Manager::pick_recovery_host(HostId avoid) const {
  std::optional<HostId> best;
  double best_cpu = 2.0;
  for (HostId host : managed_) {
    if (host == avoid || !engine_.has_host(host)) continue;
    double cpu = 0.0;
    if (auto it = latest_probes_.find(host); it != latest_probes_.end()) {
      cpu = it->second.cpu;
    }
    if (cpu < best_cpu) {
      best_cpu = cpu;
      best = host;
    }
  }
  return best;
}

}  // namespace esh::elastic
