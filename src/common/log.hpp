// Minimal leveled logger. Experiments run millions of simulated events, so
// logging defaults to warnings only; tests raise the level when debugging.
#pragma once

#include <sstream>
#include <string>

namespace esh {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void write(LogLevel level, const std::string& msg);
};

namespace log_detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { Logger::write(level_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace log_detail

}  // namespace esh

#define ESH_LOG(lvl)                        \
  if (::esh::Logger::level() <= (lvl))      \
  ::esh::log_detail::LineBuilder { (lvl) }

#define ESH_DEBUG ESH_LOG(::esh::LogLevel::kDebug)
#define ESH_INFO ESH_LOG(::esh::LogLevel::kInfo)
#define ESH_WARN ESH_LOG(::esh::LogLevel::kWarn)
#define ESH_ERROR ESH_LOG(::esh::LogLevel::kError)
