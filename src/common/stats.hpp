// Statistics utilities used for probes, delay measurement, and the
// experiment harnesses: running moments, percentile sketches, and
// time-binned series matching the paper's 30-second reporting windows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace esh {

// Numerically-stable (Welford) running mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact percentile computation over retained samples. The experiments
// produce at most a few hundred thousand samples, so retaining them is
// cheaper and more faithful than a sketch.
class PercentileTracker {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  // Percentile by nearest-rank on the sorted samples; p in [0, 100].
  // Precondition: count() > 0.
  [[nodiscard]] double percentile(double p) const;

  // Returns the requested percentiles in one sort.
  [[nodiscard]] std::vector<double> percentiles(
      const std::vector<double>& ps) const;

  void reset() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
// first/last bucket. Used by benches for compact delay distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Aggregates (time, value) observations into fixed-duration bins, reporting
// per-bin mean / stddev / min / max — the format of the paper's Figures 7-9
// ("averages, standard deviations, minimum, or maximum values observed over
// periods of 30 seconds").
class TimeBinnedSeries {
 public:
  explicit TimeBinnedSeries(SimDuration bin_width);

  void add(SimTime t, double value);

  struct Bin {
    SimTime start{};
    RunningStats stats;
  };

  // Bins in time order; empty bins are omitted.
  [[nodiscard]] const std::vector<Bin>& bins() const { return bins_; }
  [[nodiscard]] SimDuration bin_width() const { return bin_width_; }

 private:
  SimDuration bin_width_;
  std::vector<Bin> bins_;
};

// Formats a value with fixed precision; convenience for bench output.
std::string format_double(double v, int precision = 2);

}  // namespace esh
