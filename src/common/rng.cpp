#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace esh {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument{"next_below: bound must be > 0"};
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * std::numbers::pi * u2);
  const double z1 = mag * std::sin(2.0 * std::numbers::pi * u2);
  cached_normal_ = z1;
  has_cached_normal_ = true;
  return mean + stddev * z0;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument{"exponential: rate must be > 0"};
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace esh
