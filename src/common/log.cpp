#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace esh {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::write(LogLevel level, const std::string& msg) {
  if (level < Logger::level()) return;
  const std::lock_guard<std::mutex> lock{g_mutex};
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace esh
