#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdint>

namespace esh {

// One parallel_for invocation. Heap-allocated and shared with every worker
// that participates, so no worker can outlive the state it touches even if
// the caller returns first (the caller only waits for completed chunks; a
// worker that lost the race for the last chunk may still be unwinding).
struct ThreadPool::Job {
  std::size_t chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};  // chunk claim cursor

  std::mutex m;
  std::condition_variable done_cv;
  std::size_t done = 0;  // completed chunks, guarded by m
  std::vector<std::exception_ptr> errors;

  // Claims and runs chunks until none remain. fn stays valid: the caller
  // keeps it alive until done == chunks, and chunks only read fn after a
  // successful claim, which precedes their completion.
  void run(std::size_t worker) {
    for (;;) {
      const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks) return;
      std::exception_ptr error;
      try {
        (*fn)(chunk, worker);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock{m};
      if (error) errors[chunk] = error;
      if (++done == chunks) done_cv.notify_one();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : worker_count_(threads < 1 ? 1 : threads) {
  workers_.reserve(worker_count_ - 1);
  for (std::size_t w = 1; w < worker_count_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_seq = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      wake_.wait(lock, [&] { return stop_ || job_seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = job_seq_;
      job = job_;
    }
    // A worker that overslept an entire job sees the bumped sequence with
    // the job already retired; there is nothing left to claim.
    if (job) job->run(worker_id);
  }
}

void ThreadPool::parallel_for(
    std::size_t chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (chunks == 0) return;
  if (worker_count_ <= 1 || chunks == 1) {
    // Inline fast path: same chunk order, same exception behavior (the
    // first throwing chunk aborts the loop -- with one worker no later
    // chunk can have started, matching the pooled contract).
    for (std::size_t c = 0; c < chunks; ++c) fn(c, 0);
    return;
  }

  auto job = std::make_shared<Job>();
  job->chunks = chunks;
  job->fn = &fn;
  job->errors.resize(chunks);
  {
    std::lock_guard<std::mutex> lock{mutex_};
    job_ = job;
    ++job_seq_;
  }
  wake_.notify_all();

  job->run(0);  // the caller is worker 0

  std::unique_lock<std::mutex> lock{job->m};
  job->done_cv.wait(lock, [&] { return job->done == job->chunks; });
  lock.unlock();

  {
    // Drop the pool's reference so the Job (and the fn pointer it holds)
    // does not dangle past this call; idle workers hold no reference
    // between jobs.
    std::lock_guard<std::mutex> pool_lock{mutex_};
    if (job_ == job) job_.reset();
  }

  for (const std::exception_ptr& error : job->errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace esh
