// Deterministic random number generation. Every stochastic component of the
// system draws from a seeded Rng so that simulations and tests are exactly
// reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace esh {

// xoshiro256** seeded through SplitMix64. Small, fast, and good enough for
// workload generation and ASPE key material (which needs statistical, not
// cryptographic, randomness in this reproduction).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform in [0, 2^64).
  std::uint64_t next_u64();

  // Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given rate (events per unit).
  double exponential(double rate);

  bool next_bool() { return (next_u64() & 1u) != 0; }

  // Derive an independent generator; used to give each component its own
  // stream so adding draws in one place does not perturb another.
  Rng split();

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace esh
