// Checked protocol invariants ("contract layer"). The elasticity claims
// rest on properties the code upholds only implicitly — gap-free
// sequence-numbered channels, the duplicate→queue→cut-over migration order,
// EP exactly-once dispatch, IaaS allocate/release balance. Sanitizers catch
// memory and race bugs; this layer catches *protocol* bugs.
//
// The checks compile in only under the ESH_CHECK_INVARIANTS CMake mode
// (cmake -DESH_CHECK_INVARIANTS=ON). They are strictly observers: a check
// never mutates state, so the default and checked builds execute the exact
// same simulation (fig outputs are byte-identical between them). A failed
// check throws ContractViolation, a structured diagnostic carrying the
// subsystem, the violated invariant's name, the offending slice/host id and
// the expected-vs-actual values.
//
// Macro vocabulary (all four arguments are required; `detail` is an
// esh::contracts::Detail value built fluently at the call site):
//
//   ESH_PRECONDITION(subsystem, name, cond, detail)        caller broke the API
//   ESH_INVARIANT(subsystem, name, cond, detail)           internal state broke
//   ESH_STATE_MACHINE_ASSERT(subsystem, name, cond, detail) illegal transition
//
// In the default build the macros expand to ((void)0) and their arguments
// are not evaluated; condition expressions must therefore be side-effect
// free (the linter's job to keep them that way is manual review — keep
// them pure).
#pragma once

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/types.hpp"

#if defined(ESH_CHECK_INVARIANTS) && ESH_CHECK_INVARIANTS
#define ESH_INVARIANTS_ENABLED 1
#else
#define ESH_INVARIANTS_ENABLED 0
#endif

namespace esh::contracts {

inline constexpr bool kEnabled = ESH_INVARIANTS_ENABLED != 0;

enum class Kind { kPrecondition, kInvariant, kStateMachine };

[[nodiscard]] inline const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kPrecondition: return "precondition";
    case Kind::kInvariant: return "invariant";
    case Kind::kStateMachine: return "state-machine";
  }
  return "unknown";
}

namespace internal {

inline std::string stringify(const std::string& v) { return v; }
inline std::string stringify(const char* v) { return v; }
inline std::string stringify(SimTime t) {
  return std::to_string(t.count()) + "us";
}
template <typename Tag>
std::string stringify(Id<Tag> id) {
  return id.valid() ? std::to_string(id.value()) : "invalid";
}
template <typename T>
std::string stringify(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace internal

// Structured payload of a violation, built fluently at the check site:
//   Detail{}.slice(id_).expected(last + 1).actual(event.seq)
struct Detail {
  std::uint64_t slice_id = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t host_id = std::numeric_limits<std::uint64_t>::max();
  std::string expected_value;
  std::string actual_value;
  std::string note_text;

  [[nodiscard]] bool has_slice() const {
    return slice_id != std::numeric_limits<std::uint64_t>::max();
  }
  [[nodiscard]] bool has_host() const {
    return host_id != std::numeric_limits<std::uint64_t>::max();
  }

  Detail& slice(SliceId id) {
    slice_id = id.value();
    return *this;
  }
  Detail& host(HostId id) {
    host_id = id.value();
    return *this;
  }
  template <typename T>
  Detail& expected(const T& v) {
    expected_value = internal::stringify(v);
    return *this;
  }
  template <typename T>
  Detail& actual(const T& v) {
    actual_value = internal::stringify(v);
    return *this;
  }
  template <typename T>
  Detail& note(const T& v) {
    note_text = internal::stringify(v);
    return *this;
  }
  // State-machine sugar: expected = legal successor set, actual = the
  // attempted transition.
  Detail& transition(const std::string& from, const std::string& to) {
    actual_value = from + " -> " + to;
    return *this;
  }
};

// Thrown on any failed check. Derives from std::logic_error so existing
// defensive-throw expectations (EXPECT_THROW(..., std::logic_error)) keep
// passing when a contract fires first in checked builds.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(Kind kind, std::string subsystem, std::string name,
                    std::string condition, Detail detail)
      : std::logic_error(format(kind, subsystem, name, condition, detail)),
        kind_(kind),
        subsystem_(std::move(subsystem)),
        name_(std::move(name)),
        condition_(std::move(condition)),
        detail_(std::move(detail)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& subsystem() const { return subsystem_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& condition() const { return condition_; }
  [[nodiscard]] const Detail& detail() const { return detail_; }

 private:
  static std::string format(Kind kind, const std::string& subsystem,
                            const std::string& name,
                            const std::string& condition,
                            const Detail& detail) {
    std::ostringstream os;
    os << "ContractViolation[" << to_string(kind) << "] " << subsystem << "/"
       << name << ": !(" << condition << ")";
    if (detail.has_slice()) os << " slice=" << detail.slice_id;
    if (detail.has_host()) os << " host=" << detail.host_id;
    if (!detail.expected_value.empty()) {
      os << " expected=" << detail.expected_value;
    }
    if (!detail.actual_value.empty()) os << " actual=" << detail.actual_value;
    if (!detail.note_text.empty()) os << " (" << detail.note_text << ")";
    return os.str();
  }

  Kind kind_;
  std::string subsystem_;
  std::string name_;
  std::string condition_;
  Detail detail_;
};

[[noreturn]] inline void fail(Kind kind, const char* subsystem,
                              const char* name, const char* condition,
                              Detail detail) {
  throw ContractViolation{kind, subsystem, name, condition,
                          std::move(detail)};
}

}  // namespace esh::contracts

#if ESH_INVARIANTS_ENABLED

#define ESH_CONTRACT_CHECK_(kind, subsystem, name, cond, detail)          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::esh::contracts::fail((kind), (subsystem), (name), #cond,          \
                             (detail));                                   \
    }                                                                     \
  } while (false)

#define ESH_PRECONDITION(subsystem, name, cond, detail)                  \
  ESH_CONTRACT_CHECK_(::esh::contracts::Kind::kPrecondition, subsystem,  \
                      name, cond, detail)
#define ESH_INVARIANT(subsystem, name, cond, detail)                  \
  ESH_CONTRACT_CHECK_(::esh::contracts::Kind::kInvariant, subsystem,  \
                      name, cond, detail)
#define ESH_STATE_MACHINE_ASSERT(subsystem, name, cond, detail)          \
  ESH_CONTRACT_CHECK_(::esh::contracts::Kind::kStateMachine, subsystem,  \
                      name, cond, detail)

#else

#define ESH_PRECONDITION(subsystem, name, cond, detail) ((void)0)
#define ESH_INVARIANT(subsystem, name, cond, detail) ((void)0)
#define ESH_STATE_MACHINE_ASSERT(subsystem, name, cond, detail) ((void)0)

#endif
