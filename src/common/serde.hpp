// Binary serialization used for operator-slice state transfer during
// migration. Sizes reported by BinaryWriter feed the migration cost model
// (state bytes -> transfer time) and the enforcer's state-transfer-
// minimizing slice selection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace esh {

class BinaryWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }
  void write_u32(std::uint32_t v) { write_raw(v); }
  void write_u64(std::uint64_t v) { write_raw(v); }
  void write_i64(std::int64_t v) { write_raw(v); }
  void write_f64(double v) { write_raw(v); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  template <typename Tag>
  void write_id(Id<Tag> id) {
    write_u64(id.value());
  }

  void write_string(const std::string& s) {
    write_u64(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  void write_f64_span(std::span<const double> v) {
    write_u64(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(double));
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::byte>& buffer() const { return buf_; }

 private:
  template <typename T>
  void write_raw(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::byte tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  std::vector<std::byte> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t read_u8() {
    check(1);
    return std::to_integer<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t read_u32() { return read_raw<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_raw<std::uint64_t>(); }
  std::int64_t read_i64() { return read_raw<std::int64_t>(); }
  double read_f64() { return read_raw<double>(); }
  bool read_bool() { return read_u8() != 0; }

  template <typename Tag>
  Id<Tag> read_id() {
    return Id<Tag>{read_u64()};
  }

  std::string read_string() {
    const auto n = read_u64();
    check(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<double> read_f64_vector() {
    const auto n = read_u64();
    check(n * sizeof(double));
    std::vector<double> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return v;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void check(std::uint64_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::out_of_range{"BinaryReader: truncated input"};
    }
  }

  template <typename T>
  T read_raw() {
    static_assert(std::is_trivially_copyable_v<T>);
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace esh
