// Deterministic iteration over unordered associative containers.
//
// The simulator core must be deterministic across standard libraries and
// platforms. Iterating a std::unordered_map/set directly is only
// reproducible for one libstdc++ build; wherever the iteration order feeds
// a simulated outcome (network send order, probe vectors, placement
// decisions, serialized state), snapshot the keys and sort them instead.
// Order-independent folds (sums, any-of scans) may iterate the container
// directly behind an allow-comment escape (see scripts/lint.py).
#pragma once

#include <algorithm>
#include <vector>

namespace esh {

// Snapshot + sort of a map's keys. O(n log n); the sites using it are
// control-plane paths (broadcasts, probes, checkpoint cuts), not the
// per-event hot path.
template <typename Map>
[[nodiscard]] std::vector<typename Map::key_type> sorted_keys(
    const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& entry : map) keys.push_back(entry.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace esh
