// Fixed-size worker pool for the real (wall-clock) compute of the matching
// hot path. The discrete-event simulator stays single-threaded: the only
// work that ever leaves the simulator thread is the pure, side-effect-free
// matching computation a handler precomputes for a coalesced batch
// (Handler::on_batch_start), and the simulator thread always joins the pool
// before committing any result. Simulated time, cost accounting and event
// ordering are therefore completely unaware of the pool; only wall-clock
// changes.
//
// The fork-join primitive is parallel_for(chunks, fn): the calling thread
// participates as worker 0, the pool's background threads claim remaining
// chunks from a shared atomic cursor, and the call returns once every chunk
// ran. Chunk-to-worker assignment is racy and irrelevant by construction --
// callers must produce per-chunk results merged in chunk order, never
// accumulate across chunks -- which is what makes pool output bit-identical
// to the serial loop at any thread count.
//
// Exception safety: a chunk that throws never terminates a worker thread.
// Each chunk's exception is captured; after every chunk has run (none are
// abandoned), the lowest-indexed captured exception is rethrown in the
// caller. The pool stays usable afterwards, and the destructor joins all
// workers regardless of past failures.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace esh {

class ThreadPool {
 public:
  // `threads` counts the calling thread: ThreadPool{8} runs parallel_for
  // on 8 concurrent workers (7 background threads + the caller). 0 and 1
  // both mean "no background threads" (parallel_for degenerates to an
  // inline loop).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total workers parallel_for spreads over (background threads + caller).
  [[nodiscard]] std::size_t worker_count() const { return worker_count_; }

  // Runs fn(chunk, worker) for every chunk in [0, chunks), spread over the
  // workers; blocks until all chunks completed. `worker` is in
  // [0, worker_count()) and identifies the executing worker (the caller is
  // worker 0), so callers can maintain per-worker scratch without locking;
  // one worker never runs two chunks concurrently. If chunks threw, the
  // exception of the lowest-indexed throwing chunk is rethrown here after
  // every chunk has run. Not reentrant: one parallel_for at a time.
  void parallel_for(std::size_t chunks,
                    const std::function<void(std::size_t chunk,
                                             std::size_t worker)>& fn);

 private:
  struct Job;
  void worker_loop(std::size_t worker_id);

  std::size_t worker_count_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::shared_ptr<Job> job_;    // guarded by mutex_
  std::uint64_t job_seq_ = 0;   // guarded by mutex_; bumps per parallel_for
  bool stop_ = false;           // guarded by mutex_
};

}  // namespace esh
