// Fundamental vocabulary types shared by every module: strongly-typed
// identifiers and the simulated-time representation.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>

namespace esh {

// Simulated time. All components operate on the virtual clock of the
// discrete-event simulator; microsecond resolution matches the granularity
// of the cost model.
using SimTime = std::chrono::microseconds;
using SimDuration = std::chrono::microseconds;

inline constexpr SimTime kSimTimeZero{0};
inline constexpr SimTime kSimTimeMax{std::numeric_limits<SimTime::rep>::max()};

constexpr SimDuration micros(std::int64_t n) { return SimDuration{n}; }
constexpr SimDuration millis(std::int64_t n) { return SimDuration{n * 1000}; }
constexpr SimDuration seconds(std::int64_t n) {
  return SimDuration{n * 1'000'000};
}
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d.count()) / 1e6;
}
constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d.count()) / 1e3;
}

// Strongly-typed 64-bit identifier. The Tag parameter distinguishes
// otherwise-identical id spaces at compile time (I.4: make interfaces
// precisely and strongly typed).
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

  static constexpr Id invalid() { return Id{}; }

 private:
  static constexpr std::uint64_t kInvalid =
      std::numeric_limits<std::uint64_t>::max();
  std::uint64_t value_ = kInvalid;
};

struct HostTag {};
struct OperatorTag {};
struct SliceTag {};
struct SubscriptionTag {};
struct PublicationTag {};
struct SubscriberTag {};
struct SessionTag {};
struct MigrationTag {};

using HostId = Id<HostTag>;
using OperatorId = Id<OperatorTag>;
using SliceId = Id<SliceTag>;
using SubscriptionId = Id<SubscriptionTag>;
using PublicationId = Id<PublicationTag>;
using SubscriberId = Id<SubscriberTag>;
using SessionId = Id<SessionTag>;
using MigrationId = Id<MigrationTag>;

// Per-channel event sequence number (assigned by the sending slice).
using SeqNo = std::uint64_t;
inline constexpr SeqNo kNoSeqNo = 0;  // sequence numbers start at 1

}  // namespace esh

namespace std {
template <typename Tag>
struct hash<esh::Id<Tag>> {
  size_t operator()(esh::Id<Tag> id) const noexcept {
    // SplitMix64 finalizer: cheap and well distributed.
    std::uint64_t x = id.value() + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};
}  // namespace std
