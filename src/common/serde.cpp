#include "common/serde.hpp"

// Header-only implementation; this translation unit anchors the target.
