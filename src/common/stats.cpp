#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace esh {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ > 0 ? min_ : 0.0; }

double RunningStats::max() const { return count_ > 0 ? max_ : 0.0; }

void PercentileTracker::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileTracker::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error{"percentile: no samples"};
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument{"percentile: p out of [0, 100]"};
  }
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<double> PercentileTracker::percentiles(
    const std::vector<double>& ps) const {
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile(p));
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || !(lo < hi)) {
    throw std::invalid_argument{"Histogram: need lo < hi and buckets > 0"};
  }
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

TimeBinnedSeries::TimeBinnedSeries(SimDuration bin_width)
    : bin_width_(bin_width) {
  if (bin_width <= SimDuration::zero()) {
    throw std::invalid_argument{"TimeBinnedSeries: bin width must be > 0"};
  }
}

void TimeBinnedSeries::add(SimTime t, double value) {
  const auto bin_index = t.count() / bin_width_.count();
  const SimTime start{bin_index * bin_width_.count()};
  if (bins_.empty() || bins_.back().start < start) {
    bins_.push_back(Bin{start, {}});
  } else if (bins_.back().start > start) {
    throw std::logic_error{"TimeBinnedSeries: observations must arrive in time order"};
  }
  bins_.back().stats.add(value);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace esh
