// Key-space coverage descriptors for fine-grained (sub-slice) elasticity.
//
// At deploy time every slice i of an m-slice operator covers the keys with
// key % m == i. A slice split refines one such bucket by one bit of a mixed
// key hash: the parent keeps the keys whose mixed low bits equal `tag`, the
// child takes the keys whose bits equal `tag | 1<<depth`. Coverages of one
// bucket therefore always form a prefix-free binary code, which makes
// completeness (every key covered exactly once) cheap to assert.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace esh {

// SplitMix64 finalizer — identical to std::hash<Id<Tag>> in types.hpp, so
// coverage refinement splits a bucket's keys the same way the id hash
// spreads them.
constexpr std::uint64_t key_mix64(std::uint64_t v) {
  std::uint64_t x = v + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The set of routing keys one slice of an operator is responsible for:
// key % base == bucket, and the low `depth` bits of key_mix64(key) equal
// `tag`. depth == 0 (tag == 0) is the unsplit deploy-time coverage, for
// which covers() degenerates to plain modulo routing.
struct KeyCoverage {
  std::uint32_t base = 1;    // operator's deploy-time slice count
  std::uint32_t bucket = 0;  // key % base selects the bucket
  std::uint32_t depth = 0;   // refinement bits of the mixed key
  std::uint64_t tag = 0;     // required value of those bits

  [[nodiscard]] constexpr bool covers(std::uint64_t key) const {
    if (key % base != bucket) return false;
    const std::uint64_t mask = (depth == 0) ? 0 : ((std::uint64_t{1} << depth) - 1);
    return (key_mix64(key) & mask) == tag;
  }

  // Half kept by the parent after a split (low refinement bit 0).
  [[nodiscard]] constexpr KeyCoverage split_parent() const {
    return KeyCoverage{base, bucket, depth + 1, tag};
  }

  // Half taken by the child after a split (new refinement bit set).
  [[nodiscard]] constexpr KeyCoverage split_child() const {
    return KeyCoverage{base, bucket, depth + 1,
                       tag | (std::uint64_t{1} << depth)};
  }

  // True when `other` is this coverage's merge partner: same bucket, same
  // depth >= 1, tags differing exactly in the most recent refinement bit.
  [[nodiscard]] constexpr bool sibling_of(const KeyCoverage& other) const {
    return base == other.base && bucket == other.bucket &&
           depth == other.depth && depth >= 1 &&
           (tag ^ other.tag) == (std::uint64_t{1} << (depth - 1));
  }

  // Coverage of the union of two siblings.
  [[nodiscard]] constexpr KeyCoverage merged() const {
    return KeyCoverage{base, bucket, depth - 1,
                       tag & ~(std::uint64_t{1} << (depth - 1))};
  }

  friend constexpr bool operator==(const KeyCoverage&,
                                   const KeyCoverage&) = default;

  // Canonical routing order: buckets ascend, then coarser-to-finer, then by
  // tag. For an unsplit operator this equals slice-index order, so routing
  // views enumerate exactly like the deploy-time slice vector.
  friend constexpr bool operator<(const KeyCoverage& a, const KeyCoverage& b) {
    if (a.bucket != b.bucket) return a.bucket < b.bucket;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.tag < b.tag;
  }
};

inline void serialize(BinaryWriter& w, const KeyCoverage& c) {
  w.write_u32(c.base);
  w.write_u32(c.bucket);
  w.write_u32(c.depth);
  w.write_u64(c.tag);
}

inline KeyCoverage deserialize_coverage(BinaryReader& r) {
  KeyCoverage c;
  c.base = r.read_u32();
  c.bucket = r.read_u32();
  c.depth = r.read_u32();
  c.tag = r.read_u64();
  return c;
}

// True when two coverages of the same bucket overlap: one tag is a prefix
// (in low-bit order) of the other.
[[nodiscard]] constexpr bool coverage_overlaps(const KeyCoverage& a,
                                               const KeyCoverage& b) {
  if (a.base != b.base || a.bucket != b.bucket) return false;
  const std::uint32_t d = a.depth < b.depth ? a.depth : b.depth;
  const std::uint64_t mask = (d == 0) ? 0 : ((std::uint64_t{1} << d) - 1);
  return (a.tag & mask) == (b.tag & mask);
}

// True when the coverages partition the whole key space for an operator
// with `base` buckets: every bucket 0..base-1 is present, per-bucket weights
// 2^-depth sum to 1, and no two coverages overlap.
[[nodiscard]] inline bool coverage_complete(
    const std::vector<KeyCoverage>& covs, std::uint32_t base) {
  constexpr std::uint32_t kMaxDepth = 62;
  std::vector<std::uint64_t> weight(base, 0);
  for (const KeyCoverage& c : covs) {
    if (c.base != base || c.bucket >= base || c.depth > kMaxDepth) {
      return false;
    }
    weight[c.bucket] += std::uint64_t{1} << (kMaxDepth - c.depth);
  }
  for (std::uint32_t b = 0; b < base; ++b) {
    if (weight[b] != std::uint64_t{1} << kMaxDepth) return false;
  }
  for (std::size_t i = 0; i < covs.size(); ++i) {
    for (std::size_t j = i + 1; j < covs.size(); ++j) {
      if (coverage_overlaps(covs[i], covs[j])) return false;
    }
  }
  return true;
}

}  // namespace esh
