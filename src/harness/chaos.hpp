// Chaos harness: deterministic, seeded fault injection against a running
// Testbed, plus an oracle-backed exactly-once delivery audit. A
// FaultSchedule lists the faults (worker crashes with optional pre-crash
// message loss, coordination leader failovers, manager failovers, timed
// network partitions, gray-host latency degradations, duplicate and
// reorder storms); the ChaosRunner arms them on the simulator clock. After
// the run, verify_exactly_once() compares every publication's recorded
// deliveries with the match oracle's ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "harness/testbed.hpp"

namespace esh::harness {

struct FaultSchedule {
  struct HostCrash {
    SimTime at{};
    std::size_t worker_index = 0;  // index into Testbed::worker_hosts()
    // Optional pre-crash degradation: starting `loss_lead` before the
    // crash, this fraction of the doomed host's inbound messages is lost.
    // Only the crashing host may be degraded this way — the engine has no
    // retransmission below replay, so loss into a host that never fails
    // (and therefore never replays) would wedge its channels forever.
    double loss_before = 0.0;
    SimDuration loss_lead{};
  };
  struct CoordFailover {
    SimTime at{};
  };
  struct ManagerFailover {
    SimTime at{};
  };
  // Timed bidirectional network partition: the listed workers are cut off
  // from every other testbed host (remaining workers, IO hosts and the
  // manager host) at `at` and healed `duration` later. From the cluster's
  // point of view a partition that outlasts the failure detector's
  // conviction window is a crash: the isolated workers are declared dead
  // and quarantined, so healing cannot resurrect them.
  struct Partition {
    SimTime at{};
    SimDuration duration{};
    std::vector<std::size_t> worker_group;  // indices into worker_hosts()
    std::string name = "chaos-partition";
  };
  // Gray failure: one worker's NIC slows down by `latency_factor` (both
  // directions) without losing a single message. Detected by the latency
  // signal of the failure detector, never by silence.
  struct GrayDegrade {
    SimTime at{};
    SimDuration duration{};  // zero = degraded until the end of the run
    std::size_t worker_index = 0;
    double latency_factor = 4.0;
  };
  // Global duplication window: every message sent while the storm is
  // active is duplicated with this probability.
  struct DuplicateStorm {
    SimTime at{};
    SimDuration duration{};
    double probability = 0.1;
  };
  // Global reordering window: deliveries get up to `window` of seeded
  // jitter with this probability (bounded reordering).
  struct ReorderStorm {
    SimTime at{};
    SimDuration duration{};
    double probability = 0.1;
    SimDuration window = millis(2);
  };

  std::vector<HostCrash> crashes;
  std::vector<CoordFailover> coord_failovers;
  std::vector<ManagerFailover> manager_failovers;
  std::vector<Partition> partitions;
  std::vector<GrayDegrade> gray_degrades;
  std::vector<DuplicateStorm> duplicate_storms;
  std::vector<ReorderStorm> reorder_storms;

  // Seeded random schedule: `crash_count` distinct workers crash at uniform
  // times in [start, end), optionally preceded by a message-loss window,
  // plus optional coordination / manager failovers inside the same window.
  static FaultSchedule random(std::uint64_t seed, SimTime start, SimTime end,
                              std::size_t workers, std::size_t crash_count,
                              bool with_coord_failover = false,
                              bool with_manager_failover = false);
};

class ChaosRunner {
 public:
  ChaosRunner(Testbed& bed, FaultSchedule schedule);

  // Schedules every fault on the testbed's simulator (call once, before or
  // during the run; past deadlines fire immediately).
  void arm();

  [[nodiscard]] const std::vector<HostId>& crashed() const { return crashed_; }
  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

 private:
  Testbed& bed_;
  FaultSchedule schedule_;
  std::vector<HostId> crashed_;
  bool armed_ = false;
};

// Outcome of the oracle comparison over publication ids 1..published.
struct DeliveryAudit {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;   // publications with >= 1 notification
  std::uint64_t missing = 0;     // never notified
  std::uint64_t duplicated = 0;  // notified more than once
  std::uint64_t mismatched = 0;  // subscriber set differs from ground truth
  [[nodiscard]] bool exactly_once() const {
    return published > 0 && missing == 0 && duplicated == 0 &&
           mismatched == 0;
  }
};

// Checks every publication sent so far against the oracle. Requires
// bed.delays().enable_audit() to have been called before publishing.
DeliveryAudit verify_exactly_once(Testbed& bed);

}  // namespace esh::harness
