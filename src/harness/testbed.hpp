// Full-system testbed: assembles the emulated private cloud (simulator,
// network, IaaS pool, coordination service), the engine, a STREAMHUB
// deployment fed by the oracle workload, and optionally the elasticity
// manager. Mirrors the paper's experimental setup (§VI-A): dedicated hosts
// for the manager/coordination and for the source/sink operators, worker
// hosts for AP/M/EP.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/iaas.hpp"
#include "coord/coord.hpp"
#include "elastic/manager.hpp"
#include "engine/engine.hpp"
#include "net/network.hpp"
#include "pubsub/streamhub.hpp"
#include "sim/simulator.hpp"
#include "workload/driver.hpp"
#include "workload/oracle.hpp"
#include "workload/schedule.hpp"

namespace esh::harness {

struct TestbedConfig {
  std::size_t worker_hosts = 8;       // AP/M/EP hosts at deployment
  std::size_t io_hosts = 4;           // dedicated source/sink hosts
  workload::OracleParams workload{};  // dimensions, subs, rate, m_slices
  std::size_t source_slices = 4;
  std::size_t ap_slices = 8;
  std::size_t ep_slices = 8;
  std::size_t sink_slices = 4;
  engine::EngineConfig engine{};
  cluster::IaasConfig iaas{};
  coord::CoordConfig coord{};
  elastic::ManagerConfig manager{};
  bool with_manager = false;
  std::uint64_t seed = 1;
  // Subscription storage pacing (paper: storage phase precedes publishing).
  double subscription_rate_per_sec = 20'000.0;
  // Custom AP/M/EP placement over the worker hosts (defaults to spreading
  // every operator over all workers). Source/sink stay on the I/O hosts.
  std::function<pubsub::HostAssignment(const std::vector<HostId>& workers)>
      placement;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // ---- components ----
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] cluster::IaasPool& pool() { return *pool_; }
  [[nodiscard]] coord::CoordService& coord() { return *coord_; }
  [[nodiscard]] engine::Engine& engine() { return *engine_; }
  [[nodiscard]] pubsub::StreamHub& hub() { return *hub_; }
  [[nodiscard]] workload::OracleWorkload& workload() { return *workload_; }
  [[nodiscard]] elastic::Manager* manager() { return manager_.get(); }
  [[nodiscard]] pubsub::DelayCollector& delays() { return *hub_->collector(); }

  [[nodiscard]] const std::vector<HostId>& worker_hosts() const {
    return worker_hosts_;
  }
  [[nodiscard]] const std::vector<HostId>& io_hosts() const {
    return io_hosts_;
  }
  [[nodiscard]] HostId manager_host() const { return manager_host_; }

  // ---- workflow helpers ----
  // Stores `count` subscriptions (paced) and runs until all are stored.
  void store_subscriptions(std::size_t count);

  // Publishes following `schedule`; returns the driver (started).
  std::unique_ptr<workload::PublicationDriver> drive(
      std::shared_ptr<const workload::RateSchedule> schedule);

  // Publishes one publication now.
  void publish_one();

  // Advances simulated time by `d`.
  void run_for(SimDuration d);
  // Runs until `pred()` holds, polling every `poll`; gives up after
  // `timeout` and returns false.
  bool run_until(const std::function<bool()>& pred, SimDuration timeout,
                 SimDuration poll = millis(100));

  // Maximum sustainable publication rate estimation: drives `rate` for
  // `window` and reports the completion ratio (completed/offered) over it.
  double completion_ratio(double rate, SimDuration window);

 private:
  TestbedConfig config_;
  sim::Simulator simulator_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<cluster::IaasPool> pool_;
  std::unique_ptr<coord::CoordService> coord_;
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<workload::OracleWorkload> workload_;
  std::unique_ptr<pubsub::StreamHub> hub_;
  std::unique_ptr<elastic::Manager> manager_;
  HostId manager_host_;
  std::vector<HostId> io_hosts_;
  std::vector<HostId> worker_hosts_;
};

}  // namespace esh::harness
