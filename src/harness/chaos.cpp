#include "harness/chaos.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace esh::harness {

FaultSchedule FaultSchedule::random(std::uint64_t seed, SimTime start,
                                    SimTime end, std::size_t workers,
                                    std::size_t crash_count,
                                    bool with_coord_failover,
                                    bool with_manager_failover) {
  if (end <= start) {
    throw std::invalid_argument{"FaultSchedule::random: empty window"};
  }
  if (crash_count > workers) {
    throw std::invalid_argument{
        "FaultSchedule::random: more crashes than workers"};
  }
  Rng rng{seed};
  std::vector<std::size_t> indices(workers);
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);

  const auto span = static_cast<std::uint64_t>((end - start).count());
  const auto draw = [&] { return start + micros(rng.next_below(span)); };

  FaultSchedule schedule;
  for (std::size_t i = 0; i < crash_count; ++i) {
    HostCrash crash;
    crash.at = draw();
    crash.worker_index = indices[i];
    if (rng.next_bool()) {
      crash.loss_before = rng.uniform(0.02, 0.2);
      crash.loss_lead = micros(rng.next_below(500'000));
    }
    schedule.crashes.push_back(crash);
  }
  if (with_coord_failover) schedule.coord_failovers.push_back({draw()});
  if (with_manager_failover) schedule.manager_failovers.push_back({draw()});
  return schedule;
}

ChaosRunner::ChaosRunner(Testbed& bed, FaultSchedule schedule)
    : bed_(bed), schedule_(std::move(schedule)) {}

void ChaosRunner::arm() {
  if (armed_) {
    throw std::logic_error{"ChaosRunner: already armed"};
  }
  armed_ = true;
  auto& sim = bed_.simulator();
  const auto clamp = [&sim](SimTime when) { return std::max(when, sim.now()); };

  for (const auto& crash : schedule_.crashes) {
    const HostId host = bed_.worker_hosts().at(crash.worker_index);
    crashed_.push_back(host);
    if (crash.loss_before > 0.0 && crash.loss_lead > SimDuration::zero()) {
      sim.schedule_at(clamp(crash.at - crash.loss_lead),
                      [this, host, p = crash.loss_before] {
                        ESH_WARN << "Chaos: host " << host
                                 << " starts losing messages (p=" << p << ")";
                        bed_.network().set_host_loss(host, p);
                      });
    }
    sim.schedule_at(clamp(crash.at), [this, host] {
      ESH_WARN << "Chaos: crashing host " << host;
      bed_.network().clear_host_loss(host);
      bed_.network().set_host_down(host, true);
    });
  }
  for (const auto& failover : schedule_.coord_failovers) {
    sim.schedule_at(clamp(failover.at), [this] {
      ESH_WARN << "Chaos: coordination leader failover";
      bed_.coord().inject_leader_failover();
    });
  }
  for (const auto& failover : schedule_.manager_failovers) {
    sim.schedule_at(clamp(failover.at), [this] {
      ESH_WARN << "Chaos: manager resigns leadership";
      if (bed_.manager() != nullptr) bed_.manager()->resign();
    });
  }
  std::size_t partition_index = 0;
  for (const auto& part : schedule_.partitions) {
    // Unique per instance: the same schedule may cut the same group twice.
    const std::string name =
        part.name + "#" + std::to_string(partition_index++);
    std::vector<HostId> group_a;
    for (const std::size_t index : part.worker_group) {
      group_a.push_back(bed_.worker_hosts().at(index));
    }
    std::vector<HostId> group_b;
    group_b.push_back(bed_.manager_host());
    for (const HostId host : bed_.io_hosts()) group_b.push_back(host);
    for (const HostId host : bed_.worker_hosts()) {
      if (std::find(group_a.begin(), group_a.end(), host) == group_a.end()) {
        group_b.push_back(host);
      }
    }
    sim.schedule_at(clamp(part.at), [this, name, group_a, group_b] {
      ESH_WARN << "Chaos: partition " << name << " (" << group_a.size()
               << " workers isolated)";
      bed_.network().partition(name, group_a, group_b);
    });
    sim.schedule_at(clamp(part.at + part.duration), [this, name] {
      ESH_WARN << "Chaos: healing partition " << name;
      bed_.network().heal(name);
    });
  }
  for (const auto& gray : schedule_.gray_degrades) {
    const HostId host = bed_.worker_hosts().at(gray.worker_index);
    sim.schedule_at(clamp(gray.at), [this, host, f = gray.latency_factor] {
      ESH_WARN << "Chaos: host " << host << " goes gray (latency x" << f
               << ")";
      bed_.network().set_host_degradation(host, f);
    });
    if (gray.duration > SimDuration::zero()) {
      sim.schedule_at(clamp(gray.at + gray.duration), [this, host] {
        ESH_WARN << "Chaos: host " << host << " latency restored";
        bed_.network().clear_host_degradation(host);
      });
    }
  }
  for (const auto& storm : schedule_.duplicate_storms) {
    sim.schedule_at(clamp(storm.at), [this, p = storm.probability] {
      ESH_WARN << "Chaos: duplicate storm starts (p=" << p << ")";
      bed_.network().set_duplication(p);
    });
    sim.schedule_at(clamp(storm.at + storm.duration), [this] {
      ESH_WARN << "Chaos: duplicate storm ends";
      bed_.network().set_duplication(0.0);
    });
  }
  for (const auto& storm : schedule_.reorder_storms) {
    sim.schedule_at(clamp(storm.at),
                    [this, p = storm.probability, w = storm.window] {
                      ESH_WARN << "Chaos: reorder storm starts (p=" << p
                               << ")";
                      bed_.network().set_reorder(p, w);
                    });
    sim.schedule_at(clamp(storm.at + storm.duration), [this, w = storm.window] {
      ESH_WARN << "Chaos: reorder storm ends";
      bed_.network().set_reorder(0.0, w);
    });
  }
}

DeliveryAudit verify_exactly_once(Testbed& bed) {
  if (!bed.delays().audit_enabled()) {
    throw std::logic_error{
        "verify_exactly_once: call delays().enable_audit() before publishing"};
  }
  const auto oracle = bed.workload().oracle();
  const auto& records = bed.delays().audit();

  DeliveryAudit audit;
  audit.published = bed.hub().publications_sent();
  // OracleWorkload publication ids are dense, starting at 1.
  for (std::uint64_t id = 1; id <= audit.published; ++id) {
    const PublicationId pub{id};
    const auto it = records.find(pub);
    if (it == records.end()) {
      ++audit.missing;
      continue;
    }
    ++audit.delivered;
    if (it->second.deliveries > 1) {
      ++audit.duplicated;
      continue;
    }
    std::vector<SubscriberId> expected;
    for (const std::uint64_t index : oracle->matches(pub)) {
      expected.push_back(oracle->subscriber_of(index));
    }
    std::sort(expected.begin(), expected.end());
    auto got = it->second.subscribers;
    std::sort(got.begin(), got.end());
    if (got != expected) ++audit.mismatched;
  }
  return audit;
}

}  // namespace esh::harness
