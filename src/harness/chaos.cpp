#include "harness/chaos.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace esh::harness {

FaultSchedule FaultSchedule::random(std::uint64_t seed, SimTime start,
                                    SimTime end, std::size_t workers,
                                    std::size_t crash_count,
                                    bool with_coord_failover,
                                    bool with_manager_failover) {
  if (end <= start) {
    throw std::invalid_argument{"FaultSchedule::random: empty window"};
  }
  if (crash_count > workers) {
    throw std::invalid_argument{
        "FaultSchedule::random: more crashes than workers"};
  }
  Rng rng{seed};
  std::vector<std::size_t> indices(workers);
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);

  const auto span = static_cast<std::uint64_t>((end - start).count());
  const auto draw = [&] { return start + micros(rng.next_below(span)); };

  FaultSchedule schedule;
  for (std::size_t i = 0; i < crash_count; ++i) {
    HostCrash crash;
    crash.at = draw();
    crash.worker_index = indices[i];
    if (rng.next_bool()) {
      crash.loss_before = rng.uniform(0.02, 0.2);
      crash.loss_lead = micros(rng.next_below(500'000));
    }
    schedule.crashes.push_back(crash);
  }
  if (with_coord_failover) schedule.coord_failovers.push_back({draw()});
  if (with_manager_failover) schedule.manager_failovers.push_back({draw()});
  return schedule;
}

ChaosRunner::ChaosRunner(Testbed& bed, FaultSchedule schedule)
    : bed_(bed), schedule_(std::move(schedule)) {}

void ChaosRunner::arm() {
  if (armed_) {
    throw std::logic_error{"ChaosRunner: already armed"};
  }
  armed_ = true;
  auto& sim = bed_.simulator();
  const auto clamp = [&sim](SimTime when) { return std::max(when, sim.now()); };

  for (const auto& crash : schedule_.crashes) {
    const HostId host = bed_.worker_hosts().at(crash.worker_index);
    crashed_.push_back(host);
    if (crash.loss_before > 0.0 && crash.loss_lead > SimDuration::zero()) {
      sim.schedule_at(clamp(crash.at - crash.loss_lead),
                      [this, host, p = crash.loss_before] {
                        ESH_WARN << "Chaos: host " << host
                                 << " starts losing messages (p=" << p << ")";
                        bed_.network().set_host_loss(host, p);
                      });
    }
    sim.schedule_at(clamp(crash.at), [this, host] {
      ESH_WARN << "Chaos: crashing host " << host;
      bed_.network().clear_host_loss(host);
      bed_.network().set_host_down(host, true);
    });
  }
  for (const auto& failover : schedule_.coord_failovers) {
    sim.schedule_at(clamp(failover.at), [this] {
      ESH_WARN << "Chaos: coordination leader failover";
      bed_.coord().inject_leader_failover();
    });
  }
  for (const auto& failover : schedule_.manager_failovers) {
    sim.schedule_at(clamp(failover.at), [this] {
      ESH_WARN << "Chaos: manager resigns leadership";
      if (bed_.manager() != nullptr) bed_.manager()->resign();
    });
  }
}

DeliveryAudit verify_exactly_once(Testbed& bed) {
  if (!bed.delays().audit_enabled()) {
    throw std::logic_error{
        "verify_exactly_once: call delays().enable_audit() before publishing"};
  }
  const auto oracle = bed.workload().oracle();
  const auto& records = bed.delays().audit();

  DeliveryAudit audit;
  audit.published = bed.hub().publications_sent();
  // OracleWorkload publication ids are dense, starting at 1.
  for (std::uint64_t id = 1; id <= audit.published; ++id) {
    const PublicationId pub{id};
    const auto it = records.find(pub);
    if (it == records.end()) {
      ++audit.missing;
      continue;
    }
    ++audit.delivered;
    if (it->second.deliveries > 1) {
      ++audit.duplicated;
      continue;
    }
    std::vector<SubscriberId> expected;
    for (const std::uint64_t index : oracle->matches(pub)) {
      expected.push_back(oracle->subscriber_of(index));
    }
    std::sort(expected.begin(), expected.end());
    auto got = it->second.subscribers;
    std::sort(got.begin(), got.end());
    if (got != expected) ++audit.mismatched;
  }
  return audit;
}

}  // namespace esh::harness
