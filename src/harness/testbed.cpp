#include "harness/testbed.hpp"

#include <stdexcept>

namespace esh::harness {

Testbed::Testbed(TestbedConfig config) : config_(config) {
  network_ = std::make_unique<net::Network>(simulator_);
  // Dedicated hosts (manager + I/O) live outside the elastic pool budget.
  cluster::IaasConfig iaas = config_.iaas;
  iaas.max_hosts += 1 + config_.io_hosts;
  pool_ = std::make_unique<cluster::IaasPool>(simulator_, iaas);
  coord_ = std::make_unique<coord::CoordService>(simulator_, config_.coord);

  manager_host_ = pool_->allocate(nullptr);
  for (std::size_t i = 0; i < config_.io_hosts; ++i) {
    io_hosts_.push_back(pool_->allocate(nullptr));
  }
  for (std::size_t i = 0; i < config_.worker_hosts; ++i) {
    worker_hosts_.push_back(pool_->allocate(nullptr));
  }
  // Let the initial fleet boot.
  simulator_.run_until(simulator_.now() + config_.iaas.boot_delay +
                       millis(1));

  engine_ = std::make_unique<engine::Engine>(simulator_, *network_,
                                             manager_host_, config_.engine,
                                             config_.seed);
  for (HostId host : io_hosts_) engine_->add_host(pool_->host(host));
  for (HostId host : worker_hosts_) engine_->add_host(pool_->host(host));

  workload_ = std::make_unique<workload::OracleWorkload>(config_.workload);

  pubsub::StreamHubParams params;
  params.source_slices = config_.source_slices;
  params.ap_slices = config_.ap_slices;
  params.m_slices = config_.workload.m_slices;
  params.ep_slices = config_.ep_slices;
  params.sink_slices = config_.sink_slices;
  params.cost = config_.engine.cost;
  params.matcher_factory = [this](std::size_t slice_index) {
    return workload_->make_matcher(config_.engine.cost, slice_index);
  };
  hub_ = std::make_unique<pubsub::StreamHub>(*engine_, params);

  pubsub::HostAssignment assignment;
  if (config_.placement) {
    assignment = config_.placement(worker_hosts_);
  } else {
    assignment[params.names.ap] = worker_hosts_;
    assignment[params.names.m] = worker_hosts_;
    assignment[params.names.ep] = worker_hosts_;
  }
  assignment[params.names.source] = io_hosts_;
  assignment[params.names.sink] = io_hosts_;
  hub_->deploy(assignment);

  if (config_.with_manager) {
    manager_ = std::make_unique<elastic::Manager>(
        simulator_, *network_, *engine_, *pool_, *coord_, manager_host_,
        config_.manager);
    manager_->start(worker_hosts_);
  }
}

Testbed::~Testbed() {
  // Tear down timers and endpoints before the simulator (member order
  // already guarantees this; explicit for clarity).
  manager_.reset();
  hub_.reset();
  engine_.reset();
}

void Testbed::store_subscriptions(std::size_t count) {
  const auto gap = micros(static_cast<std::int64_t>(
      1e6 / config_.subscription_rate_per_sec) + 1);
  SimTime at = simulator_.now();
  for (std::size_t i = 0; i < count; ++i) {
    at += gap;
    simulator_.schedule_at(at, [this, i] {
      hub_->subscribe(workload_->subscription(i));
    });
  }
  const bool stored = run_until(
      [this, count] { return hub_->stored_subscriptions() >= count; },
      seconds(600));
  if (!stored) {
    throw std::runtime_error{"store_subscriptions: timed out"};
  }
}

std::unique_ptr<workload::PublicationDriver> Testbed::drive(
    std::shared_ptr<const workload::RateSchedule> schedule) {
  auto driver = std::make_unique<workload::PublicationDriver>(
      simulator_, std::move(schedule), [this] { publish_one(); },
      config_.seed ^ 0x5bf0'3635'dcf9'8e6bULL);
  driver->start();
  return driver;
}

void Testbed::publish_one() {
  hub_->publish(workload_->next_publication());
}

void Testbed::run_for(SimDuration d) {
  simulator_.run_until(simulator_.now() + d);
}

bool Testbed::run_until(const std::function<bool()>& pred, SimDuration timeout,
                        SimDuration poll) {
  const SimTime deadline = simulator_.now() + timeout;
  while (simulator_.now() < deadline) {
    if (pred()) return true;
    simulator_.run_until(simulator_.now() + poll);
  }
  return pred();
}

double Testbed::completion_ratio(double rate, SimDuration window) {
  auto schedule = std::make_shared<workload::ConstantRate>(rate, window);
  delays().reset_counts();
  const std::uint64_t sent_before = hub_->publications_sent();
  auto driver = drive(std::move(schedule));
  run_for(window);
  const std::uint64_t offered = hub_->publications_sent() - sent_before;
  driver->stop();
  // Small drain allowance for in-flight events at the window edge.
  run_for(seconds(3));
  if (offered == 0) return 1.0;
  return static_cast<double>(delays().publications_completed()) /
         static_cast<double>(offered);
}

}  // namespace esh::harness
