// Sublinear plain-text matching for million-subscriber stores.
//
// The brute/counting backends touch every stored subscription (or every
// predicate below the query point) per publication -- O(subs) work that
// caps the matching tier well short of the ROADMAP's million-user
// north-star. IntervalIndexMatcher prunes by predicate selectivity
// instead: each subscription registers exactly ONE of its intervals -- the
// narrowest (covering rule: any match must stab every predicate, so the
// most selective one admits the fewest false candidates; its wider,
// dominated siblings are dropped from the index and only consulted during
// verification) -- in a per-attribute centered interval tree. A
// publication stabs each attribute's tree with its value and only the
// subscriptions whose registered interval contains the value surface as
// candidates; each candidate is then verified against the full rectangle
// (minus the already-certified registered attribute) straight from the
// arena columns, with early exit.
//
// Storage is an arena-backed SoA pool: stable 32-bit slots, per-attribute
// low/high columns with never-matching sentinels past a subscription's
// dimension count, holes reused LIFO -- no per-subscription allocations on
// the add/remove path and O(1) removal via an id->slot map. The trees are
// rebuilt lazily (one rebuild amortized over a whole match_batch) from the
// live slots in ascending-subscription-id order, and every tie inside a
// tree breaks on subscription id, never on slot: the candidate traversal
// -- and with it the subscriber append order and the work-unit counts --
// is a pure function of the live subscription set, identical for any
// slot-reuse history. That is what makes serialize/split/merge byte-stable
// and the pooled batch path bit-identical at any thread count (the pool
// partitions by publication against the immutable index; there is no
// shared mutable scratch at all).
//
// Work accounting uses the CostModel index family: index_node_units per
// tree node visited on the stabbing descents plus index_candidate_units
// per candidate verified. Both are exact integer counts, so work_units is
// batching-invariant and deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cost_model.hpp"
#include "common/keyspace.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "filter/matcher.hpp"

namespace esh::filter {

class IntervalIndexMatcher final : public Matcher {
 public:
  explicit IntervalIndexMatcher(cluster::CostModel cost = {});

  void add(const AnySubscription& sub) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchOutcome match(const AnyPublication& pub) override;
  [[nodiscard]] std::vector<MatchOutcome> match_batch(
      std::span<const AnyPublication> pubs) override;
  [[nodiscard]] double estimate_match_units() const override;
  [[nodiscard]] std::size_t subscription_count() const override;
  [[nodiscard]] std::size_t state_bytes() const override;
  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  std::size_t split_state(const KeyCoverage& cov, BinaryWriter& w) override;
  void absorb_state(BinaryReader& r) override;
  [[nodiscard]] std::unique_ptr<Matcher> clone_empty() const override;
  [[nodiscard]] std::string scheme_name() const override {
    return "plain-interval";
  }

 private:
  struct TreeEntry {
    double low;
    double high;
    std::uint32_t slot;
  };
  // Centered interval-tree node, flattened: intervals entirely below the
  // center live in the left subtree, entirely above in the right, and the
  // ones straddling it in two cross lists -- ascending-low for descents to
  // the left of the center, descending-high for descents to the right --
  // so a stab scans exactly the stabbing prefix of one list per node.
  struct TreeNode {
    double center;
    std::int32_t left;
    std::int32_t right;
    std::uint32_t cross_begin;
    std::uint32_t cross_count;
  };
  struct AttrTree {
    std::vector<TreeNode> nodes;  // node 0 is the root when non-empty
    std::vector<TreeEntry> asc;   // cross lists by (low asc, id asc)
    std::vector<TreeEntry> desc;  // cross lists by (high desc, id asc)
  };

  void rebuild_if_dirty();
  std::int32_t build_node(AttrTree& tree, const std::vector<TreeEntry>& entries);
  // One publication against the already-rebuilt trees. Read-only: the
  // pooled batch path runs this concurrently with no shared scratch.
  [[nodiscard]] MatchOutcome match_prepared(const Publication& plain) const;
  // Full-rectangle verification of one stabbed candidate; `reg` is the
  // attribute the stab already certified.
  void verify_and_emit(std::uint32_t slot, std::size_t reg,
                       const Publication& pub, MatchOutcome& out) const;
  void punch_hole(std::uint32_t slot);
  void write_slot(BinaryWriter& w, std::uint32_t slot) const;
  [[nodiscard]] std::vector<std::uint32_t> live_slots_by_id() const;

  cluster::CostModel cost_;
  // Arena SoA pool, dense by slot; an invalid id marks a hole.
  std::vector<SubscriptionId> ids_;
  std::vector<SubscriberId> subscribers_;
  std::vector<std::uint32_t> dims_;
  std::vector<std::uint32_t> reg_attr_;     // kNoAttribute for zero-dim
  std::vector<std::vector<double>> lows_;   // [attribute][slot]
  std::vector<std::vector<double>> highs_;  // [attribute][slot]
  std::vector<std::uint32_t> free_slots_;   // LIFO reuse
  // O(1) removal; lookups only, never iterated.
  std::unordered_map<SubscriptionId, std::uint32_t> slot_of_;
  std::vector<AttrTree> trees_;                // per attribute
  std::vector<std::uint32_t> zero_dim_slots_;  // id-ascending at rebuild
  std::size_t live_count_ = 0;
  std::size_t predicate_count_ = 0;  // live predicates (state accounting)
  std::size_t max_dims_ = 0;         // historical max, like AspeMatcher's
  bool dirty_ = true;
};

}  // namespace esh::filter
