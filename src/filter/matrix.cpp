#include "filter/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace esh::filter {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument{"Matrix: dimensions must be positive"};
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::random_invertible(std::size_t n, Rng& rng) {
  for (;;) {
    Matrix m{n, n};
    for (double& x : m.data_) x = rng.uniform(-1.0, 1.0);
    try {
      (void)m.inverted();
      return m;
    } catch (const std::domain_error&) {
      // Singular draw (essentially measure zero); try again.
    }
  }
}

Matrix Matrix::transposed() const {
  Matrix t{cols_, rows_};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::inverted() const {
  if (rows_ != cols_) throw std::domain_error{"inverted: not square"};
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::fabs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-10) throw std::domain_error{"inverted: singular matrix"};
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    const double diag = a.at(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a.at(col, c) /= diag;
      inv.at(col, c) /= diag;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a.at(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
        inv.at(r, c) -= factor * inv.at(col, c);
      }
    }
  }
  return inv;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument{"Matrix::multiply: size mismatch"};
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument{"Matrix::multiply: shape mismatch"};
  }
  Matrix out{rows_, other.cols_};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a * other.at(k, c);
      }
    }
  }
  return out;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument{"dot: size mismatch"};
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace esh::filter
