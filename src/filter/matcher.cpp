#include "filter/matcher.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace esh::filter {

namespace {

// Sentinel bounds for SoA columns past a subscription's dimension count:
// an empty interval no attribute value can satisfy.
constexpr double kNeverLow = std::numeric_limits<double>::infinity();
constexpr double kNeverHigh = -std::numeric_limits<double>::infinity();

// Column tile scanned per publication before moving to the next batch
// member: 1024 slots keep one attribute's low+high tile at 16 KiB, so a
// d-attribute tile stays L2-resident across the whole batch.
constexpr std::size_t kBruteTileSlots = 1024;

// Publications evaluated per pass over the encrypted rows: 64 ASPE
// publication ciphertexts (2 shares of d+3 doubles) fit in L1 next to the
// current subscription row.
constexpr std::size_t kAspePubBlock = 64;

// Publications evaluated simultaneously by the grouped ASPE kernel: 4
// independent accumulator chains cover the ~4-cycle FP-add latency.
constexpr std::size_t kGroup = 4;

// Encrypted rows per parallel chunk: at the evaluation's d = 4 a row is
// 8 comparisons x 14 doubles, so 512 rows are ~450 KiB of streamed reads
// -- enough work to amortize a chunk claim while still giving an 8-worker
// pool fine-grained load balance on stores of a few thousand rows.
constexpr std::size_t kAspeRowChunk = 512;

// Fixed-order merge of per-chunk partial outcomes: appending chunk c's
// subscribers for publication p after chunks 0..c-1 reproduces exactly the
// serial scan order (tiles and row ranges ascend), which is what keeps the
// pooled result bit-identical to the scalar one.
void merge_partials(std::vector<std::vector<MatchOutcome>>& partials,
                    std::vector<MatchOutcome>& out) {
  for (auto& partial : partials) {
    for (std::size_t p = 0; p < out.size(); ++p) {
      auto& dst = out[p].subscribers;
      auto& src = partial[p].subscribers;
      if (dst.empty()) {
        dst = std::move(src);
      } else {
        dst.insert(dst.end(), src.begin(), src.end());
      }
    }
  }
}

}  // namespace

SubscriptionId subscription_id(const AnySubscription& s) {
  return std::visit([](const auto& v) { return v.id; }, s);
}

PublicationId publication_id(const AnyPublication& p) {
  return std::visit([](const auto& v) { return v.id; }, p);
}

std::size_t subscription_bytes(const AnySubscription& s) {
  if (const auto* enc = std::get_if<EncryptedSubscription>(&s)) {
    return enc->bytes();
  }
  const auto& plain = std::get<Subscription>(s);
  return 24 + plain.predicates.size() * 2 * sizeof(double);
}

std::size_t publication_bytes(const AnyPublication& p) {
  if (const auto* enc = std::get_if<EncryptedPublication>(&p)) {
    return enc->bytes();
  }
  const auto& plain = std::get<Publication>(p);
  return 16 + plain.attributes.size() * sizeof(double);
}

// ---- Matcher -----------------------------------------------------------------

std::vector<MatchOutcome> Matcher::match_batch(
    std::span<const AnyPublication> pubs) {
  std::vector<MatchOutcome> out;
  out.reserve(pubs.size());
  for (const AnyPublication& pub : pubs) out.push_back(match(pub));
  return out;
}

std::size_t Matcher::split_state(const KeyCoverage&, BinaryWriter&) {
  throw std::logic_error{"matcher scheme does not support split_state"};
}

void Matcher::absorb_state(BinaryReader&) {
  throw std::logic_error{"matcher scheme does not support absorb_state"};
}

void Matcher::merge_state(const Matcher& other) {
  BinaryWriter w;
  other.serialize_state(w);
  BinaryReader r{w.buffer()};
  absorb_state(r);
}

// ---- BruteForceMatcher -------------------------------------------------------

BruteForceMatcher::BruteForceMatcher(cluster::CostModel cost) : cost_(cost) {}

void BruteForceMatcher::add(const AnySubscription& sub) {
  const auto& plain = std::get<Subscription>(sub);
  const std::size_t d = plain.predicates.size();
  if (d > lows_.size()) {
    lows_.resize(d, std::vector<double>(ids_.size(), kNeverLow));
    highs_.resize(d, std::vector<double>(ids_.size(), kNeverHigh));
  }
  ids_.push_back(plain.id);
  subscribers_.push_back(plain.subscriber);
  dims_.push_back(static_cast<std::uint32_t>(d));
  for (std::size_t a = 0; a < lows_.size(); ++a) {
    lows_[a].push_back(a < d ? plain.predicates[a].low : kNeverLow);
    highs_[a].push_back(a < d ? plain.predicates[a].high : kNeverHigh);
  }
  predicate_count_ += d;
}

bool BruteForceMatcher::remove(SubscriptionId id) {
  const auto it = std::find(ids_.begin(), ids_.end(), id);
  if (it == ids_.end()) return false;
  const auto slot =
      static_cast<std::size_t>(std::distance(ids_.begin(), it));
  predicate_count_ -= dims_[slot];
  ids_.erase(it);
  subscribers_.erase(subscribers_.begin() + static_cast<std::ptrdiff_t>(slot));
  dims_.erase(dims_.begin() + static_cast<std::ptrdiff_t>(slot));
  for (auto& col : lows_) {
    col.erase(col.begin() + static_cast<std::ptrdiff_t>(slot));
  }
  for (auto& col : highs_) {
    col.erase(col.begin() + static_cast<std::ptrdiff_t>(slot));
  }
  return true;
}

void BruteForceMatcher::prune_and_emit(const Publication& pub,
                                       std::vector<std::uint32_t>& survivors,
                                       MatchOutcome& out) {
  const std::size_t d = pub.attributes.size();
  for (std::size_t a = 1; a < d && !survivors.empty(); ++a) {
    const double v = pub.attributes[a];
    const double* lo = lows_[a].data();
    const double* hi = highs_[a].data();
    std::size_t kept = 0;
    for (const std::uint32_t s : survivors) {
      if (lo[s] <= v && v <= hi[s]) survivors[kept++] = s;
    }
    survivors.resize(kept);
  }
  for (const std::uint32_t s : survivors) {
    out.subscribers.push_back(subscribers_[s]);
  }
}

void BruteForceMatcher::scan_slots(const Publication& pub, std::size_t begin,
                                   std::size_t end, MatchOutcome& out,
                                   ScanScratch& scratch) {
  const std::size_t d = pub.attributes.size();
  if (d > lows_.size()) return;  // no stored subscription has that many
  if (d == 0) {
    for (std::size_t s = begin; s < end; ++s) {
      if (dims_[s] == 0) out.subscribers.push_back(subscribers_[s]);
    }
    return;
  }
  // Survivor pruning, one contiguous column pair at a time: column 0 also
  // folds in the dimension-count equality matches() requires.
  scratch.survivors.clear();
  const auto du = static_cast<std::uint32_t>(d);
  const double v0 = pub.attributes[0];
  const double* lo0 = lows_[0].data();
  const double* hi0 = highs_[0].data();
  for (std::size_t s = begin; s < end; ++s) {
    if (dims_[s] == du && lo0[s] <= v0 && v0 <= hi0[s]) {
      scratch.survivors.push_back(static_cast<std::uint32_t>(s));
    }
  }
  prune_and_emit(pub, scratch.survivors, out);
}

void BruteForceMatcher::scan_tile_group(const Publication* const* pubs,
                                        std::size_t count, std::size_t begin,
                                        std::size_t end,
                                        MatchOutcome* const* outs,
                                        ScanScratch& scratch) {
  std::uint32_t du[kScanGroup];
  double v0[kScanGroup];
  std::uint32_t* sv[kScanGroup];
  std::size_t kept[kScanGroup];
  for (std::size_t g = 0; g < count; ++g) {
    du[g] = static_cast<std::uint32_t>(pubs[g]->attributes.size());
    v0[g] = pubs[g]->attributes[0];
    scratch.group_survivors[g].resize(end - begin);
    sv[g] = scratch.group_survivors[g].data();
    kept[g] = 0;
  }
  const double* lo0 = lows_[0].data();
  const double* hi0 = highs_[0].data();
  const std::uint32_t* dims = dims_.data();
  // Branchless survivor collection: each lane unconditionally writes the
  // slot id and advances its cursor only on a hit, so the 32%-taken data-
  // dependent branch of the scalar scan never reaches the predictor. The
  // slot's bounds are loaded once for all kScanGroup publications.
  for (std::size_t s = begin; s < end; ++s) {
    const double lo = lo0[s];
    const double hi = hi0[s];
    const std::uint32_t dm = dims[s];
    for (std::size_t g = 0; g < count; ++g) {
      const bool hitg =
          (dm == du[g]) & (lo <= v0[g]) & (v0[g] <= hi);
      sv[g][kept[g]] = static_cast<std::uint32_t>(s);
      kept[g] += hitg ? 1 : 0;
    }
  }
  for (std::size_t g = 0; g < count; ++g) {
    scratch.group_survivors[g].resize(kept[g]);
    prune_and_emit(*pubs[g], scratch.group_survivors[g], *outs[g]);
  }
}

MatchOutcome BruteForceMatcher::match(const AnyPublication& pub) {
  const auto& plain = std::get<Publication>(pub);
  MatchOutcome out;
  scan_slots(plain, 0, ids_.size(), out, scratch_);
  out.work_units = cost_.plain_match_units_batch(ids_.size(), 1);
  return out;
}

void BruteForceMatcher::scan_batch_tile(
    const std::vector<const Publication*>& plains,
    const std::vector<std::size_t>& grouped,
    const std::vector<std::size_t>& singles, std::size_t t0, std::size_t t1,
    MatchOutcome* outs, ScanScratch& scratch) {
  for (const std::size_t p : singles) {
    scan_slots(*plains[p], t0, t1, outs[p], scratch);
  }
  for (std::size_t i = 0; i < grouped.size(); i += kScanGroup) {
    const std::size_t cnt = std::min(kScanGroup, grouped.size() - i);
    const Publication* group[kScanGroup];
    MatchOutcome* group_out[kScanGroup];
    for (std::size_t g = 0; g < cnt; ++g) {
      group[g] = plains[grouped[i + g]];
      group_out[g] = &outs[grouped[i + g]];
    }
    scan_tile_group(group, cnt, t0, t1, group_out, scratch);
  }
}

std::vector<MatchOutcome> BruteForceMatcher::match_batch(
    std::span<const AnyPublication> pubs) {
  std::vector<const Publication*> plains;
  plains.reserve(pubs.size());
  for (const AnyPublication& pub : pubs) {
    plains.push_back(&std::get<Publication>(pub));
  }
  std::vector<MatchOutcome> out(pubs.size());
  const std::size_t n = ids_.size();
  // Publications the grouped column-0 scan can serve; zero-dimension or
  // over-wide publications take the scalar scan per tile instead.
  std::vector<std::size_t> grouped;
  grouped.reserve(plains.size());
  std::vector<std::size_t> singles;
  for (std::size_t p = 0; p < plains.size(); ++p) {
    const std::size_t d = plains[p]->attributes.size();
    (d >= 1 && d <= lows_.size() ? grouped : singles).push_back(p);
  }
  // Tile the columns: every publication of the batch scans one tile while
  // it is cache-hot before the next tile streams in, and the grouped scan
  // loads each slot's bounds once for kScanGroup publications. Subscribers
  // are still appended in ascending slot order per publication (tiles
  // ascend), exactly as the scalar scan emits them.
  const std::size_t tiles = (n + kBruteTileSlots - 1) / kBruteTileSlots;
  if (pool_ != nullptr && pool_->worker_count() > 1 && tiles > 1) {
    // Parallel backend: tiles fan out across the pool into per-tile
    // partial outcomes, merged in tile order -- the same order the serial
    // tile loop appends, so the result is bit-identical at any thread
    // count. The store itself is read-only here.
    worker_scratch_.resize(pool_->worker_count());
    std::vector<std::vector<MatchOutcome>> partial(tiles);
    pool_->parallel_for(tiles, [&](std::size_t t, std::size_t w) {
      partial[t].resize(plains.size());
      const std::size_t t0 = t * kBruteTileSlots;
      scan_batch_tile(plains, grouped, singles, t0,
                      std::min(n, t0 + kBruteTileSlots), partial[t].data(),
                      worker_scratch_[w]);
    });
    merge_partials(partial, out);
  } else {
    for (std::size_t t0 = 0; t0 < n; t0 += kBruteTileSlots) {
      scan_batch_tile(plains, grouped, singles, t0,
                      std::min(n, t0 + kBruteTileSlots), out.data(), scratch_);
    }
  }
  const double per_pub = cost_.plain_match_units_batch(n, 1);
  for (MatchOutcome& o : out) o.work_units = per_pub;
  return out;
}

double BruteForceMatcher::estimate_match_units() const {
  return cost_.plain_match_units * static_cast<double>(ids_.size());
}

std::size_t BruteForceMatcher::subscription_count() const {
  return ids_.size();
}

std::size_t BruteForceMatcher::state_bytes() const {
  return 24 * ids_.size() + predicate_count_ * 2 * sizeof(double);
}

void BruteForceMatcher::serialize_state(BinaryWriter& w) const {
  // Same wire format as serialize(w, Subscription) per stored entry.
  w.write_u64(ids_.size());
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    w.write_id(ids_[s]);
    w.write_id(subscribers_[s]);
    w.write_u64(dims_[s]);
    for (std::uint32_t a = 0; a < dims_[s]; ++a) {
      w.write_f64(lows_[a][s]);
      w.write_f64(highs_[a][s]);
    }
  }
}

void BruteForceMatcher::restore_state(BinaryReader& r) {
  ids_.clear();
  subscribers_.clear();
  dims_.clear();
  lows_.clear();
  highs_.clear();
  predicate_count_ = 0;
  const auto n = r.read_u64();
  ids_.reserve(n);
  subscribers_.reserve(n);
  dims_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    add(AnySubscription{deserialize_subscription(r)});
  }
}

std::size_t BruteForceMatcher::split_state(const KeyCoverage& cov,
                                           BinaryWriter& w) {
  std::vector<std::size_t> moved;
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    if (cov.covers(ids_[s].value())) moved.push_back(s);
  }
  w.write_u64(moved.size());
  for (const std::size_t s : moved) {
    w.write_id(ids_[s]);
    w.write_id(subscribers_[s]);
    w.write_u64(dims_[s]);
    for (std::uint32_t a = 0; a < dims_[s]; ++a) {
      w.write_f64(lows_[a][s]);
      w.write_f64(highs_[a][s]);
    }
  }
  const std::size_t serialized = moved.size();
  if (testing_keep_one_on_split && !moved.empty()) moved.pop_back();
  // Forward compaction: kept slots keep their relative (insertion) order.
  std::size_t kept = 0;
  std::size_t next_moved = 0;
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    if (next_moved < moved.size() && moved[next_moved] == s) {
      ++next_moved;
      predicate_count_ -= dims_[s];
      continue;
    }
    ids_[kept] = ids_[s];
    subscribers_[kept] = subscribers_[s];
    dims_[kept] = dims_[s];
    for (auto& col : lows_) col[kept] = col[s];
    for (auto& col : highs_) col[kept] = col[s];
    ++kept;
  }
  ids_.resize(kept);
  subscribers_.resize(kept);
  dims_.resize(kept);
  for (auto& col : lows_) col.resize(kept);
  for (auto& col : highs_) col.resize(kept);
  return serialized;
}

void BruteForceMatcher::insert_subscription(std::size_t pos,
                                            const Subscription& plain) {
  const std::size_t d = plain.predicates.size();
  if (d > lows_.size()) {
    lows_.resize(d, std::vector<double>(ids_.size(), kNeverLow));
    highs_.resize(d, std::vector<double>(ids_.size(), kNeverHigh));
  }
  const auto at = static_cast<std::ptrdiff_t>(pos);
  ids_.insert(ids_.begin() + at, plain.id);
  subscribers_.insert(subscribers_.begin() + at, plain.subscriber);
  dims_.insert(dims_.begin() + at, static_cast<std::uint32_t>(d));
  for (std::size_t a = 0; a < lows_.size(); ++a) {
    lows_[a].insert(lows_[a].begin() + at,
                    a < d ? plain.predicates[a].low : kNeverLow);
    highs_[a].insert(highs_[a].begin() + at,
                     a < d ? plain.predicates[a].high : kNeverHigh);
  }
  predicate_count_ += d;
}

void BruteForceMatcher::absorb_state(BinaryReader& r) {
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Subscription plain = deserialize_subscription(r);
    // Ascending-id merge position: before the first stored id above ours.
    std::size_t pos = 0;
    while (pos < ids_.size() && ids_[pos].value() < plain.id.value()) ++pos;
    insert_subscription(pos, plain);
  }
}

std::unique_ptr<Matcher> BruteForceMatcher::clone_empty() const {
  auto clone = std::make_unique<BruteForceMatcher>(cost_);
  clone->set_thread_pool(pool_);
  return clone;
}

// ---- CountingIndexMatcher ----------------------------------------------------

CountingIndexMatcher::CountingIndexMatcher(cluster::CostModel cost)
    : cost_(cost) {}

void CountingIndexMatcher::add(const AnySubscription& sub) {
  const auto& plain = std::get<Subscription>(sub);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    subs_[slot] = plain;
  } else {
    slot = static_cast<std::uint32_t>(subs_.size());
    subs_.push_back(plain);
  }
  ++live_count_;
  dirty_ = true;
}

bool CountingIndexMatcher::remove(SubscriptionId id) {
  for (std::uint32_t slot = 0; slot < subs_.size(); ++slot) {
    if (subs_[slot].id == id && subs_[slot].id.valid()) {
      subs_[slot] = Subscription{};  // invalid id marks the hole
      free_slots_.push_back(slot);
      --live_count_;
      dirty_ = true;
      return true;
    }
  }
  return false;
}

void CountingIndexMatcher::rebuild_if_dirty() {
  if (!dirty_) return;
  std::size_t dims = 0;
  for (const auto& s : subs_) {
    if (s.id.valid()) dims = std::max(dims, s.predicates.size());
  }
  index_.assign(dims, {});
  for (std::uint32_t slot = 0; slot < subs_.size(); ++slot) {
    const auto& s = subs_[slot];
    if (!s.id.valid()) continue;
    for (std::size_t a = 0; a < s.predicates.size(); ++a) {
      index_[a].push_back(
          Entry{s.predicates[a].low, s.predicates[a].high, slot});
    }
  }
  for (auto& list : index_) {
    // Equal lows tie-break on subscription id, not slot: slot numbering
    // depends on removal/reuse history, id order is canonical, so the
    // candidate traversal (and the subscriber append order it produces) is
    // identical for any slot layout holding the same live set.
    std::sort(list.begin(), list.end(),
              [this](const Entry& x, const Entry& y) {
                if (x.low != y.low) return x.low < y.low;
                return subs_[x.slot].id.value() < subs_[y.slot].id.value();
              });
  }
  reset_scratch(scratch_);
  dirty_ = false;
}

void CountingIndexMatcher::reset_scratch(CountScratch& scratch) const {
  scratch.counts.assign(subs_.size(), 0);
  scratch.epochs.assign(subs_.size(), 0);
  scratch.epoch = 0;
}

MatchOutcome CountingIndexMatcher::match_prepared(const Publication& plain,
                                                  CountScratch& scratch) {
  ++scratch.epoch;
  MatchOutcome out;
  double examined = 0.0;

  const std::size_t dims = plain.attributes.size();
  for (std::size_t a = 0; a < dims && a < index_.size(); ++a) {
    const double v = plain.attributes[a];
    const auto& list = index_[a];
    // Candidates: entries with low <= v (sorted order); check high >= v.
    const auto end = std::upper_bound(
        list.begin(), list.end(), v,
        [](double x, const Entry& e) { return x < e.low; });
    for (auto it = list.begin(); it != end; ++it) {
      examined += 1.0;
      if (it->high < v) continue;
      const std::uint32_t slot = it->slot;
      if (scratch.epochs[slot] != scratch.epoch) {
        scratch.epochs[slot] = scratch.epoch;
        scratch.counts[slot] = 0;
      }
      if (++scratch.counts[slot] == subs_[slot].predicates.size() &&
          subs_[slot].predicates.size() == dims) {
        out.subscribers.push_back(subs_[slot].subscriber);
      }
    }
  }
  // Charge for candidates examined plus the binary searches.
  const double searches =
      static_cast<double>(dims) *
      std::log2(std::max<double>(2.0, static_cast<double>(live_count_)));
  out.work_units = cost_.plain_match_units * 0.5 * examined +
                   cost_.plain_match_units * searches;
  return out;
}

MatchOutcome CountingIndexMatcher::match(const AnyPublication& pub) {
  const auto& plain = std::get<Publication>(pub);
  rebuild_if_dirty();
  return match_prepared(plain, scratch_);
}

std::vector<MatchOutcome> CountingIndexMatcher::match_batch(
    std::span<const AnyPublication> pubs) {
  std::vector<const Publication*> plains;
  plains.reserve(pubs.size());
  for (const AnyPublication& pub : pubs) {
    plains.push_back(&std::get<Publication>(pub));
  }
  // One rebuild (and one epoch-array reset) serves the whole batch; each
  // publication still advances its own epoch so counts never leak between
  // batch members.
  rebuild_if_dirty();
  std::vector<MatchOutcome> out(pubs.size());
  if (pool_ != nullptr && pool_->worker_count() > 1 && pubs.size() > 1) {
    // Parallel backend: publications (not slot tiles -- the candidate
    // index is slot-unordered) fan out across the pool. Each outcome is
    // computed exactly as the scalar path computes it, against the same
    // immutable index, into its own slot of `out`; the only shared mutable
    // state, the epoch-stamped counters, is per worker. Stale stamps from
    // earlier batches are harmless by the same epoch argument the scalar
    // path relies on, so a worker scratch only resets when the slot space
    // changed size.
    worker_scratch_.resize(pool_->worker_count());
    for (CountScratch& scratch : worker_scratch_) {
      if (scratch.counts.size() != subs_.size()) reset_scratch(scratch);
    }
    pool_->parallel_for(plains.size(), [&](std::size_t p, std::size_t w) {
      out[p] = match_prepared(*plains[p], worker_scratch_[w]);
    });
  } else {
    for (std::size_t p = 0; p < plains.size(); ++p) {
      out[p] = match_prepared(*plains[p], scratch_);
    }
  }
  return out;
}

double CountingIndexMatcher::estimate_match_units() const {
  // Candidate scans dominate; assume roughly a third of the predicates per
  // attribute fall below a uniform query point (typical for the synthetic
  // workloads used here).
  const double n = static_cast<double>(live_count_);
  return cost_.plain_match_units * (0.35 * n + 8.0);
}

std::size_t CountingIndexMatcher::subscription_count() const {
  return live_count_;
}

std::size_t CountingIndexMatcher::state_bytes() const {
  std::size_t total = 0;
  for (const auto& s : subs_) {
    if (!s.id.valid()) continue;
    total += 24 + s.predicates.size() * 2 * sizeof(double);
  }
  return total;
}

void CountingIndexMatcher::serialize_state(BinaryWriter& w) const {
  // Canonical wire order: ascending subscription id, independent of the
  // slot layout churn and slot reuse left behind. Split and merge then
  // compose byte-stably -- any split/merge history serializes identically
  // to a never-split store holding the same live set.
  std::vector<std::uint32_t> live;
  live.reserve(live_count_);
  for (std::uint32_t slot = 0; slot < subs_.size(); ++slot) {
    if (subs_[slot].id.valid()) live.push_back(slot);
  }
  std::sort(live.begin(), live.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return subs_[a].id.value() < subs_[b].id.value();
            });
  w.write_u64(live.size());
  for (const std::uint32_t slot : live) serialize(w, subs_[slot]);
}

void CountingIndexMatcher::restore_state(BinaryReader& r) {
  subs_.clear();
  free_slots_.clear();
  live_count_ = 0;
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    add(AnySubscription{deserialize_subscription(r)});
  }
}

std::size_t CountingIndexMatcher::split_state(const KeyCoverage& cov,
                                              BinaryWriter& w) {
  std::vector<std::uint32_t> moved;
  for (std::uint32_t slot = 0; slot < subs_.size(); ++slot) {
    if (subs_[slot].id.valid() && cov.covers(subs_[slot].id.value())) {
      moved.push_back(slot);
    }
  }
  // Same canonical ascending-id wire order as serialize_state.
  std::sort(moved.begin(), moved.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return subs_[a].id.value() < subs_[b].id.value();
            });
  w.write_u64(moved.size());
  for (const std::uint32_t slot : moved) serialize(w, subs_[slot]);
  const std::size_t serialized = moved.size();
  if (testing_keep_one_on_split && !moved.empty()) moved.pop_back();
  // Punch holes highest-slot-first so slot reuse refills ascending.
  std::sort(moved.begin(), moved.end(), std::greater<>{});
  for (const std::uint32_t slot : moved) {
    subs_[slot] = Subscription{};
    free_slots_.push_back(slot);
    --live_count_;
  }
  dirty_ = true;
  return serialized;
}

void CountingIndexMatcher::absorb_state(BinaryReader& r) {
  // Canonical rebuild: live entries in slot (insertion) order, incoming
  // entries merged at ascending-id positions, then re-slotted densely.
  std::vector<Subscription> live;
  live.reserve(live_count_);
  for (const auto& s : subs_) {
    if (s.id.valid()) live.push_back(s);
  }
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Subscription plain = deserialize_subscription(r);
    auto pos = std::find_if(live.begin(), live.end(),
                            [&plain](const Subscription& e) {
                              return plain.id.value() < e.id.value();
                            });
    live.insert(pos, std::move(plain));
  }
  subs_ = std::move(live);
  free_slots_.clear();
  live_count_ = subs_.size();
  dirty_ = true;
}

std::unique_ptr<Matcher> CountingIndexMatcher::clone_empty() const {
  auto clone = std::make_unique<CountingIndexMatcher>(cost_);
  clone->set_thread_pool(pool_);
  return clone;
}

// ---- AspeMatcher -------------------------------------------------------------

AspeMatcher::AspeMatcher(cluster::CostModel cost) : cost_(cost) {}

void AspeMatcher::append_row(const EncryptedSubscription& s) {
  std::uint32_t len = 0;
  bool regular = !s.comparisons.empty();
  if (regular) {
    len = static_cast<std::uint32_t>(s.comparisons.front().share_a.size());
    regular = len > 0;
    for (const EncryptedComparison& cmp : s.comparisons) {
      regular = regular && cmp.share_a.size() == len &&
                cmp.share_b.size() == len;
    }
  }
  row_offset_.push_back(flat_.size());
  row_cmps_.push_back(static_cast<std::uint32_t>(s.comparisons.size()));
  row_share_len_.push_back(regular ? len : 0);
  if (!regular) return;
  for (const EncryptedComparison& cmp : s.comparisons) {
    flat_.insert(flat_.end(), cmp.share_a.begin(), cmp.share_a.end());
    flat_.insert(flat_.end(), cmp.share_b.begin(), cmp.share_b.end());
  }
}

void AspeMatcher::rebuild_rows() {
  flat_.clear();
  row_offset_.clear();
  row_cmps_.clear();
  row_share_len_.clear();
  for (const EncryptedSubscription& s : subs_) append_row(s);
}

void AspeMatcher::add(const AnySubscription& sub) {
  const auto& enc = std::get<EncryptedSubscription>(sub);
  state_bytes_ += enc.bytes();
  dimensions_ = std::max(dimensions_, enc.comparisons.size() / 2);
  subs_.push_back(enc);
  append_row(subs_.back());
}

bool AspeMatcher::remove(SubscriptionId id) {
  auto it = std::find_if(
      subs_.begin(), subs_.end(),
      [id](const EncryptedSubscription& s) { return s.id == id; });
  if (it == subs_.end()) return false;
  state_bytes_ -= it->bytes();
  subs_.erase(it);
  rebuild_rows();
  return true;
}

bool AspeMatcher::row_matches(std::size_t index, const double* pub_a,
                              std::size_t len_a, const double* pub_b,
                              std::size_t len_b) const {
  const std::uint32_t len = row_share_len_[index];
  if (pub_a == nullptr || len_a != len || len_b != len) {
    throw std::invalid_argument{"dot: size mismatch"};
  }
  const double* row = flat_.data() + row_offset_[index];
  const std::uint32_t cmps = row_cmps_[index];
  for (std::uint32_t c = 0; c < cmps; ++c) {
    const double* qa = row + static_cast<std::size_t>(c) * 2 * len;
    const double* qb = qa + len;
    double acc = 0.0;
    for (std::uint32_t j = 0; j < len; ++j) acc += qa[j] * pub_a[j];
    for (std::uint32_t j = 0; j < len; ++j) acc += qb[j] * pub_b[j];
    if (acc < 0.0) return false;
  }
  return true;
}

void AspeMatcher::row_matches_group(std::size_t index,
                                    const EncryptedPublication* const* pubs,
                                    std::size_t count, bool* hit) const {
  const std::uint32_t len = row_share_len_[index];
  for (std::size_t g = 0; g < count; ++g) {
    if (pubs[g]->share_a.size() != len || pubs[g]->share_b.size() != len) {
      throw std::invalid_argument{"dot: size mismatch"};
    }
  }
  const double* row = flat_.data() + row_offset_[index];
  const std::uint32_t cmps = row_cmps_[index];
  const double* pa[kGroup];
  const double* pb[kGroup];
  for (std::size_t g = 0; g < kGroup; ++g) {
    // Pad short groups with lane 0 (their results are discarded): the
    // kernel always runs kGroup independent accumulator chains, fully
    // unrollable.
    const EncryptedPublication* pub = pubs[g < count ? g : 0];
    pa[g] = pub->share_a.data();
    pb[g] = pub->share_b.data();
  }
  bool ok[kGroup] = {true, true, true, true};
  for (std::uint32_t c = 0; c < cmps; ++c) {
    const double* qa = row + static_cast<std::size_t>(c) * 2 * len;
    const double* qb = qa + len;
    // One pass of the comparison for all lanes: each query coefficient is
    // loaded once and feeds kGroup independent accumulator chains, hiding
    // the floating-point add latency the scalar path serializes on. Every
    // lane's accumulation order is exactly row_matches' (qa in j order,
    // then qb), so per-publication results are bit-identical. Failed lanes
    // keep accumulating (their sign is simply ignored) -- branchless
    // beats early-exit here because lane lifetimes diverge.
    double acc[kGroup] = {0.0, 0.0, 0.0, 0.0};
    for (std::uint32_t j = 0; j < len; ++j) {
      const double q = qa[j];
      for (std::size_t g = 0; g < kGroup; ++g) acc[g] += q * pa[g][j];
    }
    for (std::uint32_t j = 0; j < len; ++j) {
      const double q = qb[j];
      for (std::size_t g = 0; g < kGroup; ++g) acc[g] += q * pb[g][j];
    }
    bool any = false;
    for (std::size_t g = 0; g < kGroup; ++g) {
      ok[g] = ok[g] & (acc[g] >= 0.0);
      any |= g < count && ok[g];
    }
    if (!any) break;  // every publication of the group already failed
  }
  for (std::size_t g = 0; g < count; ++g) hit[g] = ok[g];
}

MatchOutcome AspeMatcher::match(const AnyPublication& pub) {
  const auto& enc = std::get<EncryptedPublication>(pub);
  MatchOutcome out;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const bool hit =
        row_share_len_[i] == 0
            ? encrypted_match(subs_[i], enc)  // irregular: slow AoS path
            : row_matches(i, enc.share_a.data(), enc.share_a.size(),
                          enc.share_b.data(), enc.share_b.size());
    if (hit) out.subscribers.push_back(subs_[i].subscriber);
  }
  // Every stored subscription is tested; each test costs O(d^2).
  out.work_units = estimate_match_units();
  return out;
}

void AspeMatcher::match_batch_rows(
    const std::vector<const EncryptedPublication*>& encs, std::size_t r0,
    std::size_t r1, MatchOutcome* outs) const {
  // Block the publications: one pass over the stored rows evaluates a whole
  // block, so each subscription's 2d query vectors are streamed from memory
  // once per block instead of once per publication. Subscriber order per
  // publication stays ascending in storage order, as in match().
  for (std::size_t b0 = 0; b0 < encs.size(); b0 += kAspePubBlock) {
    const std::size_t b1 = std::min(encs.size(), b0 + kAspePubBlock);
    for (std::size_t i = r0; i < r1; ++i) {
      if (row_share_len_[i] == 0) {
        for (std::size_t p = b0; p < b1; ++p) {
          if (encrypted_match(subs_[i], *encs[p])) {
            outs[p].subscribers.push_back(subs_[i].subscriber);
          }
        }
        continue;
      }
      for (std::size_t p = b0; p < b1; p += 4) {
        const std::size_t cnt = std::min<std::size_t>(4, b1 - p);
        bool hit[4];
        row_matches_group(i, encs.data() + p, cnt, hit);
        for (std::size_t g = 0; g < cnt; ++g) {
          if (hit[g]) outs[p + g].subscribers.push_back(subs_[i].subscriber);
        }
      }
    }
  }
}

std::vector<MatchOutcome> AspeMatcher::match_batch(
    std::span<const AnyPublication> pubs) {
  std::vector<const EncryptedPublication*> encs;
  encs.reserve(pubs.size());
  for (const AnyPublication& pub : pubs) {
    encs.push_back(&std::get<EncryptedPublication>(pub));
  }
  std::vector<MatchOutcome> out(pubs.size());
  const std::size_t rows = subs_.size();
  const std::size_t ranges = (rows + kAspeRowChunk - 1) / kAspeRowChunk;
  if (pool_ != nullptr && pool_->worker_count() > 1 && ranges > 1) {
    // Parallel backend: fixed row ranges fan out across the pool into
    // per-range partial outcomes, merged in range order -- the serial
    // append order. Every row's dot products keep their exact scalar
    // accumulation sequence, so the floating-point results (and hence the
    // subscriber sets) are bit-identical at any thread count. A size
    // mismatch throw inside a range surfaces at the join.
    std::vector<std::vector<MatchOutcome>> partial(ranges);
    pool_->parallel_for(ranges, [&](std::size_t r, std::size_t) {
      partial[r].resize(encs.size());
      const std::size_t r0 = r * kAspeRowChunk;
      match_batch_rows(encs, r0, std::min(rows, r0 + kAspeRowChunk),
                       partial[r].data());
    });
    merge_partials(partial, out);
  } else {
    match_batch_rows(encs, 0, rows, out.data());
  }
  const double per_pub = estimate_match_units();
  for (MatchOutcome& o : out) o.work_units = per_pub;
  return out;
}

double AspeMatcher::estimate_match_units() const {
  return cost_.aspe_match_units_batch(std::max<std::size_t>(dimensions_, 1),
                                      subs_.size(), 1);
}

std::size_t AspeMatcher::subscription_count() const { return subs_.size(); }

std::size_t AspeMatcher::state_bytes() const { return state_bytes_; }

void AspeMatcher::serialize_state(BinaryWriter& w) const {
  w.write_u64(subs_.size());
  for (const auto& s : subs_) serialize(w, s);
}

void AspeMatcher::restore_state(BinaryReader& r) {
  subs_.clear();
  state_bytes_ = 0;
  dimensions_ = 0;
  flat_.clear();
  row_offset_.clear();
  row_cmps_.clear();
  row_share_len_.clear();
  const auto n = r.read_u64();
  subs_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto s = deserialize_encrypted_subscription(r);
    state_bytes_ += s.bytes();
    dimensions_ = std::max(dimensions_, s.comparisons.size() / 2);
    subs_.push_back(std::move(s));
    append_row(subs_.back());
  }
}

std::size_t AspeMatcher::split_state(const KeyCoverage& cov,
                                     BinaryWriter& w) {
  std::vector<std::size_t> moved;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    if (cov.covers(subs_[i].id.value())) moved.push_back(i);
  }
  w.write_u64(moved.size());
  for (const std::size_t i : moved) serialize(w, subs_[i]);
  const std::size_t serialized = moved.size();
  if (testing_keep_one_on_split && !moved.empty()) moved.pop_back();
  for (auto it = moved.rbegin(); it != moved.rend(); ++it) {
    state_bytes_ -= subs_[*it].bytes();
    subs_.erase(subs_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  // dimensions_ stays at its historical max, exactly as remove() leaves it:
  // the cost estimate then matches a store that never split.
  rebuild_rows();
  return serialized;
}

void AspeMatcher::absorb_state(BinaryReader& r) {
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    auto s = deserialize_encrypted_subscription(r);
    state_bytes_ += s.bytes();
    dimensions_ = std::max(dimensions_, s.comparisons.size() / 2);
    auto pos = std::find_if(subs_.begin(), subs_.end(),
                            [&s](const EncryptedSubscription& e) {
                              return s.id.value() < e.id.value();
                            });
    subs_.insert(pos, std::move(s));
  }
  rebuild_rows();
}

std::unique_ptr<Matcher> AspeMatcher::clone_empty() const {
  auto clone = std::make_unique<AspeMatcher>(cost_);
  clone->set_thread_pool(pool_);
  return clone;
}

}  // namespace esh::filter
