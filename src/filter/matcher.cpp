#include "filter/matcher.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esh::filter {

SubscriptionId subscription_id(const AnySubscription& s) {
  return std::visit([](const auto& v) { return v.id; }, s);
}

PublicationId publication_id(const AnyPublication& p) {
  return std::visit([](const auto& v) { return v.id; }, p);
}

std::size_t subscription_bytes(const AnySubscription& s) {
  if (const auto* enc = std::get_if<EncryptedSubscription>(&s)) {
    return enc->bytes();
  }
  const auto& plain = std::get<Subscription>(s);
  return 24 + plain.predicates.size() * 2 * sizeof(double);
}

std::size_t publication_bytes(const AnyPublication& p) {
  if (const auto* enc = std::get_if<EncryptedPublication>(&p)) {
    return enc->bytes();
  }
  const auto& plain = std::get<Publication>(p);
  return 16 + plain.attributes.size() * sizeof(double);
}

// ---- BruteForceMatcher -------------------------------------------------------

BruteForceMatcher::BruteForceMatcher(cluster::CostModel cost) : cost_(cost) {}

void BruteForceMatcher::add(const AnySubscription& sub) {
  subs_.push_back(std::get<Subscription>(sub));
}

bool BruteForceMatcher::remove(SubscriptionId id) {
  auto it = std::find_if(subs_.begin(), subs_.end(),
                         [id](const Subscription& s) { return s.id == id; });
  if (it == subs_.end()) return false;
  subs_.erase(it);
  return true;
}

MatchOutcome BruteForceMatcher::match(const AnyPublication& pub) {
  const auto& plain = std::get<Publication>(pub);
  MatchOutcome out;
  for (const Subscription& s : subs_) {
    if (s.matches(plain)) out.subscribers.push_back(s.subscriber);
  }
  out.work_units =
      cost_.plain_match_units * static_cast<double>(subs_.size());
  return out;
}

double BruteForceMatcher::estimate_match_units() const {
  return cost_.plain_match_units * static_cast<double>(subs_.size());
}

std::size_t BruteForceMatcher::subscription_count() const {
  return subs_.size();
}

std::size_t BruteForceMatcher::state_bytes() const {
  std::size_t total = 0;
  for (const auto& s : subs_) {
    total += 24 + s.predicates.size() * 2 * sizeof(double);
  }
  return total;
}

void BruteForceMatcher::serialize_state(BinaryWriter& w) const {
  w.write_u64(subs_.size());
  for (const auto& s : subs_) serialize(w, s);
}

void BruteForceMatcher::restore_state(BinaryReader& r) {
  subs_.clear();
  const auto n = r.read_u64();
  subs_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    subs_.push_back(deserialize_subscription(r));
  }
}

std::unique_ptr<Matcher> BruteForceMatcher::clone_empty() const {
  return std::make_unique<BruteForceMatcher>(cost_);
}

// ---- CountingIndexMatcher ----------------------------------------------------

CountingIndexMatcher::CountingIndexMatcher(cluster::CostModel cost)
    : cost_(cost) {}

void CountingIndexMatcher::add(const AnySubscription& sub) {
  const auto& plain = std::get<Subscription>(sub);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    subs_[slot] = plain;
  } else {
    slot = static_cast<std::uint32_t>(subs_.size());
    subs_.push_back(plain);
  }
  ++live_count_;
  dirty_ = true;
}

bool CountingIndexMatcher::remove(SubscriptionId id) {
  for (std::uint32_t slot = 0; slot < subs_.size(); ++slot) {
    if (subs_[slot].id == id && subs_[slot].id.valid()) {
      subs_[slot] = Subscription{};  // invalid id marks the hole
      free_slots_.push_back(slot);
      --live_count_;
      dirty_ = true;
      return true;
    }
  }
  return false;
}

void CountingIndexMatcher::rebuild_if_dirty() {
  if (!dirty_) return;
  std::size_t dims = 0;
  for (const auto& s : subs_) {
    if (s.id.valid()) dims = std::max(dims, s.predicates.size());
  }
  index_.assign(dims, {});
  for (std::uint32_t slot = 0; slot < subs_.size(); ++slot) {
    const auto& s = subs_[slot];
    if (!s.id.valid()) continue;
    for (std::size_t a = 0; a < s.predicates.size(); ++a) {
      index_[a].push_back(
          Entry{s.predicates[a].low, s.predicates[a].high, slot});
    }
  }
  for (auto& list : index_) {
    std::sort(list.begin(), list.end(),
              [](const Entry& x, const Entry& y) { return x.low < y.low; });
  }
  counts_.assign(subs_.size(), 0);
  epochs_.assign(subs_.size(), 0);
  epoch_ = 0;
  dirty_ = false;
}

MatchOutcome CountingIndexMatcher::match(const AnyPublication& pub) {
  const auto& plain = std::get<Publication>(pub);
  rebuild_if_dirty();
  ++epoch_;
  MatchOutcome out;
  double examined = 0.0;

  const std::size_t dims = plain.attributes.size();
  for (std::size_t a = 0; a < dims && a < index_.size(); ++a) {
    const double v = plain.attributes[a];
    const auto& list = index_[a];
    // Candidates: entries with low <= v (sorted order); check high >= v.
    const auto end = std::upper_bound(
        list.begin(), list.end(), v,
        [](double x, const Entry& e) { return x < e.low; });
    for (auto it = list.begin(); it != end; ++it) {
      examined += 1.0;
      if (it->high < v) continue;
      const std::uint32_t slot = it->slot;
      if (epochs_[slot] != epoch_) {
        epochs_[slot] = epoch_;
        counts_[slot] = 0;
      }
      if (++counts_[slot] == subs_[slot].predicates.size() &&
          subs_[slot].predicates.size() == dims) {
        out.subscribers.push_back(subs_[slot].subscriber);
      }
    }
  }
  // Charge for candidates examined plus the binary searches.
  const double searches =
      static_cast<double>(dims) *
      std::log2(std::max<double>(2.0, static_cast<double>(live_count_)));
  out.work_units = cost_.plain_match_units * 0.5 * examined +
                   cost_.plain_match_units * searches;
  return out;
}

double CountingIndexMatcher::estimate_match_units() const {
  // Candidate scans dominate; assume roughly a third of the predicates per
  // attribute fall below a uniform query point (typical for the synthetic
  // workloads used here).
  const double n = static_cast<double>(live_count_);
  return cost_.plain_match_units * (0.35 * n + 8.0);
}

std::size_t CountingIndexMatcher::subscription_count() const {
  return live_count_;
}

std::size_t CountingIndexMatcher::state_bytes() const {
  std::size_t total = 0;
  for (const auto& s : subs_) {
    if (!s.id.valid()) continue;
    total += 24 + s.predicates.size() * 2 * sizeof(double);
  }
  return total;
}

void CountingIndexMatcher::serialize_state(BinaryWriter& w) const {
  w.write_u64(live_count_);
  for (const auto& s : subs_) {
    if (s.id.valid()) serialize(w, s);
  }
}

void CountingIndexMatcher::restore_state(BinaryReader& r) {
  subs_.clear();
  free_slots_.clear();
  live_count_ = 0;
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    add(AnySubscription{deserialize_subscription(r)});
  }
}

std::unique_ptr<Matcher> CountingIndexMatcher::clone_empty() const {
  return std::make_unique<CountingIndexMatcher>(cost_);
}

// ---- AspeMatcher -------------------------------------------------------------

AspeMatcher::AspeMatcher(cluster::CostModel cost) : cost_(cost) {}

void AspeMatcher::add(const AnySubscription& sub) {
  const auto& enc = std::get<EncryptedSubscription>(sub);
  state_bytes_ += enc.bytes();
  dimensions_ = std::max(dimensions_, enc.comparisons.size() / 2);
  subs_.push_back(enc);
}

bool AspeMatcher::remove(SubscriptionId id) {
  auto it = std::find_if(
      subs_.begin(), subs_.end(),
      [id](const EncryptedSubscription& s) { return s.id == id; });
  if (it == subs_.end()) return false;
  state_bytes_ -= it->bytes();
  subs_.erase(it);
  return true;
}

MatchOutcome AspeMatcher::match(const AnyPublication& pub) {
  const auto& enc = std::get<EncryptedPublication>(pub);
  MatchOutcome out;
  for (const EncryptedSubscription& s : subs_) {
    if (encrypted_match(s, enc)) out.subscribers.push_back(s.subscriber);
  }
  // Every stored subscription is tested; each test costs O(d^2).
  out.work_units = estimate_match_units();
  return out;
}

double AspeMatcher::estimate_match_units() const {
  return cost_.aspe_match_units(std::max<std::size_t>(dimensions_, 1)) *
         static_cast<double>(subs_.size());
}

std::size_t AspeMatcher::subscription_count() const { return subs_.size(); }

std::size_t AspeMatcher::state_bytes() const { return state_bytes_; }

void AspeMatcher::serialize_state(BinaryWriter& w) const {
  w.write_u64(subs_.size());
  for (const auto& s : subs_) serialize(w, s);
}

void AspeMatcher::restore_state(BinaryReader& r) {
  subs_.clear();
  state_bytes_ = 0;
  dimensions_ = 0;
  const auto n = r.read_u64();
  subs_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto s = deserialize_encrypted_subscription(r);
    state_bytes_ += s.bytes();
    dimensions_ = std::max(dimensions_, s.comparisons.size() / 2);
    subs_.push_back(std::move(s));
  }
}

std::unique_ptr<Matcher> AspeMatcher::clone_empty() const {
  return std::make_unique<AspeMatcher>(cost_);
}

}  // namespace esh::filter
