// Filtering-library interface used by the Matching (M) operator. STREAMHUB
// treats the filtering scheme as a pluggable external library (paper §III);
// each M slice owns one Matcher instance storing its partition of the
// subscriptions.
//
// A Matcher reports the simulated CPU cost of each match so that the
// cluster emulation charges work faithfully: encrypted filtering charges
// O(d^2) per stored subscription, index-based plain filtering charges by
// candidates actually examined.
//
// Matchers additionally expose a batched entry point, match_batch(): a run
// of publications tested against an unchanged subscription store. The
// batch is a pure wall-clock optimization -- every outcome (subscriber set
// and work_units) is identical to the scalar per-publication result, so
// simulated cost accounting is batching-invariant. The concrete matchers
// exploit the batch with cache-friendly state layouts: BruteForceMatcher
// stores bounds as per-attribute SoA columns scanned in tiles,
// AspeMatcher flattens each encrypted subscription's 2d query vectors
// into one contiguous row reused across a block of publications while
// cache-hot, and CountingIndexMatcher amortizes one index rebuild over
// the whole batch.
//
// With a ThreadPool installed (set_thread_pool), match_batch additionally
// fans the batch's pure compute across real worker threads and joins
// before returning. The parallel decomposition is chosen per scheme so the
// merged result is bit-identical to the scalar path at any thread count:
// BruteForceMatcher partitions the store into its fixed 1024-slot tiles
// and concatenates per-tile survivor lists in tile order; AspeMatcher
// partitions the encrypted rows into fixed ranges and concatenates
// per-range hit lists in range order (each row's floating-point
// accumulation order is untouched); CountingIndexMatcher partitions by
// publication (outcomes are indexed, and its candidate index is
// slot-unordered, so slot tiling would not compose). Simulated work_units
// never depend on the pool.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "cluster/cost_model.hpp"
#include "common/keyspace.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "filter/aspe.hpp"
#include "filter/attribute.hpp"

namespace esh {
class ThreadPool;
}

namespace esh::filter {

using AnySubscription = std::variant<Subscription, EncryptedSubscription>;
using AnyPublication = std::variant<Publication, EncryptedPublication>;

[[nodiscard]] SubscriptionId subscription_id(const AnySubscription& s);
[[nodiscard]] PublicationId publication_id(const AnyPublication& p);
[[nodiscard]] std::size_t subscription_bytes(const AnySubscription& s);
[[nodiscard]] std::size_t publication_bytes(const AnyPublication& p);

struct MatchOutcome {
  std::vector<SubscriberId> subscribers;
  // Simulated single-core work this match consumed, in cost-model units.
  double work_units = 0.0;
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  virtual void add(const AnySubscription& sub) = 0;
  // Returns false when the id is unknown.
  virtual bool remove(SubscriptionId id) = 0;
  [[nodiscard]] virtual MatchOutcome match(const AnyPublication& pub) = 0;

  // Matches a run of publications against the current store. Outcome i is
  // exactly what match(pubs[i]) would have returned (same subscribers,
  // same work_units); concrete matchers override this with kernels that
  // reuse subscription state across the batch. Default: scalar loop.
  [[nodiscard]] virtual std::vector<MatchOutcome> match_batch(
      std::span<const AnyPublication> pubs);

  // Expected cost of the next match (charged to the host CPU before the
  // match runs; the scheduler needs the cost up front).
  [[nodiscard]] virtual double estimate_match_units() const = 0;
  // Expected cost of a batch of `batch` matches: batching-invariant, i.e.
  // exactly `batch` scalar estimates.
  [[nodiscard]] double estimate_match_units(std::size_t batch) const {
    return static_cast<double>(batch) * estimate_match_units();
  }

  [[nodiscard]] virtual std::size_t subscription_count() const = 0;
  [[nodiscard]] virtual std::size_t state_bytes() const = 0;

  // State transfer for slice migration.
  virtual void serialize_state(BinaryWriter& w) const = 0;
  virtual void restore_state(BinaryReader& r) = 0;

  // Key-level split: serializes every stored subscription whose id the
  // coverage covers -- count + entries, the exact serialize_state wire
  // format, so the bytes restore into a fresh clone with restore_state --
  // and atomically removes those subscriptions from this matcher. Returns
  // the number of subscriptions serialized. Default: unsupported (throws).
  virtual std::size_t split_state(const KeyCoverage& cov, BinaryWriter& w);
  // Inverse of split_state: reads serialize_state-format bytes and inserts
  // the entries on top of the current store (restore-without-clear). Each
  // entry is placed in ascending-subscription-id position, so merging the
  // two halves of a previous split reconstructs the pre-split store order
  // exactly (stores grow with ascending ids). Default: unsupported.
  virtual void absorb_state(BinaryReader& r);
  // Convenience: absorb everything `other` stores (serialize -> absorb).
  void merge_state(const Matcher& other);

  // Test seam (contract tests only): when set, split_state serializes the
  // covered subscriptions but leaves the last one in place, violating the
  // split-state-conserved invariant checked by the M handler.
  bool testing_keep_one_on_split = false;

  // Fresh instance of the same scheme/configuration (for replicas).
  // Clones inherit the installed thread pool: the pool is configuration,
  // like the cost model.
  [[nodiscard]] virtual std::unique_ptr<Matcher> clone_empty() const = 0;

  [[nodiscard]] virtual std::string scheme_name() const = 0;

  // Installs a worker pool for match_batch's parallel backend (nullptr
  // restores the serial path). The pool is borrowed, never owned; results
  // are bit-identical with and without it. match() and all mutators stay
  // strictly on the calling thread.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] ThreadPool* thread_pool() const { return pool_; }

 protected:
  ThreadPool* pool_ = nullptr;
};

// Plain-text brute force: tests every stored subscription. State is held in
// structure-of-arrays form -- per-attribute low/high columns -- so a scan
// walks contiguous arrays instead of chasing each subscription's heap-
// allocated predicate vector; match_batch() additionally tiles the columns
// so a block of publications reuses each tile while it is cache-hot.
class BruteForceMatcher final : public Matcher {
 public:
  explicit BruteForceMatcher(cluster::CostModel cost = {});

  void add(const AnySubscription& sub) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchOutcome match(const AnyPublication& pub) override;
  [[nodiscard]] std::vector<MatchOutcome> match_batch(
      std::span<const AnyPublication> pubs) override;
  [[nodiscard]] double estimate_match_units() const override;
  [[nodiscard]] std::size_t subscription_count() const override;
  [[nodiscard]] std::size_t state_bytes() const override;
  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  std::size_t split_state(const KeyCoverage& cov, BinaryWriter& w) override;
  void absorb_state(BinaryReader& r) override;
  [[nodiscard]] std::unique_ptr<Matcher> clone_empty() const override;
  [[nodiscard]] std::string scheme_name() const override {
    return "plain-brute";
  }

 private:
  static constexpr std::size_t kScanGroup = 4;

  // Per-worker scan scratch (survivor lists). The scalar path uses one
  // instance; the pooled batch path hands each pool worker its own, so
  // concurrent tile scans never share mutable state.
  struct ScanScratch {
    std::vector<std::uint32_t> survivors;
    std::array<std::vector<std::uint32_t>, kScanGroup> group_survivors;
  };

  // Appends the subscribers of slots [begin, end) matching `pub`, in slot
  // order (survivor-list pruning, one column at a time).
  void scan_slots(const Publication& pub, std::size_t begin, std::size_t end,
                  MatchOutcome& out, ScanScratch& scratch);
  // Column-0 scan of one tile for up to kScanGroup publications at once:
  // each slot's bounds and dimension count are loaded once and tested
  // against every publication of the group (the batch kernel's main win --
  // shared loads and independent compare chains).
  void scan_tile_group(const Publication* const* pubs, std::size_t count,
                       std::size_t begin, std::size_t end,
                       MatchOutcome* const* outs, ScanScratch& scratch);
  // Columns 1.. survivor pruning + subscriber emission shared by both scans.
  void prune_and_emit(const Publication& pub,
                      std::vector<std::uint32_t>& survivors, MatchOutcome& out);
  // One tile of the batch kernel: every publication of the batch scans
  // slots [t0, t1), appending matches to outs[p] (indexed like `plains`).
  void scan_batch_tile(const std::vector<const Publication*>& plains,
                       const std::vector<std::size_t>& grouped,
                       const std::vector<std::size_t>& singles, std::size_t t0,
                       std::size_t t1, MatchOutcome* outs,
                       ScanScratch& scratch);
  // Inserts a subscription at slot `pos`, shifting later slots up (absorb
  // path; add() is the pos == size() special case).
  void insert_subscription(std::size_t pos, const Subscription& plain);

  cluster::CostModel cost_;
  // SoA store, dense by slot (insertion order; remove shifts like the old
  // AoS erase did, keeping serialization order stable). Columns past a
  // subscription's dimension count hold never-matching sentinels.
  std::vector<SubscriptionId> ids_;
  std::vector<SubscriberId> subscribers_;
  std::vector<std::uint32_t> dims_;
  std::vector<std::vector<double>> lows_;   // [attribute][slot]
  std::vector<std::vector<double>> highs_;  // [attribute][slot]
  std::size_t predicate_count_ = 0;
  ScanScratch scratch_;                          // scalar-path scratch
  std::vector<ScanScratch> worker_scratch_;      // pooled-path scratch
};

// Plain-text counting index (Yan/Garcia-Molina style): per-attribute
// interval lists sorted by lower bound; a publication only pays for the
// candidate predicates its attribute values can satisfy. match_batch()
// performs the epoch bookkeeping rebuild once for the whole batch.
class CountingIndexMatcher final : public Matcher {
 public:
  explicit CountingIndexMatcher(cluster::CostModel cost = {});

  void add(const AnySubscription& sub) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchOutcome match(const AnyPublication& pub) override;
  [[nodiscard]] std::vector<MatchOutcome> match_batch(
      std::span<const AnyPublication> pubs) override;
  [[nodiscard]] double estimate_match_units() const override;
  [[nodiscard]] std::size_t subscription_count() const override;
  [[nodiscard]] std::size_t state_bytes() const override;
  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  std::size_t split_state(const KeyCoverage& cov, BinaryWriter& w) override;
  void absorb_state(BinaryReader& r) override;
  [[nodiscard]] std::unique_ptr<Matcher> clone_empty() const override;
  [[nodiscard]] std::string scheme_name() const override {
    return "plain-counting";
  }

 private:
  struct Entry {
    double low;
    double high;
    std::uint32_t slot;
  };
  // Per-slot predicate-hit counters, epoch-stamped so they reset lazily.
  // Transient bookkeeping only -- no outcome ever depends on the counter
  // values left behind -- so each pool worker owns a private instance and
  // parallel results stay identical to the scalar path's shared one.
  struct CountScratch {
    std::vector<std::uint32_t> counts;
    std::vector<std::uint64_t> epochs;
    std::uint64_t epoch = 0;
  };
  void rebuild_if_dirty();
  void reset_scratch(CountScratch& scratch) const;
  // One publication against the already-rebuilt index.
  [[nodiscard]] MatchOutcome match_prepared(const Publication& plain,
                                            CountScratch& scratch);

  cluster::CostModel cost_;
  std::vector<Subscription> subs_;       // dense by slot; removed = empty id
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::vector<Entry>> index_;  // per attribute, sorted by low
  CountScratch scratch_;                   // scalar-path counters
  std::vector<CountScratch> worker_scratch_;  // pooled-path counters
  bool dirty_ = true;
  std::size_t live_count_ = 0;
};

// Encrypted filtering: stores EncryptedSubscriptions, tests every one with
// the ASPE comparison primitive; no containment or indexing is possible by
// design (paper §VI-B). The 2d query-vector pairs of each subscription are
// additionally flattened into one contiguous row of doubles; match_batch()
// blocks over the publications so each row's O(d^2) dot products run for
// the whole block while the row is cache-hot.
class AspeMatcher final : public Matcher {
 public:
  explicit AspeMatcher(cluster::CostModel cost = {});

  void add(const AnySubscription& sub) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchOutcome match(const AnyPublication& pub) override;
  [[nodiscard]] std::vector<MatchOutcome> match_batch(
      std::span<const AnyPublication> pubs) override;
  [[nodiscard]] double estimate_match_units() const override;
  [[nodiscard]] std::size_t subscription_count() const override;
  [[nodiscard]] std::size_t state_bytes() const override;
  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  std::size_t split_state(const KeyCoverage& cov, BinaryWriter& w) override;
  void absorb_state(BinaryReader& r) override;
  [[nodiscard]] std::unique_ptr<Matcher> clone_empty() const override;
  [[nodiscard]] std::string scheme_name() const override { return "aspe"; }

 private:
  void append_row(const EncryptedSubscription& s);
  void rebuild_rows();
  // True iff stored subscription `index` matches the publication given by
  // its raw share pointers (same evaluation order and early exit as
  // encrypted_match, including the dimension-mismatch throw).
  [[nodiscard]] bool row_matches(std::size_t index, const double* pub_a,
                                 std::size_t len_a, const double* pub_b,
                                 std::size_t len_b) const;
  // Evaluates one stored row against up to 4 publications at once. Each
  // publication sees exactly the scalar evaluation order (same dot-product
  // accumulation sequence, same early exit on its first failed comparison),
  // so results are bit-identical to row_matches; the win is the 4
  // independent accumulator chains the core can overlap, where the scalar
  // path serializes on one chain's floating-point latency.
  void row_matches_group(std::size_t index,
                         const EncryptedPublication* const* pubs,
                         std::size_t count, bool* hit) const;
  // Every publication of `encs` against stored rows [r0, r1), appending
  // hits to outs[p].subscribers in ascending row order. The pooled batch
  // path runs disjoint row ranges concurrently and concatenates the
  // per-range lists in range order, reproducing the scalar append order;
  // each row's evaluation (and its floating-point accumulation order) is
  // independent of the range partition.
  void match_batch_rows(const std::vector<const EncryptedPublication*>& encs,
                        std::size_t r0, std::size_t r1,
                        MatchOutcome* outs) const;

  cluster::CostModel cost_;
  std::vector<EncryptedSubscription> subs_;  // authoritative (serialization)
  // Flattened kernel mirror: row i holds subscription i's comparisons as
  // [cmp0.a | cmp0.b | cmp1.a | cmp1.b | ...], each share row_share_len_[i]
  // doubles. row_share_len_[i] == 0 marks an irregular subscription (shares
  // of mixed lengths) evaluated through the slow AoS path instead.
  std::vector<double> flat_;
  std::vector<std::size_t> row_offset_;
  std::vector<std::uint32_t> row_cmps_;
  std::vector<std::uint32_t> row_share_len_;
  std::size_t state_bytes_ = 0;
  std::size_t dimensions_ = 0;
};

}  // namespace esh::filter
