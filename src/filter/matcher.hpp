// Filtering-library interface used by the Matching (M) operator. STREAMHUB
// treats the filtering scheme as a pluggable external library (paper §III);
// each M slice owns one Matcher instance storing its partition of the
// subscriptions.
//
// A Matcher reports the simulated CPU cost of each match so that the
// cluster emulation charges work faithfully: encrypted filtering charges
// O(d^2) per stored subscription, index-based plain filtering charges by
// candidates actually examined.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "cluster/cost_model.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "filter/aspe.hpp"
#include "filter/attribute.hpp"

namespace esh::filter {

using AnySubscription = std::variant<Subscription, EncryptedSubscription>;
using AnyPublication = std::variant<Publication, EncryptedPublication>;

[[nodiscard]] SubscriptionId subscription_id(const AnySubscription& s);
[[nodiscard]] PublicationId publication_id(const AnyPublication& p);
[[nodiscard]] std::size_t subscription_bytes(const AnySubscription& s);
[[nodiscard]] std::size_t publication_bytes(const AnyPublication& p);

struct MatchOutcome {
  std::vector<SubscriberId> subscribers;
  // Simulated single-core work this match consumed, in cost-model units.
  double work_units = 0.0;
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  virtual void add(const AnySubscription& sub) = 0;
  // Returns false when the id is unknown.
  virtual bool remove(SubscriptionId id) = 0;
  [[nodiscard]] virtual MatchOutcome match(const AnyPublication& pub) = 0;

  // Expected cost of the next match (charged to the host CPU before the
  // match runs; the scheduler needs the cost up front).
  [[nodiscard]] virtual double estimate_match_units() const = 0;

  [[nodiscard]] virtual std::size_t subscription_count() const = 0;
  [[nodiscard]] virtual std::size_t state_bytes() const = 0;

  // State transfer for slice migration.
  virtual void serialize_state(BinaryWriter& w) const = 0;
  virtual void restore_state(BinaryReader& r) = 0;

  // Fresh instance of the same scheme/configuration (for replicas).
  [[nodiscard]] virtual std::unique_ptr<Matcher> clone_empty() const = 0;

  [[nodiscard]] virtual std::string scheme_name() const = 0;
};

// Plain-text brute force: tests every stored subscription.
class BruteForceMatcher final : public Matcher {
 public:
  explicit BruteForceMatcher(cluster::CostModel cost = {});

  void add(const AnySubscription& sub) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchOutcome match(const AnyPublication& pub) override;
  [[nodiscard]] double estimate_match_units() const override;
  [[nodiscard]] std::size_t subscription_count() const override;
  [[nodiscard]] std::size_t state_bytes() const override;
  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  [[nodiscard]] std::unique_ptr<Matcher> clone_empty() const override;
  [[nodiscard]] std::string scheme_name() const override {
    return "plain-brute";
  }

 private:
  cluster::CostModel cost_;
  std::vector<Subscription> subs_;
};

// Plain-text counting index (Yan/Garcia-Molina style): per-attribute
// interval lists sorted by lower bound; a publication only pays for the
// candidate predicates its attribute values can satisfy.
class CountingIndexMatcher final : public Matcher {
 public:
  explicit CountingIndexMatcher(cluster::CostModel cost = {});

  void add(const AnySubscription& sub) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchOutcome match(const AnyPublication& pub) override;
  [[nodiscard]] double estimate_match_units() const override;
  [[nodiscard]] std::size_t subscription_count() const override;
  [[nodiscard]] std::size_t state_bytes() const override;
  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  [[nodiscard]] std::unique_ptr<Matcher> clone_empty() const override;
  [[nodiscard]] std::string scheme_name() const override {
    return "plain-counting";
  }

 private:
  struct Entry {
    double low;
    double high;
    std::uint32_t slot;
  };
  void rebuild_if_dirty();

  cluster::CostModel cost_;
  std::vector<Subscription> subs_;       // dense by slot; removed = empty id
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::vector<Entry>> index_;  // per attribute, sorted by low
  std::vector<std::uint32_t> counts_;      // per slot, epoch-stamped
  std::vector<std::uint64_t> epochs_;
  std::uint64_t epoch_ = 0;
  bool dirty_ = true;
  std::size_t live_count_ = 0;
};

// Encrypted filtering: stores EncryptedSubscriptions, tests every one with
// the ASPE comparison primitive; no containment or indexing is possible by
// design (paper §VI-B).
class AspeMatcher final : public Matcher {
 public:
  explicit AspeMatcher(cluster::CostModel cost = {});

  void add(const AnySubscription& sub) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] MatchOutcome match(const AnyPublication& pub) override;
  [[nodiscard]] double estimate_match_units() const override;
  [[nodiscard]] std::size_t subscription_count() const override;
  [[nodiscard]] std::size_t state_bytes() const override;
  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  [[nodiscard]] std::unique_ptr<Matcher> clone_empty() const override;
  [[nodiscard]] std::string scheme_name() const override { return "aspe"; }

 private:
  cluster::CostModel cost_;
  std::vector<EncryptedSubscription> subs_;
  std::size_t state_bytes_ = 0;
  std::size_t dimensions_ = 0;
};

}  // namespace esh::filter
