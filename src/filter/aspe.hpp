// ASPE encrypted content-based filtering (paper reference [11]).
//
// Asymmetric Scalar-Product-Preserving Encryption lets an untrusted broker
// match encrypted publications against encrypted subscriptions without
// learning attribute values or predicate bounds. The construction follows
// Wong et al.'s ASPE as adapted for pub/sub by Choi, Ghinita and Bertino:
//
//   - A publication with attributes x in R^d is lifted to
//     p~ = (x_1..x_d, 1, 0, s_p) in R^m, m = d + 3, where s_p is per-
//     publication noise in an artificial dimension whose query coefficient
//     is always zero.
//   - A predicate "x_i >= c" becomes the query vector
//     q~ = r * (e_i, -c, s_q, 0), r > 0 a fresh random scale, s_q noise in
//     the publication's zero dimension; "x_i <= c" uses (-e_i, +c, ...).
//     Then q~ . p~ = r (x_i - c): the *sign* decides the predicate.
//   - Both vectors are split into two shares by a secret bit vector s:
//     dimensions with s_j = 1 split the publication share randomly
//     (pa_j + pb_j = p~_j) and copy the query share; s_j = 0 does the
//     converse. Shares are encrypted with a secret invertible matrix pair:
//     p^ = (M1^T pa, M2^T pb), q^ = (M1^-1 qa, M2^-1 qb).
//   - The broker computes q^a . p^a + q^b . p^b = q~ . p~ and tests >= 0.
//
// A d-attribute range subscription carries 2d encrypted query vectors
// (lower and upper bound per attribute); matching one publication against
// one subscription therefore costs 2d scalar products of length m: the
// O(d^2) per-operation cost quoted in the paper (§VI-B). There is no
// containment structure to exploit, so brokers must test every stored
// subscription: the workload-independence the paper relies on.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "filter/attribute.hpp"
#include "filter/matrix.hpp"

namespace esh::filter {

// Secret key held by trusted clients (publishers/subscribers); never
// shipped to the engine.
class AspeKey {
 public:
  // Generates a key for `dimensions` publication attributes.
  static AspeKey generate(std::size_t dimensions, Rng& rng);

  [[nodiscard]] std::size_t dimensions() const { return dimensions_; }
  [[nodiscard]] std::size_t lifted_size() const { return dimensions_ + 3; }

  [[nodiscard]] const Matrix& m1_t() const { return m1_t_; }
  [[nodiscard]] const Matrix& m2_t() const { return m2_t_; }
  [[nodiscard]] const Matrix& m1_inv() const { return m1_inv_; }
  [[nodiscard]] const Matrix& m2_inv() const { return m2_inv_; }
  [[nodiscard]] const std::vector<bool>& split() const { return split_; }

 private:
  std::size_t dimensions_ = 0;
  Matrix m1_t_, m2_t_;      // M1^T, M2^T (encrypt publications)
  Matrix m1_inv_, m2_inv_;  // M1^-1, M2^-1 (encrypt queries)
  std::vector<bool> split_;
};

struct EncryptedPublication {
  PublicationId id;
  std::vector<double> share_a;  // M1^T pa
  std::vector<double> share_b;  // M2^T pb

  [[nodiscard]] std::size_t bytes() const {
    // Matches the serialized representation (id + 2 length-prefixed shares).
    return 24 + (share_a.size() + share_b.size()) * sizeof(double);
  }
};

// One encrypted comparison (>= or <= against a hidden bound).
struct EncryptedComparison {
  std::vector<double> share_a;  // M1^-1 qa
  std::vector<double> share_b;  // M2^-1 qb
};

struct EncryptedSubscription {
  SubscriptionId id;
  SubscriberId subscriber;
  // 2 comparisons per attribute: [lower_0, upper_0, lower_1, upper_1, ...].
  std::vector<EncryptedComparison> comparisons;

  [[nodiscard]] std::size_t bytes() const;
};

// Client-side encryptor: owns the key and fresh randomness.
class AspeEncryptor {
 public:
  AspeEncryptor(const AspeKey& key, Rng rng);

  [[nodiscard]] EncryptedPublication encrypt(const Publication& pub);
  [[nodiscard]] EncryptedSubscription encrypt(const Subscription& sub);

  [[nodiscard]] const AspeKey& key() const { return key_; }

 private:
  [[nodiscard]] EncryptedComparison encrypt_comparison(std::size_t attribute,
                                                       double bound,
                                                       bool lower);

  const AspeKey& key_;
  Rng rng_;
};

// Broker-side primitive: evaluates one encrypted comparison. Returns the
// preserved scalar product r(x_i - c) (lower) or r(c - x_i) (upper).
[[nodiscard]] double evaluate_comparison(const EncryptedComparison& cmp,
                                         const EncryptedPublication& pub);

// True iff every comparison of the subscription is satisfied (>= 0).
[[nodiscard]] bool encrypted_match(const EncryptedSubscription& sub,
                                   const EncryptedPublication& pub);

void serialize(BinaryWriter& w, const EncryptedSubscription& s);
EncryptedSubscription deserialize_encrypted_subscription(BinaryReader& r);
void serialize(BinaryWriter& w, const EncryptedPublication& p);
EncryptedPublication deserialize_encrypted_publication(BinaryReader& r);

}  // namespace esh::filter
